/**
 * @file
 * Quickstart: the smallest complete PipeLLM program.
 *
 * Builds the simulated platform (CVM + H100-class GPU), runs the same
 * repeating swap workload under all three runtimes — native ("w/o
 * CC"), NVIDIA Confidential Computing ("CC"), and PipeLLM — and
 * prints where the time goes. Shows the core API surface:
 *
 *   Platform            the machine (host memory, device, CC session)
 *   RuntimeApi          cudaMemcpyAsync / launchKernel / synchronize
 *   PipeLlmRuntime      the paper's contribution, a drop-in RuntimeApi
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"

using namespace pipellm;
using runtime::CopyKind;

namespace {

/** A toy layer-streaming workload: 16 cycles over 6 x 64 MiB chunks. */
Tick
runWorkload(runtime::RuntimeApi &rt)
{
    auto &platform = rt.platform();
    const std::uint64_t chunk = 64 * MiB;

    std::vector<mem::Region> host_chunks;
    for (int i = 0; i < 6; ++i)
        host_chunks.push_back(
            platform.allocHost(chunk, "layer" + std::to_string(i)));
    auto slot = platform.gpu(0).alloc(2 * chunk, "slots");

    auto &copy = rt.createStream("copy");
    auto &compute = rt.createStream("compute");
    gpu::KernelDesc kernel{"layer-forward", 4e11, 2e9}; // ~1 ms

    Tick now = 0;
    for (int cycle = 0; cycle < 16; ++cycle) {
        for (int l = 0; l < 6; ++l) {
            auto r = rt.memcpyAsync(CopyKind::HostToDevice,
                                    slot.base + (l % 2) * chunk,
                                    host_chunks[l].base, chunk, copy,
                                    now);
            now = r.api_return;
            compute.waitEvent(r.complete);
            now = rt.launchKernel(kernel, compute, now).api_return;
        }
        now = rt.synchronize(now);
    }
    return now;
}

} // namespace

int
main()
{
    std::printf("PipeLLM quickstart: 16 cycles x 6 x 64 MiB layer "
                "swaps + compute\n\n");

    double base = 0;
    for (int which = 0; which < 3; ++which) {
        // Each system gets a fresh simulated machine.
        runtime::Platform platform;
        std::unique_ptr<runtime::RuntimeApi> rt;
        switch (which) {
          case 0:
            rt = std::make_unique<runtime::PlainRuntime>(platform);
            break;
          case 1:
            rt = std::make_unique<runtime::CcRuntime>(platform);
            break;
          default: {
            core::PipeLlmConfig cfg;
            cfg.enc_lanes = 8;
            cfg.classifier.layer_param_bytes = 64 * MiB;
            rt = std::make_unique<core::PipeLlmRuntime>(platform, cfg);
          }
        }

        Tick total = runWorkload(*rt);
        if (which == 0)
            base = double(total);
        std::printf("%-8s finished in %8.2f ms  (%.2fx vs native)\n",
                    rt->name(), toMilliseconds(total),
                    double(total) / base);

        if (auto *p = dynamic_cast<core::PipeLlmRuntime *>(rt.get())) {
            const auto &ps = p->pipeStats();
            std::printf("         predictor=%s  hits=%llu/%llu  "
                        "nops=%llu  integrity failures=%llu\n",
                        p->predictor().activePattern(),
                        (unsigned long long)ps.hits,
                        (unsigned long long)ps.swap_requests,
                        (unsigned long long)ps.nops,
                        (unsigned long long)platform.gpu(0)
                            .integrityFailures());
        }
    }

    std::printf("\nEvery byte moved was really AES-GCM sealed and "
                "verified (sampled) with H100-style lockstep IVs.\n");
    return 0;
}
