/**
 * @file
 * Scenario: a latency-sensitive chatbot on a model that *fits* the
 * GPU (the paper's vLLM case study, §3/§7.2).
 *
 * OPT-30B's weights take 75% of the H100; the KV cache of concurrent
 * conversations fills the rest, and bursts of traffic force the
 * scheduler to swap preempted requests' KV to CVM DRAM. Stock CC
 * makes every resume wait for CPU re-encryption; PipeLLM pre-encrypts
 * the preempted blocks (LIFO) before they are asked for.
 *
 * Usage: serve_chatbot [requests] [rate_req_per_s]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "serving/vllm.hh"
#include "trace/generator.hh"

using namespace pipellm;

int
main(int argc, char **argv)
{
    std::size_t requests =
        argc > 1 ? std::size_t(std::atoi(argv[1])) : 96;
    double rate = argc > 2 ? std::atof(argv[2]) : 1.2;

    auto model = llm::ModelConfig::opt30b();
    std::printf("Chatbot on %s, ShareGPT-shaped trace, %zu requests "
                "at %.1f req/s, parallel sampling 6\n",
                model.name.c_str(), requests, rate);

    serving::VllmConfig cfg;
    cfg.model = model;
    cfg.parallel_sampling = 6;

    auto profile = trace::DatasetProfile::shareGpt();
    profile.max_len = 1024;

    crypto::ChannelConfig channel;
    channel.sample_limit = 512;

    double base = 0;
    for (int which = 0; which < 3; ++which) {
        runtime::Platform platform(gpu::SystemSpec::h100(), channel);
        std::unique_ptr<runtime::RuntimeApi> rt;
        if (which == 0) {
            rt = std::make_unique<runtime::PlainRuntime>(platform);
        } else if (which == 1) {
            rt = std::make_unique<runtime::CcRuntime>(platform);
        } else {
            core::PipeLlmConfig pcfg; // 1 encrypt + 1 decrypt thread
            pcfg.enc_lanes = 1;
            pcfg.dec_lanes = 1;
            pcfg.pipeline_depth = 16;
            pcfg.classifier.kv_unit_bytes =
                std::uint64_t(cfg.block_tokens) *
                model.kvBytesPerToken();
            rt = std::make_unique<core::PipeLlmRuntime>(platform, pcfg);
        }

        serving::VllmEngine engine(*rt, cfg);
        trace::TraceGenerator gen(profile, 2026);
        auto result = engine.run(gen.poisson(requests, rate));
        if (which == 0)
            base = result.normalized_latency;

        std::printf("%-8s normalized latency %.4f s/token "
                    "(+%5.1f%%), %llu preemptions, %.1f GB swapped\n",
                    rt->name(), result.normalized_latency,
                    100.0 * (result.normalized_latency / base - 1.0),
                    (unsigned long long)result.preemptions,
                    double(result.swap_in_bytes +
                           result.swap_out_bytes) /
                        1e9);

        if (auto *p = dynamic_cast<core::PipeLlmRuntime *>(rt.get())) {
            const auto &ps = p->pipeStats();
            std::printf("         hit rate %.1f%%, %llu async "
                        "decrypts, %llu NOPs\n",
                        100.0 * ps.hits /
                            double(std::max<std::uint64_t>(
                                1, ps.swap_requests)),
                        (unsigned long long)ps.async_decrypts,
                        (unsigned long long)ps.nops);
        }
    }
    return 0;
}
