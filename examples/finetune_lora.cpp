/**
 * @file
 * Scenario: LoRA fine-tuning on proprietary data inside a CVM (the
 * paper's PEFT case study, §3/§7.2).
 *
 * Activations for a big batch crowd the GPU, so DeepSpeed-style
 * offloading streams frozen base weights both directions of every
 * step (forward 0..L-1, backward L-1..0 — a palindromic repetitive
 * pattern). The optimizer's in-place adapter updates also exercise
 * PipeLLM's validator: speculated ciphertext of modified data must
 * fault-invalidate, never ship stale.
 *
 * Usage: finetune_lora [sequences]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "serving/peft.hh"
#include "trace/generator.hh"

using namespace pipellm;

int
main(int argc, char **argv)
{
    unsigned sequences = argc > 1 ? unsigned(std::atoi(argv[1])) : 96;

    auto model = llm::ModelConfig::opt30b();
    std::printf("LoRA fine-tuning %s on an ultrachat-shaped dataset "
                "(%u sequences)\n",
                model.name.c_str(), sequences);

    serving::PeftConfig cfg;
    cfg.model = model;
    cfg.batch = 4;
    cfg.num_sequences = sequences;

    crypto::ChannelConfig channel;
    channel.sample_limit = 512;

    trace::TraceGenerator gen(trace::DatasetProfile::ultrachat(), 11);
    auto data = gen.closedLoop(sequences);

    double base = 0;
    for (int which = 0; which < 3; ++which) {
        runtime::Platform platform(gpu::SystemSpec::h100(), channel);
        std::unique_ptr<runtime::RuntimeApi> rt;
        if (which == 0) {
            rt = std::make_unique<runtime::PlainRuntime>(platform);
        } else if (which == 1) {
            rt = std::make_unique<runtime::CcRuntime>(platform);
        } else {
            core::PipeLlmConfig pcfg;
            pcfg.enc_lanes = 8;
            pcfg.pipeline_depth = 12;
            pcfg.max_pipeline_bytes = 32 * GiB;
            pcfg.max_lane_lead = seconds(1);
            pcfg.classifier.layer_param_bytes = model.layerParamBytes();
            rt = std::make_unique<core::PipeLlmRuntime>(platform, pcfg);
        }

        serving::PeftEngine engine(*rt, cfg);
        auto result = engine.run(data);
        if (which == 0)
            base = result.tokens_per_sec;

        std::printf("%-8s %8.0f tokens/s trained  (%u offloaded "
                    "layers)  overhead %.1f%%\n",
                    rt->name(), result.tokens_per_sec,
                    result.offloaded_layers,
                    100.0 * (1 - result.tokens_per_sec / base));

        if (auto *p = dynamic_cast<core::PipeLlmRuntime *>(rt.get())) {
            const auto &pls = p->pipelineStats();
            std::printf("         validator fault-invalidations %llu, "
                        "reserved demand IVs %llu (adapters are "
                        "write-hot), integrity failures %llu\n",
                        (unsigned long long)pls.invalidated_by_fault,
                        (unsigned long long)pls.reservations,
                        (unsigned long long)platform.gpu(0)
                            .integrityFailures());
        }
    }
    return 0;
}
