/**
 * @file
 * Scenario: watch the speculative pipeline work, event by event.
 *
 * Drives a small hand-made workload through PipeLlmRuntime and dumps
 * the pipeline plan (pre-encrypted entries with their future IVs,
 * reservations for write-hot chunks) after every phase, then
 * demonstrates each error-handling path from §5.3:
 *
 *   1. steady-state hits (entries consumed in IV order)
 *   2. an interleaved small transfer landing in the leeway gap
 *   3. a batch requested in permuted order (swap re-ordering)
 *   4. a skipped prediction (NOP padding)
 *   5. a plaintext update (validator fault-invalidation)
 */

#include <cstdio>
#include <vector>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/transfer_trace.hh"

using namespace pipellm;
using runtime::CopyKind;

namespace {

void
show(const char *phase, core::PipeLlmRuntime &rt)
{
    const auto &ps = rt.pipeStats();
    std::printf("\n[%s]\n  cpu next IV: %llu | hits %llu | misses %llu "
                "| reordered %llu | NOPs %llu | validator "
                "invalidations %llu\n  plan: %s\n",
                phase, (unsigned long long)rt.h2dCounter(),
                (unsigned long long)ps.hits,
                (unsigned long long)ps.misses,
                (unsigned long long)ps.reordered,
                (unsigned long long)ps.nops,
                (unsigned long long)
                    rt.pipelineStats().invalidated_by_fault,
                rt.pipelineDebug().c_str());
}

} // namespace

int
main()
{
    runtime::Platform platform;
    core::PipeLlmConfig cfg;
    cfg.classifier.layer_param_bytes = 8 * MiB;
    cfg.pipeline_depth = 6;
    cfg.enc_lanes = 4;
    core::PipeLlmRuntime rt(platform, cfg);
    runtime::TransferTrace trace;
    rt.attachTrace(&trace);

    const std::uint64_t chunk = 8 * MiB;
    std::vector<mem::Region> host;
    for (int i = 0; i < 4; ++i)
        host.push_back(
            platform.allocHost(chunk, "chunk" + std::to_string(i)));
    auto token_buf = platform.allocHost(4 * KiB, "tokens");
    auto dev = platform.gpu(0).alloc(2 * chunk, "slot");
    auto &s = rt.createStream("s");

    // 1. Teach the cycle (with one small transfer per cycle, so the
    //    pipeline learns to reserve leeway gaps), then show
    //    steady-state hits.
    Tick now = 0;
    for (int cycle = 0; cycle < 6; ++cycle) {
        for (int i = 0; i < 4; ++i)
            now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                                 host[i].base, chunk, s, now)
                      .api_return;
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             token_buf.base, 128, s, now)
                  .api_return;
        now = rt.synchronize(now);
    }
    show("steady state: pipeline holds the next cycle", rt);

    // 2. A small transfer consumes a leeway-gap IV harmlessly.
    now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                         token_buf.base, 128, s, now)
              .api_return;
    show("after an interleaved small transfer (leeway gap)", rt);

    // 3. Request the next batch in permuted order: re-ordering.
    for (int i : {1, 0, 2, 3})
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host[i].base, chunk, s, now)
                  .api_return;
    now = rt.synchronize(now);
    show("after a permuted batch (swap re-ordering)", rt);

    // 4. Skip chunk 0 entirely this cycle: its IV gets NOP-padded.
    for (int i : {1, 2, 3})
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host[i].base, chunk, s, now)
                  .api_return;
    now = rt.synchronize(now);
    show("after skipping a predicted chunk (NOP padding)", rt);

    // 5. Update plaintext under speculation: the validator faults.
    std::uint8_t update = 0xff;
    platform.hostMem().write(host[1].base + 64, &update, 1);
    show("after updating a speculated chunk (validator fault)", rt);

    for (int i = 0; i < 4; ++i)
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host[i].base, chunk, s, now)
                  .api_return;
    now = rt.synchronize(now);
    show("next cycle: the updated chunk re-encrypted on demand", rt);

    std::printf("\nGPU integrity failures: %llu (always zero — a "
                "wrong IV or stale ciphertext would terminate the "
                "session)\n",
                (unsigned long long)platform.gpu(0)
                    .integrityFailures());

    // What a bus observer sees (the paper's §8.1 side channel): NOPs
    // are 1-byte transfers, so misprediction frequency leaks.
    auto view = trace.busView();
    std::printf("\nBus observer view (§8.1): %llu transfers, %llu "
                "swap-sized, %llu NOP-sized (%.1f%% of traffic "
                "reveals mis-speculation)\n",
                (unsigned long long)view.transfers,
                (unsigned long long)view.swap_like,
                (unsigned long long)view.nop_like,
                100.0 * view.nop_fraction);
    trace.writeCsv("pipeline_trace.csv");
    std::printf("full timeline written to pipeline_trace.csv\n");
    return 0;
}
