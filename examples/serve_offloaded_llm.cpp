/**
 * @file
 * Scenario: serving a model bigger than the GPU (the paper's FlexGen
 * case study, §3/§7.2).
 *
 * OPT-66B needs 132 GB of weights against the H100's 80 GB, so
 * FlexGen streams layers from CVM DRAM every decoding step. Under
 * stock NVIDIA CC the stream is throttled to single-thread AES-GCM
 * speed; PipeLLM's speculative pipeline restores it to the CC copy
 * path's 40 GB/s.
 *
 * Usage: serve_offloaded_llm [requests]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "serving/flexgen.hh"

using namespace pipellm;

int
main(int argc, char **argv)
{
    unsigned requests = argc > 1 ? unsigned(std::atoi(argv[1])) : 64;

    auto model = llm::ModelConfig::opt66b();
    std::printf("Serving %s (%.0f GB of weights, GPU holds 80 GB)\n",
                model.name.c_str(),
                double(model.totalParamBytes()) / 1e9);

    serving::FlexGenConfig cfg;
    cfg.model = model;
    cfg.batch = 32;
    cfg.input_len = 32;
    cfg.output_len = 128;
    cfg.num_requests = requests;

    // Functional crypto is sampled to keep the demo quick; timing is
    // charged for every byte either way.
    crypto::ChannelConfig channel;
    channel.sample_limit = 512;

    double base = 0;
    for (int which = 0; which < 3; ++which) {
        runtime::Platform platform(gpu::SystemSpec::h100(), channel);
        std::unique_ptr<runtime::RuntimeApi> rt;
        if (which == 0) {
            rt = std::make_unique<runtime::PlainRuntime>(platform);
        } else if (which == 1) {
            rt = std::make_unique<runtime::CcRuntime>(platform);
        } else {
            core::PipeLlmConfig pcfg;
            pcfg.enc_lanes = 8; // keep up with the 40 GB/s copy path
            pcfg.pipeline_depth = 12;
            pcfg.max_pipeline_bytes = 32 * GiB;
            pcfg.max_lane_lead = seconds(1);
            pcfg.classifier.layer_param_bytes = model.layerParamBytes();
            rt = std::make_unique<core::PipeLlmRuntime>(platform, pcfg);
        }

        serving::FlexGenEngine engine(*rt, cfg);
        auto result = engine.run();
        if (which == 0)
            base = result.tokens_per_sec;

        std::printf("%-8s %7.1f tokens/s  (%2u/%u layers streamed "
                    "per pass)  overhead %.1f%%\n",
                    rt->name(), result.tokens_per_sec,
                    result.offloaded_layers, model.num_layers,
                    100.0 * (1 - result.tokens_per_sec / base));

        if (auto *p = dynamic_cast<core::PipeLlmRuntime *>(rt.get())) {
            const auto &ps = p->pipeStats();
            std::printf("         prediction hit rate %.1f%% "
                        "(pattern: %s), pre-encrypted %.1f GB\n",
                        100.0 * ps.hits / double(ps.swap_requests),
                        p->predictor().activePattern(),
                        double(p->pipelineStats().pre_encrypted_bytes) /
                            1e9);
        }
    }
    return 0;
}
