#!/usr/bin/env python3
"""Fail CI on new uses of banned APIs.

Checked rules:

  1. The deprecated no-argument ``Platform::device()`` /
     ``Platform::channel()`` aliases (kept only so the single-device
     call sites compiled through the multi-device migration). New code
     must name the device: ``platform.device(d)``.
  2. Naked ``rand()`` / ``srand()`` / ``std::time`` — the simulator is
     deterministic by construction; all randomness goes through
     ``common/rng.hh`` with an explicit seed.
  3. printf-family I/O inside ``src/`` — diagnostics go through the
     gem5-style macros in ``common/logging.hh`` so they carry severity
     and can be fatal under test. Benches and examples are exempt
     (they are user-facing CLIs), as is the logging backend itself.
  4. Fault-model coverage: every ``fault::Fault::Kind`` enumerator must
     have both an injection test and a recovery test in ``tests/fault/``
     (a test name containing ``<Kind>Injection`` and one containing
     ``<Kind>Recovery``). Adding a fault kind without wiring its
     end-to-end tests fails the lint. Kinds listed in
     ``EXTRA_FAULT_TESTS`` carry additional named proofs — e.g.
     ``ReplicaRestart`` must also keep the pre-crash IV non-reuse test,
     the security heart of the restart path.

Usage: tools/lint/check_banned_apis.py [repo-root]
Exits nonzero and prints file:line for every finding.
"""

import os
import re
import subprocess
import sys

RULES = [
    {
        "name": "deprecated Platform::device()/channel() alias",
        "regex": re.compile(r"\bplatform_?\.\s*(?:device|channel)\(\)"),
        "roots": ("src", "tests", "bench", "examples"),
        "allow": {
            # The compatibility test exercises the aliases on purpose.
            "tests/runtime/test_multi_device.cc",
        },
    },
    {
        "name": "non-deterministic rand()/srand()/std::time",
        "regex": re.compile(
            r"\b(?:s?rand)\s*\(|std::time\b|\btime\s*\(\s*(?:NULL|nullptr)\s*\)"
        ),
        "roots": ("src", "tests", "bench", "examples"),
        "allow": set(),
    },
    {
        "name": "raw threading outside sim/worker_pool",
        # Determinism rests on every worker thread being driven by the
        # WorkerPool's barriered parallelFor; ad-hoc std::thread /
        # std::async escapes the (tick, shard, seq) ordering protocol.
        # WorkerPool::hardwareConcurrency() is the sanctioned wrapper
        # for sizing decisions.
        "regex": re.compile(
            r"\bstd::(?:thread|jthread|async)\b|#include\s*<(?:thread|future)>"
        ),
        "roots": ("src", "tests", "bench", "examples"),
        "allow": {
            "src/sim/worker_pool.hh",
            "src/sim/worker_pool.cc",
        },
    },
    {
        "name": "hand-rolled ClusterConfig assembly in bench/",
        # Figure benches describe experiments in committed .scenario
        # files and run them through scenario::runScenario; assembling
        # a serving::ClusterConfig by hand in a bench main recreates
        # the per-experiment drift the scenario layer exists to end.
        # Only the wall-clock microbenchmark of the simulator core
        # itself stays hand-built (it measures the harness, not a
        # paper figure).
        "regex": re.compile(r"\bserving::ClusterConfig\b|\bClusterConfig\s+\w+\s*;"),
        "roots": ("bench",),
        "allow": {
            "bench/bench_simcore.cc",
        },
    },
    {
        "name": "printf-family I/O outside common/logging",
        "regex": re.compile(
            r"\b(?:printf|fprintf|sprintf|snprintf|vsnprintf|puts|putchar)\s*\("
        ),
        "roots": ("src",),
        "allow": {
            "src/common/logging.cc",
            "src/common/logging.hh",
        },
    },
]

SOURCE_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp", ".h", ".c")


def tracked_files(root):
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others",
             "--exclude-standard"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return out.splitlines()
    except (subprocess.CalledProcessError, OSError):
        files = []
        for dirpath, _, names in os.walk(root):
            for name in names:
                full = os.path.join(dirpath, name)
                files.append(os.path.relpath(full, root))
        return files


FAULT_ENUM_FILE = "src/fault/fault.hh"
FAULT_TEST_DIR = "tests/fault"

# Per-kind proofs beyond the Injection/Recovery pair. A restart is only
# safe if the re-keyed session provably rejects pre-crash ciphertexts,
# so that test is load-bearing and may not be deleted or renamed away.
EXTRA_FAULT_TESTS = {
    "ReplicaRestart": ["ReplicaRestartRecoveryNeverReusesPreCrashIvs"],
}


def fault_kinds(root):
    """Parse the ``enum class Kind`` enumerators out of fault.hh."""
    path = os.path.join(root, FAULT_ENUM_FILE)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return []
    match = re.search(r"enum\s+class\s+Kind\b[^{]*\{(.*?)\}", text,
                      re.DOTALL)
    if not match:
        return []
    body = re.sub(r"/\*.*?\*/", "", match.group(1), flags=re.DOTALL)
    body = re.sub(r"//[^\n]*", "", body)
    kinds = []
    for part in body.split(","):
        name = part.split("=")[0].strip()
        if re.fullmatch(r"[A-Za-z_]\w*", name or ""):
            kinds.append(name)
    return kinds


def fault_test_names(root, files):
    """All TEST/TEST_F/TEST_P test names under tests/fault/."""
    names = []
    test_re = re.compile(r"TEST(?:_F|_P)?\(\s*\w+\s*,\s*(\w+)\s*\)")
    for rel in files:
        rel_posix = rel.replace(os.sep, "/")
        if not rel_posix.startswith(FAULT_TEST_DIR + "/"):
            continue
        if not rel_posix.endswith(SOURCE_EXTENSIONS):
            continue
        try:
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                names.extend(test_re.findall(f.read()))
        except OSError:
            continue
    return names


def check_fault_coverage(root, files):
    kinds = fault_kinds(root)
    if not kinds:
        return [f"{FAULT_ENUM_FILE}: could not parse fault::Fault::Kind "
                "enumerators"]
    names = fault_test_names(root, files)
    findings = []
    for kind in kinds:
        for suffix in ("Injection", "Recovery"):
            want = kind + suffix
            if not any(want in name for name in names):
                findings.append(
                    f"{FAULT_ENUM_FILE}: Fault::Kind::{kind} has no "
                    f"{suffix.lower()} test: add a test named "
                    f"*{want}* under {FAULT_TEST_DIR}/"
                )
        for want in EXTRA_FAULT_TESTS.get(kind, []):
            if not any(want in name for name in names):
                findings.append(
                    f"{FAULT_ENUM_FILE}: Fault::Kind::{kind} is "
                    f"missing its required proof test *{want}* under "
                    f"{FAULT_TEST_DIR}/"
                )
    return findings


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    files = tracked_files(root)
    findings = check_fault_coverage(root, files)
    for rel in files:
        if not rel.endswith(SOURCE_EXTENSIONS):
            continue
        rel_posix = rel.replace(os.sep, "/")
        active = [
            rule
            for rule in RULES
            if rel_posix.startswith(tuple(r + "/" for r in rule["roots"]))
            and rel_posix not in rule["allow"]
        ]
        if not active:
            continue
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                lines = f.readlines()
        except OSError:
            continue
        for lineno, line in enumerate(lines, 1):
            for rule in active:
                if rule["regex"].search(line):
                    findings.append(
                        f"{rel_posix}:{lineno}: {rule['name']}: "
                        f"{line.strip()}"
                    )
    if findings:
        print("banned-API check failed:")
        for finding in findings:
            print("  " + finding)
        return 1
    print("banned-API check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
