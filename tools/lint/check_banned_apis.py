#!/usr/bin/env python3
"""Back-compat entry point for the original banned-API gate.

The rules now live as registered checks in pipellm_lint.py (see
``--list-checks`` there); this wrapper keeps the historical CI
invocation and muscle memory working. It runs the full engine — same
checks, same exit code, same diagnostics.

Usage: tools/lint/check_banned_apis.py [repo-root]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from pipellm_lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
