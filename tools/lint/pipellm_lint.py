#!/usr/bin/env python3
"""PipeLLM project lint engine.

A small multi-pass analyzer over the C++ tree: every rule is a
*registered check* producing ``file:line: [check-name] message``
diagnostics, individually suppressible at the offending line, runnable
tree-wide (CI) or restricted to changed files (pre-commit).

Registered checks (``--list-checks`` prints this table):

  File-scoped pattern checks, ported from the original
  check_banned_apis.py gate:
    deprecated-platform-alias  no-arg Platform::device()/channel()
    nondeterministic-rand-time rand()/srand()/std::time
    raw-thread                 std::thread outside sim/worker_pool
    bench-config-drift         hand-rolled ClusterConfig in bench/
    printf-io                  printf-family I/O outside common/logging
    bare-mutex                 std::mutex & friends outside
                               common/mutex.hh — lock discipline is
                               compiler-checked only through the
                               capability-annotated wrappers

  Multi-pass checks:
    layering                   include-graph rules: each src/ module
                               may only include the modules below it in
                               the DESIGN.md §13 layering diagram; src/
                               never includes bench/, tests/, tools/ or
                               examples/
    determinism                fingerprint-affecting code (src/sim,
                               src/serving, src/scenario, src/chaos)
                               must not read wall clocks, iterate
                               unordered containers, or use
                               locale-dependent formatting
    audit-hook-coverage        every IV-consuming / tag-sealing /
                               session-epoch site names a
                               PIPELLM_AUDIT_HOOK in its enclosing
                               function
    fault-test-coverage        every fault::Fault::Kind has Injection +
                               Recovery (+ extra named proof) tests

Suppressing a finding requires a justification on the flagged line or
the line directly above it::

    foo();  // pipellm-lint: allow(check-name) -- why this is OK

A suppression without a reason is itself a finding. Checks named in a
per-check ``allow`` set (whole files that exist to exercise the banned
construct) are listed in the check's configuration below, next to the
rule they exempt.

Usage:
  tools/lint/pipellm_lint.py [--root DIR] [--check NAME]...
      [--changed-files FILE...] [--diff-base GITREF]
      [--compile-commands build/compile_commands.json]
      [--list-checks]

Exits nonzero and prints one line per finding.
"""

import argparse
import json
import os
import re
import subprocess
import sys

SOURCE_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp", ".h", ".c")

# Trees never scanned: the lint test corpus contains deliberately-bad
# fixtures, and build trees contain generated code.
EXCLUDED_PREFIXES = ("tests/lint/fixtures/",)

SUPPRESS_RE = re.compile(
    r"pipellm-lint:\s*allow\(([a-z0-9-]+)\)(.*)$")


class Diagnostic:
    """One finding, printable as file:line: [check] message."""

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class SourceFile:
    """A lazily-loaded source file with 1-based line access."""

    def __init__(self, root, rel):
        self.rel = rel
        self._path = os.path.join(root, rel)
        self._lines = None

    @property
    def lines(self):
        if self._lines is None:
            try:
                with open(self._path, encoding="utf-8",
                          errors="replace") as f:
                    self._lines = f.read().splitlines()
            except OSError:
                self._lines = []
        return self._lines


class Context:
    """Everything a check may look at: the file set, loaded sources,
    and (optionally) real include paths from compile_commands.json."""

    def __init__(self, root, files, changed=None, include_dirs=None):
        self.root = root
        self.files = files  # all tracked rel paths (posix)
        self.changed = changed  # None = tree-wide, else set of rels
        self.include_dirs = include_dirs or []
        self._sources = {}

    def source(self, rel):
        if rel not in self._sources:
            self._sources[rel] = SourceFile(self.root, rel)
        return self._sources[rel]

    def source_files(self, prefixes=None):
        """Source-extension files, honoring changed-files mode."""
        out = []
        for rel in self.files:
            if not rel.endswith(SOURCE_EXTENSIONS):
                continue
            if rel.startswith(EXCLUDED_PREFIXES):
                continue
            if prefixes and not rel.startswith(prefixes):
                continue
            if self.changed is not None and rel not in self.changed:
                continue
            out.append(rel)
        return out


CHECKS = []


def register_check(name, description, tree_level=False):
    """Decorator adding fn(ctx) -> [Diagnostic] to the registry.

    tree_level checks reason about the whole tree (enum coverage) and
    run even in changed-files mode; file-scoped checks are restricted
    to the changed set.
    """

    def wrap(fn):
        CHECKS.append({
            "name": name,
            "description": description,
            "tree_level": tree_level,
            "fn": fn,
        })
        return fn

    return wrap


# ---------------------------------------------------------------------------
# File-scoped pattern checks (the original banned-API rules).

COMMENT_LINE_RE = re.compile(r"^\s*(?://|\*|/\*)")


def pattern_check(regex, roots, allow, message):
    def run(ctx):
        findings = []
        for rel in ctx.source_files(tuple(r + "/" for r in roots)):
            if rel in allow:
                continue
            for lineno, line in enumerate(ctx.source(rel).lines, 1):
                # Prose mentioning a banned API is fine; only code trips.
                if COMMENT_LINE_RE.match(line):
                    continue
                if regex.search(line):
                    findings.append(
                        Diagnostic(rel, lineno, "", message + ": "
                                   + line.strip()))
        return findings

    return run


@register_check(
    "deprecated-platform-alias",
    "no-argument Platform::device()/channel() compatibility aliases")
def check_platform_alias(ctx):
    return pattern_check(
        re.compile(r"\bplatform_?\.\s*(?:device|channel)\(\)"),
        ("src", "tests", "bench", "examples"),
        {
            # The compatibility test exercises the aliases on purpose.
            "tests/runtime/test_multi_device.cc",
        },
        "deprecated Platform::device()/channel() alias; name the device",
    )(ctx)


@register_check(
    "nondeterministic-rand-time",
    "rand()/srand()/std::time — all randomness goes through common/rng")
def check_rand_time(ctx):
    return pattern_check(
        re.compile(
            r"\b(?:s?rand)\s*\(|std::time\b"
            r"|\btime\s*\(\s*(?:NULL|nullptr)\s*\)"),
        ("src", "tests", "bench", "examples"),
        set(),
        "non-deterministic rand()/srand()/std::time; use common/rng.hh",
    )(ctx)


@register_check(
    "raw-thread",
    "std::thread/jthread/async outside sim/worker_pool")
def check_raw_thread(ctx):
    # Determinism rests on every worker thread being driven by the
    # WorkerPool's barriered parallelFor; ad-hoc std::thread /
    # std::async escapes the (tick, shard, seq) ordering protocol.
    # WorkerPool::hardwareConcurrency() is the sanctioned wrapper for
    # sizing decisions.
    return pattern_check(
        re.compile(
            r"\bstd::(?:thread|jthread|async)\b"
            r"|#include\s*<(?:thread|future)>"),
        ("src", "tests", "bench", "examples"),
        {
            "src/sim/worker_pool.hh",
            "src/sim/worker_pool.cc",
        },
        "raw threading outside sim/worker_pool",
    )(ctx)


@register_check(
    "bench-config-drift",
    "hand-rolled serving::ClusterConfig in bench/ mains")
def check_bench_config(ctx):
    # Figure benches describe experiments in committed .scenario files
    # and run them through scenario::runScenario; assembling a
    # ClusterConfig by hand in a bench main recreates per-experiment
    # drift. Only the simulator-core microbenchmark stays hand-built
    # (it measures the harness, not a paper figure).
    return pattern_check(
        re.compile(r"\bserving::ClusterConfig\b|\bClusterConfig\s+\w+\s*;"),
        ("bench",),
        {
            "bench/bench_simcore.cc",
        },
        "hand-rolled ClusterConfig assembly in bench/",
    )(ctx)


@register_check(
    "printf-io",
    "printf-family I/O outside common/logging")
def check_printf(ctx):
    return pattern_check(
        re.compile(
            r"\b(?:printf|fprintf|sprintf|snprintf|vsnprintf"
            r"|puts|putchar)\s*\("),
        ("src",),
        {
            "src/common/logging.cc",
            "src/common/logging.hh",
        },
        "printf-family I/O outside common/logging",
    )(ctx)


@register_check(
    "bare-mutex",
    "std::mutex family outside the annotated common/mutex.hh wrappers")
def check_bare_mutex(ctx):
    # Clang's thread-safety analysis only sees locks that carry
    # capability attributes; a bare std::mutex member silently opts its
    # guarded state out of the compile-time discipline. std::recursive_
    # mutex is doubly banned — the analysis cannot model re-entrant
    # acquisition at all (DESIGN.md §13).
    return pattern_check(
        re.compile(
            r"\bstd::(?:recursive_)?mutex\b|\bstd::(?:shared_)?timed_mutex\b"
            r"|\bstd::condition_variable(?:_any)?\b"
            r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
        ("src",),
        {
            # The one place allowed to touch the std primitives: the
            # annotated wrappers themselves.
            "src/common/mutex.hh",
        },
        "bare std mutex/lock primitive; use the capability-annotated "
        "wrappers from common/mutex.hh (sim::Mutex/sim::LockGuard)",
    )(ctx)


# ---------------------------------------------------------------------------
# Layering: the include-graph DAG (DESIGN.md §13 diagram).

# Module -> modules it may directly include (besides itself). The
# transitive closure is intentionally NOT granted: each edge is a
# design decision, reviewed when it first appears here.
ALLOWED_DEPS = {
    "common": set(),
    "audit": {"common"},
    "fault": {"common"},
    "trace": {"common"},
    "mem": {"common"},
    "sim": {"common", "audit"},
    "crypto": {"common", "audit", "sim", "fault"},
    "gpu": {"common", "audit", "crypto", "mem", "sim"},
    "llm": {"common", "gpu"},
    "runtime": {"common", "audit", "crypto", "fault", "gpu", "mem",
                "sim"},
    "pipellm": {"common", "audit", "crypto", "fault", "gpu", "mem",
                "runtime", "sim"},
    # serving -> crypto: KvMigrator owns per-pair SecureChannel
    # sessions (inter-replica KV migration links), reviewed with the
    # disaggregated-serving PR.
    "serving": {"common", "audit", "crypto", "fault", "llm", "runtime",
                "sim", "trace"},
    "chaos": {"common", "audit", "fault", "llm", "pipellm", "runtime",
              "serving", "trace"},
    "scenario": {"common", "chaos", "fault", "llm", "pipellm",
                 "runtime", "serving", "trace"},
}

# The cipher primitives are the bottom of the crypto stack: pure
# algorithms validated against NIST vectors, reusable anywhere. Only
# the session layer (channel/engine) may touch simulation or audit
# machinery.
CRYPTO_PRIMITIVES = ("aes", "gcm", "ghash", "iv")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def resolve_include(ctx, inc):
    """Map a quoted include to a repo-relative path.

    With compile_commands.json wired in, each -I directory is tried in
    order (the compiler's view); otherwise the repo root is the only
    include root, which matches the tree's include convention.
    """
    candidates = ctx.include_dirs if ctx.include_dirs else [ctx.root]
    for d in candidates:
        full = os.path.normpath(os.path.join(d, inc))
        if os.path.exists(full):
            rel = os.path.relpath(full, ctx.root)
            if not rel.startswith(".."):
                return rel.replace(os.sep, "/")
    return inc  # unresolved: treat as repo-relative spelling


@register_check(
    "layering",
    "include-graph rules: src modules follow the layering DAG; src "
    "never includes bench/tests/tools/examples")
def check_layering(ctx):
    findings = []
    for rel in ctx.source_files(("src/",)):
        parts = rel.split("/")
        if len(parts) < 3:
            continue
        module = parts[1]
        allowed = ALLOWED_DEPS.get(module)
        stem = os.path.splitext(parts[-1])[0]
        primitive = module == "crypto" and stem in CRYPTO_PRIMITIVES
        for lineno, line in enumerate(ctx.source(rel).lines, 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            inc = resolve_include(ctx, m.group(1))
            inc_parts = inc.split("/")
            # Includes are spelled relative to the repo root with the
            # src/ prefix dropped (target_include_directories adds
            # both), so "sim/foo.hh" means src/sim/foo.hh.
            if inc_parts[0] == "src" and len(inc_parts) > 1:
                inc_parts = inc_parts[1:]
            target = inc_parts[0]
            if target in ("bench", "tests", "tools", "examples"):
                findings.append(Diagnostic(
                    rel, lineno, "",
                    f"src/ must not include {target}/ "
                    f"(got \"{m.group(1)}\"); promote the dependency "
                    f"into a src/ library"))
                continue
            if allowed is None or target not in ALLOWED_DEPS:
                continue  # unknown module or non-module include
            if primitive and target not in ("common", "crypto"):
                findings.append(Diagnostic(
                    rel, lineno, "",
                    f"crypto primitive {stem} may only include "
                    f"common/ and other primitives, not {target}/"))
                continue
            if target != module and target not in allowed:
                findings.append(Diagnostic(
                    rel, lineno, "",
                    f"layer {module}/ may not include {target}/ "
                    f"(allowed: {', '.join(sorted(allowed)) or 'none'})"
                ))
    return findings


# ---------------------------------------------------------------------------
# Determinism: fingerprint-affecting code must not consult wall
# clocks, unordered iteration order, or the process locale.

DETERMINISM_DIRS = ("src/sim/", "src/serving/", "src/scenario/",
                    "src/chaos/")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system|steady|high_resolution)_clock"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|#include\s*<chrono>")

LOCALE_RE = re.compile(
    r"\bstd::locale\b|\bsetlocale\s*\(|\.imbue\s*\(")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_VAR_RE = re.compile(
    r">\s*(\w+)\s*(?:;|=|\{|\()")


@register_check(
    "determinism",
    "no wall clocks, unordered-container iteration, or locale use in "
    "fingerprint-affecting code (sim/serving/scenario/chaos)")
def check_determinism(ctx):
    findings = []
    for rel in ctx.source_files(DETERMINISM_DIRS):
        lines = ctx.source(rel).lines
        unordered_vars = set()
        # Pass 1: names declared with an unordered container type.
        # Heuristic: the identifier following the closing '>' of an
        # unordered_map/set declaration (members and locals alike).
        for line in lines:
            if not UNORDERED_DECL_RE.search(line):
                continue
            m = UNORDERED_VAR_RE.search(line)
            if m:
                unordered_vars.add(m.group(1))
        iter_re = None
        if unordered_vars:
            names = "|".join(re.escape(v) for v in sorted(unordered_vars))
            iter_re = re.compile(
                r"for\s*\([^;)]*:\s*(?:this->)?(?:" + names + r")\b"
                r"|\b(?:" + names + r")\s*\.\s*c?begin\s*\(")
        for lineno, line in enumerate(lines, 1):
            if WALL_CLOCK_RE.search(line):
                findings.append(Diagnostic(
                    rel, lineno, "",
                    "wall-clock time in fingerprint-affecting code; "
                    "simulated time is sim::Tick"))
            if LOCALE_RE.search(line):
                findings.append(Diagnostic(
                    rel, lineno, "",
                    "locale-dependent formatting in "
                    "fingerprint-affecting code"))
            if iter_re and iter_re.search(line):
                findings.append(Diagnostic(
                    rel, lineno, "",
                    "iteration over an unordered container in "
                    "fingerprint-affecting code; iterate a sorted key "
                    "vector or use std::map"))
    return findings


# ---------------------------------------------------------------------------
# Audit-hook coverage: the crypto primitives that consume IVs, seal or
# open tags, or open a fresh session epoch must tell the auditor.

AUDIT_SITES = [
    # (file-prefix, line regex, what the site is)
    ("src/", re.compile(r"\bgcm_->\s*(?:seal|open)\s*\("),
     "raw AEAD seal/open"),
    ("src/gpu/", re.compile(r"\b(?:rx|tx)_iv_\s*\.\s*next\s*\(\)"),
     "bus-crossing IV consumption"),
    ("src/", re.compile(r"::\s*(?:rekey|enableCc)\s*\([^;]*$"),
     "session-epoch transition"),
]

HOOK_RE = re.compile(r"\bPIPELLM_AUDIT_HOOK\s*\(")


def function_spans(lines):
    """(open, close) line pairs for gem5-style function bodies, whose
    braces sit in column 0. Good enough for the .cc layout this tree
    enforces via clang-format."""
    spans = []
    open_line = None
    for lineno, line in enumerate(lines, 1):
        if line.startswith("{") and open_line is None:
            open_line = lineno
        elif line.startswith("}") and open_line is not None:
            spans.append((open_line, lineno))
            open_line = None
    return spans


@register_check(
    "audit-hook-coverage",
    "IV-consuming / tag-sealing / epoch sites name a PIPELLM_AUDIT_HOOK "
    "in their enclosing function")
def check_audit_hooks(ctx):
    findings = []
    for rel in ctx.source_files(("src/",)):
        if not rel.endswith((".cc", ".cpp")):
            continue
        lines = ctx.source(rel).lines
        spans = None
        hook_lines = None
        for prefix, site_re, what in AUDIT_SITES:
            if not rel.startswith(prefix):
                continue
            for lineno, line in enumerate(lines, 1):
                if not site_re.search(line):
                    continue
                if spans is None:
                    spans = function_spans(lines)
                    hook_lines = [i for i, l in enumerate(lines, 1)
                                  if HOOK_RE.search(l)]
                enclosing = None
                for open_line, close_line in spans:
                    if open_line <= lineno <= close_line:
                        enclosing = (open_line, close_line)
                        break
                    # A definition-line match sits just above its body.
                    if lineno < open_line <= lineno + 3:
                        enclosing = (open_line, close_line)
                        break
                if enclosing is None:
                    continue  # declaration in a header chunk etc.
                lo, hi = enclosing
                if not any(lo <= h <= hi for h in hook_lines):
                    findings.append(Diagnostic(
                        rel, lineno, "",
                        f"{what} site has no PIPELLM_AUDIT_HOOK in its "
                        f"enclosing function; the invariant auditor "
                        f"must observe every such event"))
        # no sites → nothing to do for this file
    return findings


# ---------------------------------------------------------------------------
# Fault-model coverage (tree-level; ported from check_banned_apis.py).

FAULT_ENUM_FILE = "src/fault/fault.hh"
FAULT_TEST_DIR = "tests/fault"

# Per-kind proofs beyond the Injection/Recovery pair. A restart is only
# safe if the re-keyed session provably rejects pre-crash ciphertexts,
# so that test is load-bearing and may not be deleted or renamed away.
# The migration kinds each pin the ledger side of their recovery: a
# failed/abandoned speculative window must be discarded, never
# verified, or the audit story for migrated KV is broken.
EXTRA_FAULT_TESTS = {
    "ReplicaRestart": ["ReplicaRestartRecoveryNeverReusesPreCrashIvs"],
    "MigrationTagFault":
        ["MigrationTagFaultRecoveryDiscardsSpeculativeWindow"],
    "MigrationStall": ["MigrationStallFallbackAbandonsChunksUnverified"],
    "DestCrashMidMigration":
        ["DestCrashMidMigrationAbandonedChunksNeverVerify"],
}


def fault_kinds(ctx):
    """Parse the ``enum class Kind`` enumerators out of fault.hh."""
    text = "\n".join(ctx.source(FAULT_ENUM_FILE).lines)
    match = re.search(r"enum\s+class\s+Kind\b[^{]*\{(.*?)\}", text,
                      re.DOTALL)
    if not match:
        return []
    body = re.sub(r"/\*.*?\*/", "", match.group(1), flags=re.DOTALL)
    body = re.sub(r"//[^\n]*", "", body)
    kinds = []
    for part in body.split(","):
        name = part.split("=")[0].strip()
        if re.fullmatch(r"[A-Za-z_]\w*", name or ""):
            kinds.append(name)
    return kinds


@register_check(
    "fault-test-coverage",
    "every fault::Fault::Kind has Injection/Recovery (+ extra proof) "
    "tests in tests/fault/",
    tree_level=True)
def check_fault_coverage(ctx):
    if FAULT_ENUM_FILE not in ctx.files:
        return []  # fixture trees without a fault model
    kinds = fault_kinds(ctx)
    if not kinds:
        return [Diagnostic(FAULT_ENUM_FILE, 1, "",
                           "could not parse fault::Fault::Kind "
                           "enumerators")]
    test_re = re.compile(r"TEST(?:_F|_P)?\(\s*\w+\s*,\s*(\w+)\s*\)")
    names = []
    for rel in ctx.files:
        if not rel.startswith(FAULT_TEST_DIR + "/"):
            continue
        if not rel.endswith(SOURCE_EXTENSIONS):
            continue
        names.extend(test_re.findall(
            "\n".join(ctx.source(rel).lines)))
    findings = []
    for kind in kinds:
        wanted = [kind + "Injection", kind + "Recovery"]
        wanted += EXTRA_FAULT_TESTS.get(kind, [])
        for want in wanted:
            if not any(want in name for name in names):
                findings.append(Diagnostic(
                    FAULT_ENUM_FILE, 1, "",
                    f"Fault::Kind::{kind} is missing a test named "
                    f"*{want}* under {FAULT_TEST_DIR}/"))
    return findings


# ---------------------------------------------------------------------------
# Engine.

def tracked_files(root):
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others",
             "--exclude-standard"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return out.splitlines()
    except (subprocess.CalledProcessError, OSError):
        files = []
        for dirpath, dirnames, names in os.walk(root):
            dirnames[:] = [d for d in dirnames
                           if d not in (".git", "build", "build-audit",
                                        "build-rel", "build-tsan")]
            for name in names:
                full = os.path.join(dirpath, name)
                files.append(os.path.relpath(full, root))
        return sorted(f.replace(os.sep, "/") for f in files)


def changed_files(root, base):
    out = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base],
        cwd=root, capture_output=True, text=True, check=True).stdout
    return {line.strip() for line in out.splitlines() if line.strip()}


def include_dirs_from_compile_commands(root, path):
    """The union of -I directories, in first-seen order. Quoted
    includes resolve against these exactly as the compiler would."""
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as err:
        print(f"pipellm-lint: cannot read {path}: {err}",
              file=sys.stderr)
        return []
    dirs = []
    seen = set()
    inc_re = re.compile(r"-I\s*(\S+)")
    for entry in entries:
        command = entry.get("command")
        if command is None:
            command = " ".join(entry.get("arguments", []))
        cwd = entry.get("directory", root)
        for m in inc_re.finditer(command):
            d = m.group(1)
            if not os.path.isabs(d):
                d = os.path.normpath(os.path.join(cwd, d))
            if d not in seen:
                seen.add(d)
                dirs.append(d)
    return dirs


def apply_suppressions(ctx, findings):
    """Drop findings carrying a justified allow(<check>) on the line or
    the one above; flag naked suppressions (no reason) instead."""
    kept = []
    for diag in findings:
        lines = ctx.source(diag.path).lines
        suppressed = False
        for lineno in (diag.line, diag.line - 1):
            if not 1 <= lineno <= len(lines):
                continue
            m = SUPPRESS_RE.search(lines[lineno - 1])
            if not m:
                continue
            if m.group(1) != diag.check:
                continue
            reason = m.group(2).strip().lstrip("-— ").strip()
            if not reason:
                kept.append(Diagnostic(
                    diag.path, lineno, diag.check,
                    "suppression without a justification; write "
                    "`pipellm-lint: allow(" + diag.check +
                    ") -- <reason>`"))
                suppressed = True
                break
            suppressed = True
            break
        if not suppressed:
            kept.append(diag)
    return kept


def run_checks(ctx, only=None):
    findings = []
    for check in CHECKS:
        if only and check["name"] not in only:
            continue
        if ctx.changed is not None and check["tree_level"]:
            # Tree-level checks still run in changed-files mode; they
            # are cheap and their verdict depends on the whole tree.
            pass
        for diag in check["fn"](ctx):
            diag.check = check["name"]
            findings.append(diag)
    findings = apply_suppressions(ctx, findings)
    findings.sort(key=lambda d: (d.path, d.line, d.check))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--root", dest="root_opt", default=None,
                        help="repository root (overrides positional)")
    parser.add_argument("--check", action="append", default=None,
                        metavar="NAME",
                        help="run only the named check (repeatable)")
    parser.add_argument("--changed-files", nargs="*", default=None,
                        metavar="FILE",
                        help="restrict file-scoped checks to FILES")
    parser.add_argument("--diff-base", default=None, metavar="GITREF",
                        help="restrict to files changed since GITREF")
    parser.add_argument("--compile-commands", default=None,
                        metavar="JSON",
                        help="resolve includes via the compiler's -I "
                             "dirs from this compile_commands.json")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args(argv)

    if args.list_checks:
        for check in CHECKS:
            kind = "tree" if check["tree_level"] else "file"
            print(f"{check['name']:26} [{kind}] {check['description']}")
        return 0

    root = args.root_opt or args.root
    if args.check:
        unknown = set(args.check) - {c["name"] for c in CHECKS}
        if unknown:
            print("pipellm-lint: unknown check(s): "
                  + ", ".join(sorted(unknown)), file=sys.stderr)
            return 2

    changed = None
    if args.changed_files is not None:
        changed = {f.replace(os.sep, "/") for f in args.changed_files}
    elif args.diff_base:
        changed = changed_files(root, args.diff_base)

    include_dirs = []
    if args.compile_commands:
        include_dirs = include_dirs_from_compile_commands(
            root, args.compile_commands)

    ctx = Context(root, tracked_files(root), changed=changed,
                  include_dirs=include_dirs)
    findings = run_checks(ctx, only=set(args.check) if args.check
                          else None)
    if findings:
        print("pipellm-lint failed:")
        for diag in findings:
            print("  " + diag.render())
        return 1
    scope = ("changed files" if changed is not None else "tree")
    ran = len(args.check) if args.check else len(CHECKS)
    print(f"pipellm-lint passed ({ran} checks, {scope})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
