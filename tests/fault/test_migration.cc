/**
 * @file
 * Migration fault recovery: the three migration Fault::Kinds are
 * injected against live KvMigrator streams and the recovery paths —
 * retry-from-last-verified-chunk, stall-watchdog fallback, and
 * destination-crash abort + re-route — are shown to either deliver
 * every chunk verified or abandon the stream with every unverified
 * chunk discarded in the ledger. Under -DPIPELLM_AUDIT=ON the same
 * runs must stay violation-free: recovery may never reuse an IV or
 * leave a sealed chunk undisposed.
 */

#include <gtest/gtest.h>

#include "audit/audit.hh"
#include "fault/fault.hh"
#include "runtime/platform.hh"
#include "serving/migrate.hh"
#include "tests/serving/serving_fixture.hh"

using namespace pipellm;
using namespace pipellm::serving;
using serving_test::tinyGpu;

namespace {

struct MigrationRig : ::testing::Test
{
    runtime::Platform platform{tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 3,
                               runtime::HostResources{}};

    void
    SetUp() override
    {
#if PIPELLM_AUDIT_ENABLED
        audit::Auditor::instance().reset();
        audit::Auditor::instance().setTrapOnViolation(false);
#endif
    }

    void
    TearDown() override
    {
#if PIPELLM_AUDIT_ENABLED
        EXPECT_TRUE(audit::Auditor::instance().violations().empty())
            << audit::Auditor::instance().report();
        audit::Auditor::instance().reset();
#endif
    }

    void
    arm(fault::FaultPlan plan)
    {
        plan.seed = plan.seed ? plan.seed : 77;
        platform.armFaults(plan);
    }

    KvMigrator
    migrator()
    {
        MigrationConfig cfg;
        cfg.chunk_bytes = 256 * KiB;
        cfg.pipeline_depth = 4;
        return KvMigrator(platform, cfg);
    }
};

} // namespace

TEST_F(MigrationRig, MigrationTagFaultInjectionIsDetectedEveryTime)
{
    fault::FaultPlan plan;
    plan.migration_tag_rate = 0.25;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 8 * MiB, 0);
    EXPECT_EQ(res.status, MigrationStatus::Completed);

    const auto &rep = mig.faultReport();
    ASSERT_GT(rep.migration_tag_faults, 0u);
    // Every injected corruption surfaced as a tag failure — none
    // slipped through verification.
    EXPECT_EQ(rep.migration_tag_faults,
              platform.faultInjector().injected(
                  fault::Kind::MigrationTagFault));
}

TEST_F(MigrationRig, MigrationTagFaultRecoveryResumesFromLastVerified)
{
    fault::FaultPlan plan;
    plan.migration_tag_rate = 0.25;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 8 * MiB, 0);
    // Recovery replays from the last verified chunk on fresh IVs
    // until the full stream lands.
    EXPECT_EQ(res.status, MigrationStatus::Completed);
    EXPECT_EQ(res.chunks_verified, res.chunks_total);
    const auto &rep = mig.faultReport();
    EXPECT_EQ(rep.migration_retries, rep.migration_tag_faults);
    EXPECT_EQ(rep.migrated_chunks, res.chunks_total);
}

TEST_F(MigrationRig, MigrationTagFaultRecoveryDiscardsSpeculativeWindow)
{
    fault::FaultPlan plan;
    plan.migration_tag_rate = 0.25;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 8 * MiB, 0);
    ASSERT_EQ(res.status, MigrationStatus::Completed);
    const auto &rep = mig.faultReport();
    ASSERT_GT(rep.migration_tag_faults, 0u);
    // A failed chunk takes its whole speculative window with it: at
    // least the failed chunk per retry is discarded, and nothing is
    // both discarded and counted as migrated.
    EXPECT_GE(rep.discarded_chunks, rep.migration_tag_faults);
    EXPECT_EQ(rep.migrated_chunks + res.chunks_discarded,
              res.chunks_total + rep.discarded_chunks);
}

TEST_F(MigrationRig, MigrationStallInjectionChargesWatchdogAndBackoff)
{
    fault::FaultPlan plan;
    plan.migration_stall_rate = 0.3;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 4 * MiB, 0);
    EXPECT_EQ(res.status, MigrationStatus::Completed);
    const auto &rep = mig.faultReport();
    ASSERT_GT(rep.migration_stalls, 0u);
    // Each stall charges at least the watchdog timeout before the
    // retry fires.
    EXPECT_GE(rep.retry_latency,
              rep.migration_stalls *
                  platform.faultInjector().plan().migration_stall_timeout);
}

TEST_F(MigrationRig, MigrationStallRecoveryIsBoundedByTheAttemptCap)
{
    fault::FaultPlan plan;
    plan.migration_stall_rate = 1.0;
    plan.max_migration_attempts = 3;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 1 * MiB, 0);
    // A permanently stalled link never hangs the router: after the
    // attempt cap the stream aborts so the caller can degrade to
    // local decode.
    EXPECT_EQ(res.status, MigrationStatus::Stalled);
    EXPECT_EQ(mig.faultReport().migration_stalls, 3u);
    EXPECT_EQ(mig.faultReport().migration_fallbacks, 1u);
}

TEST_F(MigrationRig, MigrationStallFallbackAbandonsChunksUnverified)
{
    fault::FaultPlan plan;
    plan.migration_stall_rate = 1.0;
    plan.max_migration_attempts = 2;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 1 * MiB, 0);
    ASSERT_EQ(res.status, MigrationStatus::Stalled);
    // The abandoned speculative window is discarded in the ledger,
    // never verified: local decode reuses the resident KV instead.
    EXPECT_EQ(res.chunks_verified, 0u);
    EXPECT_EQ(res.chunks_discarded, 4u);
    EXPECT_EQ(mig.faultReport().migrated_chunks, 0u);
}

TEST_F(MigrationRig, DestCrashMidMigrationInjectionAbortsTheStream)
{
    fault::FaultPlan plan;
    plan.dest_crash_rate = 1.0;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 1 * MiB, 0);
    EXPECT_EQ(res.status, MigrationStatus::DestCrashed);
    EXPECT_EQ(mig.faultReport().dest_mid_migration_crashes, 1u);
    EXPECT_GT(res.done, Tick(0));
}

TEST_F(MigrationRig, DestCrashMidMigrationRecoveryReroutesOnFreshKeys)
{
    // First stream dies under a destination crash; the router's
    // recovery is to re-key every link of the dead replica and replay
    // the migration from chunk zero on a survivor. Both the re-route
    // and a later stream to the restarted replica must verify cleanly
    // on the fresh epochs.
    auto mig = migrator();
    {
        fault::FaultPlan plan;
        plan.dest_crash_rate = 1.0;
        arm(plan);
        ASSERT_EQ(mig.migrate(0, 1, 1 * MiB, 0).status,
                  MigrationStatus::DestCrashed);
    }
    platform.faultInjector().disarm();
    std::uint64_t epoch_before = mig.link(0, 1).epoch();
    mig.rekeyLinksOf(1);
    EXPECT_GT(mig.link(0, 1).epoch(), epoch_before);
    EXPECT_EQ(mig.migrate(0, 2, 1 * MiB, 1000).status,
              MigrationStatus::Completed);
    EXPECT_EQ(mig.migrate(0, 1, 1 * MiB, 2000).status,
              MigrationStatus::Completed);
}

TEST_F(MigrationRig, DestCrashMidMigrationAbandonedChunksNeverVerify)
{
    fault::FaultPlan plan;
    plan.dest_crash_rate = 1.0;
    arm(plan);
    auto mig = migrator();
    auto res = mig.migrate(0, 1, 1 * MiB, 0);
    ASSERT_EQ(res.status, MigrationStatus::DestCrashed);
    // Everything sealed but unverified when the destination died —
    // the in-flight chunk and the speculative window behind it — is
    // discarded in the ledger; none of it ever counts as migrated.
    EXPECT_EQ(res.chunks_verified, 0u);
    EXPECT_EQ(res.chunks_discarded, 4u);
    EXPECT_EQ(mig.faultReport().migrated_chunks, 0u);
    EXPECT_EQ(mig.faultReport().discarded_chunks, 4u);
}
