/**
 * @file
 * End-to-end fault recovery: every Fault::Kind is injected against a
 * live runtime (or cluster) and the recovery path is shown to deliver
 * the same functional result, with the cost visible in FaultReport.
 * Under -DPIPELLM_AUDIT=ON the same runs must stay violation-free:
 * recovery may never break IV lockstep or ciphertext disposal.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/audit.hh"
#include "fault/fault.hh"
#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "serving/cluster.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::fault;
using runtime::CopyKind;
using runtime::Platform;
using runtime::Stream;

namespace {

struct FaultRig : ::testing::Test
{
    Platform platform;
    mem::Region host_a = platform.allocHost(8 * MiB, "host-a");
    mem::Region host_b = platform.allocHost(8 * MiB, "host-b");
    mem::Region dev = platform.gpu(0).alloc(8 * MiB, "dev");

    void
    SetUp() override
    {
#if PIPELLM_AUDIT_ENABLED
        audit::Auditor::instance().reset();
        audit::Auditor::instance().setTrapOnViolation(false);
#endif
    }

    void
    TearDown() override
    {
#if PIPELLM_AUDIT_ENABLED
        EXPECT_TRUE(audit::Auditor::instance().violations().empty())
            << audit::Auditor::instance().report();
        audit::Auditor::instance().reset();
#endif
    }

    /** Read @p n bytes of host memory at @p addr. */
    std::vector<std::uint8_t>
    hostBytes(Addr addr, std::uint64_t n)
    {
        std::vector<std::uint8_t> buf(n);
        platform.hostMem().read(addr, buf.data(), n);
        return buf;
    }
};

serving::VllmConfig
tinyEngine()
{
    serving::VllmConfig cfg;
    cfg.model = serving_test::tinyModel();
    cfg.parallel_sampling = 2;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

serving::RuntimeFactory
ccFactory()
{
    return [](Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

trace::Trace
clusterTrace(std::size_t n, double rate, std::uint64_t seed = 5)
{
    trace::DatasetProfile profile{"fault-test", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, seed);
    return gen.poisson(n, rate);
}

} // namespace

// --------------------------------------------------------------------
// TagCorruption
// --------------------------------------------------------------------

TEST_F(FaultRig, TagCorruptionInjectionIsDetectedEveryTime)
{
    runtime::CcRuntime rt(platform);
    FaultPlan plan;
    plan.seed = 5;
    plan.tag_corruption_rate = 0.5;
    platform.armFaults(plan);

    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int i = 0; i < 32; ++i)
        now = rt.memcpy(CopyKind::HostToDevice, dev.base, host_a.base,
                        1 * MiB, s, now);

    auto report = rt.faultReport();
    EXPECT_GT(report.tag_faults, 0u);
    // Detection is airtight: every injected corruption is caught by
    // GCM verification and answered with exactly one fresh-IV retry.
    EXPECT_EQ(report.tag_faults,
              platform.faultInjector().injected(Kind::TagCorruption));
    EXPECT_EQ(report.tag_retries, report.tag_faults);
    EXPECT_EQ(rt.gpu().integrityFailures(), report.tag_faults);
    EXPECT_EQ(platform.device(0).channel().tagMismatches(),
              report.tag_faults);
    EXPECT_GT(report.retry_latency, 0u);
}

TEST_F(FaultRig, TagCorruptionRecoveryDeliversThePayloadIntact)
{
    runtime::CcRuntime rt(platform);
    const std::uint64_t len = 1 * MiB;
    const std::uint64_t n = platform.device(0).channel().sampledLen(len);

    // A recognizable pattern, so corrupted ciphertext reaching the
    // destination could not be missed.
    std::vector<std::uint8_t> pattern(n);
    for (std::uint64_t i = 0; i < n; ++i)
        pattern[i] = std::uint8_t(i * 31 + 7);
    platform.hostMem().write(host_a.base, pattern.data(), n);

    FaultPlan plan;
    plan.seed = 9;
    plan.tag_corruption_rate = 0.4;
    platform.armFaults(plan);

    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int i = 0; i < 8; ++i) {
        now = rt.memcpy(CopyKind::HostToDevice, dev.base, host_a.base,
                        len, s, now);
        now = rt.memcpy(CopyKind::DeviceToHost, host_b.base, dev.base,
                        len, s, now);
    }

    // Round trip through both faulty directions: intact payload.
    EXPECT_EQ(hostBytes(host_b.base, n), pattern);
    auto report = rt.faultReport();
    EXPECT_GT(report.tag_faults, 0u);
    EXPECT_EQ(report.tag_retries, report.tag_faults);
}

TEST_F(FaultRig, TagCorruptionRecoveryKeepsIvCountersInLockstep)
{
    runtime::CcRuntime rt(platform);
    FaultPlan plan;
    plan.seed = 21;
    plan.tag_corruption_rate = 0.5;
    platform.armFaults(plan);

    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int i = 0; i < 16; ++i) {
        now = rt.memcpy(CopyKind::HostToDevice, dev.base, host_a.base,
                        512 * KiB, s, now);
        now = rt.memcpy(CopyKind::DeviceToHost, host_b.base, dev.base,
                        512 * KiB, s, now);
    }

    auto report = rt.faultReport();
    ASSERT_GT(report.tag_faults, 0u);
    // Retries consumed extra IVs on *both* sides: transfers + retries
    // on the H2D counter, and the channel keeps accepting (a counter
    // desync would have panicked mid-run).
    EXPECT_EQ(rt.h2dCounter() + rt.d2hCounter(),
              16u + 16u + report.tag_faults);
}

// --------------------------------------------------------------------
// CopyStall
// --------------------------------------------------------------------

TEST_F(FaultRig, CopyStallInjectionChargesWatchdogAndBackoff)
{
    // Identical workloads on a clean and a stall-injected platform.
    Platform stalled;
    mem::Region sh = stalled.allocHost(8 * MiB, "host");
    mem::Region sd = stalled.gpu(0).alloc(8 * MiB, "dev");
    FaultPlan plan;
    plan.seed = 11;
    plan.copy_stall_rate = 0.3;
    stalled.armFaults(plan);

    runtime::CcRuntime clean_rt(platform);
    runtime::CcRuntime stall_rt(stalled);
    Stream &cs = clean_rt.createStream("s");
    Stream &ss = stall_rt.createStream("s");
    Tick clean_done = 0, stall_done = 0;
    for (int i = 0; i < 16; ++i) {
        clean_done = clean_rt.memcpy(CopyKind::HostToDevice, dev.base,
                                     host_a.base, 2 * MiB, cs,
                                     clean_done);
        stall_done = stall_rt.memcpy(CopyKind::HostToDevice, sd.base,
                                     sh.base, 2 * MiB, ss, stall_done);
    }

    auto report = stall_rt.faultReport();
    EXPECT_GT(report.copy_stalls, 0u);
    EXPECT_EQ(report.copy_retries, report.copy_stalls);
    EXPECT_EQ(clean_rt.faultReport().copy_stalls, 0u);
    // Each stall costs at least the watchdog timeout.
    EXPECT_GE(report.retry_latency,
              report.copy_stalls * plan.copy_stall_timeout);
    EXPECT_GT(stall_done, clean_done);
}

TEST_F(FaultRig, CopyStallRecoveryIsBoundedByTheAttemptCap)
{
    FaultPlan plan;
    plan.seed = 13;
    plan.copy_stall_rate = 1.0; // the engine stalls at every chance
    plan.max_copy_attempts = 4;
    platform.armFaults(plan);

    runtime::CcRuntime rt(platform);
    Stream &s = rt.createStream("s");
    Tick done = rt.memcpy(CopyKind::HostToDevice, dev.base,
                          host_a.base, 2 * MiB, s, 0);
    // Even a permanently stalling engine converges: the cap bounds
    // the attempts per chunk and the transfer still completes.
    EXPECT_GT(done, 0u);
    auto report = rt.faultReport();
    EXPECT_GT(report.copy_stalls, 0u);
    EXPECT_EQ(report.copy_stalls % plan.max_copy_attempts, 0u);
}

// --------------------------------------------------------------------
// CryptoLaneFault
// --------------------------------------------------------------------

TEST_F(FaultRig, CryptoLaneFaultInjectionRedoesLaneJobs)
{
    Platform faulty;
    mem::Region fh = faulty.allocHost(8 * MiB, "host");
    mem::Region fd = faulty.gpu(0).alloc(8 * MiB, "dev");
    FaultPlan plan;
    plan.seed = 15;
    plan.lane_fault_rate = 0.5;
    faulty.armFaults(plan);

    runtime::CcRuntime clean_rt(platform);
    runtime::CcRuntime fault_rt(faulty);
    Stream &cs = clean_rt.createStream("s");
    Stream &fs = fault_rt.createStream("s");
    Tick clean_done = 0, fault_done = 0;
    for (int i = 0; i < 16; ++i) {
        clean_done = clean_rt.memcpy(CopyKind::HostToDevice, dev.base,
                                     host_a.base, 1 * MiB, cs,
                                     clean_done);
        fault_done = fault_rt.memcpy(CopyKind::HostToDevice, fd.base,
                                     fh.base, 1 * MiB, fs, fault_done);
    }

    auto report = fault_rt.faultReport();
    EXPECT_GT(report.lane_faults, 0u);
    EXPECT_EQ(report.lane_faults,
              faulty.faultInjector().injected(Kind::CryptoLaneFault));
    EXPECT_EQ(clean_rt.faultReport().lane_faults, 0u);
    EXPECT_GT(fault_done, clean_done);
}

TEST_F(FaultRig, CryptoLaneFaultRecoveryCostsExactlyTheRedoneWork)
{
    auto clean = platform.cryptoEngine().acquire("clean", 1);

    Platform faulty;
    FaultPlan plan;
    plan.seed = 17;
    plan.lane_fault_rate = 1.0; // every job dies once
    faulty.armFaults(plan);
    auto lanes = faulty.cryptoEngine().acquire("faulty", 1);

    Tick clean_done = clean.submitNotBefore(0, 1 * MiB);
    Tick fault_done = lanes.submitNotBefore(0, 1 * MiB);
    EXPECT_EQ(lanes.laneFaults(), 1u);
    // The failed attempt is thrown away and the job re-runs on the
    // re-initialized lane: total time is exactly twice the clean job.
    EXPECT_EQ(fault_done, clean_done + lanes.laneFaultTicks());
    EXPECT_EQ(lanes.laneFaultTicks(), clean_done);
}

// --------------------------------------------------------------------
// ReplicaCrash
// --------------------------------------------------------------------

TEST_F(FaultRig, ReplicaCrashInjectionKillsReplicasOnSchedule)
{
    Platform cluster(serving_test::tinyGpu(448 * MiB),
                     crypto::ChannelConfig{}, 2);
    FaultPlan plan;
    plan.seed = 31;
    plan.replica_crash_rate = 100.0; // mean 10 ms: dies mid-trace
    cluster.armFaults(plan);

    serving::ClusterConfig cfg;
    cfg.engine = tinyEngine();
    serving::ClusterRouter router(cluster, ccFactory(), cfg);
    auto trace = clusterTrace(24, 200.0);
    auto result = router.run(trace);

    EXPECT_GE(result.faults.replica_crashes, 1u);
    EXPECT_EQ(result.faults.replica_crashes,
              cluster.faultInjector().injected(Kind::ReplicaCrash));
    unsigned crashed = 0;
    for (const auto &rep : result.replicas) {
        if (rep.crashed) {
            ++crashed;
            EXPECT_GT(rep.crash_time, 0u);
        }
    }
    EXPECT_EQ(crashed, result.faults.replica_crashes);
    // Nothing vanishes silently: every request either completed
    // somewhere or is accounted as dropped.
    EXPECT_EQ(result.completed + result.dropped, trace.size());
}

TEST_F(FaultRig, ReplicaCrashRecoveryDrainsAndRestartsCleanly)
{
    // The drain primitive itself, deterministically: run an engine
    // partway, crash it, requeue its orphans into a fresh engine.
    runtime::CcRuntime rt(platform);
    serving::VllmEngine engine(rt, tinyEngine());
    engine.beginRun();
    auto trace = clusterTrace(4, 1000.0);
    for (const auto &req : trace)
        engine.submit(req);
    for (int i = 0; i < 3 && engine.hasWork(); ++i)
        engine.stepOnce();

    std::uint64_t lost = 0;
    auto orphans = engine.drainUnfinished(lost);
    EXPECT_FALSE(engine.hasWork());
    EXPECT_EQ(orphans.size() + engine.completedCount(), trace.size());
    ASSERT_FALSE(orphans.empty());
    // 3 decode steps across unfinished groups were thrown away.
    EXPECT_GT(lost, 0u);

    // The survivor absorbs the orphans and finishes every one.
    for (const auto &req : orphans)
        engine.submit(req);
    while (engine.hasWork())
        engine.stepOnce();
    auto result = engine.finish();
    EXPECT_EQ(result.completed, trace.size());
}

TEST_F(FaultRig, ReplicaCrashRecoveryRequeuesOntoSurvivors)
{
    Platform cluster(serving_test::tinyGpu(448 * MiB),
                     crypto::ChannelConfig{}, 3);
    FaultPlan plan;
    plan.seed = 33;
    plan.replica_crash_rate = 12.0; // kills some replicas, not all
    cluster.armFaults(plan);

    serving::ClusterConfig cfg;
    cfg.engine = tinyEngine();
    serving::ClusterRouter router(cluster, ccFactory(), cfg);
    auto trace = clusterTrace(24, 200.0);
    auto result = router.run(trace);

    ASSERT_GE(result.faults.replica_crashes, 1u);
    ASSERT_LT(result.faults.replica_crashes, 3u) <<
        "crash schedule killed every replica; tune rate/seed";
    // With survivors, failover loses time but never requests.
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_EQ(result.completed, trace.size());

    std::uint64_t requeued = 0, absorbed = 0, lost = 0;
    for (const auto &rep : result.replicas) {
        requeued += rep.requeued;
        absorbed += rep.absorbed;
        lost += rep.lost_tokens;
        if (rep.crashed) {
            EXPECT_EQ(rep.requeued,
                      rep.requests - rep.result.completed);
        }
    }
    EXPECT_GT(requeued, 0u);
    EXPECT_EQ(absorbed, requeued);
    EXPECT_EQ(result.faults.requeued_requests, requeued);
    EXPECT_EQ(result.faults.lost_tokens, lost);
    // Goodput only counts delivered tokens, so it trails raw
    // routed-token throughput once work was lost.
    EXPECT_LT(result.goodput_tokens_per_sec, result.tokens_per_sec);
}

// --------------------------------------------------------------------
// Degraded mode (PipeLLM under a fault storm)
// --------------------------------------------------------------------

TEST_F(FaultRig, TagCorruptionStormTripsPipeLlmDegradedMode)
{
    core::PipeLlmConfig cfg;
    cfg.classifier.layer_param_bytes = 2 * MiB;
    cfg.enc_lanes = 2;
    cfg.pipeline_depth = 4;
    cfg.degraded.fault_threshold = 3;
    cfg.degraded.window = milliseconds(50);
    cfg.degraded.cooldown = milliseconds(2);
    core::PipeLlmRuntime rt(platform, cfg);

    std::vector<mem::Region> layers;
    for (int i = 0; i < 8; ++i)
        layers.push_back(platform.allocHost(
            2 * MiB, "layer" + std::to_string(i)));
    mem::Region slot = platform.gpu(0).alloc(4 * MiB, "slot");
    Stream &s = rt.createStream("s");
    gpu::KernelDesc k{"layer", 2e10, 1e8};

    auto cycle = [&](Tick now, int cycles) {
        for (int c = 0; c < cycles; ++c) {
            for (const auto &l : layers) {
                now = rt.memcpyAsync(CopyKind::HostToDevice, slot.base,
                                     l.base, 2 * MiB, s, now)
                          .api_return;
                now = rt.synchronize(now);
                now = rt.launchKernel(k, s, now).api_return;
                now = rt.synchronize(now);
            }
        }
        return now;
    };

    // Warm up fault-free so speculation is actually running.
    Tick now = cycle(0, 3);
    EXPECT_GT(rt.pipeStats().hits, 0u);

    // Storm: every other bus crossing corrupts the tag.
    FaultPlan plan;
    plan.seed = 41;
    plan.tag_corruption_rate = 0.5;
    platform.armFaults(plan);
    now = cycle(now, 3);

    auto report = rt.faultReport();
    EXPECT_GT(report.tag_faults, 0u);
    EXPECT_GE(report.degraded_entries, 1u);
    // Swaps arriving mid-storm were served on demand, CC style.
    EXPECT_GT(report.degraded_sends, 0u);

    // Storm over: after the cooldown, speculation resumes and the
    // degraded interval is accounted.
    platform.faultInjector().disarm();
    std::uint64_t hits_before = rt.pipeStats().hits;
    cycle(now, 4);
    EXPECT_GT(rt.pipeStats().hits, hits_before);
    EXPECT_GT(rt.faultReport().degraded_ticks, 0u);
}
