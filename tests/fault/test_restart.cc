/**
 * @file
 * ReplicaRestart end to end: a crashed replica re-keys its session
 * into a fresh IV epoch, re-uploads weights, round-trips the warm-up
 * probe and rejoins routing — and a pre-crash ciphertext can never be
 * replayed into the new session. Under -DPIPELLM_AUDIT=ON every run
 * here must stay violation-free even though post-rejoin transfers
 * reuse the *numeric* IV values of the old epoch.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/audit.hh"
#include "fault/fault.hh"
#include "runtime/cc_runtime.hh"
#include "serving/cluster.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::fault;
using runtime::CopyKind;
using runtime::Platform;
using runtime::Stream;

namespace {

struct RestartRig : ::testing::Test
{
    void
    SetUp() override
    {
#if PIPELLM_AUDIT_ENABLED
        audit::Auditor::instance().reset();
        audit::Auditor::instance().setTrapOnViolation(false);
#endif
    }

    void
    TearDown() override
    {
#if PIPELLM_AUDIT_ENABLED
        EXPECT_TRUE(audit::Auditor::instance().violations().empty())
            << audit::Auditor::instance().report();
        audit::Auditor::instance().reset();
#endif
    }
};

serving::VllmConfig
tinyEngine()
{
    serving::VllmConfig cfg;
    cfg.model = serving_test::tinyModel();
    cfg.parallel_sampling = 2;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

serving::RuntimeFactory
ccFactory()
{
    return [](Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

trace::Trace
clusterTrace(std::size_t n, double rate, std::uint64_t seed = 5)
{
    trace::DatasetProfile profile{"restart-test", 48.0, 0.4, 32.0,
                                  0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, seed);
    return gen.poisson(n, rate);
}

/** Crashes arrive fast and repairs are quick: several full
 *  crash -> re-key -> reload -> probe -> rejoin cycles per run. */
FaultPlan
restartPlan(std::uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.replica_crash_rate = 100.0;  // mean 10 ms
    plan.replica_restart_rate = 50.0; // mean 20 ms repair
    plan.spdm_rekey_ticks = milliseconds(1);
    plan.warmup_probe_bytes = 64 * KiB;
    return plan;
}

} // namespace

// --------------------------------------------------------------------
// Injection: the schedule really produces restart events.
// --------------------------------------------------------------------

TEST_F(RestartRig, ReplicaRestartInjectionReschedulesCrashedReplicas)
{
    Platform cluster(serving_test::tinyGpu(448 * MiB),
                     crypto::ChannelConfig{}, 2);
    cluster.armFaults(restartPlan(31));

    serving::ClusterConfig cfg;
    cfg.engine = tinyEngine();
    serving::ClusterRouter router(cluster, ccFactory(), cfg);
    auto trace = clusterTrace(24, 200.0);
    auto result = router.run(trace);

    const auto &f = result.faults;
    ASSERT_GE(f.replica_crashes, 1u);
    // Every crash schedules a restart when the rate is armed, and the
    // injector counted each one.
    EXPECT_EQ(f.replica_restarts, f.replica_crashes);
    EXPECT_EQ(f.replica_restarts,
              cluster.faultInjector().injected(Kind::ReplicaRestart));
    // The rejoin is never free: repair delay + re-key + weight reload
    // + warm-up probe all charge time.
    EXPECT_GT(f.restart_rejoin_ticks, 0u);

    for (const auto &rep : result.replicas) {
        EXPECT_EQ(rep.restarts, rep.crash_count);
        if (rep.rejoined) {
            EXPECT_GE(rep.crash_count, 1u);
            // crash_time tracks the *last* crash, which can postdate
            // the last completed rejoin (crash -> rejoin -> crash
            // again); the rejoin itself is always after some crash
            // and never free.
            EXPECT_GT(rep.rejoin_time, 0u);
            EXPECT_GT(rep.time_to_rejoin, 0u);
        }
    }

    // With restarts armed the cluster can always wait for a rejoin:
    // nothing is ever dropped and every request completes somewhere.
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_EQ(result.completed, trace.size());
}

// --------------------------------------------------------------------
// Recovery: the rejoined replica serves under a fresh session.
// --------------------------------------------------------------------

TEST_F(RestartRig, ReplicaRestartRecoveryServesWithFreshSessionEpoch)
{
    Platform cluster(serving_test::tinyGpu(448 * MiB),
                     crypto::ChannelConfig{}, 2);
    cluster.armFaults(restartPlan(33));

    serving::ClusterConfig cfg;
    cfg.engine = tinyEngine();
    serving::ClusterRouter router(cluster, ccFactory(), cfg);
    auto trace = clusterTrace(24, 200.0);
    auto result = router.run(trace);

    ASSERT_GE(result.faults.replica_restarts, 1u);
    EXPECT_EQ(result.completed, trace.size());

    bool saw_rejoined = false;
    for (const auto &rep : result.replicas) {
        auto &chan = router.runtime(rep.device).channel();
        // Each restart re-keyed exactly once: the session epoch IS
        // the restart count, and an uncrashed replica stays at the
        // construction-time epoch 0.
        EXPECT_EQ(chan.epoch(), rep.restarts);
        if (!rep.rejoined)
            continue;
        saw_rejoined = true;
        // The rejoined replica really served traffic again: its GPU
        // counters were reset at enableCc() and advanced afresh by
        // the warm-up probe and post-rejoin requests.
        EXPECT_GT(cluster.gpu(rep.device).rxCounter(), 0u);
        EXPECT_EQ(cluster.gpu(rep.device).integrityFailures(), 0u);
    }
    EXPECT_TRUE(saw_rejoined) <<
        "restart schedule produced no rejoin; tune rate/seed";
}

// --------------------------------------------------------------------
// The security core: pre-crash IVs are never reused post-rejoin.
// --------------------------------------------------------------------

TEST_F(RestartRig, ReplicaRestartRecoveryNeverReusesPreCrashIvs)
{
    Platform platform;
    mem::Region host = platform.allocHost(4 * MiB, "host");
    mem::Region dev = platform.gpu(0).alloc(4 * MiB, "dev");
    runtime::CcRuntime rt(platform);
    Stream &s = rt.createStream("s");

    // Spend pre-crash IVs 0..7 on the H2D counter.
    Tick now = 0;
    for (int i = 0; i < 8; ++i)
        now = rt.memcpy(CopyKind::HostToDevice, dev.base, host.base,
                        256 * KiB, s, now);
    ASSERT_EQ(rt.h2dCounter(), 8u);
    ASSERT_EQ(rt.channel().epoch(), 0u);

    // A ciphertext captured just before the crash, sealed under the
    // epoch-0 key at the next counter the old session would use.
    auto &chan = rt.channel();
    std::uint64_t sample_len = chan.sampledLen(256 * KiB);
    std::vector<std::uint8_t> sample(sample_len, 0xA5);
    auto captured = chan.seal(crypto::Direction::HostToDevice,
                              rt.h2dCounter(), sample.data(),
                              256 * KiB);

    // Crash + restart: fresh key, new epoch, both endpoints back to
    // counter zero.
    Tick live = rt.restart(now);
    EXPECT_GT(live, now);
    EXPECT_EQ(rt.channel().epoch(), 1u);
    EXPECT_EQ(rt.h2dCounter(), 0u);
    EXPECT_EQ(rt.d2hCounter(), 0u);

    // The captured pre-crash blob can never be replayed into the new
    // session: even at the matching counter the fresh key rejects it.
    std::vector<std::uint8_t> opened;
    EXPECT_FALSE(chan.open(captured, captured.iv_counter, opened));
#if PIPELLM_AUDIT_ENABLED
    audit::Auditor::instance().noteDiscarded(captured.audit_serial);
#endif

    // Post-rejoin traffic re-spends the *numeric* IVs 0..7 under the
    // new key/epoch. Functionally every transfer verifies, and under
    // -DPIPELLM_AUDIT=ON the (key, IV, epoch) uniqueness registry
    // stays silent (checked in TearDown) — the definition of "no
    // pre-crash IV is ever reused".
    Tick t = live;
    for (int i = 0; i < 8; ++i)
        t = rt.memcpy(CopyKind::HostToDevice, dev.base, host.base,
                      256 * KiB, s, t);
    EXPECT_EQ(rt.h2dCounter(), 8u);
    EXPECT_EQ(rt.gpu().integrityFailures(), 0u);
    EXPECT_EQ(chan.tagMismatches(), 1u); // only the replay attempt
}
