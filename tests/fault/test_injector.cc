/**
 * @file
 * FaultInjector unit tests: seeded determinism, zero-cost disarmed
 * behavior, per-kind stream independence, and backoff shape.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"

using namespace pipellm;
using namespace pipellm::fault;

TEST(FaultInjector, DisarmedAnswersNoFaultForever)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.armed());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(inj.corruptTag(0));
        EXPECT_FALSE(inj.stallCopy(0));
        EXPECT_FALSE(inj.failLane(0));
    }
    EXPECT_EQ(inj.drawCrashTime(), maxTick);
    EXPECT_EQ(inj.injected(Kind::TagCorruption), 0u);
}

TEST(FaultInjector, SamePlanReplaysBitIdentically)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.tag_corruption_rate = 0.3;
    plan.copy_stall_rate = 0.2;
    plan.lane_fault_rate = 0.1;
    FaultInjector a, b;
    a.arm(plan);
    b.arm(plan);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(a.corruptTag(0), b.corruptTag(0));
        ASSERT_EQ(a.stallCopy(0), b.stallCopy(0));
        ASSERT_EQ(a.failLane(0), b.failLane(0));
    }
    EXPECT_EQ(a.injected(Kind::TagCorruption),
              b.injected(Kind::TagCorruption));
    EXPECT_GT(a.injected(Kind::TagCorruption), 0u);
    EXPECT_GT(a.injected(Kind::CopyStall), 0u);
    EXPECT_GT(a.injected(Kind::CryptoLaneFault), 0u);
}

TEST(FaultInjector, ZeroRateQueriesConsumeNoRandomness)
{
    // A site whose rate is zero must not perturb the decision stream
    // of armed sites: plans stay comparable across fault kinds.
    FaultPlan plan;
    plan.seed = 11;
    plan.tag_corruption_rate = 0.5;
    FaultInjector pure, noisy;
    pure.arm(plan);
    noisy.arm(plan);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_FALSE(noisy.stallCopy(0));
        EXPECT_FALSE(noisy.failLane(0));
        ASSERT_EQ(pure.corruptTag(0), noisy.corruptTag(0));
    }
}

TEST(FaultInjector, RearmReseedsAndClearsCounters)
{
    FaultPlan plan;
    plan.seed = 13;
    plan.tag_corruption_rate = 0.4;
    FaultInjector inj;
    inj.arm(plan);
    std::vector<bool> first;
    for (int i = 0; i < 500; ++i)
        first.push_back(inj.corruptTag(0));
    EXPECT_GT(inj.injected(Kind::TagCorruption), 0u);

    inj.arm(plan);
    EXPECT_EQ(inj.injected(Kind::TagCorruption), 0u);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(inj.corruptTag(0), first[std::size_t(i)]);
}

TEST(FaultInjector, DisarmRestoresZeroCostPath)
{
    FaultPlan plan;
    plan.seed = 17;
    plan.tag_corruption_rate = 1.0;
    FaultInjector inj;
    inj.arm(plan);
    EXPECT_TRUE(inj.corruptTag(0));
    inj.disarm();
    EXPECT_FALSE(inj.armed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.corruptTag(0));
}

TEST(FaultInjector, BackoffDoublesUpToCapWithBoundedJitter)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.copy_stall_rate = 0.1;
    plan.copy_backoff_base = microseconds(10);
    plan.copy_backoff_cap = microseconds(60);
    FaultInjector inj;
    inj.arm(plan);
    // Attempt k waits base * 2^(k-1) capped, plus jitter <= wait/2.
    for (int rep = 0; rep < 32; ++rep) {
        Tick w1 = inj.backoff(1);
        EXPECT_GE(w1, microseconds(10));
        EXPECT_LE(w1, microseconds(15));
        Tick w3 = inj.backoff(3);
        EXPECT_GE(w3, microseconds(40));
        EXPECT_LE(w3, microseconds(60));
        Tick w9 = inj.backoff(9);
        EXPECT_GE(w9, microseconds(60));
        EXPECT_LE(w9, microseconds(90));
    }
}

TEST(FaultInjector, CrashTimesFollowTheExponentialRate)
{
    FaultPlan plan;
    plan.seed = 19;
    plan.replica_crash_rate = 100.0; // mean inter-arrival 10 ms
    FaultInjector inj;
    inj.arm(plan);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += toSeconds(inj.drawCrashTime());
    EXPECT_NEAR(sum / n, 0.01, 0.001);
}

TEST(FaultInjector, CrashDrawsDisabledWhenRateIsZero)
{
    FaultPlan plan;
    plan.seed = 23;
    plan.tag_corruption_rate = 0.5; // armed, but no crash rate
    FaultInjector inj;
    inj.arm(plan);
    EXPECT_TRUE(inj.armed());
    EXPECT_EQ(inj.drawCrashTime(), maxTick);
}

TEST(FaultInjector, RestartDelayDisabledWhenRateIsZero)
{
    FaultInjector disarmed;
    EXPECT_EQ(disarmed.drawRestartDelay(), maxTick);

    FaultPlan plan;
    plan.seed = 27;
    plan.replica_crash_rate = 50.0; // crashes armed, restarts not
    FaultInjector inj;
    inj.arm(plan);
    EXPECT_NE(inj.drawCrashTime(), maxTick);
    EXPECT_EQ(inj.drawRestartDelay(), maxTick);
}

TEST(FaultInjector, RestartDelaysFollowTheExponentialRate)
{
    FaultPlan plan;
    plan.seed = 29;
    plan.replica_restart_rate = 50.0; // mean repair delay 20 ms
    FaultInjector inj;
    inj.arm(plan);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += toSeconds(inj.drawRestartDelay());
    EXPECT_NEAR(sum / n, 0.02, 0.002);
}

TEST(FaultInjector, StormWindowMultipliesRatesInsideOnly)
{
    FaultPlan plan;
    plan.seed = 37;
    plan.tag_corruption_rate = 0.05;
    plan.storm_start = milliseconds(10);
    plan.storm_end = milliseconds(20);
    plan.storm_multiplier = 20; // 0.05 * 20 = 1.0: certain inside
    FaultInjector inj;
    inj.arm(plan);

    // Inside the window every crossing corrupts.
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(inj.corruptTag(milliseconds(15)));
    // Outside it, the base rate still applies: mostly clean.
    unsigned outside_hits = 0;
    for (int i = 0; i < 200; ++i)
        outside_hits += inj.corruptTag(milliseconds(25)) ? 1 : 0;
    EXPECT_LT(outside_hits, 50u);
    EXPECT_GT(outside_hits, 0u);
}

TEST(FaultInjector, StormWindowIsHalfOpen)
{
    FaultPlan plan;
    plan.seed = 39;
    // Outside rate is effectively never; the multiplier makes the
    // inside rate certain. So each draw's outcome *is* the window
    // membership test.
    plan.tag_corruption_rate = 1e-12;
    plan.storm_start = milliseconds(10);
    plan.storm_end = milliseconds(20);
    plan.storm_multiplier = 1e12;
    FaultInjector inj;
    inj.arm(plan);

    EXPECT_FALSE(inj.corruptTag(milliseconds(10) - 1));
    EXPECT_TRUE(inj.corruptTag(milliseconds(10))); // start inclusive
    EXPECT_TRUE(inj.corruptTag(milliseconds(20) - 1));
    EXPECT_FALSE(inj.corruptTag(milliseconds(20))); // end exclusive
}

TEST(FaultInjector, UnitStormMultiplierKeepsDrawSequenceIdentical)
{
    // A configured window with multiplier 1 must not change a single
    // decision: byte-identity of committed runs only depends on the
    // multiplier, never on the window bounds.
    FaultPlan base;
    base.seed = 41;
    base.tag_corruption_rate = 0.3;
    base.copy_stall_rate = 0.2;
    FaultPlan windowed = base;
    windowed.storm_start = milliseconds(1);
    windowed.storm_end = seconds(10);
    windowed.storm_multiplier = 1;

    FaultInjector a, b;
    a.arm(base);
    b.arm(windowed);
    for (int i = 0; i < 2000; ++i) {
        Tick now = Tick(i) * milliseconds(1);
        ASSERT_EQ(a.corruptTag(now), b.corruptTag(now));
        ASSERT_EQ(a.stallCopy(now), b.stallCopy(now));
    }
}

TEST(FaultInjector, ReportMergeAndTotalsAddUp)
{
    FaultReport a, b;
    a.tag_faults = 2;
    a.tag_retries = 2;
    a.copy_stalls = 3;
    a.copy_retries = 3;
    a.retry_latency = microseconds(5);
    b.lane_faults = 4;
    b.replica_crashes = 1;
    b.requeued_requests = 6;
    b.degraded_ticks = microseconds(7);
    a.merge(b);
    EXPECT_EQ(a.injectedTotal(), 2u + 3u + 4u + 1u);
    EXPECT_EQ(a.recoveredTotal(), 2u + 3u + 4u + 6u);
    EXPECT_EQ(a.retry_latency, microseconds(5));
    EXPECT_EQ(a.degraded_ticks, microseconds(7));
}
