/**
 * @file
 * FaultInjector unit tests: seeded determinism, zero-cost disarmed
 * behavior, per-kind stream independence, and backoff shape.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"

using namespace pipellm;
using namespace pipellm::fault;

TEST(FaultInjector, DisarmedAnswersNoFaultForever)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.armed());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(inj.corruptTag());
        EXPECT_FALSE(inj.stallCopy());
        EXPECT_FALSE(inj.failLane());
    }
    EXPECT_EQ(inj.drawCrashTime(), maxTick);
    EXPECT_EQ(inj.injected(Kind::TagCorruption), 0u);
}

TEST(FaultInjector, SamePlanReplaysBitIdentically)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.tag_corruption_rate = 0.3;
    plan.copy_stall_rate = 0.2;
    plan.lane_fault_rate = 0.1;
    FaultInjector a, b;
    a.arm(plan);
    b.arm(plan);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(a.corruptTag(), b.corruptTag());
        ASSERT_EQ(a.stallCopy(), b.stallCopy());
        ASSERT_EQ(a.failLane(), b.failLane());
    }
    EXPECT_EQ(a.injected(Kind::TagCorruption),
              b.injected(Kind::TagCorruption));
    EXPECT_GT(a.injected(Kind::TagCorruption), 0u);
    EXPECT_GT(a.injected(Kind::CopyStall), 0u);
    EXPECT_GT(a.injected(Kind::CryptoLaneFault), 0u);
}

TEST(FaultInjector, ZeroRateQueriesConsumeNoRandomness)
{
    // A site whose rate is zero must not perturb the decision stream
    // of armed sites: plans stay comparable across fault kinds.
    FaultPlan plan;
    plan.seed = 11;
    plan.tag_corruption_rate = 0.5;
    FaultInjector pure, noisy;
    pure.arm(plan);
    noisy.arm(plan);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_FALSE(noisy.stallCopy());
        EXPECT_FALSE(noisy.failLane());
        ASSERT_EQ(pure.corruptTag(), noisy.corruptTag());
    }
}

TEST(FaultInjector, RearmReseedsAndClearsCounters)
{
    FaultPlan plan;
    plan.seed = 13;
    plan.tag_corruption_rate = 0.4;
    FaultInjector inj;
    inj.arm(plan);
    std::vector<bool> first;
    for (int i = 0; i < 500; ++i)
        first.push_back(inj.corruptTag());
    EXPECT_GT(inj.injected(Kind::TagCorruption), 0u);

    inj.arm(plan);
    EXPECT_EQ(inj.injected(Kind::TagCorruption), 0u);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(inj.corruptTag(), first[std::size_t(i)]);
}

TEST(FaultInjector, DisarmRestoresZeroCostPath)
{
    FaultPlan plan;
    plan.seed = 17;
    plan.tag_corruption_rate = 1.0;
    FaultInjector inj;
    inj.arm(plan);
    EXPECT_TRUE(inj.corruptTag());
    inj.disarm();
    EXPECT_FALSE(inj.armed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.corruptTag());
}

TEST(FaultInjector, BackoffDoublesUpToCapWithBoundedJitter)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.copy_stall_rate = 0.1;
    plan.copy_backoff_base = microseconds(10);
    plan.copy_backoff_cap = microseconds(60);
    FaultInjector inj;
    inj.arm(plan);
    // Attempt k waits base * 2^(k-1) capped, plus jitter <= wait/2.
    for (int rep = 0; rep < 32; ++rep) {
        Tick w1 = inj.backoff(1);
        EXPECT_GE(w1, microseconds(10));
        EXPECT_LE(w1, microseconds(15));
        Tick w3 = inj.backoff(3);
        EXPECT_GE(w3, microseconds(40));
        EXPECT_LE(w3, microseconds(60));
        Tick w9 = inj.backoff(9);
        EXPECT_GE(w9, microseconds(60));
        EXPECT_LE(w9, microseconds(90));
    }
}

TEST(FaultInjector, CrashTimesFollowTheExponentialRate)
{
    FaultPlan plan;
    plan.seed = 19;
    plan.replica_crash_rate = 100.0; // mean inter-arrival 10 ms
    FaultInjector inj;
    inj.arm(plan);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += toSeconds(inj.drawCrashTime());
    EXPECT_NEAR(sum / n, 0.01, 0.001);
}

TEST(FaultInjector, CrashDrawsDisabledWhenRateIsZero)
{
    FaultPlan plan;
    plan.seed = 23;
    plan.tag_corruption_rate = 0.5; // armed, but no crash rate
    FaultInjector inj;
    inj.arm(plan);
    EXPECT_TRUE(inj.armed());
    EXPECT_EQ(inj.drawCrashTime(), maxTick);
}

TEST(FaultInjector, ReportMergeAndTotalsAddUp)
{
    FaultReport a, b;
    a.tag_faults = 2;
    a.tag_retries = 2;
    a.copy_stalls = 3;
    a.copy_retries = 3;
    a.retry_latency = microseconds(5);
    b.lane_faults = 4;
    b.replica_crashes = 1;
    b.requeued_requests = 6;
    b.degraded_ticks = microseconds(7);
    a.merge(b);
    EXPECT_EQ(a.injectedTotal(), 2u + 3u + 4u + 1u);
    EXPECT_EQ(a.recoveredTotal(), 2u + 3u + 4u + 6u);
    EXPECT_EQ(a.retry_latency, microseconds(5));
    EXPECT_EQ(a.degraded_ticks, microseconds(7));
}
