/**
 * @file
 * DegradedModeController unit tests: sliding-window trip, cooldown
 * exit, re-entry, and degraded-time accounting.
 */

#include <gtest/gtest.h>

#include "fault/degraded.hh"

using namespace pipellm;
using namespace pipellm::fault;

namespace {

DegradedConfig
fastConfig()
{
    DegradedConfig cfg;
    cfg.fault_threshold = 3;
    cfg.window = microseconds(100);
    cfg.cooldown = microseconds(300);
    return cfg;
}

} // namespace

TEST(DegradedMode, TripsAtThresholdWithinWindow)
{
    DegradedModeController ctl(fastConfig());
    EXPECT_FALSE(ctl.noteFault(microseconds(10)));
    EXPECT_FALSE(ctl.noteFault(microseconds(20)));
    EXPECT_FALSE(ctl.active(microseconds(25)));
    EXPECT_TRUE(ctl.noteFault(microseconds(30)));
    EXPECT_TRUE(ctl.active(microseconds(31)));
    EXPECT_EQ(ctl.entries(), 1u);
}

TEST(DegradedMode, SparseFaultsSlideOutOfTheWindow)
{
    DegradedModeController ctl(fastConfig());
    // 3 faults, but 200 us apart against a 100 us window: never 3
    // in-window at once.
    EXPECT_FALSE(ctl.noteFault(microseconds(0)));
    EXPECT_FALSE(ctl.noteFault(microseconds(200)));
    EXPECT_FALSE(ctl.noteFault(microseconds(400)));
    EXPECT_FALSE(ctl.active(microseconds(401)));
    EXPECT_EQ(ctl.entries(), 0u);
}

TEST(DegradedMode, CooldownExitsAndAccountsDegradedTime)
{
    DegradedConfig cfg = fastConfig();
    cfg.fault_threshold = 2;
    DegradedModeController ctl(cfg);
    EXPECT_FALSE(ctl.noteFault(microseconds(10)));
    EXPECT_TRUE(ctl.noteFault(microseconds(20)));
    // Quiet period starts at the last fault: exit at 20 + 300 us.
    EXPECT_TRUE(ctl.active(microseconds(100)));
    EXPECT_TRUE(ctl.active(microseconds(319)));
    EXPECT_FALSE(ctl.active(microseconds(320)));
    EXPECT_EQ(ctl.degradedTicks(), microseconds(300));
}

TEST(DegradedMode, FaultsWhileActiveExtendTheCooldown)
{
    DegradedConfig cfg = fastConfig();
    cfg.fault_threshold = 2;
    DegradedModeController ctl(cfg);
    ctl.noteFault(microseconds(10));
    EXPECT_TRUE(ctl.noteFault(microseconds(20)));
    // Another fault mid-storm pushes the exit to 500 + 300 us.
    EXPECT_FALSE(ctl.noteFault(microseconds(500)));
    EXPECT_TRUE(ctl.active(microseconds(700)));
    EXPECT_TRUE(ctl.active(microseconds(799)));
    EXPECT_FALSE(ctl.active(microseconds(800)));
    EXPECT_EQ(ctl.entries(), 1u);
    EXPECT_EQ(ctl.degradedTicks(), microseconds(780));
}

TEST(DegradedMode, ReentersOnASecondStorm)
{
    DegradedConfig cfg = fastConfig();
    cfg.fault_threshold = 2;
    DegradedModeController ctl(cfg);
    ctl.noteFault(microseconds(10));
    EXPECT_TRUE(ctl.noteFault(microseconds(20)));
    EXPECT_FALSE(ctl.active(milliseconds(5)));

    // The exit cleared the window: one fault is not enough again.
    EXPECT_FALSE(ctl.noteFault(milliseconds(6)));
    EXPECT_FALSE(ctl.active(milliseconds(6)));
    EXPECT_TRUE(ctl.noteFault(milliseconds(6) + microseconds(50)));
    EXPECT_TRUE(ctl.active(milliseconds(6) + microseconds(60)));
    EXPECT_EQ(ctl.entries(), 2u);
}

TEST(DegradedMode, QuietControllerNeverActivates)
{
    DegradedModeController ctl(fastConfig());
    EXPECT_FALSE(ctl.active(0));
    EXPECT_FALSE(ctl.active(seconds(1)));
    EXPECT_EQ(ctl.entries(), 0u);
    EXPECT_EQ(ctl.degradedTicks(), 0u);
}
