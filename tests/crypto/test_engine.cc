/**
 * @file
 * CryptoEngine/CryptoLanes: dedicated mode must reproduce private
 * LaneGroups exactly; shared mode must make clients contend on one
 * pool while each stays capped at its own width.
 */

#include <gtest/gtest.h>

#include "crypto/engine.hh"
#include "sim/event_queue.hh"

using namespace pipellm;
using crypto::CryptoEngine;
using crypto::CryptoLanes;

namespace {
constexpr double kBw = 1e9; // 1 byte per tick
}

TEST(CryptoEngine, DedicatedModeHandsOutPrivateGroups)
{
    sim::EventQueue eq;
    CryptoEngine engine(eq, kBw, /*shared_lanes=*/0);
    EXPECT_FALSE(engine.shared());
    EXPECT_EQ(engine.poolLanes(), 0u);
    EXPECT_EQ(engine.pool(), nullptr);

    auto a = engine.acquire("a", 2);
    auto b = engine.acquire("b", 2);
    EXPECT_FALSE(a.sharedView());
    EXPECT_EQ(a.width(), 2u);

    // Private lanes: saturating one client leaves the other untouched.
    for (int i = 0; i < 4; ++i)
        a.submit(1000);
    EXPECT_EQ(a.earliestFree(), 2000u);
    EXPECT_EQ(b.earliestFree(), 0u);
    EXPECT_EQ(b.submit(1000), 1000u);
}

TEST(CryptoEngine, DedicatedModeMatchesRawLaneGroupTiming)
{
    sim::EventQueue eq;
    CryptoEngine engine(eq, kBw);
    auto lanes = engine.acquire("enc", 2);
    sim::LaneGroup raw(eq, "raw", 2, kBw);
    for (int i = 0; i < 9; ++i) {
        std::uint64_t bytes = 100 * (i + 1);
        EXPECT_EQ(lanes.submitNotBefore(50, bytes),
                  raw.submitNotBefore(50, bytes));
        EXPECT_EQ(lanes.earliestFree(), raw.earliestFree());
    }
}

TEST(CryptoEngine, SharedModeMakesClientsContend)
{
    sim::EventQueue eq;
    CryptoEngine engine(eq, kBw, /*shared_lanes=*/1);
    EXPECT_TRUE(engine.shared());
    EXPECT_EQ(engine.poolLanes(), 1u);

    auto a = engine.acquire("a", 1);
    auto b = engine.acquire("b", 1);
    EXPECT_TRUE(a.sharedView());

    // Both clients' traffic lands on the same single lane: the second
    // request queues behind the first even though it came from a
    // different client.
    EXPECT_EQ(a.submit(1000), 1000u);
    EXPECT_EQ(b.submit(1000), 2000u);
    EXPECT_EQ(engine.pool()->bytesServed(), 2000u);
}

TEST(CryptoEngine, SharedViewWidthCapsClientParallelism)
{
    sim::EventQueue eq;
    // Pool has 4 lanes but the client may only drive 1: its second
    // request waits for its first even though 3 lanes idle.
    CryptoEngine engine(eq, kBw, 4);
    auto narrow = engine.acquire("narrow", 1);
    EXPECT_EQ(narrow.submit(1000), 1000u);
    EXPECT_EQ(narrow.submit(1000), 2000u);
    EXPECT_EQ(narrow.earliestFree(), 2000u);

    // A wide client can still use the idle lanes concurrently.
    auto wide = engine.acquire("wide", 2);
    EXPECT_EQ(wide.submit(1000), 1000u);
    EXPECT_EQ(wide.submit(1000), 1000u);
}

TEST(CryptoEngine, SharedEarliestFreeSeesCrossClientLoad)
{
    sim::EventQueue eq;
    CryptoEngine engine(eq, kBw, 1);
    auto a = engine.acquire("a", 1);
    auto b = engine.acquire("b", 1);

    // Client a fills the pool; b has never submitted, yet its
    // earliestFree reflects the pool backlog — this is what lets
    // max_lane_lead throttle speculation against a *sibling's* demand.
    a.submit(5000);
    EXPECT_EQ(b.earliestFree(), 5000u);
}

TEST(CryptoEngine, SharedPoolFairUnderSaturation)
{
    sim::EventQueue eq;
    CryptoEngine engine(eq, kBw, 2);
    auto a = engine.acquire("a", 1);
    auto b = engine.acquire("b", 1);

    // Width-1 clients on a 2-lane pool, saturated: each effectively
    // owns one lane's worth of service; equal offered load finishes
    // at equal times.
    Tick ta = 0, tb = 0;
    for (int i = 0; i < 10; ++i) {
        ta = a.submit(1000);
        tb = b.submit(1000);
    }
    EXPECT_EQ(ta, 10000u);
    EXPECT_EQ(tb, 10000u);
    EXPECT_EQ(a.bytesSubmitted(), b.bytesSubmitted());
}
