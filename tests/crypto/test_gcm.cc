#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/gcm.hh"
#include "crypto/iv.hh"
#include "tests/crypto/hex_util.hh"

using namespace pipellm::crypto;
using hexutil::fromHex;
using hexutil::toHex;

namespace {

struct GcmVector
{
    const char *name;
    const char *key;
    const char *iv;
    const char *aad;
    const char *pt;
    const char *ct;
    const char *tag;
};

// McGrew & Viega, "The Galois/Counter Mode of Operation", appendix B
// (the canonical AES-GCM test cases, 96-bit IVs only).
const GcmVector kVectors[] = {
    {"aes128_case1",
     "00000000000000000000000000000000",
     "000000000000000000000000", "", "", "",
     "58e2fccefa7e3061367f1d57a4e7455a"},
    {"aes128_case2",
     "00000000000000000000000000000000",
     "000000000000000000000000", "",
     "00000000000000000000000000000000",
     "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"},
    {"aes128_case3",
     "feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a"
     "86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525"
     "b16aedf5aa0de657ba637b391aafd255",
     "42831ec2217774244b7221b784d0d49c"
     "e3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa05"
     "1ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    {"aes128_case4",
     "feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a"
     "86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525"
     "b16aedf5aa0de657ba637b39",
     "42831ec2217774244b7221b784d0d49c"
     "e3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa05"
     "1ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
    {"aes256_case13",
     "00000000000000000000000000000000"
     "00000000000000000000000000000000",
     "000000000000000000000000", "", "", "",
     "530f8afbc74536b9a963b4f1c4cb738b"},
    {"aes256_case14",
     "00000000000000000000000000000000"
     "00000000000000000000000000000000",
     "000000000000000000000000", "",
     "00000000000000000000000000000000",
     "cea7403d4d606b6e074ec5d3baf39d18",
     "d0d1c8a799996bf0265b98b5d48ab919"},
    {"aes256_case15",
     "feffe9928665731c6d6a8f9467308308"
     "feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a"
     "86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525"
     "b16aedf5aa0de657ba637b391aafd255",
     "522dc1f099567d07f47f37a32a84427d"
     "643a8cdcbfe5c0c97598a2bd2555d1aa"
     "8cb08e48590dbb3da7b08b1056828838"
     "c5f61e6393ba7a0abcc9f662898015ad",
     "b094dac5d93471bdec1a502270e3cc6c"},
    {"aes256_case16",
     "feffe9928665731c6d6a8f9467308308"
     "feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a"
     "86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525"
     "b16aedf5aa0de657ba637b39",
     "522dc1f099567d07f47f37a32a84427d"
     "643a8cdcbfe5c0c97598a2bd2555d1aa"
     "8cb08e48590dbb3da7b08b1056828838"
     "c5f61e6393ba7a0abcc9f662",
     "76fc6ece0f4e1768cddf8853bb2d551b"},
};

class GcmVectors : public ::testing::TestWithParam<GcmVector>
{
};

} // namespace

TEST_P(GcmVectors, SealMatchesVector)
{
    const auto &v = GetParam();
    auto key = fromHex(v.key);
    auto iv_bytes = fromHex(v.iv);
    auto aad = fromHex(v.aad);
    auto pt = fromHex(v.pt);

    AesGcm gcm(key.data(), key.size());
    GcmIv iv{};
    std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());

    std::vector<std::uint8_t> ct(pt.size());
    GcmTag tag;
    gcm.seal(iv, aad.data(), aad.size(), pt.data(), pt.size(),
             ct.data(), tag);
    EXPECT_EQ(toHex(ct), v.ct);
    EXPECT_EQ(toHex(tag.data(), tag.size()), v.tag);
}

TEST_P(GcmVectors, OpenRoundTrips)
{
    const auto &v = GetParam();
    auto key = fromHex(v.key);
    auto iv_bytes = fromHex(v.iv);
    auto aad = fromHex(v.aad);
    auto ct = fromHex(v.ct);
    auto tag_bytes = fromHex(v.tag);

    AesGcm gcm(key.data(), key.size());
    GcmIv iv{};
    std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());
    GcmTag tag;
    std::copy(tag_bytes.begin(), tag_bytes.end(), tag.begin());

    std::vector<std::uint8_t> pt(ct.size());
    ASSERT_TRUE(gcm.open(iv, aad.data(), aad.size(), ct.data(),
                         ct.size(), tag, pt.data()));
    EXPECT_EQ(toHex(pt), v.pt);
}

TEST_P(GcmVectors, TamperedTagRejected)
{
    const auto &v = GetParam();
    auto key = fromHex(v.key);
    auto iv_bytes = fromHex(v.iv);
    auto aad = fromHex(v.aad);
    auto ct = fromHex(v.ct);
    auto tag_bytes = fromHex(v.tag);

    AesGcm gcm(key.data(), key.size());
    GcmIv iv{};
    std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());
    GcmTag tag;
    std::copy(tag_bytes.begin(), tag_bytes.end(), tag.begin());
    tag[0] ^= 0x01;

    std::vector<std::uint8_t> pt(ct.size());
    EXPECT_FALSE(gcm.open(iv, aad.data(), aad.size(), ct.data(),
                          ct.size(), tag, pt.data()));
}

INSTANTIATE_TEST_SUITE_P(
    NistVectors, GcmVectors, ::testing::ValuesIn(kVectors),
    [](const ::testing::TestParamInfo<GcmVector> &info) {
        return info.param.name;
    });

TEST(Gcm, WrongIvFailsAuthentication)
{
    auto key = fromHex("feffe9928665731c6d6a8f9467308308");
    AesGcm gcm(key.data(), key.size());
    GcmIv iv{};
    std::vector<std::uint8_t> pt(48, 0xab);
    GcmTag tag;
    auto ct = gcm.seal(iv, pt, tag);

    GcmIv wrong = iv;
    wrong[11] = 1;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(gcm.open(wrong, ct, tag, out));
    EXPECT_TRUE(gcm.open(iv, ct, tag, out));
    EXPECT_EQ(out, pt);
}

TEST(Gcm, TamperedCiphertextRejected)
{
    auto key = fromHex("feffe9928665731c6d6a8f9467308308");
    AesGcm gcm(key.data(), key.size());
    GcmIv iv{};
    iv[0] = 9;
    std::vector<std::uint8_t> pt(100, 0x5c);
    GcmTag tag;
    auto ct = gcm.seal(iv, pt, tag);
    ct[50] ^= 0x80;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(gcm.open(iv, ct, tag, out));
}

TEST(Gcm, NonBlockAlignedLengths)
{
    auto key = fromHex("feffe9928665731c6d6a8f9467308308"
                       "feffe9928665731c6d6a8f9467308308");
    AesGcm gcm(key.data(), key.size());
    for (std::size_t len : {1u, 15u, 16u, 17u, 31u, 33u, 100u, 4097u}) {
        GcmIv iv{};
        iv[11] = std::uint8_t(len);
        std::vector<std::uint8_t> pt(len);
        for (std::size_t i = 0; i < len; ++i)
            pt[i] = std::uint8_t(i * 7);
        GcmTag tag;
        auto ct = gcm.seal(iv, pt, tag);
        ASSERT_EQ(ct.size(), len);
        std::vector<std::uint8_t> out;
        ASSERT_TRUE(gcm.open(iv, ct, tag, out)) << "len=" << len;
        EXPECT_EQ(out, pt);
    }
}

// Randomized round-trip property sweep: arbitrary keys, IVs, AAD and
// message lengths must seal/open correctly, and any single-bit
// corruption of ciphertext, tag, IV, or AAD must be rejected.
class GcmRandomRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(GcmRandomRoundTrip, SealOpenAndCorruptionProperty)
{
    std::uint64_t seed = 0xfeed0000 + GetParam();
    auto draw = [&]() {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        return seed >> 16;
    };
    std::size_t key_len = (draw() % 2) ? 16 : 32;
    std::vector<std::uint8_t> key(key_len);
    for (auto &b : key)
        b = std::uint8_t(draw());
    AesGcm gcm(key.data(), key.size());

    GcmIv iv;
    for (auto &b : iv)
        b = std::uint8_t(draw());
    std::vector<std::uint8_t> aad(draw() % 48);
    for (auto &b : aad)
        b = std::uint8_t(draw());
    std::vector<std::uint8_t> pt(1 + draw() % 2048);
    for (auto &b : pt)
        b = std::uint8_t(draw());

    std::vector<std::uint8_t> ct(pt.size());
    GcmTag tag;
    gcm.seal(iv, aad.data(), aad.size(), pt.data(), pt.size(),
             ct.data(), tag);

    std::vector<std::uint8_t> out(pt.size());
    ASSERT_TRUE(gcm.open(iv, aad.data(), aad.size(), ct.data(),
                         ct.size(), tag, out.data()));
    EXPECT_EQ(out, pt);

    // Single-bit corruption in each component must be detected.
    {
        auto bad = ct;
        bad[draw() % bad.size()] ^= std::uint8_t(1u << (draw() % 8));
        EXPECT_FALSE(gcm.open(iv, aad.data(), aad.size(), bad.data(),
                              bad.size(), tag, out.data()));
    }
    {
        auto bad = tag;
        bad[draw() % bad.size()] ^= std::uint8_t(1u << (draw() % 8));
        EXPECT_FALSE(gcm.open(iv, aad.data(), aad.size(), ct.data(),
                              ct.size(), bad, out.data()));
    }
    {
        auto bad = iv;
        bad[draw() % bad.size()] ^= std::uint8_t(1u << (draw() % 8));
        EXPECT_FALSE(gcm.open(bad, aad.data(), aad.size(), ct.data(),
                              ct.size(), tag, out.data()));
    }
    if (!aad.empty()) {
        auto bad = aad;
        bad[draw() % bad.size()] ^= std::uint8_t(1u << (draw() % 8));
        EXPECT_FALSE(gcm.open(iv, bad.data(), bad.size(), ct.data(),
                              ct.size(), tag, out.data()));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GcmRandomRoundTrip,
                         ::testing::Range(0, 24));

TEST(Gcm, DistinctIvsGiveUnrelatedKeystreams)
{
    // Same plaintext under consecutive counter IVs must not produce
    // related ciphertexts (spot-check: bytewise XOR is not constant).
    auto key = fromHex("feffe9928665731c6d6a8f9467308308");
    AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> pt(64, 0x00);
    GcmTag t1, t2;
    auto iv1 = pipellm::crypto::makeIv(
        pipellm::crypto::Direction::HostToDevice, 1);
    auto iv2 = pipellm::crypto::makeIv(
        pipellm::crypto::Direction::HostToDevice, 2);
    std::vector<std::uint8_t> c1(64), c2(64);
    gcm.seal(iv1, nullptr, 0, pt.data(), 64, c1.data(), t1);
    gcm.seal(iv2, nullptr, 0, pt.data(), 64, c2.data(), t2);
    EXPECT_NE(c1, c2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += c1[i] == c2[i];
    EXPECT_LT(equal, 16);
}
