/** @file Test-only hex helpers for NIST vectors. */

#ifndef PIPELLM_TESTS_CRYPTO_HEX_UTIL_HH
#define PIPELLM_TESTS_CRYPTO_HEX_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hexutil {

inline std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    auto nibble = [](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return std::uint8_t(c - '0');
        if (c >= 'a' && c <= 'f')
            return std::uint8_t(c - 'a' + 10);
        return std::uint8_t(c - 'A' + 10);
    };
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(std::uint8_t(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
    return out;
}

inline std::string
toHex(const std::uint8_t *data, std::size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (std::size_t i = 0; i < len; ++i) {
        out += digits[data[i] >> 4];
        out += digits[data[i] & 0xf];
    }
    return out;
}

inline std::string
toHex(const std::vector<std::uint8_t> &v)
{
    return toHex(v.data(), v.size());
}

} // namespace hexutil

#endif // PIPELLM_TESTS_CRYPTO_HEX_UTIL_HH
