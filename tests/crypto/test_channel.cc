#include <gtest/gtest.h>

#include <vector>

#include "crypto/channel.hh"

using namespace pipellm::crypto;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 1)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = std::uint8_t(seed + i * 3);
    return v;
}

} // namespace

TEST(SecureChannel, SealOpenRoundTrip)
{
    SecureChannel ch;
    auto pt = pattern(1024);
    auto blob = ch.seal(Direction::HostToDevice, 7, pt.data(),
                        pt.size());
    EXPECT_EQ(blob.iv_counter, 7u);
    EXPECT_EQ(blob.full_len, 1024u);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ch.open(blob, 7, out));
    EXPECT_EQ(out, pt);
}

TEST(SecureChannel, WrongCounterFailsTag)
{
    SecureChannel ch;
    auto pt = pattern(256);
    auto blob = ch.seal(Direction::HostToDevice, 7, pt.data(),
                        pt.size());
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(ch.open(blob, 8, out));
    EXPECT_FALSE(ch.open(blob, 6, out));
    EXPECT_TRUE(ch.open(blob, 7, out));
}

TEST(SecureChannel, DirectionIsBoundIntoIv)
{
    SecureChannel ch;
    auto pt = pattern(64);
    auto blob = ch.seal(Direction::HostToDevice, 3, pt.data(), pt.size());
    // Pretend the attacker reflects the blob on the other direction.
    blob.dir = Direction::DeviceToHost;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(ch.open(blob, 3, out));
}

TEST(SecureChannel, SamplingCapsRealCiphertext)
{
    ChannelConfig cfg;
    cfg.sample_limit = 128;
    SecureChannel ch(cfg);
    auto pt = pattern(128); // sampled prefix of a large transfer
    auto blob = ch.seal(Direction::HostToDevice, 0, pt.data(),
                        1 * 1024 * 1024);
    EXPECT_EQ(blob.full_len, 1024u * 1024u);
    EXPECT_EQ(blob.sample_ct.size(), 128u);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ch.open(blob, 0, out));
    EXPECT_EQ(out, pt);
}

TEST(SecureChannel, FullLenIsAuthenticated)
{
    SecureChannel ch;
    auto pt = pattern(64);
    auto blob = ch.seal(Direction::HostToDevice, 1, pt.data(), pt.size());
    blob.full_len = 128; // replay as a different-sized transfer
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(ch.open(blob, 1, out));
}

TEST(SecureChannel, SampleLimitZeroMeansFull)
{
    ChannelConfig cfg;
    cfg.sample_limit = 0;
    SecureChannel ch(cfg);
    EXPECT_EQ(ch.sampledLen(12345), 12345u);
}

TEST(SecureChannel, NopIsOneByteAndOpens)
{
    SecureChannel ch;
    auto nop = ch.sealNop(Direction::HostToDevice, 99);
    EXPECT_EQ(nop.full_len, 1u);
    EXPECT_EQ(nop.sample_ct.size(), 1u);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ch.open(nop, 99, out));
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0u);
}

TEST(SecureChannel, DifferentKeysCannotOpen)
{
    ChannelConfig a, b;
    a.key_seed = 1;
    b.key_seed = 2;
    SecureChannel cha(a), chb(b);
    auto pt = pattern(32);
    auto blob = cha.seal(Direction::HostToDevice, 0, pt.data(), pt.size());
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(chb.open(blob, 0, out));
}

TEST(SecureChannel, AdjacentSeedsYieldIndependentSessions)
{
    // The multi-device Platform derives each device's session key as
    // base key_seed + device id; adjacent seeds must still produce
    // unrelated keys, so one device's traffic never opens on another.
    ChannelConfig base;
    ChannelConfig next = base;
    next.key_seed = base.key_seed + 1;
    SecureChannel dev0(base), dev1(next);
    auto pt = pattern(512);
    for (std::uint64_t iv : {0ull, 1ull, 9ull}) {
        auto blob = dev0.seal(Direction::HostToDevice, iv, pt.data(),
                              pt.size());
        std::vector<std::uint8_t> out;
        EXPECT_FALSE(dev1.open(blob, iv, out));
        EXPECT_TRUE(dev0.open(blob, iv, out));
    }
}

TEST(SecureChannel, Aes128ModeWorks)
{
    ChannelConfig cfg;
    cfg.key_bytes = 16;
    SecureChannel ch(cfg);
    auto pt = pattern(100);
    auto blob = ch.seal(Direction::DeviceToHost, 4, pt.data(), pt.size());
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ch.open(blob, 4, out));
    EXPECT_EQ(out, pt);
}
