#include <gtest/gtest.h>

#include <vector>

#include "crypto/gcm.hh"
#include "tests/crypto/hex_util.hh"

using namespace pipellm::crypto;
using hexutil::fromHex;
using hexutil::toHex;

namespace {

AesGcm
testGcm()
{
    auto key = fromHex("feffe9928665731c6d6a8f9467308308"
                       "feffe9928665731c6d6a8f9467308308");
    return AesGcm(key.data(), key.size());
}

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = std::uint8_t(i * 13 + 1);
    return v;
}

} // namespace

TEST(GcmStream, SingleUpdateMatchesOneShot)
{
    auto gcm = testGcm();
    GcmIv iv{};
    iv[5] = 7;
    auto pt = pattern(100);

    std::vector<std::uint8_t> ct_oneshot(100);
    GcmTag tag_oneshot;
    gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct_oneshot.data(),
             tag_oneshot);

    GcmStream enc(gcm, iv, GcmStream::Op::Encrypt);
    std::vector<std::uint8_t> ct_stream(100);
    enc.update(pt.data(), pt.size(), ct_stream.data());
    GcmTag tag_stream;
    EXPECT_TRUE(enc.finish(tag_stream));

    EXPECT_EQ(ct_stream, ct_oneshot);
    EXPECT_EQ(tag_stream, tag_oneshot);
}

TEST(GcmStream, ChunkedUpdatesMatchOneShot)
{
    auto gcm = testGcm();
    GcmIv iv{};
    auto pt = pattern(1000);
    std::vector<std::uint8_t> ct_oneshot(pt.size());
    GcmTag tag_oneshot;
    gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct_oneshot.data(),
             tag_oneshot);

    // Deliberately awkward chunk sizes straddling block boundaries.
    for (std::size_t chunk : {1u, 3u, 7u, 16u, 17u, 33u, 250u}) {
        GcmStream enc(gcm, iv, GcmStream::Op::Encrypt);
        std::vector<std::uint8_t> ct(pt.size());
        std::size_t off = 0;
        while (off < pt.size()) {
            std::size_t n = std::min(chunk, pt.size() - off);
            enc.update(pt.data() + off, n, ct.data() + off);
            off += n;
        }
        GcmTag tag;
        EXPECT_TRUE(enc.finish(tag));
        EXPECT_EQ(ct, ct_oneshot) << "chunk=" << chunk;
        EXPECT_EQ(tag, tag_oneshot) << "chunk=" << chunk;
        EXPECT_EQ(enc.processedBytes(), pt.size());
    }
}

TEST(GcmStream, AadMatchesOneShot)
{
    auto gcm = testGcm();
    GcmIv iv{};
    iv[0] = 1;
    auto pt = pattern(77);
    auto aad = fromHex("feedfacedeadbeef01");

    std::vector<std::uint8_t> ct_oneshot(pt.size());
    GcmTag tag_oneshot;
    gcm.seal(iv, aad.data(), aad.size(), pt.data(), pt.size(),
             ct_oneshot.data(), tag_oneshot);

    GcmStream enc(gcm, iv, GcmStream::Op::Encrypt);
    enc.aad(aad.data(), aad.size());
    std::vector<std::uint8_t> ct(pt.size());
    enc.update(pt.data(), pt.size(), ct.data());
    GcmTag tag;
    EXPECT_TRUE(enc.finish(tag));
    EXPECT_EQ(ct, ct_oneshot);
    EXPECT_EQ(tag, tag_oneshot);
}

TEST(GcmStream, DecryptVerifiesAndRecoversPlaintext)
{
    auto gcm = testGcm();
    GcmIv iv{};
    iv[11] = 42;
    auto pt = pattern(333);
    std::vector<std::uint8_t> ct(pt.size());
    GcmTag tag;
    gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);

    GcmStream dec(gcm, iv, GcmStream::Op::Decrypt);
    std::vector<std::uint8_t> out(pt.size());
    dec.update(ct.data(), 100, out.data());
    dec.update(ct.data() + 100, 233, out.data() + 100);
    EXPECT_TRUE(dec.finish(tag));
    EXPECT_EQ(out, pt);
}

TEST(GcmStream, DecryptRejectsTamperedTag)
{
    auto gcm = testGcm();
    GcmIv iv{};
    auto pt = pattern(64);
    std::vector<std::uint8_t> ct(pt.size());
    GcmTag tag;
    gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
    tag[3] ^= 0x10;

    GcmStream dec(gcm, iv, GcmStream::Op::Decrypt);
    std::vector<std::uint8_t> out(pt.size());
    dec.update(ct.data(), ct.size(), out.data());
    EXPECT_FALSE(dec.finish(tag));
}

TEST(GcmStream, EmptyMessageMatchesOneShot)
{
    auto gcm = testGcm();
    GcmIv iv{};
    GcmTag tag_oneshot;
    gcm.seal(iv, nullptr, 0, nullptr, 0, nullptr, tag_oneshot);

    GcmStream enc(gcm, iv, GcmStream::Op::Encrypt);
    GcmTag tag;
    EXPECT_TRUE(enc.finish(tag));
    EXPECT_EQ(tag, tag_oneshot);
}

TEST(GcmStreamDeath, AadAfterDataPanics)
{
    auto gcm = testGcm();
    GcmIv iv{};
    GcmStream enc(gcm, iv, GcmStream::Op::Encrypt);
    std::uint8_t b = 1, o;
    enc.update(&b, 1, &o);
    EXPECT_DEATH(enc.aad(&b, 1), "AAD must precede");
}

TEST(GcmStreamDeath, DoubleFinishPanics)
{
    auto gcm = testGcm();
    GcmIv iv{};
    GcmStream enc(gcm, iv, GcmStream::Op::Encrypt);
    GcmTag tag;
    EXPECT_TRUE(enc.finish(tag));
    EXPECT_DEATH((void)enc.finish(tag), "already finished");
}
