#include <gtest/gtest.h>

#include "crypto/aes.hh"
#include "tests/crypto/hex_util.hh"

using pipellm::crypto::Aes;
using hexutil::fromHex;
using hexutil::toHex;

namespace {

std::string
encryptHex(const std::string &key_hex, const std::string &pt_hex)
{
    auto key = fromHex(key_hex);
    auto pt = fromHex(pt_hex);
    Aes aes(key.data(), key.size());
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    return toHex(ct, 16);
}

} // namespace

// FIPS-197 Appendix C.1: AES-128 example vector.
TEST(Aes, Fips197Aes128)
{
    EXPECT_EQ(encryptHex("000102030405060708090a0b0c0d0e0f",
                         "00112233445566778899aabbccddeeff"),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// FIPS-197 Appendix C.3: AES-256 example vector.
TEST(Aes, Fips197Aes256)
{
    EXPECT_EQ(encryptHex(
                  "000102030405060708090a0b0c0d0e0f"
                  "101112131415161718191a1b1c1d1e1f",
                  "00112233445566778899aabbccddeeff"),
              "8ea2b7ca516745bfeafc49904b496089");
}

// NIST SP 800-38A F.1.1 ECB-AES128 block 1.
TEST(Aes, Sp80038aEcbAes128)
{
    EXPECT_EQ(encryptHex("2b7e151628aed2a6abf7158809cf4f3c",
                         "6bc1bee22e409f96e93d7e117393172a"),
              "3ad77bb40d7a3660a89ecaf32466ef97");
}

// NIST SP 800-38A F.1.5 ECB-AES256 block 1.
TEST(Aes, Sp80038aEcbAes256)
{
    EXPECT_EQ(encryptHex(
                  "603deb1015ca71be2b73aef0857d7781"
                  "1f352c073b6108d72d9810a30914dff4",
                  "6bc1bee22e409f96e93d7e117393172a"),
              "f3eed1bdb5d2a03c064b5a7e3db181f8");
}

TEST(Aes, RoundCounts)
{
    auto k128 = fromHex("00000000000000000000000000000000");
    auto k256 = fromHex("00000000000000000000000000000000"
                        "00000000000000000000000000000000");
    EXPECT_EQ(Aes(k128.data(), 16).rounds(), 10u);
    EXPECT_EQ(Aes(k256.data(), 32).rounds(), 14u);
}

TEST(Aes, InPlaceEncryptionAllowed)
{
    auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    auto buf = fromHex("00112233445566778899aabbccddeeff");
    Aes aes(key.data(), key.size());
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(toHex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesDeath, RejectsBadKeySize)
{
    std::uint8_t key[20] = {};
    EXPECT_DEATH(Aes(key, 20), "unsupported AES key size");
}

// FIPS-197 Appendix C.2: AES-192 example vector.
TEST(Aes, Fips197Aes192)
{
    EXPECT_EQ(encryptHex("000102030405060708090a0b0c0d0e0f1011121314151617",
                         "00112233445566778899aabbccddeeff"),
              "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Aes192RoundCount)
{
    auto key = fromHex("000102030405060708090a0b0c0d0e0f1011121314151617");
    EXPECT_EQ(Aes(key.data(), 24).rounds(), 12u);
}
