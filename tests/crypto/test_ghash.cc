#include <gtest/gtest.h>

#include "crypto/aes.hh"
#include "crypto/ghash.hh"
#include "tests/crypto/hex_util.hh"

using namespace pipellm::crypto;
using hexutil::fromHex;
using hexutil::toHex;

namespace {

Block128
hashKeyFromAesKey(const std::string &key_hex)
{
    auto key = fromHex(key_hex);
    Aes aes(key.data(), key.size());
    std::uint8_t zero[16] = {};
    std::uint8_t h[16];
    aes.encryptBlock(zero, h);
    return loadBlock(h);
}

std::string
digestHex(const Ghash &g)
{
    std::uint8_t out[16];
    storeBlock(g.digest(), out);
    return toHex(out, 16);
}

} // namespace

TEST(Block128, LoadStoreRoundTrip)
{
    auto bytes = fromHex("0123456789abcdef0011223344556677");
    Block128 b = loadBlock(bytes.data());
    EXPECT_EQ(b.hi, 0x0123456789abcdefull);
    EXPECT_EQ(b.lo, 0x0011223344556677ull);
    std::uint8_t back[16];
    storeBlock(b, back);
    EXPECT_EQ(toHex(back, 16), "0123456789abcdef0011223344556677");
}

TEST(Ghash, ZeroInputIsZero)
{
    Block128 h = hashKeyFromAesKey("00000000000000000000000000000000");
    Ghash g(h);
    std::uint8_t zeros[16] = {};
    g.updateBlock(zeros);
    // GHASH of a zero block is 0 * H = 0.
    EXPECT_EQ(digestHex(g), "00000000000000000000000000000000");
}

// Intermediate GHASH value from McGrew & Viega GCM spec, test case 2:
// GHASH(H, {}, C) with K = 0^128, C = 0388dace60b6a392f328c2b971b2fe78
// equals f38cbb1ad69223dcc3457ae5b6b0f885.
TEST(Ghash, McGrewViegaCase2Intermediate)
{
    Block128 h = hashKeyFromAesKey("00000000000000000000000000000000");
    Ghash g(h);
    auto ct = fromHex("0388dace60b6a392f328c2b971b2fe78");
    g.update(ct.data(), ct.size());
    g.updateLengths(0, 16);
    EXPECT_EQ(digestHex(g), "f38cbb1ad69223dcc3457ae5b6b0f885");
}

TEST(Ghash, ResetClearsState)
{
    Block128 h = hashKeyFromAesKey("00000000000000000000000000000000");
    Ghash g(h);
    auto ct = fromHex("0388dace60b6a392f328c2b971b2fe78");
    g.update(ct.data(), ct.size());
    g.reset();
    EXPECT_EQ(digestHex(g), "00000000000000000000000000000000");
}

TEST(Ghash, PartialBlockIsZeroPadded)
{
    Block128 h = hashKeyFromAesKey("feffe9928665731c6d6a8f9467308308");
    Ghash a(h), b(h);
    auto data = fromHex("deadbeef");
    auto padded = fromHex("deadbeef000000000000000000000000");
    a.update(data.data(), data.size());
    b.updateBlock(padded.data());
    EXPECT_EQ(digestHex(a), digestHex(b));
}

TEST(Ghash, MultiBlockMatchesIncremental)
{
    Block128 h = hashKeyFromAesKey("feffe9928665731c6d6a8f9467308308");
    auto data = fromHex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72");
    Ghash one(h), two(h);
    one.update(data.data(), data.size());
    two.updateBlock(data.data());
    two.updateBlock(data.data() + 16);
    EXPECT_EQ(digestHex(one), digestHex(two));
}
