#include <gtest/gtest.h>

#include <set>

#include "crypto/iv.hh"

using namespace pipellm::crypto;

TEST(IvCounter, StartsAtConfiguredValue)
{
    IvCounter c(Direction::HostToDevice, 5);
    EXPECT_EQ(c.current(), 5u);
    EXPECT_EQ(c.direction(), Direction::HostToDevice);
}

TEST(IvCounter, NextConsumesSequentially)
{
    IvCounter c(Direction::HostToDevice);
    EXPECT_EQ(c.next(), 0u);
    EXPECT_EQ(c.next(), 1u);
    EXPECT_EQ(c.next(), 2u);
    EXPECT_EQ(c.current(), 3u);
}

TEST(IvCounter, PeekDoesNotConsume)
{
    IvCounter c(Direction::DeviceToHost, 10);
    EXPECT_EQ(c.peek(), 10u);
    EXPECT_EQ(c.peek(5), 15u);
    EXPECT_EQ(c.current(), 10u);
}

TEST(IvCounter, AdvanceSkipsValues)
{
    IvCounter c(Direction::HostToDevice);
    c.advance(3);
    EXPECT_EQ(c.next(), 3u);
}

TEST(MakeIv, DistinctPerCounter)
{
    std::set<std::string> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        auto iv = makeIv(Direction::HostToDevice, i);
        seen.insert(std::string(iv.begin(), iv.end()));
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(MakeIv, DistinctPerDirection)
{
    auto h2d = makeIv(Direction::HostToDevice, 42);
    auto d2h = makeIv(Direction::DeviceToHost, 42);
    EXPECT_NE(h2d, d2h);
}

TEST(MakeIv, EncodesCounterBigEndian)
{
    auto iv = makeIv(Direction::HostToDevice, 0x0102030405060708ull);
    EXPECT_EQ(iv[4], 0x01);
    EXPECT_EQ(iv[11], 0x08);
}

TEST(Direction, ToString)
{
    EXPECT_STREQ(toString(Direction::HostToDevice), "H2D");
    EXPECT_STREQ(toString(Direction::DeviceToHost), "D2H");
}
