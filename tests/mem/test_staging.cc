#include <gtest/gtest.h>

#include "mem/staging.hh"

using namespace pipellm;
using pipellm::mem::StagingPool;

TEST(StagingPool, LeasesAreImmediateWhenFree)
{
    StagingPool pool(2, 1 * MiB);
    auto a = pool.acquire(100);
    EXPECT_EQ(a.available, 100u);
    auto b = pool.acquire(100);
    EXPECT_EQ(b.available, 100u);
    EXPECT_NE(a.buf, b.buf);
    EXPECT_EQ(pool.stalls(), 0u);
}

TEST(StagingPool, AcquireWaitsForRelease)
{
    StagingPool pool(1, 1 * MiB);
    auto a = pool.acquire(0);
    pool.release(a.buf, 500);
    auto b = pool.acquire(100);
    EXPECT_EQ(b.available, 500u);
    EXPECT_EQ(pool.stalls(), 1u);
}

TEST(StagingPool, PicksEarliestFreeBuffer)
{
    StagingPool pool(2, 1 * MiB);
    auto a = pool.acquire(0);
    auto b = pool.acquire(0);
    pool.release(a.buf, 1000);
    pool.release(b.buf, 200);
    auto c = pool.acquire(0);
    EXPECT_EQ(c.buf, b.buf);
    EXPECT_EQ(c.available, 200u);
}

TEST(StagingPool, ChunksCoverLength)
{
    StagingPool pool(4, 1 * MiB);
    auto chunks = pool.chunk(2 * MiB + 500);
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks[0], 1 * MiB);
    EXPECT_EQ(chunks[1], 1 * MiB);
    EXPECT_EQ(chunks[2], 500u);
    EXPECT_TRUE(pool.chunk(0).empty());
}

TEST(StagingPool, TotalBytes)
{
    StagingPool pool(8, 2 * MiB);
    EXPECT_EQ(pool.totalBytes(), 16 * MiB);
}

TEST(StagingPoolDeath, ExhaustionPanics)
{
    StagingPool pool(1, 1 * MiB);
    pool.acquire(0);
    EXPECT_DEATH(pool.acquire(0), "exhausted");
}

TEST(StagingPoolDeath, DoubleReleasePanics)
{
    StagingPool pool(1, 1 * MiB);
    auto a = pool.acquire(0);
    pool.release(a.buf, 10);
    EXPECT_DEATH(pool.release(a.buf, 20), "unleased");
}
