#include <gtest/gtest.h>

#include "mem/page_protection.hh"

using namespace pipellm;
using namespace pipellm::mem;

TEST(PageProtection, UnprotectedAccessIsFree)
{
    PageProtection pp;
    EXPECT_EQ(pp.access(0x1000, 64, true), 0u);
    EXPECT_EQ(pp.faults(), 0u);
    EXPECT_EQ(pp.query(0x1000), Protection::None);
}

TEST(PageProtection, NoWriteAllowsReads)
{
    PageProtection pp;
    bool fired = false;
    pp.protect(0x1000, pageBytes, Protection::NoWrite,
               [&](Addr, bool) -> Tick {
                   fired = true;
                   pp.unprotect(0x1000, pageBytes);
                   return 0;
               });
    EXPECT_EQ(pp.access(0x1000, 64, false), 0u);
    EXPECT_FALSE(fired);
    EXPECT_EQ(pp.faults(), 0u);
}

TEST(PageProtection, NoWriteFaultsOnWrite)
{
    PageProtection pp;
    int fired = 0;
    pp.protect(0x1000, pageBytes, Protection::NoWrite,
               [&](Addr addr, bool is_write) -> Tick {
                   ++fired;
                   EXPECT_TRUE(is_write);
                   EXPECT_EQ(addr, 0x1000u);
                   pp.unprotect(0x1000, pageBytes);
                   return 77;
               });
    EXPECT_EQ(pp.access(0x1080, 8, true), 77u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(pp.faults(), 1u);
    // Protection lifted: subsequent writes are free.
    EXPECT_EQ(pp.access(0x1080, 8, true), 0u);
}

TEST(PageProtection, NoAccessFaultsOnRead)
{
    PageProtection pp;
    pp.protect(0x2000, 100, Protection::NoAccess,
               [&](Addr, bool) -> Tick {
                   pp.unprotect(0x2000, 100);
                   return 5;
               });
    EXPECT_EQ(pp.access(0x2000, 4, false), 5u);
    EXPECT_EQ(pp.faults(), 1u);
}

TEST(PageProtection, RangeExpandsToPageBoundaries)
{
    PageProtection pp;
    // Protect 10 bytes in the middle of a page: whole page protected.
    pp.protect(0x1800, 10, Protection::NoWrite,
               [&](Addr, bool) -> Tick {
                   pp.unprotect(0x1000, pageBytes);
                   return 0;
               });
    EXPECT_EQ(pp.query(0x1000), Protection::NoWrite);
    EXPECT_EQ(pp.query(0x1fff), Protection::NoWrite);
    EXPECT_EQ(pp.query(0x2000), Protection::None);
}

TEST(PageProtection, MultiPageFaultInvokesHandlerPerPage)
{
    PageProtection pp;
    int fired = 0;
    pp.protect(0x1000, 3 * pageBytes, Protection::NoWrite,
               [&](Addr addr, bool) -> Tick {
                   ++fired;
                   pp.unprotect(addr, pageBytes);
                   return Tick(fired * 10);
               });
    // Touch all three pages in one access.
    EXPECT_EQ(pp.access(0x1000, 3 * pageBytes, true), 30u);
    EXPECT_EQ(fired, 3);
}

TEST(PageProtection, HandlerCoveringWholeRangeFiresOnce)
{
    PageProtection pp;
    int fired = 0;
    pp.protect(0x1000, 4 * pageBytes, Protection::NoAccess,
               [&](Addr, bool) -> Tick {
                   ++fired;
                   pp.unprotect(0x1000, 4 * pageBytes);
                   return 9;
               });
    EXPECT_EQ(pp.access(0x1000, 4 * pageBytes, false), 9u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(pp.protectedPages(), 0u);
}

TEST(PageProtection, AnyProtectedQueries)
{
    PageProtection pp;
    pp.protect(0x3000, pageBytes, Protection::NoWrite,
               [](Addr, bool) -> Tick { return 0; });
    EXPECT_TRUE(pp.anyProtected(0x3000, 1));
    EXPECT_TRUE(pp.anyProtected(0x2fff, 2));
    EXPECT_FALSE(pp.anyProtected(0x2000, pageBytes));
    EXPECT_FALSE(pp.anyProtected(0x4000, pageBytes));
}

TEST(PageProtectionDeath, HandlerMustLiftProtection)
{
    PageProtection pp;
    pp.protect(0x1000, pageBytes, Protection::NoWrite,
               [](Addr, bool) -> Tick { return 0; });
    EXPECT_DEATH(pp.access(0x1000, 8, true), "still protected");
}

TEST(PageProtection, IntervalSplitOnPartialUnprotect)
{
    // One big protected range; unprotecting the middle leaves both
    // flanks protected (interval split).
    PageProtection pp;
    pp.protect(0x10000, 8 * pageBytes, Protection::NoWrite,
               [](Addr, bool) -> Tick { return 0; });
    pp.unprotect(0x10000 + 3 * pageBytes, 2 * pageBytes);
    EXPECT_EQ(pp.query(0x10000), Protection::NoWrite);
    EXPECT_EQ(pp.query(0x10000 + 3 * pageBytes), Protection::None);
    EXPECT_EQ(pp.query(0x10000 + 4 * pageBytes), Protection::None);
    EXPECT_EQ(pp.query(0x10000 + 5 * pageBytes), Protection::NoWrite);
    EXPECT_EQ(pp.protectedPages(), 6u);
}

TEST(PageProtection, ProtectOverwritesOverlap)
{
    PageProtection pp;
    int first = 0, second = 0;
    pp.protect(0x10000, 4 * pageBytes, Protection::NoWrite,
               [&](Addr, bool) -> Tick {
                   ++first;
                   pp.unprotect(0x10000, 4 * pageBytes);
                   return 0;
               });
    // Re-protecting a sub-range replaces it with the new handler.
    pp.protect(0x10000 + pageBytes, pageBytes, Protection::NoAccess,
               [&](Addr, bool) -> Tick {
                   ++second;
                   pp.unprotect(0x10000 + pageBytes, pageBytes);
                   return 7;
               });
    EXPECT_EQ(pp.access(0x10000 + pageBytes, 8, false), 7u);
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
    // The flanks keep the original NoWrite protection.
    EXPECT_EQ(pp.query(0x10000), Protection::NoWrite);
    EXPECT_EQ(pp.query(0x10000 + 2 * pageBytes), Protection::NoWrite);
}

TEST(PageProtection, HugeRangeIsCheap)
{
    // A 2 GiB protected range must not materialize per-page state
    // (regression guard for the interval-map rewrite).
    PageProtection pp;
    const std::uint64_t huge = 2ull * GiB;
    pp.protect(0x100000, huge, Protection::NoWrite,
               [&](Addr, bool) -> Tick {
                   pp.unprotect(0x100000, huge);
                   return 0;
               });
    EXPECT_EQ(pp.protectedPages(), huge / pageBytes);
    EXPECT_TRUE(pp.anyProtected(0x100000 + GiB, 1));
    EXPECT_EQ(pp.access(0x100000 + GiB, 8, true), 0u);
    EXPECT_EQ(pp.protectedPages(), 0u);
}

TEST(PageProtection, AdjacentRangesStayIndependent)
{
    PageProtection pp;
    int a = 0, b = 0;
    pp.protect(0x10000, pageBytes, Protection::NoWrite,
               [&](Addr, bool) -> Tick {
                   ++a;
                   pp.unprotect(0x10000, pageBytes);
                   return 0;
               });
    pp.protect(0x10000 + pageBytes, pageBytes, Protection::NoWrite,
               [&](Addr, bool) -> Tick {
                   ++b;
                   pp.unprotect(0x10000 + pageBytes, pageBytes);
                   return 0;
               });
    pp.access(0x10000 + pageBytes, 4, true);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(pp.query(0x10000), Protection::NoWrite);
}

TEST(PageProtection, UnprotectAcrossManyRanges)
{
    PageProtection pp;
    for (int i = 0; i < 5; ++i) {
        pp.protect(0x10000 + 2 * i * pageBytes, pageBytes,
                   Protection::NoWrite,
                   [](Addr, bool) -> Tick { return 0; });
    }
    EXPECT_EQ(pp.protectedPages(), 5u);
    // One sweep clears them all, including the gaps.
    pp.unprotect(0x10000, 10 * pageBytes);
    EXPECT_EQ(pp.protectedPages(), 0u);
}
