#include <gtest/gtest.h>

#include <vector>

#include "mem/sparse_memory.hh"

using namespace pipellm;
using namespace pipellm::mem;

TEST(SparseMemory, AllocTracksCapacity)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(100 * MiB, "weights");
    EXPECT_EQ(arena.bytesAllocated(), 100 * MiB);
    EXPECT_EQ(arena.bytesFree(), 1 * GiB - 100 * MiB);
    arena.free(r);
    EXPECT_EQ(arena.bytesAllocated(), 0u);
}

TEST(SparseMemory, HugeRegionsCostNoBacking)
{
    // A 300 GiB arena with a 150 GiB region: no real pages used.
    SparseMemory arena("host", 300 * GiB);
    auto r = arena.alloc(150 * GiB, "opt175b");
    EXPECT_EQ(arena.materializedPages(), 0u);
    // Reading anywhere inside works and is deterministic.
    auto a = arena.readSample(r.base + 100 * GiB, 64);
    auto b = arena.readSample(r.base + 100 * GiB, 64);
    EXPECT_EQ(a, b);
    EXPECT_EQ(arena.materializedPages(), 0u);
}

TEST(SparseMemory, OutOfMemoryIsFatal)
{
    SparseMemory arena("host", 1 * MiB);
    EXPECT_EXIT(arena.alloc(2 * MiB, "too-big"),
                ::testing::ExitedWithCode(1), "out of memory");
}

TEST(SparseMemory, WriteReadRoundTrip)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(1 * MiB, "buf");
    std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    arena.write(r.base + 10, data.data(), data.size());
    auto out = arena.readSample(r.base + 10, 5);
    EXPECT_EQ(out, data);
    EXPECT_EQ(arena.materializedPages(), 1u);
}

TEST(SparseMemory, WritePreservesSurroundingSyntheticBytes)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(1 * MiB, "buf");
    auto before = arena.readSample(r.base, 64);
    std::uint8_t v = 0xff;
    arena.write(r.base + 32, &v, 1);
    auto after = arena.readSample(r.base, 64);
    for (int i = 0; i < 64; ++i) {
        if (i == 32)
            EXPECT_EQ(after[i], 0xff);
        else
            EXPECT_EQ(after[i], before[i]) << "byte " << i;
    }
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(1 * MiB, "buf");
    std::vector<std::uint8_t> data(3 * pageBytes, 0xab);
    arena.write(r.base + 100, data.data(), data.size());
    auto out = arena.readSample(r.base + 100, data.size());
    EXPECT_EQ(out, data);
    EXPECT_EQ(arena.materializedPages(), 4u);
}

TEST(SparseMemory, DistinctRegionsHaveDistinctContent)
{
    SparseMemory arena("host", 1 * GiB);
    auto a = arena.alloc(64 * KiB, "a");
    auto b = arena.alloc(64 * KiB, "b");
    auto sa = arena.readSample(a.base, 256);
    auto sb = arena.readSample(b.base, 256);
    EXPECT_NE(sa, sb);
}

TEST(SparseMemory, DiscardPagesRestoresSyntheticContent)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(64 * KiB, "buf");
    auto synthetic = arena.readSample(r.base, 32);
    std::vector<std::uint8_t> junk(32, 0xee);
    arena.write(r.base, junk.data(), junk.size());
    EXPECT_EQ(arena.readSample(r.base, 32), junk);
    arena.discardPages(r.base, pageBytes);
    EXPECT_EQ(arena.readSample(r.base, 32), synthetic);
}

TEST(SparseMemory, RegionOfFindsOwner)
{
    SparseMemory arena("host", 1 * GiB);
    auto a = arena.alloc(64 * KiB, "a");
    auto b = arena.alloc(64 * KiB, "b");
    EXPECT_EQ(arena.regionOf(a.base + 100).id, a.id);
    EXPECT_EQ(arena.regionOf(b.base).id, b.id);
    EXPECT_TRUE(arena.covered(a.base, 64 * KiB));
    EXPECT_FALSE(arena.covered(a.base, 65 * KiB));
}

TEST(SparseMemory, SpaceAccounting)
{
    SparseMemory arena("host", 1 * GiB);
    arena.alloc(10 * MiB, "p", MemSpace::CvmPrivate);
    auto s = arena.alloc(2 * MiB, "s", MemSpace::CvmShared);
    EXPECT_EQ(arena.bytesAllocated(MemSpace::CvmPrivate), 10 * MiB);
    EXPECT_EQ(arena.bytesAllocated(MemSpace::CvmShared), 2 * MiB);
    arena.free(s);
    EXPECT_EQ(arena.bytesAllocated(MemSpace::CvmShared), 0u);
}

TEST(SparseMemory, ProtectionIntegratesWithWrite)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(64 * KiB, "buf");
    int faults = 0;
    arena.protection().protect(
        r.base, r.len, Protection::NoWrite,
        [&](Addr, bool) -> Tick {
            ++faults;
            arena.protection().unprotect(r.base, r.len);
            return 42;
        });
    std::uint8_t v = 1;
    // Reads don't fault.
    arena.readSample(r.base, 16);
    EXPECT_EQ(faults, 0);
    // First write faults and is ready at the handler's tick.
    EXPECT_EQ(arena.write(r.base, &v, 1), 42u);
    EXPECT_EQ(faults, 1);
    // Second write is free.
    EXPECT_EQ(arena.write(r.base, &v, 1), 0u);
}

TEST(SparseMemoryDeath, WildAccessPanics)
{
    SparseMemory arena("host", 1 * GiB);
    std::uint8_t buf[4];
    EXPECT_DEATH(arena.read(0xdead0000, buf, 4), "no allocated region");
}

TEST(SparseMemoryDeath, OverrunningRegionPanics)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(100, "tiny");
    std::uint8_t buf[32];
    EXPECT_DEATH(arena.read(r.base + 90, buf, 32), "no allocated region");
}

TEST(SparseMemoryDeath, UseAfterFreePanics)
{
    SparseMemory arena("host", 1 * GiB);
    auto r = arena.alloc(100, "gone");
    arena.free(r);
    std::uint8_t buf[4];
    EXPECT_DEATH(arena.read(r.base, buf, 4), "no allocated region");
}
