#!/usr/bin/env python3
"""Fixture tests for the pipellm_lint engine, driven by ctest.

Each check has a bad/ and a good/ fixture tree under
tests/lint/fixtures/<check>/: the engine pointed at bad/ must report
the check by name, pointed at good/ it must stay silent. The special
"suppression" fixture exercises the allow() comment machinery against
the printf-io check. A final mode runs the whole engine over the real
tree and requires silence (the fixtures themselves are excluded from
tree scans).

Modes:
  lint_fixture_test.py --fixture <check> --expect trip|silent
  lint_fixture_test.py --tree
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
ENGINE = os.path.join(REPO, "tools", "lint", "pipellm_lint.py")

# Fixture dir -> check the engine is restricted to. The suppression
# fixtures reuse printf-io as the underlying rule.
FIXTURE_CHECK = {
    "suppression": "printf-io",
}


def run_engine(extra):
    return subprocess.run(
        [sys.executable, ENGINE] + extra,
        capture_output=True, text=True)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--fixture")
    parser.add_argument("--expect", choices=["trip", "silent"])
    parser.add_argument("--tree", action="store_true")
    args = parser.parse_args()

    if args.tree:
        proc = run_engine([REPO])
        if proc.returncode != 0:
            print("expected the real tree to be lint-clean, got:")
            print(proc.stdout + proc.stderr)
            return 1
        print(proc.stdout.strip())
        return 0

    check = FIXTURE_CHECK.get(args.fixture, args.fixture)
    sub = "bad" if args.expect == "trip" else "good"
    root = os.path.join(HERE, "fixtures", args.fixture, sub)
    if not os.path.isdir(root):
        print(f"missing fixture tree: {root}")
        return 1
    proc = run_engine(["--root", root, "--check", check])

    if args.expect == "trip":
        if proc.returncode == 0:
            print(f"{args.fixture}/bad did not trip [{check}]:")
            print(proc.stdout + proc.stderr)
            return 1
        if f"[{check}]" not in proc.stdout:
            print(f"{args.fixture}/bad failed without naming "
                  f"[{check}]:")
            print(proc.stdout + proc.stderr)
            return 1
        print(f"{args.fixture}/bad trips [{check}] as expected")
    else:
        if proc.returncode != 0:
            print(f"{args.fixture}/good is not silent under "
                  f"[{check}]:")
            print(proc.stdout + proc.stderr)
            return 1
        print(f"{args.fixture}/good is silent under [{check}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
