// Fixture: a bare std::mutex opts its state out of the analysis.
#include <mutex>

std::mutex mu_;
int depth_ = 0;

void
push()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++depth_;
}
