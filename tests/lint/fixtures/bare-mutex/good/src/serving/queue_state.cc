// Fixture: the annotated wrappers carry the capability attributes.
#include "common/mutex.hh"

pipellm::common::Mutex mu_;
int depth_ GUARDED_BY(mu_) = 0;

void
push()
{
    pipellm::common::LockGuard lock(mu_);
    ++depth_;
}
