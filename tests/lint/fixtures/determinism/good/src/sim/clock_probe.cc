// Fixture: simulated time and sorted iteration keep output stable.
#include <map>

std::map<int, int> table_;

long
probe(long now_tick)
{
    long sum = now_tick;
    for (const auto &kv : table_)
        sum += kv.second;
    return sum;
}
