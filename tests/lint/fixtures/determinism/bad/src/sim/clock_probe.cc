// Fixture: wall clocks and unordered iteration in fingerprint code.
#include <chrono>
#include <unordered_map>

std::unordered_map<int, int> table_;

long
probe()
{
    auto now = std::chrono::steady_clock::now();
    long sum = now.time_since_epoch().count();
    for (const auto &kv : table_)
        sum += kv.second;
    return sum;
}
