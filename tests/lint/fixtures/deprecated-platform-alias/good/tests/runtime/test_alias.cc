// Fixture: new code names the device index.
void
probe(Platform &platform_)
{
    platform_.device(0).reset();
}
