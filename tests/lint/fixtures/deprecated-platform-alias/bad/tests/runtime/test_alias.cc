// Fixture: the no-argument device() alias is deprecated.
void
probe(Platform &platform_)
{
    platform_.device().reset();
}
