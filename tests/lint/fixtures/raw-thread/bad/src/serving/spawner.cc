// Fixture: ad-hoc std::thread escapes the WorkerPool protocol.
#include <thread>

void
spawn()
{
    std::thread t([] {});
    t.join();
}
