// Fixture: parallel work goes through the barriered WorkerPool.
#include "sim/worker_pool.hh"

void
spawn(pipellm::sim::WorkerPool &pool)
{
    pool.parallelFor(4, [](unsigned) {});
}
