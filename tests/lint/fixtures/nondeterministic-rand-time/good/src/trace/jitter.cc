// Fixture: all randomness flows through the seeded Rng.
#include "common/rng.hh"

int
jitter(pipellm::Rng &rng)
{
    return int(rng.uniform(0, 6));
}
