// Fixture: naked rand() breaks seeded reproducibility.
#include <cstdlib>

int
jitter()
{
    return rand() % 7;
}
