// Fixture: a suppression with no justification is itself a finding.
#include <cstdio>

void
dump(int lane)
{
    printf("lane %d\n", lane); // pipellm-lint: allow(printf-io)
}
