// Fixture: a justified suppression silences the check.
#include <cstdio>

void
dump(int lane)
{
    // pipellm-lint: allow(printf-io) -- raw dump tool runs pre-logging
    printf("lane %d\n", lane);
}
