// Fixture: sim/ may depend on common/ and audit/ only.
#include "audit/audit.hh"
#include "common/logging.hh"

void hook() {}
