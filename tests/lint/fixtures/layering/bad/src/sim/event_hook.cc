// Fixture: sim/ reaching up into serving/ breaks the layering DAG.
#include "serving/cluster.hh"
#include "common/logging.hh"

void hook() {}
