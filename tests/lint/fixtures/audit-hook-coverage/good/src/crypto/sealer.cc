// Fixture: the seal site names its audit hook.
#include "crypto/gcm.hh"

bool
sealBlock(unsigned char *buf, unsigned long n)
{
    gcm_->seal(iv_, aad_, sizeof(aad_), buf, n, tag_);
    PIPELLM_AUDIT_HOOK(noteSeal(key_id_, iv_, tag_));
    return true;
}
