// Fixture: a raw AEAD seal with no audit hook in the function.
#include "crypto/gcm.hh"

bool
sealBlock(unsigned char *buf, unsigned long n)
{
    gcm_->seal(iv_, aad_, sizeof(aad_), buf, n, tag_);
    return true;
}
