// Fixture: diagnostics go through common/logging.
#include "common/logging.hh"

void
dump(int lane)
{
    LOG("lane ", lane);
}
