// Fixture: printf bypasses the severity-carrying logging macros.
#include <cstdio>

void
dump(int lane)
{
    printf("lane %d\n", lane);
}
