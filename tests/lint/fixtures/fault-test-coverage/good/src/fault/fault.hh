// Fixture: injection and recovery are both proven.
enum class Kind
{
    TagCorruption,
};
