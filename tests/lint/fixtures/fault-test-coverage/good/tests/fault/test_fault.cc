TEST(Fault, TagCorruptionInjection) {}
TEST(Fault, TagCorruptionRecovery) {}
