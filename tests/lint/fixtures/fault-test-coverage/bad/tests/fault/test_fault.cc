TEST(Fault, TagCorruptionInjection) {}
