// Fixture: a fault kind whose Recovery test is missing.
enum class Kind
{
    TagCorruption,
};
