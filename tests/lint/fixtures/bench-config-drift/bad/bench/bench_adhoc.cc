// Fixture: hand-rolled cluster config in a bench main drifts.
#include "serving/cluster.hh"

int
main()
{
    serving::ClusterConfig config;
    config.n_devices = 4;
    return 0;
}
