// Fixture: benches load committed .scenario files instead.
#include "scenario/runner.hh"

int
main()
{
    auto parsed = pipellm::scenario::loadScenario("faults.scenario");
    runScenario(parsed.spec, {});
    return 0;
}
