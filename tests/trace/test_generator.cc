#include <gtest/gtest.h>

#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::trace;

namespace {

double
meanPrompt(const Trace &t)
{
    double s = 0;
    for (const auto &r : t)
        s += r.prompt_len;
    return s / double(t.size());
}

double
meanOutput(const Trace &t)
{
    double s = 0;
    for (const auto &r : t)
        s += r.output_len;
    return s / double(t.size());
}

} // namespace

TEST(TraceGenerator, ShareGptMeansMatchPublishedStats)
{
    TraceGenerator gen(DatasetProfile::shareGpt(), 1);
    auto t = gen.closedLoop(20000);
    // Clipping at 2048 pulls the mean slightly below the target.
    EXPECT_NEAR(meanPrompt(t), 161.0, 25.0);
    EXPECT_NEAR(meanOutput(t), 338.0, 50.0);
}

TEST(TraceGenerator, AlpacaIsMuchShorterThanShareGpt)
{
    TraceGenerator sg(DatasetProfile::shareGpt(), 1);
    TraceGenerator al(DatasetProfile::alpaca(), 1);
    auto ts = sg.closedLoop(5000);
    auto ta = al.closedLoop(5000);
    EXPECT_NEAR(meanPrompt(ta), 19.0, 4.0);
    EXPECT_NEAR(meanOutput(ta), 58.0, 10.0);
    EXPECT_LT(meanPrompt(ta) * 4, meanPrompt(ts));
}

TEST(TraceGenerator, UltrachatSequencesAreLong)
{
    TraceGenerator gen(DatasetProfile::ultrachat(), 2);
    auto t = gen.closedLoop(5000);
    EXPECT_NEAR(meanPrompt(t), 1024.0, 120.0);
    for (const auto &r : t) {
        EXPECT_GE(r.prompt_len, 128u);
        EXPECT_LE(r.prompt_len, 2048u);
        EXPECT_EQ(r.output_len, 0u);
    }
}

TEST(TraceGenerator, PoissonArrivalsMatchRate)
{
    TraceGenerator gen(DatasetProfile::alpaca(), 3);
    const double rate = 4.0;
    auto t = gen.poisson(8000, rate);
    ASSERT_FALSE(t.empty());
    // Arrivals are sorted and average to 1/rate spacing.
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GE(t[i].arrival, t[i - 1].arrival);
    double span = toSeconds(t.back().arrival);
    EXPECT_NEAR(double(t.size()) / span, rate, 0.25);
}

TEST(TraceGenerator, DeterministicForSeed)
{
    TraceGenerator a(DatasetProfile::shareGpt(), 7);
    TraceGenerator b(DatasetProfile::shareGpt(), 7);
    auto ta = a.poisson(100, 2.0);
    auto tb = b.poisson(100, 2.0);
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].arrival, tb[i].arrival);
        EXPECT_EQ(ta[i].prompt_len, tb[i].prompt_len);
        EXPECT_EQ(ta[i].output_len, tb[i].output_len);
    }
}

TEST(TraceGenerator, FixedTraceIsExact)
{
    auto t = TraceGenerator::fixed(10, 32, 128);
    ASSERT_EQ(t.size(), 10u);
    for (const auto &r : t) {
        EXPECT_EQ(r.prompt_len, 32u);
        EXPECT_EQ(r.output_len, 128u);
        EXPECT_EQ(r.arrival, 0u);
    }
    EXPECT_EQ(t[9].id, 9u);
}

TEST(TraceGenerator, LengthsRespectClipping)
{
    TraceGenerator gen(DatasetProfile::shareGpt(), 11);
    auto t = gen.closedLoop(5000);
    for (const auto &r : t) {
        EXPECT_GE(r.prompt_len, 4u);
        EXPECT_LE(r.prompt_len, 2048u);
        EXPECT_GE(r.output_len, 1u);
        EXPECT_LE(r.output_len, 2048u);
    }
}

TEST(TraceGenerator, PhasedTraceSharesOneTimelineAndIdSpace)
{
    TraceGenerator gen(DatasetProfile::shareGpt(), 13);
    auto t = gen.poissonPhases({{50, 2.0}, {100, 200.0}, {50, 2.0}});
    ASSERT_EQ(t.size(), 200u);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t[i].id, i); // globally sequential across phases
        if (i > 0) {
            EXPECT_GE(t[i].arrival, t[i - 1].arrival); // monotone
        }
    }
    // The burst phase really is denser: 100 requests at 100x the rate
    // occupy a far shorter span than either calm phase.
    Tick calm1 = t[49].arrival - t[0].arrival;
    Tick burst = t[149].arrival - t[50].arrival;
    Tick calm2 = t[199].arrival - t[150].arrival;
    EXPECT_LT(burst * 10, calm1);
    EXPECT_LT(burst * 10, calm2);
}

TEST(TraceGenerator, SinglePhaseMatchesPlainPoisson)
{
    TraceGenerator a(DatasetProfile::shareGpt(), 17);
    TraceGenerator b(DatasetProfile::shareGpt(), 17);
    auto plain = a.poisson(80, 3.0);
    auto phased = b.poissonPhases({{80, 3.0}});
    ASSERT_EQ(plain.size(), phased.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].id, phased[i].id);
        EXPECT_EQ(plain[i].arrival, phased[i].arrival);
        EXPECT_EQ(plain[i].prompt_len, phased[i].prompt_len);
        EXPECT_EQ(plain[i].output_len, phased[i].output_len);
    }
}

TEST(TraceGenerator, DeadlineStampIsFloorPlusPerTokenBudget)
{
    TraceGenerator gen(DatasetProfile::shareGpt(), 19);
    auto t = gen.poisson(50, 5.0);
    t[7].deadline = 12345; // stampDeadlines must replace this
    TraceGenerator::stampDeadlines(t, seconds(2), milliseconds(40));
    for (const auto &r : t) {
        EXPECT_EQ(r.deadline,
                  r.arrival + seconds(2) +
                      Tick(r.output_len) * milliseconds(40));
    }
}
