#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/pool.hh"

using namespace pipellm;
using sim::Pool;

namespace {

struct Tracked
{
    explicit Tracked(int *counter) : counter(counter) { ++*counter; }
    ~Tracked() { --*counter; }
    Tracked(const Tracked &) = delete;
    Tracked &operator=(const Tracked &) = delete;

    int *counter;
    std::uint64_t payload[4] = {};
};

struct alignas(32) OverAligned
{
    std::uint64_t lanes[4] = {};
};

} // namespace

TEST(Pool, CreateConstructsAndDestroyDestructs)
{
    Pool<Tracked> pool;
    int live = 0;
    Tracked *a = pool.create(&live);
    Tracked *b = pool.create(&live);
    EXPECT_EQ(live, 2);
    EXPECT_EQ(pool.liveCount(), 2u);
    pool.destroy(a);
    EXPECT_EQ(live, 1);
    pool.destroy(b);
    EXPECT_EQ(live, 0);
    EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(Pool, ReserveGrowsCapacityWithoutLiveObjects)
{
    Pool<Tracked> pool;
    EXPECT_EQ(pool.capacity(), 0u);
    pool.reserve(1000);
    EXPECT_GE(pool.capacity(), 1000u);
    EXPECT_EQ(pool.liveCount(), 0u);

    // Creating within the reservation must not grow further.
    std::size_t reserved = pool.capacity();
    int live = 0;
    std::vector<Tracked *> objs;
    objs.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        objs.push_back(pool.create(&live));
    EXPECT_EQ(pool.capacity(), reserved);
    for (auto *obj : objs)
        pool.destroy(obj);
}

TEST(Pool, FreedSlotIsReusedLifo)
{
    Pool<Tracked> pool;
    int live = 0;
    Tracked *a = pool.create(&live);
    pool.destroy(a);
    Tracked *b = pool.create(&live);
    // Most-recently-freed (cache-hot) slot comes back first.
    EXPECT_EQ(static_cast<void *>(a), static_cast<void *>(b));
    pool.destroy(b);
}

TEST(Pool, ManyChurnCyclesStayWithinOneSlab)
{
    Pool<Tracked> pool;
    pool.reserve(1);
    std::size_t capacity = pool.capacity();
    int live = 0;
    for (int i = 0; i < 100000; ++i) {
        Tracked *obj = pool.create(&live);
        pool.destroy(obj);
    }
    EXPECT_EQ(pool.capacity(), capacity);
    EXPECT_EQ(live, 0);
}

TEST(Pool, RespectsOverAlignment)
{
    Pool<OverAligned> pool;
    std::vector<OverAligned *> objs;
    for (int i = 0; i < 100; ++i) {
        OverAligned *obj = pool.create();
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(obj) %
                      alignof(OverAligned),
                  0u);
        objs.push_back(obj);
    }
    for (auto *obj : objs)
        pool.destroy(obj);
}

TEST(Pool, SlabsSurviveGrowth)
{
    // Growing must never move live objects: pointers handed out before
    // a grow stay valid after it.
    Pool<Tracked> pool;
    int live = 0;
    std::vector<Tracked *> objs;
    for (int i = 0; i < 5000; ++i)
        objs.push_back(pool.create(&live));
    EXPECT_EQ(live, 5000);
    for (auto *obj : objs) {
        EXPECT_EQ(obj->counter, &live);
        pool.destroy(obj);
    }
    EXPECT_EQ(live, 0);
}

#if PIPELLM_ASAN
TEST(PoolAsanDeath, ReadingAFreedSlotTripsPoisoning)
{
    // Freed slots are poisoned: a stale pointer dereference must be
    // reported as use-after-poison instead of silently reading the
    // next occupant.
    EXPECT_DEATH(
        {
            Pool<Tracked> pool;
            int live = 0;
            Tracked *obj = pool.create(&live);
            pool.destroy(obj);
            volatile std::uint64_t v = obj->payload[0];
            (void)v;
        },
        "use-after-poison");
}
#endif
