#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace pipellm;
using sim::EventQueue;

TEST(EventQueue, StartsAtZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, RunUntilFiresEventExactlyAtDeadline)
{
    // The deadline is inclusive: an event at exactly the deadline tick
    // belongs to this quantum, not the next.
    EventQueue eq;
    int fired = 0;
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunUntilDrainsReentrantSchedulingAtNow)
{
    // A deadline event that schedules more work at now() must see
    // that work dispatched within the same runUntil call — the
    // deadline check re-evaluates after every step.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&] {
        order.push_back(1);
        eq.schedule(eq.now(), [&] {
            order.push_back(2);
            eq.schedule(eq.now(), [&] { order.push_back(3); });
        });
    });
    eq.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunUntilLeavesEventsOneTickPastDeadline)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(21, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilInThePastIsANoOp)
{
    EventQueue eq;
    eq.runUntil(100);
    int fired = 0;
    eq.schedule(200, [&] { ++fired; });
    eq.runUntil(50); // earlier than now(): nothing fires, no rewind
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CountsDispatchedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.dispatched(), 7u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}
