#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/worker_pool.hh"

using namespace pipellm;
using sim::WorkerPool;

TEST(WorkerPool, HardwareConcurrencyIsAtLeastOne)
{
    EXPECT_GE(WorkerPool::hardwareConcurrency(), 1u);
}

TEST(WorkerPool, SingleThreadRunsInline)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<int> hits(100, 0);
    pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(WorkerPool, EveryIndexRunsExactlyOnce)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, BarrierMakesAllWritesVisible)
{
    WorkerPool pool(4);
    std::vector<std::uint64_t> out(256, 0);
    pool.parallelFor(out.size(), [&](std::size_t i) { out[i] = i * i; });
    // parallelFor is a full barrier: plain reads below are safe.
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(WorkerPool, BackToBackJobsDoNotInterfere)
{
    WorkerPool pool(8);
    std::vector<std::uint64_t> sums(64, 0);
    for (int round = 0; round < 200; ++round) {
        pool.parallelFor(sums.size(),
                         [&](std::size_t i) { sums[i] += i; });
    }
    for (std::size_t i = 0; i < sums.size(); ++i)
        EXPECT_EQ(sums[i], 200 * i);
}

TEST(WorkerPool, MoreWorkersThanWorkStillCompletes)
{
    WorkerPool pool(8);
    std::atomic<int> hits{0};
    pool.parallelFor(2, [&](std::size_t) {
        hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 2);
    pool.parallelFor(0, [&](std::size_t) { FAIL(); });
}

TEST(WorkerPool, ZeroMeansHardwareConcurrency)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.threads(), WorkerPool::hardwareConcurrency());
}
