#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/sharded_scheduler.hh"

using namespace pipellm;
using sim::ShardedScheduler;

namespace {

ShardedScheduler::Config
config(unsigned workers, Tick lookahead = 1)
{
    ShardedScheduler::Config cfg;
    cfg.workers = workers;
    cfg.lookahead = lookahead;
    return cfg;
}

} // namespace

TEST(ShardedScheduler, StartsIdle)
{
    ShardedScheduler sched(4, config(1));
    EXPECT_EQ(sched.numShards(), 4u);
    EXPECT_EQ(sched.hostShard(), 4u);
    EXPECT_TRUE(sched.idle());
    EXPECT_EQ(sched.nextEventTick(), maxTick);
}

TEST(ShardedScheduler, LocalChainsDrainInOneUnboundedWindow)
{
    // Shard-local work may schedule freely at or after its own clock;
    // an unbounded window drains everything without barriers.
    ShardedScheduler sched(4, config(2));
    std::vector<std::uint64_t> counts(4, 0);
    std::vector<std::function<void()>> chains(4);
    for (unsigned s = 0; s < 4; ++s) {
        chains[s] = [&chains, &counts, &sched, s] {
            if (++counts[s] < 1000)
                sched.shard(s).scheduleIn(3, chains[s]);
        };
        sched.shard(s).schedule(0, chains[s]);
    }
    sched.runWindow(maxTick);
    for (auto c : counts)
        EXPECT_EQ(c, 1000u);
    EXPECT_EQ(sched.dispatched(), 4000u);
    EXPECT_TRUE(sched.idle());
}

TEST(ShardedScheduler, WindowStopsStrictlyBeforeHorizon)
{
    ShardedScheduler sched(2, config(1));
    int fired = 0;
    sched.shard(0).schedule(10, [&] { ++fired; });
    sched.shard(0).schedule(20, [&] { ++fired; });
    sched.runWindow(20);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sched.shard(0).now(), 10u);
    sched.runWindow(21);
    EXPECT_EQ(fired, 2);
}

TEST(ShardedScheduler, HostMessagesDeliverAtTheBarrier)
{
    ShardedScheduler sched(2, config(2));
    Tick seen = 0;
    sched.post(sched.hostShard(), 1, 50, [&] { seen = 50; });
    EXPECT_FALSE(sched.idle());
    sched.run();
    EXPECT_EQ(seen, 50u);
    EXPECT_EQ(sched.messagesMerged(), 1u);
}

TEST(ShardedScheduler, CrossShardPingPongRespectsLookahead)
{
    // Two shards bounce a token through the message layer; each hop
    // adds the lookahead, and every hop lands after the poster's
    // window as the conservative protocol requires.
    constexpr Tick hop = 5;
    ShardedScheduler sched(2, config(2, hop));
    std::vector<std::pair<unsigned, Tick>> hops;
    std::function<void(unsigned)> bounce = [&](unsigned shard) {
        Tick now = sched.shard(shard).now();
        hops.emplace_back(shard, now);
        if (hops.size() >= 8)
            return;
        unsigned peer = 1 - shard;
        sched.post(shard, peer, now + hop,
                   [&bounce, peer] { bounce(peer); });
    };
    sched.post(sched.hostShard(), 0, hop, [&bounce] { bounce(0); });
    sched.run();
    ASSERT_EQ(hops.size(), 8u);
    for (std::size_t i = 0; i < hops.size(); ++i) {
        EXPECT_EQ(hops[i].first, i % 2);
        EXPECT_EQ(hops[i].second, Tick(hop * (i + 1)));
    }
}

TEST(ShardedScheduler, MergeOrderIsByTickShardSeqNotPostOrder)
{
    // Messages staged from different shards at the same barrier must
    // land in (tick, shard, seq) order regardless of staging order.
    ShardedScheduler sched(3, config(1));
    std::vector<int> order;
    // Post in deliberately scrambled shard order from the host slot;
    // the per-outbox seq preserves intra-source order, the sort keys
    // do the rest. All target shard 0 at the same tick: per-queue
    // insertion order then equals merge order.
    sched.post(sched.hostShard(), 0, 10, [&] { order.push_back(1); });
    sched.post(sched.hostShard(), 0, 10, [&] { order.push_back(2); });
    sched.post(sched.hostShard(), 0, 5, [&] { order.push_back(0); });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedScheduler, DeterministicAcrossWorkerCounts)
{
    // The same seeded workload must produce identical per-shard
    // dispatch traces for 1 worker and many workers.
    auto trace = [](unsigned workers) {
        ShardedScheduler sched(8, config(workers));
        std::vector<std::vector<Tick>> ticks(8);
        std::vector<std::function<void()>> chains(8);
        for (unsigned s = 0; s < 8; ++s) {
            chains[s] = [&chains, &ticks, &sched, s] {
                auto &queue = sched.shard(s);
                ticks[s].push_back(queue.now());
                if (ticks[s].size() < 500)
                    queue.scheduleIn(1 + (s + ticks[s].size()) % 7,
                                     chains[s]);
            };
            sched.shard(s).schedule(s, chains[s]);
        }
        sched.runWindow(maxTick);
        return ticks;
    };
    EXPECT_EQ(trace(1), trace(8));
}

TEST(ShardedSchedulerDeath, MessageInsideCompletedWindowPanics)
{
    ShardedScheduler sched(2, config(1));
    sched.shard(0).schedule(100, [] {});
    sched.runWindow(50);
    // Tick 40 is inside the already-completed window: the merge-time
    // horizon check must refuse it.
    EXPECT_DEATH(
        {
            sched.post(sched.hostShard(), 1, 40, [] {});
            sched.runWindow(60);
        },
        "violates the window horizon");
}
