#include <gtest/gtest.h>

#include "common/units.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

using namespace pipellm;
using sim::BandwidthResource;
using sim::EventQueue;
using sim::LaneGroup;

TEST(BandwidthResource, SingleRequestTiming)
{
    EventQueue eq;
    // 1 GB/s, 100 ns per-op latency.
    BandwidthResource link(eq, "link", 1e9, 100);
    Tick done = link.submit(1000); // 1000 bytes -> 1000 ns
    EXPECT_EQ(done, 1100u);
    EXPECT_EQ(link.bytesServed(), 1000u);
    EXPECT_EQ(link.requests(), 1u);
}

TEST(BandwidthResource, BackToBackRequestsSerialize)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    Tick a = link.submit(1000);
    Tick b = link.submit(1000);
    EXPECT_EQ(a, 1000u);
    EXPECT_EQ(b, 2000u);
    EXPECT_FALSE(link.idle());
}

TEST(BandwidthResource, IdleGapResetsStart)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    link.submit(1000); // busy until 1000
    eq.runUntil(5000);
    Tick done = link.submit(500);
    EXPECT_EQ(done, 5500u);
    EXPECT_TRUE(link.utilization() < 0.5);
}

TEST(BandwidthResource, SubmitNotBeforeHonorsFloor)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    Tick done = link.submitNotBefore(2000, 100);
    EXPECT_EQ(done, 2100u);
}

TEST(BandwidthResource, CallbackFiresAtCompletion)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    Tick seen = 0;
    link.submit(1234, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 1234u);
}

TEST(BandwidthResource, ZeroByteRequestCostsOnlyLatency)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 250);
    EXPECT_EQ(link.submit(0), 250u);
}

TEST(BandwidthResource, NoDownstreamByDefault)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    EXPECT_EQ(link.downstream(), nullptr);
}

TEST(BandwidthResource, ChainedDownstreamIsCutThrough)
{
    EventQueue eq;
    // A fast upstream draining into a slower shared stage: the
    // downstream starts when the upstream starts, so an uncontended
    // request finishes at whichever stage is slower.
    BandwidthResource bridge(eq, "bridge", 1e9, 0);
    BandwidthResource link(eq, "link", 2e9, 0);
    link.setDownstream(&bridge);
    EXPECT_EQ(link.submit(1000), 1000u); // bridge is the bottleneck
    EXPECT_EQ(bridge.bytesServed(), 1000u);
}

TEST(BandwidthResource, ChainedDownstreamFasterThanUpstream)
{
    EventQueue eq;
    // When the shared stage has headroom, the per-device link governs
    // and the chain costs nothing extra.
    BandwidthResource bridge(eq, "bridge", 4e9, 0);
    BandwidthResource link(eq, "link", 1e9, 0);
    link.setDownstream(&bridge);
    EXPECT_EQ(link.submit(1000), 1000u);
}

TEST(BandwidthResource, SharedDownstreamSerializesSiblings)
{
    EventQueue eq;
    // Two private links funnel through one bridge of the same rate:
    // each transfer alone takes 1000 ticks, but the aggregate is
    // bridge-bound, so the second finishes at 2000.
    BandwidthResource bridge(eq, "bridge", 1e9, 0);
    BandwidthResource a(eq, "a", 1e9, 0);
    BandwidthResource b(eq, "b", 1e9, 0);
    a.setDownstream(&bridge);
    b.setDownstream(&bridge);
    EXPECT_EQ(a.submit(1000), 1000u);
    EXPECT_EQ(b.submit(1000), 2000u);
    EXPECT_EQ(bridge.bytesServed(), 2000u);
    // Each private link only accounted its own bytes.
    EXPECT_EQ(a.bytesServed(), 1000u);
    EXPECT_EQ(b.bytesServed(), 1000u);
}

TEST(BandwidthResource, WideSharedDownstreamAddsNothing)
{
    EventQueue eq;
    // A bridge with 2x the aggregate rate never binds two links.
    BandwidthResource bridge(eq, "bridge", 2e9, 0);
    BandwidthResource a(eq, "a", 1e9, 0);
    BandwidthResource b(eq, "b", 1e9, 0);
    a.setDownstream(&bridge);
    b.setDownstream(&bridge);
    EXPECT_EQ(a.submit(1000), 1000u);
    EXPECT_EQ(b.submit(1000), 1000u);
}

TEST(LaneGroup, DistributesAcrossLanes)
{
    EventQueue eq;
    LaneGroup lanes(eq, "enc", 4, 1e9, 0);
    // Four equal jobs land on four lanes and finish simultaneously.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lanes.submit(1000), 1000u);
    // Fifth job queues behind the earliest lane.
    EXPECT_EQ(lanes.submit(1000), 2000u);
    EXPECT_EQ(lanes.bytesServed(), 5000u);
}

TEST(LaneGroup, AggregateThroughputScalesWithLanes)
{
    EventQueue eq;
    LaneGroup one(eq, "enc1", 1, 1e9, 0);
    LaneGroup four(eq, "enc4", 4, 1e9, 0);
    Tick t1 = 0, t4 = 0;
    for (int i = 0; i < 16; ++i) {
        t1 = one.submit(1000000);
        t4 = four.submit(1000000);
    }
    EXPECT_NEAR(double(t1) / double(t4), 4.0, 0.01);
}

TEST(LaneGroup, SaturationKeepsLanesBalanced)
{
    EventQueue eq;
    LaneGroup lanes(eq, "enc", 3, 1e9, 0);
    // Earliest-free dispatch under saturation must not starve any
    // lane: equal jobs spread evenly.
    for (int i = 0; i < 30; ++i)
        lanes.submit(1000);
    for (unsigned l = 0; l < lanes.lanes(); ++l)
        EXPECT_EQ(lanes.lane(l).bytesServed(), 10u * 1000u);
}

TEST(LaneGroup, SaturatedClientsInterleaveFairly)
{
    EventQueue eq;
    // Two clients hammering one saturated group alternate service:
    // neither can lock the pool, so their completion times stay within
    // one service quantum of each other.
    LaneGroup pool(eq, "pool", 1, 1e9, 0);
    Tick a = 0, b = 0;
    for (int i = 0; i < 8; ++i) {
        a = pool.submitNotBefore(0, 1000);
        b = pool.submitNotBefore(0, 1000);
    }
    EXPECT_EQ(b - a, 1000u);
    EXPECT_EQ(b, 16000u);
}

TEST(LaneGroup, BestFitKeepsSerialChainOnOneLane)
{
    EventQueue eq;
    LaneGroup pool(eq, "pool", 3, 1e9, 0);
    // A serial chain (each request floored at the previous one's
    // completion) must stay on a single lane under best-fit dispatch:
    // lanes never backfill, so letting the chain rotate would mark
    // every lane busy until the chain's tail.
    Tick tail = 0;
    for (int i = 0; i < 5; ++i)
        tail = pool.submitNotBeforeBestFit(tail, 1000);
    EXPECT_EQ(tail, 5000u);
    EXPECT_EQ(pool.lane(0).bytesServed(), 5000u);
    EXPECT_EQ(pool.lane(1).bytesServed(), 0u);
    EXPECT_EQ(pool.lane(2).bytesServed(), 0u);
    // The rest of the pool stays genuinely available.
    EXPECT_EQ(pool.earliestFree(), 0u);
    EXPECT_EQ(pool.submitNotBeforeBestFit(0, 1000), 1000u);
}

TEST(LaneGroup, BestFitQueuesOnEarliestWhenAllLanesBusy)
{
    EventQueue eq;
    LaneGroup pool(eq, "pool", 2, 1e9, 0);
    pool.submitNotBeforeBestFit(0, 1000); // lane busy until 1000
    pool.submitNotBeforeBestFit(0, 3000); // lane busy until 3000
    // No lane can start at t=0; the request queues on the lane that
    // frees first.
    EXPECT_EQ(pool.submitNotBeforeBestFit(0, 500), 1500u);
}

TEST(LaneGroup, BestFitPrefersTightestFit)
{
    EventQueue eq;
    LaneGroup pool(eq, "pool", 2, 1e9, 0);
    pool.submitNotBeforeBestFit(0, 1000); // lane 0 busy until 1000
    // Floor 2000: both lanes can start on time; the busier lane (free
    // at 1000) is the tighter fit, preserving lane 1's availability
    // from t=0.
    EXPECT_EQ(pool.submitNotBeforeBestFit(2000, 500), 2500u);
    EXPECT_EQ(pool.lane(1).bytesServed(), 0u);
}

TEST(LaneGroup, EarliestFreeTracksLanes)
{
    EventQueue eq;
    LaneGroup lanes(eq, "enc", 2, 1e9, 0);
    EXPECT_EQ(lanes.earliestFree(), 0u);
    lanes.submit(1000);
    EXPECT_EQ(lanes.earliestFree(), 0u); // second lane idle
    lanes.submit(2000);
    EXPECT_EQ(lanes.earliestFree(), 1000u);
}

TEST(SerialTimeline, SerializesDurations)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    EXPECT_EQ(t.submit(0, 1000), 1000u);
    EXPECT_EQ(t.submit(0, 500), 1500u);
    EXPECT_EQ(t.freeAt(), 1500u);
    EXPECT_EQ(t.requests(), 2u);
    EXPECT_EQ(t.busyTicks(), 1500u);
}

TEST(SerialTimeline, HonorsEarliestStart)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    EXPECT_EQ(t.submit(5000, 100), 5100u);
    // Back-filled request still queues behind the later one.
    EXPECT_EQ(t.submit(0, 100), 5200u);
}

TEST(SerialTimeline, UtilizationTracksGaps)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    t.submit(0, 1000);
    t.submit(3000, 1000); // idle gap [1000, 3000)
    EXPECT_DOUBLE_EQ(t.utilization(), 2000.0 / 4000.0);
}

TEST(SerialTimeline, SubmitNowUsesClock)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    eq.runUntil(750);
    EXPECT_EQ(t.submitNow(250), 1000u);
}
