#include <gtest/gtest.h>

#include "common/units.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

using namespace pipellm;
using sim::BandwidthResource;
using sim::EventQueue;
using sim::LaneGroup;

TEST(BandwidthResource, SingleRequestTiming)
{
    EventQueue eq;
    // 1 GB/s, 100 ns per-op latency.
    BandwidthResource link(eq, "link", 1e9, 100);
    Tick done = link.submit(1000); // 1000 bytes -> 1000 ns
    EXPECT_EQ(done, 1100u);
    EXPECT_EQ(link.bytesServed(), 1000u);
    EXPECT_EQ(link.requests(), 1u);
}

TEST(BandwidthResource, BackToBackRequestsSerialize)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    Tick a = link.submit(1000);
    Tick b = link.submit(1000);
    EXPECT_EQ(a, 1000u);
    EXPECT_EQ(b, 2000u);
    EXPECT_FALSE(link.idle());
}

TEST(BandwidthResource, IdleGapResetsStart)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    link.submit(1000); // busy until 1000
    eq.runUntil(5000);
    Tick done = link.submit(500);
    EXPECT_EQ(done, 5500u);
    EXPECT_TRUE(link.utilization() < 0.5);
}

TEST(BandwidthResource, SubmitNotBeforeHonorsFloor)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    Tick done = link.submitNotBefore(2000, 100);
    EXPECT_EQ(done, 2100u);
}

TEST(BandwidthResource, CallbackFiresAtCompletion)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 0);
    Tick seen = 0;
    link.submit(1234, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 1234u);
}

TEST(BandwidthResource, ZeroByteRequestCostsOnlyLatency)
{
    EventQueue eq;
    BandwidthResource link(eq, "link", 1e9, 250);
    EXPECT_EQ(link.submit(0), 250u);
}

TEST(LaneGroup, DistributesAcrossLanes)
{
    EventQueue eq;
    LaneGroup lanes(eq, "enc", 4, 1e9, 0);
    // Four equal jobs land on four lanes and finish simultaneously.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lanes.submit(1000), 1000u);
    // Fifth job queues behind the earliest lane.
    EXPECT_EQ(lanes.submit(1000), 2000u);
    EXPECT_EQ(lanes.bytesServed(), 5000u);
}

TEST(LaneGroup, AggregateThroughputScalesWithLanes)
{
    EventQueue eq;
    LaneGroup one(eq, "enc1", 1, 1e9, 0);
    LaneGroup four(eq, "enc4", 4, 1e9, 0);
    Tick t1 = 0, t4 = 0;
    for (int i = 0; i < 16; ++i) {
        t1 = one.submit(1000000);
        t4 = four.submit(1000000);
    }
    EXPECT_NEAR(double(t1) / double(t4), 4.0, 0.01);
}

TEST(LaneGroup, EarliestFreeTracksLanes)
{
    EventQueue eq;
    LaneGroup lanes(eq, "enc", 2, 1e9, 0);
    EXPECT_EQ(lanes.earliestFree(), 0u);
    lanes.submit(1000);
    EXPECT_EQ(lanes.earliestFree(), 0u); // second lane idle
    lanes.submit(2000);
    EXPECT_EQ(lanes.earliestFree(), 1000u);
}

TEST(SerialTimeline, SerializesDurations)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    EXPECT_EQ(t.submit(0, 1000), 1000u);
    EXPECT_EQ(t.submit(0, 500), 1500u);
    EXPECT_EQ(t.freeAt(), 1500u);
    EXPECT_EQ(t.requests(), 2u);
    EXPECT_EQ(t.busyTicks(), 1500u);
}

TEST(SerialTimeline, HonorsEarliestStart)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    EXPECT_EQ(t.submit(5000, 100), 5100u);
    // Back-filled request still queues behind the later one.
    EXPECT_EQ(t.submit(0, 100), 5200u);
}

TEST(SerialTimeline, UtilizationTracksGaps)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    t.submit(0, 1000);
    t.submit(3000, 1000); // idle gap [1000, 3000)
    EXPECT_DOUBLE_EQ(t.utilization(), 2000.0 / 4000.0);
}

TEST(SerialTimeline, SubmitNowUsesClock)
{
    EventQueue eq;
    sim::SerialTimeline t(eq, "compute");
    eq.runUntil(750);
    EXPECT_EQ(t.submitNow(250), 1000u);
}
