#include <gtest/gtest.h>

#include "sim/stats.hh"

using pipellm::sim::Accumulator;
using pipellm::sim::Histogram;
using pipellm::sim::SampleSet;

TEST(Accumulator, TracksMoments)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.add(1.0);
    acc.add(2.0);
    acc.add(6.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.sum(), 9.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
}

TEST(SampleSet, PercentilesInterpolate)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(double(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.p99(), 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, SingleSample)
{
    SampleSet s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.median(), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(SampleSet, EmptyReturnsZero)
{
    SampleSet s;
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSet, AddAfterQueryResorts)
{
    SampleSet s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(0.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(30.0);
    s.add(40.0);
    EXPECT_DOUBLE_EQ(s.median(), 20.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(double(i) + 0.5);
    h.add(-1.0);
    h.add(11.0);
    EXPECT_EQ(h.total(), 12u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    for (unsigned i = 0; i < 10; ++i) {
        EXPECT_EQ(h.bucketCount(i), 1u);
        EXPECT_DOUBLE_EQ(h.bucketLo(i), double(i));
    }
}

TEST(Histogram, UpperEdgeGoesToOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(10.0);
    EXPECT_EQ(h.overflow(), 1u);
}
