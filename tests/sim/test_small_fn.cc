#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/small_fn.hh"

using namespace pipellm;
using sim::InlineFn;

TEST(InlineFn, DefaultConstructedIsEmpty)
{
    InlineFn fn;
    EXPECT_FALSE(bool(fn));
    EXPECT_FALSE(fn.inlineStored());
}

TEST(InlineFn, SmallCaptureStaysInline)
{
    int hits = 0;
    InlineFn fn([&hits] { ++hits; });
    EXPECT_TRUE(bool(fn));
    EXPECT_TRUE(fn.inlineStored());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFn, CaptureExactlyAtInlineBudgetStaysInline)
{
    // One pointer plus padding bytes so the closure is exactly
    // inlineBytes wide — the boundary itself must still fit.
    int hits = 0;
    std::array<char, InlineFn::inlineBytes - sizeof(int *)> pad{};
    InlineFn fn([&hits, pad] {
        ++hits;
        (void)pad;
    });
    EXPECT_TRUE(fn.inlineStored());
    fn();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFn, CaptureOnePastInlineBudgetFallsBackToHeap)
{
    int hits = 0;
    std::array<char, InlineFn::inlineBytes - sizeof(int *) + 1> pad{};
    InlineFn fn([&hits, pad] {
        ++hits;
        (void)pad;
    });
    EXPECT_FALSE(fn.inlineStored());
    fn();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFn, OversizedCaptureRunsCorrectlyFromTheHeap)
{
    std::array<std::uint64_t, 32> data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = i + 1;
    std::uint64_t sum = 0;
    InlineFn fn([data, &sum] {
        for (auto v : data)
            sum += v;
    });
    EXPECT_FALSE(fn.inlineStored());
    fn();
    EXPECT_EQ(sum, 32u * 33u / 2u);
}

TEST(InlineFn, MoveTransfersOwnershipAndEmptiesSource)
{
    int hits = 0;
    InlineFn a([&hits] { ++hits; });
    InlineFn b(std::move(a));
    EXPECT_FALSE(bool(a)); // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(bool(b));
    b();
    EXPECT_EQ(hits, 1);

    InlineFn c;
    c = std::move(b);
    EXPECT_FALSE(bool(b)); // NOLINT(bugprone-use-after-move)
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MoveAssignmentDestroysPreviousTarget)
{
    auto counter = std::make_shared<int>(0);
    EXPECT_EQ(counter.use_count(), 1);
    InlineFn a([counter] {});
    EXPECT_EQ(counter.use_count(), 2);
    a = InlineFn([] {});
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFn, MoveOnlyCapturesAreSupported)
{
    // std::function would reject this callable outright.
    auto owned = std::make_unique<int>(41);
    int seen = 0;
    InlineFn fn([owned = std::move(owned), &seen] { seen = *owned + 1; });
    InlineFn moved(std::move(fn));
    moved();
    EXPECT_EQ(seen, 42);
}

TEST(InlineFn, CopyableLvalueCallablesAreCopiedIn)
{
    int hits = 0;
    std::function<void()> counter = [&hits] { ++hits; };
    InlineFn a(counter);
    InlineFn b(counter);
    a();
    b();
    counter();
    EXPECT_EQ(hits, 3);
}

TEST(InlineFn, DestructorReleasesCapturedState)
{
    auto counter = std::make_shared<int>(0);
    {
        InlineFn inline_fn([counter] {});
        std::array<char, InlineFn::inlineBytes> pad{};
        InlineFn heap_fn([counter, pad] { (void)pad; });
        EXPECT_FALSE(heap_fn.inlineStored());
        EXPECT_EQ(counter.use_count(), 3);
    }
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFn, HeapTargetMoveIsPointerSteal)
{
    auto counter = std::make_shared<int>(0);
    std::array<char, InlineFn::inlineBytes> pad{};
    InlineFn a([counter, pad] { (void)pad; });
    EXPECT_EQ(counter.use_count(), 2);
    InlineFn b(std::move(a));
    // Moving a heap-stored callable must not copy the capture.
    EXPECT_EQ(counter.use_count(), 2);
}

TEST(InlineFnDeath, InvokingEmptyFnPanics)
{
    InlineFn fn;
    EXPECT_DEATH(fn(), "empty InlineFn");
}
