/**
 * @file
 * Chaos-harness unit tests: goodput bucketing, dip measurement edge
 * cases, and a smoke soak whose accounting must close exactly.
 */

#include <gtest/gtest.h>

#include "audit/audit.hh"
#include "chaos/chaos.hh"

using namespace pipellm;
using namespace pipellm::chaos;

namespace {

struct ChaosRig : ::testing::Test
{
    void
    SetUp() override
    {
#if PIPELLM_AUDIT_ENABLED
        audit::Auditor::instance().reset();
        audit::Auditor::instance().setTrapOnViolation(false);
#endif
    }

    void
    TearDown() override
    {
#if PIPELLM_AUDIT_ENABLED
        EXPECT_TRUE(audit::Auditor::instance().violations().empty())
            << audit::Auditor::instance().report();
        audit::Auditor::instance().reset();
#endif
    }
};

serving::CompletionEvent
ev(Tick at, std::uint64_t tokens)
{
    return serving::CompletionEvent{at, tokens};
}

/** A flat timeline at @p tps except the given dip windows. */
std::vector<GoodputWindow>
flatTimeline(std::size_t n, double tps, Tick window)
{
    std::vector<GoodputWindow> t;
    for (std::size_t i = 0; i < n; ++i) {
        GoodputWindow w;
        w.start = Tick(i) * window;
        w.end = Tick(i + 1) * window;
        w.tokens_per_sec = tps;
        t.push_back(w);
    }
    return t;
}

} // namespace

TEST(GoodputTimeline, BucketsTokensIntoFixedWindows)
{
    std::vector<serving::CompletionEvent> comps = {
        ev(milliseconds(100), 10), ev(milliseconds(900), 20),
        ev(seconds(1), 30),        ev(seconds(2) + 1, 40),
    };
    auto t = goodputTimeline(comps, seconds(1));
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].start, 0u);
    EXPECT_EQ(t[0].end, seconds(1));
    // [0, 1s): the two sub-second completions.
    EXPECT_DOUBLE_EQ(t[0].tokens_per_sec, 30.0);
    // [1s, 2s): the completion exactly at the boundary.
    EXPECT_DOUBLE_EQ(t[1].tokens_per_sec, 30.0);
    EXPECT_DOUBLE_EQ(t[2].tokens_per_sec, 40.0);

    // Every token lands in exactly one window.
    double total = 0;
    for (const auto &w : t)
        total += w.tokens_per_sec * toSeconds(seconds(1));
    EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(GoodputTimeline, EmptyCompletionsYieldEmptyTimeline)
{
    EXPECT_TRUE(goodputTimeline({}, seconds(1)).empty());
}

TEST(DipAfter, NoBaselineMeansNothingToFallFrom)
{
    auto t = flatTimeline(5, 100.0, seconds(1));
    // Disturbance before the first full window closes.
    auto m = dipAfter(t, milliseconds(100), 0.5);
    EXPECT_TRUE(m.recovered);
    EXPECT_DOUBLE_EQ(m.dip_depth, 0.0);
    EXPECT_EQ(m.dip_duration, 0u);
}

TEST(DipAfter, FlatTimelineHasNoDip)
{
    auto t = flatTimeline(6, 100.0, seconds(1));
    auto m = dipAfter(t, seconds(3), 0.5);
    EXPECT_DOUBLE_EQ(m.baseline_tps, 100.0);
    EXPECT_DOUBLE_EQ(m.min_tps, 100.0);
    EXPECT_DOUBLE_EQ(m.dip_depth, 0.0);
    EXPECT_EQ(m.dip_duration, 0u);
    EXPECT_TRUE(m.recovered);
}

TEST(DipAfter, MeasuresDepthDurationAndRecoveryPoint)
{
    auto t = flatTimeline(8, 100.0, seconds(1));
    // Two windows dip to 10 tok/s after the disturbance at 3 s.
    t[4].tokens_per_sec = 10.0;
    t[5].tokens_per_sec = 10.0;
    auto m = dipAfter(t, seconds(3), 0.5);
    EXPECT_DOUBLE_EQ(m.baseline_tps, 100.0);
    EXPECT_DOUBLE_EQ(m.min_tps, 10.0);
    EXPECT_DOUBLE_EQ(m.dip_depth, 0.9);
    EXPECT_EQ(m.dip_duration, seconds(2));
    EXPECT_TRUE(m.recovered);
    EXPECT_EQ(m.recovery_at, seconds(6));
}

TEST(DipAfter, UnrecoveredWhenTheRunEndsBelowTheBar)
{
    auto t = flatTimeline(6, 100.0, seconds(1));
    t[4].tokens_per_sec = 5.0;
    t[5].tokens_per_sec = 5.0; // still down when the run ends
    auto m = dipAfter(t, seconds(3), 0.5);
    EXPECT_FALSE(m.recovered);
    EXPECT_EQ(m.dip_duration, seconds(2));
    EXPECT_DOUBLE_EQ(m.dip_depth, 0.95);
}

TEST_F(ChaosRig, SmokeSoakAccountingCloses)
{
    // A shrunken default plan: same machinery (phased arrivals,
    // deadlines, shedding, crashes + restarts, storm) on a trace small
    // enough for a unit test.
    auto plan = defaultSoakPlan(true);
    plan.phases = {SoakPhase{6, 1.6}, SoakPhase{6, 6.4},
                   SoakPhase{6, 1.6}};
    auto r = runSoak(plan);

    std::size_t offered = 18;
    // With restarts armed nothing is ever dropped: every request was
    // served or honestly reported shed.
    EXPECT_EQ(r.cluster.dropped, 0u);
    EXPECT_EQ(r.cluster.completed + r.cluster.shed_requests, offered);
    EXPECT_FALSE(r.timeline.empty());
    EXPECT_EQ(r.audit_violations, 0u);

    // The timeline re-buckets exactly the cluster's completed tokens.
    double timeline_tokens = 0;
    for (const auto &w : r.timeline)
        timeline_tokens +=
            w.tokens_per_sec * toSeconds(plan.goodput_window);
    double completed_tokens = 0;
    for (const auto &c : r.cluster.completions)
        completed_tokens += double(c.tokens);
    EXPECT_NEAR(timeline_tokens, completed_tokens, 1e-6);

    // Replays bit-identically: the whole soak is seeded.
    auto again = runSoak(plan);
    EXPECT_EQ(again.cluster.completed, r.cluster.completed);
    EXPECT_EQ(again.cluster.shed_requests, r.cluster.shed_requests);
    EXPECT_EQ(again.cluster.makespan, r.cluster.makespan);
    ASSERT_EQ(again.disturbances.size(), r.disturbances.size());
    for (std::size_t i = 0; i < r.disturbances.size(); ++i) {
        EXPECT_EQ(again.disturbances[i].what, r.disturbances[i].what);
        EXPECT_EQ(again.disturbances[i].at, r.disturbances[i].at);
    }
}

TEST_F(ChaosRig, CrashDuringMigrationStormRecovers)
{
    // Disaggregated soak under a crash-during-migration storm: the
    // storm window multiplies per-chunk migration faults (tag
    // corruption, stalls, destination crashes mid-stream) on top of
    // the default crash/restart mix. The fixture's auditor teardown
    // is the confidentiality half of the assertion: no IV reuse and
    // no ciphertext-disposal leak across every abort and re-route.
    auto plan = defaultSoakPlan(true);
    plan.n_devices = 4;
    plan.disagg.enabled = true;
    double calm = 0.8 * plan.n_devices;
    plan.phases = {SoakPhase{16, calm}, SoakPhase{16, 4 * calm},
                   SoakPhase{16, calm}};
    // Per-chunk rates: a ~1024-token opt13b request migrates hundreds
    // of 256 KiB chunks, and the x8 storm sits on top.
    plan.faults.migration_tag_rate = 2e-4;
    plan.faults.migration_stall_rate = 2e-4;
    plan.faults.dest_crash_rate = 2e-6;
    auto r = runSoak(plan);

    const auto &f = r.cluster.faults;
    // The storm actually bit: migrations ran and recovery paths fired.
    EXPECT_GT(f.migrations, 0u);
    EXPECT_GT(f.migrated_chunks, 0u);
    EXPECT_GT(f.migration_tag_faults, 0u);
    EXPECT_EQ(f.migration_retries, f.migration_tag_faults);
    // Every abandoned chunk was discarded in the ledger, never
    // verified: each tag retry discards at least the failed chunk,
    // and each abort discards its whole speculative window.
    EXPECT_GE(f.discarded_chunks,
              f.migration_tag_faults + f.dest_mid_migration_crashes);

    // Accounting still closes under the storm: every request was
    // served or honestly reported shed, none dropped, and goodput
    // climbed back above the bar after every disturbance.
    EXPECT_EQ(r.cluster.dropped, 0u);
    EXPECT_EQ(r.cluster.completed + r.cluster.shed_requests, 48u);
    EXPECT_EQ(r.audit_violations, 0u);

    // Goodput recovery, judged over complete windows only: the run
    // ends mid-window, and a truncated final bucket divides its few
    // tokens by the full window length, reading artificially low.
    auto complete = r.timeline;
    while (!complete.empty() &&
           complete.back().end > r.cluster.makespan)
        complete.pop_back();
    for (const auto &d : r.disturbances) {
        EXPECT_TRUE(dipAfter(complete, d.at, plan.recover_frac)
                        .recovered)
            << d.what << " at " << toSeconds(d.at) << "s";
    }

    // The storm replays bit-identically, re-routes and all.
    auto again = runSoak(plan);
    EXPECT_EQ(again.cluster.completed, r.cluster.completed);
    EXPECT_EQ(again.cluster.makespan, r.cluster.makespan);
    EXPECT_EQ(again.cluster.faults.discarded_chunks,
              f.discarded_chunks);
    EXPECT_EQ(again.cluster.faults.migrations_rerouted,
              f.migrations_rerouted);
}
