/**
 * @file
 * Randomized-workload invariant fuzz.
 *
 * A deterministic random driver throws arbitrary interleavings of
 * swap-ins, swap-outs, small transfers, plaintext writes, region
 * churn, kernels, and syncs at the PipeLLM runtime. Whatever the
 * predictor does with that chaos, the hard invariants must hold:
 *
 *  I1  zero GPU integrity failures (every delivered blob verified
 *      under the device's lockstep IV);
 *  I2  CPU and GPU IV counters stay in lockstep in both directions;
 *  I3  after every synchronize, no deferred sends remain;
 *  I4  delivered H2D content equals the host plaintext at request
 *      time (checked on a sampled subset);
 *  I5  time never runs backwards and every API returns >= its call
 *      tick.
 *
 * A failure of PipeLLM's planning logic manifests as a loud AES-GCM
 * tag panic (I1), so simply *surviving* the run is most of the test.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "pipellm/pipellm_runtime.hh"

using namespace pipellm;
using namespace pipellm::core;
using runtime::CopyKind;
using runtime::Platform;
using runtime::Stream;

namespace {

class RandomWorkload : public ::testing::TestWithParam<std::uint64_t>
{
};

struct HostChunk
{
    mem::Region region;
    Addr dev_slot = 0; ///< this chunk's own device destination
    bool swapped_out = false; // host copy currently the only one
};

} // namespace

TEST_P(RandomWorkload, InvariantsHoldUnderChaos)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    Platform platform;
    PipeLlmConfig cfg;
    cfg.classifier.layer_param_bytes = 0; // sizes vary: OtherSwap
    cfg.pipeline_depth = 4 + unsigned(rng.uniformInt(0, 12));
    cfg.enc_lanes = 1 + unsigned(rng.uniformInt(0, 3));
    cfg.iv_leeway = rng.uniformInt(0, 4);
    PipeLlmRuntime rt(platform, cfg);

    // A pool of host chunks of assorted swap-class sizes.
    std::vector<HostChunk> chunks;
    for (int i = 0; i < 10; ++i) {
        std::uint64_t len = 128 * KiB << rng.uniformInt(0, 4);
        HostChunk c;
        c.region = platform.allocHost(len, "chunk" + std::to_string(i));
        c.dev_slot =
            platform.gpu(0).alloc(len, "dev" + std::to_string(i)).base;
        chunks.push_back(c);
    }
    auto token_buf = platform.allocHost(8 * KiB, "tokens");
    auto dev = platform.gpu(0).alloc(64 * MiB, "dev");
    Stream &s = rt.createStream("s");

    Tick now = 0;
    int content_checks = 0;
    for (int step = 0; step < 400; ++step) {
        Tick before = now;
        switch (rng.uniformInt(0, 9)) {
          case 0:
          case 1:
          case 2:
          case 3: { // swap-in of a random chunk
            auto &c = chunks[rng.uniformInt(0, chunks.size() - 1)];
            bool check = rng.bernoulli(0.1);
            std::vector<std::uint8_t> expect;
            if (check) {
                expect = platform.hostMem().readSample(
                    c.region.base,
                    platform.device(0).channel().sampledLen(c.region.len));
            }
            auto r = rt.memcpyAsync(CopyKind::HostToDevice,
                                    c.dev_slot, c.region.base,
                                    c.region.len, s, now);
            now = std::max(now, r.api_return);
            c.swapped_out = false;
            if (check) {
                now = rt.synchronize(now);
                EXPECT_EQ(platform.gpu(0).memory().readSample(
                              c.dev_slot, expect.size()),
                          expect); // I4
                ++content_checks;
            }
            break;
          }
          case 4:
          case 5: { // swap-out to a random chunk
            auto &c = chunks[rng.uniformInt(0, chunks.size() - 1)];
            auto r = rt.memcpyAsync(CopyKind::DeviceToHost,
                                    c.region.base, c.dev_slot,
                                    c.region.len, s, now);
            now = std::max(now, r.api_return);
            c.swapped_out = true;
            break;
          }
          case 6: { // small transfer
            auto r = rt.memcpyAsync(
                CopyKind::HostToDevice, dev.base, token_buf.base,
                1 + rng.uniformInt(0, 4095), s, now);
            now = std::max(now, r.api_return);
            break;
          }
          case 7: { // plaintext write (possibly under speculation)
            auto &c = chunks[rng.uniformInt(0, chunks.size() - 1)];
            std::uint8_t v = std::uint8_t(rng.next());
            Tick ready = platform.hostMem().write(
                c.region.base + rng.uniformInt(0, c.region.len - 1),
                &v, 1);
            now = std::max(now, ready);
            break;
          }
          case 8: { // kernel
            gpu::KernelDesc k{"k", 1e9 * double(rng.uniformInt(1, 40)),
                              1e6};
            now = std::max(now, rt.launchKernel(k, s, now).api_return);
            break;
          }
          default: // synchronize
            now = rt.synchronize(now);
            EXPECT_EQ(rt.pendingSends(), 0u); // I3
        }
        EXPECT_GE(now, before); // I5
    }
    now = rt.synchronize(now);

    // I1/I2: the session survived with counters in lockstep.
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(rt.h2dCounter(), platform.gpu(0).rxCounter());
    EXPECT_EQ(rt.d2hCounter(), platform.gpu(0).txCounter());
    EXPECT_EQ(rt.pendingSends(), 0u);
    EXPECT_GT(content_checks, 0);

    // The accounting adds up: every swap request either hit or missed.
    const auto &ps = rt.pipeStats();
    EXPECT_EQ(ps.hits + ps.misses, ps.swap_requests);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Range<std::uint64_t>(1, 25));
