/**
 * @file
 * Cross-runtime equivalence: the same workload must produce the same
 * *functional* outcome (GPU memory contents, IV lockstep) under every
 * security mode, while the *timing* ordering reflects each design:
 * w/o CC fastest, stock CC slowest, PipeLLM/TEE-I/O/CT-Reuse between.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "runtime/reuse_runtime.hh"
#include "runtime/teeio_runtime.hh"
#include "serving/flexgen.hh"
#include "serving/peft.hh"
#include "serving/vllm.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace serving_test;
using runtime::CopyKind;
using runtime::Platform;
using runtime::Stream;

namespace {

enum class Sys
{
    Plain,
    Cc,
    Pipe,
    TeeIo,
    Reuse,
};

std::unique_ptr<runtime::RuntimeApi>
make(Sys s, Platform &p)
{
    switch (s) {
      case Sys::Plain:
        return std::make_unique<runtime::PlainRuntime>(p);
      case Sys::Cc:
        return std::make_unique<runtime::CcRuntime>(p);
      case Sys::Pipe: {
        core::PipeLlmConfig cfg;
        cfg.classifier.layer_param_bytes = 2 * MiB;
        return std::make_unique<core::PipeLlmRuntime>(p, cfg);
      }
      case Sys::TeeIo:
        return std::make_unique<runtime::TeeIoRuntime>(p);
      case Sys::Reuse:
        return std::make_unique<runtime::CiphertextReuseRuntime>(p);
    }
    return nullptr;
}

constexpr Sys kAll[] = {Sys::Plain, Sys::Cc, Sys::Pipe, Sys::TeeIo,
                        Sys::Reuse};

} // namespace

TEST(CrossRuntime, IdenticalFunctionalOutcome)
{
    // Cyclic swaps of two chunks with distinctive content; afterwards
    // the device must hold chunk 1's bytes under every runtime.
    std::vector<std::uint8_t> final_content;
    for (Sys s : kAll) {
        Platform p;
        auto rt = make(s, p);
        auto a = p.allocHost(2 * MiB, "a");
        auto b = p.allocHost(2 * MiB, "b");
        auto d = p.gpu(0).alloc(2 * MiB, "d");
        std::vector<std::uint8_t> wa(64, 0xaa), wb(64, 0xbb);
        p.hostMem().write(a.base, wa.data(), wa.size());
        p.hostMem().write(b.base, wb.data(), wb.size());

        Stream &st = rt->createStream("s");
        Tick now = 0;
        for (int i = 0; i < 6; ++i) {
            Addr src = (i % 2 == 0) ? a.base : b.base;
            now = rt->memcpyAsync(CopyKind::HostToDevice, d.base, src,
                                  2 * MiB, st, now)
                      .api_return;
            now = rt->synchronize(now);
        }
        auto content = p.gpu(0).memory().readSample(d.base, 64);
        EXPECT_EQ(content, wb) << "runtime " << rt->name();
        if (final_content.empty())
            final_content = content;
        EXPECT_EQ(content, final_content) << rt->name();
        EXPECT_EQ(p.gpu(0).integrityFailures(), 0u) << rt->name();
    }
}

TEST(CrossRuntime, FlexGenTimingOrdering)
{
    auto model = tinyModel();
    serving::FlexGenConfig cfg;
    cfg.model = model;
    cfg.batch = 8;
    cfg.input_len = 16;
    cfg.output_len = 8;
    cfg.num_requests = 24;
    cfg.gpu_reserved_bytes = 96 * MiB;

    double tput[5];
    int i = 0;
    for (Sys s : kAll) {
        Platform p(tinyGpu(256 * MiB));
        std::unique_ptr<runtime::RuntimeApi> rt;
        if (s == Sys::Pipe) {
            auto pcfg = tinyPipeConfig(model);
            pcfg.enc_lanes = 8;
            rt = std::make_unique<core::PipeLlmRuntime>(p, pcfg);
        } else {
            rt = make(s, p);
        }
        tput[i++] = serving::FlexGenEngine(*rt, cfg).run()
                        .tokens_per_sec;
    }
    double plain = tput[0], cc = tput[1], pipe = tput[2],
           teeio = tput[3], reuse = tput[4];
    EXPECT_GT(plain, teeio);
    EXPECT_GT(teeio, cc);
    EXPECT_GT(pipe, cc * 2);
    EXPECT_GT(reuse, cc * 2);
    // The two hypothetical designs bound PipeLLM loosely from above.
    EXPECT_GT(teeio, pipe * 0.9);
}

TEST(CrossRuntime, VllmAllModesServeEveryRequest)
{
    auto model = tinyModel();
    serving::VllmConfig cfg;
    cfg.model = model;
    cfg.parallel_sampling = 2;
    cfg.gpu_reserved_bytes = 160 * MiB;

    trace::DatasetProfile profile{"x", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;

    for (Sys s : kAll) {
        Platform p(tinyGpu(448 * MiB));
        std::unique_ptr<runtime::RuntimeApi> rt;
        if (s == Sys::Pipe) {
            auto pcfg = tinyPipeConfig(model);
            pcfg.classifier.kv_unit_bytes =
                16 * model.kvBytesPerToken();
            rt = std::make_unique<core::PipeLlmRuntime>(p, pcfg);
        } else {
            rt = make(s, p);
        }
        serving::VllmEngine engine(*rt, cfg);
        trace::TraceGenerator gen(profile, 5);
        auto r = engine.run(gen.poisson(80, 3000.0));
        EXPECT_EQ(r.completed, 80u) << rt->name();
        EXPECT_GT(r.preemptions, 0u) << rt->name();
        EXPECT_EQ(p.gpu(0).integrityFailures(), 0u) << rt->name();
    }
}

TEST(CrossRuntime, PeftAllModesTrainDeterministically)
{
    auto model = tinyModel();
    serving::PeftConfig cfg;
    cfg.model = model;
    cfg.batch = 4;
    cfg.gpu_reserved_bytes = 16 * MiB;
    cfg.num_sequences = 12;

    trace::DatasetProfile profile{"ft", 256.0, 0.3, 0.0, 0.0};
    profile.min_len = 64;
    profile.max_len = 512;

    for (Sys s : kAll) {
        double first = 0;
        for (int rep = 0; rep < 2; ++rep) {
            Platform p(tinyGpu(384 * MiB));
            std::unique_ptr<runtime::RuntimeApi> rt;
            if (s == Sys::Pipe) {
                auto pcfg = tinyPipeConfig(model);
                rt = std::make_unique<core::PipeLlmRuntime>(p, pcfg);
            } else {
                rt = make(s, p);
            }
            trace::TraceGenerator gen(profile, 9);
            auto r = serving::PeftEngine(*rt, cfg)
                         .run(gen.closedLoop(12));
            EXPECT_GT(r.tokens_per_sec, 0.0);
            if (rep == 0)
                first = r.tokens_per_sec;
            else
                EXPECT_DOUBLE_EQ(r.tokens_per_sec, first)
                    << rt->name() << " not deterministic";
        }
    }
}

TEST(CrossRuntime, LayerWiseFifoKvSwapping)
{
    // The paper's *other* KV policy (§5.1, Fig. 5b): layer-wise
    // swapping writes KV out layer by layer and reads it back in the
    // same order — FIFO. Drive that shape directly and check the
    // predictor locks onto it with high hit rates.
    Platform p;
    core::PipeLlmConfig cfg;
    cfg.classifier.kv_unit_bytes = 1 * MiB;
    cfg.enc_lanes = 1;
    core::PipeLlmRuntime rt(p, cfg);

    const int layers = 6;
    std::vector<mem::Region> host_kv;
    std::vector<mem::Region> dev_kv;
    for (int l = 0; l < layers; ++l) {
        host_kv.push_back(p.allocHost(1 * MiB, "kv-host"));
        dev_kv.push_back(p.gpu(0).alloc(1 * MiB, "kv-dev"));
    }
    Stream &s = rt.createStream("s");
    gpu::KernelDesc k{"layer", 2e10, 1e8};

    Tick now = 0;
    for (int round = 0; round < 8; ++round) {
        // Swap out layer by layer (forward order)...
        for (int l = 0; l < layers; ++l)
            now = rt.memcpyAsync(CopyKind::DeviceToHost,
                                 host_kv[l].base, dev_kv[l].base,
                                 1 * MiB, s, now)
                      .api_return;
        now = rt.synchronize(now);
        now = rt.launchKernel(k, s, now).api_return;
        now = rt.synchronize(now);
        // ...and back in the same (FIFO) order.
        for (int l = 0; l < layers; ++l)
            now = rt.memcpyAsync(CopyKind::HostToDevice,
                                 dev_kv[l].base, host_kv[l].base,
                                 1 * MiB, s, now)
                      .api_return;
        now = rt.synchronize(now);
    }

    const auto &ps = rt.pipeStats();
    EXPECT_EQ(ps.swap_requests, 8u * layers);
    EXPECT_GT(ps.hits, 5u * layers);
    EXPECT_EQ(p.gpu(0).integrityFailures(), 0u);
    // Either the FIFO or the group recognizer may win; both predict
    // this stream correctly.
    std::string pattern = rt.predictor().activePattern();
    EXPECT_TRUE(pattern == "fifo" || pattern == "lifo-group" ||
                pattern == "markov")
        << pattern;
}
