#include <gtest/gtest.h>

#include "common/units.hh"
#include "llm/model.hh"

using namespace pipellm;
using namespace pipellm::llm;

namespace {

struct SizeCase
{
    const char *name;
    ModelConfig (*make)();
    double params_b;  // expected parameter count, billions
    double bytes_gb;  // expected total weight bytes, decimal GB
};

const SizeCase kSizes[] = {
    // The paper quotes 26 GB for OPT-13B, ~60 GB for OPT-30B and
    // 132 GB for OPT-66B (§3, §7.2).
    {"opt13b", ModelConfig::opt13b, 13.0, 26.0},
    {"opt30b", ModelConfig::opt30b, 30.0, 60.0},
    {"opt66b", ModelConfig::opt66b, 66.0, 132.0},
    {"opt175b", ModelConfig::opt175b, 175.0, 350.0},
    {"opt175b_int4", ModelConfig::opt175bInt4, 175.0, 87.5},
};

class ModelSizes : public ::testing::TestWithParam<SizeCase>
{
};

} // namespace

TEST_P(ModelSizes, ParameterCountMatchesBillingName)
{
    const auto &c = GetParam();
    auto m = c.make();
    m.validate();
    EXPECT_NEAR(double(m.totalParams()) / 1e9, c.params_b,
                c.params_b * 0.05);
}

TEST_P(ModelSizes, WeightBytesMatchPaperFigures)
{
    const auto &c = GetParam();
    auto m = c.make();
    EXPECT_NEAR(double(m.totalParamBytes()) / 1e9, c.bytes_gb,
                c.bytes_gb * 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    OptZoo, ModelSizes, ::testing::ValuesIn(kSizes),
    [](const ::testing::TestParamInfo<SizeCase> &info) {
        return info.param.name;
    });

TEST(ModelConfig, Opt66bDoesNotFitH100)
{
    // The reason FlexGen must offload (paper §3, case study 1).
    auto m = ModelConfig::opt66b();
    EXPECT_GT(m.totalParamBytes(), 80 * GiB);
}

TEST(ModelConfig, Opt30bFitsButDominatesH100)
{
    // 75% of GPU memory (paper §7.2).
    auto m = ModelConfig::opt30b();
    double frac = double(m.totalParamBytes()) / double(80 * GiB);
    EXPECT_GT(frac, 0.65);
    EXPECT_LT(frac, 0.80);
}

TEST(ModelConfig, Opt13bUsesAThirdOfH100)
{
    // ~32.5% of GPU memory (paper §7.2).
    auto m = ModelConfig::opt13b();
    double frac = double(m.totalParamBytes()) / double(80 * GiB);
    EXPECT_GT(frac, 0.28);
    EXPECT_LT(frac, 0.37);
}

TEST(ModelConfig, KvBytesPerToken)
{
    auto m = ModelConfig::opt30b();
    // 2 * hidden * 2 bytes * layers = 2*7168*2*48 ~ 1.38 MB/token.
    EXPECT_EQ(m.kvBytesPerTokenPerLayer(), 2 * 7168 * 2u);
    EXPECT_EQ(m.kvBytesPerToken(), 48u * 2 * 7168 * 2);
}

TEST(ModelConfig, LayerBytesAreSwapSized)
{
    // Layer parameter blocks are >> 128 KiB, the classifier threshold.
    for (auto make : {ModelConfig::opt13b, ModelConfig::opt30b,
                      ModelConfig::opt66b, ModelConfig::opt175bInt4}) {
        auto m = make();
        EXPECT_GT(m.layerParamBytes(), 128 * KiB) << m.name;
    }
}

TEST(ModelConfig, Int4HalvesQuarterWeights)
{
    auto fp16 = ModelConfig::opt175b();
    auto int4 = ModelConfig::opt175bInt4();
    EXPECT_NEAR(double(int4.layerParamBytes()) /
                    double(fp16.layerParamBytes()),
                0.25, 0.01);
    // KV cache stays fp16 in FlexGen's 4-bit config.
    EXPECT_EQ(int4.kvBytesPerTokenPerLayer(),
              fp16.kvBytesPerTokenPerLayer());
}

TEST(Dtype, Bytes)
{
    EXPECT_DOUBLE_EQ(dtypeBytes(Dtype::Fp16), 2.0);
    EXPECT_DOUBLE_EQ(dtypeBytes(Dtype::Int8), 1.0);
    EXPECT_DOUBLE_EQ(dtypeBytes(Dtype::Int4), 0.5);
    EXPECT_STREQ(toString(Dtype::Int4), "int4");
}

TEST(ModelConfigDeath, ValidateCatchesBadConfig)
{
    ModelConfig m;
    m.name = "broken";
    EXPECT_DEATH(m.validate(), "incomplete model config");
}

TEST(ModelConfig, LlamaZoo)
{
    // The 12h^2 layer approximation over-counts LLaMA slightly (its
    // MLP uses a gated ~8/3 expansion instead of 4x), so the derived
    // parameter totals land above the nameplate; sizes stay in the
    // right regime for swap planning.
    auto m7 = llm::ModelConfig::llama7b();
    auto m70 = llm::ModelConfig::llama70b();
    m7.validate();
    m70.validate();
    EXPECT_NEAR(double(m7.totalParams()) / 1e9, 7.0, 2.0);
    EXPECT_NEAR(double(m70.totalParams()) / 1e9, 70.0, 16.0);
    // 70B fp16 cannot fit an 80 GB GPU; 7B fits easily.
    EXPECT_GT(m70.totalParamBytes(), 80 * pipellm::GiB);
    EXPECT_LT(m7.totalParamBytes(), 20 * pipellm::GiB);
}
