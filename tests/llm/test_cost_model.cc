#include <gtest/gtest.h>

#include "gpu/device.hh"
#include "llm/cost_model.hh"
#include "sim/event_queue.hh"

using namespace pipellm;
using namespace pipellm::llm;

TEST(CostModel, DecodeFlopsDominatedByMatmuls)
{
    CostModel cm(ModelConfig::opt30b());
    double h = 7168;
    double f = cm.decodeFlopsPerTokenPerLayer(0);
    EXPECT_DOUBLE_EQ(f, 24.0 * h * h);
    // Context adds the attention term.
    EXPECT_GT(cm.decodeFlopsPerTokenPerLayer(2048), f);
}

TEST(CostModel, PrefillScalesSuperlinearly)
{
    CostModel cm(ModelConfig::opt30b());
    double f256 = cm.prefillFlopsPerLayer(256);
    double f512 = cm.prefillFlopsPerLayer(512);
    EXPECT_GT(f512, 2.0 * f256);      // quadratic attention term
    EXPECT_LT(f512, 4.0 * f256);      // but matmul-dominated
}

TEST(CostModel, SmallBatchDecodeIsMemoryBound)
{
    // At batch 1 the layer weights dominate HBM traffic, so the
    // kernel should be memory-bound on an H100.
    sim::EventQueue eq;
    gpu::GpuDevice dev(eq, gpu::SystemSpec::h100());
    CostModel cm(ModelConfig::opt30b());
    auto k = cm.decodeLayerKernel(1, 512);
    double compute_s = k.flops / dev.spec().gpu_flops;
    double memory_s = k.hbm_bytes / dev.spec().gpu_hbm_bw;
    EXPECT_GT(memory_s, compute_s);
}

TEST(CostModel, LargeBatchDecodeIsComputeBound)
{
    sim::EventQueue eq;
    gpu::GpuDevice dev(eq, gpu::SystemSpec::h100());
    CostModel cm(ModelConfig::opt30b());
    auto k = cm.decodeLayerKernel(512, 128);
    double compute_s = k.flops / dev.spec().gpu_flops;
    double memory_s = k.hbm_bytes / dev.spec().gpu_hbm_bw;
    EXPECT_GT(compute_s, memory_s);
}

TEST(CostModel, BackwardIsTwiceForward)
{
    CostModel cm(ModelConfig::opt13b());
    auto fwd = cm.forwardLayerKernel(4096);
    auto bwd = cm.backwardLayerKernel(4096);
    EXPECT_DOUBLE_EQ(bwd.flops, 2.0 * fwd.flops);
}

TEST(CostModel, DecodeStepTimeIsPlausible)
{
    // A full OPT-30B decode step at moderate batch should take tens
    // of milliseconds on an H100 — the scale against which swap
    // stalls are measured.
    sim::EventQueue eq;
    gpu::GpuDevice dev(eq, gpu::SystemSpec::h100());
    CostModel cm(ModelConfig::opt30b());
    Tick step = 0;
    for (unsigned l = 0; l < cm.model().num_layers; ++l)
        step += dev.kernelDuration(cm.decodeLayerKernel(32, 512));
    step += dev.kernelDuration(cm.embeddingKernel(32));
    EXPECT_GT(toMilliseconds(step), 2.0);
    EXPECT_LT(toMilliseconds(step), 200.0);
}

TEST(CostModel, EmbeddingKernelCostsVocabProjection)
{
    CostModel cm(ModelConfig::opt13b());
    auto k = cm.embeddingKernel(8);
    EXPECT_GT(k.flops, 0);
    EXPECT_GT(k.hbm_bytes, 0);
}

TEST(CostModel, ActivationBytesScaleWithHidden)
{
    CostModel small(ModelConfig::opt13b());
    CostModel big(ModelConfig::opt66b());
    EXPECT_GT(big.activationBytesPerTokenPerLayer(),
              small.activationBytesPerTokenPerLayer());
}
