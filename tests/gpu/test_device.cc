#include <gtest/gtest.h>

#include <vector>

#include "crypto/channel.hh"
#include "gpu/device.hh"
#include "sim/event_queue.hh"

using namespace pipellm;
using namespace pipellm::gpu;
using crypto::CipherBlob;
using crypto::Direction;
using crypto::SecureChannel;

namespace {

struct DeviceFixture : ::testing::Test
{
    sim::EventQueue eq;
    SystemSpec spec = SystemSpec::h100();
    SecureChannel channel;

    std::vector<std::uint8_t>
    pattern(std::size_t n, std::uint8_t seed = 3)
    {
        std::vector<std::uint8_t> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = std::uint8_t(seed + i);
        return v;
    }
};

} // namespace

TEST_F(DeviceFixture, AllocRespectsHbmCapacity)
{
    GpuDevice dev(eq, spec);
    auto r = dev.alloc(60 * GiB, "weights");
    EXPECT_EQ(dev.memory().bytesAllocated(), 60 * GiB);
    EXPECT_EXIT(dev.alloc(30 * GiB, "too-much"),
                ::testing::ExitedWithCode(1), "out of memory");
    dev.free(r);
    EXPECT_EQ(dev.memory().bytesAllocated(), 0u);
}

TEST_F(DeviceFixture, PlainDmaTimingMatchesPcie)
{
    GpuDevice dev(eq, spec);
    auto r = dev.alloc(64 * MiB, "buf");
    auto data = pattern(256);
    Tick done = dev.dmaH2dPlain(r.base, data.data(), data.size(),
                                32 * MiB, 0);
    // 32 MiB at 55 GB/s ~= 610 us.
    EXPECT_NEAR(toMicroseconds(done), 610.0, 15.0);
    EXPECT_EQ(dev.memory().readSample(r.base, 256), data);
}

TEST_F(DeviceFixture, PlainDmaSerializesOnLink)
{
    GpuDevice dev(eq, spec);
    auto r = dev.alloc(64 * MiB, "buf");
    Tick a = dev.dmaH2dPlain(r.base, nullptr, 0, 16 * MiB, 0);
    Tick b = dev.dmaH2dPlain(r.base, nullptr, 0, 16 * MiB, 0);
    EXPECT_NEAR(double(b), 2.0 * double(a), double(spec.pcie_latency) * 2);
}

TEST_F(DeviceFixture, H2dEncryptedRoundTrip)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto pt = pattern(512);
    auto blob = channel.seal(Direction::HostToDevice, 0, pt.data(),
                             512);
    EXPECT_EQ(dev.rxCounter(), 0u);
    Tick done = dev.dmaH2dEncrypted(blob, r.base, 0);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(dev.rxCounter(), 1u);
    EXPECT_EQ(dev.memory().readSample(r.base, 512), pt);
}

TEST_F(DeviceFixture, H2dSequenceAdvancesIvs)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    for (std::uint64_t i = 0; i < 5; ++i) {
        auto pt = pattern(64, std::uint8_t(i));
        auto blob = channel.seal(Direction::HostToDevice, i, pt.data(),
                                 64);
        dev.dmaH2dEncrypted(blob, r.base, 0);
    }
    EXPECT_EQ(dev.rxCounter(), 5u);
    EXPECT_EQ(dev.integrityFailures(), 0u);
}

TEST_F(DeviceFixture, WrongIvBlobIsRejected)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto pt = pattern(64);
    // Sealed with counter 3, but the device expects 0.
    auto blob = channel.seal(Direction::HostToDevice, 3, pt.data(), 64);
    EXPECT_FALSE(dev.wouldAccept(blob));
    auto ok = channel.seal(Direction::HostToDevice, 0, pt.data(), 64);
    EXPECT_TRUE(dev.wouldAccept(ok));
}

TEST_F(DeviceFixture, WrongIvDeliveryPanics)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto pt = pattern(64);
    auto blob = channel.seal(Direction::HostToDevice, 3, pt.data(), 64);
    EXPECT_DEATH(dev.dmaH2dEncrypted(blob, r.base, 0), "tag failure");
}

TEST_F(DeviceFixture, D2hEncryptedProducesOpenableBlob)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto content = pattern(300, 9);
    dev.memory().write(r.base, content.data(), content.size());

    CipherBlob blob;
    Tick done = dev.dmaD2hEncrypted(r.base, 300, blob, 0);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(blob.dir, Direction::DeviceToHost);
    EXPECT_EQ(blob.iv_counter, 0u);
    EXPECT_EQ(dev.txCounter(), 1u);

    std::vector<std::uint8_t> out;
    ASSERT_TRUE(channel.open(blob, 0, out));
    EXPECT_EQ(out, content);
}

TEST_F(DeviceFixture, CcTransfersKeepDirectionsIndependent)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto pt = pattern(64);
    auto b0 = channel.seal(Direction::HostToDevice, 0, pt.data(), 64);
    dev.dmaH2dEncrypted(b0, r.base, 0);
    CipherBlob out_blob;
    dev.dmaD2hEncrypted(r.base, 64, out_blob, 0);
    dev.dmaD2hEncrypted(r.base, 64, out_blob, 0);
    EXPECT_EQ(dev.rxCounter(), 1u);
    EXPECT_EQ(dev.txCounter(), 2u);
}

TEST_F(DeviceFixture, KernelDurationRoofline)
{
    GpuDevice dev(eq, spec);
    // Compute-bound: 4e12 flops at 400 TFLOPS = 10 ms (+5 us launch).
    KernelDesc heavy{"gemm", 4e12, 1e6};
    EXPECT_NEAR(toMilliseconds(dev.kernelDuration(heavy)), 10.0, 0.1);
    // Memory-bound: 33.5 GB at 3.35 TB/s = 10 ms.
    KernelDesc wide{"attn", 1e9, 33.5e9};
    EXPECT_NEAR(toMilliseconds(dev.kernelDuration(wide)), 10.0, 0.1);
}

TEST_F(DeviceFixture, KernelsSerializeOnComputeEngine)
{
    GpuDevice dev(eq, spec);
    KernelDesc k{"step", 4e11, 0}; // 1 ms
    Tick a = dev.launchKernel(k, 0);
    Tick b = dev.launchKernel(k, 0);
    EXPECT_GT(b, a);
    EXPECT_NEAR(double(b - a), double(dev.kernelDuration(k)), 1.0);
}

TEST_F(DeviceFixture, EnableCcResetsCounters)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto pt = pattern(64);
    auto b0 = channel.seal(Direction::HostToDevice, 0, pt.data(), 64);
    dev.dmaH2dEncrypted(b0, r.base, 0);
    EXPECT_EQ(dev.rxCounter(), 1u);
    dev.enableCc(&channel); // new session
    EXPECT_EQ(dev.rxCounter(), 0u);
    EXPECT_EQ(dev.txCounter(), 0u);
}

TEST_F(DeviceFixture, NonCcDeviceRefusesEncryptedPath)
{
    GpuDevice dev(eq, spec);
    auto pt = pattern(16);
    auto blob = channel.seal(Direction::HostToDevice, 0, pt.data(), 16);
    EXPECT_DEATH(dev.dmaH2dEncrypted(blob, 0x1000, 0), "non-CC device");
}

TEST_F(DeviceFixture, RetainedCommitVerifiesOriginalIv)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto pt = pattern(128, 7);
    // Sealed under an arbitrary out-of-band generation counter.
    auto blob = channel.seal(Direction::DeviceToHost, 999999,
                             pt.data(), 128);
    dev.commitRetained(blob, r.base);
    dev.commitRetained(blob, r.base); // replay accepted by design
    EXPECT_EQ(dev.retainedCommits(), 2u);
    EXPECT_EQ(dev.memory().readSample(r.base, 128), pt);
    // Lockstep counters are untouched by retained commits.
    EXPECT_EQ(dev.rxCounter(), 0u);
    EXPECT_EQ(dev.txCounter(), 0u);
}

TEST_F(DeviceFixture, RetainedCommitRejectsTampering)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto pt = pattern(64);
    auto blob = channel.seal(Direction::DeviceToHost, 5, pt.data(), 64);
    blob.sample_ct[3] ^= 0x40;
    EXPECT_DEATH(dev.commitRetained(blob, r.base), "tag failure");
}

TEST_F(DeviceFixture, SealRetainedUsesCallerCounter)
{
    GpuDevice dev(eq, spec);
    dev.enableCc(&channel);
    auto r = dev.alloc(1 * MiB, "kv");
    auto blob = dev.sealRetainedD2h(r.base, 256, 12345);
    EXPECT_EQ(blob.iv_counter, 12345u);
    EXPECT_EQ(dev.txCounter(), 0u); // lockstep TX untouched
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(channel.open(blob, 12345, out));
    EXPECT_EQ(out, dev.memory().readSample(r.base, 256));
}
