#include <gtest/gtest.h>

#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "runtime/reuse_runtime.hh"
#include "runtime/teeio_runtime.hh"

using namespace pipellm;
using namespace pipellm::runtime;

namespace {

struct FutureFixture : ::testing::Test
{
    Platform platform;
    mem::Region host = platform.allocHost(512 * MiB, "host");
    mem::Region dev = platform.gpu(0).alloc(512 * MiB, "dev");

    /** IO-heavy swap loop; returns finish tick. */
    template <typename Rt>
    Tick
    swapLoop(Rt &rt, int reps, std::uint64_t bytes = 32 * MiB)
    {
        Stream &s = rt.createStream("s");
        Tick now = 0;
        for (int i = 0; i < reps; ++i)
            now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                                 host.base, bytes, s, now)
                      .api_return;
        return rt.synchronize(now);
    }
};

} // namespace

TEST_F(FutureFixture, TeeIoReturnsInControlPlaneTime)
{
    TeeIoRuntime rt(platform);
    Stream &s = rt.createStream("s");
    auto r = rt.memcpyAsync(CopyKind::HostToDevice, dev.base, host.base,
                            32 * MiB, s, 0);
    // No CPU encryption blocks the caller.
    EXPECT_NEAR(toMicroseconds(r.api_return), 14.9, 2.0);
}

TEST_F(FutureFixture, TeeIoThroughputMatchesCopyPath)
{
    TeeIoRuntime rt(platform);
    Tick done = swapLoop(rt, 32);
    double rate = achievedRate(32ull * 32 * MiB, done);
    // Line-rate crypto: bounded only by the 40 GB/s staged path.
    EXPECT_GT(rate, 30e9);
}

TEST_F(FutureFixture, TeeIoMovesDataWithIvLockstep)
{
    TeeIoRuntime rt(platform);
    Stream &s = rt.createStream("s");
    std::vector<std::uint8_t> content{1, 2, 3};
    platform.hostMem().write(host.base, content.data(), content.size());
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 3, s, 0);
    EXPECT_EQ(platform.gpu(0).memory().readSample(dev.base, 3),
              content);
    rt.memcpy(CopyKind::DeviceToHost, host.base + 100, dev.base, 3, s,
              0);
    EXPECT_EQ(platform.hostMem().readSample(host.base + 100, 3),
              content);
    EXPECT_EQ(rt.h2dCounter(), platform.gpu(0).rxCounter());
    EXPECT_EQ(rt.d2hCounter(), platform.gpu(0).txCounter());
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
}

TEST_F(FutureFixture, ReuseSealsOnceThenResends)
{
    CiphertextReuseRuntime rt(platform);
    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int i = 0; i < 5; ++i)
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host.base, 32 * MiB, s, now)
                  .api_return;
    rt.synchronize(now);
    EXPECT_EQ(rt.reuseStats().seals, 1u);
    EXPECT_EQ(rt.reuseStats().reuse_hits, 4u);
    EXPECT_EQ(platform.gpu(0).retainedCommits(), 5u);
    EXPECT_EQ(rt.stats().cpu_encrypt_bytes, 32 * MiB);
}

TEST_F(FutureFixture, ReuseDeliversCorrectContent)
{
    CiphertextReuseRuntime rt(platform);
    Stream &s = rt.createStream("s");
    auto expect = platform.hostMem().readSample(
        host.base, platform.device(0).channel().sampledLen(32 * MiB));
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 32 * MiB, s,
              0);
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 32 * MiB, s,
              0); // reuse hit
    EXPECT_EQ(platform.gpu(0).memory().readSample(dev.base,
                                                    expect.size()),
              expect);
}

TEST_F(FutureFixture, ReuseInvalidatesOnPlaintextWrite)
{
    CiphertextReuseRuntime rt(platform);
    Stream &s = rt.createStream("s");
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 32 * MiB, s,
              0);
    EXPECT_EQ(rt.reuseStats().seals, 1u);

    // Update the weights: the retained ciphertext must not be reused.
    std::uint8_t v = 0x99;
    platform.hostMem().write(host.base + 5, &v, 1);
    EXPECT_EQ(rt.reuseStats().invalidated, 1u);

    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 32 * MiB, s,
              0);
    EXPECT_EQ(rt.reuseStats().seals, 2u);
    // The fresh content arrives.
    EXPECT_EQ(platform.gpu(0).memory().readSample(dev.base + 5, 1)[0],
              0x99);
}

TEST_F(FutureFixture, ReuseKeepsSwapOutsEncryptedAtRest)
{
    CiphertextReuseRuntime rt(platform);
    Stream &s = rt.createStream("s");
    auto gpu_content = platform.gpu(0).memory().readSample(
        dev.base, platform.device(0).channel().sampledLen(32 * MiB));

    // Swap out: the CPU never decrypts.
    rt.memcpy(CopyKind::DeviceToHost, host.base + 64 * MiB, dev.base,
              32 * MiB, s, 0);
    EXPECT_EQ(rt.reuseStats().encrypted_at_rest, 1u);
    EXPECT_EQ(rt.stats().cpu_decrypt_bytes, 0u);

    // Swap back in: pure resend, content restored on the GPU.
    rt.memcpy(CopyKind::HostToDevice, dev.base + 64 * MiB,
              host.base + 64 * MiB, 32 * MiB, s, 0);
    EXPECT_EQ(rt.reuseStats().reuse_hits, 1u);
    EXPECT_EQ(platform.gpu(0).memory().readSample(
                  dev.base + 64 * MiB, gpu_content.size()),
              gpu_content);
}

TEST_F(FutureFixture, ReuseSmallTransfersStayLockstep)
{
    CiphertextReuseRuntime rt(platform);
    Stream &s = rt.createStream("s");
    for (int i = 0; i < 3; ++i)
        rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 4096, s,
                  0);
    EXPECT_EQ(platform.gpu(0).rxCounter(), 3u);
    EXPECT_EQ(rt.reuseStats().reuse_hits, 0u);
}

TEST_F(FutureFixture, DesignOrderingHolds)
{
    // On an IO-bound swap loop: plain <= tee-io <= cc, and reuse's
    // steady state matches tee-io (both avoid CPU crypto entirely).
    Platform p1, p2, p3, p4;
    mem::Region h1 = p1.allocHost(256 * MiB, "h");
    mem::Region d1 = p1.gpu(0).alloc(256 * MiB, "d");
    auto loop = [&](RuntimeApi &rt, Platform &p) {
        mem::Region h = p.allocHost(256 * MiB, "h");
        mem::Region d = p.gpu(0).alloc(256 * MiB, "d");
        (void)h1;
        (void)d1;
        Stream &s = rt.createStream("s");
        Tick now = 0;
        for (int i = 0; i < 16; ++i)
            now = rt.memcpyAsync(CopyKind::HostToDevice, d.base, h.base,
                                 32 * MiB, s, now)
                      .api_return;
        return rt.synchronize(now);
    };
    PlainRuntime plain(p1);
    TeeIoRuntime teeio(p2);
    CcRuntime cc(p3);
    CiphertextReuseRuntime reuse(p4);
    Tick t_plain = loop(plain, p1);
    Tick t_teeio = loop(teeio, p2);
    Tick t_cc = loop(cc, p3);
    Tick t_reuse = loop(reuse, p4);
    EXPECT_LT(t_plain, t_teeio);
    EXPECT_LT(t_teeio, t_cc);
    EXPECT_LT(t_reuse, t_cc);
    // TEE-I/O and steady-state reuse are both copy-path bound.
    EXPECT_NEAR(double(t_reuse) / double(t_teeio), 1.0, 0.5);
}
