/**
 * @file
 * Multi-device Platform: each DeviceContext is a full machine slice
 * (GPU, PCIe links, CC session, staged copy paths), so runtimes on
 * different devices share nothing but host DRAM — in particular each
 * device's IV counters and session key are its own.
 */

#include <gtest/gtest.h>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"

using namespace pipellm;
using namespace pipellm::runtime;

namespace {

struct TwoDeviceFixture : ::testing::Test
{
    Platform platform{gpu::SystemSpec::h100(),
                      crypto::ChannelConfig{}, 2};
};

} // namespace

TEST_F(TwoDeviceFixture, ContextsAreDistinctMachineSlices)
{
    ASSERT_EQ(platform.numDevices(), 2u);
    EXPECT_NE(&platform.device(0).gpu(), &platform.device(1).gpu());
    EXPECT_NE(&platform.device(0).channel(),
              &platform.device(1).channel());
    EXPECT_NE(&platform.device(0).h2dPath(),
              &platform.device(1).h2dPath());
    EXPECT_EQ(platform.device(0).id(), 0u);
    EXPECT_EQ(platform.device(1).id(), 1u);
}

TEST_F(TwoDeviceFixture, DeprecatedAliasesMeanDeviceZero)
{
    // The aliases are [[deprecated]] but must keep working until the
    // last out-of-tree caller migrates; this test is the one licensed
    // user.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    EXPECT_EQ(&platform.device(), &platform.device(0).gpu());
    EXPECT_EQ(&platform.channel(), &platform.device(0).channel());
#pragma GCC diagnostic pop
    EXPECT_EQ(&platform.gpu(1), &platform.device(1).gpu());
}

TEST_F(TwoDeviceFixture, OutOfRangeDeviceDies)
{
    EXPECT_DEATH(platform.device(2), "device");
}

TEST_F(TwoDeviceFixture, PerDeviceSessionKeysDiffer)
{
    // A ciphertext sealed for device 0's session must not open under
    // device 1's key, even at the right counter.
    std::vector<std::uint8_t> payload(256, 0xa5);
    auto blob = platform.device(0).channel().seal(
        crypto::Direction::HostToDevice, 1, payload.data(),
        payload.size());
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(platform.device(1).channel().open(blob, 1, out));
    EXPECT_TRUE(platform.device(0).channel().open(blob, 1, out));
}

TEST_F(TwoDeviceFixture, InterleavedH2dAdvancesCountersIndependently)
{
    CcRuntime rt0(platform, 1, 0);
    CcRuntime rt1(platform, 1, 1);
    mem::Region host = platform.allocHost(64 * MiB, "host");
    mem::Region dev0 = platform.gpu(0).alloc(64 * MiB, "dev0");
    mem::Region dev1 = platform.gpu(1).alloc(64 * MiB, "dev1");

    Stream &s0 = rt0.createStream("s0");
    Stream &s1 = rt1.createStream("s1");

    // 3 transfers on device 0 interleaved with 2 on device 1: were
    // the devices sharing a lockstep counter pair, every tag after
    // the first interleave would mismatch.
    Tick t0 = 0, t1 = 0;
    t0 = rt0.memcpyAsync(CopyKind::HostToDevice, dev0.base, host.base,
                         1 * MiB, s0, t0).api_return;
    t1 = rt1.memcpyAsync(CopyKind::HostToDevice, dev1.base, host.base,
                         1 * MiB, s1, t1).api_return;
    t0 = rt0.memcpyAsync(CopyKind::HostToDevice, dev0.base, host.base,
                         1 * MiB, s0, t0).api_return;
    t1 = rt1.memcpyAsync(CopyKind::HostToDevice, dev1.base, host.base,
                         1 * MiB, s1, t1).api_return;
    rt0.memcpyAsync(CopyKind::HostToDevice, dev0.base, host.base,
                    1 * MiB, s0, t0);

    EXPECT_EQ(platform.gpu(0).rxCounter(), 3u);
    EXPECT_EQ(platform.gpu(1).rxCounter(), 2u);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(platform.gpu(1).integrityFailures(), 0u);
}

TEST_F(TwoDeviceFixture, InterleavedD2hAdvancesCountersIndependently)
{
    CcRuntime rt0(platform, 1, 0);
    CcRuntime rt1(platform, 1, 1);
    mem::Region host = platform.allocHost(64 * MiB, "host");
    mem::Region dev0 = platform.gpu(0).alloc(64 * MiB, "dev0");
    mem::Region dev1 = platform.gpu(1).alloc(64 * MiB, "dev1");

    Stream &s0 = rt0.createStream("s0");
    Stream &s1 = rt1.createStream("s1");

    Tick t0 = 0, t1 = 0;
    t0 = rt0.memcpyAsync(CopyKind::DeviceToHost, host.base, dev0.base,
                         1 * MiB, s0, t0).api_return;
    t1 = rt1.memcpyAsync(CopyKind::DeviceToHost, host.base, dev1.base,
                         1 * MiB, s1, t1).api_return;
    rt0.memcpyAsync(CopyKind::DeviceToHost, host.base, dev0.base,
                    1 * MiB, s0, t0);

    EXPECT_EQ(platform.gpu(0).txCounter(), 2u);
    EXPECT_EQ(platform.gpu(1).txCounter(), 1u);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(platform.gpu(1).integrityFailures(), 0u);
}

TEST_F(TwoDeviceFixture, DeviceOneTrafficDoesNotSlowDeviceZero)
{
    // Device 0's PCIe and crypto are its own: a reference platform
    // with a single device must time the same transfer identically
    // even while device 1 is saturated.
    Platform ref(gpu::SystemSpec::h100(), crypto::ChannelConfig{}, 1);
    CcRuntime ref_rt(ref, 1, 0);
    mem::Region ref_host = ref.allocHost(64 * MiB, "host");
    mem::Region ref_dev = ref.gpu(0).alloc(64 * MiB, "dev");
    Stream &ref_s = ref_rt.createStream("s");
    auto expect = ref_rt.memcpyAsync(CopyKind::HostToDevice,
                                     ref_dev.base, ref_host.base,
                                     8 * MiB, ref_s, 0);

    CcRuntime rt0(platform, 1, 0);
    CcRuntime rt1(platform, 1, 1);
    mem::Region host = platform.allocHost(64 * MiB, "host");
    mem::Region dev0 = platform.gpu(0).alloc(64 * MiB, "dev0");
    mem::Region dev1 = platform.gpu(1).alloc(64 * MiB, "dev1");
    Stream &s0 = rt0.createStream("s0");
    Stream &s1 = rt1.createStream("s1");
    for (int i = 0; i < 4; ++i)
        rt1.memcpyAsync(CopyKind::HostToDevice, dev1.base, host.base,
                        8 * MiB, s1, 0);
    auto got = rt0.memcpyAsync(CopyKind::HostToDevice, dev0.base,
                               host.base, 8 * MiB, s0, 0);

    EXPECT_EQ(got.api_return, expect.api_return);
    EXPECT_EQ(got.complete, expect.complete);
}

TEST_F(TwoDeviceFixture, PipeLlmSpeculationStatePerDevice)
{
    // Two PipeLLM runtimes, one per device: device 0's counter track
    // must match a single-device reference run regardless of what
    // device 1's speculation consumes.
    core::PipeLlmConfig cfg;
    cfg.classifier.kv_unit_bytes = 1 * MiB;

    Platform ref(gpu::SystemSpec::h100(), crypto::ChannelConfig{}, 1);
    core::PipeLlmRuntime ref_rt(ref, cfg, 0);
    mem::Region ref_host = ref.allocHost(64 * MiB, "host");
    mem::Region ref_dev = ref.gpu(0).alloc(64 * MiB, "dev");
    Stream &ref_s = ref_rt.createStream("s");
    Tick rt = 0;
    for (int i = 0; i < 3; ++i)
        rt = ref_rt.memcpyAsync(CopyKind::HostToDevice,
                                ref_dev.base + i * MiB,
                                ref_host.base + i * MiB, 1 * MiB,
                                ref_s, rt).api_return;
    ref_rt.synchronize(rt);

    core::PipeLlmRuntime rt0(platform, cfg, 0);
    core::PipeLlmRuntime rt1(platform, cfg, 1);
    mem::Region host = platform.allocHost(64 * MiB, "host");
    mem::Region dev0 = platform.gpu(0).alloc(64 * MiB, "dev0");
    mem::Region dev1 = platform.gpu(1).alloc(64 * MiB, "dev1");
    Stream &s0 = rt0.createStream("s0");
    Stream &s1 = rt1.createStream("s1");

    Tick t0 = 0, t1 = 0;
    for (int i = 0; i < 3; ++i) {
        t0 = rt0.memcpyAsync(CopyKind::HostToDevice, dev0.base + i * MiB,
                             host.base + i * MiB, 1 * MiB, s0, t0)
                 .api_return;
        // Device 1 interleaves a different (larger) traffic mix.
        t1 = rt1.memcpyAsync(CopyKind::HostToDevice, dev1.base,
                             host.base, 2 * MiB, s1, t1).api_return;
        t1 = rt1.memcpyAsync(CopyKind::DeviceToHost, host.base,
                             dev1.base, 2 * MiB, s1, t1).api_return;
    }
    rt0.synchronize(t0);
    rt1.synchronize(t1);

    EXPECT_EQ(rt0.h2dCounter(), ref_rt.h2dCounter());
    EXPECT_EQ(platform.gpu(0).rxCounter(), ref.gpu(0).rxCounter());
    EXPECT_NE(rt1.h2dCounter(), 0u);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(platform.gpu(1).integrityFailures(), 0u);
}
