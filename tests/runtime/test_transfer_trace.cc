#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/transfer_trace.hh"

using namespace pipellm;
using namespace pipellm::runtime;

TEST(TransferTrace, RecordsAndSummarizes)
{
    TransferTrace trace;
    trace.record({0, 100, 1 * MiB, true, TransferOutcome::Hit});
    trace.record({10, 20, 1, true, TransferOutcome::Nop});
    trace.record({30, 300, 512 * KiB, false, TransferOutcome::Direct});
    EXPECT_EQ(trace.records().size(), 3u);
    EXPECT_EQ(trace.count(TransferOutcome::Hit), 1u);
    EXPECT_EQ(trace.count(TransferOutcome::Nop), 1u);
    EXPECT_EQ(trace.totalBytes(true), 1 * MiB + 1);
    EXPECT_EQ(trace.totalBytes(false), 512 * KiB);
}

TEST(TransferTrace, BusViewQuantifiesNopSideChannel)
{
    // Paper §8.1: an observer on the bus can profile NOPs by size.
    TransferTrace trace;
    for (int i = 0; i < 3; ++i)
        trace.record({0, 1, 1, true, TransferOutcome::Nop});
    for (int i = 0; i < 7; ++i)
        trace.record({0, 1, 2 * MiB, true, TransferOutcome::Hit});
    auto view = trace.busView();
    EXPECT_EQ(view.transfers, 10u);
    EXPECT_EQ(view.nop_like, 3u);
    EXPECT_EQ(view.swap_like, 7u);
    EXPECT_DOUBLE_EQ(view.nop_fraction, 0.3);
}

TEST(TransferTrace, CapDropsExcess)
{
    TransferTrace trace(2);
    for (int i = 0; i < 5; ++i)
        trace.record({0, 1, 64, true, TransferOutcome::Direct});
    EXPECT_EQ(trace.records().size(), 2u);
}

TEST(TransferTrace, CsvDump)
{
    TransferTrace trace;
    trace.record({1000, 2000, 4096, true, TransferOutcome::Miss});
    std::string path = ::testing::TempDir() + "trace.csv";
    EXPECT_EQ(trace.writeCsv(path), 1u);
    std::ifstream in(path);
    std::string header, row;
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_NE(header.find("outcome"), std::string::npos);
    EXPECT_NE(row.find("miss"), std::string::npos);
    EXPECT_NE(row.find("H2D"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TransferTrace, PipeLlmOutcomesAreAttributed)
{
    Platform platform;
    core::PipeLlmConfig cfg;
    cfg.classifier.layer_param_bytes = 2 * MiB;
    core::PipeLlmRuntime rt(platform, cfg);
    TransferTrace trace;
    rt.attachTrace(&trace);

    std::vector<mem::Region> host;
    for (int i = 0; i < 4; ++i)
        host.push_back(platform.allocHost(2 * MiB, "c"));
    auto dev = platform.gpu(0).alloc(8 * MiB, "d");
    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int cycle = 0; cycle < 5; ++cycle) {
        for (int i = 0; i < 4; ++i)
            now = rt.memcpyAsync(CopyKind::HostToDevice,
                                 dev.base + i * 2 * MiB, host[i].base,
                                 2 * MiB, s, now)
                      .api_return;
        now = rt.synchronize(now);
    }
    // First cycle misses, later cycles hit; counts must agree with
    // the runtime's own statistics.
    EXPECT_EQ(trace.count(TransferOutcome::Hit), rt.pipeStats().hits);
    EXPECT_EQ(trace.count(TransferOutcome::Miss),
              rt.pipeStats().misses);
    EXPECT_EQ(trace.count(TransferOutcome::Nop), rt.pipeStats().nops);
    EXPECT_GT(trace.count(TransferOutcome::Hit), 10u);
}

TEST(TransferTrace, CcRuntimeTracesDirect)
{
    Platform platform;
    CcRuntime rt(platform);
    TransferTrace trace;
    rt.attachTrace(&trace);
    auto host = platform.allocHost(4 * MiB, "h");
    auto dev = platform.gpu(0).alloc(4 * MiB, "d");
    Stream &s = rt.createStream("s");
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 4 * MiB, s,
              0);
    rt.memcpy(CopyKind::DeviceToHost, host.base, dev.base, 1 * MiB, s,
              0);
    EXPECT_EQ(trace.records().size(), 2u);
    EXPECT_EQ(trace.count(TransferOutcome::Direct), 2u);
    EXPECT_EQ(trace.totalBytes(true), 4 * MiB);
    EXPECT_EQ(trace.totalBytes(false), 1 * MiB);
    EXPECT_LT(trace.records()[0].submit, trace.records()[0].complete);
}
