#include <gtest/gtest.h>

#include "runtime/api.hh"
#include "runtime/plain_runtime.hh"

using namespace pipellm;
using namespace pipellm::runtime;

TEST(Stream, TailIsMonotonic)
{
    Stream s("s");
    EXPECT_EQ(s.tail(), 0u);
    s.push(100);
    EXPECT_EQ(s.tail(), 100u);
    s.push(50); // out-of-order completion cannot move the tail back
    EXPECT_EQ(s.tail(), 100u);
    s.push(200);
    EXPECT_EQ(s.tail(), 200u);
}

TEST(Stream, WaitEventOrdersStream)
{
    Stream s("s");
    s.waitEvent(500);
    EXPECT_EQ(s.tail(), 500u);
}

TEST(RuntimeApi, CreateStreamOwnsStreams)
{
    Platform platform;
    PlainRuntime rt(platform);
    Stream &a = rt.createStream("a");
    Stream &b = rt.createStream("b");
    EXPECT_EQ(a.name(), "a");
    EXPECT_EQ(b.name(), "b");
    a.push(100000);
    b.push(300000);
    EXPECT_EQ(rt.synchronize(0), 300000u);
}

TEST(RuntimeApi, SynchronizeIncludesApiOverhead)
{
    Platform platform;
    PlainRuntime rt(platform);
    EXPECT_EQ(rt.synchronize(1000),
              1000 + platform.spec().api_overhead);
}

TEST(RuntimeApi, CopyKindToString)
{
    EXPECT_STREQ(toString(CopyKind::HostToDevice), "H2D");
    EXPECT_STREQ(toString(CopyKind::DeviceToHost), "D2H");
}
