#include <gtest/gtest.h>

#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"

using namespace pipellm;
using namespace pipellm::runtime;

namespace {

struct CcFixture : ::testing::Test
{
    Platform platform;
    CcRuntime rt{platform};
    mem::Region host = platform.allocHost(512 * MiB, "host");
    mem::Region dev = platform.gpu(0).alloc(512 * MiB, "dev");
};

} // namespace

TEST_F(CcFixture, EnablesCcOnDevice)
{
    EXPECT_TRUE(platform.gpu(0).ccEnabled());
    EXPECT_STREQ(rt.name(), "CC");
}

TEST_F(CcFixture, ApiLatencyGrowsWithSize)
{
    // Fig. 2, CC-enabled: the caller is blocked for the encryption.
    Stream &s = rt.createStream("s");
    auto r1 = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host.base, 1 * MiB, s, 0);
    // 1 MiB at 5.8 GB/s ~ 181 us (+ ~15 us control plane).
    EXPECT_NEAR(toMicroseconds(r1.api_return), 181 + 15, 15);

    Tick t = rt.synchronize(r1.api_return);
    auto r2 = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host.base, 32 * MiB, s, t);
    // 32 MiB at 5.8 GB/s ~ 5785 us; paper measures 5252 us.
    EXPECT_NEAR(toMicroseconds(r2.api_return - t), 5800, 600);
}

TEST_F(CcFixture, SmallTransferLatencyIsControlPlane)
{
    Stream &s = rt.createStream("s");
    auto r = rt.memcpyAsync(CopyKind::HostToDevice, dev.base, host.base,
                            32, s, 0);
    // Fig. 2: ~14.9 us for 32 B.
    EXPECT_NEAR(toMicroseconds(r.api_return), 14.9, 2.0);
}

TEST_F(CcFixture, ThroughputBottleneckedByEncryption)
{
    Stream &s = rt.createStream("s");
    Tick now = 0;
    const int reps = 32;
    for (int i = 0; i < reps; ++i)
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host.base, 32 * MiB, s, now)
                  .api_return;
    Tick done = rt.synchronize(now);
    double rate = achievedRate(std::uint64_t(reps) * 32 * MiB, done);
    // Fig. 2: ~5.8 GB/s.
    EXPECT_NEAR(rate / 1e9, 5.8, 0.4);
}

TEST_F(CcFixture, FourThreadsScaleEncryption)
{
    CcRuntime rt4(platform, 4);
    EXPECT_STREQ(rt4.name(), "CC-4t");
    Stream &s = rt4.createStream("s");
    Tick now = 0;
    const int reps = 16;
    for (int i = 0; i < reps; ++i)
        now = rt4.memcpyAsync(CopyKind::HostToDevice, dev.base,
                              host.base, 32 * MiB, s, now)
                  .api_return;
    Tick done = rt4.synchronize(now);
    double rate = achievedRate(std::uint64_t(reps) * 32 * MiB, done);
    EXPECT_NEAR(rate / 1e9, 4 * 5.8, 2.0);
}

TEST_F(CcFixture, DataMovesEncryptedH2d)
{
    Stream &s = rt.createStream("s");
    std::vector<std::uint8_t> content{4, 5, 6, 7};
    platform.hostMem().write(host.base, content.data(), content.size());
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 4, s, 0);
    EXPECT_EQ(platform.gpu(0).memory().readSample(dev.base, 4),
              content);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
}

TEST_F(CcFixture, DataMovesEncryptedD2h)
{
    Stream &s = rt.createStream("s");
    std::vector<std::uint8_t> content{11, 22, 33};
    platform.gpu(0).memory().write(dev.base, content.data(),
                                     content.size());
    rt.memcpy(CopyKind::DeviceToHost, host.base, dev.base, 3, s, 0);
    EXPECT_EQ(platform.hostMem().readSample(host.base, 3), content);
}

TEST_F(CcFixture, IvCountersStayInLockstepWithDevice)
{
    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int i = 0; i < 10; ++i)
        now = rt.memcpy(CopyKind::HostToDevice, dev.base, host.base,
                        64 * KiB, s, now);
    for (int i = 0; i < 4; ++i)
        now = rt.memcpy(CopyKind::DeviceToHost, host.base, dev.base,
                        64 * KiB, s, now);
    EXPECT_EQ(rt.h2dCounter(), 10u);
    EXPECT_EQ(platform.gpu(0).rxCounter(), 10u);
    EXPECT_EQ(rt.d2hCounter(), 4u);
    EXPECT_EQ(platform.gpu(0).txCounter(), 4u);
}

TEST_F(CcFixture, D2hIsFullySynchronous)
{
    Stream &s = rt.createStream("s");
    auto r = rt.memcpyAsync(CopyKind::DeviceToHost, host.base, dev.base,
                            8 * MiB, s, 0);
    // The call only returns after DMA + CPU decryption.
    EXPECT_EQ(r.api_return, r.complete);
    // 8 MiB at 5.8 GB/s decrypt alone is ~1.4 ms.
    EXPECT_GT(toMicroseconds(r.api_return), 1400);
}

TEST_F(CcFixture, EncryptStatsTracked)
{
    Stream &s = rt.createStream("s");
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 1 * MiB, s, 0);
    rt.memcpy(CopyKind::DeviceToHost, host.base, dev.base, 2 * MiB, s, 0);
    EXPECT_EQ(rt.stats().cpu_encrypt_bytes, 1 * MiB);
    EXPECT_EQ(rt.stats().cpu_decrypt_bytes, 2 * MiB);
}

TEST(CcVsPlain, OverheadGapMatchesPaperShape)
{
    // An IO-heavy phase is ~10x slower under CC (Fig. 2 derived).
    Platform p1, p2;
    PlainRuntime plain(p1);
    CcRuntime cc(p2);
    auto h1 = p1.allocHost(256 * MiB, "h");
    auto d1 = p1.gpu(0).alloc(256 * MiB, "d");
    auto h2 = p2.allocHost(256 * MiB, "h");
    auto d2 = p2.gpu(0).alloc(256 * MiB, "d");
    Stream &s1 = plain.createStream("s");
    Stream &s2 = cc.createStream("s");

    Tick a = 0, b = 0;
    for (int i = 0; i < 8; ++i) {
        a = plain.memcpyAsync(CopyKind::HostToDevice, d1.base, h1.base,
                              32 * MiB, s1, a)
                .api_return;
        b = cc.memcpyAsync(CopyKind::HostToDevice, d2.base, h2.base,
                           32 * MiB, s2, b)
                .api_return;
    }
    Tick plain_done = plain.synchronize(a);
    Tick cc_done = cc.synchronize(b);
    double ratio = double(cc_done) / double(plain_done);
    EXPECT_GT(ratio, 7.0);
    EXPECT_LT(ratio, 12.0);
}
