#include <gtest/gtest.h>

#include "runtime/staged_path.hh"

using namespace pipellm;
using namespace pipellm::runtime;

namespace {

struct StagedFixture : ::testing::Test
{
    sim::EventQueue eq;
    gpu::SystemSpec spec = gpu::SystemSpec::h100();
    sim::BandwidthResource link{eq, "pcie", spec.pcie_h2d_bw,
                                spec.pcie_latency};
};

} // namespace

TEST_F(StagedFixture, SmallTransferUsesOneChunk)
{
    StagedCopyPath path(eq, spec, link, true);
    Tick done = path.transfer(0, 64 * KiB);
    // memcpy at 40 GB/s + DMA at 55 GB/s, sequential for one chunk.
    Tick expect = transferTicks(64 * KiB, spec.cc_copy_bw) +
                  transferTicks(64 * KiB, spec.pcie_h2d_bw) +
                  spec.pcie_latency;
    EXPECT_NEAR(double(done), double(expect), 10.0);
}

TEST_F(StagedFixture, LargeTransferPipelinesToCopyRate)
{
    StagedCopyPath path(eq, spec, link, true);
    const std::uint64_t len = 1 * GiB;
    Tick done = path.transfer(0, len);
    double rate = achievedRate(len, done);
    // Pipelined: bounded by the slower 40 GB/s memcpy stage, within a
    // few percent (first-chunk fill adds a constant).
    EXPECT_GT(rate, 37e9);
    EXPECT_LT(rate, 41e9);
}

TEST_F(StagedFixture, DeviceToHostDirectionAlsoPipelines)
{
    StagedCopyPath path(eq, spec, link, false);
    const std::uint64_t len = 512 * MiB;
    Tick done = path.transfer(0, len);
    double rate = achievedRate(len, done);
    EXPECT_GT(rate, 37e9);
}

TEST_F(StagedFixture, HonorsEarliestStart)
{
    StagedCopyPath path(eq, spec, link, true);
    Tick done0 = path.transfer(0, 1 * MiB);
    Tick base = done0 + 1000000;
    Tick done1 = path.transfer(base, 1 * MiB);
    EXPECT_GT(done1, base);
}

TEST_F(StagedFixture, BackToBackTransfersShareThePool)
{
    StagedCopyPath path(eq, spec, link, true);
    Tick a = path.transfer(0, 256 * MiB);
    Tick b = path.transfer(0, 256 * MiB);
    EXPECT_GT(b, a);
    double rate = achievedRate(512 * MiB, b);
    EXPECT_GT(rate, 37e9);
    EXPECT_LT(rate, 41e9);
}
