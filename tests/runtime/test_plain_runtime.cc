#include <gtest/gtest.h>

#include "runtime/plain_runtime.hh"

using namespace pipellm;
using namespace pipellm::runtime;

namespace {

struct PlainFixture : ::testing::Test
{
    Platform platform;
    PlainRuntime rt{platform};
    mem::Region host = platform.allocHost(256 * MiB, "host");
    mem::Region dev = platform.gpu(0).alloc(256 * MiB, "dev");
};

} // namespace

TEST_F(PlainFixture, ApiReturnsImmediatelyRegardlessOfSize)
{
    Stream &s = rt.createStream("s");
    auto small = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                                host.base, 32, s, 0);
    auto large = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                                host.base, 32 * MiB, s, small.api_return);
    // Fig. 2, CC-disabled: API latency ~constant (~1.4 us).
    Tick small_latency = small.api_return;
    Tick large_latency = large.api_return - small.api_return;
    EXPECT_EQ(small_latency, platform.spec().api_overhead);
    EXPECT_EQ(large_latency, platform.spec().api_overhead);
}

TEST_F(PlainFixture, ThroughputApproachesPcie)
{
    Stream &s = rt.createStream("s");
    Tick now = 0;
    const int reps = 64;
    for (int i = 0; i < reps; ++i)
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             host.base, 32 * MiB, s, now)
                  .api_return;
    Tick done = rt.synchronize(now);
    double rate = achievedRate(std::uint64_t(reps) * 32 * MiB, done);
    EXPECT_NEAR(rate / 1e9, 55.0, 2.0);
}

TEST_F(PlainFixture, DataActuallyMovesH2d)
{
    Stream &s = rt.createStream("s");
    std::vector<std::uint8_t> content{9, 8, 7, 6};
    platform.hostMem().write(host.base, content.data(), content.size());
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 4, s, 0);
    EXPECT_EQ(platform.gpu(0).memory().readSample(dev.base, 4),
              content);
}

TEST_F(PlainFixture, DataActuallyMovesD2h)
{
    Stream &s = rt.createStream("s");
    std::vector<std::uint8_t> content{1, 2, 3, 4, 5};
    platform.gpu(0).memory().write(dev.base, content.data(),
                                     content.size());
    rt.memcpy(CopyKind::DeviceToHost, host.base, dev.base, 5, s, 0);
    EXPECT_EQ(platform.hostMem().readSample(host.base, 5), content);
}

TEST_F(PlainFixture, StreamOrdersCopies)
{
    Stream &s = rt.createStream("s");
    auto a = rt.memcpyAsync(CopyKind::HostToDevice, dev.base, host.base,
                            16 * MiB, s, 0);
    auto b = rt.memcpyAsync(CopyKind::HostToDevice, dev.base, host.base,
                            16 * MiB, s, a.api_return);
    EXPECT_GE(b.complete, a.complete + transferTicks(16 * MiB, 56e9));
}

TEST_F(PlainFixture, StatsAccumulate)
{
    Stream &s = rt.createStream("s");
    rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 1000, s, 0);
    rt.memcpy(CopyKind::DeviceToHost, host.base, dev.base, 500, s, 0);
    EXPECT_EQ(rt.stats().h2d_calls, 1u);
    EXPECT_EQ(rt.stats().h2d_bytes, 1000u);
    EXPECT_EQ(rt.stats().d2h_calls, 1u);
    EXPECT_EQ(rt.stats().d2h_bytes, 500u);
    EXPECT_EQ(rt.stats().cpu_encrypt_bytes, 0u);
}

TEST_F(PlainFixture, KernelLaunchOrdersBehindStream)
{
    Stream &s = rt.createStream("s");
    auto copy = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                               host.base, 32 * MiB, s, 0);
    gpu::KernelDesc k{"step", 4e11, 0}; // ~1 ms
    auto kr = rt.launchKernel(k, s, copy.api_return);
    EXPECT_GE(kr.complete, copy.complete);
    EXPECT_LT(kr.api_return, copy.complete);
    EXPECT_EQ(rt.stats().kernels, 1u);
}

TEST_F(PlainFixture, D2hWaitsForStreamOrder)
{
    Stream &s = rt.createStream("s");
    // A large H2D occupies the stream; a following D2H must start
    // after it completes.
    auto a = rt.memcpyAsync(CopyKind::HostToDevice, dev.base, host.base,
                            64 * MiB, s, 0);
    auto b = rt.memcpyAsync(CopyKind::DeviceToHost, host.base, dev.base,
                            1 * MiB, s, a.api_return);
    EXPECT_GT(b.complete, a.complete);
}

TEST_F(PlainFixture, TwoStreamsOverlapOnDistinctDirections)
{
    Stream &up = rt.createStream("up");
    Stream &down = rt.createStream("down");
    auto a = rt.memcpyAsync(CopyKind::HostToDevice, dev.base, host.base,
                            64 * MiB, up, 0);
    auto b = rt.memcpyAsync(CopyKind::DeviceToHost, host.base, dev.base,
                            64 * MiB, down, a.api_return);
    // Opposite PCIe directions are independent resources: the D2H
    // finishes long before a serialized schedule would allow.
    EXPECT_LT(b.complete, a.complete + transferTicks(32 * MiB, 55e9));
}
