/**
 * @file
 * Builder equivalence: a cluster materialized from a committed
 * .scenario file produces a bit-identical ClusterResult to the
 * hand-rolled construction the legacy bench mains performed. This is
 * the refactor's safety net — if the builder drifts from the legacy
 * recipe (different preset, unit conversion, seed threading), the
 * hexfloat fingerprints diverge long before anyone diffs a CSV.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "scenario/builder.hh"
#include "scenario/spec.hh"
#include "serving/cluster.hh"
#include "tests/serving/cluster_fingerprint.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::scenario;
using serving_test::fingerprint;

namespace {

ScenarioSpec
load(const char *path)
{
    auto parsed = loadScenario(path);
    PIPELLM_ASSERT(parsed.ok(), "cannot load ", path);
    return parsed.spec;
}

/** The legacy bench_cluster_scale/bench_faults construction. */
serving::ClusterResult
legacyRun(SystemMode mode, unsigned n_devices, std::size_t n_requests,
          const runtime::HostResources &host,
          const fault::FaultPlan *plan)
{
    crypto::ChannelConfig channel;
    channel.sample_limit = 512;
    runtime::Platform platform(gpu::SystemSpec::h100(), channel,
                               n_devices, host);
    if (plan)
        platform.armFaults(*plan);

    serving::ClusterConfig cfg;
    cfg.engine.model = llm::ModelConfig::opt30b();
    cfg.engine.parallel_sampling = 6;
    cfg.policy = serving::RoutePolicy::RoundRobin;
    cfg.threads = 1;

    std::uint64_t block_bytes =
        std::uint64_t(cfg.engine.block_tokens) *
        cfg.engine.model.kvBytesPerToken();
    auto pipe_cfg = kvPipeConfig(block_bytes);
    if (host.shared_crypto_lanes > 0)
        pipe_cfg.max_lane_lead = milliseconds(10);

    serving::ClusterRouter router(
        platform,
        [mode, &pipe_cfg](runtime::Platform &p,
                          runtime::DeviceId device) {
            return makeRuntime(mode, p, pipe_cfg, device);
        },
        cfg);

    auto profile = trace::DatasetProfile::shareGpt();
    profile.max_len = 1024;
    trace::TraceGenerator gen(profile, 42);
    return router.run(gen.poisson(n_requests, 0.8 * n_devices));
}

} // namespace

TEST(ScenarioBuilder, ClusterScaleMatchesHandBuiltPrivateHost)
{
    auto spec = load(PIPELLM_SCENARIO_DIR "/cluster_scale.scenario");
    ScenarioBuilder builder(spec);

    const unsigned n = 2;
    std::size_t requests = spec.requestsPerDevice(true) * n;
    auto hosts = spec.hostAxis();
    ASSERT_EQ(hosts[0].name, "private");

    auto built = builder.build(SystemMode::Cc, n, hosts[0], 0, 1);
    auto spec_result =
        built.router->run(builder.poissonTrace(requests, n));
    auto legacy = legacyRun(SystemMode::Cc, n, requests,
                            runtime::HostResources{}, nullptr);
    EXPECT_EQ(fingerprint(spec_result), fingerprint(legacy));
}

TEST(ScenarioBuilder, ClusterScaleMatchesHandBuiltSharedHost)
{
    auto spec = load(PIPELLM_SCENARIO_DIR "/cluster_scale.scenario");
    ScenarioBuilder builder(spec);

    auto hosts = spec.hostAxis();
    ASSERT_EQ(hosts.size(), 2u);
    ASSERT_EQ(hosts[1].name, "shared");

    const unsigned n = 2;
    std::size_t requests = spec.requestsPerDevice(true) * n;

    runtime::HostResources shared;
    shared.shared_crypto_lanes = 2;
    shared.bridge_bw = 160e9;
    ASSERT_EQ(builder.hostResources(hosts[1]).bridge_bw,
              shared.bridge_bw);

    // Pipe exercises the shared-host lane-lead override.
    auto built = builder.build(SystemMode::Pipe, n, hosts[1], 0, 1);
    auto spec_result =
        built.router->run(builder.poissonTrace(requests, n));
    auto legacy =
        legacyRun(SystemMode::Pipe, n, requests, shared, nullptr);
    EXPECT_EQ(fingerprint(spec_result), fingerprint(legacy));
}

TEST(ScenarioBuilder, FaultSweepMatchesHandBuiltArmedPlan)
{
    auto spec = load(PIPELLM_SCENARIO_DIR "/faults.scenario");
    ScenarioBuilder builder(spec);

    const unsigned n = 2;
    const double scale = 2;
    std::size_t requests = spec.requestsPerDevice(true) * n;

    // The legacy basePlan(scale) from bench_faults.
    fault::FaultPlan plan;
    plan.seed = 1009;
    plan.tag_corruption_rate = 0.02 * scale;
    plan.copy_stall_rate = 0.01 * scale;
    plan.lane_fault_rate = 0.01 * scale;
    plan.replica_crash_rate = 0.02 * scale;
    plan.replica_restart_rate = 0.1 * scale;

    auto from_spec = builder.scaledPlan(scale);
    EXPECT_EQ(from_spec.seed, plan.seed);
    EXPECT_EQ(from_spec.tag_corruption_rate, plan.tag_corruption_rate);
    EXPECT_EQ(from_spec.replica_crash_rate, plan.replica_crash_rate);
    EXPECT_EQ(from_spec.replica_restart_rate,
              plan.replica_restart_rate);

    auto built = builder.build(SystemMode::Cc, n, HostVariantSpec{},
                               scale, 1);
    auto spec_result =
        built.router->run(builder.poissonTrace(requests, n));
    auto legacy = legacyRun(SystemMode::Cc, n, requests,
                            runtime::HostResources{}, &plan);
    EXPECT_EQ(fingerprint(spec_result), fingerprint(legacy));
}

TEST(ScenarioBuilder, ScaledPlanConvertsHumanUnits)
{
    auto parsed = parseScenario("[scenario]\n"
                                "name = f\n"
                                "kind = fault_sweep\n"
                                "[cluster]\n"
                                "devices = 2\n"
                                "modes = Cc\n"
                                "[faults]\n"
                                "seed = 7\n"
                                "scales = 0 1\n"
                                "spdm_rekey_ms = 25\n"
                                "warmup_probe_kib = 64\n"
                                "storm_start_s = 3\n"
                                "storm_end_s = 9\n"
                                "storm_multiplier = 4\n");
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(parsed.spec.validate().empty());
    ScenarioBuilder builder(parsed.spec);

    auto plan = builder.scaledPlan(1);
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_EQ(plan.spdm_rekey_ticks, milliseconds(25));
    EXPECT_EQ(plan.warmup_probe_bytes, 64 * KiB);
    EXPECT_EQ(plan.storm_start, seconds(3));
    EXPECT_EQ(plan.storm_end, seconds(9));
    EXPECT_EQ(plan.storm_multiplier, 4.0);
}

TEST(ScenarioBuilder, CrashDevicesListingAllIdsMatchesEmptyList)
{
    // The empty list means "any device may crash"; naming every id
    // must consume the identical draw sequence and reproduce the
    // bit-identical run.
    const std::string base = "[scenario]\n"
                             "name = f\n"
                             "kind = fault_sweep\n"
                             "[cluster]\n"
                             "devices = 2\n"
                             "modes = Cc\n"
                             "[engine]\n"
                             "model = opt13b\n"
                             "[trace]\n"
                             "requests_per_device = 8\n"
                             "[faults]\n"
                             "scales = 0 1\n"
                             "replica_crash_rate = 0.5\n"
                             "replica_restart_rate = 0.5\n";
    auto all = parseScenario(base);
    auto named = parseScenario(base + "crash_devices = 0 1\n");
    ASSERT_TRUE(all.ok());
    ASSERT_TRUE(named.ok());
    ASSERT_TRUE(named.spec.validate().empty());

    auto run = [](const ScenarioSpec &spec) {
        ScenarioBuilder builder(spec);
        auto built = builder.build(SystemMode::Cc, 2,
                                   HostVariantSpec{}, 1, 1);
        return fingerprint(
            built.router->run(builder.poissonTrace(16, 2)));
    };
    EXPECT_EQ(run(all.spec), run(named.spec));
}

TEST(ScenarioBuilder, CrashDevicesRestrictsWhichReplicasDie)
{
    auto parsed = parseScenario("[scenario]\n"
                                "name = f\n"
                                "kind = fault_sweep\n"
                                "[cluster]\n"
                                "devices = 2\n"
                                "modes = Cc\n"
                                "[engine]\n"
                                "model = opt13b\n"
                                "[trace]\n"
                                "requests_per_device = 8\n"
                                "[faults]\n"
                                "scales = 0 1\n"
                                "replica_crash_rate = 2\n"
                                "replica_restart_rate = 0.01\n"
                                "crash_devices = 0\n");
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(parsed.spec.validate().empty());
    ScenarioBuilder builder(parsed.spec);

    auto built =
        builder.build(SystemMode::Cc, 2, HostVariantSpec{}, 1, 1);
    auto r = built.router->run(builder.poissonTrace(16, 2));

    // At 2 crashes/s per replica the unrestricted plan would kill
    // both replicas almost immediately; the filter must keep every
    // crash on device 0.
    ASSERT_EQ(r.replicas.size(), 2u);
    EXPECT_GT(r.replicas[0].crash_count, 0u);
    EXPECT_EQ(r.replicas[1].crash_count, 0u);
}

TEST(ScenarioBuilder, SoakPlanMirrorsScenario)
{
    auto spec = load(PIPELLM_SCENARIO_DIR "/soak.scenario");
    ScenarioBuilder builder(spec);

    auto plan = builder.soakPlan(/*quick=*/true);
    EXPECT_EQ(plan.n_devices, spec.cluster.devices.front());
    EXPECT_EQ(plan.use_pipellm,
              spec.cluster.modes.front() == SystemMode::Pipe);
    ASSERT_EQ(plan.phases.size(), spec.soak.phases.size());
    for (std::size_t i = 0; i < plan.phases.size(); ++i) {
        EXPECT_EQ(plan.phases[i].requests,
                  spec.soak.phases[i].requests_quick);
        EXPECT_EQ(plan.phases[i].requests_per_sec,
                  spec.soak.phases[i].rate_per_device *
                      plan.n_devices);
    }
    EXPECT_EQ(plan.admission.shed_enabled, spec.admission.shed);
    EXPECT_EQ(plan.goodput_window, seconds(spec.soak.goodput_window_s));

    auto overload = builder.overloadPlan(/*quick=*/true, 4.0,
                                         /*shed=*/false);
    EXPECT_FALSE(overload.faults.armed());
    EXPECT_FALSE(overload.admission.shed_enabled);
    ASSERT_EQ(overload.phases.size(), 1u);
    EXPECT_EQ(overload.phases[0].requests_per_sec,
              4.0 * spec.overload.rate_per_device * plan.n_devices);
}
