/**
 * @file
 * End-to-end runScenario smoke over every committed .scenario file —
 * exactly what `pipellm_run --quick` executes in CI — plus the
 * byte-identity pin: the quick cluster_scale sweep must reproduce the
 * committed bench_results/cluster_scale.csv bit for bit (the
 * committed file IS the quick run's output; see EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "scenario/runner.hh"
#include "scenario/spec.hh"

using namespace pipellm;
using namespace pipellm::scenario;

namespace {

/** Repo root, derived from the committed scenario directory. */
const std::filesystem::path repoRoot =
    std::filesystem::path(PIPELLM_SCENARIO_DIR).parent_path()
        .parent_path();

ScenarioSpec
load(const std::string &name)
{
    auto parsed = loadScenario(std::string(PIPELLM_SCENARIO_DIR) +
                               "/" + name + ".scenario");
    PIPELLM_ASSERT(parsed.ok(), "cannot load scenario ", name);
    PIPELLM_ASSERT(parsed.spec.validate().empty(),
                   "scenario ", name, " fails validation");
    return parsed.spec;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** A fresh output directory per test, cleaned up after. */
struct TempOutDir
{
    std::filesystem::path dir;

    explicit TempOutDir(const char *tag)
        : dir(std::filesystem::path("scenario_runner_out") / tag)
    {
        std::filesystem::remove_all(dir);
    }
    // Remove only this test's tagged directory: ctest runs the tests
    // in this suite as parallel processes sharing a cwd, so removing
    // the common parent would delete a sibling's CSVs mid-test.
    ~TempOutDir() { std::filesystem::remove_all(dir); }
};

RunOptions
quickOpts(const TempOutDir &out)
{
    RunOptions opts;
    opts.quick = true;
    opts.out_dir = out.dir.string();
    return opts;
}

} // namespace

TEST(ScenarioRunner, QuickClusterScaleReproducesCommittedCsv)
{
    TempOutDir out("cluster_scale");
    auto summary = runScenario(load("cluster_scale"), quickOpts(out));

    // 2 hosts x 3 modes x 2 device counts, one row per replica.
    EXPECT_EQ(summary.runs, 12u);
    EXPECT_EQ(summary.rows, 18u);
    ASSERT_EQ(summary.csv_paths.size(), 1u);

    auto produced = slurp(summary.csv_paths.front());
    auto committed =
        slurp(repoRoot / "bench_results" / "cluster_scale.csv");
    EXPECT_EQ(produced, committed);
}

TEST(ScenarioRunner, QuickFaultSweepWritesRows)
{
    TempOutDir out("faults");
    auto summary = runScenario(load("faults"), quickOpts(out));

    // 2 modes x 2 device counts x 2 scales, one row per replica.
    EXPECT_EQ(summary.runs, 8u);
    EXPECT_EQ(summary.rows, 12u);
    ASSERT_EQ(summary.csv_paths.size(), 1u);
    EXPECT_TRUE(std::filesystem::exists(summary.csv_paths.front()));

    // The header row is the frozen 31-column prefix plus the appended
    // recovery metrics.
    std::istringstream in(slurp(summary.csv_paths.front()));
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("replica_lost_tokens"), std::string::npos);
    EXPECT_NE(header.find("goodput_dip_depth"), std::string::npos);
}

TEST(ScenarioRunner, QuickSoakWritesAllThreeCsvs)
{
    TempOutDir out("soak");
    auto summary = runScenario(load("soak"), quickOpts(out));

    // One soak run + 2 shed settings x 2 quick multipliers.
    EXPECT_EQ(summary.runs, 5u);
    ASSERT_EQ(summary.csv_paths.size(), 3u);
    for (const auto &path : summary.csv_paths)
        EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_NE(summary.csv_paths[1].find("soak_disturbances.csv"),
              std::string::npos);
    EXPECT_NE(summary.csv_paths[2].find("soak_overload.csv"),
              std::string::npos);
}

TEST(ScenarioRunner, ThreadsOverrideNeverChangesTheCsv)
{
    TempOutDir out("threads");
    auto spec = load("cluster_scale");

    auto opts_one = quickOpts(out);
    opts_one.out_dir = (out.dir / "one").string();
    opts_one.threads = 1;
    auto one = runScenario(spec, opts_one);

    auto opts_many = quickOpts(out);
    opts_many.out_dir = (out.dir / "many").string();
    opts_many.threads = 8;
    auto many = runScenario(spec, opts_many);

    ASSERT_EQ(one.csv_paths.size(), 1u);
    ASSERT_EQ(many.csv_paths.size(), 1u);
    EXPECT_EQ(slurp(one.csv_paths.front()),
              slurp(many.csv_paths.front()));
}

TEST(ScenarioRunner, ProgressSinkReceivesSweepNarration)
{
    TempOutDir out("progress");
    auto opts = quickOpts(out);
    std::vector<std::string> lines;
    opts.progress = [&](const std::string &line) {
        lines.push_back(line);
    };
    runScenario(load("cluster_scale"), opts);

    ASSERT_FALSE(lines.empty());
    bool saw_mode = false;
    for (const auto &line : lines)
        saw_mode = saw_mode || line.find("PipeLLM") != std::string::npos;
    EXPECT_TRUE(saw_mode);
}
