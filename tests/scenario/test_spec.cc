/**
 * @file
 * Scenario text format: parse/dump round-trips, error collection, and
 * the actionable-validation contract (ISSUE satellite: unknown keys,
 * out-of-range values and fault plans naming absent devices each
 * produce a message that tells the author what to fix).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/spec.hh"

using namespace pipellm;
using namespace pipellm::scenario;

namespace {

/** The scenarios committed under bench/scenarios/. */
const char *const committedScenarios[] = {
    PIPELLM_SCENARIO_DIR "/cluster_scale.scenario",
    PIPELLM_SCENARIO_DIR "/faults.scenario",
    PIPELLM_SCENARIO_DIR "/soak.scenario",
};

/** A minimal valid cluster_scale scenario to mutate in error tests. */
std::string
minimalText()
{
    return "[scenario]\n"
           "name = mini\n"
           "kind = cluster_scale\n"
           "[cluster]\n"
           "devices = 1 2\n"
           "modes = Cc\n";
}

bool
anyContains(const std::vector<std::string> &messages,
            const std::string &needle)
{
    for (const auto &m : messages) {
        if (m.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

TEST(ScenarioSpec, MinimalTextParsesAndValidates)
{
    auto parsed = parseScenario(minimalText());
    ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
    EXPECT_EQ(parsed.spec.name, "mini");
    EXPECT_EQ(parsed.spec.kind, ScenarioKind::ClusterScale);
    EXPECT_EQ(parsed.spec.csv, "mini.csv"); // defaulted from name
    EXPECT_EQ(parsed.spec.cluster.devices,
              (std::vector<unsigned>{1, 2}));
    EXPECT_TRUE(parsed.spec.validate().empty());
}

TEST(ScenarioSpec, CommittedScenariosLoadValidateAndRoundTrip)
{
    for (const char *path : committedScenarios) {
        SCOPED_TRACE(path);
        auto parsed = loadScenario(path);
        ASSERT_TRUE(parsed.ok())
            << (parsed.errors.empty() ? "" : parsed.errors.front());
        EXPECT_TRUE(parsed.spec.validate().empty());

        // dump -> parse must reproduce the exact spec (doubles are
        // printed shortest-round-trip).
        auto again = parseScenario(dumpScenario(parsed.spec), path);
        ASSERT_TRUE(again.ok())
            << (again.errors.empty() ? "" : again.errors.front());
        EXPECT_EQ(parsed.spec, again.spec);
        // And the canonical form is a fixed point.
        EXPECT_EQ(dumpScenario(parsed.spec), dumpScenario(again.spec));
    }
}

TEST(ScenarioSpec, UnknownKeysAreRejectedWithLocation)
{
    auto parsed =
        parseScenario(minimalText() + "tpyo_threads = 4\n", "mini");
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.errors, "unknown key"));
    EXPECT_TRUE(anyContains(parsed.errors, "tpyo_threads"));
    EXPECT_TRUE(anyContains(parsed.errors, "mini:7"));
}

TEST(ScenarioSpec, UnknownSectionIsRejected)
{
    auto parsed = parseScenario(minimalText() + "[tracee]\n");
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.errors, "unknown section"));
}

TEST(ScenarioSpec, AllParseErrorsAreCollectedNotJustTheFirst)
{
    auto parsed = parseScenario("[scenario]\n"
                                "bogus_one = 1\n"
                                "bogus_two = 2\n"
                                "name = x\n");
    ASSERT_EQ(parsed.errors.size(), 2u);
}

TEST(ScenarioSpec, ThreadsBeyondLargestReplicaCountIsRejected)
{
    auto parsed =
        parseScenario(minimalText() + "threads = 8\n");
    ASSERT_TRUE(parsed.ok());
    auto problems = parsed.spec.validate();
    EXPECT_TRUE(anyContains(problems, "threads (8)"));
    EXPECT_TRUE(anyContains(problems, "largest replica count (2)"));
}

TEST(ScenarioSpec, NegativeBridgeBandwidthIsRejected)
{
    auto parsed = parseScenario(minimalText() +
                                "[host shared]\n"
                                "bridge_gbps = -1\n");
    ASSERT_TRUE(parsed.ok());
    auto problems = parsed.spec.validate();
    EXPECT_TRUE(anyContains(problems, "bridge_gbps is negative"));
}

TEST(ScenarioSpec, FaultPlanNamingAbsentDeviceIsRejected)
{
    auto parsed = parseScenario("[scenario]\n"
                                "name = mini\n"
                                "kind = fault_sweep\n"
                                "[cluster]\n"
                                "devices = 1 2\n"
                                "modes = Cc\n"
                                "[faults]\n"
                                "scales = 0 1\n"
                                "crash_devices = 5\n");
    ASSERT_TRUE(parsed.ok());
    auto problems = parsed.spec.validate();
    EXPECT_TRUE(anyContains(problems, "crash_devices names device 5"));
    EXPECT_TRUE(anyContains(problems, "ids 0..1"));
}

TEST(ScenarioSpec, KindSectionMismatchesAreRejected)
{
    // cluster_scale scenarios must not carry a fault plan.
    auto parsed = parseScenario(minimalText() +
                                "[faults]\n"
                                "tag_corruption_rate = 0.1\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.spec.validate(),
                            "does not inject faults"));

    // soak scenarios need phases and exactly one served system.
    auto soak = parseScenario("[scenario]\n"
                              "name = s\n"
                              "kind = soak\n"
                              "[cluster]\n"
                              "devices = 2\n"
                              "modes = Plain\n");
    ASSERT_TRUE(soak.ok());
    auto problems = soak.spec.validate();
    EXPECT_TRUE(anyContains(problems, "at least one [soak] phase"));
    EXPECT_TRUE(anyContains(problems, "exactly one of Cc or Pipe"));
}

TEST(ScenarioSpec, OutOfRangeProbabilityIsRejected)
{
    auto parsed = parseScenario("[scenario]\n"
                                "name = f\n"
                                "kind = fault_sweep\n"
                                "[cluster]\n"
                                "devices = 1\n"
                                "modes = Cc\n"
                                "[faults]\n"
                                "scales = 0 1\n"
                                "tag_corruption_rate = 1.5\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.spec.validate(),
                            "not a probability"));
}

TEST(ScenarioSpec, QuickAxesFallBackToFullAxes)
{
    auto parsed = parseScenario(minimalText());
    ASSERT_TRUE(parsed.ok());
    const auto &spec = parsed.spec;
    // No *_quick keys: quick runs use the full axes.
    EXPECT_EQ(spec.deviceAxis(true), spec.deviceAxis(false));
    EXPECT_EQ(spec.requestsPerDevice(true),
              spec.requestsPerDevice(false));

    auto quick = parseScenario(minimalText() +
                               "devices_quick = 1\n"
                               "[trace]\n"
                               "requests_per_device = 48\n"
                               "requests_per_device_quick = 8\n");
    ASSERT_TRUE(quick.ok());
    EXPECT_EQ(quick.spec.deviceAxis(true),
              (std::vector<unsigned>{1}));
    EXPECT_EQ(quick.spec.requestsPerDevice(true), 8u);
    EXPECT_EQ(quick.spec.requestsPerDevice(false), 48u);
}

TEST(ScenarioSpec, HostAxisDefaultsToOnePrivateVariant)
{
    auto parsed = parseScenario(minimalText());
    ASSERT_TRUE(parsed.ok());
    auto hosts = parsed.spec.hostAxis();
    ASSERT_EQ(hosts.size(), 1u);
    EXPECT_EQ(hosts[0], HostVariantSpec{});
    EXPECT_EQ(hosts[0].name, "private");
}

TEST(ScenarioSpec, SystemModeNamesRoundTrip)
{
    for (SystemMode m : {SystemMode::Plain, SystemMode::Cc,
                         SystemMode::Cc4t, SystemMode::Pipe,
                         SystemMode::Pipe0}) {
        auto back = parseSystemMode(keyOf(m));
        ASSERT_TRUE(back.has_value()) << keyOf(m);
        EXPECT_EQ(*back, m);
    }
    EXPECT_FALSE(parseSystemMode("NotASystem").has_value());
    EXPECT_STREQ(toString(SystemMode::Plain), "w/o CC");
    EXPECT_STREQ(toString(SystemMode::Pipe), "PipeLLM");
}
