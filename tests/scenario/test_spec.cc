/**
 * @file
 * Scenario text format: parse/dump round-trips, error collection, and
 * the actionable-validation contract (ISSUE satellite: unknown keys,
 * out-of-range values and fault plans naming absent devices each
 * produce a message that tells the author what to fix).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/spec.hh"

using namespace pipellm;
using namespace pipellm::scenario;

namespace {

/** The scenarios committed under bench/scenarios/. */
const char *const committedScenarios[] = {
    PIPELLM_SCENARIO_DIR "/cluster_scale.scenario",
    PIPELLM_SCENARIO_DIR "/disagg.scenario",
    PIPELLM_SCENARIO_DIR "/faults.scenario",
    PIPELLM_SCENARIO_DIR "/soak.scenario",
};

/** A minimal valid cluster_scale scenario to mutate in error tests. */
std::string
minimalText()
{
    return "[scenario]\n"
           "name = mini\n"
           "kind = cluster_scale\n"
           "[cluster]\n"
           "devices = 1 2\n"
           "modes = Cc\n";
}

bool
anyContains(const std::vector<std::string> &messages,
            const std::string &needle)
{
    for (const auto &m : messages) {
        if (m.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

TEST(ScenarioSpec, MinimalTextParsesAndValidates)
{
    auto parsed = parseScenario(minimalText());
    ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
    EXPECT_EQ(parsed.spec.name, "mini");
    EXPECT_EQ(parsed.spec.kind, ScenarioKind::ClusterScale);
    EXPECT_EQ(parsed.spec.csv, "mini.csv"); // defaulted from name
    EXPECT_EQ(parsed.spec.cluster.devices,
              (std::vector<unsigned>{1, 2}));
    EXPECT_TRUE(parsed.spec.validate().empty());
}

TEST(ScenarioSpec, CommittedScenariosLoadValidateAndRoundTrip)
{
    for (const char *path : committedScenarios) {
        SCOPED_TRACE(path);
        auto parsed = loadScenario(path);
        ASSERT_TRUE(parsed.ok())
            << (parsed.errors.empty() ? "" : parsed.errors.front());
        EXPECT_TRUE(parsed.spec.validate().empty());

        // dump -> parse must reproduce the exact spec (doubles are
        // printed shortest-round-trip).
        auto again = parseScenario(dumpScenario(parsed.spec), path);
        ASSERT_TRUE(again.ok())
            << (again.errors.empty() ? "" : again.errors.front());
        EXPECT_EQ(parsed.spec, again.spec);
        // And the canonical form is a fixed point.
        EXPECT_EQ(dumpScenario(parsed.spec), dumpScenario(again.spec));
    }
}

TEST(ScenarioSpec, UnknownKeysAreRejectedWithLocation)
{
    auto parsed =
        parseScenario(minimalText() + "tpyo_threads = 4\n", "mini");
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.errors, "unknown key"));
    EXPECT_TRUE(anyContains(parsed.errors, "tpyo_threads"));
    EXPECT_TRUE(anyContains(parsed.errors, "mini:7"));
}

TEST(ScenarioSpec, UnknownSectionIsRejected)
{
    auto parsed = parseScenario(minimalText() + "[tracee]\n");
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.errors, "unknown section"));
}

TEST(ScenarioSpec, AllParseErrorsAreCollectedNotJustTheFirst)
{
    auto parsed = parseScenario("[scenario]\n"
                                "bogus_one = 1\n"
                                "bogus_two = 2\n"
                                "name = x\n");
    ASSERT_EQ(parsed.errors.size(), 2u);
}

TEST(ScenarioSpec, ThreadsBeyondLargestReplicaCountIsRejected)
{
    auto parsed =
        parseScenario(minimalText() + "threads = 8\n");
    ASSERT_TRUE(parsed.ok());
    auto problems = parsed.spec.validate();
    EXPECT_TRUE(anyContains(problems, "threads (8)"));
    EXPECT_TRUE(anyContains(problems, "largest replica count (2)"));
}

TEST(ScenarioSpec, NegativeBridgeBandwidthIsRejected)
{
    auto parsed = parseScenario(minimalText() +
                                "[host shared]\n"
                                "bridge_gbps = -1\n");
    ASSERT_TRUE(parsed.ok());
    auto problems = parsed.spec.validate();
    EXPECT_TRUE(anyContains(problems, "bridge_gbps is negative"));
}

TEST(ScenarioSpec, FaultPlanNamingAbsentDeviceIsRejected)
{
    auto parsed = parseScenario("[scenario]\n"
                                "name = mini\n"
                                "kind = fault_sweep\n"
                                "[cluster]\n"
                                "devices = 1 2\n"
                                "modes = Cc\n"
                                "[faults]\n"
                                "scales = 0 1\n"
                                "crash_devices = 5\n");
    ASSERT_TRUE(parsed.ok());
    auto problems = parsed.spec.validate();
    EXPECT_TRUE(anyContains(problems, "crash_devices names device 5"));
    EXPECT_TRUE(anyContains(problems, "ids 0..1"));
}

TEST(ScenarioSpec, KindSectionMismatchesAreRejected)
{
    // cluster_scale scenarios must not carry a fault plan.
    auto parsed = parseScenario(minimalText() +
                                "[faults]\n"
                                "tag_corruption_rate = 0.1\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.spec.validate(),
                            "does not inject faults"));

    // soak scenarios need phases and exactly one served system.
    auto soak = parseScenario("[scenario]\n"
                              "name = s\n"
                              "kind = soak\n"
                              "[cluster]\n"
                              "devices = 2\n"
                              "modes = Plain\n");
    ASSERT_TRUE(soak.ok());
    auto problems = soak.spec.validate();
    EXPECT_TRUE(anyContains(problems, "at least one [soak] phase"));
    EXPECT_TRUE(anyContains(problems, "exactly one of Cc or Pipe"));
}

TEST(ScenarioSpec, OutOfRangeProbabilityIsRejected)
{
    auto parsed = parseScenario("[scenario]\n"
                                "name = f\n"
                                "kind = fault_sweep\n"
                                "[cluster]\n"
                                "devices = 1\n"
                                "modes = Cc\n"
                                "[faults]\n"
                                "scales = 0 1\n"
                                "tag_corruption_rate = 1.5\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.spec.validate(),
                            "not a probability"));
}

TEST(ScenarioSpec, QuickAxesFallBackToFullAxes)
{
    auto parsed = parseScenario(minimalText());
    ASSERT_TRUE(parsed.ok());
    const auto &spec = parsed.spec;
    // No *_quick keys: quick runs use the full axes.
    EXPECT_EQ(spec.deviceAxis(true), spec.deviceAxis(false));
    EXPECT_EQ(spec.requestsPerDevice(true),
              spec.requestsPerDevice(false));

    auto quick = parseScenario(minimalText() +
                               "devices_quick = 1\n"
                               "[trace]\n"
                               "requests_per_device = 48\n"
                               "requests_per_device_quick = 8\n");
    ASSERT_TRUE(quick.ok());
    EXPECT_EQ(quick.spec.deviceAxis(true),
              (std::vector<unsigned>{1}));
    EXPECT_EQ(quick.spec.requestsPerDevice(true), 8u);
    EXPECT_EQ(quick.spec.requestsPerDevice(false), 48u);
}

TEST(ScenarioSpec, HostAxisDefaultsToOnePrivateVariant)
{
    auto parsed = parseScenario(minimalText());
    ASSERT_TRUE(parsed.ok());
    auto hosts = parsed.spec.hostAxis();
    ASSERT_EQ(hosts.size(), 1u);
    EXPECT_EQ(hosts[0], HostVariantSpec{});
    EXPECT_EQ(hosts[0].name, "private");
}

TEST(ScenarioSpec, SystemModeNamesRoundTrip)
{
    for (SystemMode m : {SystemMode::Plain, SystemMode::Cc,
                         SystemMode::Cc4t, SystemMode::Pipe,
                         SystemMode::Pipe0}) {
        auto back = parseSystemMode(keyOf(m));
        ASSERT_TRUE(back.has_value()) << keyOf(m);
        EXPECT_EQ(*back, m);
    }
    EXPECT_FALSE(parseSystemMode("NotASystem").has_value());
    EXPECT_STREQ(toString(SystemMode::Plain), "w/o CC");
    EXPECT_STREQ(toString(SystemMode::Pipe), "PipeLLM");
}

TEST(ScenarioSpec, KindRegistryCoversEveryKindWithUniqueNames)
{
    const auto &kinds = scenarioKinds();
    ASSERT_EQ(kinds.size(), 4u);
    for (const auto &info : kinds) {
        // The registry name is the `kind =` spelling.
        auto parsed = parseScenario(std::string("[scenario]\n"
                                                "name = k\n"
                                                "kind = ") +
                                    info.name + "\n");
        ASSERT_TRUE(parsed.ok()) << info.name;
        EXPECT_EQ(parsed.spec.kind, info.kind);
        EXPECT_STREQ(toString(info.kind), info.name);
        EXPECT_NE(std::string(info.summary), "");
    }
}

TEST(ScenarioSpec, UnknownKindSuggestsTheNearestValidKind)
{
    EXPECT_EQ(nearestScenarioKind("disag"), "disagg");
    EXPECT_EQ(nearestScenarioKind("fault_swep"), "fault_sweep");
    EXPECT_EQ(nearestScenarioKind("sok"), "soak");

    auto parsed = parseScenario("[scenario]\n"
                                "name = x\n"
                                "kind = cluster_scal\n",
                                "x");
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.errors, "unknown kind"));
    EXPECT_TRUE(anyContains(parsed.errors,
                            "did you mean 'cluster_scale'?"));
}

TEST(ScenarioSpec, EveryFieldSurvivesTheDumpRoundTrip)
{
    // One text exercising every section and key — crash_devices and
    // the disagg/migration fields included — so a field dropped from
    // dumpScenario() fails here, not in a sweep.
    auto parsed = parseScenario("[scenario]\n"
                                "name = everything\n"
                                "kind = disagg\n"
                                "csv = everything.csv\n"
                                "[cluster]\n"
                                "devices = 2 4\n"
                                "devices_quick = 2\n"
                                "modes = Cc Pipe\n"
                                "policy = least_loaded\n"
                                "threads = 2\n"
                                "[device]\n"
                                "channel_sample_limit = 128\n"
                                "[engine]\n"
                                "model = opt13b\n"
                                "parallel_sampling = 4\n"
                                "[trace]\n"
                                "dataset = alpaca\n"
                                "max_len = 512\n"
                                "seed = 7\n"
                                "rate_per_device = 1.25\n"
                                "requests_per_device = 20\n"
                                "requests_per_device_quick = 10\n"
                                "[disagg]\n"
                                "prefill_replicas = 1\n"
                                "chunk_kib = 512\n"
                                "pipeline_depth = 8\n"
                                "[faults]\n"
                                "seed = 99\n"
                                "replica_restart_rate = 0.25\n"
                                "migration_tag_rate = 0.001\n"
                                "migration_stall_rate = 0.002\n"
                                "dest_crash_rate = 0.0005\n"
                                "migration_stall_timeout_us = 120\n"
                                "max_migration_attempts = 6\n"
                                "crash_devices = 1 3\n"
                                "scales = 0 1 2\n"
                                "scales_quick = 0 1\n");
    ASSERT_TRUE(parsed.ok())
        << (parsed.errors.empty() ? "" : parsed.errors.front());
    ASSERT_TRUE(parsed.spec.validate().empty())
        << parsed.spec.validate().front();

    const auto &spec = parsed.spec;
    EXPECT_EQ(spec.disagg.prefill_replicas, 1u);
    EXPECT_EQ(spec.disagg.chunk_kib, 512.0);
    EXPECT_EQ(spec.disagg.pipeline_depth, 8u);
    EXPECT_EQ(spec.faults.migration_stall_timeout_us, 120.0);
    EXPECT_EQ(spec.faults.max_migration_attempts, 6u);
    EXPECT_EQ(spec.faults.crash_devices,
              (std::vector<unsigned>{1, 3}));

    auto again = parseScenario(dumpScenario(spec), "round-trip");
    ASSERT_TRUE(again.ok())
        << (again.errors.empty() ? "" : again.errors.front());
    EXPECT_EQ(spec, again.spec);
}

TEST(ScenarioSpec, DisaggSectionAndRatesRejectedOutsideDisaggKind)
{
    // A [disagg] section on a cluster_scale scenario is a mistake.
    auto parsed = parseScenario(minimalText() +
                                "[disagg]\n"
                                "chunk_kib = 128\n");
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(anyContains(parsed.spec.validate(), "[disagg]"));

    // Migration fault rates on a fault_sweep scenario never fire.
    auto sweep = parseScenario("[scenario]\n"
                               "name = f\n"
                               "kind = fault_sweep\n"
                               "[cluster]\n"
                               "devices = 1 2\n"
                               "modes = Cc\n"
                               "[faults]\n"
                               "scales = 0 1\n"
                               "migration_tag_rate = 0.1\n");
    ASSERT_TRUE(sweep.ok());
    EXPECT_TRUE(anyContains(sweep.spec.validate(),
                            "nothing migrates"));
}

TEST(ScenarioSpec, DisaggKindNeedsRoomForBothRoles)
{
    // A single-device disagg scenario has no decode side to migrate
    // to; prefill_replicas must leave at least one decode replica.
    auto parsed = parseScenario("[scenario]\n"
                                "name = d\n"
                                "kind = disagg\n"
                                "[cluster]\n"
                                "devices = 1 2\n"
                                "modes = Cc\n"
                                "[disagg]\n"
                                "prefill_replicas = 1\n");
    ASSERT_TRUE(parsed.ok());
    auto problems = parsed.spec.validate();
    EXPECT_TRUE(anyContains(problems,
                            "devices entry must be at least 2"));

    auto hog = parseScenario("[scenario]\n"
                             "name = d\n"
                             "kind = disagg\n"
                             "[cluster]\n"
                             "devices = 2\n"
                             "modes = Cc\n"
                             "[disagg]\n"
                             "prefill_replicas = 2\n");
    ASSERT_TRUE(hog.ok());
    EXPECT_TRUE(anyContains(hog.spec.validate(), "prefill_replicas"));
}
