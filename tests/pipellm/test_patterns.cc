#include <gtest/gtest.h>

#include "pipellm/patterns.hh"

using namespace pipellm;
using namespace pipellm::core;

namespace {

ChunkId
chunk(int i)
{
    return ChunkId{Addr(0x100000 + i * 0x10000), 64 * KiB};
}

/** Feed k full cycles of layers [0, n) into the history. */
void
feedCycles(SwapHistory &h, int layers, int cycles)
{
    for (int c = 0; c < cycles; ++c) {
        for (int l = 0; l < layers; ++l)
            h.noteSwapIn(chunk(l));
        h.noteBatchBoundary();
    }
}

} // namespace

TEST(RepetitiveRecognizer, PredictsLayerCycle)
{
    // FlexGen-style: layers reload in order every iteration (Fig 5a).
    SwapHistory h;
    feedCycles(h, 6, 3);
    h.noteSwapIn(chunk(0));
    h.noteSwapIn(chunk(1));

    RepetitiveRecognizer rec;
    auto pred = rec.predict(h, 4);
    ASSERT_EQ(pred.size(), 4u);
    EXPECT_EQ(pred[0].chunk, chunk(2));
    EXPECT_EQ(pred[1].chunk, chunk(3));
    EXPECT_EQ(pred[2].chunk, chunk(4));
    EXPECT_EQ(pred[3].chunk, chunk(5));
}

TEST(RepetitiveRecognizer, WrapsAroundTheCycle)
{
    SwapHistory h;
    feedCycles(h, 4, 3);
    // A new iteration begins: layer 0 reloads; the recognizer should
    // continue the cycle across the iteration boundary.
    h.noteSwapIn(chunk(0));
    RepetitiveRecognizer rec;
    auto pred = rec.predict(h, 3);
    ASSERT_EQ(pred.size(), 3u);
    EXPECT_EQ(pred[0].chunk, chunk(1));
    EXPECT_EQ(pred[1].chunk, chunk(2));
    EXPECT_EQ(pred[2].chunk, chunk(3));
}

TEST(RepetitiveRecognizer, PartialOffloadCycle)
{
    // Paper Fig. 5a: only layers 1, 3, 4 are offloaded; the cycle is
    // [1, 3, 4].
    SwapHistory h;
    for (int c = 0; c < 3; ++c) {
        h.noteSwapIn(chunk(1));
        h.noteSwapIn(chunk(3));
        h.noteSwapIn(chunk(4));
    }
    h.noteSwapIn(chunk(1));
    RepetitiveRecognizer rec;
    auto pred = rec.predict(h, 2);
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_EQ(pred[0].chunk, chunk(3));
    EXPECT_EQ(pred[1].chunk, chunk(4));
}

TEST(RepetitiveRecognizer, NoSignalOnShortHistory)
{
    SwapHistory h;
    RepetitiveRecognizer rec;
    EXPECT_TRUE(rec.predict(h, 4).empty());
    h.noteSwapIn(chunk(1));
    EXPECT_TRUE(rec.predict(h, 4).empty());
}

TEST(RepetitiveRecognizer, NoSignalWithoutRepetition)
{
    SwapHistory h;
    for (int i = 0; i < 8; ++i)
        h.noteSwapIn(chunk(i));
    RepetitiveRecognizer rec;
    EXPECT_TRUE(rec.predict(h, 2).empty());
}

TEST(FifoRecognizer, PredictsOldestFirst)
{
    // Layer-wise KV swapping returns chunks in swap-out order (Fig 5b).
    SwapHistory h;
    h.noteSwapOut(chunk(10));
    h.noteSwapOut(chunk(11));
    h.noteSwapOut(chunk(12));
    FifoRecognizer rec;
    auto pred = rec.predict(h, 2);
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_EQ(pred[0].chunk, chunk(10));
    EXPECT_EQ(pred[1].chunk, chunk(11));
}

TEST(LifoRecognizer, PredictsNewestFirst)
{
    // Request-wise (vLLM): last preempted request returns first.
    SwapHistory h;
    h.noteSwapOut(chunk(10));
    h.noteSwapOut(chunk(11));
    h.noteSwapOut(chunk(12));
    LifoRecognizer rec;
    auto pred = rec.predict(h, 3);
    ASSERT_EQ(pred.size(), 3u);
    EXPECT_EQ(pred[0].chunk, chunk(12));
    EXPECT_EQ(pred[1].chunk, chunk(11));
    EXPECT_EQ(pred[2].chunk, chunk(10));
}

TEST(FifoLifoRecognizers, EmptyWithoutOutstanding)
{
    SwapHistory h;
    h.noteSwapIn(chunk(1));
    EXPECT_TRUE(FifoRecognizer().predict(h, 4).empty());
    EXPECT_TRUE(LifoRecognizer().predict(h, 4).empty());
}

TEST(Recognizers, SwapInShrinksFifoPrediction)
{
    SwapHistory h;
    h.noteSwapOut(chunk(1));
    h.noteSwapOut(chunk(2));
    h.noteSwapIn(chunk(1));
    FifoRecognizer rec;
    auto pred = rec.predict(h, 4);
    ASSERT_EQ(pred.size(), 1u);
    EXPECT_EQ(pred[0].chunk, chunk(2));
}

TEST(LifoGroupRecognizer, GroupLifoBlockFifo)
{
    // Two preemption groups swapped out in separate batches: predict
    // the newest group first, blocks in original order, with a batch
    // boundary at the group head.
    SwapHistory h;
    h.noteSwapOut(chunk(1));
    h.noteSwapOut(chunk(2));
    h.noteBatchBoundary();
    h.noteSwapOut(chunk(11));
    h.noteSwapOut(chunk(12));
    h.noteSwapOut(chunk(13));
    h.noteBatchBoundary();

    LifoGroupRecognizer rec;
    auto pred = rec.predict(h, 8);
    ASSERT_EQ(pred.size(), 3u); // newest group only
    EXPECT_EQ(pred[0].chunk, chunk(11));
    EXPECT_TRUE(pred[0].batch_start);
    EXPECT_EQ(pred[1].chunk, chunk(12));
    EXPECT_FALSE(pred[1].batch_start);
    EXPECT_EQ(pred[2].chunk, chunk(13));
}

TEST(LifoGroupRecognizer, StaleGroupGetsOnlyAPrefix)
{
    SwapHistory h;
    for (int i = 0; i < 64; ++i)
        h.noteSwapOut(chunk(100 + i));
    h.noteBatchBoundary();
    // Age the group well past the freshness window.
    for (int b = 0; b < 8; ++b) {
        h.noteSwapIn(chunk(1)); // unrelated activity
        h.noteBatchBoundary();
    }
    LifoGroupRecognizer rec;
    auto pred = rec.predict(h, 64);
    EXPECT_EQ(pred.size(), 32u); // capped prefix for stale groups
    EXPECT_EQ(pred[0].chunk, chunk(100));
}

TEST(LifoGroupRecognizer, EmptyWithoutOutstanding)
{
    SwapHistory h;
    h.noteSwapIn(chunk(1));
    EXPECT_TRUE(LifoGroupRecognizer().predict(h, 4).empty());
}

TEST(RepetitiveRecognizer, PredictsBatchBoundaries)
{
    // Cycles of [0,1,2] each in its own batch: the recognizer should
    // flag the boundary before each cycle start.
    SwapHistory h;
    for (int c = 0; c < 4; ++c) {
        for (int i = 0; i < 3; ++i)
            h.noteSwapIn(chunk(i));
        h.noteBatchBoundary();
    }
    h.noteSwapIn(chunk(0));
    h.noteSwapIn(chunk(1));
    RepetitiveRecognizer rec;
    auto pred = rec.predict(h, 4);
    ASSERT_EQ(pred.size(), 4u);
    EXPECT_EQ(pred[0].chunk, chunk(2));
    EXPECT_FALSE(pred[0].batch_start);
    EXPECT_EQ(pred[1].chunk, chunk(0));
    EXPECT_TRUE(pred[1].batch_start); // new cycle = new batch
    EXPECT_FALSE(pred[2].batch_start);
}

TEST(MarkovRecognizer, LearnsNoisyCycle)
{
    // A cycle with occasional substitutions: the suffix matcher's
    // long-context match degrades, but frequency voting still finds
    // the dominant successor.
    SwapHistory h;
    for (int c = 0; c < 12; ++c) {
        h.noteSwapIn(chunk(0));
        h.noteSwapIn(chunk(1));
        // Every 4th cycle the tail is replaced with noise.
        if (c % 4 == 3)
            h.noteSwapIn(chunk(90 + c));
        else
            h.noteSwapIn(chunk(2));
    }
    h.noteSwapIn(chunk(0));
    MarkovRecognizer rec;
    auto pred = rec.predict(h, 2);
    ASSERT_GE(pred.size(), 2u);
    EXPECT_EQ(pred[0].chunk, chunk(1));
    EXPECT_EQ(pred[1].chunk, chunk(2));
}

TEST(MarkovRecognizer, RequiresSupport)
{
    SwapHistory h;
    h.noteSwapIn(chunk(1));
    h.noteSwapIn(chunk(2)); // single observation: below min support
    MarkovRecognizer rec(2);
    EXPECT_TRUE(rec.predict(h, 2).empty());
    h.noteSwapIn(chunk(1));
    h.noteSwapIn(chunk(2));
    h.noteSwapIn(chunk(1)); // 1->2 now has support 2
    EXPECT_FALSE(rec.predict(h, 1).empty());
}

TEST(MarkovRecognizer, StopsOnTightLoops)
{
    // A-B-A-B...: the chain predictor must not emit an unbounded
    // oscillation.
    SwapHistory h;
    for (int i = 0; i < 10; ++i) {
        h.noteSwapIn(chunk(1));
        h.noteSwapIn(chunk(2));
    }
    MarkovRecognizer rec;
    auto pred = rec.predict(h, 100);
    EXPECT_LE(pred.size(), 10u);
    EXPECT_GE(pred.size(), 2u);
}
