#include <gtest/gtest.h>

#include "crypto/engine.hh"
#include "pipellm/pipeline.hh"
#include "sim/event_queue.hh"

using namespace pipellm;
using namespace pipellm::core;

namespace {

struct PipelineFixture : ::testing::Test
{
    sim::EventQueue eq;
    mem::SparseMemory host{"host", 4 * GiB};
    crypto::SecureChannel channel;
    crypto::CryptoLanes lanes{eq, "enc", 2, 5.8e9};
    Predictor predictor;
    PipeLlmConfig config;

    std::vector<mem::Region> regions;

    PipelineFixture()
    {
        config.pipeline_depth = 4;
        config.iv_leeway = 2;
        for (int i = 0; i < 8; ++i)
            regions.push_back(
                host.alloc(256 * KiB, "layer" + std::to_string(i)));
    }

    ChunkId
    chunk(int i)
    {
        return ChunkId{regions[i].base, regions[i].len};
    }

    /** Teach the predictor a full cycle over all regions. */
    void
    teachCycle(int cycles = 4)
    {
        for (int c = 0; c < cycles; ++c)
            for (int i = 0; i < 8; ++i)
                predictor.noteSwapIn(chunk(i));
    }
};

} // namespace

TEST_F(PipelineFixture, RefillFillsToDepth)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, /*cpu_iv=*/0);
    EXPECT_EQ(pipe.depth(), 4u);
    EXPECT_EQ(pipe.stats().pre_encrypted, 4u);
    EXPECT_EQ(pipe.bytesHeld(), 4u * 256 * KiB);
}

TEST_F(PipelineFixture, IvsAssignedWithLeeway)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 10);
    // First entry gets IV 10 + leeway(2) = 12.
    auto e = pipe.find(predictor.predictNext(1)[0].chunk);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->iv, 12u);
    EXPECT_EQ(pipe.speculationHead(), 16u);
}

TEST_F(PipelineFixture, FindMatchesAddressAndLength)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto predicted = predictor.predictNext(1)[0].chunk;
    EXPECT_TRUE(pipe.find(predicted).has_value());
    // Same address, different length: label check fails.
    EXPECT_FALSE(pipe.find(ChunkId{predicted.addr, 128}).has_value());
    EXPECT_FALSE(pipe.find(ChunkId{0xdead, 256 * KiB}).has_value());
}

TEST_F(PipelineFixture, CiphertextOpensUnderAssignedIv)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto predicted = predictor.predictNext(1)[0].chunk;
    auto e = pipe.find(predicted);
    ASSERT_TRUE(e);
    std::vector<std::uint8_t> pt;
    EXPECT_TRUE(channel.open(e->blob, e->iv, pt));
    EXPECT_FALSE(channel.open(e->blob, e->iv + 1, pt));
    // The plaintext really matches host memory at prediction time.
    EXPECT_EQ(pt, host.readSample(predicted.addr,
                                  channel.sampledLen(predicted.len)));
}

TEST_F(PipelineFixture, WriteToSourceInvalidatesEntry)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto predicted = predictor.predictNext(1)[0].chunk;
    ASSERT_TRUE(pipe.find(predicted));

    // Application updates the plaintext -> page fault -> invalidate.
    std::uint8_t v = 0x5a;
    host.write(predicted.addr + 100, &v, 1);
    EXPECT_FALSE(pipe.find(predicted).has_value());
    EXPECT_EQ(pipe.stats().invalidated_by_fault, 1u);
    EXPECT_GE(host.protection().faults(), 1u);
}

TEST_F(PipelineFixture, ReadsDoNotInvalidate)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto predicted = predictor.predictNext(1)[0].chunk;
    host.readSample(predicted.addr, 64);
    EXPECT_TRUE(pipe.find(predicted).has_value());
}

TEST_F(PipelineFixture, ConsumeReleasesProtection)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto predicted = predictor.predictNext(1)[0].chunk;
    auto e = pipe.find(predicted);
    ASSERT_TRUE(e);
    pipe.consume(e->iv);
    EXPECT_FALSE(pipe.find(predicted).has_value());
    // Writing after consume is fault-free.
    auto faults_before = host.protection().faults();
    std::uint8_t v = 1;
    host.write(predicted.addr, &v, 1);
    EXPECT_EQ(host.protection().faults(), faults_before);
}

TEST_F(PipelineFixture, IvCollisionRelinquishesTailAndReusesIvs)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto predicted = predictor.predictNext(1)[0].chunk;
    auto e = pipe.find(predicted);
    ASSERT_TRUE(e);
    // A foreign transfer consumed the head entry's IV: the whole plan
    // tail is positionally shifted and must be relinquished; the
    // never-exposed IVs are reclaimed.
    pipe.invalidateIv(e->iv, 0);
    EXPECT_EQ(pipe.depth(), 0u);
    EXPECT_EQ(pipe.stats().invalidated_by_iv, 1u);
    EXPECT_EQ(pipe.speculationHead(), e->iv + 1);
    // A collision pauses speculation (the current epoch outlived the
    // plan); the next swap activity resumes it, and the refill then
    // rebuilds right after the consumed IV.
    pipe.refill(1000, e->iv + 1);
    EXPECT_EQ(pipe.depth(), 0u);
    pipe.noteSwapRequest();
    pipe.refill(1000, e->iv + 1);
    EXPECT_EQ(pipe.depth(), 4u);
    auto rebuilt = pipe.find(predicted);
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_GT(rebuilt->iv, e->iv);
    std::vector<std::uint8_t> pt;
    EXPECT_TRUE(channel.open(rebuilt->blob, rebuilt->iv, pt));
}

TEST_F(PipelineFixture, RelinquishDropsEverything)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    EXPECT_EQ(pipe.depth(), 4u);
    pipe.relinquish();
    EXPECT_EQ(pipe.depth(), 0u);
    EXPECT_EQ(pipe.bytesHeld(), 0u);
    EXPECT_EQ(pipe.stats().relinquished, 4u);
    EXPECT_EQ(host.protection().protectedPages(), 0u);
}

TEST_F(PipelineFixture, RefillAfterConsumeTopsUp)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto first = predictor.predictNext(1)[0].chunk;
    auto e = pipe.find(first);
    pipe.consume(e->iv);
    // Ground truth arrives; predictor window slides.
    predictor.noteSwapIn(first);
    pipe.refill(1000, 1);
    EXPECT_EQ(pipe.depth(), 4u);
}

TEST_F(PipelineFixture, EncryptionTimeChargedOnLanes)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    auto predicted = predictor.predictNext(1)[0].chunk;
    auto e = pipe.find(predicted);
    ASSERT_TRUE(e);
    // 256 KiB at 5.8 GB/s ~= 45 us.
    EXPECT_NEAR(toMicroseconds(e->ready_at), 45.2, 3.0);
    EXPECT_EQ(lanes.group().bytesServed(), 4u * 256 * KiB);
}

TEST_F(PipelineFixture, ByteBudgetLimitsDepth)
{
    teachCycle();
    config.max_pipeline_bytes = 512 * KiB; // only two chunks
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    EXPECT_EQ(pipe.depth(), 2u);
}

TEST_F(PipelineFixture, SpeculationDisabledDoesNothing)
{
    teachCycle();
    config.speculation = false;
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    pipe.refill(0, 0);
    EXPECT_EQ(pipe.depth(), 0u);
}

TEST_F(PipelineFixture, FreedRegionIsSkipped)
{
    teachCycle();
    SpeculativePipeline pipe(host, channel, lanes, predictor, config);
    auto doomed = predictor.predictNext(1)[0].chunk;
    // Free the region the next prediction points at.
    for (auto &r : regions) {
        if (r.base == doomed.addr) {
            host.free(r);
            break;
        }
    }
    pipe.refill(0, 0);
    EXPECT_FALSE(pipe.find(doomed).has_value());
    EXPECT_GT(pipe.depth(), 0u); // others still pre-encrypted
}
