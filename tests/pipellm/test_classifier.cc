#include <gtest/gtest.h>

#include "llm/model.hh"
#include "pipellm/classifier.hh"

using namespace pipellm;
using namespace pipellm::core;

namespace {

ClassifierConfig
opt30bConfig()
{
    auto m = llm::ModelConfig::opt30b();
    ClassifierConfig cfg;
    cfg.layer_param_bytes = m.layerParamBytes();
    cfg.kv_unit_bytes = 2 * MiB;
    return cfg;
}

} // namespace

TEST(SwapClassifier, SmallTransfersBelowThreshold)
{
    SwapClassifier c(opt30bConfig());
    // Paper §4.2: non-swap transfers are usually <8 KiB.
    EXPECT_EQ(c.classify(32), TransferClass::Small);
    EXPECT_EQ(c.classify(4 * KiB), TransferClass::Small);
    EXPECT_EQ(c.classify(127 * KiB), TransferClass::Small);
    EXPECT_FALSE(c.isSwap(8 * KiB));
}

TEST(SwapClassifier, LayerParamSizeIsModelOffload)
{
    auto cfg = opt30bConfig();
    SwapClassifier c(cfg);
    EXPECT_EQ(c.classify(cfg.layer_param_bytes),
              TransferClass::ModelOffload);
    // Within 2% tolerance.
    EXPECT_EQ(c.classify(cfg.layer_param_bytes * 101 / 100),
              TransferClass::ModelOffload);
    EXPECT_TRUE(c.isSwap(cfg.layer_param_bytes));
}

TEST(SwapClassifier, KvUnitSizeIsKvSwap)
{
    SwapClassifier c(opt30bConfig());
    EXPECT_EQ(c.classify(2 * MiB), TransferClass::KvSwap);
}

TEST(SwapClassifier, LargeUnknownIsOtherSwap)
{
    SwapClassifier c(opt30bConfig());
    EXPECT_EQ(c.classify(10 * MiB), TransferClass::OtherSwap);
    EXPECT_TRUE(c.isSwap(10 * MiB));
}

TEST(SwapClassifier, UnknownSizesStillSplitOnThreshold)
{
    SwapClassifier c(ClassifierConfig{});
    EXPECT_EQ(c.classify(100), TransferClass::Small);
    EXPECT_EQ(c.classify(1 * MiB), TransferClass::OtherSwap);
}

TEST(SwapClassifier, ToleranceBoundary)
{
    ClassifierConfig cfg;
    cfg.layer_param_bytes = 100 * MiB;
    SwapClassifier c(cfg);
    EXPECT_EQ(c.classify(100 * MiB + MiB), TransferClass::ModelOffload);
    EXPECT_EQ(c.classify(110 * MiB), TransferClass::OtherSwap);
}

TEST(TransferClass, Names)
{
    EXPECT_STREQ(toString(TransferClass::Small), "small");
    EXPECT_STREQ(toString(TransferClass::ModelOffload),
                 "model-offload");
    EXPECT_STREQ(toString(TransferClass::KvSwap), "kv-swap");
    EXPECT_STREQ(toString(TransferClass::OtherSwap), "other-swap");
}
