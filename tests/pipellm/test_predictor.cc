#include <gtest/gtest.h>

#include <string>

#include "pipellm/predictor.hh"

using namespace pipellm;
using namespace pipellm::core;

namespace {

ChunkId
chunk(int i)
{
    return ChunkId{Addr(0x100000 + i * 0x10000), 64 * KiB};
}

} // namespace

TEST(Predictor, LearnsRepetitivePattern)
{
    Predictor p;
    for (int c = 0; c < 6; ++c) {
        for (int l = 0; l < 8; ++l)
            p.noteSwapIn(chunk(l));
        p.noteBatchBoundary();
    }
    EXPECT_STREQ(p.activePattern(), "repetitive");
    p.noteSwapIn(chunk(0));
    auto pred = p.predictNext(3);
    ASSERT_EQ(pred.size(), 3u);
    EXPECT_EQ(pred[0].chunk, chunk(1));
    EXPECT_EQ(pred[1].chunk, chunk(2));
    EXPECT_EQ(pred[2].chunk, chunk(3));
}

TEST(Predictor, LearnsLifoPattern)
{
    Predictor p;
    // vLLM-style: swap out a group, swap back in LIFO, repeatedly.
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 4; ++i)
            p.noteSwapOut(chunk(round * 10 + i));
        for (int i = 3; i >= 0; --i) {
            p.noteSwapIn(chunk(round * 10 + i));
        }
        p.noteBatchBoundary();
    }
    EXPECT_STREQ(p.activePattern(), "lifo");
    p.noteSwapOut(chunk(100));
    p.noteSwapOut(chunk(101));
    auto pred = p.predictNext(2);
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_EQ(pred[0].chunk, chunk(101));
    EXPECT_EQ(pred[1].chunk, chunk(100));
}

TEST(Predictor, LearnsFifoPattern)
{
    Predictor p;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 4; ++i)
            p.noteSwapOut(chunk(round * 10 + i));
        for (int i = 0; i < 4; ++i)
            p.noteSwapIn(chunk(round * 10 + i));
        p.noteBatchBoundary();
    }
    EXPECT_STREQ(p.activePattern(), "fifo");
}

TEST(Predictor, AccuracyConvergesNearOne)
{
    Predictor p;
    for (int c = 0; c < 20; ++c)
        for (int l = 0; l < 6; ++l)
            p.noteSwapIn(chunk(l));
    // The repetitive recognizer (index 0) should be nearly perfect.
    EXPECT_GT(p.accuracy(0), 0.9);
    EXPECT_GT(double(p.shadowHits()) / double(p.shadowTotal()), 0.9);
}

TEST(Predictor, SwitchesPatternsWhenWorkloadChanges)
{
    Predictor p;
    // Phase 1: repetitive.
    for (int c = 0; c < 6; ++c)
        for (int l = 0; l < 4; ++l)
            p.noteSwapIn(chunk(l));
    EXPECT_STREQ(p.activePattern(), "repetitive");
    // Phase 2: LIFO swapping of fresh chunks.
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 3; ++i)
            p.noteSwapOut(chunk(1000 + round * 10 + i));
        for (int i = 2; i >= 0; --i)
            p.noteSwapIn(chunk(1000 + round * 10 + i));
    }
    EXPECT_STREQ(p.activePattern(), "lifo");
}

TEST(Predictor, SabotageRotatesSequence)
{
    PredictorConfig cfg;
    cfg.sabotage_sequence = true;
    Predictor p(cfg);
    for (int c = 0; c < 6; ++c)
        for (int l = 0; l < 8; ++l)
            p.noteSwapIn(chunk(l));
    p.noteSwapIn(chunk(0));
    auto pred = p.predictNext(4);
    ASSERT_EQ(pred.size(), 4u);
    // The true next chunk (1) must NOT be first, but must be present.
    EXPECT_NE(pred[0].chunk, chunk(1));
    EXPECT_EQ(pred.back().chunk, chunk(1));
}

TEST(Predictor, NoPredictionWithoutHistory)
{
    Predictor p;
    EXPECT_TRUE(p.predictNext(4).empty());
}

TEST(Predictor, FallsBackWhenBestRecognizerIsSilent)
{
    Predictor p;
    // Outstanding chunks exist, but no swap-in history: the
    // repetitive recognizer is silent; fifo/lifo still predict.
    p.noteSwapOut(chunk(1));
    p.noteSwapOut(chunk(2));
    auto pred = p.predictNext(2);
    EXPECT_EQ(pred.size(), 2u);
}

namespace {

/** A toy recognizer that always predicts one fixed chunk. */
class ConstantRecognizer : public PatternRecognizer
{
  public:
    explicit ConstantRecognizer(ChunkId c) : chunk_(c) {}
    const char *name() const override { return "constant"; }
    std::vector<PredictedSwap>
    predict(const SwapHistory &, std::size_t n) const override
    {
        return std::vector<PredictedSwap>(
            std::min<std::size_t>(n, 1), PredictedSwap{chunk_, false});
    }

  private:
    ChunkId chunk_;
};

} // namespace

TEST(Predictor, RegisteredRecognizerJoinsTheRace)
{
    // §5.1: the predictor is extensible. A custom recognizer that is
    // always right on this workload must win the accuracy race.
    Predictor p;
    auto n_before = p.recognizers();
    p.registerRecognizer(
        std::make_unique<ConstantRecognizer>(chunk(42)));
    EXPECT_EQ(p.recognizers(), n_before + 1);

    for (int i = 0; i < 30; ++i)
        p.noteSwapIn(chunk(42));
    EXPECT_STREQ(p.activePattern(), "constant");
    auto pred = p.predictNext(1);
    ASSERT_EQ(pred.size(), 1u);
    EXPECT_EQ(pred[0].chunk, chunk(42));
}

TEST(Predictor, MarkovInTheRaceByDefault)
{
    Predictor p;
    bool has_markov = false;
    // The built-in set includes the frequency recognizer.
    for (std::size_t i = 0; i < p.recognizers(); ++i)
        has_markov = true; // count only; names not exposed per index
    EXPECT_TRUE(has_markov);
    EXPECT_EQ(p.recognizers(), 5u);
}
