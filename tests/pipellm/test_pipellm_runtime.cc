#include <gtest/gtest.h>

#include <vector>

#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"

using namespace pipellm;
using namespace pipellm::core;
using runtime::CopyKind;
using runtime::Platform;
using runtime::Stream;

namespace {

/** A FlexGen-shaped workload: layers reload cyclically, every swap
 *  followed by a sync and a compute kernel. */
struct OffloadFixture : ::testing::Test
{
    static constexpr int layers = 8;
    static constexpr std::uint64_t layer_bytes = 2 * MiB;

    Platform platform;
    PipeLlmConfig config;
    std::vector<mem::Region> host_layers;
    mem::Region dev_buf{};

    OffloadFixture()
    {
        config.classifier.layer_param_bytes = layer_bytes;
        config.enc_lanes = 2;
        config.pipeline_depth = 4;
    }

    void
    setup(runtime::RuntimeApi &rt)
    {
        (void)rt;
        if (host_layers.empty()) {
            for (int i = 0; i < layers; ++i)
                host_layers.push_back(platform.allocHost(
                    layer_bytes, "layer" + std::to_string(i)));
            dev_buf = platform.gpu(0).alloc(layer_bytes * 2, "slot");
        }
    }

    /** Run @p cycles offload iterations; returns finish tick. */
    Tick
    runCycles(runtime::RuntimeApi &rt, Stream &s, int cycles,
              Tick now = 0)
    {
        gpu::KernelDesc k{"layer", 2e10, 1e8}; // ~50 us compute
        for (int c = 0; c < cycles; ++c) {
            for (int l = 0; l < layers; ++l) {
                now = rt.memcpyAsync(CopyKind::HostToDevice,
                                     dev_buf.base,
                                     host_layers[l].base, layer_bytes,
                                     s, now)
                          .api_return;
                now = rt.synchronize(now);
                now = rt.launchKernel(k, s, now).api_return;
                now = rt.synchronize(now);
            }
        }
        return now;
    }
};

} // namespace

TEST_F(OffloadFixture, PredictorLearnsAndHits)
{
    PipeLlmRuntime rt(platform, config);
    setup(rt);
    Stream &s = rt.createStream("s");
    runCycles(rt, s, 6);

    const auto &ps = rt.pipeStats();
    EXPECT_EQ(ps.swap_requests, 6u * layers);
    // After the first cycle or two the pipeline should hit nearly
    // always.
    EXPECT_GT(ps.hits, 4u * layers);
    EXPECT_LT(ps.misses, 2u * layers);
    EXPECT_STREQ(rt.predictor().activePattern(), "repetitive");
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
}

TEST_F(OffloadFixture, ApiNeverBlocksOnEncryption)
{
    PipeLlmRuntime rt(platform, config);
    setup(rt);
    Stream &s = rt.createStream("s");
    runCycles(rt, s, 3); // warm up

    Tick t0 = rt.synchronize(runCycles(rt, s, 1, 0));
    auto r = rt.memcpyAsync(CopyKind::HostToDevice, dev_buf.base,
                            host_layers[0].base, layer_bytes, s, t0);
    // 2 MiB at 5.8 GB/s would be ~360 us; the call must return in
    // control-plane time.
    EXPECT_LT(toMicroseconds(r.api_return - t0), 20.0);
}

TEST_F(OffloadFixture, FasterThanCcBaseline)
{
    Platform p_cc;
    PipeLlmRuntime rt(platform, config);
    runtime::CcRuntime cc(p_cc);
    setup(rt);

    // Mirror allocations on the CC platform.
    std::vector<mem::Region> cc_layers;
    for (int i = 0; i < layers; ++i)
        cc_layers.push_back(
            p_cc.allocHost(layer_bytes, "layer" + std::to_string(i)));
    auto cc_dev = p_cc.gpu(0).alloc(layer_bytes * 2, "slot");

    Stream &s1 = rt.createStream("s");
    Stream &s2 = cc.createStream("s");
    gpu::KernelDesc k{"layer", 2e10, 1e8};

    Tick a = 0, b = 0;
    for (int c = 0; c < 6; ++c) {
        for (int l = 0; l < layers; ++l) {
            a = rt.memcpyAsync(CopyKind::HostToDevice, dev_buf.base,
                               host_layers[l].base, layer_bytes, s1, a)
                    .api_return;
            a = rt.synchronize(a);
            a = rt.launchKernel(k, s1, a).api_return;
            a = rt.synchronize(a);

            b = cc.memcpyAsync(CopyKind::HostToDevice, cc_dev.base,
                               cc_layers[l].base, layer_bytes, s2, b)
                    .api_return;
            b = cc.synchronize(b);
            b = cc.launchKernel(k, s2, b).api_return;
            b = cc.synchronize(b);
        }
    }
    EXPECT_LT(double(a), 0.6 * double(b));
}

TEST_F(OffloadFixture, SmallTransfersDoNotCascade)
{
    PipeLlmRuntime rt(platform, config);
    setup(rt);
    auto token_buf = platform.allocHost(4 * KiB, "tokens");
    Stream &s = rt.createStream("s");
    runCycles(rt, s, 3); // learn the pattern

    // Interleave a small transfer before every layer swap.
    Tick now = rt.synchronize(runCycles(rt, s, 1, 0));
    auto hits_before = rt.pipeStats().hits;
    gpu::KernelDesc k{"layer", 2e10, 1e8};
    for (int l = 0; l < layers; ++l) {
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev_buf.base,
                             token_buf.base, 512, s, now)
                  .api_return;
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev_buf.base,
                             host_layers[l].base, layer_bytes, s, now)
                  .api_return;
        now = rt.synchronize(now);
        now = rt.launchKernel(k, s, now).api_return;
        now = rt.synchronize(now);
    }
    auto hits_after = rt.pipeStats().hits;
    // Re-speculation keeps nearly all of these hits despite the
    // interleaved small transfers.
    EXPECT_GE(hits_after - hits_before, unsigned(layers) - 2);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
}

TEST_F(OffloadFixture, DataIntegrityEndToEnd)
{
    PipeLlmRuntime rt(platform, config);
    setup(rt);
    Stream &s = rt.createStream("s");
    runCycles(rt, s, 4);
    // The device copy of layer 3 matches host plaintext.
    auto expect = platform.hostMem().readSample(
        host_layers[3].base,
        platform.device(0).channel().sampledLen(layer_bytes));
    Tick now = rt.memcpy(CopyKind::HostToDevice, dev_buf.base,
                         host_layers[3].base, layer_bytes, s, 0);
    rt.synchronize(now);
    EXPECT_EQ(platform.gpu(0).memory().readSample(dev_buf.base,
                                                    expect.size()),
              expect);
}

TEST_F(OffloadFixture, IvLockstepMaintained)
{
    PipeLlmRuntime rt(platform, config);
    setup(rt);
    Stream &s = rt.createStream("s");
    runCycles(rt, s, 5);
    EXPECT_EQ(rt.h2dCounter(), platform.gpu(0).rxCounter());
    EXPECT_EQ(rt.d2hCounter(), platform.gpu(0).txCounter());
    EXPECT_EQ(rt.pendingSends(), 0u);
}

namespace {

/** vLLM-shaped workload: KV chunks swapped out then back in LIFO. */
struct KvSwapFixture : ::testing::Test
{
    static constexpr std::uint64_t kv_bytes = 512 * KiB;
    static constexpr int groups = 4;

    Platform platform;
    PipeLlmConfig config;
    std::vector<mem::Region> host_kv;
    std::vector<mem::Region> dev_kv;

    KvSwapFixture()
    {
        config.classifier.kv_unit_bytes = kv_bytes;
        config.enc_lanes = 1;
        config.dec_lanes = 1;
        config.pipeline_depth = 8;
        for (int i = 0; i < groups; ++i) {
            host_kv.push_back(nullRegion());
            dev_kv.push_back(nullRegion());
        }
    }

    static mem::Region nullRegion() { return mem::Region{}; }

    void
    setup()
    {
        for (int i = 0; i < groups; ++i) {
            host_kv[i] = platform.allocHost(
                kv_bytes, "kv-swap" + std::to_string(i));
            dev_kv[i] = platform.gpu(0).alloc(
                kv_bytes, "kv-gpu" + std::to_string(i));
        }
    }

    /** One preemption round: swap all out, decode, swap back LIFO. */
    Tick
    round(runtime::RuntimeApi &rt, Stream &s, Tick now)
    {
        for (int i = 0; i < groups; ++i)
            now = rt.memcpyAsync(CopyKind::DeviceToHost,
                                 host_kv[i].base, dev_kv[i].base,
                                 kv_bytes, s, now)
                      .api_return;
        now = rt.synchronize(now);
        gpu::KernelDesc k{"decode", 5e10, 2e9};
        now = rt.launchKernel(k, s, now).api_return;
        now = rt.synchronize(now);
        for (int i = groups - 1; i >= 0; --i)
            now = rt.memcpyAsync(CopyKind::HostToDevice,
                                 dev_kv[i].base, host_kv[i].base,
                                 kv_bytes, s, now)
                      .api_return;
        now = rt.synchronize(now);
        return now;
    }
};

} // namespace

TEST_F(KvSwapFixture, LearnsLifoAndHits)
{
    PipeLlmRuntime rt(platform, config);
    setup();
    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int r = 0; r < 8; ++r)
        now = round(rt, s, now);

    const auto &ps = rt.pipeStats();
    EXPECT_EQ(ps.swap_requests, 8u * groups);
    EXPECT_GT(ps.hits, 5u * groups);
    EXPECT_STREQ(rt.predictor().activePattern(), "lifo");
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
}

TEST_F(KvSwapFixture, AsyncDecryptReturnsBeforePlaintextReady)
{
    // Speculation off so the pipeline's own refill does not touch the
    // placeholder before we do.
    config.speculation = false;
    PipeLlmRuntime rt(platform, config);
    setup();
    Stream &s = rt.createStream("s");
    auto r = rt.memcpyAsync(CopyKind::DeviceToHost, host_kv[0].base,
                            dev_kv[0].base, kv_bytes, s, 0);
    EXPECT_EQ(rt.pipeStats().async_decrypts, 1u);
    // api_return is control-plane only; decryption would add ~90 us.
    EXPECT_LT(toMicroseconds(r.api_return), 20.0);

    // Touching the placeholder faults into a synchronous decrypt.
    std::uint8_t byte;
    Tick ready = platform.hostMem().read(host_kv[0].base, &byte, 1);
    EXPECT_GT(ready, r.complete);
    EXPECT_EQ(rt.pipeStats().decrypt_faults, 1u);
    // Second access is free.
    EXPECT_EQ(platform.hostMem().read(host_kv[0].base, &byte, 1), 0u);
}

TEST_F(KvSwapFixture, SyncDecryptWhenAblationDisabled)
{
    config.async_decrypt = false;
    PipeLlmRuntime rt(platform, config);
    setup();
    Stream &s = rt.createStream("s");
    auto r = rt.memcpyAsync(CopyKind::DeviceToHost, host_kv[0].base,
                            dev_kv[0].base, kv_bytes, s, 0);
    EXPECT_EQ(rt.pipeStats().async_decrypts, 0u);
    // The call blocks through DMA + decryption.
    EXPECT_GT(toMicroseconds(r.api_return), 90.0);
}

TEST_F(KvSwapFixture, RoundTripPreservesKvContent)
{
    PipeLlmRuntime rt(platform, config);
    setup();
    Stream &s = rt.createStream("s");
    auto before = platform.gpu(0).memory().readSample(
        dev_kv[2].base, platform.device(0).channel().sampledLen(kv_bytes));
    Tick now = 0;
    for (int r = 0; r < 3; ++r)
        now = round(rt, s, now);
    auto after = platform.gpu(0).memory().readSample(
        dev_kv[2].base, platform.device(0).channel().sampledLen(kv_bytes));
    EXPECT_EQ(after, before);
}

TEST_F(KvSwapFixture, SabotagedPredictionsStillCorrect)
{
    // Fig. 10 (PipeLLM-0): zero sequence-prediction success must not
    // break correctness, only cost NOPs.
    config.predictor.sabotage_sequence = true;
    PipeLlmRuntime rt(platform, config);
    setup();
    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int r = 0; r < 8; ++r)
        now = round(rt, s, now);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(rt.h2dCounter(), platform.gpu(0).rxCounter());
    // Re-ordering + NOPs kept most pre-encryptions usable.
    EXPECT_GT(rt.pipeStats().hits + rt.pipeStats().misses,
              7u * groups);
}

TEST_F(KvSwapFixture, ReorderingHandlesInBatchPermutation)
{
    PipeLlmRuntime rt(platform, config);
    setup();
    Stream &s = rt.createStream("s");
    Tick now = 0;
    for (int r = 0; r < 6; ++r)
        now = round(rt, s, now);

    // Now swap back in FIFO order while the predictor expects LIFO:
    // every chunk is pre-encrypted but the order is permuted.
    for (int i = 0; i < groups; ++i)
        now = rt.memcpyAsync(CopyKind::DeviceToHost, host_kv[i].base,
                             dev_kv[i].base, kv_bytes, s, now)
                  .api_return;
    now = rt.synchronize(now);
    auto hits_before = rt.pipeStats().hits;
    for (int i = 0; i < groups; ++i)
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev_kv[i].base,
                             host_kv[i].base, kv_bytes, s, now)
                  .api_return;
    now = rt.synchronize(now);
    // The permuted batch is still served from pre-encrypted entries
    // (re-ordering/NOPs, not misses), and the IV lockstep holds. The
    // LIFO-requested rounds above exercised deferral as well.
    EXPECT_GE(rt.pipeStats().hits, hits_before + unsigned(groups) - 1);
    EXPECT_GT(rt.pipeStats().reordered, 0u);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(rt.pendingSends(), 0u);
}

namespace {

/** (depth, leeway, lanes) grid point for configuration robustness. */
struct GridPoint
{
    unsigned depth;
    std::uint64_t leeway;
    unsigned lanes;
};

class ConfigGrid : public ::testing::TestWithParam<GridPoint>
{
};

} // namespace

TEST_P(ConfigGrid, CyclicWorkloadInvariantsHold)
{
    // The same FlexGen-shaped workload must stay correct (and mostly
    // hit) under any sane pipeline configuration.
    auto [depth, leeway, lanes] = GetParam();
    Platform platform;
    PipeLlmConfig config;
    config.classifier.layer_param_bytes = 2 * MiB;
    config.pipeline_depth = depth;
    config.iv_leeway = leeway;
    config.enc_lanes = lanes;
    PipeLlmRuntime rt(platform, config);

    std::vector<mem::Region> host;
    for (int i = 0; i < 6; ++i)
        host.push_back(platform.allocHost(2 * MiB, "c"));
    auto token = platform.allocHost(4 * KiB, "tok");
    auto dev = platform.gpu(0).alloc(16 * MiB, "d");
    Stream &s = rt.createStream("s");

    Tick now = 0;
    for (int cycle = 0; cycle < 10; ++cycle) {
        for (int i = 0; i < 6; ++i)
            now = rt.memcpyAsync(CopyKind::HostToDevice,
                                 dev.base + i * 2 * MiB, host[i].base,
                                 2 * MiB, s, now)
                      .api_return;
        now = rt.memcpyAsync(CopyKind::HostToDevice, dev.base,
                             token.base, 64, s, now)
                  .api_return;
        now = rt.synchronize(now);
    }

    const auto &ps = rt.pipeStats();
    EXPECT_EQ(ps.swap_requests, 60u);
    EXPECT_EQ(ps.hits + ps.misses, 60u);
    // After warmup the cycle should mostly hit regardless of config.
    EXPECT_GT(ps.hits, 35u) << "depth=" << depth
                            << " leeway=" << leeway
                            << " lanes=" << lanes;
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(rt.h2dCounter(), platform.gpu(0).rxCounter());
    EXPECT_EQ(rt.pendingSends(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigGrid,
    ::testing::Values(GridPoint{1, 0, 1}, GridPoint{2, 0, 2},
                      GridPoint{4, 2, 1}, GridPoint{4, 8, 4},
                      GridPoint{8, 2, 2}, GridPoint{12, 4, 8},
                      GridPoint{16, 0, 1}, GridPoint{3, 1, 3}),
    [](const ::testing::TestParamInfo<GridPoint> &info) {
        return "d" + std::to_string(info.param.depth) + "_l" +
               std::to_string(info.param.leeway) + "_n" +
               std::to_string(info.param.lanes);
    });
