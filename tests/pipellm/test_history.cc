#include <gtest/gtest.h>

#include "pipellm/history.hh"

using namespace pipellm;
using namespace pipellm::core;

namespace {

ChunkId
chunk(int i)
{
    return ChunkId{Addr(0x10000 + i * 0x1000), 4096};
}

} // namespace

TEST(SwapHistory, RecordsSwapInsInOrder)
{
    SwapHistory h;
    h.noteSwapIn(chunk(1));
    h.noteSwapIn(chunk(2));
    ASSERT_EQ(h.swapIns().size(), 2u);
    EXPECT_EQ(h.swapIns()[0], chunk(1));
    EXPECT_EQ(h.swapIns()[1], chunk(2));
    EXPECT_EQ(h.totalSwapIns(), 2u);
}

TEST(SwapHistory, CapsFlattenedHistory)
{
    SwapHistory h(10);
    for (int i = 0; i < 25; ++i)
        h.noteSwapIn(chunk(i));
    EXPECT_EQ(h.swapIns().size(), 10u);
    EXPECT_EQ(h.swapIns().front(), chunk(15));
    EXPECT_EQ(h.totalSwapIns(), 25u);
}

TEST(SwapHistory, OutstandingTracksSwapOutOrder)
{
    SwapHistory h;
    h.noteSwapOut(chunk(1));
    h.noteSwapOut(chunk(2));
    h.noteSwapOut(chunk(3));
    ASSERT_EQ(h.outstanding().size(), 3u);
    EXPECT_EQ(h.outstanding()[0].chunk, chunk(1));
    EXPECT_TRUE(h.isOutstanding(chunk(2)));
}

TEST(SwapHistory, SwapInRemovesFromOutstanding)
{
    SwapHistory h;
    h.noteSwapOut(chunk(1));
    h.noteSwapOut(chunk(2));
    h.noteSwapIn(chunk(1));
    EXPECT_FALSE(h.isOutstanding(chunk(1)));
    ASSERT_EQ(h.outstanding().size(), 1u);
    EXPECT_EQ(h.outstanding()[0].chunk, chunk(2));
}

TEST(SwapHistory, ReSwapOutRefreshesPosition)
{
    SwapHistory h;
    h.noteSwapOut(chunk(1));
    h.noteSwapOut(chunk(2));
    h.noteSwapOut(chunk(1)); // again, without swap-in
    ASSERT_EQ(h.outstanding().size(), 2u);
    EXPECT_EQ(h.outstanding()[0].chunk, chunk(2));
    EXPECT_EQ(h.outstanding()[1].chunk, chunk(1));
}

TEST(SwapHistory, BatchBoundariesCount)
{
    SwapHistory h;
    h.noteSwapIn(chunk(1));
    h.noteSwapIn(chunk(2));
    EXPECT_EQ(h.openBatchSize(), 2u);
    h.noteBatchBoundary();
    EXPECT_EQ(h.openBatchSize(), 0u);
    EXPECT_EQ(h.batches(), 1u);
    // Empty batch boundaries are not counted.
    h.noteBatchBoundary();
    EXPECT_EQ(h.batches(), 1u);
}
