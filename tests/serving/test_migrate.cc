/**
 * @file
 * KvMigrator unit tests: chunked encrypted streaming, speculative IV
 * pre-generation, and the per-stream recovery protocol (tag retry,
 * stall abort, destination-crash abort, crash re-keying).
 */

#include <gtest/gtest.h>

#include "crypto/channel.hh"
#include "fault/fault.hh"
#include "runtime/platform.hh"
#include "serving/migrate.hh"
#include "tests/serving/serving_fixture.hh"

using namespace pipellm;
using namespace pipellm::serving;
using serving_test::tinyGpu;

namespace {

runtime::Platform
makePlatform(unsigned devices = 2)
{
    return runtime::Platform(tinyGpu(448 * MiB),
                             crypto::ChannelConfig{}, devices,
                             runtime::HostResources{});
}

MigrationConfig
smallChunks()
{
    MigrationConfig cfg;
    cfg.chunk_bytes = 256 * KiB;
    cfg.pipeline_depth = 4;
    return cfg;
}

} // namespace

TEST(KvMigrator, CompletesChunkedStreamWithSpeculatedIvs)
{
    auto platform = makePlatform();
    KvMigrator mig(platform, smallChunks());
    auto res = mig.migrate(0, 1, 1 * MiB, 1000);
    EXPECT_EQ(res.status, MigrationStatus::Completed);
    EXPECT_EQ(res.chunks_total, 4u);
    EXPECT_EQ(res.chunks_verified, 4u);
    EXPECT_EQ(res.chunks_discarded, 0u);
    // Depth-4 window: chunks 1..3 seal before chunk 0 round-trips.
    EXPECT_EQ(res.speculated_ivs, 3u);
    EXPECT_GT(res.done, Tick(1000));

    const auto &rep = mig.faultReport();
    EXPECT_EQ(rep.migrations, 1u);
    EXPECT_EQ(rep.migrated_chunks, 4u);
    EXPECT_EQ(rep.speculated_migration_ivs, 3u);
    EXPECT_EQ(rep.migration_tag_faults, 0u);
}

TEST(KvMigrator, SubChunkStreamNeedsNoSpeculation)
{
    auto platform = makePlatform();
    KvMigrator mig(platform, smallChunks());
    auto res = mig.migrate(0, 1, 64 * KiB, 0);
    EXPECT_EQ(res.status, MigrationStatus::Completed);
    EXPECT_EQ(res.chunks_total, 1u);
    EXPECT_EQ(res.speculated_ivs, 0u);
}

TEST(KvMigrator, LinkIvCountersPersistAcrossStreams)
{
    // The same ordered pair reuses its session; a second stream's
    // seals land on fresh counters, never reusing an IV. A counter
    // desync would FATAL inside migrate() as an unexplained tag
    // failure, so completing both streams is the assertion.
    auto platform = makePlatform();
    KvMigrator mig(platform, smallChunks());
    EXPECT_EQ(mig.migrate(0, 1, 512 * KiB, 0).status,
              MigrationStatus::Completed);
    EXPECT_EQ(mig.migrate(0, 1, 512 * KiB, 5000).status,
              MigrationStatus::Completed);
    EXPECT_EQ(mig.faultReport().migrations, 2u);
    EXPECT_EQ(mig.faultReport().migrated_chunks, 4u);
}

TEST(KvMigrator, DistinctPairsUseDistinctSessions)
{
    auto platform = makePlatform(3);
    KvMigrator mig(platform, smallChunks());
    EXPECT_NE(&mig.link(0, 1), &mig.link(0, 2));
    EXPECT_NE(&mig.link(0, 1), &mig.link(1, 0));
    // Pair-unique session keys: a blob sealed for one link can never
    // verify on another.
    EXPECT_NE(mig.link(0, 1).config().key_seed,
              mig.link(0, 2).config().key_seed);
    EXPECT_NE(mig.link(0, 1).config().key_seed,
              mig.link(1, 0).config().key_seed);
}

TEST(KvMigrator, RekeyLinksOfRestartsTheStreamEpoch)
{
    auto platform = makePlatform();
    KvMigrator mig(platform, smallChunks());
    ASSERT_EQ(mig.migrate(0, 1, 1 * MiB, 0).status,
              MigrationStatus::Completed);
    std::uint64_t epoch_before = mig.link(0, 1).epoch();
    mig.rekeyLinksOf(1);
    EXPECT_GT(mig.link(0, 1).epoch(), epoch_before);
    // Counters restarted with the epoch: the next stream still seals
    // and verifies cleanly (a half-reset would desync and FATAL).
    EXPECT_EQ(mig.migrate(0, 1, 1 * MiB, 9000).status,
              MigrationStatus::Completed);
}

TEST(KvMigrator, TagFaultResumesFromLastVerifiedChunk)
{
    auto platform = makePlatform();
    fault::FaultPlan plan;
    plan.seed = 11;
    plan.migration_tag_rate = 0.2;
    platform.armFaults(plan);
    KvMigrator mig(platform, smallChunks());
    auto res = mig.migrate(0, 1, 4 * MiB, 0);
    EXPECT_EQ(res.status, MigrationStatus::Completed);
    EXPECT_EQ(res.chunks_verified, res.chunks_total);

    const auto &rep = mig.faultReport();
    ASSERT_GT(rep.migration_tag_faults, 0u);
    // Every fault recovered by a retry, and each retry discarded the
    // failed chunk plus its speculative window (at least one chunk).
    EXPECT_EQ(rep.migration_retries, rep.migration_tag_faults);
    EXPECT_GE(rep.discarded_chunks, rep.migration_tag_faults);
    EXPECT_EQ(res.chunks_discarded, rep.discarded_chunks);
}

TEST(KvMigrator, StallWatchdogChargesBackoffAndRecovers)
{
    auto platform = makePlatform();
    fault::FaultPlan plan;
    plan.seed = 3;
    plan.migration_stall_rate = 0.3;
    platform.armFaults(plan);
    KvMigrator mig(platform, smallChunks());
    auto res = mig.migrate(0, 1, 4 * MiB, 0);
    EXPECT_EQ(res.status, MigrationStatus::Completed);
    const auto &rep = mig.faultReport();
    EXPECT_GT(rep.migration_stalls, 0u);
    EXPECT_GT(rep.retry_latency, Tick(0));
    EXPECT_EQ(rep.migration_fallbacks, 0u);
}

TEST(KvMigrator, ExhaustedStallBudgetAbortsStalled)
{
    auto platform = makePlatform();
    fault::FaultPlan plan;
    plan.seed = 3;
    plan.migration_stall_rate = 1.0;
    plan.max_migration_attempts = 3;
    platform.armFaults(plan);
    KvMigrator mig(platform, smallChunks());
    auto res = mig.migrate(0, 1, 1 * MiB, 500);
    EXPECT_EQ(res.status, MigrationStatus::Stalled);
    EXPECT_EQ(res.chunks_verified, 0u);
    // The whole speculative window is abandoned: discarded in the
    // ledger, never verified.
    EXPECT_EQ(res.chunks_discarded, 4u);
    EXPECT_GT(res.done, Tick(500));
    const auto &rep = mig.faultReport();
    EXPECT_EQ(rep.migration_stalls, 3u);
    EXPECT_EQ(rep.migration_fallbacks, 1u);
}

TEST(KvMigrator, DestinationCrashAbandonsUnverifiedChunks)
{
    auto platform = makePlatform();
    fault::FaultPlan plan;
    plan.seed = 9;
    plan.dest_crash_rate = 1.0;
    platform.armFaults(plan);
    KvMigrator mig(platform, smallChunks());
    auto res = mig.migrate(0, 1, 1 * MiB, 0);
    EXPECT_EQ(res.status, MigrationStatus::DestCrashed);
    EXPECT_EQ(res.chunks_verified, 0u);
    EXPECT_EQ(res.chunks_discarded, 4u);
    EXPECT_EQ(mig.faultReport().dest_mid_migration_crashes, 1u);
    EXPECT_EQ(mig.faultReport().migrated_chunks, 0u);
}

TEST(KvMigrator, DisarmedInjectorNeverFails)
{
    auto platform = makePlatform();
    KvMigrator mig(platform, smallChunks());
    for (int i = 0; i < 16; ++i) {
        auto res = mig.migrate(0, 1, 2 * MiB, Tick(i) * 1000);
        ASSERT_EQ(res.status, MigrationStatus::Completed);
        ASSERT_EQ(res.chunks_discarded, 0u);
    }
}
