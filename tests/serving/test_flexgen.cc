#include <gtest/gtest.h>

#include "serving/flexgen.hh"
#include "tests/serving/serving_fixture.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

FlexGenConfig
tinyConfig()
{
    FlexGenConfig cfg;
    cfg.model = tinyModel();
    cfg.batch = 8;
    cfg.input_len = 16;
    cfg.output_len = 8;
    cfg.num_requests = 16;
    cfg.gpu_reserved_bytes = 96 * MiB;
    return cfg;
}

} // namespace

TEST(FlexGen, OffloadsWhenModelExceedsGpu)
{
    runtime::Platform platform(tinyGpu(256 * MiB));
    runtime::PlainRuntime rt(platform);
    FlexGenEngine engine(rt, tinyConfig());
    EXPECT_GT(engine.layerStore().offloadedLayers(), 0u);
    EXPECT_LT(engine.layerStore().residentLayers(),
              tinyModel().num_layers);
}

TEST(FlexGen, RunProducesThroughput)
{
    runtime::Platform platform(tinyGpu(256 * MiB));
    runtime::PlainRuntime rt(platform);
    FlexGenEngine engine(rt, tinyConfig());
    auto result = engine.run();
    EXPECT_EQ(result.generated_tokens, 16u * 8u);
    EXPECT_GT(result.tokens_per_sec, 0.0);
    EXPECT_GT(result.total_time, 0u);
    // Every offloaded layer streamed once per layer pass.
    std::uint64_t passes = 2 * 8; // 2 batches x (1 prefill + 7 decode)
    EXPECT_EQ(rt.stats().h2d_calls,
              passes * engine.layerStore().offloadedLayers() + passes);
}

TEST(FlexGen, CcIsMuchSlowerThanPlain)
{
    runtime::Platform p1(tinyGpu(256 * MiB));
    runtime::Platform p2(tinyGpu(256 * MiB));
    runtime::PlainRuntime plain(p1);
    runtime::CcRuntime cc(p2);
    auto r1 = FlexGenEngine(plain, tinyConfig()).run();
    auto r2 = FlexGenEngine(cc, tinyConfig()).run();
    // Paper Fig. 3a: 82.8-88.2% throughput drop. The exact number
    // depends on compute overlap; require a drop of at least 70%.
    double drop = 1.0 - r2.tokens_per_sec / r1.tokens_per_sec;
    EXPECT_GT(drop, 0.70);
}

TEST(FlexGen, PipeLlmRecoversMostOfTheDrop)
{
    runtime::Platform p1(tinyGpu(256 * MiB));
    runtime::Platform p2(tinyGpu(256 * MiB));
    runtime::PlainRuntime plain(p1);
    auto cfg = tinyPipeConfig(tinyModel());
    cfg.enc_lanes = 8;
    core::PipeLlmRuntime pipe(p2, cfg);
    auto cfg_run = tinyConfig();
    cfg_run.num_requests = 48; // longer run so warmup amortizes
    auto r1 = FlexGenEngine(plain, cfg_run).run();
    auto r2 = FlexGenEngine(pipe, cfg_run).run();
    double drop = 1.0 - r2.tokens_per_sec / r1.tokens_per_sec;
    // Paper Fig. 7: < 19.6% overhead. The tiny configuration is pure
    // IO-bound with a 4-layer cycle and a short warmup-heavy run, so
    // the bound here is looser; the calibrated benches reproduce the
    // paper's band.
    EXPECT_LT(drop, 0.50);
    EXPECT_EQ(p2.gpu(0).integrityFailures(), 0u);
    // The predictor locks onto the layer cycle.
    const auto &ps = pipe.pipeStats();
    EXPECT_GT(double(ps.hits) / double(ps.swap_requests), 0.8);
}

TEST(FlexGen, TooSmallGpuIsFatal)
{
    runtime::Platform platform(tinyGpu(128 * MiB));
    runtime::PlainRuntime rt(platform);
    auto cfg = tinyConfig();
    cfg.gpu_reserved_bytes = 100 * MiB;
    EXPECT_EXIT(FlexGenEngine(rt, cfg), ::testing::ExitedWithCode(1),
                "does not fit");
}

TEST(FlexGen, KvOffloadAddsBidirectionalTraffic)
{
    runtime::Platform p1(tinyGpu(256 * MiB));
    runtime::Platform p2(tinyGpu(256 * MiB));
    runtime::PlainRuntime rt1(p1), rt2(p2);
    auto cfg = tinyConfig();
    auto base = FlexGenEngine(rt1, cfg).run();
    cfg.kv_offload = true;
    auto kv = FlexGenEngine(rt2, cfg).run();
    // Every layer pass adds a KV load and a KV writeback.
    EXPECT_GT(rt2.stats().h2d_bytes, rt1.stats().h2d_bytes);
    EXPECT_GT(rt2.stats().d2h_bytes, 10 * rt1.stats().d2h_bytes);
    EXPECT_LT(kv.tokens_per_sec, base.tokens_per_sec);
    EXPECT_GT(kv.tokens_per_sec, 0.0);
}

TEST(FlexGen, KvOffloadFreesGpuForMoreResidentLayers)
{
    runtime::Platform p1(tinyGpu(256 * MiB));
    runtime::Platform p2(tinyGpu(256 * MiB));
    runtime::PlainRuntime rt1(p1), rt2(p2);
    auto cfg = tinyConfig();
    cfg.gpu_reserved_bytes = 0; // derive from batch/KV placement
    cfg.batch = 48;             // big KV footprint
    FlexGenEngine gpu_kv(rt1, cfg);
    cfg.kv_offload = true;
    FlexGenEngine cpu_kv(rt2, cfg);
    // Moving KV off the GPU leaves more room for weights.
    EXPECT_GE(cpu_kv.layerStore().residentLayers(),
              gpu_kv.layerStore().residentLayers());
}

TEST(FlexGen, KvOffloadUnderPipeLlmStaysCorrect)
{
    // The KV host blocks are rewritten every pass: speculation must
    // never ship stale ciphertext (validator) and the session must
    // survive with lockstep IVs.
    runtime::Platform p(tinyGpu(256 * MiB));
    auto pcfg = tinyPipeConfig(tinyModel());
    pcfg.enc_lanes = 8;
    core::PipeLlmRuntime rt(p, pcfg);
    auto cfg = tinyConfig();
    cfg.kv_offload = true;
    cfg.num_requests = 24;
    auto r = FlexGenEngine(rt, cfg).run();
    EXPECT_GT(r.tokens_per_sec, 0.0);
    EXPECT_EQ(p.gpu(0).integrityFailures(), 0u);
    const auto &ps = rt.pipeStats();
    EXPECT_EQ(ps.hits + ps.misses, ps.swap_requests);
    // A good fraction of the doubled swap stream still hits.
    EXPECT_GT(double(ps.hits) / double(ps.swap_requests), 0.5);
}
