/**
 * @file
 * Disaggregated prefill/decode serving: role-partitioned routing,
 * prefill->decode handoff via encrypted KV migration, and the
 * worker-count independence contract extended to disaggregated runs.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "runtime/cc_runtime.hh"
#include "serving/cluster.hh"
#include "serving/vllm.hh"
#include "tests/serving/cluster_fingerprint.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

VllmConfig
disaggEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 4;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

trace::Trace
disaggTrace(std::size_t n = 16)
{
    trace::DatasetProfile profile{"disagg", 48.0, 0.4, 160.0, 0.4};
    profile.max_len = 192;
    trace::TraceGenerator gen(profile, 5);
    return gen.poisson(n, 200.0);
}

RuntimeFactory
ccFactory()
{
    return [](runtime::Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

ClusterResult
serveDisagg(unsigned threads, unsigned devices,
            const fault::FaultPlan *plan, unsigned prefill_replicas = 0)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, devices,
                               runtime::HostResources{});
    if (plan)
        platform.armFaults(*plan);
    ClusterConfig cfg;
    cfg.engine = disaggEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    cfg.threads = threads;
    cfg.disagg.enabled = true;
    cfg.disagg.prefill_replicas = prefill_replicas;
    ClusterRouter router(platform, ccFactory(), cfg);
    return router.run(disaggTrace());
}

} // namespace

TEST(ClusterDisagg, EveryRequestMigratesAndCompletes)
{
    auto r = serveDisagg(1, 2, nullptr);
    EXPECT_TRUE(r.sharded);
    EXPECT_EQ(r.completed, 16u);
    EXPECT_EQ(r.dropped, 0u);
    // Fault-free: one migration per request, every chunk verified,
    // nothing discarded, and the pipelined stream speculated IVs.
    EXPECT_EQ(r.faults.migrations, 16u);
    EXPECT_GT(r.faults.migrated_chunks, 0u);
    EXPECT_EQ(r.faults.discarded_chunks, 0u);
    EXPECT_GT(r.faults.speculated_migration_ivs, 0u);
    EXPECT_EQ(r.faults.migration_fallbacks, 0u);
    // Arrivals never land on the decode replica.
    EXPECT_TRUE(r.replicas[0].prefill);
    EXPECT_FALSE(r.replicas[1].prefill);
    EXPECT_EQ(r.replicas[1].requests, 0u);
    EXPECT_GT(r.replicas[0].requests, 0u);
    // End-to-end metrics live on the decode replica.
    EXPECT_EQ(r.replicas[1].result.completed, 16u);
    EXPECT_EQ(r.replicas[0].result.completed, 0u);
}

TEST(ClusterDisagg, WorkerCountNeverChangesDisaggResults)
{
    auto one = serveDisagg(1, 4, nullptr);
    auto eight = serveDisagg(8, 4, nullptr);
    auto hw = serveDisagg(0, 4, nullptr);
    ASSERT_TRUE(one.sharded);
    ASSERT_TRUE(eight.sharded);
    EXPECT_EQ(fingerprint(one), fingerprint(eight));
    EXPECT_EQ(fingerprint(one), fingerprint(hw));
    EXPECT_EQ(one.engine_steps, eight.engine_steps);
}

TEST(ClusterDisagg, ArmedDisaggRunsKeepThreadIndependence)
{
    fault::FaultPlan plan;
    plan.seed = 21;
    plan.migration_tag_rate = 0.05;
    plan.migration_stall_rate = 0.02;
    auto one = serveDisagg(1, 4, &plan);
    auto eight = serveDisagg(8, 4, &plan);
    EXPECT_FALSE(one.sharded);
    EXPECT_FALSE(eight.sharded);
    EXPECT_EQ(fingerprint(one), fingerprint(eight));
}

TEST(ClusterDisagg, PrefillReplicaCountIsConfigurable)
{
    auto r = serveDisagg(1, 4, nullptr, 3);
    unsigned prefill = 0;
    std::uint64_t decode_completed = 0;
    for (const auto &rep : r.replicas) {
        prefill += rep.prefill;
        if (!rep.prefill)
            decode_completed += rep.result.completed;
    }
    EXPECT_EQ(prefill, 3u);
    EXPECT_EQ(decode_completed, 16u);
}

TEST(ClusterDisagg, SingleDeviceClusterIgnoresDisagg)
{
    // Disaggregation needs two roles; one device serves normally.
    auto r = serveDisagg(1, 1, nullptr);
    EXPECT_EQ(r.completed, 16u);
    EXPECT_EQ(r.faults.migrations, 0u);
    EXPECT_FALSE(r.replicas[0].prefill);
}

TEST(ClusterDisagg, DisabledDisaggChangesNothing)
{
    // The homogeneous router with disagg default-initialized must
    // behave exactly as before the feature existed.
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2,
                               runtime::HostResources{});
    ClusterConfig cfg;
    cfg.engine = disaggEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    cfg.threads = 1;
    ClusterRouter router(platform, ccFactory(), cfg);
    auto r = router.run(disaggTrace());
    EXPECT_EQ(r.completed, 16u);
    EXPECT_EQ(r.faults.migrations, 0u);
    EXPECT_GT(r.replicas[1].requests, 0u);
}

// Satellite: drainUnfinished vs in-flight migration accounting. A
// handoff (prefill-stage) group must never charge its bootstrap
// output as real work, and draining it must requeue the *full*
// request while returning outstandingCost to exactly zero.
TEST(ClusterDisagg, DrainMidMigrationNeverDoubleCountsOutstandingCost)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 1,
                               runtime::HostResources{});
    runtime::CcRuntime rt(platform, 1, 0);
    VllmConfig cfg = disaggEngine();
    VllmEngine eng(rt, cfg);
    eng.beginRun();

    trace::Request req{7, 0, 96, 40, 0};
    eng.submitPrefill(req);
    // The handoff stub owes its prompt plus one bootstrap token per
    // sampled sequence — never the full 40-token output.
    EXPECT_EQ(eng.outstandingCost(),
              96u + cfg.parallel_sampling * 1u);

    // Mid-prefill crash: drain must free every block and report zero
    // outstanding work (the migrating request belongs to the router
    // now, not to this replica).
    std::uint64_t lost = 0;
    auto orphans = eng.drainUnfinished(lost);
    EXPECT_EQ(eng.outstandingCost(), 0u);
    EXPECT_EQ(eng.freeBlockCount(), eng.totalBlocks());
    ASSERT_EQ(orphans.size(), 1u);
    // The orphan is the full request, not the one-token stub.
    EXPECT_EQ(orphans[0].id, 7u);
    EXPECT_EQ(orphans[0].output_len, 40u);
    EXPECT_EQ(orphans[0].prompt_len, 96u);

    // Same for a migrated decode-stage group: counted once while
    // queued, zero after drain.
    eng.submitMigrated(orphans[0]);
    EXPECT_EQ(eng.outstandingCost(),
              96u + cfg.parallel_sampling * 40u);
    lost = 0;
    auto again = eng.drainUnfinished(lost);
    EXPECT_EQ(eng.outstandingCost(), 0u);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].output_len, 40u);
}

TEST(ClusterDisagg, PrefillStageSkipsCompletionMetrics)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 1,
                               runtime::HostResources{});
    runtime::CcRuntime rt(platform, 1, 0);
    VllmEngine eng(rt, disaggEngine());
    eng.beginRun();

    trace::Request handed{};
    Tick handed_at = 0;
    eng.setCompletionSink(
        [&](const trace::Request &r, Tick at) {
            handed = r;
            handed_at = at;
        });
    eng.submitPrefill(trace::Request{3, 0, 64, 24, 0});
    while (eng.hasWork())
        eng.stepOnce();
    // The sink saw the full request at the prefill-finish tick...
    EXPECT_EQ(handed.id, 3u);
    EXPECT_EQ(handed.output_len, 24u);
    EXPECT_GT(handed_at, Tick(0));
    // ...and nothing was counted as a completion on this replica.
    auto res = eng.finish();
    EXPECT_EQ(res.completed, 0u);
    EXPECT_EQ(res.completed_tokens, 0u);
    EXPECT_TRUE(res.completions.empty());
    EXPECT_EQ(eng.freeBlockCount(), eng.totalBlocks());
}

TEST(ClusterDisagg, MigratedStageSkipsPrefillCompute)
{
    trace::Request req{5, 0, 160, 12, 0};

    // Serve the same request twice: once cold (prefill + decode) and
    // once as a migrated arrival (decode only). Each run gets its own
    // platform — resource timelines are stateful — and the migrated
    // run must finish strictly earlier with strictly fewer kernels.
    Tick cold_done = 0, warm_done = 0;
    std::uint64_t cold_kernels = 0, warm_kernels = 0;
    {
        runtime::Platform platform(tinyGpu(448 * MiB),
                                   crypto::ChannelConfig{}, 1,
                                   runtime::HostResources{});
        runtime::CcRuntime rt(platform, 1, 0);
        VllmEngine eng(rt, disaggEngine());
        eng.beginRun();
        eng.submit(req);
        while (eng.hasWork())
            eng.stepOnce();
        cold_done = eng.clock();
        cold_kernels = rt.stats().kernels;
    }
    {
        runtime::Platform platform(tinyGpu(448 * MiB),
                                   crypto::ChannelConfig{}, 1,
                                   runtime::HostResources{});
        runtime::CcRuntime rt(platform, 1, 0);
        VllmEngine eng(rt, disaggEngine());
        eng.beginRun();
        eng.submitMigrated(req);
        while (eng.hasWork())
            eng.stepOnce();
        warm_done = eng.clock();
        warm_kernels = rt.stats().kernels;
    }
    EXPECT_LT(warm_done, cold_done);
    EXPECT_LT(warm_kernels, cold_kernels);
}
