/**
 * @file
 * Worker-count independence of the sharded cluster co-simulation.
 *
 * The contract: `ClusterConfig::threads` is a wall-clock knob, never a
 * model input. A run's full observable result — every latency sample,
 * completion tick, byte counter and per-replica report, i.e. exactly
 * the material the bench CSVs are printed from — must be bit-identical
 * whether the shards run on one worker or eight, and whether the
 * platform takes the parallel sharded schedule (decoupled: private
 * host resources, faults disarmed) or falls back to the sequential
 * min-clock loop (coupled host, or armed injector).
 */

#include <gtest/gtest.h>

#include <string>

#include "fault/fault.hh"
#include "runtime/cc_runtime.hh"
#include "serving/cluster.hh"
#include "tests/serving/cluster_fingerprint.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

VllmConfig
swapHeavyEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 4;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

trace::Trace
burstTrace()
{
    trace::DatasetProfile profile{"determinism", 48.0, 0.4, 160.0, 0.4};
    profile.max_len = 192;
    trace::TraceGenerator gen(profile, 5);
    return gen.poisson(16, 200.0);
}

RuntimeFactory
ccFactory()
{
    return [](runtime::Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

/** One full serving run on a fresh platform. */
ClusterResult
serve(unsigned threads, const runtime::HostResources &host,
      const fault::FaultPlan *plan)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2, host);
    if (plan)
        platform.armFaults(*plan);
    ClusterConfig cfg;
    cfg.engine = swapHeavyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    cfg.threads = threads;
    ClusterRouter router(platform, ccFactory(), cfg);
    return router.run(burstTrace());
}

} // namespace

TEST(ClusterDeterminism, DecoupledRunTakesTheShardedSchedule)
{
    auto r = serve(1, runtime::HostResources{}, nullptr);
    EXPECT_TRUE(r.sharded);
    EXPECT_GT(r.engine_steps, 0u);
    EXPECT_EQ(r.completed, 16u);
}

TEST(ClusterDeterminism, WorkerCountNeverChangesDecoupledResults)
{
    auto one = serve(1, runtime::HostResources{}, nullptr);
    auto eight = serve(8, runtime::HostResources{}, nullptr);
    auto hw = serve(0, runtime::HostResources{}, nullptr);
    ASSERT_TRUE(one.sharded);
    ASSERT_TRUE(eight.sharded);
    EXPECT_EQ(fingerprint(one), fingerprint(eight));
    EXPECT_EQ(fingerprint(one), fingerprint(hw));
    // The sharded schedule performs exactly the same engine steps
    // regardless of how many workers execute it.
    EXPECT_EQ(one.engine_steps, eight.engine_steps);
}

TEST(ClusterDeterminism, CoupledHostFallsBackAndIgnoresThreads)
{
    runtime::HostResources host;
    host.shared_crypto_lanes = 1;
    auto one = serve(1, host, nullptr);
    auto eight = serve(8, host, nullptr);
    EXPECT_FALSE(one.sharded);
    EXPECT_FALSE(eight.sharded);
    EXPECT_GT(one.engine_steps, 0u);
    EXPECT_EQ(fingerprint(one), fingerprint(eight));
}

TEST(ClusterDeterminism, ArmedInjectorFallsBackAndIgnoresThreads)
{
    // An armed injector's RNG draw order is a machine-wide timeline,
    // so fault runs must keep the sequential schedule.
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.tag_corruption_rate = 0.02;
    auto one = serve(1, runtime::HostResources{}, &plan);
    auto eight = serve(8, runtime::HostResources{}, &plan);
    EXPECT_FALSE(one.sharded);
    EXPECT_FALSE(eight.sharded);
    EXPECT_EQ(fingerprint(one), fingerprint(eight));
}
