#include <gtest/gtest.h>

#include "serving/layer_store.hh"
#include "tests/serving/serving_fixture.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

TEST(LayerStore, PlacesResidentPrefix)
{
    auto model = tinyModel();
    runtime::Platform platform(tinyGpu(256 * MiB));
    runtime::PlainRuntime rt(platform);
    // Budget for exactly 3 layers.
    LayerStore store(rt, model, 3 * model.layerParamBytes() + 1000);
    EXPECT_EQ(store.residentLayers(), 3u);
    EXPECT_EQ(store.offloadedLayers(), 5u);
    EXPECT_TRUE(store.resident(0));
    EXPECT_TRUE(store.resident(2));
    EXPECT_FALSE(store.resident(3));
    EXPECT_NEAR(store.offloadedFraction(), 5.0 / 8.0, 1e-9);
    EXPECT_EQ(store.slots(), 2u);
}

TEST(LayerStore, AllResidentWhenBudgetIsLarge)
{
    auto model = tinyModel();
    runtime::Platform platform(tinyGpu(2 * GiB));
    runtime::PlainRuntime rt(platform);
    LayerStore store(rt, model, 1 * GiB);
    EXPECT_EQ(store.offloadedLayers(), 0u);
    EXPECT_EQ(store.slots(), 0u);
    // Prefetch of a resident layer is free.
    EXPECT_EQ(store.prefetch(0, 1234), 1234u);
    EXPECT_EQ(store.readyAt(0), 0u);
}

TEST(LayerStore, PrefetchMovesWeights)
{
    auto model = tinyModel();
    runtime::Platform platform(tinyGpu(512 * MiB));
    runtime::PlainRuntime rt(platform);
    LayerStore store(rt, model, 0); // everything offloaded
    EXPECT_EQ(store.offloadedLayers(), model.num_layers);

    Tick now = store.prefetch(3, 0);
    EXPECT_GT(store.readyAt(3), 0u);
    now = store.sync(now);
    EXPECT_GE(now, store.readyAt(3));

    // Functional: the slot holds the layer's host bytes.
    auto expect = platform.hostMem().readSample(
        store.hostAddr(3), platform.device(0).channel().sampledLen(
                               store.layerBytes()));
    EXPECT_EQ(platform.gpu(0).memory().readSample(store.slotAddr(3),
                                                    expect.size()),
              expect);
}

TEST(LayerStore, DoubleBufferHazardSerializesSlotReuse)
{
    auto model = tinyModel();
    runtime::Platform platform(tinyGpu(512 * MiB));
    runtime::PlainRuntime rt(platform);
    LayerStore store(rt, model, 0);

    Tick now = store.prefetch(0, 0);
    now = store.prefetch(1, now);
    Tick ready1 = store.readyAt(1);
    // Layer 2 reuses slot 0; pretend compute on layer 0 holds it busy
    // until a late tick.
    Tick busy_until = ready1 + milliseconds(50);
    store.computeDone(0, busy_until);
    store.prefetch(2, now);
    EXPECT_GT(store.readyAt(2), busy_until);
}

TEST(LayerStore, SlotsAlternate)
{
    auto model = tinyModel();
    runtime::Platform platform(tinyGpu(512 * MiB));
    runtime::PlainRuntime rt(platform);
    LayerStore store(rt, model, 0);
    Tick now = store.prefetch(0, 0);
    now = store.prefetch(1, now);
    EXPECT_NE(store.slotAddr(0), store.slotAddr(1));
    store.prefetch(2, now);
    EXPECT_EQ(store.slotAddr(2), store.slotAddr(0));
}
