/**
 * @file
 * ClusterRouter: deterministic routing policies and the guarantee
 * that a 1-device cluster is exactly the single-Platform path.
 */

#include <gtest/gtest.h>

#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "serving/cluster.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

VllmConfig
tinyEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 2;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

RuntimeFactory
ccFactory()
{
    return [](runtime::Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

trace::Trace
tinyTrace(std::size_t n, double rate, std::uint64_t seed = 5)
{
    trace::DatasetProfile profile{"test", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, seed);
    return gen.poisson(n, rate);
}

trace::Request
req(std::uint32_t prompt, std::uint32_t output)
{
    trace::Request r;
    r.prompt_len = prompt;
    r.output_len = output;
    return r;
}

/**
 * A burst that overflows the KV pool: long outputs with wide sampling
 * force preemptions, so both replicas push hundreds of MB of swap
 * traffic through the CPU crypto lanes and the PCIe links — enough
 * offered load to expose shared-host contention.
 */
VllmConfig
swapHeavyEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 4;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

trace::Trace
swapHeavyTrace()
{
    trace::DatasetProfile profile{"swap-heavy", 48.0, 0.4, 160.0, 0.4};
    profile.max_len = 192;
    trace::TraceGenerator gen(profile, 5);
    return gen.poisson(16, 200.0);
}

} // namespace

TEST(ClusterRouter, RoundRobinCyclesInArrivalOrder)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 3);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);
    ASSERT_EQ(router.numReplicas(), 3u);

    std::vector<runtime::DeviceId> got;
    for (int i = 0; i < 7; ++i)
        got.push_back(router.route(req(10, 10)).value());
    EXPECT_EQ(got, (std::vector<runtime::DeviceId>{0, 1, 2, 0, 1, 2,
                                                   0}));
}

TEST(ClusterRouter, LeastLoadedPicksSmallestEstimate)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 3);
    ClusterConfig cfg;
    cfg.engine = tinyEngine(); // parallel_sampling = 2
    cfg.policy = RoutePolicy::LeastLoaded;
    ClusterRouter router(platform, ccFactory(), cfg);

    // Empty loads tie: lowest device id wins.
    EXPECT_EQ(router.route(req(100, 10)).value(), 0u); // load 0: 120
    EXPECT_EQ(router.route(req(10, 5)).value(), 1u);   // load 1: 20
    EXPECT_EQ(router.route(req(10, 5)).value(), 2u);   // load 2: 20
    // 1 and 2 tie at 20; the lower id takes the next request.
    EXPECT_EQ(router.route(req(200, 10)).value(), 1u); // load 1: 240
    EXPECT_EQ(router.route(req(10, 5)).value(), 2u);   // load 2: 40
    EXPECT_EQ(router.route(req(10, 5)).value(), 2u);   // load 2: 60
    EXPECT_EQ(router.route(req(10, 5)).value(), 2u);   // load 2: 80
    EXPECT_EQ(router.route(req(10, 5)).value(), 2u);   // load 2: 100
    EXPECT_EQ(router.route(req(10, 5)).value(), 2u);   // 120, ties 0
    EXPECT_EQ(router.route(req(10, 5)).value(), 0u);   // 0 wins
}

TEST(ClusterRouter, RouteReportsNoCandidateWhenAllReplicasDead)
{
    // Regression: route() used to assert on an all-dead cluster. The
    // caller (run loop, harnesses) must get an explicit signal it can
    // act on instead of a crash.
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    ClusterRouter router(platform, ccFactory(), cfg);

    router.markReplicaDead(0);
    // One survivor: routing still works and targets it.
    EXPECT_EQ(router.route(req(10, 10)).value(), 1u);
    router.markReplicaDead(1);
    EXPECT_EQ(router.aliveCount(), 0u);
    EXPECT_EQ(router.route(req(10, 10)), std::nullopt);

    // Same signal from the round-robin walk.
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter rr(platform, ccFactory(), cfg);
    rr.markReplicaDead(0);
    rr.markReplicaDead(1);
    EXPECT_EQ(rr.route(req(10, 10)), std::nullopt);
}

TEST(ClusterRouter, RouteBackpressuresWhenEveryReplicaIsCapped)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine(); // parallel_sampling = 2
    cfg.policy = RoutePolicy::LeastLoaded;
    cfg.admission.max_outstanding_cost = 100;
    ClusterRouter router(platform, ccFactory(), cfg);

    // cost = 40 + 2 * 30 = 100: both replicas fill exactly to the cap
    // (idle replicas always qualify)...
    EXPECT_EQ(router.route(req(40, 30)).value(), 0u);
    EXPECT_EQ(router.route(req(40, 30)).value(), 1u);
    // ...so the third request has no candidate.
    EXPECT_EQ(router.route(req(10, 5)), std::nullopt);

    // An oversized request still routes onto an *idle* replica: the
    // cap is backpressure, not a request-size limit, so it can never
    // wedge a request that some empty replica could serve.
    ClusterRouter fresh(platform, ccFactory(), cfg);
    EXPECT_EQ(fresh.route(req(400, 200)).value(), 0u);
}

TEST(ClusterRouter, SingleReplicaMatchesDirectPath)
{
    auto trace = tinyTrace(16, 2.0);

    // Direct single-Platform path.
    runtime::Platform direct(tinyGpu(448 * MiB));
    runtime::CcRuntime direct_rt(direct, 1, 0);
    VllmEngine direct_engine(direct_rt, tinyEngine());
    auto want = direct_engine.run(trace);

    // 1-device cluster behind the router.
    runtime::Platform clustered(tinyGpu(448 * MiB),
                                crypto::ChannelConfig{}, 1);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    ClusterRouter router(clustered, ccFactory(), cfg);
    auto got = router.run(trace);

    ASSERT_EQ(got.replicas.size(), 1u);
    const auto &rep = got.replicas[0];
    EXPECT_EQ(rep.requests, trace.size());
    EXPECT_EQ(rep.runtime_name, "CC");

    // Bit-identical serving result...
    EXPECT_EQ(rep.result.normalized_latency, want.normalized_latency);
    EXPECT_EQ(rep.result.p90_normalized_latency,
              want.p90_normalized_latency);
    EXPECT_EQ(rep.result.completed, want.completed);
    EXPECT_EQ(rep.result.preemptions, want.preemptions);
    EXPECT_EQ(rep.result.recomputed_tokens, want.recomputed_tokens);
    EXPECT_EQ(rep.result.swap_out_bytes, want.swap_out_bytes);
    EXPECT_EQ(rep.result.swap_in_bytes, want.swap_in_bytes);
    EXPECT_EQ(rep.result.total_time, want.total_time);

    // ...and bit-identical runtime traffic.
    const auto &ws = direct_rt.stats();
    EXPECT_EQ(rep.runtime_stats.h2d_calls, ws.h2d_calls);
    EXPECT_EQ(rep.runtime_stats.h2d_bytes, ws.h2d_bytes);
    EXPECT_EQ(rep.runtime_stats.d2h_calls, ws.d2h_calls);
    EXPECT_EQ(rep.runtime_stats.d2h_bytes, ws.d2h_bytes);
    EXPECT_EQ(rep.runtime_stats.kernels, ws.kernels);
    EXPECT_EQ(rep.runtime_stats.cpu_encrypt_bytes,
              ws.cpu_encrypt_bytes);
    EXPECT_EQ(rep.runtime_stats.cpu_decrypt_bytes,
              ws.cpu_decrypt_bytes);

    EXPECT_EQ(got.normalized_latency, want.normalized_latency);
    EXPECT_EQ(got.makespan, want.total_time);
    EXPECT_EQ(got.completed, want.completed);
}

TEST(ClusterRouter, RepeatedRunsStartFromCleanLoadAccounting)
{
    // A second run() over the same router must route as if the first
    // never happened: stale load totals (or a mid-rotation cursor)
    // would skew routing toward replicas the previous trace spared.
    auto trace = tinyTrace(12, 2.0);
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);

    // Skew the rotation cursor and load totals via standalone routing.
    router.route(req(4000, 100));

    auto first = router.run(trace);
    auto second = router.run(trace);
    EXPECT_EQ(first.replicas[0].requests, second.replicas[0].requests);
    EXPECT_EQ(first.replicas[1].requests, second.replicas[1].requests);
    EXPECT_EQ(first.replicas[0].requests, 6u);
    EXPECT_EQ(first.completed, 12u);
    EXPECT_EQ(second.completed, 12u);
}

TEST(ClusterRouter, LeastLoadedReadsLiveLoadDuringRun)
{
    // Interleaved co-simulation: a replica that has *finished* its
    // requests by the time a new one arrives must look idle to the
    // router. The trace has a burst at t=0 followed by stragglers far
    // later; with live load every straggler goes to device 0 (ties at
    // zero outstanding go to the lowest id), whereas cumulative-total
    // accounting would bounce them between devices.
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    ClusterRouter router(platform, ccFactory(), cfg);

    trace::Trace trace;
    for (int i = 0; i < 4; ++i) {
        auto r = req(40, 24);
        r.id = i;
        r.arrival = 0;
        trace.push_back(r);
    }
    for (int i = 0; i < 3; ++i) {
        auto r = req(40, 24);
        r.id = 4 + i;
        // Far beyond the burst's completion.
        r.arrival = seconds(400 + 100 * i);
        trace.push_back(r);
    }
    auto result = router.run(trace);
    EXPECT_EQ(result.completed, 7u);
    // Burst split 2/2, all three stragglers landed on device 0.
    EXPECT_EQ(result.replicas[0].requests, 5u);
    EXPECT_EQ(result.replicas[1].requests, 2u);
}

TEST(ClusterRouter, SharedCryptoPoolMakesReplicasContend)
{
    // Acceptance: two CC replicas draw bounce-buffer encryption from
    // the same machine-wide lane pool. Squeezing both onto one shared
    // lane must cost strictly more wall clock than giving each replica
    // its private lane — and leave the same completed work behind.
    auto trace = swapHeavyTrace();

    runtime::Platform private_p(tinyGpu(448 * MiB),
                                crypto::ChannelConfig{}, 2);
    runtime::HostResources host;
    host.shared_crypto_lanes = 1;
    runtime::Platform shared_p(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2, host);
    ASSERT_TRUE(shared_p.cryptoEngine().shared());

    ClusterConfig cfg;
    cfg.engine = swapHeavyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    auto base = ClusterRouter(private_p, ccFactory(), cfg).run(trace);
    auto slow = ClusterRouter(shared_p, ccFactory(), cfg).run(trace);

    // The burst really did preempt and swap on both variants.
    EXPECT_GT(base.replicas[0].result.preemptions, 0u);
    EXPECT_GT(base.replicas[1].result.preemptions, 0u);
    EXPECT_EQ(base.completed, 16u);
    EXPECT_EQ(slow.completed, 16u);
    EXPECT_GT(slow.makespan, base.makespan);
    EXPECT_GT(slow.normalized_latency, base.normalized_latency);
    // All the traffic really funneled through the one shared pool.
    EXPECT_GT(shared_p.cryptoEngine().pool()->bytesServed(), 0u);
}

TEST(ClusterRouter, HostBridgeCapThrottlesReplicaTransfers)
{
    // The same two-replica burst under a bridge far below the summed
    // PCIe rate: per-device links stay private, but their aggregate is
    // bridge-bound, so the cluster finishes strictly later.
    auto trace = swapHeavyTrace();

    runtime::Platform free_p(tinyGpu(448 * MiB),
                             crypto::ChannelConfig{}, 2);
    runtime::HostResources host;
    host.bridge_bw = 5e9; // well under one link's 55 GB/s
    runtime::Platform capped_p(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2, host);
    ASSERT_NE(capped_p.hostBridge(), nullptr);

    ClusterConfig cfg;
    cfg.engine = swapHeavyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    auto base = ClusterRouter(free_p, ccFactory(), cfg).run(trace);
    auto slow = ClusterRouter(capped_p, ccFactory(), cfg).run(trace);

    EXPECT_EQ(base.completed, 16u);
    EXPECT_EQ(slow.completed, 16u);
    EXPECT_GT(slow.makespan, base.makespan);
    EXPECT_GT(capped_p.hostBridge()->bytesServed(), 0u);
}

TEST(ClusterRouter, TwoReplicasServeTheWholeTrace)
{
    auto trace = tinyTrace(12, 2.0);
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);
    auto result = router.run(trace);

    ASSERT_EQ(result.replicas.size(), 2u);
    EXPECT_EQ(result.replicas[0].requests, 6u);
    EXPECT_EQ(result.replicas[1].requests, 6u);
    EXPECT_EQ(result.completed, 12u);
    EXPECT_EQ(result.replicas[0].result.completed +
                  result.replicas[1].result.completed,
              12u);
    EXPECT_GT(result.tokens_per_sec, 0.0);
    EXPECT_GT(result.normalized_latency, 0.0);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(platform.gpu(1).integrityFailures(), 0u);
    // Both devices really served CC traffic.
    EXPECT_GT(platform.gpu(0).rxCounter(), 0u);
    EXPECT_GT(platform.gpu(1).rxCounter(), 0u);
}

// --------------------------------------------------------------------
// Overload protection: shedding, backpressure, and SLO accounting.
// --------------------------------------------------------------------

TEST(ClusterRouter, DisabledAdmissionChangesNothingButSloCounters)
{
    // Deadlines with shedding off are pure bookkeeping: the serving
    // schedule, routing split, and latency must be bit-identical to a
    // deadline-free run of the same trace.
    auto plain = tinyTrace(16, 300.0);
    auto stamped = plain;
    trace::TraceGenerator::stampDeadlines(stamped, milliseconds(1), 0);

    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;

    runtime::Platform p1(tinyGpu(448 * MiB), crypto::ChannelConfig{},
                         2);
    runtime::Platform p2(tinyGpu(448 * MiB), crypto::ChannelConfig{},
                         2);
    auto base = ClusterRouter(p1, ccFactory(), cfg).run(plain);
    auto slo = ClusterRouter(p2, ccFactory(), cfg).run(stamped);

    EXPECT_EQ(slo.completed, base.completed);
    EXPECT_EQ(slo.makespan, base.makespan);
    EXPECT_EQ(slo.normalized_latency, base.normalized_latency);
    EXPECT_EQ(slo.p90_normalized_latency, base.p90_normalized_latency);
    EXPECT_EQ(slo.replicas[0].requests, base.replicas[0].requests);
    EXPECT_EQ(slo.replicas[1].requests, base.replicas[1].requests);
    EXPECT_EQ(slo.shed_requests, 0u);
    EXPECT_EQ(slo.backpressure_deferrals, 0u);
    EXPECT_EQ(base.slo_missed, 0u); // no deadlines, no misses
    // The 1 ms floor is hopeless: the stamped run records the misses
    // without changing a single scheduling decision.
    EXPECT_GT(slo.slo_missed, 0u);
}

TEST(ClusterRouter, SheddingIsHonestAndBoundsTailLatency)
{
    // A heavy burst with tight deadlines. Unbounded, the queue grows
    // and the completed-latency tail blows up; with deadline shedding
    // the router refuses provably-late requests, and every request is
    // accounted for: completed + shed == offered.
    // A ~6 ms floor sits inside the burst's queueing tail (solo
    // requests finish in a few ms, queued ones in 10-15 ms): an
    // unbounded router serves everything but blows through deadlines.
    auto trace = tinyTrace(60, 3000.0);
    trace::TraceGenerator::stampDeadlines(trace, milliseconds(6),
                                          microseconds(100));

    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;

    runtime::Platform p1(tinyGpu(448 * MiB), crypto::ChannelConfig{},
                         2);
    auto unbounded = ClusterRouter(p1, ccFactory(), cfg).run(trace);
    ASSERT_EQ(unbounded.completed, trace.size());
    EXPECT_EQ(unbounded.shed_requests, 0u);

    cfg.admission.shed_enabled = true;
    cfg.admission.service_cost_per_sec = 20000;
    runtime::Platform p2(tinyGpu(448 * MiB), crypto::ChannelConfig{},
                         2);
    auto bounded = ClusterRouter(p2, ccFactory(), cfg).run(trace);

    EXPECT_GT(bounded.shed_requests, 0u);
    EXPECT_GT(bounded.shed_tokens, 0u);
    // Honest accounting: nothing silently vanishes.
    EXPECT_EQ(bounded.completed + bounded.shed_requests, trace.size());
    EXPECT_EQ(bounded.dropped, 0u);
    // Shedding the provably-late keeps the served tail in check.
    EXPECT_LT(bounded.p90_normalized_latency,
              unbounded.p90_normalized_latency);
    EXPECT_GT(unbounded.slo_missed, 0u);
    EXPECT_LT(bounded.slo_missed, unbounded.slo_missed);
}

TEST(ClusterRouter, BackpressureCapDefersButCompletesEverything)
{
    // A small outstanding-cost cap under the same burst: arrivals are
    // held at the front-end instead of piling onto replica queues,
    // but — unlike shedding — every request is eventually served.
    auto trace = tinyTrace(40, 3000.0);

    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    cfg.admission.max_outstanding_cost = 150;

    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    auto result = ClusterRouter(platform, ccFactory(), cfg).run(trace);

    EXPECT_GT(result.backpressure_deferrals, 0u);
    EXPECT_EQ(result.completed, trace.size());
    EXPECT_EQ(result.shed_requests, 0u);
    EXPECT_EQ(result.dropped, 0u);
}

TEST(ClusterRouter, SloGoodputCountsOnlyInDeadlineTokens)
{
    // Hopeless deadlines: every completion is late, so SLO goodput
    // collapses to zero while raw goodput stays intact.
    auto trace = tinyTrace(12, 300.0);
    trace::TraceGenerator::stampDeadlines(trace, 1, 0);

    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    auto result = ClusterRouter(platform, ccFactory(), cfg).run(trace);

    EXPECT_EQ(result.completed, trace.size());
    EXPECT_EQ(result.slo_missed, trace.size());
    EXPECT_GT(result.goodput_tokens_per_sec, 0.0);
    EXPECT_EQ(result.slo_goodput_tokens_per_sec, 0.0);
}

TEST(ClusterRouter, TruePercentileComesFromMergedSamples)
{
    // The cluster p90 must be a percentile of the merged per-request
    // samples, not a weighted mean of replica p90s; the two only
    // coincide for a single replica.
    auto trace = tinyTrace(24, 300.0);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    auto result = ClusterRouter(platform, ccFactory(), cfg).run(trace);

    sim::SampleSet merged;
    for (const auto &rep : result.replicas) {
        for (double s : rep.result.latency_samples.samples())
            merged.add(s);
    }
    ASSERT_EQ(merged.count(), trace.size());
    EXPECT_DOUBLE_EQ(result.p90_normalized_latency,
                     merged.percentile(90));

    double weighted = 0;
    for (const auto &rep : result.replicas) {
        weighted += rep.result.p90_normalized_latency *
                    double(rep.result.completed);
    }
    weighted /= double(result.completed);
    EXPECT_DOUBLE_EQ(result.replica_weighted_p90, weighted);
}
