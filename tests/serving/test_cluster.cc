/**
 * @file
 * ClusterRouter: deterministic routing policies and the guarantee
 * that a 1-device cluster is exactly the single-Platform path.
 */

#include <gtest/gtest.h>

#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "serving/cluster.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

VllmConfig
tinyEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 2;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

RuntimeFactory
ccFactory()
{
    return [](runtime::Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

trace::Trace
tinyTrace(std::size_t n, double rate, std::uint64_t seed = 5)
{
    trace::DatasetProfile profile{"test", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, seed);
    return gen.poisson(n, rate);
}

trace::Request
req(std::uint32_t prompt, std::uint32_t output)
{
    trace::Request r;
    r.prompt_len = prompt;
    r.output_len = output;
    return r;
}

/**
 * A burst that overflows the KV pool: long outputs with wide sampling
 * force preemptions, so both replicas push hundreds of MB of swap
 * traffic through the CPU crypto lanes and the PCIe links — enough
 * offered load to expose shared-host contention.
 */
VllmConfig
swapHeavyEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 4;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

trace::Trace
swapHeavyTrace()
{
    trace::DatasetProfile profile{"swap-heavy", 48.0, 0.4, 160.0, 0.4};
    profile.max_len = 192;
    trace::TraceGenerator gen(profile, 5);
    return gen.poisson(16, 200.0);
}

} // namespace

TEST(ClusterRouter, RoundRobinCyclesInArrivalOrder)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 3);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);
    ASSERT_EQ(router.numReplicas(), 3u);

    std::vector<runtime::DeviceId> got;
    for (int i = 0; i < 7; ++i)
        got.push_back(router.route(req(10, 10)));
    EXPECT_EQ(got, (std::vector<runtime::DeviceId>{0, 1, 2, 0, 1, 2,
                                                   0}));
}

TEST(ClusterRouter, LeastLoadedPicksSmallestEstimate)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 3);
    ClusterConfig cfg;
    cfg.engine = tinyEngine(); // parallel_sampling = 2
    cfg.policy = RoutePolicy::LeastLoaded;
    ClusterRouter router(platform, ccFactory(), cfg);

    // Empty loads tie: lowest device id wins.
    EXPECT_EQ(router.route(req(100, 10)), 0u); // load 0: 120
    EXPECT_EQ(router.route(req(10, 5)), 1u);   // load 1: 20
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 20
    // 1 and 2 tie at 20; the lower id takes the next request.
    EXPECT_EQ(router.route(req(200, 10)), 1u); // load 1: 240
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 40
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 60
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 80
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 100
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 120, ties 0
    EXPECT_EQ(router.route(req(10, 5)), 0u);   // 0 wins the tie
}

TEST(ClusterRouter, SingleReplicaMatchesDirectPath)
{
    auto trace = tinyTrace(16, 2.0);

    // Direct single-Platform path.
    runtime::Platform direct(tinyGpu(448 * MiB));
    runtime::CcRuntime direct_rt(direct, 1, 0);
    VllmEngine direct_engine(direct_rt, tinyEngine());
    auto want = direct_engine.run(trace);

    // 1-device cluster behind the router.
    runtime::Platform clustered(tinyGpu(448 * MiB),
                                crypto::ChannelConfig{}, 1);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    ClusterRouter router(clustered, ccFactory(), cfg);
    auto got = router.run(trace);

    ASSERT_EQ(got.replicas.size(), 1u);
    const auto &rep = got.replicas[0];
    EXPECT_EQ(rep.requests, trace.size());
    EXPECT_EQ(rep.runtime_name, "CC");

    // Bit-identical serving result...
    EXPECT_EQ(rep.result.normalized_latency, want.normalized_latency);
    EXPECT_EQ(rep.result.p90_normalized_latency,
              want.p90_normalized_latency);
    EXPECT_EQ(rep.result.completed, want.completed);
    EXPECT_EQ(rep.result.preemptions, want.preemptions);
    EXPECT_EQ(rep.result.recomputed_tokens, want.recomputed_tokens);
    EXPECT_EQ(rep.result.swap_out_bytes, want.swap_out_bytes);
    EXPECT_EQ(rep.result.swap_in_bytes, want.swap_in_bytes);
    EXPECT_EQ(rep.result.total_time, want.total_time);

    // ...and bit-identical runtime traffic.
    const auto &ws = direct_rt.stats();
    EXPECT_EQ(rep.runtime_stats.h2d_calls, ws.h2d_calls);
    EXPECT_EQ(rep.runtime_stats.h2d_bytes, ws.h2d_bytes);
    EXPECT_EQ(rep.runtime_stats.d2h_calls, ws.d2h_calls);
    EXPECT_EQ(rep.runtime_stats.d2h_bytes, ws.d2h_bytes);
    EXPECT_EQ(rep.runtime_stats.kernels, ws.kernels);
    EXPECT_EQ(rep.runtime_stats.cpu_encrypt_bytes,
              ws.cpu_encrypt_bytes);
    EXPECT_EQ(rep.runtime_stats.cpu_decrypt_bytes,
              ws.cpu_decrypt_bytes);

    EXPECT_EQ(got.normalized_latency, want.normalized_latency);
    EXPECT_EQ(got.makespan, want.total_time);
    EXPECT_EQ(got.completed, want.completed);
}

TEST(ClusterRouter, RepeatedRunsStartFromCleanLoadAccounting)
{
    // A second run() over the same router must route as if the first
    // never happened: stale load totals (or a mid-rotation cursor)
    // would skew routing toward replicas the previous trace spared.
    auto trace = tinyTrace(12, 2.0);
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);

    // Skew the rotation cursor and load totals via standalone routing.
    router.route(req(4000, 100));

    auto first = router.run(trace);
    auto second = router.run(trace);
    EXPECT_EQ(first.replicas[0].requests, second.replicas[0].requests);
    EXPECT_EQ(first.replicas[1].requests, second.replicas[1].requests);
    EXPECT_EQ(first.replicas[0].requests, 6u);
    EXPECT_EQ(first.completed, 12u);
    EXPECT_EQ(second.completed, 12u);
}

TEST(ClusterRouter, LeastLoadedReadsLiveLoadDuringRun)
{
    // Interleaved co-simulation: a replica that has *finished* its
    // requests by the time a new one arrives must look idle to the
    // router. The trace has a burst at t=0 followed by stragglers far
    // later; with live load every straggler goes to device 0 (ties at
    // zero outstanding go to the lowest id), whereas cumulative-total
    // accounting would bounce them between devices.
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    ClusterRouter router(platform, ccFactory(), cfg);

    trace::Trace trace;
    for (int i = 0; i < 4; ++i) {
        auto r = req(40, 24);
        r.id = i;
        r.arrival = 0;
        trace.push_back(r);
    }
    for (int i = 0; i < 3; ++i) {
        auto r = req(40, 24);
        r.id = 4 + i;
        // Far beyond the burst's completion.
        r.arrival = seconds(400 + 100 * i);
        trace.push_back(r);
    }
    auto result = router.run(trace);
    EXPECT_EQ(result.completed, 7u);
    // Burst split 2/2, all three stragglers landed on device 0.
    EXPECT_EQ(result.replicas[0].requests, 5u);
    EXPECT_EQ(result.replicas[1].requests, 2u);
}

TEST(ClusterRouter, SharedCryptoPoolMakesReplicasContend)
{
    // Acceptance: two CC replicas draw bounce-buffer encryption from
    // the same machine-wide lane pool. Squeezing both onto one shared
    // lane must cost strictly more wall clock than giving each replica
    // its private lane — and leave the same completed work behind.
    auto trace = swapHeavyTrace();

    runtime::Platform private_p(tinyGpu(448 * MiB),
                                crypto::ChannelConfig{}, 2);
    runtime::HostResources host;
    host.shared_crypto_lanes = 1;
    runtime::Platform shared_p(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2, host);
    ASSERT_TRUE(shared_p.cryptoEngine().shared());

    ClusterConfig cfg;
    cfg.engine = swapHeavyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    auto base = ClusterRouter(private_p, ccFactory(), cfg).run(trace);
    auto slow = ClusterRouter(shared_p, ccFactory(), cfg).run(trace);

    // The burst really did preempt and swap on both variants.
    EXPECT_GT(base.replicas[0].result.preemptions, 0u);
    EXPECT_GT(base.replicas[1].result.preemptions, 0u);
    EXPECT_EQ(base.completed, 16u);
    EXPECT_EQ(slow.completed, 16u);
    EXPECT_GT(slow.makespan, base.makespan);
    EXPECT_GT(slow.normalized_latency, base.normalized_latency);
    // All the traffic really funneled through the one shared pool.
    EXPECT_GT(shared_p.cryptoEngine().pool()->bytesServed(), 0u);
}

TEST(ClusterRouter, HostBridgeCapThrottlesReplicaTransfers)
{
    // The same two-replica burst under a bridge far below the summed
    // PCIe rate: per-device links stay private, but their aggregate is
    // bridge-bound, so the cluster finishes strictly later.
    auto trace = swapHeavyTrace();

    runtime::Platform free_p(tinyGpu(448 * MiB),
                             crypto::ChannelConfig{}, 2);
    runtime::HostResources host;
    host.bridge_bw = 5e9; // well under one link's 55 GB/s
    runtime::Platform capped_p(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2, host);
    ASSERT_NE(capped_p.hostBridge(), nullptr);

    ClusterConfig cfg;
    cfg.engine = swapHeavyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    auto base = ClusterRouter(free_p, ccFactory(), cfg).run(trace);
    auto slow = ClusterRouter(capped_p, ccFactory(), cfg).run(trace);

    EXPECT_EQ(base.completed, 16u);
    EXPECT_EQ(slow.completed, 16u);
    EXPECT_GT(slow.makespan, base.makespan);
    EXPECT_GT(capped_p.hostBridge()->bytesServed(), 0u);
}

TEST(ClusterRouter, TwoReplicasServeTheWholeTrace)
{
    auto trace = tinyTrace(12, 2.0);
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);
    auto result = router.run(trace);

    ASSERT_EQ(result.replicas.size(), 2u);
    EXPECT_EQ(result.replicas[0].requests, 6u);
    EXPECT_EQ(result.replicas[1].requests, 6u);
    EXPECT_EQ(result.completed, 12u);
    EXPECT_EQ(result.replicas[0].result.completed +
                  result.replicas[1].result.completed,
              12u);
    EXPECT_GT(result.tokens_per_sec, 0.0);
    EXPECT_GT(result.normalized_latency, 0.0);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(platform.gpu(1).integrityFailures(), 0u);
    // Both devices really served CC traffic.
    EXPECT_GT(platform.gpu(0).rxCounter(), 0u);
    EXPECT_GT(platform.gpu(1).rxCounter(), 0u);
}
