/**
 * @file
 * ClusterRouter: deterministic routing policies and the guarantee
 * that a 1-device cluster is exactly the single-Platform path.
 */

#include <gtest/gtest.h>

#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "serving/cluster.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

VllmConfig
tinyEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 2;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

RuntimeFactory
ccFactory()
{
    return [](runtime::Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

trace::Trace
tinyTrace(std::size_t n, double rate, std::uint64_t seed = 5)
{
    trace::DatasetProfile profile{"test", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, seed);
    return gen.poisson(n, rate);
}

trace::Request
req(std::uint32_t prompt, std::uint32_t output)
{
    trace::Request r;
    r.prompt_len = prompt;
    r.output_len = output;
    return r;
}

} // namespace

TEST(ClusterRouter, RoundRobinCyclesInArrivalOrder)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 3);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);
    ASSERT_EQ(router.numReplicas(), 3u);

    std::vector<runtime::DeviceId> got;
    for (int i = 0; i < 7; ++i)
        got.push_back(router.route(req(10, 10)));
    EXPECT_EQ(got, (std::vector<runtime::DeviceId>{0, 1, 2, 0, 1, 2,
                                                   0}));
}

TEST(ClusterRouter, LeastLoadedPicksSmallestEstimate)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 3);
    ClusterConfig cfg;
    cfg.engine = tinyEngine(); // parallel_sampling = 2
    cfg.policy = RoutePolicy::LeastLoaded;
    ClusterRouter router(platform, ccFactory(), cfg);

    // Empty loads tie: lowest device id wins.
    EXPECT_EQ(router.route(req(100, 10)), 0u); // load 0: 120
    EXPECT_EQ(router.route(req(10, 5)), 1u);   // load 1: 20
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 20
    // 1 and 2 tie at 20; the lower id takes the next request.
    EXPECT_EQ(router.route(req(200, 10)), 1u); // load 1: 240
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 40
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 60
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 80
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 100
    EXPECT_EQ(router.route(req(10, 5)), 2u);   // load 2: 120, ties 0
    EXPECT_EQ(router.route(req(10, 5)), 0u);   // 0 wins the tie
}

TEST(ClusterRouter, SingleReplicaMatchesDirectPath)
{
    auto trace = tinyTrace(16, 2.0);

    // Direct single-Platform path.
    runtime::Platform direct(tinyGpu(448 * MiB));
    runtime::CcRuntime direct_rt(direct, 1, 0);
    VllmEngine direct_engine(direct_rt, tinyEngine());
    auto want = direct_engine.run(trace);

    // 1-device cluster behind the router.
    runtime::Platform clustered(tinyGpu(448 * MiB),
                                crypto::ChannelConfig{}, 1);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    ClusterRouter router(clustered, ccFactory(), cfg);
    auto got = router.run(trace);

    ASSERT_EQ(got.replicas.size(), 1u);
    const auto &rep = got.replicas[0];
    EXPECT_EQ(rep.requests, trace.size());
    EXPECT_EQ(rep.runtime_name, "CC");

    // Bit-identical serving result...
    EXPECT_EQ(rep.result.normalized_latency, want.normalized_latency);
    EXPECT_EQ(rep.result.p90_normalized_latency,
              want.p90_normalized_latency);
    EXPECT_EQ(rep.result.completed, want.completed);
    EXPECT_EQ(rep.result.preemptions, want.preemptions);
    EXPECT_EQ(rep.result.recomputed_tokens, want.recomputed_tokens);
    EXPECT_EQ(rep.result.swap_out_bytes, want.swap_out_bytes);
    EXPECT_EQ(rep.result.swap_in_bytes, want.swap_in_bytes);
    EXPECT_EQ(rep.result.total_time, want.total_time);

    // ...and bit-identical runtime traffic.
    const auto &ws = direct_rt.stats();
    EXPECT_EQ(rep.runtime_stats.h2d_calls, ws.h2d_calls);
    EXPECT_EQ(rep.runtime_stats.h2d_bytes, ws.h2d_bytes);
    EXPECT_EQ(rep.runtime_stats.d2h_calls, ws.d2h_calls);
    EXPECT_EQ(rep.runtime_stats.d2h_bytes, ws.d2h_bytes);
    EXPECT_EQ(rep.runtime_stats.kernels, ws.kernels);
    EXPECT_EQ(rep.runtime_stats.cpu_encrypt_bytes,
              ws.cpu_encrypt_bytes);
    EXPECT_EQ(rep.runtime_stats.cpu_decrypt_bytes,
              ws.cpu_decrypt_bytes);

    EXPECT_EQ(got.normalized_latency, want.normalized_latency);
    EXPECT_EQ(got.makespan, want.total_time);
    EXPECT_EQ(got.completed, want.completed);
}

TEST(ClusterRouter, TwoReplicasServeTheWholeTrace)
{
    auto trace = tinyTrace(12, 2.0);
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);
    auto result = router.run(trace);

    ASSERT_EQ(result.replicas.size(), 2u);
    EXPECT_EQ(result.replicas[0].requests, 6u);
    EXPECT_EQ(result.replicas[1].requests, 6u);
    EXPECT_EQ(result.completed, 12u);
    EXPECT_EQ(result.replicas[0].result.completed +
                  result.replicas[1].result.completed,
              12u);
    EXPECT_GT(result.tokens_per_sec, 0.0);
    EXPECT_GT(result.normalized_latency, 0.0);
    EXPECT_EQ(platform.gpu(0).integrityFailures(), 0u);
    EXPECT_EQ(platform.gpu(1).integrityFailures(), 0u);
    // Both devices really served CC traffic.
    EXPECT_GT(platform.gpu(0).rxCounter(), 0u);
    EXPECT_GT(platform.gpu(1).rxCounter(), 0u);
}
