/** @file Shared scaled-down platform for serving-engine tests. */

#ifndef PIPELLM_TESTS_SERVING_SERVING_FIXTURE_HH
#define PIPELLM_TESTS_SERVING_SERVING_FIXTURE_HH

#include "gpu/spec.hh"
#include "llm/model.hh"
#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"

namespace serving_test {

/** A toy transformer small enough for fast tests. */
inline pipellm::llm::ModelConfig
tinyModel()
{
    pipellm::llm::ModelConfig m;
    m.name = "tiny";
    m.num_layers = 8;
    m.hidden = 1024;
    m.heads = 16;
    m.vocab = 32000;
    m.max_positions = 512;
    return m;
}

/** A shrunken GPU that forces the tiny model to offload/swap. */
inline pipellm::gpu::SystemSpec
tinyGpu(std::uint64_t gpu_mem)
{
    auto spec = pipellm::gpu::SystemSpec::h100();
    spec.gpu_mem_bytes = gpu_mem;
    return spec;
}

/** PipeLLM config wired for the tiny model. */
inline pipellm::core::PipeLlmConfig
tinyPipeConfig(const pipellm::llm::ModelConfig &m)
{
    pipellm::core::PipeLlmConfig cfg;
    cfg.classifier.layer_param_bytes = m.layerParamBytes();
    cfg.enc_lanes = 2;
    return cfg;
}

} // namespace serving_test

#endif // PIPELLM_TESTS_SERVING_SERVING_FIXTURE_HH
