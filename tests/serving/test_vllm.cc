#include <gtest/gtest.h>

#include "serving/vllm.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

VllmConfig
tinyVllm()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 2;
    // Leave only a small KV pool so that moderate concurrency already
    // forces preemption (the tiny model decodes in ~0.2 ms, so
    // pressure must come from the pool, not the compute).
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

trace::Trace
tinyTrace(std::size_t n, double rate, std::uint64_t seed = 5)
{
    trace::DatasetProfile profile{"test", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, seed);
    return gen.poisson(n, rate);
}

} // namespace

TEST(Vllm, WeightsMustFit)
{
    runtime::Platform platform(tinyGpu(128 * MiB));
    runtime::PlainRuntime rt(platform);
    EXPECT_EXIT(VllmEngine(rt, tinyVllm()),
                ::testing::ExitedWithCode(1), "resident weights");
}

TEST(Vllm, PoolSizedFromLeftoverMemory)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    EXPECT_GT(engine.totalBlocks(), 50u);
    EXPECT_EQ(engine.blockBytes(),
              16u * tinyModel().kvBytesPerToken());
}

TEST(Vllm, CompletesAllRequestsAtLowRate)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto result = engine.run(tinyTrace(20, 1.0));
    EXPECT_EQ(result.completed, 20u);
    EXPECT_GT(result.normalized_latency, 0.0);
    // No memory pressure at this rate: no swapping.
    EXPECT_EQ(result.preemptions, 0u);
}

TEST(Vllm, HighRateTriggersPreemptionAndSwapping)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto result = engine.run(tinyTrace(120, 3000.0));
    EXPECT_EQ(result.completed, 120u);
    EXPECT_GT(result.preemptions, 0u);
    EXPECT_GT(result.swap_out_bytes, 0u);
    EXPECT_EQ(result.swap_in_bytes, result.swap_out_bytes);
}

TEST(Vllm, LatencyGrowsWithRate)
{
    runtime::Platform p1(tinyGpu(448 * MiB));
    runtime::Platform p2(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt1(p1), rt2(p2);
    auto low = VllmEngine(rt1, tinyVllm()).run(tinyTrace(60, 2.0));
    auto high = VllmEngine(rt2, tinyVllm()).run(tinyTrace(60, 3000.0));
    EXPECT_GT(high.normalized_latency, low.normalized_latency);
}

TEST(Vllm, CcInflatesLatencyUnderPressure)
{
    runtime::Platform p1(tinyGpu(448 * MiB));
    runtime::Platform p2(tinyGpu(448 * MiB));
    runtime::PlainRuntime plain(p1);
    runtime::CcRuntime cc(p2);
    auto r1 = VllmEngine(plain, tinyVllm()).run(tinyTrace(120, 3000.0));
    auto r2 = VllmEngine(cc, tinyVllm()).run(tinyTrace(120, 3000.0));
    // Paper Fig. 3b / Fig. 8: CC latency grows markedly once swapping
    // kicks in.
    EXPECT_GT(r2.normalized_latency, 1.2 * r1.normalized_latency);
}

TEST(Vllm, PipeLlmCutsTheCcPenalty)
{
    runtime::Platform p1(tinyGpu(448 * MiB));
    runtime::Platform p2(tinyGpu(448 * MiB));
    runtime::Platform p3(tinyGpu(448 * MiB));
    runtime::PlainRuntime plain(p1);
    runtime::CcRuntime cc(p2);
    auto pipe_cfg = tinyPipeConfig(tinyModel());
    pipe_cfg.classifier.kv_unit_bytes =
        16 * tinyModel().kvBytesPerToken();
    core::PipeLlmRuntime pipe(p3, pipe_cfg);

    auto r1 = VllmEngine(plain, tinyVllm()).run(tinyTrace(120, 3000.0));
    auto r2 = VllmEngine(cc, tinyVllm()).run(tinyTrace(120, 3000.0));
    auto r3 = VllmEngine(pipe, tinyVllm()).run(tinyTrace(120, 3000.0));

    double cc_overhead = r2.normalized_latency / r1.normalized_latency;
    double pipe_overhead = r3.normalized_latency / r1.normalized_latency;
    EXPECT_LT(pipe_overhead, cc_overhead);
    EXPECT_EQ(p3.gpu(0).integrityFailures(), 0u);
}

TEST(Vllm, DeterministicAcrossRuns)
{
    runtime::Platform p1(tinyGpu(448 * MiB));
    runtime::Platform p2(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt1(p1), rt2(p2);
    auto a = VllmEngine(rt1, tinyVllm()).run(tinyTrace(60, 50.0));
    auto b = VllmEngine(rt2, tinyVllm()).run(tinyTrace(60, 50.0));
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_DOUBLE_EQ(a.normalized_latency, b.normalized_latency);
    EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST(Vllm, BlockAccountingConserved)
{
    // After serving everything, every block must be back in the free
    // pool (no leaks through preemption/resume cycles).
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto result = engine.run(tinyTrace(100, 3000.0));
    EXPECT_EQ(result.completed, 100u);
    EXPECT_GT(result.preemptions, 0u);
    // Host swap staging must all be freed again.
    EXPECT_EQ(platform.hostMem().bytesAllocated(),
              16u * KiB /* token buffer */);
}

TEST(Vllm, WatermarkPreventsInstantRepreemption)
{
    // With hysteresis, a resumed group should usually survive at
    // least a few iterations: preemptions stay well below the
    // theoretical thrash maximum of one per iteration.
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto result = engine.run(tinyTrace(100, 3000.0));
    // ~100 requests x ~32 output tokens => thousands of iterations;
    // preemptions must be an order of magnitude rarer.
    EXPECT_LT(result.preemptions, 400u);
}

TEST(Vllm, NormalizedLatencyIsPerToken)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto r = engine.run(tinyTrace(10, 0.5));
    // At trivially low load, normalized latency approaches the
    // per-iteration decode time (sub-second per token for the tiny
    // model), far below the end-to-end request latency.
    EXPECT_GT(r.normalized_latency, 0.0);
    EXPECT_LT(r.normalized_latency, 0.01);
}

TEST(Vllm, RecomputePreemptionAvoidsSwapTraffic)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    auto cfg = tinyVllm();
    cfg.preempt_mode = PreemptMode::Recompute;
    VllmEngine engine(rt, cfg);
    auto r = engine.run(tinyTrace(100, 3000.0));
    EXPECT_EQ(r.completed, 100u);
    EXPECT_GT(r.preemptions, 0u);
    EXPECT_EQ(r.swap_out_bytes, 0u);
    EXPECT_EQ(r.swap_in_bytes, 0u);
    EXPECT_GT(r.recomputed_tokens, 0u);
}

TEST(Vllm, RecomputeTradeoffFlipsUnderCc)
{
    // Without CC, swapping usually beats recomputation (PCIe is
    // cheap); under CC the encryption tax can flip the ordering —
    // exactly the design pressure PipeLLM relieves.
    auto run = [&](PreemptMode mode, bool cc) {
        runtime::Platform p(tinyGpu(448 * MiB));
        std::unique_ptr<runtime::RuntimeApi> rt;
        if (cc)
            rt = std::make_unique<runtime::CcRuntime>(p);
        else
            rt = std::make_unique<runtime::PlainRuntime>(p);
        auto cfg = tinyVllm();
        cfg.preempt_mode = mode;
        VllmEngine engine(*rt, cfg);
        return engine.run(tinyTrace(100, 3000.0)).normalized_latency;
    };
    double swap_cc = run(PreemptMode::Swap, true);
    double rec_cc = run(PreemptMode::Recompute, true);
    double swap_plain = run(PreemptMode::Swap, false);
    double rec_plain = run(PreemptMode::Recompute, false);
    // Recompute is nearly insensitive to CC (only the control-plane
    // and token-transfer tax remains); swap pays the encryption tax
    // on every preempted byte.
    EXPECT_NEAR(rec_cc / rec_plain, 1.0, 0.25);
    EXPECT_GT(swap_cc / swap_plain, 1.2);
    EXPECT_GT(swap_cc / swap_plain, rec_cc / rec_plain);
}

// --------------------------------------------------------------------
// drainUnfinished edge cases (replica-crash teardown).
// --------------------------------------------------------------------

TEST(Vllm, DrainWhileGroupsSitOnTheSwapStack)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto trace = tinyTrace(120, 3000.0);

    engine.beginRun();
    for (const auto &req : trace)
        engine.submit(req);
    // Just past the 16-token block boundary every first-wave group
    // demands a growth block at once; the drained pool can't supply
    // them and the scheduler must preempt onto the swap stack. A few
    // short requests may already have finished — the point is that
    // most groups are mid-generation, some sitting swapped out.
    for (int i = 0; i < 18; ++i)
        engine.stepOnce();
    std::uint64_t done = engine.completedCount();
    ASSERT_LT(done, trace.size());

    std::uint64_t lost = 0;
    auto orphans = engine.drainUnfinished(lost);
    EXPECT_EQ(orphans.size(), trace.size() - done);
    EXPECT_GT(lost, 0u);
    EXPECT_FALSE(engine.hasWork());
    // Every KV block is back in the free pool and every host staging
    // region was released (only the token buffer remains).
    EXPECT_EQ(engine.freeBlockCount(), engine.totalBlocks());
    EXPECT_EQ(platform.hostMem().bytesAllocated(), 16u * KiB);

    // Swapped-out bytes never came back: the drain really hit groups
    // sitting on the LIFO stack, not just running ones.
    auto result = engine.finish();
    EXPECT_GT(result.preemptions, 0u);
    EXPECT_GT(result.swap_out_bytes, result.swap_in_bytes);
}

TEST(Vllm, DrainMidPrefillReturnsUntouchedRequests)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto trace = tinyTrace(30, 3000.0);
    for (auto &req : trace)
        req.deadline = req.arrival + seconds(5);

    // Phase 1: crash before the first scheduler iteration — every
    // group still waits for prefill, no KV was ever allocated.
    engine.beginRun();
    for (const auto &req : trace)
        engine.submit(req);
    std::uint64_t lost = 0;
    auto orphans = engine.drainUnfinished(lost);
    EXPECT_EQ(lost, 0u);
    ASSERT_EQ(orphans.size(), trace.size());
    EXPECT_EQ(engine.freeBlockCount(), engine.totalBlocks());
    for (std::size_t i = 0; i < orphans.size(); ++i) {
        EXPECT_EQ(orphans[i].id, trace[i].id);
        EXPECT_EQ(orphans[i].prompt_len, trace[i].prompt_len);
        EXPECT_EQ(orphans[i].output_len, trace[i].output_len);
        // Failover does not buy a request more SLO.
        EXPECT_EQ(orphans[i].deadline, trace[i].deadline);
    }

    // Phase 2: one iteration in — admitted groups hold blocks and
    // have exactly one token; the rest still sit in the queue.
    engine.beginRun();
    for (const auto &req : trace)
        engine.submit(req);
    engine.stepOnce();
    lost = 0;
    orphans = engine.drainUnfinished(lost);
    EXPECT_EQ(orphans.size(), trace.size());
    EXPECT_GT(lost, 0u);
    // Each admitted group lost generated * parallel_sampling tokens.
    EXPECT_EQ(lost % tinyVllm().parallel_sampling, 0u);
    EXPECT_EQ(engine.freeBlockCount(), engine.totalBlocks());
    EXPECT_EQ(platform.hostMem().bytesAllocated(), 16u * KiB);
}

TEST(Vllm, DoubleDrainIsIdempotent)
{
    runtime::Platform platform(tinyGpu(448 * MiB));
    runtime::PlainRuntime rt(platform);
    VllmEngine engine(rt, tinyVllm());
    auto trace = tinyTrace(120, 3000.0);

    engine.beginRun();
    for (const auto &req : trace)
        engine.submit(req);
    for (int i = 0; i < 10; ++i)
        engine.stepOnce();

    std::uint64_t lost = 0;
    auto first = engine.drainUnfinished(lost);
    EXPECT_EQ(first.size(), trace.size());
    std::uint64_t lost_after_first = lost;
    EXPECT_GT(lost_after_first, 0u);

    // A second drain finds nothing: no orphans, no extra lost
    // tokens, pools untouched.
    auto second = engine.drainUnfinished(lost);
    EXPECT_TRUE(second.empty());
    EXPECT_EQ(lost, lost_after_first);
    EXPECT_FALSE(engine.hasWork());
    EXPECT_EQ(engine.freeBlockCount(), engine.totalBlocks());
    EXPECT_EQ(platform.hostMem().bytesAllocated(), 16u * KiB);

    // The engine is still serviceable after the double teardown.
    engine.beginRun();
    auto small = tinyTrace(5, 1.0, 9);
    for (const auto &req : small)
        engine.submit(req);
    while (engine.hasWork())
        engine.stepOnce();
    EXPECT_EQ(engine.completedCount(), small.size());
    EXPECT_EQ(engine.freeBlockCount(), engine.totalBlocks());
}
