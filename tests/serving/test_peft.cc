#include <gtest/gtest.h>

#include "serving/peft.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;

namespace {

PeftConfig
tinyPeft()
{
    PeftConfig cfg;
    cfg.model = tinyModel();
    cfg.batch = 4;
    cfg.gpu_reserved_bytes = 16 * MiB;
    cfg.num_sequences = 16;
    return cfg;
}

trace::Trace
tinyDataset(std::size_t n)
{
    trace::DatasetProfile profile{"ft", 256.0, 0.3, 0.0, 0.0};
    profile.min_len = 64;
    profile.max_len = 512;
    trace::TraceGenerator gen(profile, 9);
    return gen.closedLoop(n);
}

} // namespace

TEST(Peft, OffloadsLayersUnderTightGpu)
{
    runtime::Platform platform(tinyGpu(384 * MiB));
    runtime::PlainRuntime rt(platform);
    PeftEngine engine(rt, tinyPeft());
    EXPECT_GT(engine.layerStore().offloadedLayers(), 0u);
}

TEST(Peft, RunProducesThroughput)
{
    runtime::Platform platform(tinyGpu(384 * MiB));
    runtime::PlainRuntime rt(platform);
    PeftEngine engine(rt, tinyPeft());
    auto result = engine.run(tinyDataset(16));
    EXPECT_GT(result.sequences_per_sec, 0.0);
    EXPECT_GT(result.tokens_per_sec, 0.0);
    EXPECT_GT(result.trained_tokens, 16u * 64);
    // Forward + backward sweeps both stream offloaded layers.
    unsigned steps = 16 / 4;
    EXPECT_GE(rt.stats().h2d_calls,
              2u * steps * engine.layerStore().offloadedLayers());
}

TEST(Peft, AdapterGradientsFlowEveryLayer)
{
    runtime::Platform platform(tinyGpu(384 * MiB));
    runtime::PlainRuntime rt(platform);
    PeftEngine engine(rt, tinyPeft());
    engine.run(tinyDataset(4));
    // One D2H per layer per step (plus any swap D2H; PlainRuntime has
    // no swap-out for weights, so this is exact).
    EXPECT_EQ(rt.stats().d2h_calls, 1u * tinyModel().num_layers);
    EXPECT_GT(engine.adapterBytes(), 0u);
}

TEST(Peft, CcSlowsTraining)
{
    runtime::Platform p1(tinyGpu(384 * MiB));
    runtime::Platform p2(tinyGpu(384 * MiB));
    runtime::PlainRuntime plain(p1);
    runtime::CcRuntime cc(p2);
    auto r1 = PeftEngine(plain, tinyPeft()).run(tinyDataset(8));
    auto r2 = PeftEngine(cc, tinyPeft()).run(tinyDataset(8));
    // Paper Fig. 3c: fine-tuning drops up to 36.2%; training is more
    // compute-bound than FlexGen so the drop is smaller than 88%.
    double drop = 1.0 - r2.tokens_per_sec / r1.tokens_per_sec;
    EXPECT_GT(drop, 0.10);
}

TEST(Peft, PipeLlmRecoversThroughputAndSurvivesAdapterWrites)
{
    runtime::Platform p1(tinyGpu(384 * MiB));
    runtime::Platform p2(tinyGpu(384 * MiB));
    runtime::Platform p3(tinyGpu(384 * MiB));
    runtime::PlainRuntime plain(p1);
    runtime::CcRuntime cc(p2);
    auto cfg = tinyPipeConfig(tinyModel());
    cfg.enc_lanes = 8;
    core::PipeLlmRuntime pipe(p3, cfg);

    auto cfg_run = tinyPeft();
    cfg_run.num_sequences = 96; // 24 steps so warmup amortizes
    auto r1 = PeftEngine(plain, cfg_run).run(tinyDataset(96));
    auto r2 = PeftEngine(cc, cfg_run).run(tinyDataset(96));
    auto r3 = PeftEngine(pipe, cfg_run).run(tinyDataset(96));

    EXPECT_GT(r3.tokens_per_sec, r2.tokens_per_sec);
    double drop = 1.0 - r3.tokens_per_sec / r1.tokens_per_sec;
    EXPECT_LT(drop, 0.45);
    // The optimizer's in-place adapter updates must never leak stale
    // ciphertext: validator faults or misses, but zero integrity
    // failures.
    EXPECT_EQ(p3.gpu(0).integrityFailures(), 0u);
}
