/**
 * @file
 * Bit-exact textual image of a ClusterResult, shared by the
 * determinism suite and the scenario builder-equivalence tests.
 */

#ifndef PIPELLM_TESTS_SERVING_CLUSTER_FINGERPRINT_HH
#define PIPELLM_TESTS_SERVING_CLUSTER_FINGERPRINT_HH

#include <ios>
#include <sstream>
#include <string>

#include "serving/cluster.hh"

namespace serving_test {

/**
 * Exact textual image of everything a bench CSV row could be printed
 * from. Doubles are serialized as hexfloats so the comparison is
 * bit-for-bit, not round-trip-through-decimal.
 */
inline std::string
fingerprint(const pipellm::serving::ClusterResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << r.normalized_latency << '|' << r.p90_normalized_latency
       << '|' << r.replica_weighted_p90 << '|' << r.completed << '|'
       << r.preemptions << '|' << r.makespan << '|' << r.tokens_per_sec
       << '|' << r.goodput_tokens_per_sec << '|' << r.dropped << '|'
       << r.shed_requests << '|' << r.shed_tokens << '|' << r.slo_missed
       << '|' << r.slo_missed_tokens << '|'
       << r.slo_goodput_tokens_per_sec << '|'
       << r.backpressure_deferrals << '|' << r.deferred_to_rejoin
       << '\n';
    os << "faults:" << r.faults.tag_faults << '/'
       << r.faults.tag_retries << '/' << r.faults.copy_stalls << '/'
       << r.faults.lane_faults << '/' << r.faults.replica_crashes
       << '\n';
    os << "migration:" << r.faults.migrations << '/'
       << r.faults.migrated_chunks << '/'
       << r.faults.discarded_chunks << '/'
       << r.faults.migration_tag_faults << '/'
       << r.faults.migration_retries << '/'
       << r.faults.migration_stalls << '/'
       << r.faults.migration_fallbacks << '/'
       << r.faults.dest_mid_migration_crashes << '/'
       << r.faults.migrations_rerouted << '/'
       << r.faults.speculated_migration_ivs << '\n';
    for (const auto &c : r.completions)
        os << "c:" << c.at << ':' << c.tokens << '\n';
    for (const auto &rep : r.replicas) {
        os << "r" << rep.device << ':' << rep.requests << ':'
           << rep.routed_tokens << ':' << rep.crashed << ':'
           << rep.crash_time << ':' << rep.requeued << ':'
           << rep.dropped << ':' << rep.absorbed << ':'
           << rep.lost_tokens << ':' << rep.crash_count << ':'
           << rep.restarts << ':' << rep.rejoined << ':'
           << rep.rejoin_time << ':' << rep.time_to_rejoin << '\n';
        const auto &v = rep.result;
        os << "  v:" << v.normalized_latency << ':'
           << v.p90_normalized_latency << ':' << v.completed << ':'
           << v.completed_tokens << ':' << v.preemptions << ':'
           << v.recomputed_tokens << ':' << v.swap_out_bytes << ':'
           << v.swap_in_bytes << ':' << v.total_time << ':'
           << v.slo_missed << ':' << v.slo_missed_tokens << '\n';
        const auto &s = rep.runtime_stats;
        os << "  s:" << s.h2d_calls << ':' << s.h2d_bytes << ':'
           << s.d2h_calls << ':' << s.d2h_bytes << ':' << s.kernels
           << ':' << s.cpu_encrypt_bytes << ':' << s.cpu_decrypt_bytes
           << '\n';
    }
    return os.str();
}

} // namespace serving_test

#endif // PIPELLM_TESTS_SERVING_CLUSTER_FINGERPRINT_HH
