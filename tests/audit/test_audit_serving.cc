/**
 * @file
 * Serving invariant audits: the cluster co-simulation frontier is
 * monotone, replicas never step ahead of it, no request is delivered
 * before it arrives, and router load accounting drains to zero.
 */

#include <gtest/gtest.h>

#include "audit/audit.hh"
#include "runtime/cc_runtime.hh"
#include "serving/cluster.hh"
#include "tests/serving/serving_fixture.hh"
#include "trace/generator.hh"

using namespace pipellm;
using namespace pipellm::serving;
using namespace serving_test;
using audit::Auditor;
using audit::Check;

namespace {

struct AuditServingFixture : ::testing::Test
{
    Auditor &auditor = Auditor::instance();

    void
    SetUp() override
    {
        auditor.reset();
        auditor.setTrapOnViolation(false);
    }

    void
    TearDown() override
    {
        auditor.reset();
    }
};

VllmConfig
tinyEngine()
{
    VllmConfig cfg;
    cfg.model = tinyModel();
    cfg.parallel_sampling = 2;
    cfg.gpu_reserved_bytes = 160 * MiB;
    return cfg;
}

RuntimeFactory
ccFactory()
{
    return [](runtime::Platform &p, runtime::DeviceId d) {
        return std::make_unique<runtime::CcRuntime>(p, 1, d);
    };
}

trace::Trace
tinyTrace(std::size_t n, double rate)
{
    trace::DatasetProfile profile{"test", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, 5);
    return gen.poisson(n, rate);
}

} // namespace

TEST_F(AuditServingFixture, FrontierTimeTravelIsFlagged)
{
    auto run = auditor.newId();
    auditor.noteFrontier(run, 100);
    auditor.noteFrontier(run, 100);
    EXPECT_EQ(auditor.count(Check::FrontierRegression), 0u);
    auditor.noteFrontier(run, 50);
    EXPECT_EQ(auditor.count(Check::FrontierRegression), 1u);
}

TEST_F(AuditServingFixture, FrontiersOfDistinctRunsAreIndependent)
{
    auto run1 = auditor.newId();
    auto run2 = auditor.newId();
    auditor.noteFrontier(run1, 100);
    auditor.noteFrontier(run2, 10); // lower, but a different run
    EXPECT_EQ(auditor.count(Check::FrontierRegression), 0u);
}

TEST_F(AuditServingFixture, ReplicaSteppingAheadOfFrontierIsFlagged)
{
    auto run = auditor.newId();
    auditor.noteReplicaStep(run, 100, 100);
    EXPECT_EQ(auditor.count(Check::FrontierRegression), 0u);
    auditor.noteReplicaStep(run, 200, 100);
    EXPECT_EQ(auditor.count(Check::FrontierRegression), 1u);
}

TEST_F(AuditServingFixture, DeliveryBeforeArrivalIsFlagged)
{
    auto run = auditor.newId();
    auditor.noteDelivery(run, 100, 100);
    EXPECT_EQ(auditor.count(Check::EarlyDelivery), 0u);
    auditor.noteDelivery(run, 100, 50);
    EXPECT_EQ(auditor.count(Check::EarlyDelivery), 1u);
}

TEST_F(AuditServingFixture, ResidualRouterLoadIsFlagged)
{
    auditor.noteRunEnd(auditor.newId(), 0);
    EXPECT_EQ(auditor.count(Check::ResidualLoad), 0u);
    auditor.noteRunEnd(auditor.newId(), 7);
    EXPECT_EQ(auditor.count(Check::ResidualLoad), 1u);
}

TEST_F(AuditServingFixture, ClusterRunSatisfiesAllServingAudits)
{
    // A shared host bridge so the end-of-run conservation check has a
    // stage to reconcile against the per-device PCIe traffic.
    runtime::HostResources host;
    host.bridge_bw = 40e9;
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2, host);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::LeastLoaded;
    ClusterRouter router(platform, ccFactory(), cfg);

    auto result = router.run(tinyTrace(12, 500.0));
    EXPECT_EQ(result.completed, 12u);

    EXPECT_TRUE(auditor.violations().empty()) << auditor.report();
    EXPECT_GT(auditor.evaluations(Check::FrontierRegression), 0u);
    EXPECT_GE(auditor.evaluations(Check::EarlyDelivery), 12u);
    EXPECT_GE(auditor.evaluations(Check::ResidualLoad), 1u);
    EXPECT_GE(auditor.evaluations(Check::BridgeConservation), 1u);
}

TEST_F(AuditServingFixture, BackToBackClusterRunsStayClean)
{
    runtime::Platform platform(tinyGpu(448 * MiB),
                               crypto::ChannelConfig{}, 2);
    ClusterConfig cfg;
    cfg.engine = tinyEngine();
    cfg.policy = RoutePolicy::RoundRobin;
    ClusterRouter router(platform, ccFactory(), cfg);

    router.run(tinyTrace(8, 800.0));
    router.run(tinyTrace(8, 800.0));
    EXPECT_TRUE(auditor.violations().empty()) << auditor.report();
    EXPECT_GE(auditor.evaluations(Check::ResidualLoad), 2u);
}
