/**
 * @file
 * Simulation invariant audits: serialized-resource occupancy, clock
 * monotonicity, chained-stage completion ordering, shared-bridge byte
 * conservation, and decrypt causality.
 */

#include <gtest/gtest.h>

#include "audit/audit.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

using namespace pipellm;
using audit::Auditor;
using audit::Check;

namespace {

struct AuditSimFixture : ::testing::Test
{
    Auditor &auditor = Auditor::instance();

    void
    SetUp() override
    {
        auditor.reset();
        auditor.setTrapOnViolation(false);
    }

    void
    TearDown() override
    {
        auditor.reset();
    }
};

} // namespace

TEST_F(AuditSimFixture, LaneDoubleBookingIsFlagged)
{
    // Inject directly through the hook: a serialized lane reports two
    // service intervals that overlap in simulated time.
    auto id = auditor.newId();
    auditor.noteService(id, "lane", 0, 0, 100, 64);
    EXPECT_EQ(auditor.count(Check::LaneOverlap), 0u);
    auditor.noteService(id, "lane", 0, 50, 150, 64);
    EXPECT_EQ(auditor.count(Check::LaneOverlap), 1u);
}

TEST_F(AuditSimFixture, BackwardsServiceIntervalIsFlagged)
{
    auto id = auditor.newId();
    auditor.noteService(id, "lane", 200, 100, 150, 0);
    EXPECT_EQ(auditor.count(Check::ClockRegression), 1u);
}

TEST_F(AuditSimFixture, EventQueueClockRegressionIsFlagged)
{
    auto id = auditor.newId();
    auditor.noteClockAdvance(id, 100, 120);
    EXPECT_EQ(auditor.count(Check::ClockRegression), 0u);
    auditor.noteClockAdvance(id, 120, 80);
    EXPECT_EQ(auditor.count(Check::ClockRegression), 1u);
}

TEST_F(AuditSimFixture, ChainCompletingBeforeUpstreamIsFlagged)
{
    auto id = auditor.newId();
    auditor.noteChainForward(id, "bridge", 64, 100, 100);
    EXPECT_EQ(auditor.count(Check::ChainCompletion), 0u);
    auditor.noteChainForward(id, "bridge", 64, 100, 90);
    EXPECT_EQ(auditor.count(Check::ChainCompletion), 1u);
}

TEST_F(AuditSimFixture, DecryptBeforeArrivalIsFlagged)
{
    auditor.noteDecrypt(100, 100);
    EXPECT_EQ(auditor.count(Check::DecryptBeforeArrival), 0u);
    auditor.noteDecrypt(100, 50);
    EXPECT_EQ(auditor.count(Check::DecryptBeforeArrival), 1u);
}

TEST_F(AuditSimFixture, RealResourcesSatisfyTheAudits)
{
    sim::EventQueue eq;
    sim::BandwidthResource link(eq, "link", 1e9, 10);
    link.submit(1000);
    link.submit(1000);
    link.submitNotBefore(5, 500);

    sim::SerialTimeline sm(eq, "sm");
    sm.submitNow(50);
    sm.submitNow(20);

    sim::LaneGroup lanes(eq, "crypto", 2, 1e9);
    lanes.submit(256);
    lanes.submitNotBeforeBestFit(0, 256);

    eq.scheduleIn(10, [] {});
    eq.run();

    EXPECT_TRUE(auditor.violations().empty()) << auditor.report();
    EXPECT_GE(auditor.evaluations(Check::LaneOverlap), 7u);
    EXPECT_GE(auditor.evaluations(Check::ClockRegression), 1u);
}

TEST_F(AuditSimFixture, ConservationHoldsForChainedTraffic)
{
    sim::EventQueue eq;
    sim::BandwidthResource bridge(eq, "bridge", 2e9);
    sim::BandwidthResource a(eq, "a", 1e9);
    sim::BandwidthResource b(eq, "b", 1e9);
    a.setDownstream(&bridge);
    b.setDownstream(&bridge);

    a.submit(500);
    b.submit(700);
    auditor.checkConservation();
    EXPECT_EQ(auditor.count(Check::BridgeConservation), 0u);
    EXPECT_GE(auditor.evaluations(Check::ChainCompletion), 2u);
}

TEST_F(AuditSimFixture, ConservationFlagsDirectBridgeSubmission)
{
    sim::EventQueue eq;
    sim::BandwidthResource bridge(eq, "bridge", 2e9);
    sim::BandwidthResource a(eq, "a", 1e9);
    a.setDownstream(&bridge);

    a.submit(500);
    // A byte that reaches the shared stage without being forwarded by
    // an upstream breaks the hierarchical-bandwidth accounting.
    bridge.submit(100);
    auditor.checkConservation(bridge.auditId());
    EXPECT_EQ(auditor.count(Check::BridgeConservation), 1u);
}

TEST_F(AuditSimFixture, PerStageConservationIgnoresOtherStages)
{
    sim::EventQueue eq;
    sim::BandwidthResource dirty(eq, "dirty-bridge", 2e9);
    sim::BandwidthResource a(eq, "a", 1e9);
    a.setDownstream(&dirty);
    a.submit(500);
    dirty.submit(100); // imbalance on the *other* stage

    sim::BandwidthResource clean(eq, "clean-bridge", 2e9);
    sim::BandwidthResource c(eq, "c", 1e9);
    c.setDownstream(&clean);
    c.submit(300);

    auditor.checkConservation(clean.auditId());
    EXPECT_EQ(auditor.count(Check::BridgeConservation), 0u);
    auditor.checkConservation(dirty.auditId());
    EXPECT_EQ(auditor.count(Check::BridgeConservation), 1u);
}

TEST_F(AuditSimFixture, EventQueueRunIsAudited)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleIn(5, [&] { ++fired; });
    eq.scheduleIn(9, [&] { ++fired; });
    eq.run();
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
    EXPECT_GE(auditor.evaluations(Check::ClockRegression), 3u);
    EXPECT_TRUE(auditor.violations().empty()) << auditor.report();
}
