/**
 * @file
 * Crypto invariant audits: (key, IV) uniqueness across devices,
 * epochs, and the retained namespace, plus the tag-verification
 * ledger. Violations are injected through the *real* transfer paths
 * wherever possible, so these tests double as proof that the hooks
 * sit on the actual exposure points.
 */

#include <gtest/gtest.h>

#include <vector>

#include "audit/audit.hh"
#include "crypto/channel.hh"
#include "gpu/device.hh"
#include "pipellm/pipellm_runtime.hh"
#include "sim/event_queue.hh"

using namespace pipellm;
using audit::Auditor;
using audit::Check;
using crypto::CipherBlob;
using crypto::Direction;
using crypto::SecureChannel;

namespace {

struct AuditCryptoFixture : ::testing::Test
{
    Auditor &auditor = Auditor::instance();

    void
    SetUp() override
    {
        auditor.reset();
        auditor.setTrapOnViolation(false);
    }

    void
    TearDown() override
    {
        auditor.reset();
    }

    std::vector<std::uint8_t>
    pattern(std::size_t n, std::uint8_t seed = 3)
    {
        std::vector<std::uint8_t> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = std::uint8_t(seed + i);
        return v;
    }
};

} // namespace

TEST_F(AuditCryptoFixture, IvReuseAcrossDevicesSharingAChannel)
{
    // Two devices keyed by ONE channel: each expects counter 0, so
    // both transfers verify — but the second exposure of (key, IV=0)
    // on the bus is GCM's fatal misuse, and only the auditor sees it.
    sim::EventQueue eq;
    auto spec = gpu::SystemSpec::h100();
    SecureChannel ch;
    gpu::GpuDevice a(eq, spec, "a-");
    gpu::GpuDevice b(eq, spec, "b-");
    a.enableCc(&ch);
    b.enableCc(&ch);
    auto ra = a.alloc(1 * MiB, "a-buf");
    auto rb = b.alloc(1 * MiB, "b-buf");

    auto pt = pattern(64);
    auto blob1 = ch.seal(Direction::HostToDevice, 0, pt.data(), 64);
    auto blob2 = ch.seal(Direction::HostToDevice, 0, pt.data(), 64);

    a.dmaH2dEncrypted(blob1, ra.base, 0);
    EXPECT_EQ(auditor.count(Check::IvReuse), 0u);
    b.dmaH2dEncrypted(blob2, rb.base, 0);
    EXPECT_EQ(auditor.count(Check::IvReuse), 1u);
    EXPECT_GE(auditor.evaluations(Check::IvReuse), 2u);
}

TEST_F(AuditCryptoFixture, NewSessionEpochRetiresOldExposures)
{
    sim::EventQueue eq;
    auto spec = gpu::SystemSpec::h100();
    SecureChannel ch;
    gpu::GpuDevice dev(eq, spec);
    auto r = dev.alloc(1 * MiB, "buf");
    auto pt = pattern(64);

    dev.enableCc(&ch);
    auto blob = ch.seal(Direction::HostToDevice, 0, pt.data(), 64);
    dev.dmaH2dEncrypted(blob, r.base, 0);

    // Re-keying the session resets both counters; re-exposing counter
    // 0 afterwards is a *fresh* (key, IV) pair, not a reuse.
    dev.enableCc(&ch);
    auto blob2 = ch.seal(Direction::HostToDevice, 0, pt.data(), 64);
    dev.dmaH2dEncrypted(blob2, r.base, 0);
    EXPECT_EQ(auditor.count(Check::IvReuse), 0u);
}

TEST_F(AuditCryptoFixture, D2hProductionCountsAsExposure)
{
    sim::EventQueue eq;
    auto spec = gpu::SystemSpec::h100();
    SecureChannel ch;
    gpu::GpuDevice dev(eq, spec);
    dev.enableCc(&ch);
    auto r = dev.alloc(1 * MiB, "buf");

    CipherBlob out;
    dev.dmaD2hEncrypted(r.base, 64, out, 0);
    dev.dmaD2hEncrypted(r.base, 64, out, 0);
    EXPECT_EQ(auditor.count(Check::IvReuse), 0u);
    EXPECT_GE(auditor.evaluations(Check::IvReuse), 2u);
}

TEST_F(AuditCryptoFixture, RetainedReplayAllowedDistinctContentFlagged)
{
    sim::EventQueue eq;
    auto spec = gpu::SystemSpec::h100();
    SecureChannel ch;
    gpu::GpuDevice dev(eq, spec);
    dev.enableCc(&ch);
    auto r = dev.alloc(1 * MiB, "kv");
    auto content = pattern(128, 7);
    dev.memory().write(r.base, content.data(), content.size());

    auto blob = dev.sealRetainedD2h(r.base, 128, 7777);
    dev.commitRetained(blob, r.base); // identical bytes: §8.2 design
    dev.commitRetained(blob, r.base);
    EXPECT_EQ(auditor.count(Check::IvReuse), 0u);

    // New plaintext sealed under the *same* retained IV: two distinct
    // ciphertexts with one (key, IV) — two-time-pad material.
    auto changed = pattern(128, 99);
    dev.memory().write(r.base, changed.data(), changed.size());
    dev.sealRetainedD2h(r.base, 128, 7777);
    EXPECT_EQ(auditor.count(Check::IvReuse), 1u);
}

TEST_F(AuditCryptoFixture, RetainedCollidingWithLockstepFlagged)
{
    sim::EventQueue eq;
    auto spec = gpu::SystemSpec::h100();
    SecureChannel ch;
    gpu::GpuDevice dev(eq, spec);
    dev.enableCc(&ch);
    auto r = dev.alloc(1 * MiB, "kv");

    CipherBlob out;
    dev.dmaD2hEncrypted(r.base, 64, out, 0); // lockstep D2H counter 0
    dev.sealRetainedD2h(r.base, 64, 0);      // retained under 0 too
    EXPECT_EQ(auditor.count(Check::IvReuse), 1u);
}

TEST_F(AuditCryptoFixture, LedgerFlagsUnsettledBlob)
{
    SecureChannel ch;
    auto pt = pattern(32, 5);
    ch.seal(Direction::HostToDevice, 0, pt.data(), 32);
    EXPECT_EQ(auditor.outstandingBlobs(), 1u);
    auditor.checkLedgerDrained("ledger test");
    EXPECT_EQ(auditor.count(Check::TagLedger), 1u);
}

TEST_F(AuditCryptoFixture, LedgerDrainsWhenVerifiedOrDiscarded)
{
    SecureChannel ch;
    auto pt = pattern(32, 5);
    auto sent = ch.seal(Direction::HostToDevice, 0, pt.data(), 32);
    auto dropped = ch.seal(Direction::HostToDevice, 1, pt.data(), 32);
    EXPECT_EQ(auditor.outstandingBlobs(), 2u);

    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ch.open(sent, 0, out));        // verified
    auditor.noteDiscarded(dropped.audit_serial); // discarded
    EXPECT_EQ(auditor.outstandingBlobs(), 0u);
    auditor.checkLedgerDrained("ledger test");
    EXPECT_EQ(auditor.count(Check::TagLedger), 0u);
}

TEST_F(AuditCryptoFixture, DiscardedBlobLaterVerifiedIsFlagged)
{
    SecureChannel ch;
    auto pt = pattern(32, 5);
    auto blob = ch.seal(Direction::HostToDevice, 0, pt.data(), 32);
    auditor.noteDiscarded(blob.audit_serial);

    // A blob declared dead must never be exposed afterwards: the
    // speculative-rollback safety argument (§6) rests on it.
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ch.open(blob, 0, out));
    EXPECT_EQ(auditor.count(Check::TagLedger), 1u);
}

TEST_F(AuditCryptoFixture, PipeLlmWorkloadLeavesLedgerClean)
{
    // End-to-end positive check: a speculating PipeLLM runtime hits,
    // misses, NOP-pads, and relinquishes; every sealed blob must end
    // verified or discarded, with zero invariant violations.
    {
        runtime::Platform platform;
        core::PipeLlmConfig config;
        config.classifier.layer_param_bytes = 2 * MiB;
        config.enc_lanes = 2;
        config.pipeline_depth = 4;
        core::PipeLlmRuntime rt(platform, config);

        std::vector<mem::Region> layers;
        for (int i = 0; i < 4; ++i) {
            layers.push_back(platform.allocHost(
                2 * MiB, "layer" + std::to_string(i)));
        }
        auto dev_buf = platform.gpu(0).alloc(4 * MiB, "slot");
        auto &s = rt.createStream("s");
        gpu::KernelDesc k{"layer", 2e10, 1e8};
        Tick now = 0;
        for (int c = 0; c < 4; ++c) {
            for (auto &layer : layers) {
                now = rt.memcpyAsync(runtime::CopyKind::HostToDevice,
                                     dev_buf.base, layer.base, 2 * MiB,
                                     s, now)
                          .api_return;
                now = rt.synchronize(now);
                now = rt.launchKernel(k, s, now).api_return;
                now = rt.synchronize(now);
            }
        }
    }
    EXPECT_TRUE(auditor.violations().empty()) << auditor.report();
    auditor.checkLedgerDrained("pipellm workload");
    EXPECT_EQ(auditor.count(Check::TagLedger), 0u)
        << auditor.report();
    EXPECT_GT(auditor.evaluations(Check::IvReuse), 0u);
}
