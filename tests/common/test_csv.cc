#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"

using pipellm::CsvWriter;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(Csv, WritesHeaderAndRows)
{
    std::string path = ::testing::TempDir() + "csv_basic.csv";
    {
        CsvWriter csv(path);
        csv.header({"a", "b"});
        csv.field(1).field("x").endRow();
        csv.field(2.5).field("y").endRow();
        EXPECT_EQ(csv.rows(), 2u);
    }
    EXPECT_EQ(slurp(path), "a,b\n1,x\n2.5,y\n");
    std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCharacters)
{
    std::string path = ::testing::TempDir() + "csv_escape.csv";
    {
        CsvWriter csv(path);
        csv.field("a,b").field("he said \"hi\"").endRow();
    }
    EXPECT_EQ(slurp(path), "\"a,b\",\"he said \"\"hi\"\"\"\n");
    std::remove(path.c_str());
}
