#include <gtest/gtest.h>

#include "common/units.hh"

namespace pl = pipellm;

TEST(Units, TimeConversions)
{
    EXPECT_EQ(pl::microseconds(1), 1000u);
    EXPECT_EQ(pl::milliseconds(1), 1000000u);
    EXPECT_EQ(pl::seconds(1), 1000000000u);
    EXPECT_DOUBLE_EQ(pl::toSeconds(pl::seconds(2.5)), 2.5);
    EXPECT_DOUBLE_EQ(pl::toMicroseconds(pl::microseconds(7)), 7.0);
    EXPECT_DOUBLE_EQ(pl::toMilliseconds(pl::milliseconds(3)), 3.0);
}

TEST(Units, ByteConstants)
{
    EXPECT_EQ(pl::KiB, 1024u);
    EXPECT_EQ(pl::MiB, 1024u * 1024u);
    EXPECT_EQ(pl::GiB, 1024u * 1024u * 1024u);
}

TEST(Units, TransferTicksMatchesRate)
{
    // 1 GB at 1 GB/s is one second.
    EXPECT_EQ(pl::transferTicks(std::uint64_t(1e9), 1e9),
              pl::seconds(1));
    // 64 KiB at 64 GB/s is ~1.024 us.
    auto t = pl::transferTicks(64 * pl::KiB, 64e9);
    EXPECT_NEAR(pl::toMicroseconds(t), 1.024, 0.01);
}

TEST(Units, TransferTicksNeverZeroForNonEmpty)
{
    EXPECT_EQ(pl::transferTicks(0, 1e30), 0u);
    EXPECT_GE(pl::transferTicks(1, 1e30), 1u);
}

TEST(Units, AchievedRateRoundTrips)
{
    auto t = pl::transferTicks(1000000, 5.8e9);
    EXPECT_NEAR(pl::achievedRate(1000000, t), 5.8e9, 1e7);
    EXPECT_DOUBLE_EQ(pl::achievedRate(100, 0), 0.0);
}
