#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

using pipellm::Rng;
using pipellm::Tick;
using pipellm::maxTick;
using pipellm::microseconds;
using pipellm::toSeconds;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 9));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniformReal();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ExponentialMeanApproximatesInverseRate)
{
    Rng rng(11);
    const double rate = 4.0;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMomentsApproximate)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, SyntheticByteDeterministic)
{
    EXPECT_EQ(Rng::syntheticByte(1, 100), Rng::syntheticByte(1, 100));
    // Different regions or offsets should usually differ.
    int same = 0;
    for (std::uint64_t off = 0; off < 256; ++off)
        same += Rng::syntheticByte(1, off) == Rng::syntheticByte(2, off);
    EXPECT_LT(same, 32);
}

TEST(Rng, ExponentialTicksMatchesTheRate)
{
    Rng rng(19);
    const double rate = 50.0; // mean gap 20 ms
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += toSeconds(rng.exponentialTicks(rate));
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.002);
}

TEST(Rng, ExponentialTicksSaturatesForVanishingRates)
{
    // A draw of centuries cannot fit in a Tick: it clamps instead of
    // wrapping, so "effectively never" stays ordered after any real
    // event time.
    Rng rng(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.exponentialTicks(1e-15), maxTick);
}

TEST(Rng, JitterTicksStaysWithinTheSpan)
{
    Rng rng(29);
    bool hit_upper_half = false;
    for (int i = 0; i < 1000; ++i) {
        Tick j = rng.jitterTicks(microseconds(10));
        EXPECT_LE(j, microseconds(10));
        hit_upper_half |= j > microseconds(5);
    }
    EXPECT_TRUE(hit_upper_half);
}

TEST(Rng, ZeroSpanJitterConsumesNoRandomness)
{
    Rng a(31), b(31);
    EXPECT_EQ(a.jitterTicks(0), 0u);
    // The zero-span early-out must not advance the stream: callers
    // mixing jittered and unjittered paths stay replayable.
    EXPECT_EQ(a.next(), b.next());
}
