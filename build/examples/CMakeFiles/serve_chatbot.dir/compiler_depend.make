# Empty compiler generated dependencies file for serve_chatbot.
# This may be replaced when dependencies are built.
