file(REMOVE_RECURSE
  "CMakeFiles/serve_chatbot.dir/serve_chatbot.cpp.o"
  "CMakeFiles/serve_chatbot.dir/serve_chatbot.cpp.o.d"
  "serve_chatbot"
  "serve_chatbot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_chatbot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
