# Empty dependencies file for finetune_lora.
# This may be replaced when dependencies are built.
