file(REMOVE_RECURSE
  "CMakeFiles/finetune_lora.dir/finetune_lora.cpp.o"
  "CMakeFiles/finetune_lora.dir/finetune_lora.cpp.o.d"
  "finetune_lora"
  "finetune_lora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_lora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
