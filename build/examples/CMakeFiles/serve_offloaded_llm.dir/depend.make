# Empty dependencies file for serve_offloaded_llm.
# This may be replaced when dependencies are built.
