file(REMOVE_RECURSE
  "CMakeFiles/serve_offloaded_llm.dir/serve_offloaded_llm.cpp.o"
  "CMakeFiles/serve_offloaded_llm.dir/serve_offloaded_llm.cpp.o.d"
  "serve_offloaded_llm"
  "serve_offloaded_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_offloaded_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
