
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipellm/test_classifier.cc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_classifier.cc.o" "gcc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_classifier.cc.o.d"
  "/root/repo/tests/pipellm/test_history.cc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_history.cc.o" "gcc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_history.cc.o.d"
  "/root/repo/tests/pipellm/test_patterns.cc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_patterns.cc.o" "gcc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_patterns.cc.o.d"
  "/root/repo/tests/pipellm/test_pipeline.cc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_pipeline.cc.o" "gcc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/pipellm/test_pipellm_runtime.cc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_pipellm_runtime.cc.o" "gcc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_pipellm_runtime.cc.o.d"
  "/root/repo/tests/pipellm/test_predictor.cc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_predictor.cc.o" "gcc" "tests/pipellm/CMakeFiles/test_pipellm.dir/test_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipellm/CMakeFiles/pipellm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/pipellm_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pipellm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/pipellm_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pipellm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pipellm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipellm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipellm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pipellm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pipellm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
