# Empty dependencies file for test_pipellm.
# This may be replaced when dependencies are built.
