file(REMOVE_RECURSE
  "CMakeFiles/test_pipellm.dir/test_classifier.cc.o"
  "CMakeFiles/test_pipellm.dir/test_classifier.cc.o.d"
  "CMakeFiles/test_pipellm.dir/test_history.cc.o"
  "CMakeFiles/test_pipellm.dir/test_history.cc.o.d"
  "CMakeFiles/test_pipellm.dir/test_patterns.cc.o"
  "CMakeFiles/test_pipellm.dir/test_patterns.cc.o.d"
  "CMakeFiles/test_pipellm.dir/test_pipeline.cc.o"
  "CMakeFiles/test_pipellm.dir/test_pipeline.cc.o.d"
  "CMakeFiles/test_pipellm.dir/test_pipellm_runtime.cc.o"
  "CMakeFiles/test_pipellm.dir/test_pipellm_runtime.cc.o.d"
  "CMakeFiles/test_pipellm.dir/test_predictor.cc.o"
  "CMakeFiles/test_pipellm.dir/test_predictor.cc.o.d"
  "test_pipellm"
  "test_pipellm.pdb"
  "test_pipellm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipellm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
