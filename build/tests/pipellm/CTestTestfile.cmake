# CMake generated Testfile for 
# Source directory: /root/repo/tests/pipellm
# Build directory: /root/repo/build/tests/pipellm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pipellm/test_pipellm[1]_include.cmake")
