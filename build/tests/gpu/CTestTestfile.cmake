# CMake generated Testfile for 
# Source directory: /root/repo/tests/gpu
# Build directory: /root/repo/build/tests/gpu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gpu/test_gpu[1]_include.cmake")
