# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("crypto")
subdirs("mem")
subdirs("gpu")
subdirs("runtime")
subdirs("llm")
subdirs("pipellm")
subdirs("trace")
subdirs("serving")
subdirs("integration")
