# CMake generated Testfile for 
# Source directory: /root/repo/tests/serving
# Build directory: /root/repo/build/tests/serving
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/serving/test_serving[1]_include.cmake")
