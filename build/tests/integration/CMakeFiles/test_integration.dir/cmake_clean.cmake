file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/test_cross_runtime.cc.o"
  "CMakeFiles/test_integration.dir/test_cross_runtime.cc.o.d"
  "CMakeFiles/test_integration.dir/test_random_workload.cc.o"
  "CMakeFiles/test_integration.dir/test_random_workload.cc.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
