file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/test_aes.cc.o"
  "CMakeFiles/test_crypto.dir/test_aes.cc.o.d"
  "CMakeFiles/test_crypto.dir/test_channel.cc.o"
  "CMakeFiles/test_crypto.dir/test_channel.cc.o.d"
  "CMakeFiles/test_crypto.dir/test_gcm.cc.o"
  "CMakeFiles/test_crypto.dir/test_gcm.cc.o.d"
  "CMakeFiles/test_crypto.dir/test_gcm_stream.cc.o"
  "CMakeFiles/test_crypto.dir/test_gcm_stream.cc.o.d"
  "CMakeFiles/test_crypto.dir/test_ghash.cc.o"
  "CMakeFiles/test_crypto.dir/test_ghash.cc.o.d"
  "CMakeFiles/test_crypto.dir/test_iv.cc.o"
  "CMakeFiles/test_crypto.dir/test_iv.cc.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
