file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/test_cc_runtime.cc.o"
  "CMakeFiles/test_runtime.dir/test_cc_runtime.cc.o.d"
  "CMakeFiles/test_runtime.dir/test_future_runtimes.cc.o"
  "CMakeFiles/test_runtime.dir/test_future_runtimes.cc.o.d"
  "CMakeFiles/test_runtime.dir/test_plain_runtime.cc.o"
  "CMakeFiles/test_runtime.dir/test_plain_runtime.cc.o.d"
  "CMakeFiles/test_runtime.dir/test_staged_path.cc.o"
  "CMakeFiles/test_runtime.dir/test_staged_path.cc.o.d"
  "CMakeFiles/test_runtime.dir/test_stream.cc.o"
  "CMakeFiles/test_runtime.dir/test_stream.cc.o.d"
  "CMakeFiles/test_runtime.dir/test_transfer_trace.cc.o"
  "CMakeFiles/test_runtime.dir/test_transfer_trace.cc.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
