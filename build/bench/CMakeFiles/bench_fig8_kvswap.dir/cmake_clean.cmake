file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_kvswap.dir/bench_fig8_kvswap.cc.o"
  "CMakeFiles/bench_fig8_kvswap.dir/bench_fig8_kvswap.cc.o.d"
  "bench_fig8_kvswap"
  "bench_fig8_kvswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_kvswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
