# Empty compiler generated dependencies file for bench_future_designs.
# This may be replaced when dependencies are built.
