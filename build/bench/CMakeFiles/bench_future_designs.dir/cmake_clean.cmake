file(REMOVE_RECURSE
  "CMakeFiles/bench_future_designs.dir/bench_future_designs.cc.o"
  "CMakeFiles/bench_future_designs.dir/bench_future_designs.cc.o.d"
  "bench_future_designs"
  "bench_future_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
