
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_threads.cc" "bench/CMakeFiles/bench_fig9_threads.dir/bench_fig9_threads.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_threads.dir/bench_fig9_threads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pipellm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipellm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pipellm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipellm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pipellm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pipellm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/pipellm_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/pipellm/CMakeFiles/pipellm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/pipellm_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pipellm_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
