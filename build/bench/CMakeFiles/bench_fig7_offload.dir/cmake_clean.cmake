file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_offload.dir/bench_fig7_offload.cc.o"
  "CMakeFiles/bench_fig7_offload.dir/bench_fig7_offload.cc.o.d"
  "bench_fig7_offload"
  "bench_fig7_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
