# Empty dependencies file for bench_fig10_success.
# This may be replaced when dependencies are built.
