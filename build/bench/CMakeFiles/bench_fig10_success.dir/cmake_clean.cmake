file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_success.dir/bench_fig10_success.cc.o"
  "CMakeFiles/bench_fig10_success.dir/bench_fig10_success.cc.o.d"
  "bench_fig10_success"
  "bench_fig10_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
