file(REMOVE_RECURSE
  "libpipellm_common.a"
)
