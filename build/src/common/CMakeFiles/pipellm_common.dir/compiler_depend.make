# Empty compiler generated dependencies file for pipellm_common.
# This may be replaced when dependencies are built.
