file(REMOVE_RECURSE
  "CMakeFiles/pipellm_common.dir/csv.cc.o"
  "CMakeFiles/pipellm_common.dir/csv.cc.o.d"
  "CMakeFiles/pipellm_common.dir/logging.cc.o"
  "CMakeFiles/pipellm_common.dir/logging.cc.o.d"
  "CMakeFiles/pipellm_common.dir/rng.cc.o"
  "CMakeFiles/pipellm_common.dir/rng.cc.o.d"
  "libpipellm_common.a"
  "libpipellm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
