
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipellm/classifier.cc" "src/pipellm/CMakeFiles/pipellm_core.dir/classifier.cc.o" "gcc" "src/pipellm/CMakeFiles/pipellm_core.dir/classifier.cc.o.d"
  "/root/repo/src/pipellm/history.cc" "src/pipellm/CMakeFiles/pipellm_core.dir/history.cc.o" "gcc" "src/pipellm/CMakeFiles/pipellm_core.dir/history.cc.o.d"
  "/root/repo/src/pipellm/patterns.cc" "src/pipellm/CMakeFiles/pipellm_core.dir/patterns.cc.o" "gcc" "src/pipellm/CMakeFiles/pipellm_core.dir/patterns.cc.o.d"
  "/root/repo/src/pipellm/pipeline.cc" "src/pipellm/CMakeFiles/pipellm_core.dir/pipeline.cc.o" "gcc" "src/pipellm/CMakeFiles/pipellm_core.dir/pipeline.cc.o.d"
  "/root/repo/src/pipellm/pipellm_runtime.cc" "src/pipellm/CMakeFiles/pipellm_core.dir/pipellm_runtime.cc.o" "gcc" "src/pipellm/CMakeFiles/pipellm_core.dir/pipellm_runtime.cc.o.d"
  "/root/repo/src/pipellm/predictor.cc" "src/pipellm/CMakeFiles/pipellm_core.dir/predictor.cc.o" "gcc" "src/pipellm/CMakeFiles/pipellm_core.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pipellm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipellm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pipellm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipellm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pipellm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pipellm_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
