file(REMOVE_RECURSE
  "libpipellm_core.a"
)
