# Empty compiler generated dependencies file for pipellm_core.
# This may be replaced when dependencies are built.
