file(REMOVE_RECURSE
  "CMakeFiles/pipellm_core.dir/classifier.cc.o"
  "CMakeFiles/pipellm_core.dir/classifier.cc.o.d"
  "CMakeFiles/pipellm_core.dir/history.cc.o"
  "CMakeFiles/pipellm_core.dir/history.cc.o.d"
  "CMakeFiles/pipellm_core.dir/patterns.cc.o"
  "CMakeFiles/pipellm_core.dir/patterns.cc.o.d"
  "CMakeFiles/pipellm_core.dir/pipeline.cc.o"
  "CMakeFiles/pipellm_core.dir/pipeline.cc.o.d"
  "CMakeFiles/pipellm_core.dir/pipellm_runtime.cc.o"
  "CMakeFiles/pipellm_core.dir/pipellm_runtime.cc.o.d"
  "CMakeFiles/pipellm_core.dir/predictor.cc.o"
  "CMakeFiles/pipellm_core.dir/predictor.cc.o.d"
  "libpipellm_core.a"
  "libpipellm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
