file(REMOVE_RECURSE
  "CMakeFiles/pipellm_runtime.dir/api.cc.o"
  "CMakeFiles/pipellm_runtime.dir/api.cc.o.d"
  "CMakeFiles/pipellm_runtime.dir/cc_runtime.cc.o"
  "CMakeFiles/pipellm_runtime.dir/cc_runtime.cc.o.d"
  "CMakeFiles/pipellm_runtime.dir/plain_runtime.cc.o"
  "CMakeFiles/pipellm_runtime.dir/plain_runtime.cc.o.d"
  "CMakeFiles/pipellm_runtime.dir/platform.cc.o"
  "CMakeFiles/pipellm_runtime.dir/platform.cc.o.d"
  "CMakeFiles/pipellm_runtime.dir/reuse_runtime.cc.o"
  "CMakeFiles/pipellm_runtime.dir/reuse_runtime.cc.o.d"
  "CMakeFiles/pipellm_runtime.dir/staged_path.cc.o"
  "CMakeFiles/pipellm_runtime.dir/staged_path.cc.o.d"
  "CMakeFiles/pipellm_runtime.dir/teeio_runtime.cc.o"
  "CMakeFiles/pipellm_runtime.dir/teeio_runtime.cc.o.d"
  "CMakeFiles/pipellm_runtime.dir/transfer_trace.cc.o"
  "CMakeFiles/pipellm_runtime.dir/transfer_trace.cc.o.d"
  "libpipellm_runtime.a"
  "libpipellm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
