# Empty compiler generated dependencies file for pipellm_runtime.
# This may be replaced when dependencies are built.
