file(REMOVE_RECURSE
  "libpipellm_runtime.a"
)
