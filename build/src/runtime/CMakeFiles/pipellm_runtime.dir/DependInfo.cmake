
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/api.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/api.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/api.cc.o.d"
  "/root/repo/src/runtime/cc_runtime.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/cc_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/cc_runtime.cc.o.d"
  "/root/repo/src/runtime/plain_runtime.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/plain_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/plain_runtime.cc.o.d"
  "/root/repo/src/runtime/platform.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/platform.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/platform.cc.o.d"
  "/root/repo/src/runtime/reuse_runtime.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/reuse_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/reuse_runtime.cc.o.d"
  "/root/repo/src/runtime/staged_path.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/staged_path.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/staged_path.cc.o.d"
  "/root/repo/src/runtime/teeio_runtime.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/teeio_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/teeio_runtime.cc.o.d"
  "/root/repo/src/runtime/transfer_trace.cc" "src/runtime/CMakeFiles/pipellm_runtime.dir/transfer_trace.cc.o" "gcc" "src/runtime/CMakeFiles/pipellm_runtime.dir/transfer_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pipellm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipellm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pipellm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pipellm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pipellm_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
