# Empty compiler generated dependencies file for pipellm_gpu.
# This may be replaced when dependencies are built.
