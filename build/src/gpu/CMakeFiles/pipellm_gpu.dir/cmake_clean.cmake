file(REMOVE_RECURSE
  "CMakeFiles/pipellm_gpu.dir/device.cc.o"
  "CMakeFiles/pipellm_gpu.dir/device.cc.o.d"
  "CMakeFiles/pipellm_gpu.dir/spec.cc.o"
  "CMakeFiles/pipellm_gpu.dir/spec.cc.o.d"
  "libpipellm_gpu.a"
  "libpipellm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
