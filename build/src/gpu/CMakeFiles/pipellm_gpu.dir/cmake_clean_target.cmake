file(REMOVE_RECURSE
  "libpipellm_gpu.a"
)
