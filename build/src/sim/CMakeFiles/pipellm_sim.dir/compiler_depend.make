# Empty compiler generated dependencies file for pipellm_sim.
# This may be replaced when dependencies are built.
