file(REMOVE_RECURSE
  "libpipellm_sim.a"
)
