file(REMOVE_RECURSE
  "CMakeFiles/pipellm_sim.dir/event_queue.cc.o"
  "CMakeFiles/pipellm_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pipellm_sim.dir/resource.cc.o"
  "CMakeFiles/pipellm_sim.dir/resource.cc.o.d"
  "CMakeFiles/pipellm_sim.dir/stats.cc.o"
  "CMakeFiles/pipellm_sim.dir/stats.cc.o.d"
  "libpipellm_sim.a"
  "libpipellm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
