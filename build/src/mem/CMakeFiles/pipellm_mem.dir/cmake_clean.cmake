file(REMOVE_RECURSE
  "CMakeFiles/pipellm_mem.dir/page_protection.cc.o"
  "CMakeFiles/pipellm_mem.dir/page_protection.cc.o.d"
  "CMakeFiles/pipellm_mem.dir/sparse_memory.cc.o"
  "CMakeFiles/pipellm_mem.dir/sparse_memory.cc.o.d"
  "CMakeFiles/pipellm_mem.dir/staging.cc.o"
  "CMakeFiles/pipellm_mem.dir/staging.cc.o.d"
  "libpipellm_mem.a"
  "libpipellm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
