file(REMOVE_RECURSE
  "libpipellm_mem.a"
)
