# Empty compiler generated dependencies file for pipellm_mem.
# This may be replaced when dependencies are built.
