file(REMOVE_RECURSE
  "libpipellm_crypto.a"
)
