
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/pipellm_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/pipellm_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/channel.cc" "src/crypto/CMakeFiles/pipellm_crypto.dir/channel.cc.o" "gcc" "src/crypto/CMakeFiles/pipellm_crypto.dir/channel.cc.o.d"
  "/root/repo/src/crypto/gcm.cc" "src/crypto/CMakeFiles/pipellm_crypto.dir/gcm.cc.o" "gcc" "src/crypto/CMakeFiles/pipellm_crypto.dir/gcm.cc.o.d"
  "/root/repo/src/crypto/ghash.cc" "src/crypto/CMakeFiles/pipellm_crypto.dir/ghash.cc.o" "gcc" "src/crypto/CMakeFiles/pipellm_crypto.dir/ghash.cc.o.d"
  "/root/repo/src/crypto/iv.cc" "src/crypto/CMakeFiles/pipellm_crypto.dir/iv.cc.o" "gcc" "src/crypto/CMakeFiles/pipellm_crypto.dir/iv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pipellm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pipellm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
