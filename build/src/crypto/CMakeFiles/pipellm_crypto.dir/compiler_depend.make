# Empty compiler generated dependencies file for pipellm_crypto.
# This may be replaced when dependencies are built.
