file(REMOVE_RECURSE
  "CMakeFiles/pipellm_crypto.dir/aes.cc.o"
  "CMakeFiles/pipellm_crypto.dir/aes.cc.o.d"
  "CMakeFiles/pipellm_crypto.dir/channel.cc.o"
  "CMakeFiles/pipellm_crypto.dir/channel.cc.o.d"
  "CMakeFiles/pipellm_crypto.dir/gcm.cc.o"
  "CMakeFiles/pipellm_crypto.dir/gcm.cc.o.d"
  "CMakeFiles/pipellm_crypto.dir/ghash.cc.o"
  "CMakeFiles/pipellm_crypto.dir/ghash.cc.o.d"
  "CMakeFiles/pipellm_crypto.dir/iv.cc.o"
  "CMakeFiles/pipellm_crypto.dir/iv.cc.o.d"
  "libpipellm_crypto.a"
  "libpipellm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
