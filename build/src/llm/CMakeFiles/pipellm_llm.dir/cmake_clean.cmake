file(REMOVE_RECURSE
  "CMakeFiles/pipellm_llm.dir/cost_model.cc.o"
  "CMakeFiles/pipellm_llm.dir/cost_model.cc.o.d"
  "CMakeFiles/pipellm_llm.dir/model.cc.o"
  "CMakeFiles/pipellm_llm.dir/model.cc.o.d"
  "libpipellm_llm.a"
  "libpipellm_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
