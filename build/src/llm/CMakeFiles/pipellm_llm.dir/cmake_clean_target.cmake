file(REMOVE_RECURSE
  "libpipellm_llm.a"
)
