# Empty compiler generated dependencies file for pipellm_llm.
# This may be replaced when dependencies are built.
