file(REMOVE_RECURSE
  "libpipellm_serving.a"
)
