# Empty dependencies file for pipellm_serving.
# This may be replaced when dependencies are built.
