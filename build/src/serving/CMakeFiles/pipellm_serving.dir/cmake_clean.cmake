file(REMOVE_RECURSE
  "CMakeFiles/pipellm_serving.dir/flexgen.cc.o"
  "CMakeFiles/pipellm_serving.dir/flexgen.cc.o.d"
  "CMakeFiles/pipellm_serving.dir/layer_store.cc.o"
  "CMakeFiles/pipellm_serving.dir/layer_store.cc.o.d"
  "CMakeFiles/pipellm_serving.dir/peft.cc.o"
  "CMakeFiles/pipellm_serving.dir/peft.cc.o.d"
  "CMakeFiles/pipellm_serving.dir/vllm.cc.o"
  "CMakeFiles/pipellm_serving.dir/vllm.cc.o.d"
  "libpipellm_serving.a"
  "libpipellm_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
