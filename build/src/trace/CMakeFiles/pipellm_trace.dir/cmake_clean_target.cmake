file(REMOVE_RECURSE
  "libpipellm_trace.a"
)
