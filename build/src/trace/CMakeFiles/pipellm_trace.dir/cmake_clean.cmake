file(REMOVE_RECURSE
  "CMakeFiles/pipellm_trace.dir/generator.cc.o"
  "CMakeFiles/pipellm_trace.dir/generator.cc.o.d"
  "libpipellm_trace.a"
  "libpipellm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipellm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
