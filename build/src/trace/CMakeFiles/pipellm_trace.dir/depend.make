# Empty dependencies file for pipellm_trace.
# This may be replaced when dependencies are built.
