#include "mem/page_protection.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace mem {

namespace {

Addr
pageDown(Addr addr)
{
    return addr / pageBytes * pageBytes;
}

Addr
pageUp(Addr addr)
{
    return (addr + pageBytes - 1) / pageBytes * pageBytes;
}

} // namespace

void
PageProtection::protect(Addr base, std::uint64_t len, Protection prot,
                        FaultHandler handler)
{
    std::lock_guard<std::recursive_mutex> lock(mu_);
    PIPELLM_ASSERT(len > 0, "protecting empty range");
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);
    // Protecting an already-protected page overwrites its entry.
    unprotect(s, e - s);
    ranges_.emplace(
        s, Entry{e, prot,
                 std::make_shared<FaultHandler>(std::move(handler))});
}

void
PageProtection::unprotect(Addr base, std::uint64_t len)
{
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (len == 0 || ranges_.empty())
        return;
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);

    // Find the first range that could overlap [s, e).
    auto it = ranges_.upper_bound(s);
    if (it != ranges_.begin())
        --it;
    while (it != ranges_.end() && it->first < e) {
        Addr r_start = it->first;
        Addr r_end = it->second.end;
        if (r_end <= s) {
            ++it;
            continue;
        }
        Entry entry = it->second;
        it = ranges_.erase(it);
        // Keep the non-overlapping flanks.
        if (r_start < s)
            ranges_.emplace(r_start, Entry{s, entry.prot, entry.handler});
        if (r_end > e) {
            it = ranges_
                     .emplace(e,
                              Entry{r_end, entry.prot, entry.handler})
                     .first;
            ++it;
        }
    }
}

PageProtection::RangeMap::const_iterator
PageProtection::findCovering(Addr addr) const
{
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin())
        return ranges_.end();
    --it;
    if (it->second.end > addr)
        return it;
    return ranges_.end();
}

Protection
PageProtection::query(Addr addr) const
{
    std::lock_guard<std::recursive_mutex> lock(mu_);
    auto it = findCovering(addr);
    return it == ranges_.end() ? Protection::None : it->second.prot;
}

bool
PageProtection::blocks(Protection prot, bool is_write) const
{
    switch (prot) {
      case Protection::None:
        return false;
      case Protection::NoWrite:
        return is_write;
      case Protection::NoAccess:
        return true;
    }
    return false;
}

bool
PageProtection::anyProtected(Addr base, std::uint64_t len) const
{
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (len == 0 || ranges_.empty())
        return false;
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);
    auto it = ranges_.upper_bound(s);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end > s)
            return true;
    }
    return it != ranges_.end() && it->first < e;
}

Tick
PageProtection::access(Addr base, std::uint64_t len, bool is_write)
{
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (len == 0 || ranges_.empty())
        return 0;
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);

    Tick ready = 0;
    for (;;) {
        // First blocking range overlapping [s, e).
        auto it = ranges_.upper_bound(s);
        if (it != ranges_.begin())
            --it;
        bool found = false;
        Addr fault_addr = 0;
        std::shared_ptr<FaultHandler> handler;
        for (; it != ranges_.end() && it->first < e; ++it) {
            if (it->second.end <= s)
                continue;
            if (!blocks(it->second.prot, is_write))
                continue;
            fault_addr = std::max(it->first, s);
            handler = it->second.handler;
            found = true;
            break;
        }
        if (!found)
            return ready;

        ++faults_;
        PIPELLM_ASSERT(handler && *handler,
                       "protected page without fault handler");
        ready = std::max(ready, (*handler)(fault_addr, is_write));

        auto again = findCovering(fault_addr);
        if (again != ranges_.end() &&
            blocks(again->second.prot, is_write)) {
            PANIC("fault handler left page at ", fault_addr,
                  " still protected");
        }
    }
}

std::size_t
PageProtection::protectedPages() const
{
    std::lock_guard<std::recursive_mutex> lock(mu_);
    std::size_t pages = 0;
    for (const auto &[start, entry] : ranges_)
        pages += std::size_t((entry.end - start) / pageBytes);
    return pages;
}

} // namespace mem
} // namespace pipellm
