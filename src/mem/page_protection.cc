#include "mem/page_protection.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace mem {

namespace {

Addr
pageDown(Addr addr)
{
    return addr / pageBytes * pageBytes;
}

Addr
pageUp(Addr addr)
{
    return (addr + pageBytes - 1) / pageBytes * pageBytes;
}

} // namespace

void
PageProtection::protect(Addr base, std::uint64_t len, Protection prot,
                        FaultHandler handler)
{
    common::LockGuard lock(mu_);
    PIPELLM_ASSERT(len > 0, "protecting empty range");
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);
    // Protecting an already-protected page overwrites its entry.
    unprotectLocked(s, e - s);
    ranges_.emplace(
        s, Entry{e, prot,
                 std::make_shared<FaultHandler>(std::move(handler))});
}

void
PageProtection::unprotect(Addr base, std::uint64_t len)
{
    common::LockGuard lock(mu_);
    unprotectLocked(base, len);
}

void
PageProtection::unprotectLocked(Addr base, std::uint64_t len)
{
    if (len == 0 || ranges_.empty())
        return;
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);

    // Find the first range that could overlap [s, e).
    auto it = ranges_.upper_bound(s);
    if (it != ranges_.begin())
        --it;
    while (it != ranges_.end() && it->first < e) {
        Addr r_start = it->first;
        Addr r_end = it->second.end;
        if (r_end <= s) {
            ++it;
            continue;
        }
        Entry entry = it->second;
        it = ranges_.erase(it);
        // Keep the non-overlapping flanks.
        if (r_start < s)
            ranges_.emplace(r_start, Entry{s, entry.prot, entry.handler});
        if (r_end > e) {
            it = ranges_
                     .emplace(e,
                              Entry{r_end, entry.prot, entry.handler})
                     .first;
            ++it;
        }
    }
}

PageProtection::RangeMap::const_iterator
PageProtection::findCoveringLocked(Addr addr) const
{
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin())
        return ranges_.end();
    --it;
    if (it->second.end > addr)
        return it;
    return ranges_.end();
}

Protection
PageProtection::query(Addr addr) const
{
    common::LockGuard lock(mu_);
    auto it = findCoveringLocked(addr);
    return it == ranges_.end() ? Protection::None : it->second.prot;
}

bool
PageProtection::blocks(Protection prot, bool is_write)
{
    switch (prot) {
      case Protection::None:
        return false;
      case Protection::NoWrite:
        return is_write;
      case Protection::NoAccess:
        return true;
    }
    return false;
}

bool
PageProtection::anyProtected(Addr base, std::uint64_t len) const
{
    common::LockGuard lock(mu_);
    if (len == 0 || ranges_.empty())
        return false;
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);
    auto it = ranges_.upper_bound(s);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end > s)
            return true;
    }
    return it != ranges_.end() && it->first < e;
}

bool
PageProtection::findBlockingLocked(Addr s, Addr e, bool is_write,
                                   Addr &fault_addr,
                                   std::shared_ptr<FaultHandler> &handler)
{
    auto it = ranges_.upper_bound(s);
    if (it != ranges_.begin())
        --it;
    for (; it != ranges_.end() && it->first < e; ++it) {
        if (it->second.end <= s)
            continue;
        if (!blocks(it->second.prot, is_write))
            continue;
        fault_addr = std::max(it->first, s);
        handler = it->second.handler;
        ++faults_;
        return true;
    }
    return false;
}

Tick
PageProtection::access(Addr base, std::uint64_t len, bool is_write)
{
    if (len == 0)
        return 0;
    Addr s = pageDown(base);
    Addr e = pageUp(base + len);

    Tick ready = 0;
    for (;;) {
        Addr fault_addr = 0;
        std::shared_ptr<FaultHandler> handler;
        {
            common::LockGuard lock(mu_);
            if (!findBlockingLocked(s, e, is_write, fault_addr, handler))
                return ready;
        }

        // Dispatch with the lock released: handlers re-enter this
        // class (unprotect their own page, touch other protected
        // pages), which under the old recursive mutex happened as an
        // unanalyzable re-acquisition and now is a plain one.
        PIPELLM_ASSERT(handler && *handler,
                       "protected page without fault handler");
        ready = std::max(ready, (*handler)(fault_addr, is_write));

        common::LockGuard lock(mu_);
        auto again = findCoveringLocked(fault_addr);
        if (again != ranges_.end() &&
            blocks(again->second.prot, is_write)) {
            PANIC("fault handler left page at ", fault_addr,
                  " still protected");
        }
    }
}

std::size_t
PageProtection::protectedPages() const
{
    common::LockGuard lock(mu_);
    std::size_t pages = 0;
    for (const auto &[start, entry] : ranges_)
        pages += std::size_t((entry.end - start) / pageBytes);
    return pages;
}

} // namespace mem
} // namespace pipellm
