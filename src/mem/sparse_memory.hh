/**
 * @file
 * Sparse, region-based memory arena used for both CVM host memory and
 * GPU device memory.
 *
 * Simulated LLM workloads declare regions of up to hundreds of GiB
 * (e.g. OPT-175B weights); actually backing them would be impossible,
 * so pages materialize only on first write. Reads of unmaterialized
 * pages return deterministic *synthetic content* — a pure function of
 * (region id, offset) — which lets the sampled AES-GCM path round-trip
 * real bytes end to end without real storage.
 *
 * CVM semantics: each region lives in a MemSpace. CvmPrivate regions
 * are inaccessible to the host/hypervisor (where plaintext and
 * PipeLLM's unvalidated ciphertext live); CvmShared regions are the
 * DMA-visible staging area; Device regions are GPU memory.
 */

#ifndef PIPELLM_MEM_SPARSE_MEMORY_HH
#define PIPELLM_MEM_SPARSE_MEMORY_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hh"
#include "common/units.hh"
#include "mem/page_protection.hh"

namespace pipellm {
namespace mem {

/** Which protection domain a region belongs to. */
enum class MemSpace : std::uint8_t
{
    CvmPrivate, ///< CVM-encrypted memory, invisible to the host
    CvmShared,  ///< bounce-buffer memory the GPU can DMA
    Device,     ///< GPU HBM inside the GPU enclave
};

const char *toString(MemSpace space);

/** An allocated address range. */
struct Region
{
    Addr base = 0;
    std::uint64_t len = 0;
    /** Stable identity; seeds this region's synthetic content. */
    std::uint64_t id = 0;
    std::string name;
    MemSpace space = MemSpace::CvmPrivate;

    Addr end() const { return base + len; }
    bool
    contains(Addr addr, std::uint64_t n) const
    {
        return addr >= base && addr + n <= end();
    }
};

/** Sparse paged arena with region allocation and synthetic content. */
class SparseMemory
{
  public:
    /**
     * @param name arena name for diagnostics
     * @param capacity total allocatable bytes
     */
    SparseMemory(std::string name, std::uint64_t capacity);

    /** Allocate a region; fatal() when capacity is exhausted. */
    Region alloc(std::uint64_t len, std::string name,
                 MemSpace space = MemSpace::CvmPrivate);

    /** Release a region; accessing it afterwards panics. */
    void free(const Region &region);

    /** Region covering @p addr; panics if the address is wild. */
    const Region &regionOf(Addr addr) const;

    /** True if some allocated region covers [addr, addr+len). */
    bool covered(Addr addr, std::uint64_t len) const;

    /**
     * Read @p len bytes at @p addr into @p out.
     * @return earliest tick the data is usable (nonzero only when a
     *         fault handler had to resolve, e.g. pending decryption)
     */
    Tick read(Addr addr, std::uint8_t *out, std::uint64_t len);

    /** Read a sample as a vector (convenience for the crypto path). */
    std::vector<std::uint8_t> readSample(Addr addr, std::uint64_t len);

    /**
     * Write @p len bytes to @p addr.
     * @return earliest tick the write is considered done (fault
     *         resolution may defer it)
     */
    Tick write(Addr addr, const std::uint8_t *data, std::uint64_t len);

    /**
     * Drop materialized pages in the range, reverting them to
     * synthetic content. Used to model "the placeholder still holds
     * garbage/ciphertext" without storing it.
     */
    void discardPages(Addr addr, std::uint64_t len);

    /** Page protection layered over this arena. */
    PageProtection &protection() { return protection_; }
    const PageProtection &protection() const { return protection_; }

    std::uint64_t capacity() const { return capacity_; }

    std::uint64_t
    bytesAllocated() const
    {
        common::LockGuard lock(mu_);
        return bytes_allocated_;
    }

    std::uint64_t
    bytesFree() const
    {
        common::LockGuard lock(mu_);
        return capacity_ - bytes_allocated_;
    }

    /** Bytes allocated per space, for CVM shared-memory accounting. */
    std::uint64_t bytesAllocated(MemSpace space) const;

    /** Number of really-materialized (backed) pages. */
    std::size_t
    materializedPages() const
    {
        common::LockGuard lock(mu_);
        return pages_.size();
    }

    const std::string &name() const { return name_; }

  private:
    const Region &findRegionLocked(Addr addr, std::uint64_t len) const
        REQUIRES(mu_);
    void discardPagesLocked(Addr addr, std::uint64_t len)
        REQUIRES(mu_);
    std::uint8_t syntheticAt(const Region &region, Addr addr) const;

    /**
     * The host arena is shared by every replica shard, so its
     * bookkeeping (region map, bump pointer, page store) must be
     * consistent under concurrent engine stepping. A *plain*
     * capability-annotated mutex: read()/write() dispatch page-fault
     * handlers *before* taking it (via PageProtection::access, which
     * itself runs handlers unlocked), so a handler that re-enters the
     * arena — synchronous decrypt reading the placeholder it is
     * resolving — acquires it like any other caller instead of relying
     * on recursive locking the compile-time analysis cannot follow.
     * Note that parallel shards may interleave alloc() order
     * nondeterministically — region ids and base addresses are
     * simulation-internal identities that never influence timing, so
     * results stay deterministic regardless.
     */
    mutable common::Mutex mu_;
    std::string name_;
    std::uint64_t capacity_;
    std::uint64_t bytes_allocated_ GUARDED_BY(mu_) = 0;
    std::uint64_t allocated_by_space_[3] GUARDED_BY(mu_) = {0, 0, 0};
    Addr next_base_ GUARDED_BY(mu_) =
        pageBytes; // keep address 0 unmapped
    std::uint64_t next_region_id_ GUARDED_BY(mu_) = 1;

    std::map<Addr, Region> regions_ GUARDED_BY(mu_); // keyed by base
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_
        GUARDED_BY(mu_);
    PageProtection protection_; ///< carries its own capability
};

} // namespace mem
} // namespace pipellm

#endif // PIPELLM_MEM_SPARSE_MEMORY_HH
