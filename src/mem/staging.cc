#include "mem/staging.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace mem {

StagingPool::StagingPool(unsigned count, std::uint64_t buf_bytes)
    : free_at_(count, 0), leased_(count, false), buf_bytes_(buf_bytes)
{
    PIPELLM_ASSERT(count > 0, "staging pool needs buffers");
    PIPELLM_ASSERT(buf_bytes > 0, "staging buffers need a size");
}

StagingPool::Lease
StagingPool::acquire(Tick earliest)
{
    unsigned best = ~0u;
    Tick best_at = maxTick;
    for (unsigned i = 0; i < free_at_.size(); ++i) {
        if (leased_[i])
            continue;
        if (free_at_[i] < best_at) {
            best_at = free_at_[i];
            best = i;
        }
    }
    PIPELLM_ASSERT(best != ~0u,
                   "staging pool exhausted: all buffers leased");
    if (best_at > earliest)
        ++stalls_;
    leased_[best] = true;
    return Lease{best, std::max(earliest, best_at)};
}

void
StagingPool::release(unsigned buf, Tick when)
{
    PIPELLM_ASSERT(buf < free_at_.size() && leased_[buf],
                   "releasing unleased staging buffer ", buf);
    leased_[buf] = false;
    free_at_[buf] = when;
}

std::vector<std::uint64_t>
StagingPool::chunk(std::uint64_t len) const
{
    std::vector<std::uint64_t> chunks;
    while (len > 0) {
        std::uint64_t c = std::min(len, buf_bytes_);
        chunks.push_back(c);
        len -= c;
    }
    return chunks;
}

} // namespace mem
} // namespace pipellm
