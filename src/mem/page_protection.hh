/**
 * @file
 * MPK/PKU-style page protection with fault hooks.
 *
 * PipeLLM's validator revokes *write* permission on pages whose
 * plaintext it has speculatively encrypted (paper §5.2); the async
 * decryptor revokes *all* access on placeholder pages that still hold
 * ciphertext (paper §5.4). An application access to a protected page
 * triggers a fault handler, which resolves the conflict (invalidate
 * the speculation / decrypt synchronously), lifts the protection, and
 * reports the tick at which the access may proceed.
 *
 * Protection is tracked at 4 KiB page granularity, like real MPK keys
 * applied through the page tables.
 */

#ifndef PIPELLM_MEM_PAGE_PROTECTION_HH
#define PIPELLM_MEM_PAGE_PROTECTION_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/mutex.hh"
#include "common/units.hh"

namespace pipellm {
namespace mem {

/** Page size used for protection and sparse materialization. */
constexpr std::uint64_t pageBytes = 4 * KiB;

/** Index of the page containing @p addr. */
constexpr std::uint64_t pageIndex(Addr addr) { return addr / pageBytes; }

/** First address of page @p index. */
constexpr Addr pageBase(std::uint64_t index) { return index * pageBytes; }

/** Protection level applied to a page. */
enum class Protection : std::uint8_t
{
    None,     ///< full access
    NoWrite,  ///< reads allowed, writes fault (validator)
    NoAccess, ///< any access faults (async-decrypt placeholder)
};

/**
 * Fault handler invoked on a protected access.
 *
 * @param addr faulting address
 * @param is_write whether the access is a write
 * @return earliest tick at which the access may proceed (0 if
 *         immediately); the handler must lift the protection that
 *         caused the fault before returning.
 */
using FaultHandler = std::function<Tick(Addr addr, bool is_write)>;

/** Per-page protection map with fault dispatch. */
class PageProtection
{
  public:
    /**
     * Protect all pages overlapping [base, base+len). The range is
     * expanded outward to page boundaries. Protecting an
     * already-protected page overwrites its entry.
     */
    void protect(Addr base, std::uint64_t len, Protection prot,
                 FaultHandler handler);

    /** Restore full access on all pages overlapping the range. */
    void unprotect(Addr base, std::uint64_t len);

    /** Protection currently applied to the page holding @p addr. */
    Protection query(Addr addr) const;

    /**
     * Check an access; dispatch fault handlers for any protected page
     * in the range. Each distinct faulting page invokes its handler
     * once; handlers must lift their own protection (verified here,
     * panic otherwise).
     *
     * @return earliest tick the access may proceed (0 if unprotected)
     */
    Tick access(Addr base, std::uint64_t len, bool is_write);

    /** True if any page in the range carries any protection. */
    bool anyProtected(Addr base, std::uint64_t len) const;

    /** Number of faults dispatched so far. */
    std::uint64_t
    faults() const
    {
        common::LockGuard lock(mu_);
        return faults_;
    }

    /** Number of pages currently protected. */
    std::size_t protectedPages() const;

  private:
    /**
     * Protection is stored as page-aligned *ranges* rather than
     * per-page entries: a speculated OPT-66B layer spans half a
     * million pages, and the semantics (one handler per protect()
     * call, page-rounded bounds) are identical.
     */
    struct Entry
    {
        Addr end = 0; ///< exclusive, page aligned
        Protection prot = Protection::None;
        std::shared_ptr<FaultHandler> handler;
    };

    using RangeMap = std::map<Addr, Entry>; ///< keyed by start

    static bool blocks(Protection prot, bool is_write);
    RangeMap::const_iterator findCoveringLocked(Addr addr) const
        REQUIRES(mu_);
    void unprotectLocked(Addr base, std::uint64_t len) REQUIRES(mu_);
    /**
     * First blocking range overlapping [s, e); fills @p fault_addr and
     * @p handler and bumps the fault counter when one is found.
     */
    bool findBlockingLocked(Addr s, Addr e, bool is_write,
                            Addr &fault_addr,
                            std::shared_ptr<FaultHandler> &handler)
        REQUIRES(mu_);

    /**
     * Serializes the host arena's protection map across replica
     * shards. A *plain* capability-annotated mutex: fault handlers
     * legitimately re-enter this class (lifting their own protection,
     * touching other protected pages while resolving), so access()
     * releases the lock around every handler dispatch — the handler
     * re-acquires like any other caller, the compile-time analysis can
     * follow the discipline, and the old recursive_mutex (opaque to
     * Clang's thread-safety analysis) is gone. The handler shared_ptr
     * keeps the callback alive even if a concurrent unprotect() erases
     * its entry mid-dispatch.
     */
    mutable common::Mutex mu_;
    RangeMap ranges_ GUARDED_BY(mu_);
    std::uint64_t faults_ GUARDED_BY(mu_) = 0;
};

} // namespace mem
} // namespace pipellm

#endif // PIPELLM_MEM_PAGE_PROTECTION_HH
