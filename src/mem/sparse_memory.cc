#include "mem/sparse_memory.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pipellm {
namespace mem {

const char *
toString(MemSpace space)
{
    switch (space) {
      case MemSpace::CvmPrivate:
        return "cvm-private";
      case MemSpace::CvmShared:
        return "cvm-shared";
      case MemSpace::Device:
        return "device";
    }
    return "?";
}

SparseMemory::SparseMemory(std::string name, std::uint64_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    PIPELLM_ASSERT(capacity_ > 0, "arena needs capacity: ", name_);
}

Region
SparseMemory::alloc(std::uint64_t len, std::string name, MemSpace space)
{
    common::LockGuard lock(mu_);
    PIPELLM_ASSERT(len > 0, "allocating empty region: ", name);
    if (bytes_allocated_ + len > capacity_) {
        FATAL("arena ", name_, " out of memory: need ", len,
              " bytes for '", name, "', free ",
              capacity_ - bytes_allocated_);
    }

    Region region;
    region.base = next_base_;
    region.len = len;
    region.id = next_region_id_++;
    region.name = std::move(name);
    region.space = space;

    // Regions are page-aligned and padded so no two regions ever share
    // a protection page.
    std::uint64_t span = (len + pageBytes - 1) / pageBytes * pageBytes;
    next_base_ += span + pageBytes;

    bytes_allocated_ += len;
    allocated_by_space_[unsigned(space)] += len;
    regions_.emplace(region.base, region);
    return region;
}

void
SparseMemory::free(const Region &region)
{
    common::LockGuard lock(mu_);
    auto it = regions_.find(region.base);
    PIPELLM_ASSERT(it != regions_.end() && it->second.id == region.id,
                   "freeing unknown region '", region.name, "'");
    discardPagesLocked(region.base, region.len);
    protection_.unprotect(region.base, region.len);
    bytes_allocated_ -= it->second.len;
    allocated_by_space_[unsigned(it->second.space)] -= it->second.len;
    regions_.erase(it);
}

const Region &
SparseMemory::findRegionLocked(Addr addr, std::uint64_t len) const
{
    auto it = regions_.upper_bound(addr);
    if (it != regions_.begin()) {
        --it;
        if (it->second.contains(addr, len))
            return it->second;
    }
    PANIC("arena ", name_, ": access [", addr, ", +", len,
          ") hits no allocated region");
}

const Region &
SparseMemory::regionOf(Addr addr) const
{
    common::LockGuard lock(mu_);
    return findRegionLocked(addr, 1);
}

bool
SparseMemory::covered(Addr addr, std::uint64_t len) const
{
    common::LockGuard lock(mu_);
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin())
        return false;
    --it;
    return it->second.contains(addr, len == 0 ? 1 : len);
}

std::uint8_t
SparseMemory::syntheticAt(const Region &region, Addr addr) const
{
    return Rng::syntheticByte(region.id, addr - region.base);
}

std::uint64_t
SparseMemory::bytesAllocated(MemSpace space) const
{
    common::LockGuard lock(mu_);
    return allocated_by_space_[unsigned(space)];
}

Tick
SparseMemory::read(Addr addr, std::uint8_t *out, std::uint64_t len)
{
    if (len == 0)
        return 0;
    // Resolve protection faults *before* taking the arena lock: the
    // handlers (synchronous decrypt, speculation invalidation) re-enter
    // the arena, which must be a fresh acquisition, not a recursive one.
    Tick ready = protection_.access(addr, len, /*is_write=*/false);

    common::LockGuard lock(mu_);
    const Region &region = findRegionLocked(addr, len);
    Addr cur = addr;
    std::uint64_t remaining = len;
    while (remaining > 0) {
        std::uint64_t page = pageIndex(cur);
        std::uint64_t off = cur - pageBase(page);
        std::uint64_t chunk = std::min(remaining, pageBytes - off);
        auto it = pages_.find(page);
        if (it != pages_.end()) {
            std::memcpy(out, it->second.data() + off, chunk);
        } else {
            for (std::uint64_t i = 0; i < chunk; ++i)
                out[i] = syntheticAt(region, cur + i);
        }
        out += chunk;
        cur += chunk;
        remaining -= chunk;
    }
    return ready;
}

std::vector<std::uint8_t>
SparseMemory::readSample(Addr addr, std::uint64_t len)
{
    // read() takes the lock itself.
    std::vector<std::uint8_t> out(len);
    read(addr, out.data(), len);
    return out;
}

Tick
SparseMemory::write(Addr addr, const std::uint8_t *data,
                    std::uint64_t len)
{
    if (len == 0)
        return 0;
    // See read(): fault handlers run before the arena lock is held.
    Tick ready = protection_.access(addr, len, /*is_write=*/true);

    common::LockGuard lock(mu_);
    const Region &region = findRegionLocked(addr, len);
    Addr cur = addr;
    std::uint64_t remaining = len;
    while (remaining > 0) {
        std::uint64_t page = pageIndex(cur);
        std::uint64_t off = cur - pageBase(page);
        std::uint64_t chunk = std::min(remaining, pageBytes - off);
        auto it = pages_.find(page);
        if (it == pages_.end()) {
            // Materialize with the page's synthetic content so bytes
            // outside the written span stay consistent.
            std::vector<std::uint8_t> backing(pageBytes);
            for (std::uint64_t i = 0; i < pageBytes; ++i)
                backing[i] = syntheticAt(region, pageBase(page) + i);
            it = pages_.emplace(page, std::move(backing)).first;
        }
        std::memcpy(it->second.data() + off, data, chunk);
        data += chunk;
        cur += chunk;
        remaining -= chunk;
    }
    return ready;
}

void
SparseMemory::discardPages(Addr addr, std::uint64_t len)
{
    common::LockGuard lock(mu_);
    discardPagesLocked(addr, len);
}

void
SparseMemory::discardPagesLocked(Addr addr, std::uint64_t len)
{
    if (len == 0)
        return;
    std::uint64_t first = pageIndex(addr);
    std::uint64_t last = pageIndex(addr + len - 1);
    for (std::uint64_t p = first; p <= last; ++p)
        pages_.erase(p);
}

} // namespace mem
} // namespace pipellm
