/**
 * @file
 * Fixed-size CVM shared-memory staging buffers for DMA.
 *
 * Paper §6: PipeLLM keeps ciphertext in CVM private memory until a
 * prediction validates, then copies it into fixed-size shared-memory
 * buffers from which the GPU DMAs. The pool bounds how deep the
 * memcpy→PCIe pipeline can run ahead, and its buffer size is the
 * chunking granularity of large transfers.
 */

#ifndef PIPELLM_MEM_STAGING_HH
#define PIPELLM_MEM_STAGING_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace pipellm {
namespace mem {

/** Pool of equally-sized staging buffers leased along the timeline. */
class StagingPool
{
  public:
    /**
     * @param count number of buffers (pipeline depth)
     * @param buf_bytes size of each buffer (chunk granularity)
     */
    StagingPool(unsigned count, std::uint64_t buf_bytes);

    /** A leased buffer and the tick from which it may be used. */
    struct Lease
    {
        unsigned buf;
        Tick available;
    };

    /**
     * Lease the earliest-available buffer, not before @p earliest.
     * The buffer stays leased until release().
     */
    Lease acquire(Tick earliest);

    /** Return buffer @p buf to the pool, free from tick @p when. */
    void release(unsigned buf, Tick when);

    unsigned count() const { return unsigned(free_at_.size()); }
    std::uint64_t bufBytes() const { return buf_bytes_; }

    /** Total shared-memory footprint of the pool. */
    std::uint64_t totalBytes() const { return count() * buf_bytes_; }

    /** Number of acquires that had to wait for a release. */
    std::uint64_t stalls() const { return stalls_; }

    /** Split @p len into chunk sizes of at most bufBytes(). */
    std::vector<std::uint64_t> chunk(std::uint64_t len) const;

  private:
    std::vector<Tick> free_at_;
    std::vector<bool> leased_;
    std::uint64_t buf_bytes_;
    std::uint64_t stalls_ = 0;
};

} // namespace mem
} // namespace pipellm

#endif // PIPELLM_MEM_STAGING_HH
