/**
 * @file
 * Replica-routing serving layer over a multi-device Platform.
 *
 * A production deployment serves one model from N identical replicas,
 * one per GPU, behind a front-end router. This layer reproduces that
 * shape inside the simulator: the router owns one RuntimeApi (and so
 * one VllmEngine) per cluster device and load-balances a Poisson
 * arrival trace across them. Each replica's crypto state — IV
 * counters, CC session, staged copy paths — belongs to its own
 * DeviceContext, so speculation on one GPU can never consume another
 * GPU's IVs; crypto and transfer *capacity* may be private or shared
 * machine-wide depending on the Platform's HostResources.
 *
 * The run loop is event-interleaved co-simulation: replicas step
 * concurrently on the shared clock behind a conservative min-clock
 * frontier, requests are delivered when the frontier reaches their
 * arrival, and routing decisions read live replica load at that
 * moment. Replicas on a contended host therefore hit the shared
 * crypto pool and host bridge in global time order; with private
 * resources the interleaving is order-independent and bit-identical
 * to simulating each replica back to back.
 *
 * Routing is deterministic: round-robin by arrival order, or
 * least-loaded by each replica's live outstanding-token count with
 * lowest-device-id tie-breaking. With one device, either policy
 * degenerates to the single-Platform path bit-for-bit.
 *
 * Disaggregated serving (DisaggConfig) splits the cluster by role:
 * the first P replicas run prefill only, the rest decode only.
 * Arrivals route among the prefill replicas; a finished prefill's KV
 * blocks migrate to the least-loaded decode replica over a per-pair
 * encrypted link (KvMigrator), and the decode stage carries every
 * end-to-end metric. Handoffs are processed only at delivery
 * barriers — the same points in both the sharded and sequential
 * regimes — so disaggregated results stay byte-identical for every
 * worker count. Migration failures degrade gracefully: a stalled
 * stream decodes locally on the prefill replica, a destination crash
 * re-routes the migration to another live decode replica, and a
 * prefill replica that dies before its handoff is processed requeues
 * the full request through normal failover.
 *
 * Two robustness layers sit on top. A crashed replica can restart
 * (FaultPlan::replica_restart_rate): after a seeded repair delay it
 * re-keys its SPDM session into a fresh IV epoch, re-uploads the
 * weights through the staged path, round-trips a warm-up probe, and
 * only then rejoins routing. And the front-end can protect itself
 * from overload (AdmissionConfig): requests whose deadline is
 * provably unmeetable are shed before routing, and a per-replica
 * outstanding-cost cap holds excess arrivals at the front-end. Both
 * are off by default and change nothing when disabled.
 */

#ifndef PIPELLM_SERVING_CLUSTER_HH
#define PIPELLM_SERVING_CLUSTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "runtime/api.hh"
#include "serving/migrate.hh"
#include "serving/vllm.hh"
#include "trace/request.hh"

namespace pipellm {
namespace serving {

/** How the router picks a replica for each arriving request. */
enum class RoutePolicy : std::uint8_t
{
    /** Strict rotation in arrival order. */
    RoundRobin,
    /**
     * Replica with the smallest outstanding-token estimate
     * (prompt + parallel_sampling * output tokens); ties go to the
     * lowest device id.
     */
    LeastLoaded,
};

const char *toString(RoutePolicy policy);

/**
 * Builds the runtime driving one replica. Called once per device at
 * router construction; the factory decides the RuntimeApi flavor
 * (plain, CC, PipeLLM, ...) and must bind it to @p device.
 */
using RuntimeFactory = std::function<std::unique_ptr<runtime::RuntimeApi>(
    runtime::Platform &, runtime::DeviceId)>;

/**
 * Overload protection at the front-end. Disabled (the default), the
 * router behaves exactly as before — no extra branches change any
 * routing decision, so committed bench output is byte-identical.
 */
struct AdmissionConfig
{
    /**
     * Shed a request whose deadline is provably unmeetable: even if
     * the least-loaded replica served nothing but its current
     * backlog plus this request at the full estimated service rate,
     * it would still finish late. The bound is optimistic (future
     * arrivals are ignored), so shedding never kills a request that
     * had any chance under the estimate.
     */
    bool shed_enabled = false;

    /**
     * Estimated per-replica service rate in cost units
     * (prompt + parallel_sampling * output tokens) per simulated
     * second; converts outstanding cost into projected finish time.
     * 0 disables the deadline test even when shedding is on.
     */
    double service_cost_per_sec = 0;

    /**
     * Queue-depth backpressure: a replica whose outstanding cost
     * would exceed this is not a routing candidate, and a request no
     * candidate can take is held at the front-end until a step frees
     * capacity. 0 = uncapped. An idle replica always qualifies, so a
     * single huge request cannot deadlock the cap.
     */
    std::uint64_t max_outstanding_cost = 0;
};

/**
 * Disaggregated prefill/decode serving. Disabled (the default), the
 * router is the homogeneous-replica one, decision for decision.
 */
struct DisaggConfig
{
    bool enabled = false;

    /**
     * Replicas [0, prefill_replicas) serve prefill; the rest serve
     * decode. 0 picks half the cluster; the value is clamped so both
     * roles keep at least one replica (disaggregation needs >= 2
     * devices and is ignored below that).
     */
    unsigned prefill_replicas = 0;

    /** KV migration stream tuning (chunk size, pipeline depth). */
    MigrationConfig migration;
};

/** Cluster-serving configuration. */
struct ClusterConfig
{
    /** Per-replica engine configuration (identical replicas). */
    VllmConfig engine;
    RoutePolicy policy = RoutePolicy::RoundRobin;
    /** Front-end overload protection (inert by default). */
    AdmissionConfig admission;
    /** Prefill/decode disaggregation (inert by default). */
    DisaggConfig disagg;
    /**
     * Worker threads for the sharded co-simulation (0 = hardware
     * concurrency). Only the decoupled regime (private host
     * resources, faults disarmed) actually runs shards in parallel;
     * coupled or fault-armed runs keep the sequential min-clock
     * schedule whatever this says. Either way the results are
     * byte-identical for every value — the thread count is a
     * wall-clock knob, never a model input.
     */
    unsigned threads = 1;
};

/** Per-replica slice of a cluster run. */
struct ReplicaReport
{
    runtime::DeviceId device = 0;
    /** Disaggregated runs: this replica served the prefill role. */
    bool prefill = false;
    std::uint64_t requests = 0;
    /** Output tokens routed here (output_len * parallel_sampling). */
    std::uint64_t routed_tokens = 0;
    VllmResult result;
    runtime::RuntimeStats runtime_stats;
    std::string runtime_name;

    /** True when the injected crash schedule killed this replica. */
    bool crashed = false;
    /** Tick at which the router detected the crash. */
    Tick crash_time = 0;
    /** Unfinished requests moved off this replica when it died. */
    std::uint64_t requeued = 0;
    /** Unfinished requests lost because no replica survived. */
    std::uint64_t dropped = 0;
    /** Orphaned requests this (surviving) replica absorbed. */
    std::uint64_t absorbed = 0;
    /** Generated tokens lost with this replica's in-flight work. */
    std::uint64_t lost_tokens = 0;
    /** Faults this replica's runtime recovered from. */
    fault::FaultReport faults;

    /** Crashes of this replica (can exceed 1 once restarts rejoin). */
    std::uint64_t crash_count = 0;
    /** Restart sequences scheduled (re-key + reload + probe). */
    std::uint64_t restarts = 0;
    /** True when a restart re-admitted this replica to routing. */
    bool rejoined = false;
    /** Tick of the last completed rejoin. */
    Tick rejoin_time = 0;
    /** Summed crash-detect -> rejoin-complete time. */
    Tick time_to_rejoin = 0;
};

/** Aggregate result of serving one trace across the cluster. */
struct ClusterResult
{
    /**
     * Completed-weighted mean of replica normalized latencies —
     * algebraically identical to the mean over the merged samples.
     */
    double normalized_latency = 0;
    /**
     * True cluster-wide p90 normalized latency, computed over the
     * merged per-request samples of every replica.
     */
    double p90_normalized_latency = 0;
    /**
     * Completed-weighted mean of the replica p90s — the
     * approximation this field's name used to denote. It is not a
     * percentile of anything; it is kept (documented) because
     * committed bench CSVs' p90 columns were generated from it and
     * must stay byte-identical.
     */
    double replica_weighted_p90 = 0;
    std::uint64_t completed = 0;
    std::uint64_t preemptions = 0;
    /** Wall time of the slowest replica. */
    Tick makespan = 0;
    /** Routed output tokens over the makespan. */
    double tokens_per_sec = 0;
    /** Tokens of *completed* requests over the makespan: the goodput
     *  a fault sweep watches (lost work routed but never delivered
     *  does not count). Equals tokens_per_sec on fault-free runs
     *  where every routed request completes. */
    double goodput_tokens_per_sec = 0;
    /** Requests dropped because every replica had crashed. */
    std::uint64_t dropped = 0;

    /** Requests shed by admission control (never routed). */
    std::uint64_t shed_requests = 0;
    /** Routed-token equivalent of the shed requests. */
    std::uint64_t shed_tokens = 0;
    /** Completed requests that finished past their deadline. */
    std::uint64_t slo_missed = 0;
    /** Generated tokens of those late completions. */
    std::uint64_t slo_missed_tokens = 0;
    /** Goodput counting only in-SLO completions. */
    double slo_goodput_tokens_per_sec = 0;
    /** Times a request was held because every candidate was capped. */
    std::uint64_t backpressure_deferrals = 0;
    /** Requests held for a rejoining replica when all were dead. */
    std::uint64_t deferred_to_rejoin = 0;

    /** Cluster-wide fault/recovery counters (replicas merged). */
    fault::FaultReport faults;
    /** All replicas' completion events merged, sorted by time. */
    std::vector<CompletionEvent> completions;
    std::vector<ReplicaReport> replicas;

    /**
     * Wall-clock bookkeeping for the bench harness; never part of a
     * CSV row. Engine scheduler iterations across all replicas (the
     * co-simulation's unit of work), and whether the run used the
     * parallel sharded schedule or the sequential min-clock one.
     */
    std::uint64_t engine_steps = 0;
    bool sharded = false;
};

/** The front-end router plus its N engine replicas. */
class ClusterRouter
{
  public:
    /** One replica per device of @p platform's cluster. */
    ClusterRouter(runtime::Platform &platform,
                  const RuntimeFactory &factory, ClusterConfig config);

    unsigned numReplicas() const { return unsigned(runtimes_.size()); }
    RoutePolicy policy() const { return config_.policy; }

    /**
     * Routing decision for @p req, advancing router state (rotation
     * cursor / load estimates). Exposed so tests can drive the policy
     * deterministically without a full serving run.
     * @return the chosen replica, or nullopt when no candidate
     *         exists: every replica is dead, or every alive one is
     *         past the admission cost cap (backpressure)
     */
    std::optional<runtime::DeviceId> route(const trace::Request &req);

    /**
     * Force a replica out of the routing set, as an external health
     * check would (tests and harnesses; run() resets liveness).
     */
    void markReplicaDead(runtime::DeviceId id);

    /** Serve @p requests (arrival-stamped) across the replicas. */
    ClusterResult run(const trace::Trace &requests);

    /** Replica @p id's runtime, for inspection. */
    runtime::RuntimeApi &runtime(runtime::DeviceId id);

    /** Replicas not yet killed by the crash schedule. */
    unsigned aliveCount() const;

  private:
    /** Outstanding-work estimate a request adds to its replica. */
    std::uint64_t costOf(const trace::Request &req) const;

    /** Routing-candidate test: alive and under the admission cap. */
    bool isCandidate(unsigned d, std::uint64_t cost) const;

    runtime::Platform &platform_;
    ClusterConfig config_;
    std::vector<std::unique_ptr<runtime::RuntimeApi>> runtimes_;
    /** Rotation cursor (RoundRobin). */
    unsigned next_ = 0;
    /** Outstanding-token estimate per replica (LeastLoaded). */
    std::vector<std::uint64_t> load_;
    /** Health per replica; routing never targets a dead one. */
    std::vector<bool> alive_;
    /**
     * Role map for the current disaggregated run (1 = decode-only,
     * never a front-end routing candidate). Empty outside
     * disaggregated runs, leaving every routing decision unchanged.
     */
    std::vector<std::uint8_t> decode_role_;
};

} // namespace serving
} // namespace pipellm

#endif // PIPELLM_SERVING_CLUSTER_HH
