/**
 * @file
 * Replica-routing serving layer over a multi-device Platform.
 *
 * A production deployment serves one model from N identical replicas,
 * one per GPU, behind a front-end router. This layer reproduces that
 * shape inside the simulator: the router owns one RuntimeApi (and so
 * one VllmEngine) per cluster device and load-balances a Poisson
 * arrival trace across them. Each replica's crypto state — IV
 * counters, CC session, staged copy paths — belongs to its own
 * DeviceContext, so speculation on one GPU can never consume another
 * GPU's IVs; crypto and transfer *capacity* may be private or shared
 * machine-wide depending on the Platform's HostResources.
 *
 * The run loop is event-interleaved co-simulation: replicas step
 * concurrently on the shared clock behind a conservative min-clock
 * frontier, requests are delivered when the frontier reaches their
 * arrival, and routing decisions read live replica load at that
 * moment. Replicas on a contended host therefore hit the shared
 * crypto pool and host bridge in global time order; with private
 * resources the interleaving is order-independent and bit-identical
 * to simulating each replica back to back.
 *
 * Routing is deterministic: round-robin by arrival order, or
 * least-loaded by each replica's live outstanding-token count with
 * lowest-device-id tie-breaking. With one device, either policy
 * degenerates to the single-Platform path bit-for-bit.
 */

#ifndef PIPELLM_SERVING_CLUSTER_HH
#define PIPELLM_SERVING_CLUSTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "runtime/api.hh"
#include "serving/vllm.hh"
#include "trace/request.hh"

namespace pipellm {
namespace serving {

/** How the router picks a replica for each arriving request. */
enum class RoutePolicy : std::uint8_t
{
    /** Strict rotation in arrival order. */
    RoundRobin,
    /**
     * Replica with the smallest outstanding-token estimate
     * (prompt + parallel_sampling * output tokens); ties go to the
     * lowest device id.
     */
    LeastLoaded,
};

const char *toString(RoutePolicy policy);

/**
 * Builds the runtime driving one replica. Called once per device at
 * router construction; the factory decides the RuntimeApi flavor
 * (plain, CC, PipeLLM, ...) and must bind it to @p device.
 */
using RuntimeFactory = std::function<std::unique_ptr<runtime::RuntimeApi>(
    runtime::Platform &, runtime::DeviceId)>;

/** Cluster-serving configuration. */
struct ClusterConfig
{
    /** Per-replica engine configuration (identical replicas). */
    VllmConfig engine;
    RoutePolicy policy = RoutePolicy::RoundRobin;
};

/** Per-replica slice of a cluster run. */
struct ReplicaReport
{
    runtime::DeviceId device = 0;
    std::uint64_t requests = 0;
    /** Output tokens routed here (output_len * parallel_sampling). */
    std::uint64_t routed_tokens = 0;
    VllmResult result;
    runtime::RuntimeStats runtime_stats;
    std::string runtime_name;

    /** True when the injected crash schedule killed this replica. */
    bool crashed = false;
    /** Tick at which the router detected the crash. */
    Tick crash_time = 0;
    /** Unfinished requests moved off this replica when it died. */
    std::uint64_t requeued = 0;
    /** Unfinished requests lost because no replica survived. */
    std::uint64_t dropped = 0;
    /** Orphaned requests this (surviving) replica absorbed. */
    std::uint64_t absorbed = 0;
    /** Generated tokens lost with this replica's in-flight work. */
    std::uint64_t lost_tokens = 0;
    /** Faults this replica's runtime recovered from. */
    fault::FaultReport faults;
};

/** Aggregate result of serving one trace across the cluster. */
struct ClusterResult
{
    /** Completed-weighted mean of replica normalized latencies. */
    double normalized_latency = 0;
    /**
     * Completed-weighted mean of replica p90s — an approximation of
     * the cluster-wide p90 that avoids re-merging sample sets.
     */
    double p90_normalized_latency = 0;
    std::uint64_t completed = 0;
    std::uint64_t preemptions = 0;
    /** Wall time of the slowest replica. */
    Tick makespan = 0;
    /** Routed output tokens over the makespan. */
    double tokens_per_sec = 0;
    /** Tokens of *completed* requests over the makespan: the goodput
     *  a fault sweep watches (lost work routed but never delivered
     *  does not count). Equals tokens_per_sec on fault-free runs
     *  where every routed request completes. */
    double goodput_tokens_per_sec = 0;
    /** Requests dropped because every replica had crashed. */
    std::uint64_t dropped = 0;
    /** Cluster-wide fault/recovery counters (replicas merged). */
    fault::FaultReport faults;
    std::vector<ReplicaReport> replicas;
};

/** The front-end router plus its N engine replicas. */
class ClusterRouter
{
  public:
    /** One replica per device of @p platform's cluster. */
    ClusterRouter(runtime::Platform &platform,
                  const RuntimeFactory &factory, ClusterConfig config);

    unsigned numReplicas() const { return unsigned(runtimes_.size()); }
    RoutePolicy policy() const { return config_.policy; }

    /**
     * Routing decision for @p req, advancing router state (rotation
     * cursor / load estimates). Exposed so tests can drive the policy
     * deterministically without a full serving run.
     */
    runtime::DeviceId route(const trace::Request &req);

    /** Serve @p requests (arrival-stamped) across the replicas. */
    ClusterResult run(const trace::Trace &requests);

    /** Replica @p id's runtime, for inspection. */
    runtime::RuntimeApi &runtime(runtime::DeviceId id);

    /** Replicas not yet killed by the crash schedule. */
    unsigned aliveCount() const;

  private:
    /** Outstanding-work estimate a request adds to its replica. */
    std::uint64_t costOf(const trace::Request &req) const;

    runtime::Platform &platform_;
    ClusterConfig config_;
    std::vector<std::unique_ptr<runtime::RuntimeApi>> runtimes_;
    /** Rotation cursor (RoundRobin). */
    unsigned next_ = 0;
    /** Outstanding-token estimate per replica (LeastLoaded). */
    std::vector<std::uint64_t> load_;
    /** Health per replica; routing never targets a dead one. */
    std::vector<bool> alive_;
};

} // namespace serving
} // namespace pipellm

#endif // PIPELLM_SERVING_CLUSTER_HH
