/**
 * @file
 * vLLM-style low-latency serving with block-granular KV cache and
 * request-wise swapping (paper §3 case study 2, §7.2 "KV cache
 * swapping").
 *
 * Model weights stay resident; memory pressure comes from the KV
 * cache of concurrently served requests. Parallel sampling keeps n
 * sequences per request sharing the prompt KV. Under pressure the
 * scheduler preempts the lowest-priority (latest-arrival) running
 * group and swaps its KV blocks to CVM DRAM; preempted groups resume
 * in LIFO order — the pattern PipeLLM's predictor exploits (§5.1).
 */

#ifndef PIPELLM_SERVING_VLLM_HH
#define PIPELLM_SERVING_VLLM_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "llm/cost_model.hh"
#include "runtime/api.hh"
#include "sim/stats.hh"
#include "trace/request.hh"

namespace pipellm {
namespace serving {

/** What a preempted group does with its KV cache. */
enum class PreemptMode : std::uint8_t
{
    /** Swap blocks to CVM DRAM and back (the paper's focus). */
    Swap,
    /**
     * Drop the KV and re-prefill prompt+generated tokens on resume
     * (vLLM's alternative policy; trades GPU compute for PCIe/crypto
     * traffic — an interesting lever *under CC*).
     */
    Recompute,
};

/** vLLM run configuration. */
struct VllmConfig
{
    llm::ModelConfig model;
    PreemptMode preempt_mode = PreemptMode::Swap;
    /** Output sequences sampled per request (paper: 2, 4, 6). */
    unsigned parallel_sampling = 6;
    /** Tokens per KV block (vLLM default). */
    unsigned block_tokens = 16;
    /** Cap on concurrently running groups. */
    unsigned max_running_groups = 64;
    /** GPU bytes reserved for activations/workspace. */
    std::uint64_t gpu_reserved_bytes = 2 * GiB;
};

/** One completed request, for goodput-over-time timelines. */
struct CompletionEvent
{
    Tick at = 0;
    /** Generated tokens delivered (output * parallel sampling). */
    std::uint64_t tokens = 0;
};

/** Result of serving one trace. */
struct VllmResult
{
    /** Mean end-to-end latency per generated token (s/token). */
    double normalized_latency = 0;
    double p90_normalized_latency = 0;
    std::uint64_t completed = 0;
    /** Tokens delivered by completed groups (goodput numerator). */
    std::uint64_t completed_tokens = 0;
    std::uint64_t preemptions = 0;
    /** Tokens re-prefilled due to recompute preemptions. */
    std::uint64_t recomputed_tokens = 0;
    std::uint64_t swap_out_bytes = 0;
    std::uint64_t swap_in_bytes = 0;
    Tick total_time = 0;
    /** Completions past their request deadline (deadline != 0 only). */
    std::uint64_t slo_missed = 0;
    /** Generated tokens belonging to those late completions. */
    std::uint64_t slo_missed_tokens = 0;
    /**
     * Per-request completion events in retirement order. Chaos/soak
     * analysis builds goodput-over-time from these.
     */
    std::vector<CompletionEvent> completions;
    /**
     * Every per-request normalized-latency sample. Cluster results
     * merge these for a true cluster-wide percentile instead of
     * aggregating per-replica p90s.
     */
    sim::SampleSet latency_samples;
};

/** The engine. */
class VllmEngine
{
  public:
    VllmEngine(runtime::RuntimeApi &rt, const VllmConfig &config);
    ~VllmEngine();

    /** Serve @p requests (arrival-stamped); returns the metrics. */
    VllmResult run(const trace::Trace &requests);

    // --- stepwise interface (cluster co-simulation) ---
    // run() is exactly: beginRun(); submit arrivals as the clock
    // reaches them; stepOnce() while hasWork(); finish(). A router
    // drives several engines through these primitives on one shared
    // timeline, interleaving their scheduler iterations by clock.

    /** Reset all serving state for a fresh run. */
    void beginRun();

    /** Hand an arrived request to the scheduler (arrival order). */
    void submit(const trace::Request &req);

    /**
     * Disaggregated-mode prefill stage: serve only the prompt (plus
     * the single bootstrap token prefill naturally emits) and hand
     * the finished request to the completion sink instead of counting
     * it as a completion. The request's real output length rides
     * along so a crash-drain can requeue the full request.
     */
    void submitPrefill(const trace::Request &req);

    /**
     * Disaggregated-mode decode stage: the prompt KV already landed
     * on this replica via migration, so admission allocates the
     * prompt blocks without charging prefill compute. End-to-end
     * latency still runs from the request's original arrival, which
     * the caller preserves in @p req.arrival's deadline pairing by
     * submitting with arrival = migration completion tick.
     */
    void submitMigrated(const trace::Request &req);

    /** Callback fired when a prefill-stage (handoff) group retires. */
    using CompletionSink =
        std::function<void(const trace::Request &, Tick)>;

    /** Install the prefill-handoff sink (disaggregated router). */
    void setCompletionSink(CompletionSink sink)
    {
        sink_ = std::move(sink);
    }

    /** True while any submitted group is unfinished. */
    bool hasWork() const
    {
        return !waiting_.empty() || !running_.empty() ||
               !swapped_.empty();
    }

    /**
     * One scheduler iteration: resume preempted groups, admit from
     * the waiting queue, preempt under pressure, run one compute
     * step, retire finished groups. Requires hasWork().
     */
    void stepOnce();

    /** Jump the engine clock forward while idle (never backward). */
    void advanceTo(Tick t) { now_ = std::max(now_, t); }

    /** The engine's current clock. */
    Tick clock() const { return now_; }

    /** Requests completed so far. */
    std::uint64_t completedCount() const { return completed_; }

    /**
     * Live outstanding-work estimate: prompt plus remaining sampled
     * output tokens over every unfinished group. The router's
     * least-loaded policy reads this at arrival time.
     */
    std::uint64_t outstandingCost() const;

    /** Finalize and return the metrics for the groups served. */
    VllmResult finish();

    /**
     * Replica-crash teardown: remove every unfinished group, freeing
     * its KV blocks and swap buffers, and return the original
     * requests so a router can requeue them on a surviving replica.
     * Progress on those groups is gone — the generated-and-lost
     * token count is accumulated into @p lost_tokens. After this call
     * hasWork() is false; completed groups keep their metrics.
     */
    std::vector<trace::Request> drainUnfinished(
        std::uint64_t &lost_tokens);

    /**
     * Restart-path weight re-upload: the rejoining GPU's HBM is
     * empty, so the full weight footprint re-crosses the staged path
     * in large chunks starting at @p now, charging real transfer and
     * crypto time on this engine's runtime. Returns the completion
     * tick. The engine clock is deliberately left alone: a replica
     * that never serves again must not inflate the makespan, and one
     * that does gets its clock via advanceTo() at the next delivery
     * (whose arrival is never before the rejoin tick).
     */
    Tick reloadWeights(Tick now);

    /** KV pool capacity in blocks (for tests). */
    std::uint64_t totalBlocks() const { return total_blocks_; }

    /** Blocks currently in the free pool (== totalBlocks() iff no
     *  group holds KV — the invariant drainUnfinished() restores). */
    std::uint64_t freeBlockCount() const
    {
        return free_block_ids_.size();
    }

    /** Bytes of one swap unit (one KV block across all layers). */
    std::uint64_t blockBytes() const { return block_bytes_; }

  private:
    struct Group
    {
        std::uint64_t id = 0;
        Tick arrival = 0;
        Tick deadline = 0;
        std::uint32_t prompt_len = 0;
        std::uint32_t output_len = 0;
        std::uint32_t generated = 0;
        std::vector<std::uint32_t> block_ids;
        mem::Region host_swap{};
        bool swapped = false;
        /** Prefill stage of a disaggregated request: retire to the
         *  completion sink, not the result metrics. */
        bool handoff = false;
        /** The handed-off request's real output length (a handoff
         *  group itself only generates the bootstrap token). */
        std::uint32_t full_output_len = 0;
        /** Prompt KV arrived via migration; skip prefill compute. */
        bool prefilled = false;
    };

    std::uint64_t blocksFor(const Group &g, std::uint32_t generated) const;
    std::uint64_t contextOf(const Group &g) const;

    bool admit(Group &g, Tick &now);
    void swapOut(Group &g, Tick &now);
    bool swapIn(Group &g, Tick &now);
    void freeBlocks(Group &g);
    Tick computeStep(Tick now, const std::vector<std::size_t> &prefill,
                     std::uint64_t decode_seqs,
                     std::uint64_t decode_ctx_sum);

    runtime::RuntimeApi &rt_;
    VllmConfig config_;
    llm::CostModel cost_;
    runtime::Stream &compute_stream_;
    runtime::Stream &swap_stream_;

    mem::Region weights_{};
    mem::Region kv_pool_{};
    mem::Region token_host_{};
    mem::Region token_dev_{};
    std::uint64_t block_bytes_ = 0;
    std::uint64_t total_blocks_ = 0;
    std::vector<std::uint32_t> free_block_ids_;

    std::vector<Group> groups_; // all groups, indexed by position
    std::vector<std::size_t> waiting_; // FIFO of group indices
    std::vector<std::size_t> running_;
    std::vector<std::size_t> swapped_; // LIFO stack
    std::uint64_t completed_ = 0;
    Tick now_ = 0;
    VllmResult result_;
    sim::SampleSet norm_latency_;
    CompletionSink sink_;
};

} // namespace serving
} // namespace pipellm

#endif // PIPELLM_SERVING_VLLM_HH
