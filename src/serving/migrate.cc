#include "serving/migrate.hh"

#include <deque>

#include "common/logging.hh"

namespace pipellm {
namespace serving {

using crypto::Direction;

const char *
toString(MigrationStatus status)
{
    switch (status) {
      case MigrationStatus::Completed:
        return "Completed";
      case MigrationStatus::Stalled:
        return "Stalled";
      case MigrationStatus::DestCrashed:
        return "DestCrashed";
    }
    return "Unknown";
}

KvMigrator::KvMigrator(runtime::Platform &platform,
                       const MigrationConfig &config)
    : platform_(platform), config_(config)
{
    PIPELLM_ASSERT(config_.chunk_bytes > 0,
                   "migration chunks cannot be empty");
}

KvMigrator::Link &
KvMigrator::linkFor(runtime::DeviceId src, runtime::DeviceId dst)
{
    auto key = std::make_pair(src, dst);
    auto it = links_.find(key);
    if (it != links_.end())
        return it->second;

    // A fresh SPDM session per ordered pair: same sampling rules as
    // the devices' own CPU<->GPU sessions, but a pair-unique key so
    // a blob sealed for one link can never verify on another.
    crypto::ChannelConfig cfg =
        platform_.device(src).channel().config();
    cfg.key_seed ^= 0x9E3779B97F4A7C15ULL *
                    (std::uint64_t(src) * platform_.numDevices() +
                     dst + 1);
    Link link;
    link.channel = std::make_unique<crypto::SecureChannel>(cfg);
    return links_.emplace(key, std::move(link)).first->second;
}

crypto::SecureChannel &
KvMigrator::link(runtime::DeviceId src, runtime::DeviceId dst)
{
    return *linkFor(src, dst).channel;
}

void
KvMigrator::fillSample(std::vector<std::uint8_t> &sample,
                       std::uint64_t chunk_index) const
{
    for (std::size_t i = 0; i < sample.size(); ++i) {
        sample[i] = std::uint8_t(
            (chunk_index * 131 + i * 7 + 0xA5) & 0xFF);
    }
}

void
KvMigrator::rekeyLinksOf(runtime::DeviceId device)
{
    for (auto &entry : links_) {
        if (entry.first.first != device &&
            entry.first.second != device) {
            continue;
        }
        entry.second.channel->rekey();
        // Both endpoints restart the stream counter in the new epoch;
        // pre-crash ciphertexts fail verification by construction.
        entry.second.iv = crypto::IvCounter(Direction::HostToDevice);
    }
}

MigrationResult
KvMigrator::migrate(runtime::DeviceId src, runtime::DeviceId dst,
                    std::uint64_t kv_bytes, Tick start)
{
    PIPELLM_ASSERT(src != dst, "migration requires distinct replicas");
    PIPELLM_ASSERT(kv_bytes > 0, "migrating an empty KV footprint");

    Link &lk = linkFor(src, dst);
    crypto::SecureChannel &chan = *lk.channel;
    fault::FaultInjector &injector = platform_.faultInjector();
    const fault::FaultPlan &plan = injector.plan();
    runtime::StagedCopyPath &out = platform_.device(src).d2hPath();
    runtime::StagedCopyPath &in = platform_.device(dst).h2dPath();

    MigrationResult res;
    const std::uint64_t nchunks =
        (kv_bytes + config_.chunk_bytes - 1) / config_.chunk_bytes;
    res.chunks_total = nchunks;
    ++report_.migrations;

    const unsigned depth = std::max(1u, config_.pipeline_depth);
    auto chunkLen = [&](std::uint64_t chunk) {
        std::uint64_t off = chunk * config_.chunk_bytes;
        return std::min(config_.chunk_bytes, kv_bytes - off);
    };

    /** A sealed-but-unverified chunk (ledger state Sealed). */
    struct Sealed
    {
        std::uint64_t chunk;
        std::uint64_t counter;
        crypto::CipherBlob blob;
    };
    std::deque<Sealed> window;
    std::vector<std::uint8_t> sample;

    // The stream is fully predictable, so the sender pre-generates
    // the remaining counter sequence without consuming it and checks
    // every seal lands exactly on plan; a tag fault invalidates the
    // plan (fresh IVs) and the next seal re-plans from the new base.
    std::uint64_t planned_next = lk.iv.peek(0);

    auto sealChunk = [&](std::uint64_t chunk) {
        std::uint64_t len = chunkLen(chunk);
        sample.resize(chan.sampledLen(len));
        fillSample(sample, chunk);
        std::uint64_t counter = lk.iv.next();
        PIPELLM_ASSERT(counter == planned_next,
                       "migration IV speculation diverged: sealed ",
                       counter, " planned ", planned_next);
        planned_next = counter + 1;
        if (!window.empty()) {
            // Sealed ahead of the verification frontier: this IV was
            // committed before the previous chunk round-tripped.
            ++res.speculated_ivs;
            ++report_.speculated_migration_ivs;
        }
        window.push_back(
            Sealed{chunk, counter,
                   chan.seal(Direction::HostToDevice, counter,
                             sample.data(), len)});
    };

    auto discardWindow = [&]() {
        for (const Sealed &s : window) {
            PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
                s.blob.audit_serial));
            (void)s; // only the audit build reads the serial
            ++report_.discarded_chunks;
            ++res.chunks_discarded;
        }
        window.clear();
    };

    Tick t = start;
    std::uint64_t verify = 0;    // chunks verified so far
    std::uint64_t next_seal = 0; // next chunk index to seal
    unsigned tag_retries = 0;    // consecutive, for the head chunk

    while (verify < nchunks) {
        while (next_seal < nchunks && window.size() < depth)
            sealChunk(next_seal++);

        const std::uint64_t len = chunkLen(window.front().chunk);

        // Stall watchdog: each injected stall charges the timeout
        // plus jittered capped-exponential backoff; a chunk that
        // exhausts its attempts aborts the stream so the caller can
        // degrade to local decode instead of waiting forever.
        unsigned attempts = 0;
        bool stalled_out = false;
        while (injector.stallMigration(t)) {
            ++attempts;
            ++report_.migration_stalls;
            Tick wait = plan.migration_stall_timeout +
                        injector.backoff(attempts);
            report_.retry_latency += wait;
            t += wait;
            if (attempts >= plan.max_migration_attempts) {
                stalled_out = true;
                break;
            }
        }
        if (stalled_out) {
            discardWindow();
            ++report_.migration_fallbacks;
            res.status = MigrationStatus::Stalled;
            res.done = t;
            return res;
        }

        // One crossing: the source's D2H staged path into host
        // memory, then the destination's H2D staged path — the same
        // links the replicas' own swap traffic uses.
        Tick host_at = out.transfer(t, len);
        Tick landed = in.transfer(host_at, len);

        Sealed &head = window.front();
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteExposure(
            chan.auditId(), int(Direction::HostToDevice),
            head.counter));

        if (injector.dropDestination(landed)) {
            // The destination died under this chunk. Everything
            // sealed but unverified — the in-flight chunk and the
            // speculative window behind it — is abandoned: discarded
            // in the ledger, never verified.
            ++report_.dest_mid_migration_crashes;
            discardWindow();
            res.status = MigrationStatus::DestCrashed;
            res.done = landed;
            return res;
        }

        if (injector.corruptMigrationChunk(landed))
            crypto::SecureChannel::corrupt(head.blob);

        std::vector<std::uint8_t> sample_pt;
        if (chan.open(head.blob, head.counter, sample_pt)) {
            ++res.chunks_verified;
            ++report_.migrated_chunks;
            ++verify;
            window.pop_front();
            tag_retries = 0;
            t = landed;
            continue;
        }

        // Tag mismatch. One the injector did not cause is a genuine
        // protocol bug — never paper over it with a retry.
        if (!head.blob.injected_fault) {
            FATAL("migration chunk ", head.chunk, " (", src, "->",
                  dst, ") failed verification without an injected ",
                  "fault: counter desync or stale speculation");
        }
        ++report_.migration_tag_faults;
        ++tag_retries;
        PIPELLM_ASSERT(tag_retries <= plan.max_transfer_retries,
                       "migration retry budget exhausted (",
                       plan.max_transfer_retries, ") on chunk ",
                       head.chunk);
        ++report_.migration_retries;
        // Resume from the last verified chunk at fresh IVs: the
        // failed chunk and every speculatively sealed chunk behind
        // it are stale ciphertexts now, discarded never sent again.
        discardWindow();
        next_seal = verify;
        planned_next = lk.iv.peek(0);
        t = landed;
    }

    res.status = MigrationStatus::Completed;
    res.done = t;
    return res;
}

} // namespace serving
} // namespace pipellm
