#include "serving/peft.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace serving {

using runtime::CopyKind;

PeftEngine::PeftEngine(runtime::RuntimeApi &rt, const PeftConfig &config)
    : rt_(rt), config_(config), cost_(config.model),
      compute_stream_(rt.createStream("peft-compute"))
{
    auto &platform = rt_.platform();
    const auto &model = config_.model;

    // Activation memory for the batch at full context (checkpointed).
    std::uint64_t act_bytes =
        std::uint64_t(config_.batch) * model.max_positions *
        cost_.activationBytesPerTokenPerLayer() * model.num_layers / 4;
    std::uint64_t gpu_total = platform.spec().gpu_mem_bytes;
    std::uint64_t slots = 2 * model.layerParamBytes();
    std::uint64_t reserved = act_bytes + config_.gpu_reserved_bytes +
                             model.embeddingBytes();
    if (reserved + slots >= gpu_total) {
        FATAL("PEFT config does not fit: batch ", config_.batch,
              " needs ", reserved, " reserved bytes of ", gpu_total);
    }

    layers_ = std::make_unique<LayerStore>(rt_, model,
                                           gpu_total - reserved - slots);

    std::uint64_t gbytes = std::max(adapterBytes(),
                                    std::uint64_t(4 * KiB));
    for (unsigned l = 0; l < model.num_layers; ++l) {
        grad_host_.push_back(platform.allocHost(
            gbytes, "lora-grads" + std::to_string(l)));
    }
    grad_dev_ = rt_.gpu().alloc(gbytes, "lora-grads-dev");
}

PeftEngine::~PeftEngine() = default;

std::uint64_t
PeftEngine::adapterBytes()
const
{
    // LoRA A and B matrices for the four attention projections:
    // 4 * 2 * hidden * rank parameters in fp16.
    return 8ull * config_.model.hidden * config_.lora_rank * 2;
}

Tick
PeftEngine::step(Tick now, std::uint64_t tokens)
{
    const unsigned L = layers_->layers();

    // ---- forward sweep ----
    now = layers_->prefetch(0, now);
    for (unsigned l = 0; l < L; ++l) {
        if (l + 1 < L)
            now = layers_->prefetch(l + 1, now);
        compute_stream_.waitEvent(layers_->readyAt(l));
        auto r = rt_.launchKernel(cost_.forwardLayerKernel(tokens),
                                  compute_stream_, now);
        now = r.api_return;
        layers_->computeDone(l, r.complete);
    }
    now = rt_.synchronize(now);

    // ---- backward sweep (reverse layer order) ----
    now = layers_->prefetch(L - 1, now);
    for (unsigned l = L; l-- > 0;) {
        if (l > 0)
            now = layers_->prefetch(l - 1, now);
        compute_stream_.waitEvent(layers_->readyAt(l));
        auto r = rt_.launchKernel(cost_.backwardLayerKernel(tokens),
                                  compute_stream_, now);
        now = r.api_return;
        layers_->computeDone(l, r.complete);

        // This layer's adapter gradients stream out.
        now = rt_.memcpyAsync(CopyKind::DeviceToHost,
                              grad_host_[l].base, grad_dev_.base,
                              adapterBytes(), compute_stream_, now)
                  .api_return;
    }
    now = rt_.synchronize(now);

    // CPU optimizer step over the (tiny) adapter parameters. The
    // update *writes* the host buffers — if a runtime speculatively
    // encrypted them, the validator must fault and invalidate (§5.2).
    now += microseconds(50);
    auto &host = rt_.platform().hostMem();
    for (unsigned l = 0; l < L; ++l) {
        std::uint8_t update[64];
        for (unsigned i = 0; i < sizeof(update); ++i)
            update[i] = std::uint8_t((now + l) >> (i % 8));
        now = std::max(now, host.write(grad_host_[l].base, update,
                                       sizeof(update)));
        // The updated adapters return to the GPU.
        now = rt_.memcpyAsync(CopyKind::HostToDevice, grad_dev_.base,
                              grad_host_[l].base, adapterBytes(),
                              compute_stream_, now)
                  .api_return;
    }
    return rt_.synchronize(now);
}

PeftResult
PeftEngine::run(const trace::Trace &data)
{
    unsigned n = std::min<unsigned>(config_.num_sequences,
                                    unsigned(data.size()));
    PIPELLM_ASSERT(n > 0, "empty fine-tuning dataset");

    Tick now = 0;
    std::uint64_t tokens_total = 0;
    for (unsigned i = 0; i < n; i += config_.batch) {
        unsigned b = std::min(config_.batch, n - i);
        std::uint64_t tokens = 0;
        for (unsigned j = 0; j < b; ++j)
            tokens += data[i + j].prompt_len;
        tokens_total += tokens;
        now = step(now, tokens);
    }

    PeftResult result;
    result.total_time = now;
    result.trained_tokens = tokens_total;
    result.sequences_per_sec = double(n) / toSeconds(now);
    result.tokens_per_sec = double(tokens_total) / toSeconds(now);
    result.resident_layers = layers_->residentLayers();
    result.offloaded_layers = layers_->offloadedLayers();
    return result;
}

} // namespace serving
} // namespace pipellm
