/**
 * @file
 * Layer placement and prefetch for weight-offloaded execution
 * (FlexGen inference and DeepSpeed/PEFT fine-tuning).
 *
 * A prefix of the model's layers stays resident in GPU memory; the
 * rest live in CVM DRAM and stream through a pair of double-buffered
 * GPU slots in use order. Copies are issued on a dedicated copy
 * stream ahead of the compute that consumes them — the overlap that
 * NVIDIA CC destroys by blocking the issuing thread inside the API
 * call (paper §3, case study 1).
 */

#ifndef PIPELLM_SERVING_LAYER_STORE_HH
#define PIPELLM_SERVING_LAYER_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "llm/model.hh"
#include "runtime/api.hh"

namespace pipellm {
namespace serving {

/** Placement plan and streaming machinery for one model's weights. */
class LayerStore
{
  public:
    /**
     * @param gpu_weight_budget bytes of GPU memory available for
     *        resident layers (after KV/activations are carved out)
     */
    LayerStore(runtime::RuntimeApi &rt, const llm::ModelConfig &model,
               std::uint64_t gpu_weight_budget);

    ~LayerStore();

    unsigned layers() const { return model_.num_layers; }
    unsigned residentLayers() const { return resident_layers_; }
    unsigned offloadedLayers() const {
        return model_.num_layers - resident_layers_;
    }

    /** Fraction of weight bytes that must stream per pass. */
    double offloadedFraction() const;

    bool resident(unsigned layer) const {
        return layer < resident_layers_;
    }

    /**
     * Issue the H2D copy for @p layer's weights (no-op if resident).
     * The copy is enqueued on the internal copy stream at @p now.
     * @return the API-return tick (the caller's new clock)
     */
    Tick prefetch(unsigned layer, Tick now);

    /**
     * Tick at which @p layer's weights are usable on the GPU for the
     * current pass (0 for resident layers). Valid only after the
     * corresponding prefetch() in this pass.
     */
    Tick readyAt(unsigned layer) const;

    /**
     * Record that compute on @p layer finished at @p t; the slot it
     * occupied becomes reusable (double-buffer hazard tracking).
     */
    void computeDone(unsigned layer, Tick t);

    /** GPU address a streamed layer lands at (its slot). */
    Addr slotAddr(unsigned layer) const;

    /** Host address of an offloaded layer's weights. */
    Addr hostAddr(unsigned layer) const;

    std::uint64_t layerBytes() const { return layer_bytes_; }

    /** Number of streaming slots (prefetch depth + 1). */
    unsigned slots() const { return unsigned(slot_regions_.size()); }

    /** Synchronize the copy stream (used at pass boundaries). */
    Tick sync(Tick now);

  private:
    runtime::RuntimeApi &rt_;
    llm::ModelConfig model_;
    std::uint64_t layer_bytes_;
    unsigned resident_layers_;

    /** One copy stream per slot so consecutive transfers overlap. */
    std::vector<runtime::Stream *> copy_streams_;
    std::vector<mem::Region> host_regions_;   // offloaded layers
    std::vector<mem::Region> resident_regions_;
    std::vector<mem::Region> slot_regions_;   // streaming slots
    std::vector<Tick> slot_free_at_;          // compute-done per slot
    std::vector<Tick> layer_ready_;           // per pass
    std::vector<unsigned> layer_slot_;        // slot used this pass
};

} // namespace serving
} // namespace pipellm

#endif // PIPELLM_SERVING_LAYER_STORE_HH
