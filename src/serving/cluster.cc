#include "serving/cluster.hh"

#include <algorithm>

#include "audit/audit.hh"
#include "common/logging.hh"

namespace pipellm {
namespace serving {

const char *
toString(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

ClusterRouter::ClusterRouter(runtime::Platform &platform,
                             const RuntimeFactory &factory,
                             ClusterConfig config)
    : platform_(platform), config_(std::move(config)),
      load_(platform.numDevices(), 0),
      alive_(platform.numDevices(), true)
{
    PIPELLM_ASSERT(factory, "cluster router needs a runtime factory");
    runtimes_.reserve(platform.numDevices());
    for (unsigned d = 0; d < platform.numDevices(); ++d) {
        auto rt = factory(platform, runtime::DeviceId(d));
        PIPELLM_ASSERT(rt, "runtime factory returned null for device ",
                       d);
        PIPELLM_ASSERT(rt->deviceId() == d,
                       "factory bound device ", rt->deviceId(),
                       " where ", d, " was requested");
        runtimes_.push_back(std::move(rt));
    }
}

runtime::RuntimeApi &
ClusterRouter::runtime(runtime::DeviceId id)
{
    PIPELLM_ASSERT(id < runtimes_.size(), "replica ", id,
                   " out of range (", runtimes_.size(), " replicas)");
    return *runtimes_[id];
}

unsigned
ClusterRouter::aliveCount() const
{
    unsigned n = 0;
    for (bool a : alive_)
        n += a;
    return n;
}

std::uint64_t
ClusterRouter::costOf(const trace::Request &req) const
{
    // KV footprint and compute both scale with prompt plus every
    // sampled output sequence, so that sum is the load unit.
    return std::uint64_t(req.prompt_len) +
           std::uint64_t(config_.engine.parallel_sampling) *
               req.output_len;
}

runtime::DeviceId
ClusterRouter::route(const trace::Request &req)
{
    unsigned n = numReplicas();
    PIPELLM_ASSERT(aliveCount() > 0, "routing with no replica alive");
    if (config_.policy == RoutePolicy::RoundRobin) {
        // Rotation skips dead replicas; with every replica healthy
        // this is the plain cursor walk, decision for decision.
        unsigned d = next_;
        while (!alive_[d])
            d = (d + 1) % n;
        next_ = (d + 1) % n;
        load_[d] += costOf(req);
        return runtime::DeviceId(d);
    }
    int best = -1;
    for (unsigned d = 0; d < n; ++d) {
        if (!alive_[d])
            continue;
        if (best < 0 || load_[d] < load_[unsigned(best)])
            best = int(d);
    }
    load_[unsigned(best)] += costOf(req);
    return runtime::DeviceId(unsigned(best));
}

ClusterResult
ClusterRouter::run(const trace::Trace &requests)
{
    unsigned n = numReplicas();

    // Fresh routing state per run: stale totals from a previous trace
    // (or from completed requests) must not skew least-loaded.
    next_ = 0;
    std::fill(load_.begin(), load_.end(), 0);
    std::fill(alive_.begin(), alive_.end(), true);

    ClusterResult agg;
    agg.replicas.resize(n);
    std::vector<std::unique_ptr<VllmEngine>> engines;
    engines.reserve(n);
    for (unsigned d = 0; d < n; ++d) {
        agg.replicas[d].device = runtime::DeviceId(d);
        agg.replicas[d].runtime_name = runtimes_[d]->name();
        engines.push_back(std::make_unique<VllmEngine>(
            *runtimes_[d], config_.engine));
        engines[d]->beginRun();
    }

    // Event-interleaved co-simulation: all replicas advance together
    // on a conservative min-clock frontier. A request is routed when
    // the frontier reaches its arrival, so the least-loaded decision
    // reads each replica's *live* outstanding load at that moment; a
    // replica only steps while no earlier arrival is pending, so
    // shared host resources (crypto pool, bridge) see the replicas'
    // traffic interleaved rather than replica-by-replica.
#if PIPELLM_AUDIT_ENABLED
    const std::uint64_t run_id = audit::Auditor::instance().newId();
#endif
    // The arrival queue is mutable: a crashed replica's orphans are
    // re-inserted (sorted, never before the cursor) as fresh arrivals
    // at the detect tick.
    struct PendingReq
    {
        trace::Request req;
        bool requeued = false;
    };
    std::vector<PendingReq> pending;
    pending.reserve(requests.size());
    for (const auto &r : requests)
        pending.push_back(PendingReq{r, false});
    std::size_t next_arrival = 0;

    // One crash arrival per replica, drawn up front in device order,
    // so the schedule is a pure function of the plan's seed. All
    // maxTick (never) unless crashes are armed.
    auto &injector = platform_.faultInjector();
    std::vector<Tick> crash_at(n, maxTick);
    for (unsigned d = 0; d < n; ++d)
        crash_at[d] = injector.drawCrashTime();

    auto crash = [&](unsigned d, Tick detect) {
        alive_[d] = false;
        load_[d] = 0;
        injector.noteInjected(fault::Kind::ReplicaCrash);
        auto &rep = agg.replicas[d];
        rep.crashed = true;
        rep.crash_time = detect;
        std::uint64_t lost = 0;
        auto orphans = engines[d]->drainUnfinished(lost);
        rep.lost_tokens += lost;
        bool survivors = aliveCount() > 0;
        for (const auto &orphan : orphans) {
            if (!survivors) {
                ++rep.dropped;
                continue;
            }
            // Failover is causal: the orphan re-arrives at the detect
            // tick (its own arrival if that is later), restarting from
            // the prompt on whichever replica routing picks then.
            trace::Request again = orphan;
            again.arrival = std::max(again.arrival, detect);
            auto pos = std::upper_bound(
                pending.begin() + std::ptrdiff_t(next_arrival),
                pending.end(), again.arrival,
                [](Tick t, const PendingReq &p) {
                    return t < p.req.arrival;
                });
            pending.insert(pos, PendingReq{again, true});
            ++rep.requeued;
        }
    };

    // Deliberately by value: a crash inside may grow `pending`,
    // invalidating any reference into it.
    auto deliver = [&](PendingReq p) {
        const trace::Request &req = p.req;
        // An idle replica's clock never advances, so its crash is
        // detected here — when the router would next hand it work.
        for (unsigned d = 0; d < n; ++d) {
            if (alive_[d] && !engines[d]->hasWork() &&
                crash_at[d] <= req.arrival)
                crash(d, req.arrival);
        }
        if (aliveCount() == 0) {
            ++agg.dropped;
            return;
        }
        runtime::DeviceId d = route(req);
        auto &rep = agg.replicas[d];
        ++rep.requests;
        if (p.requeued)
            ++rep.absorbed;
        rep.routed_tokens += std::uint64_t(req.output_len) *
                             config_.engine.parallel_sampling;
        engines[d]->advanceTo(req.arrival);
        engines[d]->submit(req);
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDelivery(
            run_id, req.arrival, engines[d]->clock()));
    };
    while (true) {
        // A busy replica whose clock passed its crash time dies
        // before it can step again; its orphans join the arrival
        // queue at the detect tick.
        for (unsigned d = 0; d < n; ++d) {
            if (alive_[d] && engines[d]->hasWork() &&
                engines[d]->clock() >= crash_at[d])
                crash(d, engines[d]->clock());
        }
        int busiest = -1;
        for (unsigned d = 0; d < n; ++d) {
            if (engines[d]->hasWork() &&
                (busiest < 0 ||
                 engines[d]->clock() < engines[busiest]->clock()))
                busiest = int(d);
        }
#if PIPELLM_AUDIT_ENABLED
        // The conservative frontier is the earlier of the min busy
        // clock and the next pending arrival; unlike the busy-min
        // alone (which legitimately drops when an idle replica takes
        // a delivery), it is monotone.
        Tick frontier = maxTick;
        if (busiest >= 0)
            frontier = engines[busiest]->clock();
        if (next_arrival < pending.size()) {
            frontier =
                std::min(frontier, pending[next_arrival].req.arrival);
        }
        if (frontier != maxTick)
            audit::Auditor::instance().noteFrontier(run_id, frontier);
#endif
        if (busiest < 0) {
            if (next_arrival >= pending.size())
                break;
            deliver(pending[next_arrival++]);
            continue;
        }
        if (next_arrival < pending.size() &&
            pending[next_arrival].req.arrival <=
                engines[busiest]->clock()) {
            deliver(pending[next_arrival++]);
            continue;
        }
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteReplicaStep(
            run_id, engines[busiest]->clock(), frontier));
        engines[busiest]->stepOnce();
        load_[busiest] = engines[busiest]->outstandingCost();
    }

    double latency_weight = 0;
    std::uint64_t routed_tokens_total = 0;
    std::uint64_t completed_tokens_total = 0;
    for (unsigned d = 0; d < n; ++d) {
        auto &rep = agg.replicas[d];
        rep.result = engines[d]->finish();
        rep.runtime_stats = runtimes_[d]->stats();
        rep.faults = runtimes_[d]->faultReport();
        agg.faults.merge(rep.faults);

        agg.completed += rep.result.completed;
        agg.preemptions += rep.result.preemptions;
        agg.makespan = std::max(agg.makespan, rep.result.total_time);
        routed_tokens_total += rep.routed_tokens;
        completed_tokens_total += rep.result.completed_tokens;
        agg.dropped += rep.dropped;
        double w = double(rep.result.completed);
        agg.normalized_latency += w * rep.result.normalized_latency;
        agg.p90_normalized_latency +=
            w * rep.result.p90_normalized_latency;
        latency_weight += w;

        // Crash accounting lives on the router, not the runtimes.
        agg.faults.replica_crashes += rep.crashed ? 1 : 0;
        agg.faults.requeued_requests += rep.requeued;
        agg.faults.lost_tokens += rep.lost_tokens;
    }
    agg.faults.dropped_requests = agg.dropped;
    if (latency_weight > 0) {
        agg.normalized_latency /= latency_weight;
        agg.p90_normalized_latency /= latency_weight;
    }
    if (agg.makespan > 0) {
        agg.tokens_per_sec =
            double(routed_tokens_total) / toSeconds(agg.makespan);
        agg.goodput_tokens_per_sec =
            double(completed_tokens_total) / toSeconds(agg.makespan);
    }
#if PIPELLM_AUDIT_ENABLED
    {
        std::uint64_t residual = 0;
        for (auto l : load_)
            residual += l;
        audit::Auditor::instance().noteRunEnd(run_id, residual);
        // Every byte the per-device links forwarded into the shared
        // host bridge must be accounted there, and vice versa.
        if (const auto *bridge = platform_.hostBridge()) {
            audit::Auditor::instance().checkConservation(
                bridge->auditId());
        }
    }
#endif
    return agg;
}

} // namespace serving
} // namespace pipellm
