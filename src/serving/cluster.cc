#include "serving/cluster.hh"

#include <algorithm>

#include "audit/audit.hh"
#include "common/logging.hh"

namespace pipellm {
namespace serving {

const char *
toString(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

ClusterRouter::ClusterRouter(runtime::Platform &platform,
                             const RuntimeFactory &factory,
                             ClusterConfig config)
    : platform_(platform), config_(std::move(config)),
      load_(platform.numDevices(), 0)
{
    PIPELLM_ASSERT(factory, "cluster router needs a runtime factory");
    runtimes_.reserve(platform.numDevices());
    for (unsigned d = 0; d < platform.numDevices(); ++d) {
        auto rt = factory(platform, runtime::DeviceId(d));
        PIPELLM_ASSERT(rt, "runtime factory returned null for device ",
                       d);
        PIPELLM_ASSERT(rt->deviceId() == d,
                       "factory bound device ", rt->deviceId(),
                       " where ", d, " was requested");
        runtimes_.push_back(std::move(rt));
    }
}

runtime::RuntimeApi &
ClusterRouter::runtime(runtime::DeviceId id)
{
    PIPELLM_ASSERT(id < runtimes_.size(), "replica ", id,
                   " out of range (", runtimes_.size(), " replicas)");
    return *runtimes_[id];
}

std::uint64_t
ClusterRouter::costOf(const trace::Request &req) const
{
    // KV footprint and compute both scale with prompt plus every
    // sampled output sequence, so that sum is the load unit.
    return std::uint64_t(req.prompt_len) +
           std::uint64_t(config_.engine.parallel_sampling) *
               req.output_len;
}

runtime::DeviceId
ClusterRouter::route(const trace::Request &req)
{
    unsigned n = numReplicas();
    if (config_.policy == RoutePolicy::RoundRobin) {
        unsigned d = next_;
        next_ = (next_ + 1) % n;
        load_[d] += costOf(req);
        return runtime::DeviceId(d);
    }
    unsigned best = 0;
    for (unsigned d = 1; d < n; ++d) {
        if (load_[d] < load_[best])
            best = d;
    }
    load_[best] += costOf(req);
    return runtime::DeviceId(best);
}

ClusterResult
ClusterRouter::run(const trace::Trace &requests)
{
    unsigned n = numReplicas();

    // Fresh routing state per run: stale totals from a previous trace
    // (or from completed requests) must not skew least-loaded.
    next_ = 0;
    std::fill(load_.begin(), load_.end(), 0);

    ClusterResult agg;
    agg.replicas.resize(n);
    std::vector<std::unique_ptr<VllmEngine>> engines;
    engines.reserve(n);
    for (unsigned d = 0; d < n; ++d) {
        agg.replicas[d].device = runtime::DeviceId(d);
        agg.replicas[d].runtime_name = runtimes_[d]->name();
        engines.push_back(std::make_unique<VllmEngine>(
            *runtimes_[d], config_.engine));
        engines[d]->beginRun();
    }

    // Event-interleaved co-simulation: all replicas advance together
    // on a conservative min-clock frontier. A request is routed when
    // the frontier reaches its arrival, so the least-loaded decision
    // reads each replica's *live* outstanding load at that moment; a
    // replica only steps while no earlier arrival is pending, so
    // shared host resources (crypto pool, bridge) see the replicas'
    // traffic interleaved rather than replica-by-replica.
#if PIPELLM_AUDIT_ENABLED
    const std::uint64_t run_id = audit::Auditor::instance().newId();
#endif
    std::size_t next_arrival = 0;
    auto deliver = [&](const trace::Request &req) {
        runtime::DeviceId d = route(req);
        auto &rep = agg.replicas[d];
        ++rep.requests;
        rep.routed_tokens += std::uint64_t(req.output_len) *
                             config_.engine.parallel_sampling;
        engines[d]->advanceTo(req.arrival);
        engines[d]->submit(req);
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDelivery(
            run_id, req.arrival, engines[d]->clock()));
    };
    while (true) {
        int busiest = -1;
        for (unsigned d = 0; d < n; ++d) {
            if (engines[d]->hasWork() &&
                (busiest < 0 ||
                 engines[d]->clock() < engines[busiest]->clock()))
                busiest = int(d);
        }
#if PIPELLM_AUDIT_ENABLED
        // The conservative frontier is the earlier of the min busy
        // clock and the next pending arrival; unlike the busy-min
        // alone (which legitimately drops when an idle replica takes
        // a delivery), it is monotone.
        Tick frontier = maxTick;
        if (busiest >= 0)
            frontier = engines[busiest]->clock();
        if (next_arrival < requests.size()) {
            frontier =
                std::min(frontier, requests[next_arrival].arrival);
        }
        if (frontier != maxTick)
            audit::Auditor::instance().noteFrontier(run_id, frontier);
#endif
        if (busiest < 0) {
            if (next_arrival >= requests.size())
                break;
            deliver(requests[next_arrival++]);
            continue;
        }
        if (next_arrival < requests.size() &&
            requests[next_arrival].arrival <=
                engines[busiest]->clock()) {
            deliver(requests[next_arrival++]);
            continue;
        }
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteReplicaStep(
            run_id, engines[busiest]->clock(), frontier));
        engines[busiest]->stepOnce();
        load_[busiest] = engines[busiest]->outstandingCost();
    }

    double latency_weight = 0;
    std::uint64_t routed_tokens_total = 0;
    for (unsigned d = 0; d < n; ++d) {
        auto &rep = agg.replicas[d];
        rep.result = engines[d]->finish();
        rep.runtime_stats = runtimes_[d]->stats();

        agg.completed += rep.result.completed;
        agg.preemptions += rep.result.preemptions;
        agg.makespan = std::max(agg.makespan, rep.result.total_time);
        routed_tokens_total += rep.routed_tokens;
        double w = double(rep.result.completed);
        agg.normalized_latency += w * rep.result.normalized_latency;
        agg.p90_normalized_latency +=
            w * rep.result.p90_normalized_latency;
        latency_weight += w;
    }
    if (latency_weight > 0) {
        agg.normalized_latency /= latency_weight;
        agg.p90_normalized_latency /= latency_weight;
    }
    if (agg.makespan > 0)
        agg.tokens_per_sec =
            double(routed_tokens_total) / toSeconds(agg.makespan);
#if PIPELLM_AUDIT_ENABLED
    {
        std::uint64_t residual = 0;
        for (auto l : load_)
            residual += l;
        audit::Auditor::instance().noteRunEnd(run_id, residual);
        // Every byte the per-device links forwarded into the shared
        // host bridge must be accounted there, and vice versa.
        if (const auto *bridge = platform_.hostBridge()) {
            audit::Auditor::instance().checkConservation(
                bridge->auditId());
        }
    }
#endif
    return agg;
}

} // namespace serving
} // namespace pipellm
