#include "serving/cluster.hh"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "audit/audit.hh"
#include "common/logging.hh"
#include "sim/sharded_scheduler.hh"

namespace pipellm {
namespace serving {

const char *
toString(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

ClusterRouter::ClusterRouter(runtime::Platform &platform,
                             const RuntimeFactory &factory,
                             ClusterConfig config)
    : platform_(platform), config_(std::move(config)),
      load_(platform.numDevices(), 0),
      alive_(platform.numDevices(), true)
{
    PIPELLM_ASSERT(factory, "cluster router needs a runtime factory");
    runtimes_.reserve(platform.numDevices());
    for (unsigned d = 0; d < platform.numDevices(); ++d) {
        auto rt = factory(platform, runtime::DeviceId(d));
        PIPELLM_ASSERT(rt, "runtime factory returned null for device ",
                       d);
        PIPELLM_ASSERT(rt->deviceId() == d,
                       "factory bound device ", rt->deviceId(),
                       " where ", d, " was requested");
        runtimes_.push_back(std::move(rt));
    }
}

runtime::RuntimeApi &
ClusterRouter::runtime(runtime::DeviceId id)
{
    PIPELLM_ASSERT(id < runtimes_.size(), "replica ", id,
                   " out of range (", runtimes_.size(), " replicas)");
    return *runtimes_[id];
}

unsigned
ClusterRouter::aliveCount() const
{
    unsigned n = 0;
    for (bool a : alive_)
        n += a;
    return n;
}

std::uint64_t
ClusterRouter::costOf(const trace::Request &req) const
{
    // KV footprint and compute both scale with prompt plus every
    // sampled output sequence, so that sum is the load unit.
    return std::uint64_t(req.prompt_len) +
           std::uint64_t(config_.engine.parallel_sampling) *
               req.output_len;
}

bool
ClusterRouter::isCandidate(unsigned d, std::uint64_t cost) const
{
    if (!alive_[d])
        return false;
    // Disaggregated runs: front-end arrivals only target prefill
    // replicas; decode replicas receive work via migration.
    if (!decode_role_.empty() && decode_role_[d])
        return false;
    std::uint64_t cap = config_.admission.max_outstanding_cost;
    // An idle replica always qualifies: the cap is backpressure, not
    // a request-size limit, and no other replica can do better.
    if (cap == 0 || load_[d] == 0)
        return true;
    return load_[d] + cost <= cap;
}

std::optional<runtime::DeviceId>
ClusterRouter::route(const trace::Request &req)
{
    unsigned n = numReplicas();
    std::uint64_t cost = costOf(req);
    if (config_.policy == RoutePolicy::RoundRobin) {
        // Rotation skips dead/capped replicas; with every replica
        // healthy this is the plain cursor walk, decision for
        // decision. A full lap without a candidate leaves the cursor
        // untouched for the retry.
        unsigned d = next_;
        for (unsigned tried = 0; tried < n; ++tried) {
            if (isCandidate(d, cost)) {
                next_ = (d + 1) % n;
                load_[d] += cost;
                return runtime::DeviceId(d);
            }
            d = (d + 1) % n;
        }
        return std::nullopt;
    }
    int best = -1;
    for (unsigned d = 0; d < n; ++d) {
        if (!isCandidate(d, cost))
            continue;
        if (best < 0 || load_[d] < load_[unsigned(best)])
            best = int(d);
    }
    if (best < 0)
        return std::nullopt;
    load_[unsigned(best)] += cost;
    return runtime::DeviceId(unsigned(best));
}

void
ClusterRouter::markReplicaDead(runtime::DeviceId id)
{
    PIPELLM_ASSERT(id < alive_.size(), "replica ", id,
                   " out of range (", alive_.size(), " replicas)");
    alive_[id] = false;
    load_[id] = 0;
}

ClusterResult
ClusterRouter::run(const trace::Trace &requests)
{
    unsigned n = numReplicas();

    // Fresh routing state per run: stale totals from a previous trace
    // (or from completed requests) must not skew least-loaded.
    next_ = 0;
    std::fill(load_.begin(), load_.end(), 0);
    std::fill(alive_.begin(), alive_.end(), true);

    // Role partition: the first prefill_n replicas take front-end
    // arrivals, the rest only ever receive migrated decode work.
    const bool disagg = config_.disagg.enabled && n >= 2;
    unsigned prefill_n = 0;
    decode_role_.clear();
    if (disagg) {
        prefill_n = config_.disagg.prefill_replicas
                        ? config_.disagg.prefill_replicas
                        : n / 2;
        prefill_n = std::min(prefill_n, n - 1);
        PIPELLM_ASSERT(prefill_n >= 1,
                       "disaggregation needs a prefill replica");
        decode_role_.assign(n, 0);
        for (unsigned d = prefill_n; d < n; ++d)
            decode_role_[d] = 1;
    }

    ClusterResult agg;
    agg.replicas.resize(n);
    std::vector<std::unique_ptr<VllmEngine>> engines;
    engines.reserve(n);
    for (unsigned d = 0; d < n; ++d) {
        agg.replicas[d].device = runtime::DeviceId(d);
        agg.replicas[d].prefill = disagg && d < prefill_n;
        agg.replicas[d].runtime_name = runtimes_[d]->name();
        engines.push_back(std::make_unique<VllmEngine>(
            *runtimes_[d], config_.engine));
        engines[d]->beginRun();
    }

    // The migration fabric: per-ordered-pair encrypted links created
    // lazily on first use; one instance spans the whole run so link
    // IV counters advance monotonically within a session epoch.
    KvMigrator migrator(platform_, config_.disagg.migration);

    // Finished prefills land here (per source replica, so a shard
    // only ever appends to its own vector) and are migrated at the
    // next delivery barrier on the main thread.
    struct Handoff
    {
        trace::Request req;
        Tick finished = 0;
        unsigned src = 0;
    };
    std::vector<std::vector<Handoff>> handoffs(n);
    if (disagg) {
        for (unsigned d = 0; d < prefill_n; ++d) {
            engines[d]->setCompletionSink(
                [&handoffs, d](const trace::Request &r, Tick at) {
                    handoffs[d].push_back(Handoff{r, at, d});
                });
        }
    }

    // Event-interleaved co-simulation: all replicas advance together
    // on a conservative min-clock frontier. A request is routed when
    // the frontier reaches its arrival, so the least-loaded decision
    // reads each replica's *live* outstanding load at that moment; a
    // replica only steps while no earlier arrival is pending, so
    // shared host resources (crypto pool, bridge) see the replicas'
    // traffic interleaved rather than replica-by-replica.
#if PIPELLM_AUDIT_ENABLED
    const std::uint64_t run_id = audit::Auditor::instance().newId();
#endif
    // The arrival queue is mutable: a crashed replica's orphans are
    // re-inserted (sorted, never before the cursor) as fresh arrivals
    // at the detect tick.
    struct PendingReq
    {
        trace::Request req;
        bool requeued = false;
    };
    std::vector<PendingReq> pending;
    pending.reserve(requests.size());
    for (const auto &r : requests)
        pending.push_back(PendingReq{r, false});
    std::size_t next_arrival = 0;

    // One crash arrival per replica, drawn up front in device order,
    // so the schedule is a pure function of the plan's seed. All
    // maxTick (never) unless crashes are armed.
    auto &injector = platform_.faultInjector();
    std::vector<Tick> crash_at(n, maxTick);
    for (unsigned d = 0; d < n; ++d) {
        // The draw is consumed even for filtered-out devices so the
        // plan's crash_devices restriction never shifts the decision
        // stream of the other replicas or fault kinds.
        Tick t = injector.drawCrashTime();
        crash_at[d] =
            injector.plan().crashAllowed(d) ? t : maxTick;
    }
    // Rejoin-complete tick per replica; maxTick = no restart pending.
    std::vector<Tick> rejoin_at(n, maxTick);

    // Sorted reinsertion into the arrival queue, never before the
    // cursor: crash orphans, backpressure holds and all-dead rejoin
    // waits all come back through here.
    auto enqueue = [&](PendingReq again) {
        auto pos = std::upper_bound(
            pending.begin() + std::ptrdiff_t(next_arrival),
            pending.end(), again.req.arrival,
            [](Tick t, const PendingReq &p) {
                return t < p.req.arrival;
            });
        pending.insert(pos, std::move(again));
    };

    auto crash = [&](unsigned d, Tick detect) {
        alive_[d] = false;
        load_[d] = 0;
        injector.noteInjected(fault::Kind::ReplicaCrash);
        auto &rep = agg.replicas[d];
        rep.crashed = true;
        rep.crash_time = detect;
        ++rep.crash_count;
        std::uint64_t lost = 0;
        auto orphans = engines[d]->drainUnfinished(lost);
        rep.lost_tokens += lost;
        // The whole restart timeline is computed eagerly at the
        // crash: seeded repair delay, SPDM re-key (fresh key, new IV
        // epoch), staged weight re-upload and warm-up probe all
        // charge real simulated time on this replica's runtime at
        // future ticks (resource submission clamps each interval to
        // the resource's own free time, so early submission is
        // legal). The replica itself is revived lazily, when the
        // router next sees an arrival at or past the rejoin tick.
        Tick delay = injector.drawRestartDelay();
        if (delay != maxTick) {
            injector.noteInjected(fault::Kind::ReplicaRestart);
            Tick live = runtimes_[d]->restart(detect + delay);
            live = engines[d]->reloadWeights(live);
            live = runtimes_[d]->warmupProbe(live);
            rejoin_at[d] = live;
            ++rep.restarts;
            rep.time_to_rejoin += live - detect;
        }
        bool survivors = aliveCount() > 0;
        bool any_rejoin = false;
        for (Tick r : rejoin_at)
            any_rejoin |= r != maxTick;
        for (const auto &orphan : orphans) {
            if (!survivors && !any_rejoin) {
                ++rep.dropped;
                continue;
            }
            // Failover is causal: the orphan re-arrives at the detect
            // tick (its own arrival if that is later), restarting from
            // the prompt on whichever replica routing picks then. With
            // every replica down but a restart pending, delivery
            // defers it to the rejoin instead of dropping it.
            trace::Request again = orphan;
            again.arrival = std::max(again.arrival, detect);
            enqueue(PendingReq{again, true});
            ++rep.requeued;
        }
    };

    // Replicas that can take front-end arrivals: prefill replicas in
    // a disaggregated run, everyone otherwise.
    auto routableAlive = [&]() {
        unsigned limit = disagg ? prefill_n : n;
        unsigned c = 0;
        for (unsigned d = 0; d < limit; ++d)
            c += alive_[d];
        return c;
    };

    // Least-loaded live decode replica, or -1 when none survives.
    auto pickDecode = [&]() {
        int best = -1;
        for (unsigned d = prefill_n; d < n; ++d) {
            if (!alive_[d])
                continue;
            if (best < 0 || load_[d] < load_[unsigned(best)])
                best = int(d);
        }
        return best;
    };

    // KV bytes a finished prefill must move: its prompt blocks.
    auto kvFootprint = [&](const trace::Request &r) {
        std::uint64_t bt = config_.engine.block_tokens;
        std::uint64_t blocks =
            std::max<std::uint64_t>((r.prompt_len + bt - 1) / bt, 1);
        return blocks * engines[0]->blockBytes();
    };

    // Hand a decode-stage request to replica d at tick at. The KV is
    // already resident there (migrated, or local fallback), so the
    // engine skips prefill compute. Not a front-end delivery: no
    // noteDelivery, no routing-policy state.
    auto submitDecode = [&](unsigned d, const trace::Request &req,
                            Tick at) {
        load_[d] += costOf(req);
        engines[d]->advanceTo(at);
        engines[d]->submitMigrated(req);
    };

    // Router-side recovery counters (the migrator counts per-stream
    // events; re-routing and crash fallbacks are routing decisions).
    std::uint64_t rerouted = 0;
    std::uint64_t local_fallbacks = 0;

    auto migrateAndSubmit = [&](const Handoff &h) {
        Tick when = h.finished;
        unsigned src = h.src;
        // The prefill replica died after finishing this prefill but
        // before the handoff was processed: its KV died with it, so
        // the request restarts from the trace like any crash orphan.
        if (!alive_[src]) {
            trace::Request again = h.req;
            again.arrival = std::max(again.arrival, when);
            enqueue(PendingReq{again, true});
            ++agg.replicas[src].requeued;
            return;
        }
        std::uint64_t kv_bytes = kvFootprint(h.req);
        bool first = true;
        while (true) {
            int dst = pickDecode();
            if (dst < 0) {
                // No live decode replica: graceful degradation —
                // decode locally on the prefill replica, whose KV is
                // already resident.
                ++local_fallbacks;
                submitDecode(src, h.req, when);
                return;
            }
            if (!first)
                ++rerouted;
            first = false;
            auto mr = migrator.migrate(runtime::DeviceId(src),
                                       runtime::DeviceId(unsigned(dst)),
                                       kv_bytes, when);
            if (mr.status == MigrationStatus::Completed) {
                submitDecode(unsigned(dst), h.req, mr.done);
                return;
            }
            if (mr.status == MigrationStatus::Stalled) {
                // The watchdog gave up (the migrator already counted
                // the fallback): decode locally instead of waiting.
                submitDecode(src, h.req, mr.done);
                return;
            }
            // DestCrashed: the destination died under the stream. It
            // is torn down exactly like a scheduled crash (orphans
            // requeue, restart timeline, fresh crypto sessions), then
            // the loop re-routes the migration from chunk zero on a
            // surviving decode replica.
            crash(unsigned(dst), mr.done);
            migrator.rekeyLinksOf(runtime::DeviceId(unsigned(dst)));
            when = mr.done;
        }
    };

    // Handoffs are processed only here — at delivery barriers, on
    // the main thread, identically in both regimes — so resource
    // timelines and routing state match step for step whatever the
    // worker count.
    auto processHandoffs = [&]() {
        if (!disagg)
            return;
        std::vector<Handoff> batch;
        for (unsigned d = 0; d < n; ++d) {
            batch.insert(batch.end(), handoffs[d].begin(),
                         handoffs[d].end());
            handoffs[d].clear();
        }
        if (batch.empty())
            return;
        // Deterministic order regardless of which shard produced
        // which handoff: finish tick, then source, then request id.
        std::sort(batch.begin(), batch.end(),
                  [](const Handoff &a, const Handoff &b) {
                      if (a.finished != b.finished)
                          return a.finished < b.finished;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.req.id < b.req.id;
                  });
        for (const auto &h : batch)
            migrateAndSubmit(h);
    };

    // Deliberately by value: a crash inside may grow `pending`,
    // invalidating any reference into it.
    auto deliver = [&](PendingReq p) {
        const trace::Request &req = p.req;
        // Revive replicas whose rejoin sequence completed before this
        // arrival: session re-keyed, weights resident, probe
        // round-tripped — they re-enter routing empty and draw a
        // fresh crash arrival for their second life.
        for (unsigned d = 0; d < n; ++d) {
            if (alive_[d] || rejoin_at[d] == maxTick ||
                rejoin_at[d] > req.arrival)
                continue;
            alive_[d] = true;
            load_[d] = engines[d]->outstandingCost();
            auto &rep = agg.replicas[d];
            rep.rejoined = true;
            rep.rejoin_time = rejoin_at[d];
            Tick revived = rejoin_at[d];
            rejoin_at[d] = maxTick;
            Tick next = injector.drawCrashTime();
            if (!injector.plan().crashAllowed(d))
                next = maxTick;
            crash_at[d] = (next == maxTick || revived > maxTick - next)
                              ? maxTick
                              : revived + next;
        }
        // An idle replica's clock never advances, so its crash is
        // detected here — when the router would next hand it work.
        for (unsigned d = 0; d < n; ++d) {
            if (alive_[d] && !engines[d]->hasWork() &&
                crash_at[d] <= req.arrival)
                crash(d, req.arrival);
        }
        if (routableAlive() == 0) {
            // With a restart in flight the request waits for the
            // rejoin instead of dying with the cluster. Only a
            // routable (prefill-role) rejoin helps an arrival.
            Tick soonest = maxTick;
            unsigned limit = disagg ? prefill_n : n;
            for (unsigned d = 0; d < limit; ++d)
                soonest = std::min(soonest, rejoin_at[d]);
            if (soonest != maxTick) {
                ++agg.deferred_to_rejoin;
                PendingReq again = std::move(p);
                again.req.arrival =
                    std::max(again.req.arrival, soonest);
                enqueue(std::move(again));
                return;
            }
            ++agg.dropped;
            return;
        }
        const AdmissionConfig &adm = config_.admission;
        std::uint64_t cost = costOf(req);
        if (adm.shed_enabled && adm.service_cost_per_sec > 0 &&
            req.deadline != 0) {
            // Optimistic bound: the least-loaded replica drains its
            // backlog plus this request at the full estimated service
            // rate and nothing else ever arrives. If even that misses
            // the deadline, the request is provably unmeetable — shed
            // it now instead of burning replica time on a guaranteed
            // SLO violation.
            std::uint64_t best_load = ~std::uint64_t(0);
            unsigned limit = disagg ? prefill_n : n;
            for (unsigned d = 0; d < limit; ++d) {
                if (alive_[d])
                    best_load = std::min(best_load, load_[d]);
            }
            Tick finish =
                req.arrival + seconds(double(best_load + cost) /
                                      adm.service_cost_per_sec);
            if (finish > req.deadline) {
                ++agg.shed_requests;
                agg.shed_tokens += std::uint64_t(req.output_len) *
                                   config_.engine.parallel_sampling;
                return;
            }
        }
        auto routed = route(req);
        if (!routed) {
            // Backpressure: every alive replica is at the admission
            // cap. Hold the request at the front-end until the
            // earliest busy replica has stepped (its clock strictly
            // advances, so this terminates); it re-enters the arrival
            // queue just past that clock.
            ++agg.backpressure_deferrals;
            Tick retry = maxTick;
            for (unsigned d = 0; d < n; ++d) {
                if (engines[d]->hasWork())
                    retry = std::min(retry, engines[d]->clock());
            }
            PIPELLM_ASSERT(retry != maxTick,
                           "every replica capped yet none working");
            PendingReq again = std::move(p);
            again.req.arrival =
                std::max(again.req.arrival, retry + Tick(1));
            enqueue(std::move(again));
            return;
        }
        runtime::DeviceId d = *routed;
        auto &rep = agg.replicas[d];
        ++rep.requests;
        if (p.requeued)
            ++rep.absorbed;
        rep.routed_tokens += std::uint64_t(req.output_len) *
                             config_.engine.parallel_sampling;
        engines[d]->advanceTo(req.arrival);
        // Disaggregated: the prefill replica serves only the prompt
        // and hands the request off through its completion sink.
        if (disagg)
            engines[d]->submitPrefill(req);
        else
            engines[d]->submit(req);
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDelivery(
            run_id, req.arrival, engines[d]->clock()));
    };
    if (platform_.shardable()) {
        // Decoupled regime: private host resources and a disarmed
        // injector leave the replicas independent between routing
        // decisions, so the next arrival is a conservative lookahead
        // horizon — every busy replica may advance to it on its own
        // shard without observing any other. The sharded schedule
        // below dispatches exactly the per-replica step sequence of
        // the sequential min-clock loop (each busy replica steps
        // until its clock first reaches the arrival; deliveries read
        // the same clocks and loads), so the results are
        // byte-identical for any worker count.
        agg.sharded = true;
        sim::ShardedScheduler::Config sched_cfg;
        sched_cfg.workers = config_.threads;
        sched_cfg.lookahead = 1;
        sim::ShardedScheduler sched(n, sched_cfg);

        // A replica's step chain: one engine scheduler iteration per
        // event, rescheduled at the engine's own clock until it goes
        // idle. Only the shard that owns replica d ever runs these.
        Tick window_horizon = 0;
        (void)window_horizon; // only read by the audit hook below
        std::vector<std::uint8_t> armed(n, 0);
        std::vector<std::function<void()>> steppers(n);
        for (unsigned d = 0; d < n; ++d) {
            steppers[d] = [&, d] {
                auto &eng = *engines[d];
                PIPELLM_AUDIT_HOOK(
                    audit::Auditor::instance().noteReplicaStep(
                        run_id, eng.clock(), window_horizon));
                eng.stepOnce();
                if (eng.hasWork()) {
                    // A migrated group can put the engine's clock
                    // behind the shard's dispatch point (its stepper
                    // was posted at the window floor); the event time
                    // never runs backwards even though the engine
                    // model catches up at its own pace.
                    sched.shard(d).schedule(
                        std::max(eng.clock(), sched.shard(d).now()),
                        [&steppers, d] { steppers[d](); });
                } else {
                    armed[d] = 0;
                }
            };
        }
        // Routing decisions reach a shard as a time-stamped message:
        // merged at the window barrier in (tick, shard, seq) order,
        // so the delivery-to-step handoff is deterministic by
        // construction rather than by thread timing.
        // Messages posted between windows must land at or past the
        // horizon of the last window run; a decode replica that takes
        // a finished migration can sit behind that floor, so its
        // stepper is posted at the floor (the engine still advances
        // from its own clock).
        Tick post_floor = 0;
        auto armStepper = [&](unsigned d) {
            if (armed[d] || !engines[d]->hasWork())
                return;
            armed[d] = 1;
            sched.post(sched.hostShard(), d,
                       std::max(engines[d]->clock(), post_floor),
                       [&steppers, d] { steppers[d](); });
        };
        while (true) {
            Tick arrival = next_arrival < pending.size()
                               ? pending[next_arrival].req.arrival
                               : maxTick;
            bool any_busy = false;
            for (unsigned d = 0; d < n; ++d)
                any_busy |= armed[d] != 0;
#if PIPELLM_AUDIT_ENABLED
            Tick frontier = arrival;
            for (unsigned d = 0; d < n; ++d) {
                if (armed[d])
                    frontier =
                        std::min(frontier, engines[d]->clock());
            }
            if (frontier != maxTick)
                audit::Auditor::instance().noteFrontier(run_id,
                                                        frontier);
#endif
            if (any_busy) {
                window_horizon = arrival;
                sched.runWindow(arrival);
                post_floor = arrival;
                for (unsigned d = 0; d < n; ++d)
                    load_[d] = engines[d]->outstandingCost();
            }
            if (next_arrival >= pending.size())
                break; // remaining handoffs settle in the drain sweep
            // Window barrier: settle prefill->decode handoffs (the
            // migrations may hand fresh work to idle replicas) before
            // the next delivery — the same point the sequential
            // regime uses. A no-op sweep outside disaggregated runs.
            processHandoffs();
            for (unsigned d = 0; d < n; ++d)
                armStepper(d);
            deliver(pending[next_arrival++]);
            for (unsigned d = 0; d < n; ++d)
                armStepper(d);
        }
        // Drain sweep: the final window left every replica idle and
        // closed the scheduler (nothing can be posted past a drained
        // horizon), so migrations finishing after the last arrival
        // hand their decode work over here and the engines run to
        // completion inline. The decoupled regime has no shared
        // resources, so a fixed per-replica sweep yields the same
        // result as any interleaving — the sequential regime settles
        // drain handoffs at the identical all-idle point.
        std::uint64_t inline_steps = 0;
        for (bool worked = true; worked;) {
            processHandoffs();
            worked = false;
            for (unsigned d = 0; d < n; ++d) {
                auto &eng = *engines[d];
                while (eng.hasWork()) {
                    eng.stepOnce();
                    ++inline_steps;
                    worked = true;
                }
                load_[d] = eng.outstandingCost();
            }
        }
        agg.engine_steps = sched.dispatched() + inline_steps;
    } else {
        // Coupled regime (shared bridge, shared lane pool, or armed
        // faults): replicas can bind at the same tick, which is a
        // zero-lookahead schedule — the sharded protocol degenerates
        // to exactly this sequential min-clock frontier, so it is
        // kept verbatim (and the thread knob is ignored).
        while (true) {
            // A busy replica whose clock passed its crash time dies
            // before it can step again; its orphans join the arrival
            // queue at the detect tick.
            for (unsigned d = 0; d < n; ++d) {
                if (alive_[d] && engines[d]->hasWork() &&
                    engines[d]->clock() >= crash_at[d])
                    crash(d, engines[d]->clock());
            }
            int busiest = -1;
            for (unsigned d = 0; d < n; ++d) {
                if (engines[d]->hasWork() &&
                    (busiest < 0 ||
                     engines[d]->clock() < engines[busiest]->clock()))
                    busiest = int(d);
            }
#if PIPELLM_AUDIT_ENABLED
            // The schedule frontier is the earlier of the min busy
            // clock and the next pending arrival; it gates which
            // replica may step. The noted (monotone) frontier also
            // folds in handoffs still waiting for their barrier:
            // busy replicas legitimately run past a finished prefill
            // before the barrier settles it, and the migration it
            // starts then submits decode work behind the busy-min —
            // so a pending handoff bounds the global frontier
            // without gating the stepper.
            Tick frontier = maxTick;
            if (busiest >= 0)
                frontier = engines[busiest]->clock();
            if (next_arrival < pending.size()) {
                frontier = std::min(
                    frontier, pending[next_arrival].req.arrival);
            }
            Tick noted = frontier;
            for (const auto &hs : handoffs) {
                for (const auto &h : hs)
                    noted = std::min(noted, h.finished);
            }
            if (noted != maxTick)
                audit::Auditor::instance().noteFrontier(run_id,
                                                        noted);
#endif
            if (busiest < 0) {
                // Every replica idle: settle handoffs first — a
                // migration can hand new decode work to an idle
                // replica, which must run before the trace can end.
                processHandoffs();
                bool woke = false;
                for (unsigned d = 0; d < n; ++d)
                    woke |= engines[d]->hasWork();
                if (woke)
                    continue;
                if (next_arrival >= pending.size())
                    break;
                deliver(pending[next_arrival++]);
                continue;
            }
            if (next_arrival < pending.size() &&
                pending[next_arrival].req.arrival <=
                    engines[busiest]->clock()) {
                // Delivery barrier: every busy replica has reached
                // the arrival — the point matching the sharded
                // regime's window barrier — so handoffs settle here.
                processHandoffs();
                deliver(pending[next_arrival++]);
                continue;
            }
            PIPELLM_AUDIT_HOOK(
                audit::Auditor::instance().noteReplicaStep(
                    run_id, engines[busiest]->clock(), frontier));
            engines[busiest]->stepOnce();
            load_[busiest] = engines[busiest]->outstandingCost();
            ++agg.engine_steps;
        }
    }

    if (disagg) {
        // The migrator's per-stream counters plus the router-side
        // recovery decisions join the cluster-wide fault ledger.
        agg.faults.merge(migrator.faultReport());
        agg.faults.migrations_rerouted += rerouted;
        agg.faults.migration_fallbacks += local_fallbacks;
    }

    double latency_weight = 0;
    std::uint64_t routed_tokens_total = 0;
    std::uint64_t completed_tokens_total = 0;
    sim::SampleSet merged_latency;
    for (unsigned d = 0; d < n; ++d) {
        auto &rep = agg.replicas[d];
        rep.result = engines[d]->finish();
        rep.runtime_stats = runtimes_[d]->stats();
        rep.faults = runtimes_[d]->faultReport();
        agg.faults.merge(rep.faults);

        agg.completed += rep.result.completed;
        agg.preemptions += rep.result.preemptions;
        agg.makespan = std::max(agg.makespan, rep.result.total_time);
        routed_tokens_total += rep.routed_tokens;
        completed_tokens_total += rep.result.completed_tokens;
        agg.dropped += rep.dropped;
        agg.slo_missed += rep.result.slo_missed;
        agg.slo_missed_tokens += rep.result.slo_missed_tokens;
        double w = double(rep.result.completed);
        agg.normalized_latency += w * rep.result.normalized_latency;
        // Legacy completed-weighted mean of per-replica p90s: not a
        // percentile, kept only so committed CSV columns built from
        // it stay byte-identical.
        agg.replica_weighted_p90 +=
            w * rep.result.p90_normalized_latency;
        latency_weight += w;
        for (double s : rep.result.latency_samples.samples())
            merged_latency.add(s);
        agg.completions.insert(agg.completions.end(),
                               rep.result.completions.begin(),
                               rep.result.completions.end());

        // Crash/restart accounting lives on the router, not the
        // runtimes.
        agg.faults.replica_crashes += rep.crash_count;
        agg.faults.replica_restarts += rep.restarts;
        agg.faults.restart_rejoin_ticks += rep.time_to_rejoin;
        agg.faults.requeued_requests += rep.requeued;
        agg.faults.lost_tokens += rep.lost_tokens;
    }
    agg.faults.dropped_requests = agg.dropped;
    if (latency_weight > 0) {
        agg.normalized_latency /= latency_weight;
        agg.replica_weighted_p90 /= latency_weight;
    }
    // The true cluster-wide p90 comes from the merged per-request
    // samples; with one replica it equals the legacy field exactly.
    if (merged_latency.count() > 0)
        agg.p90_normalized_latency = merged_latency.percentile(90);
    std::sort(agg.completions.begin(), agg.completions.end(),
              [](const CompletionEvent &a, const CompletionEvent &b) {
                  return a.at < b.at;
              });
    if (agg.makespan > 0) {
        agg.tokens_per_sec =
            double(routed_tokens_total) / toSeconds(agg.makespan);
        agg.goodput_tokens_per_sec =
            double(completed_tokens_total) / toSeconds(agg.makespan);
        agg.slo_goodput_tokens_per_sec =
            double(completed_tokens_total - agg.slo_missed_tokens) /
            toSeconds(agg.makespan);
    }
#if PIPELLM_AUDIT_ENABLED
    {
        std::uint64_t residual = 0;
        for (auto l : load_)
            residual += l;
        audit::Auditor::instance().noteRunEnd(run_id, residual);
        // Every byte the per-device links forwarded into the shared
        // host bridge must be accounted there, and vice versa.
        if (const auto *bridge = platform_.hostBridge()) {
            audit::Auditor::instance().checkConservation(
                bridge->auditId());
        }
    }
#endif
    return agg;
}

} // namespace serving
} // namespace pipellm
