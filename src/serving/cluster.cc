#include "serving/cluster.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace serving {

const char *
toString(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

ClusterRouter::ClusterRouter(runtime::Platform &platform,
                             const RuntimeFactory &factory,
                             ClusterConfig config)
    : platform_(platform), config_(std::move(config)),
      load_(platform.numDevices(), 0)
{
    PIPELLM_ASSERT(factory, "cluster router needs a runtime factory");
    runtimes_.reserve(platform.numDevices());
    for (unsigned d = 0; d < platform.numDevices(); ++d) {
        auto rt = factory(platform, runtime::DeviceId(d));
        PIPELLM_ASSERT(rt, "runtime factory returned null for device ",
                       d);
        PIPELLM_ASSERT(rt->deviceId() == d,
                       "factory bound device ", rt->deviceId(),
                       " where ", d, " was requested");
        runtimes_.push_back(std::move(rt));
    }
}

runtime::RuntimeApi &
ClusterRouter::runtime(runtime::DeviceId id)
{
    PIPELLM_ASSERT(id < runtimes_.size(), "replica ", id,
                   " out of range (", runtimes_.size(), " replicas)");
    return *runtimes_[id];
}

std::uint64_t
ClusterRouter::costOf(const trace::Request &req) const
{
    // KV footprint and compute both scale with prompt plus every
    // sampled output sequence, so that sum is the load unit.
    return std::uint64_t(req.prompt_len) +
           std::uint64_t(config_.engine.parallel_sampling) *
               req.output_len;
}

runtime::DeviceId
ClusterRouter::route(const trace::Request &req)
{
    unsigned n = numReplicas();
    if (config_.policy == RoutePolicy::RoundRobin) {
        unsigned d = next_;
        next_ = (next_ + 1) % n;
        load_[d] += costOf(req);
        return runtime::DeviceId(d);
    }
    unsigned best = 0;
    for (unsigned d = 1; d < n; ++d) {
        if (load_[d] < load_[best])
            best = d;
    }
    load_[best] += costOf(req);
    return runtime::DeviceId(best);
}

ClusterResult
ClusterRouter::run(const trace::Trace &requests)
{
    unsigned n = numReplicas();
    std::vector<trace::Trace> slices(n);
    for (const auto &req : requests)
        slices[route(req)].push_back(req);

    ClusterResult agg;
    agg.replicas.resize(n);
    double latency_weight = 0;
    std::uint64_t routed_tokens_total = 0;
    for (unsigned d = 0; d < n; ++d) {
        auto &rep = agg.replicas[d];
        rep.device = runtime::DeviceId(d);
        rep.requests = slices[d].size();
        rep.runtime_name = runtimes_[d]->name();
        for (const auto &req : slices[d])
            rep.routed_tokens +=
                std::uint64_t(req.output_len) *
                config_.engine.parallel_sampling;

        if (!slices[d].empty()) {
            // Replicas are timestamp-style engines over disjoint
            // per-device resources, so running them back to back
            // simulates them side by side.
            VllmEngine engine(*runtimes_[d], config_.engine);
            rep.result = engine.run(slices[d]);
        }
        rep.runtime_stats = runtimes_[d]->stats();

        agg.completed += rep.result.completed;
        agg.preemptions += rep.result.preemptions;
        agg.makespan = std::max(agg.makespan, rep.result.total_time);
        routed_tokens_total += rep.routed_tokens;
        double w = double(rep.result.completed);
        agg.normalized_latency += w * rep.result.normalized_latency;
        agg.p90_normalized_latency +=
            w * rep.result.p90_normalized_latency;
        latency_weight += w;
    }
    if (latency_weight > 0) {
        agg.normalized_latency /= latency_weight;
        agg.p90_normalized_latency /= latency_weight;
    }
    if (agg.makespan > 0)
        agg.tokens_per_sec =
            double(routed_tokens_total) / toSeconds(agg.makespan);
    return agg;
}

} // namespace serving
} // namespace pipellm
