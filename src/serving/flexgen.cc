#include "serving/flexgen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace serving {

FlexGenEngine::FlexGenEngine(runtime::RuntimeApi &rt,
                             const FlexGenConfig &config)
    : rt_(rt), config_(config), cost_(config.model),
      compute_stream_(rt.createStream("flexgen-compute"))
{
    auto &platform = rt_.platform();
    const auto &model = config_.model;

    // Carve the GPU: KV cache for the batch + embeddings + workspace,
    // remainder goes to resident layers. In KV-offload mode only two
    // per-layer KV slots live on the GPU.
    kv_block_bytes_ = std::uint64_t(config_.batch) *
                      (config_.input_len + config_.output_len) *
                      model.kvBytesPerTokenPerLayer();
    std::uint64_t kv_bytes =
        config_.kv_offload ? 2 * kv_block_bytes_
                           : kv_block_bytes_ * model.num_layers;
    std::uint64_t gpu_total = platform.spec().gpu_mem_bytes;
    // Workspace scales down with small (test) GPUs.
    std::uint64_t workspace =
        std::min<std::uint64_t>(2 * GiB, gpu_total / 8);
    std::uint64_t reserved = config_.gpu_reserved_bytes
                                 ? config_.gpu_reserved_bytes
                                 : kv_bytes + model.embeddingBytes() +
                                       workspace;
    // Two streaming slots are carved out by the LayerStore itself.
    std::uint64_t slots = 2 * model.layerParamBytes();
    if (reserved + slots >= gpu_total) {
        FATAL("FlexGen config does not fit: batch ", config_.batch,
              " needs ", reserved, " reserved bytes of ", gpu_total);
    }
    std::uint64_t weight_budget = gpu_total - reserved - slots;

    layers_ = std::make_unique<LayerStore>(rt_, model, weight_budget);

    if (config_.kv_offload) {
        kv_slots_ = rt_.gpu().alloc(2 * kv_block_bytes_,
                                            "flexgen-kv-slots");
        for (unsigned l = 0; l < model.num_layers; ++l) {
            kv_host_.push_back(platform.allocHost(
                kv_block_bytes_, "flexgen-kv-host" +
                                     std::to_string(l)));
        }
        kv_stream_ = &rt_.createStream("flexgen-kv");
    } else {
        kv_region_ = rt_.gpu().alloc(
            std::max(kv_bytes, pipellm::KiB), "flexgen-kv");
    }
    token_buf_host_ = platform.allocHost(4 * KiB, "flexgen-tokens-host");
    token_buf_dev_ = rt_.gpu().alloc(4 * KiB,
                                             "flexgen-tokens-dev");
}

FlexGenEngine::~FlexGenEngine() = default;

Tick
FlexGenEngine::layerPass(Tick now, bool prefill, std::uint64_t context)
{
    const unsigned L = layers_->layers();

    // Kick off the first offloaded layer's copy before computing.
    for (unsigned l = 0; l < std::min(1u, L); ++l)
        now = layers_->prefetch(l, now);

    for (unsigned l = 0; l < L; ++l) {
        // Prefetch the next layer while this one computes.
        if (l + 1 < L)
            now = layers_->prefetch(l + 1, now);

        // KV-offload: this layer's cache block streams in ahead of
        // the compute and back out after it.
        Addr kv_slot = 0;
        if (config_.kv_offload) {
            kv_slot = kv_slots_.base + (l % 2) * kv_block_bytes_;
            auto kv_in = rt_.memcpyAsync(
                runtime::CopyKind::HostToDevice, kv_slot,
                kv_host_[l].base, kv_block_bytes_, *kv_stream_, now);
            now = kv_in.api_return;
            compute_stream_.waitEvent(kv_in.complete);
        }

        compute_stream_.waitEvent(layers_->readyAt(l));
        auto kernel = prefill
                          ? cost_.prefillLayerKernel(config_.batch,
                                                     context)
                          : cost_.decodeLayerKernel(config_.batch,
                                                    context);
        auto r = rt_.launchKernel(kernel, compute_stream_, now);
        now = r.api_return;
        layers_->computeDone(l, r.complete);

        if (config_.kv_offload) {
            kv_stream_->waitEvent(r.complete);
            now = rt_.memcpyAsync(runtime::CopyKind::DeviceToHost,
                                  kv_host_[l].base, kv_slot,
                                  kv_block_bytes_, *kv_stream_, now)
                      .api_return;
        }
    }

    // Output embedding / sampling for the step.
    auto r = rt_.launchKernel(cost_.embeddingKernel(config_.batch),
                              compute_stream_, now);
    now = r.api_return;

    // Token traffic: sampled ids out, next ids in (small transfers).
    now = rt_.memcpyAsync(runtime::CopyKind::DeviceToHost,
                          token_buf_host_.base, token_buf_dev_.base,
                          4 * config_.batch, compute_stream_, now)
              .api_return;
    now = rt_.memcpyAsync(runtime::CopyKind::HostToDevice,
                          token_buf_dev_.base, token_buf_host_.base,
                          4 * config_.batch, compute_stream_, now)
              .api_return;

    return rt_.synchronize(now);
}

FlexGenResult
FlexGenEngine::run()
{
    const unsigned batches =
        (config_.num_requests + config_.batch - 1) / config_.batch;

    Tick now = 0;
    for (unsigned b = 0; b < batches; ++b) {
        // Prefill over the prompt, then autoregressive decode.
        now = layerPass(now, /*prefill=*/true, config_.input_len);
        for (std::uint32_t t = 1; t < config_.output_len; ++t) {
            std::uint64_t ctx = config_.input_len + t;
            now = layerPass(now, /*prefill=*/false, ctx);
        }
    }

    FlexGenResult result;
    result.total_time = now;
    result.generated_tokens =
        std::uint64_t(batches) * config_.batch * config_.output_len;
    result.tokens_per_sec =
        double(result.generated_tokens) / toSeconds(now);
    result.resident_layers = layers_->residentLayers();
    result.offloaded_layers = layers_->offloadedLayers();
    return result;
}

} // namespace serving
} // namespace pipellm
