#include "serving/layer_store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace serving {

LayerStore::LayerStore(runtime::RuntimeApi &rt,
                       const llm::ModelConfig &model,
                       std::uint64_t gpu_weight_budget)
    : rt_(rt), model_(model), layer_bytes_(model.layerParamBytes())
{
    model_.validate();
    auto &platform = rt_.platform();

    unsigned fit = unsigned(gpu_weight_budget / layer_bytes_);
    resident_layers_ = std::min(fit, model_.num_layers);
    unsigned offloaded = model_.num_layers - resident_layers_;

    for (unsigned l = 0; l < resident_layers_; ++l) {
        resident_regions_.push_back(rt_.gpu().alloc(
            layer_bytes_, model_.name + "/gpu-layer" +
                              std::to_string(l)));
    }
    for (unsigned l = 0; l < offloaded; ++l) {
        host_regions_.push_back(platform.allocHost(
            layer_bytes_, model_.name + "/host-layer" +
                              std::to_string(resident_layers_ + l)));
    }
    if (offloaded > 0) {
        // Double-buffered streaming slots.
        unsigned n_slots = std::min(2u, offloaded);
        for (unsigned s = 0; s < n_slots; ++s) {
            slot_regions_.push_back(rt_.gpu().alloc(
                layer_bytes_, model_.name + "/slot" +
                                  std::to_string(s)));
        }
        slot_free_at_.assign(slot_regions_.size(), 0);
        for (unsigned s = 0; s < slot_regions_.size(); ++s) {
            copy_streams_.push_back(
                &rt_.createStream("layer-copy" + std::to_string(s)));
        }
    }
    layer_ready_.assign(model_.num_layers, 0);
    layer_slot_.assign(model_.num_layers, 0);
}

LayerStore::~LayerStore() = default;

double
LayerStore::offloadedFraction() const
{
    return double(offloadedLayers()) / double(model_.num_layers);
}

Addr
LayerStore::hostAddr(unsigned layer) const
{
    PIPELLM_ASSERT(!resident(layer), "layer ", layer, " is resident");
    return host_regions_[layer - resident_layers_].base;
}

Addr
LayerStore::slotAddr(unsigned layer) const
{
    PIPELLM_ASSERT(!resident(layer), "layer ", layer, " is resident");
    return slot_regions_[layer_slot_[layer]].base;
}

Tick
LayerStore::prefetch(unsigned layer, Tick now)
{
    if (resident(layer)) {
        layer_ready_[layer] = 0;
        return now;
    }
    unsigned slot = (layer - resident_layers_) %
                    unsigned(slot_regions_.size());
    layer_slot_[layer] = slot;

    // Double-buffer hazard: the slot must not be overwritten while a
    // previous layer's compute is still reading it.
    runtime::Stream &cs = *copy_streams_[slot];
    cs.waitEvent(slot_free_at_[slot]);

    auto r = rt_.memcpyAsync(runtime::CopyKind::HostToDevice,
                             slot_regions_[slot].base, hostAddr(layer),
                             layer_bytes_, cs, now);
    // Deferred sends (PipeLLM re-ordering) report complete=0; the
    // consumer must then wait on the copy-stream sync instead.
    layer_ready_[layer] = r.complete;
    return r.api_return;
}

Tick
LayerStore::readyAt(unsigned layer) const
{
    return resident(layer) ? 0 : layer_ready_[layer];
}

void
LayerStore::computeDone(unsigned layer, Tick t)
{
    if (!resident(layer))
        slot_free_at_[layer_slot_[layer]] = t;
}

Tick
LayerStore::sync(Tick now)
{
    return rt_.synchronize(now);
}

} // namespace serving
} // namespace pipellm
