/**
 * @file
 * FlexGen-style throughput-oriented inference with weight offloading
 * (paper §3 case study 1, §7.2 "model offloading").
 *
 * The engine executes layer-by-layer over a large batch, streaming
 * offloaded layer weights from CVM DRAM through double-buffered GPU
 * slots, with the next layer's copy issued ahead of the current
 * layer's compute. KV cache and temporaries stay on the GPU (the
 * paper's configuration isolating model offloading).
 */

#ifndef PIPELLM_SERVING_FLEXGEN_HH
#define PIPELLM_SERVING_FLEXGEN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "llm/cost_model.hh"
#include "runtime/api.hh"
#include "serving/layer_store.hh"
#include "trace/request.hh"

namespace pipellm {
namespace serving {

/** FlexGen run configuration. */
struct FlexGenConfig
{
    llm::ModelConfig model;
    /** Sequences processed together (FlexGen favors huge batches). */
    unsigned batch = 64;
    std::uint32_t input_len = 32;
    std::uint32_t output_len = 128;
    /** Total sequences to serve (the paper uses 1000 per test). */
    unsigned num_requests = 1000;
    /** GPU memory reserved for KV cache + temporaries + embeddings. */
    std::uint64_t gpu_reserved_bytes = 0; ///< 0 = derive from batch
    /**
     * Stream the KV cache through CPU memory as well (FlexGen's full
     * offloading mode). The paper's evaluation pins KV on the GPU to
     * isolate weight offloading (§7.2); this flag enables the rest of
     * FlexGen's design: per layer, the batch's KV block is loaded
     * before compute and written back after — roughly 40% more swap
     * traffic, in both directions, with a write-hot host side.
     */
    bool kv_offload = false;
};

/** Result of a FlexGen run. */
struct FlexGenResult
{
    /** Generated tokens per second — the paper's metric. */
    double tokens_per_sec = 0;
    Tick total_time = 0;
    std::uint64_t generated_tokens = 0;
    unsigned resident_layers = 0;
    unsigned offloaded_layers = 0;
};

/** The engine. */
class FlexGenEngine
{
  public:
    FlexGenEngine(runtime::RuntimeApi &rt, const FlexGenConfig &config);
    ~FlexGenEngine();

    /** Serve config.num_requests sequences; returns the metrics. */
    FlexGenResult run();

    const LayerStore &layerStore() const { return *layers_; }

  private:
    /** One full pass over the layers (prefill or decode step). */
    Tick layerPass(Tick now, bool prefill, std::uint64_t context);

    runtime::RuntimeApi &rt_;
    FlexGenConfig config_;
    llm::CostModel cost_;
    std::unique_ptr<LayerStore> layers_;
    runtime::Stream &compute_stream_;
    runtime::Stream *kv_stream_ = nullptr;
    mem::Region token_buf_host_{};
    mem::Region token_buf_dev_{};
    mem::Region kv_region_{};
    /** KV-offload mode state: per-layer host KV + two GPU slots. */
    std::vector<mem::Region> kv_host_;
    mem::Region kv_slots_{};
    std::uint64_t kv_block_bytes_ = 0;
};

} // namespace serving
} // namespace pipellm

#endif // PIPELLM_SERVING_FLEXGEN_HH
