#include "serving/vllm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace serving {

using runtime::CopyKind;

VllmEngine::VllmEngine(runtime::RuntimeApi &rt, const VllmConfig &config)
    : rt_(rt), config_(config), cost_(config.model),
      compute_stream_(rt.createStream("vllm-compute")),
      swap_stream_(rt.createStream("vllm-swap"))
{
    auto &platform = rt_.platform();
    const auto &model = config_.model;

    std::uint64_t weight_bytes = model.totalParamBytes();
    std::uint64_t gpu_total = platform.spec().gpu_mem_bytes;
    if (weight_bytes + config_.gpu_reserved_bytes >= gpu_total) {
        FATAL("vLLM requires resident weights: ", model.name,
              " needs ", weight_bytes, " of ", gpu_total, " bytes");
    }

    weights_ = rt_.gpu().alloc(weight_bytes,
                                       model.name + "/weights");
    std::uint64_t kv_budget =
        gpu_total - weight_bytes - config_.gpu_reserved_bytes;

    block_bytes_ = std::uint64_t(config_.block_tokens) *
                   model.kvBytesPerToken();
    total_blocks_ = kv_budget / block_bytes_;
    PIPELLM_ASSERT(total_blocks_ > 8,
                   "KV pool too small: ", total_blocks_, " blocks");
    kv_pool_ = rt_.gpu().alloc(total_blocks_ * block_bytes_,
                                       "vllm-kv-pool");
    for (std::uint32_t b = 0; b < total_blocks_; ++b)
        free_block_ids_.push_back(std::uint32_t(total_blocks_) - 1 - b);

    token_host_ = platform.allocHost(16 * KiB, "vllm-tokens-host");
    token_dev_ = rt_.gpu().alloc(16 * KiB, "vllm-tokens-dev");
}

VllmEngine::~VllmEngine()
{
    // Return the pools so a later engine can serve the same device
    // (repeated cluster runs construct a fresh engine per run).
    auto &platform = rt_.platform();
    for (auto &g : groups_) {
        if (g.host_swap.len > 0)
            platform.freeHost(g.host_swap);
    }
    rt_.gpu().free(token_dev_);
    platform.freeHost(token_host_);
    rt_.gpu().free(kv_pool_);
    rt_.gpu().free(weights_);
}

std::uint64_t
VllmEngine::blocksFor(const Group &g, std::uint32_t generated) const
{
    std::uint64_t bt = config_.block_tokens;
    std::uint64_t prompt_blocks = (g.prompt_len + bt - 1) / bt;
    std::uint64_t gen = std::max<std::uint32_t>(generated, 1);
    std::uint64_t per_seq = (gen + bt - 1) / bt;
    return prompt_blocks + config_.parallel_sampling * per_seq;
}

std::uint64_t
VllmEngine::contextOf(const Group &g) const
{
    return g.prompt_len + g.generated;
}

bool
VllmEngine::admit(Group &g, Tick &now)
{
    std::uint64_t need = blocksFor(g, 1);
    if (free_block_ids_.size() < need)
        return false;
    for (std::uint64_t i = 0; i < need; ++i) {
        g.block_ids.push_back(free_block_ids_.back());
        free_block_ids_.pop_back();
    }
    (void)now;
    return true;
}

void
VllmEngine::freeBlocks(Group &g)
{
    for (auto b : g.block_ids)
        free_block_ids_.push_back(b);
    g.block_ids.clear();
}

void
VllmEngine::swapOut(Group &g, Tick &now)
{
    if (config_.preempt_mode == PreemptMode::Recompute) {
        // Drop the KV entirely; the group will re-prefill on resume.
        ++result_.preemptions;
        freeBlocks(g);
        g.swapped = true;
        return;
    }
    auto &platform = rt_.platform();
    std::uint64_t nblocks = g.block_ids.size();
    g.host_swap = platform.allocHost(nblocks * block_bytes_,
                                     "vllm-swap-" + std::to_string(g.id));
    for (std::uint64_t i = 0; i < nblocks; ++i) {
        now = rt_.memcpyAsync(CopyKind::DeviceToHost,
                              g.host_swap.base + i * block_bytes_,
                              kv_pool_.base +
                                  std::uint64_t(g.block_ids[i]) *
                                      block_bytes_,
                              block_bytes_, swap_stream_, now)
                  .api_return;
    }
    now = rt_.synchronize(now);
    result_.swap_out_bytes += nblocks * block_bytes_;
    ++result_.preemptions;
    freeBlocks(g);
    g.swapped = true;
}

bool
VllmEngine::swapIn(Group &g, Tick &now)
{
    auto &platform = rt_.platform();
    // Watermark hysteresis: resuming a group the moment it barely
    // fits gets it preempted right back (thrash); require headroom
    // for near-term growth too.
    std::uint64_t watermark = total_blocks_ / 10;
    if (free_block_ids_.size() <
        blocksFor(g, g.generated + 1) + watermark)
        return false;

    if (config_.preempt_mode == PreemptMode::Recompute) {
        // Reclaim blocks and re-prefill the full context
        // (prompt + tokens generated so far) on the GPU.
        std::uint64_t want = blocksFor(g, std::max(g.generated, 1u));
        for (std::uint64_t i = 0; i < want; ++i) {
            g.block_ids.push_back(free_block_ids_.back());
            free_block_ids_.pop_back();
        }
        std::uint64_t ctx = contextOf(g);
        result_.recomputed_tokens += ctx;
        for (unsigned l = 0; l < config_.model.num_layers; ++l) {
            now = rt_.launchKernel(
                         cost_.prefillLayerKernel(1, ctx),
                         compute_stream_, now)
                      .api_return;
        }
        now = rt_.synchronize(now);
        g.swapped = false;
        return true;
    }

    std::uint64_t nblocks =
        g.host_swap.len / block_bytes_;
    for (std::uint64_t i = 0; i < nblocks; ++i) {
        g.block_ids.push_back(free_block_ids_.back());
        free_block_ids_.pop_back();
    }
    for (std::uint64_t i = 0; i < nblocks; ++i) {
        now = rt_.memcpyAsync(CopyKind::HostToDevice,
                              kv_pool_.base +
                                  std::uint64_t(g.block_ids[i]) *
                                      block_bytes_,
                              g.host_swap.base + i * block_bytes_,
                              block_bytes_, swap_stream_, now)
                  .api_return;
    }
    now = rt_.synchronize(now);
    result_.swap_in_bytes += nblocks * block_bytes_;
    platform.freeHost(g.host_swap);
    g.host_swap = mem::Region{};
    g.swapped = false;
    return true;
}

Tick
VllmEngine::computeStep(Tick now, const std::vector<std::size_t> &prefill,
                        std::uint64_t decode_seqs,
                        std::uint64_t decode_ctx_sum)
{
    // Prefill kernels for newly admitted groups (per layer, batched).
    if (!prefill.empty()) {
        std::uint64_t prompt_sum = 0;
        for (auto gi : prefill)
            prompt_sum += groups_[gi].prompt_len;
        std::uint64_t avg_prompt =
            std::max<std::uint64_t>(1, prompt_sum / prefill.size());
        for (unsigned l = 0; l < config_.model.num_layers; ++l) {
            now = rt_.launchKernel(
                         cost_.prefillLayerKernel(prefill.size(),
                                                  avg_prompt),
                         compute_stream_, now)
                      .api_return;
        }
    }

    // Decode kernels for the running batch.
    if (decode_seqs > 0) {
        std::uint64_t avg_ctx =
            std::max<std::uint64_t>(1, decode_ctx_sum / decode_seqs);
        for (unsigned l = 0; l < config_.model.num_layers; ++l) {
            now = rt_.launchKernel(
                         cost_.decodeLayerKernel(decode_seqs, avg_ctx),
                         compute_stream_, now)
                      .api_return;
        }
        now = rt_.launchKernel(cost_.embeddingKernel(decode_seqs),
                               compute_stream_, now)
                  .api_return;
        // Token traffic (small transfers).
        now = rt_.memcpyAsync(CopyKind::DeviceToHost, token_host_.base,
                              token_dev_.base, 4 * decode_seqs,
                              compute_stream_, now)
                  .api_return;
        now = rt_.memcpyAsync(CopyKind::HostToDevice, token_dev_.base,
                              token_host_.base, 4 * decode_seqs,
                              compute_stream_, now)
                  .api_return;
    }
    return rt_.synchronize(now);
}

void
VllmEngine::beginRun()
{
    groups_.clear();
    waiting_.clear();
    running_.clear();
    swapped_.clear();
    completed_ = 0;
    now_ = 0;
    result_ = VllmResult{};
    norm_latency_.reset();
}

void
VllmEngine::submit(const trace::Request &req)
{
    Group g;
    g.id = req.id;
    g.arrival = req.arrival;
    g.deadline = req.deadline;
    g.prompt_len = req.prompt_len;
    g.output_len = std::max<std::uint32_t>(req.output_len, 1);
    groups_.push_back(g);
    waiting_.push_back(groups_.size() - 1);
}

void
VllmEngine::submitPrefill(const trace::Request &req)
{
    Group g;
    g.id = req.id;
    g.arrival = req.arrival;
    g.deadline = req.deadline;
    g.prompt_len = req.prompt_len;
    // The prefill stage retires with the bootstrap token; the real
    // output budget rides along for crash-drain requeues.
    g.output_len = 1;
    g.full_output_len = std::max<std::uint32_t>(req.output_len, 1);
    g.handoff = true;
    groups_.push_back(g);
    waiting_.push_back(groups_.size() - 1);
}

void
VllmEngine::submitMigrated(const trace::Request &req)
{
    Group g;
    g.id = req.id;
    g.arrival = req.arrival;
    g.deadline = req.deadline;
    g.prompt_len = req.prompt_len;
    g.output_len = std::max<std::uint32_t>(req.output_len, 1);
    g.prefilled = true;
    groups_.push_back(g);
    waiting_.push_back(groups_.size() - 1);
}

std::uint64_t
VllmEngine::outstandingCost() const
{
    // Only groups still on a scheduler queue owe work: a finished
    // group is off the lists, and a drained orphan's remaining cost
    // belongs to whichever replica absorbs it, not to this one.
    std::uint64_t sum = 0;
    auto add = [&](const std::vector<std::size_t> &ids) {
        for (std::size_t i : ids) {
            const Group &g = groups_[i];
            sum += g.prompt_len +
                   std::uint64_t(config_.parallel_sampling) *
                       (g.output_len - g.generated);
        }
    };
    add(waiting_);
    add(running_);
    add(swapped_);
    return sum;
}

void
VllmEngine::stepOnce()
{
    PIPELLM_ASSERT(hasWork(), "stepOnce on an idle engine");
    Tick now = now_;

    // Resume preempted groups first, most recent first (LIFO).
    while (!swapped_.empty()) {
        Group &g = groups_[swapped_.back()];
        if (!swapIn(g, now))
            break;
        running_.push_back(swapped_.back());
        swapped_.pop_back();
    }

    // Admit new requests while memory allows.
    std::vector<std::size_t> prefill;
    while (!waiting_.empty() &&
           running_.size() < config_.max_running_groups &&
           swapped_.empty()) {
        Group &g = groups_[waiting_.front()];
        if (!admit(g, now))
            break;
        // Migrated groups landed with their prompt KV already
        // computed elsewhere: allocate the blocks, skip the kernels.
        if (!g.prefilled)
            prefill.push_back(waiting_.front());
        running_.push_back(waiting_.front());
        waiting_.erase(waiting_.begin());
    }

    if (running_.empty()) {
        // Neither a resume nor an admission fit: some group alone
        // exceeds the pool, which even real vLLM cannot serve.
        FATAL("vLLM cannot make progress: a single group needs "
              "more KV blocks than the pool holds (",
              total_blocks_, " blocks); shorten the trace or use "
              "a smaller parallel_sampling");
    }

    // Ensure every running group can append one token; preempt
    // the lowest-priority (latest arrival) groups until it fits.
    auto growth = [&]() {
        std::uint64_t need = 0;
        for (auto gi : running_) {
            Group &g = groups_[gi];
            need += blocksFor(g, g.generated + 1) - g.block_ids.size();
        }
        return need;
    };
    while (growth() > free_block_ids_.size()) {
        PIPELLM_ASSERT(running_.size() > 1,
                       "KV pool cannot hold a single group; "
                       "shorten the trace or grow the pool");
        // Latest arrival = lowest priority.
        auto victim = std::max_element(
            running_.begin(), running_.end(),
            [&](std::size_t a, std::size_t b) {
                return groups_[a].arrival < groups_[b].arrival;
            });
        std::size_t gi = *victim;
        running_.erase(victim);
        swapOut(groups_[gi], now);
        swapped_.push_back(gi);
    }

    // Allocate the growth blocks.
    std::uint64_t decode_seqs = 0;
    std::uint64_t ctx_sum = 0;
    for (auto gi : running_) {
        Group &g = groups_[gi];
        std::uint64_t want = blocksFor(g, g.generated + 1);
        while (g.block_ids.size() < want) {
            g.block_ids.push_back(free_block_ids_.back());
            free_block_ids_.pop_back();
        }
        decode_seqs += config_.parallel_sampling;
        ctx_sum += contextOf(g) * config_.parallel_sampling;
    }

    now = computeStep(now, prefill, decode_seqs, ctx_sum);

    // One token generated per sequence; retire finished groups.
    for (auto it = running_.begin(); it != running_.end();) {
        Group &g = groups_[*it];
        ++g.generated;
        if (g.generated >= g.output_len) {
            freeBlocks(g);
            if (g.handoff) {
                // Prefill stage of a disaggregated request: every
                // end-to-end metric belongs to the decode stage, so
                // this retirement only hands the request (with its
                // real output length restored) to the router's sink.
                if (sink_) {
                    sink_(trace::Request{g.id, g.arrival,
                                         g.prompt_len,
                                         g.full_output_len,
                                         g.deadline},
                          now);
                }
                it = running_.erase(it);
                continue;
            }
            norm_latency_.add(toSeconds(now - g.arrival) /
                              double(g.generated));
            std::uint64_t tokens =
                std::uint64_t(g.generated) * config_.parallel_sampling;
            result_.completed_tokens += tokens;
            result_.completions.push_back(CompletionEvent{now, tokens});
            if (g.deadline != 0 && now > g.deadline) {
                ++result_.slo_missed;
                result_.slo_missed_tokens += tokens;
            }
            ++completed_;
            it = running_.erase(it);
        } else {
            ++it;
        }
    }
    now_ = now;
}

std::vector<trace::Request>
VllmEngine::drainUnfinished(std::uint64_t &lost_tokens)
{
    auto &platform = rt_.platform();
    std::vector<trace::Request> orphans;
    auto drainList = [&](std::vector<std::size_t> &list) {
        for (auto gi : list) {
            Group &g = groups_[gi];
            lost_tokens +=
                std::uint64_t(g.generated) * config_.parallel_sampling;
            freeBlocks(g);
            if (g.host_swap.len > 0) {
                platform.freeHost(g.host_swap);
                g.host_swap = mem::Region{};
            }
            // The requeued request restarts from the prompt; partial
            // generation died with the replica. Its deadline rides
            // along — failover does not buy a request more SLO. A
            // handoff group requeues the full request, not its
            // bootstrap-token prefill stub.
            orphans.push_back(trace::Request{
                g.id, g.arrival, g.prompt_len,
                g.handoff ? g.full_output_len : g.output_len,
                g.deadline});
        }
        list.clear();
    };
    drainList(running_);
    drainList(swapped_);
    drainList(waiting_);
    return orphans;
}

Tick
VllmEngine::reloadWeights(Tick now)
{
    auto &platform = rt_.platform();
    // 256 MiB staging chunks: big enough that per-call overhead
    // vanishes against the transfer itself, small enough to bound
    // host staging footprint.
    std::uint64_t chunk =
        std::min<std::uint64_t>(weights_.len, 256 * MiB);
    mem::Region staging =
        platform.allocHost(chunk, "vllm-weight-reload");
    Tick t = now;
    for (std::uint64_t off = 0; off < weights_.len; off += chunk) {
        std::uint64_t n = std::min(chunk, weights_.len - off);
        t = rt_.memcpyAsync(CopyKind::HostToDevice,
                            weights_.base + off, staging.base, n,
                            swap_stream_, t)
                .api_return;
    }
    t = rt_.synchronize(t);
    platform.freeHost(staging);
    return t;
}

VllmResult
VllmEngine::finish()
{
    result_.completed = completed_;
    result_.total_time = now_;
    result_.normalized_latency = norm_latency_.mean();
    result_.p90_normalized_latency = norm_latency_.percentile(90);
    result_.latency_samples = norm_latency_;
    return result_;
}

VllmResult
VllmEngine::run(const trace::Trace &requests)
{
    beginRun();
    std::size_t next_arrival = 0;
    while (completed_ < requests.size()) {
        // Pull in arrivals.
        while (next_arrival < requests.size() &&
               requests[next_arrival].arrival <= now_) {
            submit(requests[next_arrival]);
            ++next_arrival;
        }
        if (!hasWork()) {
            PIPELLM_ASSERT(next_arrival < requests.size(),
                           "scheduler idle with work remaining");
            now_ = requests[next_arrival].arrival;
            continue;
        }
        stepOnce();
    }
    return finish();
}

} // namespace serving
} // namespace pipellm
