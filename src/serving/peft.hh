/**
 * @file
 * PEFT/DeepSpeed-style LoRA fine-tuning with weight offloading
 * (paper §3 case study 3, §7.2 "model offloading" fine-tuning half).
 *
 * The base model is frozen; only LoRA adapters train. Each step runs
 * a forward sweep over the layers and a backward sweep in reverse,
 * streaming offloaded base weights through the LayerStore both ways
 * (the swap-in sequence is the repeating palindrome
 * 0,1,...,L-1,L-1,...,1,0 — a repetitive pattern for the predictor).
 * Adapter gradients leave the GPU as small transfers; the optimizer
 * step runs on the CPU.
 */

#ifndef PIPELLM_SERVING_PEFT_HH
#define PIPELLM_SERVING_PEFT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "llm/cost_model.hh"
#include "runtime/api.hh"
#include "serving/layer_store.hh"
#include "trace/request.hh"

namespace pipellm {
namespace serving {

/** Fine-tuning run configuration. */
struct PeftConfig
{
    llm::ModelConfig model;
    /** Sequences per step (the paper maximizes this). */
    unsigned batch = 8;
    /** LoRA rank (adapter size). */
    unsigned lora_rank = 16;
    /** GPU bytes reserved beyond activations (workspace, optimizer). */
    std::uint64_t gpu_reserved_bytes = 2 * GiB;
    /** Sequences to train on (the paper's epoch is ~6k). */
    unsigned num_sequences = 6000;
};

/** Result of a fine-tuning run. */
struct PeftResult
{
    /** Training throughput in sequences per second. */
    double sequences_per_sec = 0;
    /** Training throughput in tokens per second. */
    double tokens_per_sec = 0;
    Tick total_time = 0;
    std::uint64_t trained_tokens = 0;
    unsigned resident_layers = 0;
    unsigned offloaded_layers = 0;
};

/** The engine. */
class PeftEngine
{
  public:
    PeftEngine(runtime::RuntimeApi &rt, const PeftConfig &config);
    ~PeftEngine();

    /** Train over @p data for one epoch; returns the metrics. */
    PeftResult run(const trace::Trace &data);

    const LayerStore &layerStore() const { return *layers_; }

    /** Bytes of one layer's LoRA adapter gradients. */
    std::uint64_t adapterBytes() const;

  private:
    Tick step(Tick now, std::uint64_t tokens);

    runtime::RuntimeApi &rt_;
    PeftConfig config_;
    llm::CostModel cost_;
    std::unique_ptr<LayerStore> layers_;
    runtime::Stream &compute_stream_;
    /** Per-layer adapter gradient/weight staging on the host. */
    std::vector<mem::Region> grad_host_;
    mem::Region grad_dev_{};
};

} // namespace serving
} // namespace pipellm

#endif // PIPELLM_SERVING_PEFT_HH
