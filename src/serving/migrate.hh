/**
 * @file
 * Replica-to-replica encrypted KV migration (disaggregated serving).
 *
 * When prefill and decode run on separate replicas, a finished
 * prefill's KV blocks must cross from the prefill GPU to a decode GPU.
 * That stream is exactly the traffic PipeLLM's speculative pipelined
 * encryption was built for: the chunk sequence of a migration is fully
 * predictable the moment the migration starts, so the sender
 * pre-generates the whole stream's IVs (IvCounter::peek) and seals
 * chunks ahead of verification instead of waiting for each chunk's
 * round trip.
 *
 * Each ordered (source, destination) device pair negotiates its own
 * inter-device SecureChannel session — its own key, IV namespace and
 * audit identity, separate from either device's CPU<->GPU session —
 * mirroring how real multi-GPU CC fabrics establish per-link SPDM
 * sessions. Chunks cross the source's D2H staged path and the
 * destination's H2D staged path, so migrations contend with the
 * replicas' own swap traffic on the same PCIe links.
 *
 * Robustness is the point. Every chunk carries a per-chunk ledger
 * entry (Pending -> Sealed -> Verified | Discarded), and the stream
 * survives:
 *  - tag failure: the failed chunk and every speculatively pre-sealed
 *    chunk behind it are discarded (never verified) and the stream
 *    resumes from the last verified chunk at fresh IVs;
 *  - stalls: a watchdog charges a timeout plus capped exponential
 *    backoff per attempt; a chunk that exhausts its attempts aborts
 *    the stream with Stalled so the caller can degrade gracefully
 *    (decode locally on the prefill replica);
 *  - destination crash: the stream aborts with DestCrashed, every
 *    sealed-but-unverified chunk is discarded in the audit ledger,
 *    and the caller re-routes the migration to another live decode
 *    replica from chunk zero.
 */

#ifndef PIPELLM_SERVING_MIGRATE_HH
#define PIPELLM_SERVING_MIGRATE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "crypto/channel.hh"
#include "crypto/iv.hh"
#include "fault/fault.hh"
#include "runtime/platform.hh"

namespace pipellm {
namespace serving {

/** Tuning knobs for the migration stream. */
struct MigrationConfig
{
    /** Bytes per migration chunk (one seal + one crossing each). */
    std::uint64_t chunk_bytes = 256 * KiB;

    /**
     * Chunks sealed ahead of the verification frontier (speculative
     * pipelined encryption of the predictable stream). Depth 1 is
     * lockstep; deeper windows hide seal latency but widen the blast
     * radius a destination crash discards.
     */
    unsigned pipeline_depth = 4;
};

/** Why a migration attempt ended. */
enum class MigrationStatus : std::uint8_t
{
    Completed,   ///< every chunk verified at the destination
    Stalled,     ///< watchdog gave up; decode locally instead
    DestCrashed, ///< destination died mid-stream; re-route
};

const char *toString(MigrationStatus status);

/** One migration attempt's outcome and per-chunk accounting. */
struct MigrationResult
{
    MigrationStatus status = MigrationStatus::Completed;
    /** Tick the stream completed or aborted. */
    Tick done = 0;
    std::uint64_t chunks_total = 0;
    std::uint64_t chunks_verified = 0;
    /** Chunks whose ledger entry ended Discarded (never verified). */
    std::uint64_t chunks_discarded = 0;
    /** Stream IVs pre-generated ahead of the verification frontier. */
    std::uint64_t speculated_ivs = 0;
};

/**
 * Streams KV bytes between replicas over per-pair SecureChannels.
 * One instance serves a whole cluster run; links are created lazily
 * per ordered device pair and persist across migrations so IV
 * counters keep advancing (never reused) within a session epoch.
 */
class KvMigrator
{
  public:
    explicit KvMigrator(runtime::Platform &platform,
                        const MigrationConfig &config = MigrationConfig{});

    const MigrationConfig &config() const { return config_; }

    /**
     * Stream @p kv_bytes from @p src to @p dst starting no earlier
     * than @p start. Deterministic: all randomness comes from the
     * platform's seeded FaultInjector; disarmed runs never fail.
     */
    MigrationResult migrate(runtime::DeviceId src, runtime::DeviceId dst,
                            std::uint64_t kv_bytes, Tick start);

    /**
     * Re-key every migration session touching @p device (called when
     * a replica crashes: its endpoints' keys die with it, and a
     * restarted replica must never accept pre-crash ciphertexts).
     * Both endpoints reset their stream counters to the new epoch.
     */
    void rekeyLinksOf(runtime::DeviceId device);

    /** Migration fault/recovery counters across every stream so far. */
    const fault::FaultReport &faultReport() const { return report_; }

    /** The pair session for (src, dst); creates it on first use. */
    crypto::SecureChannel &link(runtime::DeviceId src,
                                runtime::DeviceId dst);

  private:
    /** One ordered pair's session: shared key material + stream IVs. */
    struct Link
    {
        std::unique_ptr<crypto::SecureChannel> channel;
        crypto::IvCounter iv{crypto::Direction::HostToDevice};
    };

    Link &linkFor(runtime::DeviceId src, runtime::DeviceId dst);

    /** Deterministic chunk plaintext (sampled prefix) for sealing. */
    void fillSample(std::vector<std::uint8_t> &sample,
                    std::uint64_t chunk_index) const;

    runtime::Platform &platform_;
    MigrationConfig config_;
    fault::FaultReport report_;
    /** Ordered map: link iteration order must be deterministic. */
    std::map<std::pair<runtime::DeviceId, runtime::DeviceId>, Link>
        links_;
};

} // namespace serving
} // namespace pipellm

#endif // PIPELLM_SERVING_MIGRATE_HH
