#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pipellm {
namespace trace {

DatasetProfile
DatasetProfile::shareGpt()
{
    // vLLM (SOSP'23) reports ShareGPT means of ~161 input and ~338
    // output tokens with long tails.
    return DatasetProfile{"sharegpt", 161.0, 0.9, 338.0, 0.9};
}

DatasetProfile
DatasetProfile::alpaca()
{
    return DatasetProfile{"alpaca", 19.0, 0.6, 58.0, 0.8};
}

DatasetProfile
DatasetProfile::ultrachat()
{
    DatasetProfile p{"ultrachat", 1024.0, 0.4, 0.0, 0.0};
    p.min_len = 128;
    return p;
}

TraceGenerator::TraceGenerator(const DatasetProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
}

namespace {

/**
 * Draw a log-normal token count whose *mean* is @p mean (the mu of
 * the underlying normal is adjusted for sigma), clipped to range.
 */
std::uint32_t
lengthDraw(Rng &rng, double mean, double sigma, std::uint32_t lo,
           std::uint32_t hi)
{
    if (mean <= 0.0)
        return 0;
    double mu = std::log(mean) - 0.5 * sigma * sigma;
    double draw = rng.logNormal(mu, sigma);
    auto len = std::uint32_t(std::lround(draw));
    return std::clamp(len, lo, hi);
}

} // namespace

Request
TraceGenerator::sample(std::uint64_t id)
{
    Request r;
    r.id = id;
    r.prompt_len = lengthDraw(rng_, profile_.input_mean,
                              profile_.input_sigma, profile_.min_len,
                              profile_.max_len);
    r.output_len = lengthDraw(rng_, profile_.output_mean,
                              profile_.output_sigma, 1,
                              profile_.max_len);
    return r;
}

Trace
TraceGenerator::poisson(std::size_t n, double requests_per_sec)
{
    PIPELLM_ASSERT(requests_per_sec > 0, "need a positive rate");
    Trace out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += rng_.exponential(requests_per_sec);
        Request r = sample(i);
        r.arrival = seconds(t);
        out.push_back(r);
    }
    return out;
}

Trace
TraceGenerator::poissonPhases(const std::vector<PoissonPhase> &phases)
{
    Trace out;
    double t = 0.0;
    std::uint64_t id = 0;
    for (const auto &phase : phases) {
        PIPELLM_ASSERT(phase.requests_per_sec > 0,
                       "need a positive phase rate");
        for (std::size_t i = 0; i < phase.n; ++i) {
            t += rng_.exponential(phase.requests_per_sec);
            Request r = sample(id++);
            r.arrival = seconds(t);
            out.push_back(r);
        }
    }
    return out;
}

void
TraceGenerator::stampDeadlines(Trace &requests, Tick slo_floor,
                               Tick slo_per_token)
{
    for (auto &r : requests) {
        r.deadline = r.arrival + slo_floor +
                     Tick(r.output_len) * slo_per_token;
    }
}

Trace
TraceGenerator::closedLoop(std::size_t n)
{
    Trace out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(sample(i));
    return out;
}

Trace
TraceGenerator::fixed(std::size_t n, std::uint32_t prompt_len,
                      std::uint32_t output_len)
{
    Trace out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Request r;
        r.id = i;
        r.prompt_len = prompt_len;
        r.output_len = output_len;
        out.push_back(r);
    }
    return out;
}

} // namespace trace
} // namespace pipellm
