/**
 * @file
 * A serving request as produced by the workload generators.
 */

#ifndef PIPELLM_TRACE_REQUEST_HH
#define PIPELLM_TRACE_REQUEST_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace pipellm {
namespace trace {

/** One inference request. */
struct Request
{
    std::uint64_t id = 0;
    /** Arrival time (0 for closed-loop workloads). */
    Tick arrival = 0;
    /** Prompt length in tokens. */
    std::uint32_t prompt_len = 0;
    /** Output tokens to generate (per sampled sequence). */
    std::uint32_t output_len = 0;
    /**
     * Completion deadline (absolute tick); 0 means no SLO. Engines
     * count a completion past its deadline as an SLO miss; routers
     * may shed a request whose deadline is provably unmeetable.
     */
    Tick deadline = 0;
};

using Trace = std::vector<Request>;

} // namespace trace
} // namespace pipellm

#endif // PIPELLM_TRACE_REQUEST_HH
