/**
 * @file
 * Workload generators standing in for the paper's datasets.
 *
 * We have no access to ShareGPT/Alpaca/ultrachat dumps, so we generate
 * synthetic traces whose *length distributions* match the published
 * statistics (the only property the swapping behavior depends on):
 *
 *   ShareGPT: long conversational prompts and outputs
 *             (mean input ~161 tok, mean output ~338 tok — vLLM paper)
 *   Alpaca:   short instructions (mean input ~19, mean output ~58)
 *   ultrachat: fine-tuning sequences around 1k tokens
 *
 * Lengths are log-normal (heavy-tailed like the real data), clipped
 * to the model context window. Arrivals are Poisson, as in the
 * paper's vLLM evaluation.
 */

#ifndef PIPELLM_TRACE_GENERATOR_HH
#define PIPELLM_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "trace/request.hh"

namespace pipellm {
namespace trace {

/** Length-distribution parameters of a dataset. */
struct DatasetProfile
{
    const char *name;
    double input_mean;
    double input_sigma; ///< sigma of the underlying normal
    double output_mean;
    double output_sigma;
    std::uint32_t min_len = 4;
    std::uint32_t max_len = 2048;

    /** The profiles used in the paper's evaluation. */
    static DatasetProfile shareGpt();
    static DatasetProfile alpaca();
    static DatasetProfile ultrachat();
};

/** Deterministic trace generator. */
class TraceGenerator
{
  public:
    TraceGenerator(const DatasetProfile &profile, std::uint64_t seed);

    /**
     * Open-loop serving trace: @p n requests with Poisson arrivals at
     * @p requests_per_sec.
     */
    Trace poisson(std::size_t n, double requests_per_sec);

    /**
     * Piecewise-Poisson trace: each phase contributes @p n requests
     * at its own rate, back to back on one timeline (overload bursts,
     * soak scenarios). Ids stay globally sequential.
     */
    struct PoissonPhase
    {
        std::size_t n = 0;
        double requests_per_sec = 1;
    };
    Trace poissonPhases(const std::vector<PoissonPhase> &phases);

    /** Closed-loop trace (arrival 0), e.g. FlexGen throughput runs. */
    Trace closedLoop(std::size_t n);

    /**
     * Fixed-shape synthetic trace (FlexGen's configurations, e.g.
     * input 32 / output 128).
     */
    static Trace fixed(std::size_t n, std::uint32_t prompt_len,
                       std::uint32_t output_len);

    const DatasetProfile &profile() const { return profile_; }

    /**
     * Stamp every request's deadline as
     *   arrival + slo_floor + output_len * slo_per_token.
     * The per-token term models a token-throughput SLO; the floor
     * absorbs queueing and prefill. Existing deadlines are replaced.
     */
    static void stampDeadlines(Trace &requests, Tick slo_floor,
                               Tick slo_per_token);

  private:
    Request sample(std::uint64_t id);

    DatasetProfile profile_;
    Rng rng_;
};

} // namespace trace
} // namespace pipellm

#endif // PIPELLM_TRACE_GENERATOR_HH
