/**
 * @file
 * Chaos soak harness: one seeded long-horizon timeline that
 * interleaves replica crashes, restarts, fault storms and overload
 * bursts against a cluster, then measures whether goodput recovered
 * after every disturbance.
 *
 * The harness is deliberately a *library* (linked by bench_soak and
 * the chaos tests) rather than a binary: the same plan/runner/metrics
 * run in CI smoke mode, under ASan, and under -DPIPELLM_AUDIT=ON,
 * where the invariant auditor traps on any (key, IV, epoch) reuse or
 * tag-ledger leak the chaos provokes — a soak that finishes IS the
 * audit assertion.
 *
 * Recovery is judged from the cluster's completion-event timeline:
 * goodput is bucketed into fixed windows, each disturbance (storm
 * start, every crash) gets a dip measurement — baseline before, worst
 * window after, time below the recovery bar — and the soak passes
 * when every dip climbs back above the bar before the run ends.
 */

#ifndef PIPELLM_CHAOS_CHAOS_HH
#define PIPELLM_CHAOS_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "llm/model.hh"
#include "serving/cluster.hh"
#include "trace/generator.hh"

namespace pipellm {
namespace chaos {

/** Goodput over one fixed bucket of the run. */
struct GoodputWindow
{
    Tick start = 0;
    Tick end = 0;
    /** Completed-request tokens retired in [start, end) per second. */
    double tokens_per_sec = 0;
};

/**
 * Bucket @p completions (sorted by time) into @p window -sized
 * goodput windows covering [0, last completion].
 */
std::vector<GoodputWindow> goodputTimeline(
    const std::vector<serving::CompletionEvent> &completions,
    Tick window);

/**
 * How goodput behaved around one disturbance. The recovery bar is
 * recover_frac * baseline; depth and duration measure the excursion
 * below it.
 */
struct DipMetrics
{
    /** Mean windowed goodput strictly before the disturbance. */
    double baseline_tps = 0;
    /** Worst window at/after the disturbance. */
    double min_tps = 0;
    /** 1 - min/baseline, clamped to [0, 1]; 0 = no dip. */
    double dip_depth = 0;
    /** Total time the windows spent below the recovery bar. */
    Tick dip_duration = 0;
    /** True when the last window is back above the bar. */
    bool recovered = false;
    /** Start of the first post-dip window above the bar. */
    Tick recovery_at = 0;
};

/**
 * Measure the dip after @p disturbance on @p timeline, judging
 * recovery against @p recover_frac of the pre-disturbance baseline.
 * With no pre-disturbance baseline (disturbance before the first
 * completion) the dip is reported as recovered with zero depth: there
 * is no level to fall from.
 */
DipMetrics dipAfter(const std::vector<GoodputWindow> &timeline,
                    Tick disturbance, double recover_frac);

/** One arrival-rate phase of the soak trace (calm / burst / calm). */
struct SoakPhase
{
    std::size_t requests = 0;
    double requests_per_sec = 1;
};

/** The classic soak workload shape: ShareGPT clipped to 1024. */
trace::DatasetProfile defaultSoakProfile();

/** Everything one soak run needs; seeded, so replays bit-identically. */
struct SoakPlan
{
    unsigned n_devices = 2;
    /** PipeLLM replicas when true, plain CC replicas when false. */
    bool use_pipellm = true;
    std::uint64_t trace_seed = 42;
    llm::ModelConfig model;
    unsigned parallel_sampling = 6;
    /** Arrival workload shape (dataset distribution + length clip). */
    trace::DatasetProfile profile = defaultSoakProfile();
    /** Functional-crypto sampling cap (timing is unaffected). */
    unsigned channel_sample_limit = 512;
    /** Arrival phases, played back to back on one timeline. */
    std::vector<SoakPhase> phases;
    /** Crashes, restarts and the storm window; armed when nonzero. */
    fault::FaultPlan faults;
    /** Front-end overload protection for the run. */
    serving::AdmissionConfig admission;
    /** Disaggregated prefill/decode split; migration faults in
     *  `faults` only fire when this is enabled. */
    serving::DisaggConfig disagg;
    /** Deadline stamped per request: arrival + floor + len * per_token
     *  (both zero = no deadlines). */
    Tick slo_floor = 0;
    Tick slo_per_token = 0;
    /** Goodput bucketing for the recovery analysis. */
    Tick goodput_window = seconds(2);
    /** Recovery bar as a fraction of pre-disturbance goodput. */
    double recover_frac = 0.5;
};

/**
 * The standard chaos mix: three arrival phases (calm, 4x overload
 * burst, calm), crashes with restarts armed, and a fault storm
 * window early in the run. @p quick shrinks the trace for CI smoke.
 */
SoakPlan defaultSoakPlan(bool quick);

/** One disturbance on the soak timeline and its measured dip. */
struct Disturbance
{
    /** "storm" or "crash(d)". */
    std::string what;
    Tick at = 0;
    DipMetrics dip;
};

/** Outcome of one soak run. */
struct SoakResult
{
    serving::ClusterResult cluster;
    std::vector<GoodputWindow> timeline;
    std::vector<Disturbance> disturbances;
    /** Invariant violations the auditor recorded (always 0 unless a
     *  test disarms trapping; without -DPIPELLM_AUDIT=ON the hooks
     *  are compiled out and this is trivially 0). */
    std::uint64_t audit_violations = 0;

    /** Every disturbance's goodput climbed back above the bar. */
    bool allRecovered() const;
};

/** Execute @p plan: build the cluster, serve the phased trace under
 *  the armed fault plan, and measure recovery per disturbance. */
SoakResult runSoak(const SoakPlan &plan);

} // namespace chaos
} // namespace pipellm

#endif // PIPELLM_CHAOS_CHAOS_HH
