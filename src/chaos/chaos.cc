#include "chaos/chaos.hh"

#include <algorithm>

#include "audit/audit.hh"
#include "common/logging.hh"
#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"

namespace pipellm {
namespace chaos {

std::vector<GoodputWindow>
goodputTimeline(const std::vector<serving::CompletionEvent> &completions,
                Tick window)
{
    PIPELLM_ASSERT(window > 0, "need a positive goodput window");
    std::vector<GoodputWindow> out;
    if (completions.empty())
        return out;
    Tick last = completions.back().at;
    std::size_t cursor = 0;
    for (Tick start = 0; start <= last; start += window) {
        GoodputWindow w;
        w.start = start;
        w.end = start + window;
        std::uint64_t tokens = 0;
        while (cursor < completions.size() &&
               completions[cursor].at < w.end) {
            tokens += completions[cursor].tokens;
            ++cursor;
        }
        w.tokens_per_sec = double(tokens) / toSeconds(window);
        out.push_back(w);
    }
    return out;
}

DipMetrics
dipAfter(const std::vector<GoodputWindow> &timeline, Tick disturbance,
         double recover_frac)
{
    DipMetrics m;
    double baseline_sum = 0;
    unsigned baseline_n = 0;
    for (const auto &w : timeline) {
        if (w.end <= disturbance) {
            baseline_sum += w.tokens_per_sec;
            ++baseline_n;
        }
    }
    if (baseline_n == 0) {
        // Disturbance before any full window: nothing to fall from.
        m.recovered = true;
        return m;
    }
    m.baseline_tps = baseline_sum / double(baseline_n);
    double bar = recover_frac * m.baseline_tps;
    bool first = true;
    bool below = false;
    for (const auto &w : timeline) {
        if (w.end <= disturbance)
            continue;
        if (first || w.tokens_per_sec < m.min_tps)
            m.min_tps = w.tokens_per_sec;
        first = false;
        if (w.tokens_per_sec < bar) {
            m.dip_duration += w.end - w.start;
            below = true;
            m.recovered = false;
        } else if (below || m.recovery_at == 0) {
            if (!m.recovered)
                m.recovery_at = w.start;
            m.recovered = true;
            below = false;
        }
    }
    if (first) {
        // No window after the disturbance at all.
        m.min_tps = m.baseline_tps;
        m.recovered = true;
    }
    if (m.baseline_tps > 0) {
        m.dip_depth = std::clamp(
            1.0 - m.min_tps / m.baseline_tps, 0.0, 1.0);
    }
    return m;
}

trace::DatasetProfile
defaultSoakProfile()
{
    auto profile = trace::DatasetProfile::shareGpt();
    profile.max_len = 1024;
    return profile;
}

SoakPlan
defaultSoakPlan(bool quick)
{
    SoakPlan plan;
    plan.n_devices = 2;
    plan.model = llm::ModelConfig::opt13b();
    plan.parallel_sampling = 6;

    // Calm / 4x overload burst / calm, back to back. The burst is the
    // overload disturbance; the calm tail gives recovery room.
    std::size_t per_phase = quick ? 16 : 48;
    double calm = 0.8 * plan.n_devices;
    plan.phases = {SoakPhase{per_phase, calm},
                   SoakPhase{per_phase, 4 * calm},
                   SoakPhase{per_phase, calm}};

    // Crashes with restarts armed (the self-healing path), plus a
    // storm window early in the run that multiplies every per-
    // operation fault rate.
    plan.faults.seed = 2027;
    plan.faults.tag_corruption_rate = 0.01;
    plan.faults.copy_stall_rate = 0.005;
    plan.faults.lane_fault_rate = 0.005;
    plan.faults.replica_crash_rate = 0.04;
    plan.faults.replica_restart_rate = 0.25;
    plan.faults.storm_start = seconds(8);
    plan.faults.storm_end = seconds(14);
    plan.faults.storm_multiplier = 8;

    // Shedding keeps the burst from blowing p90 unbounded; the cap
    // holds excess arrivals at the front-end instead of deep queues.
    plan.admission.shed_enabled = true;
    plan.admission.service_cost_per_sec = 1000;
    plan.admission.max_outstanding_cost = 20000;
    plan.slo_floor = seconds(20);
    plan.slo_per_token = milliseconds(60);
    return plan;
}

bool
SoakResult::allRecovered() const
{
    for (const auto &d : disturbances) {
        if (!d.dip.recovered)
            return false;
    }
    return true;
}

SoakResult
runSoak(const SoakPlan &plan)
{
    // Functional crypto sampling is capped like the benches: timing
    // is unaffected and the soak is dominated by serving anyway.
    crypto::ChannelConfig channel;
    channel.sample_limit = plan.channel_sample_limit;
    runtime::Platform platform(gpu::SystemSpec::h100(), channel,
                               plan.n_devices);
    if (plan.faults.armed())
        platform.armFaults(plan.faults);

    serving::ClusterConfig cfg;
    cfg.engine.model = plan.model;
    cfg.engine.parallel_sampling = plan.parallel_sampling;
    cfg.policy = serving::RoutePolicy::LeastLoaded;
    cfg.admission = plan.admission;
    cfg.disagg = plan.disagg;

    std::uint64_t block_bytes = std::uint64_t(cfg.engine.block_tokens) *
                                cfg.engine.model.kvBytesPerToken();
    core::PipeLlmConfig pipe_cfg;
    pipe_cfg.enc_lanes = 1;
    pipe_cfg.dec_lanes = 1;
    pipe_cfg.pipeline_depth = 512;
    pipe_cfg.max_pipeline_bytes = 16 * GiB;
    pipe_cfg.classifier.kv_unit_bytes = block_bytes;

    bool pipe = plan.use_pipellm;
    serving::ClusterRouter router(
        platform,
        [pipe, &pipe_cfg](runtime::Platform &p,
                          runtime::DeviceId device)
            -> std::unique_ptr<runtime::RuntimeApi> {
            if (pipe) {
                return std::make_unique<core::PipeLlmRuntime>(
                    p, pipe_cfg, device);
            }
            return std::make_unique<runtime::CcRuntime>(p, 1, device);
        },
        cfg);

    trace::TraceGenerator gen(plan.profile, plan.trace_seed);
    std::vector<trace::TraceGenerator::PoissonPhase> phases;
    for (const auto &ph : plan.phases)
        phases.push_back({ph.requests, ph.requests_per_sec});
    auto requests = gen.poissonPhases(phases);
    if (plan.slo_floor > 0 || plan.slo_per_token > 0) {
        trace::TraceGenerator::stampDeadlines(requests, plan.slo_floor,
                                              plan.slo_per_token);
    }

    SoakResult out;
    out.cluster = router.run(requests);
    out.timeline =
        goodputTimeline(out.cluster.completions, plan.goodput_window);

    // Every disturbance on the timeline gets its own dip measurement:
    // the storm window opening, then each replica's (last) crash.
    if (plan.faults.storm_multiplier != 1 &&
        plan.faults.storm_end > plan.faults.storm_start) {
        Disturbance d;
        d.what = "storm";
        d.at = plan.faults.storm_start;
        d.dip = dipAfter(out.timeline, d.at, plan.recover_frac);
        out.disturbances.push_back(std::move(d));
    }
    for (const auto &rep : out.cluster.replicas) {
        if (rep.crash_count == 0)
            continue;
        Disturbance d;
        d.what = "crash(" + std::to_string(unsigned(rep.device)) + ")";
        d.at = rep.crash_time;
        d.dip = dipAfter(out.timeline, d.at, plan.recover_frac);
        out.disturbances.push_back(std::move(d));
    }

#if PIPELLM_AUDIT_ENABLED
    out.audit_violations =
        audit::Auditor::instance().violations().size();
#endif
    return out;
}

} // namespace chaos
} // namespace pipellm
