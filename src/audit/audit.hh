/**
 * @file
 * Compile-time-optional invariant auditor.
 *
 * The simulator's correctness argument rests on invariants the code
 * only implicitly maintains: IV counters are never reused within a
 * session, mispredicted speculative ciphertexts are discarded before
 * they can be exposed, decryption never completes before its
 * ciphertext arrives, per-resource simulated clocks never run
 * backwards, and the cluster frontier only moves forward. This module
 * makes those invariants *checkable*: instrumented types call the
 * audit hooks, a global registry cross-checks every observation, and
 * any violation either aborts immediately (the default, so CI trips)
 * or is recorded for inspection (tests).
 *
 * Builds with -DPIPELLM_AUDIT=ON define PIPELLM_AUDIT=1 and compile
 * the hooks in; otherwise PIPELLM_AUDIT_HOOK(...) expands to nothing
 * and the subsystem is zero-cost. The committed bench CSVs are
 * produced with the audit OFF and must remain byte-identical, so the
 * hooks must never alter simulated timing, only observe it.
 *
 * Instrumented objects carry a process-unique audit id (assigned at
 * construction, via a hook) rather than being keyed by address:
 * stack- and heap-allocated simulators come and go within one test
 * binary, and a recycled address must not inherit a dead object's
 * audit state.
 */

#ifndef PIPELLM_AUDIT_AUDIT_HH
#define PIPELLM_AUDIT_AUDIT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hh"
#include "common/units.hh"

namespace pipellm {
namespace audit {

/** The invariant classes the auditor distinguishes. */
enum class Check : std::uint8_t
{
    /** (key, IV) exposed twice on the simulated bus. */
    IvReuse,
    /** Sealed ciphertext neither verified nor explicitly discarded. */
    TagLedger,
    /** Two operations overlapping on one serialized resource/lane. */
    LaneOverlap,
    /** A per-resource or event-queue clock moved backwards. */
    ClockRegression,
    /** A chained stage completed before its upstream stage. */
    ChainCompletion,
    /** Shared-bridge bytes differ from the sum over its upstreams. */
    BridgeConservation,
    /** Plaintext declared ready before its ciphertext landed. */
    DecryptBeforeArrival,
    /** The cluster min-clock frontier stepped backwards. */
    FrontierRegression,
    /** A request was processed before its arrival time. */
    EarlyDelivery,
    /** Router load accounting nonzero after the run drained. */
    ResidualLoad,
};

const char *toString(Check check);

/**
 * FNV-1a fold of @p len bytes into a u64 — identity digest for
 * retained-ciphertext replay checks (not cryptographic; the real tag
 * already authenticates the bytes).
 */
std::uint64_t digest(const void *data, std::size_t len);

/** One recorded invariant violation. */
struct Violation
{
    Check check;
    std::string message;
};

/**
 * Global invariant registry. A process-wide singleton: the hooks are
 * sprinkled across layers that share no common owner (EventQueue,
 * SecureChannel, GpuDevice, ClusterRouter), and audit state must
 * survive across Platform instances to catch cross-object reuse.
 * Tests reset() it between cases.
 */
class Auditor
{
  public:
    static Auditor &instance();

    /** Drop all registries and recorded violations (tests). The id
     *  counter is preserved so ids stay process-unique. */
    void reset();

    /** Fresh process-unique id for an instrumented object. */
    std::uint64_t
    newId()
    {
        common::LockGuard lock(mu_);
        return ++next_id_;
    }

    /**
     * When true (default), a violation aborts via PANIC so CI trips
     * at the first broken invariant. Tests set false and inspect
     * violations() instead.
     */
    void
    setTrapOnViolation(bool trap)
    {
        common::LockGuard lock(mu_);
        trap_ = trap;
    }

    bool
    trapOnViolation() const
    {
        common::LockGuard lock(mu_);
        return trap_;
    }

    /**
     * Snapshot of the recorded violations. Returned by value so no
     * reference to the guarded registry escapes the lock — the
     * capability analysis rejects the old by-reference accessor.
     */
    std::vector<Violation>
    violations() const
    {
        common::LockGuard lock(mu_);
        return violations_;
    }

    /** Violations recorded for @p check. */
    std::size_t count(Check check) const;

    /** Times @p check was evaluated (cleanly or not). */
    std::uint64_t evaluations(Check check) const;

    /** Multi-line human-readable report of recorded violations. */
    std::string report() const;

    // --- crypto: IV-uniqueness registry and tag ledger ---

    /**
     * A new CC session epoch began on channel @p channel_id
     * (construction or enableCc re-sync). Exposures from earlier
     * epochs are retired: session setup re-synchronizes counters,
     * modeling a fresh key exchange.
     */
    void noteSessionEpoch(std::uint64_t channel_id);

    /**
     * A lockstep ciphertext crossed the (simulated) bus: sealed under
     * (channel @p channel_id's key, @p dir, @p counter). Any second
     * exposure of the same triple in the same epoch is a (key, IV)
     * reuse — GCM's one fatal misuse.
     */
    void noteExposure(std::uint64_t channel_id, int dir,
                      std::uint64_t counter);

    /**
     * A retained (§8.2 content-generation) ciphertext with tag digest
     * @p tag_digest was exposed under @p counter. Replaying the *same*
     * ciphertext is the design; a *different* ciphertext under an
     * already-used retained IV is a reuse violation, as is any overlap
     * with a lockstep exposure.
     */
    void noteRetainedExposure(std::uint64_t channel_id, int dir,
                              std::uint64_t counter,
                              std::uint64_t tag_digest);

    /**
     * A ciphertext was produced. Returns the ledger serial to stash in
     * the blob; the blob must later be verified or discarded.
     */
    std::uint64_t noteSeal(std::uint64_t channel_id, int dir,
                           std::uint64_t counter);

    /** Blob @p serial passed tag verification. */
    void noteVerified(std::uint64_t serial);

    /** Blob @p serial was explicitly discarded (never to be sent). */
    void noteDiscarded(std::uint64_t serial);

    /** Sealed blobs not yet verified or discarded. */
    std::size_t outstandingBlobs() const;

    /**
     * End-of-scenario ledger check: records a TagLedger violation when
     * any sealed blob was neither verified nor discarded.
     */
    void checkLedgerDrained(const char *context);

    // --- sim: clocks, serialized occupancy, conservation ---

    /**
     * Serialized resource @p res_id (BandwidthResource lane,
     * SerialTimeline) served one request over [start, done] with the
     * simulated clock at @p now. Checks service causality
     * (done >= start >= now) and that the interval does not overlap
     * the resource's previous one.
     */
    void noteService(std::uint64_t res_id, const std::string &name,
                     Tick now, Tick start, Tick done,
                     std::uint64_t bytes);

    /**
     * An upstream stage forwarded @p bytes into shared stage
     * @p down_id; the chained request completed at @p chain_done with
     * the upstream stage alone done at @p upstream_done. Checks the
     * chained completion never precedes the upstream stage and
     * accumulates the conservation ledger for checkConservation().
     */
    void noteChainForward(std::uint64_t down_id,
                          const std::string &down_name,
                          std::uint64_t bytes, Tick upstream_done,
                          Tick chain_done);

    /** Event queue @p eq_id advanced from @p from to @p to. */
    void noteClockAdvance(std::uint64_t eq_id, Tick from, Tick to);

    /**
     * Decryption of a ciphertext that lands at @p arrival finished at
     * @p plain_ready; plaintext may not precede ciphertext.
     */
    void noteDecrypt(Tick arrival, Tick plain_ready);

    /**
     * Conservation check: every shared stage that ever received
     * forwarded traffic must have served exactly the bytes its
     * upstreams forwarded (no direct submissions, no lost bytes).
     */
    void checkConservation();

    /**
     * Conservation check scoped to one shared stage (by its audit id).
     * The cluster router audits only its own platform's host bridge so
     * unrelated stages from other live simulations cannot bleed in.
     */
    void checkConservation(std::uint64_t stage_id);

    // --- serving: cluster frontier and router accounting ---

    /** Cluster run @p run_id's min-clock frontier reached @p t. */
    void noteFrontier(std::uint64_t run_id, Tick t);

    /**
     * A replica stepped with clock @p engine_clock while the frontier
     * stood at @p frontier; the co-simulation only ever steps the
     * replica *at* the frontier, so a replica ahead of it racing
     * forward is an interleaving bug.
     */
    void noteReplicaStep(std::uint64_t run_id, Tick engine_clock,
                         Tick frontier);

    /**
     * Request with arrival @p arrival was delivered to a replica whose
     * clock then read @p engine_clock (must be >= arrival: a replica
     * may not process a request before it exists).
     */
    void noteDelivery(std::uint64_t run_id, Tick arrival,
                      Tick engine_clock);

    /**
     * Cluster run @p run_id drained. @p residual_load is the sum of
     * the router's per-replica outstanding-load estimates, which must
     * have returned to zero.
     */
    void noteRunEnd(std::uint64_t run_id, std::uint64_t residual_load);

  private:
    struct SharedStage;

    Auditor() = default;

    void violate(Check check, std::string message) REQUIRES(mu_);
    void
    evaluated(Check check) REQUIRES(mu_)
    {
        ++evaluations_[std::size_t(check)];
    }
    void checkStage(std::uint64_t id, const SharedStage &stage)
        REQUIRES(mu_);

    /**
     * The registry is process-global while replica shards step on
     * worker threads, so every public entry point locks; the private
     * helpers above are REQUIRES(mu_) and run under the caller's lock.
     * The hooks observe simulated time rather than influencing it, so
     * serialization here cannot perturb results.
     */
    mutable common::Mutex mu_;
    bool trap_ GUARDED_BY(mu_) = true;
    std::vector<Violation> violations_ GUARDED_BY(mu_);
    std::uint64_t evaluations_[16] GUARDED_BY(mu_) = {};
    std::uint64_t next_id_ GUARDED_BY(mu_) = 0;

    // (channel, epoch, dir, counter) -> exposure kind/digest.
    struct ExposureKey
    {
        std::uint64_t channel;
        std::uint64_t epoch;
        int dir;
        std::uint64_t counter;
        bool operator==(const ExposureKey &o) const
        {
            return channel == o.channel && epoch == o.epoch &&
                   dir == o.dir && counter == o.counter;
        }
    };
    struct ExposureKeyHash
    {
        std::size_t operator()(const ExposureKey &k) const
        {
            std::uint64_t h = k.channel;
            h = (h ^ k.epoch) * 0x9e3779b97f4a7c15ull;
            h = (h ^ std::uint64_t(k.dir)) * 0x9e3779b97f4a7c15ull;
            h = (h ^ k.counter) * 0x9e3779b97f4a7c15ull;
            return std::size_t(h);
        }
    };
    struct Exposure
    {
        bool retained = false;
        /** Tag digest for retained replay-identity checks. */
        std::uint64_t tag_digest = 0;
    };
    std::unordered_map<ExposureKey, Exposure, ExposureKeyHash>
        exposures_ GUARDED_BY(mu_);
    std::unordered_map<std::uint64_t, std::uint64_t> channel_epoch_
        GUARDED_BY(mu_);

    // Tag ledger: serial -> state.
    enum class BlobState : std::uint8_t { Sealed, Verified, Discarded };
    struct BlobRecord
    {
        BlobState state = BlobState::Sealed;
        std::uint64_t channel = 0;
        int dir = 0;
        std::uint64_t counter = 0;
    };
    std::unordered_map<std::uint64_t, BlobRecord> ledger_
        GUARDED_BY(mu_);
    std::uint64_t next_serial_ GUARDED_BY(mu_) = 0;

    // Per serialized resource: the last served interval.
    struct ResState
    {
        Tick last_start = 0;
        Tick last_done = 0;
        bool seen = false;
        std::uint64_t served_bytes = 0;
    };
    std::unordered_map<std::uint64_t, ResState> resources_
        GUARDED_BY(mu_);

    // Shared-stage conservation: forwarded bytes per chained stage.
    struct SharedStage
    {
        std::string name;
        std::uint64_t forwarded = 0;
    };
    std::unordered_map<std::uint64_t, SharedStage> shared_stages_
        GUARDED_BY(mu_);

    std::unordered_map<std::uint64_t, Tick> eq_clock_ GUARDED_BY(mu_);
    std::unordered_map<std::uint64_t, Tick> frontier_ GUARDED_BY(mu_);
};

} // namespace audit
} // namespace pipellm

/**
 * Wrap every audit call site so the instrumentation vanishes from
 * non-audit builds. Usage:
 *   PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteExposure(...));
 */
#if defined(PIPELLM_AUDIT) && PIPELLM_AUDIT
#define PIPELLM_AUDIT_ENABLED 1
#define PIPELLM_AUDIT_HOOK(...)                                            \
    do {                                                                   \
        __VA_ARGS__;                                                       \
    } while (0)
#else
#define PIPELLM_AUDIT_ENABLED 0
#define PIPELLM_AUDIT_HOOK(...)                                            \
    do {                                                                   \
    } while (0)
#endif

#endif // PIPELLM_AUDIT_AUDIT_HH
