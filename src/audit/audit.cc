#include "audit/audit.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace audit {

std::uint64_t
digest(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

const char *
toString(Check check)
{
    switch (check) {
      case Check::IvReuse:
        return "iv-reuse";
      case Check::TagLedger:
        return "tag-ledger";
      case Check::LaneOverlap:
        return "lane-overlap";
      case Check::ClockRegression:
        return "clock-regression";
      case Check::ChainCompletion:
        return "chain-completion";
      case Check::BridgeConservation:
        return "bridge-conservation";
      case Check::DecryptBeforeArrival:
        return "decrypt-before-arrival";
      case Check::FrontierRegression:
        return "frontier-regression";
      case Check::EarlyDelivery:
        return "early-delivery";
      case Check::ResidualLoad:
        return "residual-load";
    }
    return "?";
}

Auditor &
Auditor::instance()
{
    static Auditor auditor;
    return auditor;
}

void
Auditor::reset()
{
    common::LockGuard lock(mu_);
    trap_ = true;
    violations_.clear();
    for (auto &count : evaluations_)
        count = 0;
    exposures_.clear();
    channel_epoch_.clear();
    ledger_.clear();
    resources_.clear();
    shared_stages_.clear();
    eq_clock_.clear();
    frontier_.clear();
}

std::size_t
Auditor::count(Check check) const
{
    common::LockGuard lock(mu_);
    std::size_t n = 0;
    for (const auto &v : violations_) {
        if (v.check == check)
            ++n;
    }
    return n;
}

std::uint64_t
Auditor::evaluations(Check check) const
{
    common::LockGuard lock(mu_);
    return evaluations_[std::size_t(check)];
}

std::string
Auditor::report() const
{
    common::LockGuard lock(mu_);
    std::ostringstream os;
    os << "audit: " << violations_.size() << " violation(s)\n";
    for (const auto &v : violations_)
        os << "  [" << toString(v.check) << "] " << v.message << "\n";
    return os.str();
}

void
Auditor::violate(Check check, std::string message)
{
    violations_.push_back(Violation{check, message});
    if (trap_) {
        PANIC("audit violation [", toString(check), "]: ",
              std::move(message));
    }
}

// --- crypto ---

void
Auditor::noteSessionEpoch(std::uint64_t channel_id)
{
    common::LockGuard lock(mu_);
    ++channel_epoch_[channel_id];
}

void
Auditor::noteExposure(std::uint64_t channel_id, int dir,
                      std::uint64_t counter)
{
    common::LockGuard lock(mu_);
    evaluated(Check::IvReuse);
    ExposureKey key{channel_id, channel_epoch_[channel_id], dir,
                    counter};
    auto [it, fresh] = exposures_.emplace(key, Exposure{});
    if (!fresh) {
        violate(Check::IvReuse,
                logConcat("channel #", channel_id, " exposed two ",
                          "ciphertexts under (dir=", dir, ", counter=",
                          counter, ") in epoch ", key.epoch,
                          it->second.retained
                              ? " (first was a retained blob)"
                              : ""));
    }
}

void
Auditor::noteRetainedExposure(std::uint64_t channel_id, int dir,
                              std::uint64_t counter,
                              std::uint64_t tag_digest)
{
    common::LockGuard lock(mu_);
    evaluated(Check::IvReuse);
    ExposureKey key{channel_id, channel_epoch_[channel_id], dir,
                    counter};
    Exposure exposure;
    exposure.retained = true;
    exposure.tag_digest = tag_digest;
    auto [it, fresh] = exposures_.emplace(key, exposure);
    if (fresh)
        return;
    if (!it->second.retained) {
        violate(Check::IvReuse,
                logConcat("channel #", channel_id, " retained blob ",
                          "collides with a lockstep exposure at (dir=",
                          dir, ", counter=", counter, ")"));
    } else if (it->second.tag_digest != tag_digest) {
        // Replaying the identical ciphertext is the §8.2 design; a
        // *different* ciphertext under a used retained IV is two-time
        // pad material.
        violate(Check::IvReuse,
                logConcat("channel #", channel_id, " exposed two ",
                          "distinct retained ciphertexts under (dir=",
                          dir, ", counter=", counter, ")"));
    }
}

std::uint64_t
Auditor::noteSeal(std::uint64_t channel_id, int dir,
                  std::uint64_t counter)
{
    common::LockGuard lock(mu_);
    std::uint64_t serial = ++next_serial_;
    BlobRecord record;
    record.channel = channel_id;
    record.dir = dir;
    record.counter = counter;
    ledger_.emplace(serial, record);
    return serial;
}

void
Auditor::noteVerified(std::uint64_t serial)
{
    common::LockGuard lock(mu_);
    auto it = ledger_.find(serial);
    if (it == ledger_.end())
        return;
    if (it->second.state == BlobState::Discarded) {
        evaluated(Check::TagLedger);
        violate(Check::TagLedger,
                logConcat("blob #", serial, " (channel #",
                          it->second.channel, " dir ", it->second.dir,
                          " counter ", it->second.counter,
                          ") was verified after being explicitly ",
                          "discarded"));
    }
    it->second.state = BlobState::Verified;
}

void
Auditor::noteDiscarded(std::uint64_t serial)
{
    common::LockGuard lock(mu_);
    auto it = ledger_.find(serial);
    if (it != ledger_.end() && it->second.state == BlobState::Sealed)
        it->second.state = BlobState::Discarded;
}

std::size_t
Auditor::outstandingBlobs() const
{
    common::LockGuard lock(mu_);
    std::size_t n = 0;
    for (const auto &[serial, record] : ledger_) {
        if (record.state == BlobState::Sealed)
            ++n;
    }
    return n;
}

void
Auditor::checkLedgerDrained(const char *context)
{
    common::LockGuard lock(mu_);
    evaluated(Check::TagLedger);
    // The ledger is a hash map; sort the sealed serials so the sample
    // in the violation message is deterministic (the lint's
    // determinism check exists precisely because this once wasn't).
    std::vector<std::uint64_t> sealed;
    for (const auto &[serial, record] : ledger_) {
        if (record.state == BlobState::Sealed)
            sealed.push_back(serial);
    }
    std::sort(sealed.begin(), sealed.end());
    std::size_t outstanding = sealed.size();
    std::ostringstream sample;
    for (std::size_t i = 0; i < std::min<std::size_t>(4, sealed.size());
         ++i) {
        const BlobRecord &record = ledger_.at(sealed[i]);
        sample << " (channel #" << record.channel << " dir "
               << record.dir << " counter " << record.counter << ")";
    }
    if (outstanding > 0) {
        violate(Check::TagLedger,
                logConcat(context, ": ", outstanding, " sealed blob(s)",
                          " neither verified nor discarded, e.g.",
                          sample.str()));
    }
}

// --- sim ---

void
Auditor::noteService(std::uint64_t res_id, const std::string &name,
                     Tick now, Tick start, Tick done,
                     std::uint64_t bytes)
{
    common::LockGuard lock(mu_);
    evaluated(Check::LaneOverlap);
    auto &state = resources_[res_id];
    if (done < start || start < now) {
        violate(Check::ClockRegression,
                logConcat(name, ": service interval [", start, ", ",
                          done, "] runs backwards (now=", now, ")"));
    }
    if (state.seen && start < state.last_done) {
        violate(Check::LaneOverlap,
                logConcat(name, ": op starting at ", start,
                          " overlaps previous op ending at ",
                          state.last_done,
                          " on a serialized resource"));
    }
    state.last_start = start;
    state.last_done = done;
    state.seen = true;
    state.served_bytes += bytes;
}

void
Auditor::noteChainForward(std::uint64_t down_id,
                          const std::string &down_name,
                          std::uint64_t bytes, Tick upstream_done,
                          Tick chain_done)
{
    common::LockGuard lock(mu_);
    evaluated(Check::ChainCompletion);
    if (chain_done < upstream_done) {
        violate(Check::ChainCompletion,
                logConcat(down_name, ": chained completion ",
                          chain_done, " precedes upstream completion ",
                          upstream_done));
    }
    auto &stage = shared_stages_[down_id];
    if (stage.name.empty())
        stage.name = down_name;
    stage.forwarded += bytes;
}

void
Auditor::noteClockAdvance(std::uint64_t eq_id, Tick from, Tick to)
{
    common::LockGuard lock(mu_);
    evaluated(Check::ClockRegression);
    if (to < from) {
        violate(Check::ClockRegression,
                logConcat("event queue #", eq_id, ": clock moved from ",
                          from, " back to ", to));
    }
    eq_clock_[eq_id] = to;
}

void
Auditor::noteDecrypt(Tick arrival, Tick plain_ready)
{
    common::LockGuard lock(mu_);
    evaluated(Check::DecryptBeforeArrival);
    if (plain_ready < arrival) {
        violate(Check::DecryptBeforeArrival,
                logConcat("plaintext ready at ", plain_ready,
                          " before its ciphertext lands at ", arrival));
    }
}

void
Auditor::checkConservation()
{
    common::LockGuard lock(mu_);
    evaluated(Check::BridgeConservation);
    // Audit ids are assigned in construction order; checking stages in
    // id order keeps the violation sequence independent of the hash
    // map's iteration order.
    std::vector<std::uint64_t> ids;
    ids.reserve(shared_stages_.size());
    for (const auto &[id, stage] : shared_stages_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids)
        checkStage(id, shared_stages_.at(id));
}

void
Auditor::checkConservation(std::uint64_t stage_id)
{
    common::LockGuard lock(mu_);
    evaluated(Check::BridgeConservation);
    auto it = shared_stages_.find(stage_id);
    if (it != shared_stages_.end())
        checkStage(it->first, it->second);
}

void
Auditor::checkStage(std::uint64_t id, const SharedStage &stage)
{
    auto it = resources_.find(id);
    std::uint64_t served =
        it == resources_.end() ? 0 : it->second.served_bytes;
    if (served != stage.forwarded) {
        violate(Check::BridgeConservation,
                logConcat(stage.name, ": served ", served,
                          " bytes but upstreams forwarded ",
                          stage.forwarded));
    }
}

// --- serving ---

void
Auditor::noteFrontier(std::uint64_t run_id, Tick t)
{
    common::LockGuard lock(mu_);
    evaluated(Check::FrontierRegression);
    auto [it, fresh] = frontier_.emplace(run_id, t);
    if (!fresh) {
        if (t < it->second) {
            violate(Check::FrontierRegression,
                    logConcat("cluster run #", run_id,
                              ": frontier moved from ", it->second,
                              " back to ", t));
        }
        it->second = std::max(it->second, t);
    }
}

void
Auditor::noteReplicaStep(std::uint64_t run_id, Tick engine_clock,
                         Tick frontier)
{
    common::LockGuard lock(mu_);
    evaluated(Check::FrontierRegression);
    if (engine_clock > frontier) {
        violate(Check::FrontierRegression,
                logConcat("cluster run #", run_id, ": stepped a ",
                          "replica at clock ", engine_clock,
                          " ahead of the frontier ", frontier));
    }
}

void
Auditor::noteDelivery(std::uint64_t run_id, Tick arrival,
                      Tick engine_clock)
{
    common::LockGuard lock(mu_);
    evaluated(Check::EarlyDelivery);
    if (engine_clock < arrival) {
        violate(Check::EarlyDelivery,
                logConcat("cluster run #", run_id, ": request with ",
                          "arrival ", arrival,
                          " delivered to a replica at clock ",
                          engine_clock));
    }
}

void
Auditor::noteRunEnd(std::uint64_t run_id, std::uint64_t residual_load)
{
    common::LockGuard lock(mu_);
    evaluated(Check::ResidualLoad);
    frontier_.erase(run_id);
    if (residual_load != 0) {
        violate(Check::ResidualLoad,
                logConcat("cluster run #", run_id, ": router load ",
                          "accounting left ", residual_load,
                          " outstanding tokens after the run drained"));
    }
}

} // namespace audit
} // namespace pipellm
