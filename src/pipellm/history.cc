#include "pipellm/history.hh"

#include <algorithm>

namespace pipellm {
namespace core {

SwapHistory::SwapHistory(std::size_t cap) : cap_(cap)
{
}

void
SwapHistory::noteSwapIn(const ChunkId &chunk)
{
    swap_ins_.push_back(chunk);
    batch_ids_.push_back(current_batch_);
    if (swap_ins_.size() > cap_) {
        swap_ins_.pop_front();
        batch_ids_.pop_front();
    }
    ++open_batch_;
    ++total_swap_ins_;

    // The chunk is back on the GPU; it is no longer awaiting swap-in.
    auto set_it = outstanding_set_.find(chunk);
    if (set_it != outstanding_set_.end()) {
        outstanding_set_.erase(set_it);
        auto it = std::find_if(outstanding_.begin(), outstanding_.end(),
                               [&](const OutEntry &e) {
                                   return e.chunk == chunk;
                               });
        if (it != outstanding_.end())
            outstanding_.erase(it);
    }
}

void
SwapHistory::noteSwapOut(const ChunkId &chunk)
{
    ++total_swap_outs_;
    out_open_ = true;
    if (outstanding_set_.insert(chunk).second) {
        outstanding_.push_back(OutEntry{chunk, current_batch_});
    } else {
        // Swapped out again without an intervening swap-in: refresh
        // its position to preserve swap-out order.
        auto it = std::find_if(outstanding_.begin(), outstanding_.end(),
                               [&](const OutEntry &e) {
                                   return e.chunk == chunk;
                               });
        if (it != outstanding_.end())
            outstanding_.erase(it);
        outstanding_.push_back(OutEntry{chunk, current_batch_});
    }
}

void
SwapHistory::noteBatchBoundary()
{
    if (open_batch_ > 0)
        ++batches_;
    if (open_batch_ > 0 || out_open_) {
        ++current_batch_;
        open_batch_ = 0;
        out_open_ = false;
    }
}

bool
SwapHistory::isOutstanding(const ChunkId &chunk) const
{
    return outstanding_set_.count(chunk) > 0;
}

} // namespace core
} // namespace pipellm
