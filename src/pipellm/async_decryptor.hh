/**
 * @file
 * Asynchronous D2H decryption (paper §5.4).
 *
 * Stock CC decrypts a D2H transfer on the critical path. PipeLLM
 * returns as soon as the ciphertext lands: the plaintext destination
 * becomes an access-revoked placeholder, a decrypt lane produces the
 * plaintext in the background, and a premature touch faults into a
 * synchronous wait for the lane. The AsyncDecryptor owns the decrypt
 * lanes (acquired from the platform's CryptoEngine, so background
 * decryption contends with every other crypto client when the host
 * pool is shared) and the placeholder protection protocol.
 */

#ifndef PIPELLM_PIPELLM_ASYNC_DECRYPTOR_HH
#define PIPELLM_PIPELLM_ASYNC_DECRYPTOR_HH

#include <cstdint>

#include "crypto/engine.hh"
#include "mem/sparse_memory.hh"

namespace pipellm {
namespace core {

/** Off-critical-path D2H decryption with placeholder protection. */
class AsyncDecryptor
{
  public:
    /**
     * @param host the CVM arena holding the placeholder destinations
     * @param lanes decrypt lanes, typically acquired from the
     *        platform's CryptoEngine
     */
    AsyncDecryptor(mem::SparseMemory &host, crypto::CryptoLanes lanes);

    /**
     * Background-decrypt @p len bytes whose ciphertext lands at
     * @p landed; revokes access to [dst, dst+len) until the lane
     * finishes. A touch before then faults into a synchronous wait.
     * The caller must have written the (functionally already
     * decrypted) plaintext to @p dst before calling.
     * @return tick at which the plaintext is ready
     */
    Tick decryptAsync(Addr dst, std::uint64_t len, Tick landed);

    /** Critical-path decrypt (small transfers, ablations). */
    Tick decryptSync(Tick landed, std::uint64_t len);

    /** Transfers decrypted off the critical path. */
    std::uint64_t asyncDecrypts() const { return async_decrypts_; }

    /** Usage-before-decryption faults resolved synchronously. */
    std::uint64_t faults() const { return faults_; }

    crypto::CryptoLanes &lanes() { return lanes_; }
    const crypto::CryptoLanes &lanes() const { return lanes_; }

  private:
    mem::SparseMemory &host_;
    crypto::CryptoLanes lanes_;
    std::uint64_t async_decrypts_ = 0;
    std::uint64_t faults_ = 0;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_ASYNC_DECRYPTOR_HH
