/**
 * @file
 * Size-based transfer classification (paper §4.2).
 *
 * Observations the paper exploits: swaps are >128 KiB while other
 * transfers are <8 KiB, and model-offload vs KV-swap sizes are
 * computable ahead of time from the (known) model definition. The
 * classifier therefore needs only the transfer length.
 */

#ifndef PIPELLM_PIPELLM_CLASSIFIER_HH
#define PIPELLM_PIPELLM_CLASSIFIER_HH

#include <cstdint>

#include "common/units.hh"

namespace pipellm {
namespace core {

/** What kind of transfer a memcpy is. */
enum class TransferClass : std::uint8_t
{
    Small,        ///< tokens, control data: not pipelined
    ModelOffload, ///< a layer's parameter block
    KvSwap,       ///< a KV-cache swap unit
    OtherSwap,    ///< large but matching neither known size
};

const char *toString(TransferClass c);

/** Classifier configuration derived from the target model. */
struct ClassifierConfig
{
    /** Transfers at or above this size are treated as swaps. */
    std::uint64_t swap_threshold = 128 * KiB;
    /** Known per-layer parameter bytes (0 = unknown). */
    std::uint64_t layer_param_bytes = 0;
    /** Known KV swap unit bytes (0 = unknown). */
    std::uint64_t kv_unit_bytes = 0;
    /** Relative tolerance when matching known sizes. */
    double tolerance = 0.02;
};

/** Stateless size classifier. */
class SwapClassifier
{
  public:
    explicit SwapClassifier(const ClassifierConfig &config);

    TransferClass classify(std::uint64_t len) const;

    /** True for any swap class. */
    bool isSwap(std::uint64_t len) const;

    const ClassifierConfig &config() const { return config_; }

  private:
    bool matches(std::uint64_t len, std::uint64_t target) const;

    ClassifierConfig config_;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_CLASSIFIER_HH
