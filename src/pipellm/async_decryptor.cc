#include "pipellm/async_decryptor.hh"

#include <utility>

#include "audit/audit.hh"

namespace pipellm {
namespace core {

AsyncDecryptor::AsyncDecryptor(mem::SparseMemory &host,
                               crypto::CryptoLanes lanes)
    : host_(host), lanes_(std::move(lanes))
{
}

Tick
AsyncDecryptor::decryptAsync(Addr dst, std::uint64_t len, Tick landed)
{
    Tick plain_ready = lanes_.submitNotBefore(landed, len);
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDecrypt(
        landed, plain_ready));
    ++async_decrypts_;

    auto *faults = &faults_;
    auto *prot = &host_.protection();
    prot->protect(dst, len, mem::Protection::NoAccess,
                  [faults, prot, dst, len, plain_ready](Addr,
                                                        bool) -> Tick {
                      // Usage before decryption: decrypt synchronously
                      // and let the access proceed.
                      ++*faults;
                      prot->unprotect(dst, len);
                      return plain_ready;
                  });
    return plain_ready;
}

Tick
AsyncDecryptor::decryptSync(Tick landed, std::uint64_t len)
{
    Tick plain_ready = lanes_.submitNotBefore(landed, len);
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDecrypt(
        landed, plain_ready));
    return plain_ready;
}

} // namespace core
} // namespace pipellm
