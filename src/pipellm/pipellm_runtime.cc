#include "pipellm/pipellm_runtime.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace core {

using runtime::ApiResult;
using runtime::CopyKind;
using runtime::Stream;

PipeLlmRuntime::PipeLlmRuntime(runtime::Platform &platform,
                               const PipeLlmConfig &config,
                               runtime::DeviceId device)
    : RuntimeApi(platform, device), config_(config),
      classifier_(config.classifier), predictor_(config.predictor),
      enc_lanes_(platform.cryptoEngine().acquire("pipellm-enc",
                                                 config.enc_lanes)),
      decryptor_(platform.hostMem(),
                 platform.cryptoEngine().acquire("pipellm-dec",
                                                 config.dec_lanes)),
      pipeline_(platform.hostMem(), platform.device(device).channel(),
                enc_lanes_, predictor_, config),
      nop_scratch_(platform.device(device).gpu().alloc(
          mem::pageBytes, "pipellm-nop-scratch")),
      degraded_(config.degraded)
{
    gpu().enableCc(&channel());
}

ApiResult
PipeLlmRuntime::memcpyAsync(CopyKind kind, Addr dst, Addr src,
                            std::uint64_t len, Stream &stream, Tick now)
{
    noteCopy(kind, len);
    ApiResult result;
    if (kind == CopyKind::HostToDevice)
        result = copyH2d(dst, src, len, stream, now);
    else
        result = copyD2h(dst, src, len, stream, now);

    // Prediction stage runs opportunistically after every call —
    // unless a fault storm has speculation suspended.
    Tick idle = std::max(now, result.api_return);
    if (!degraded_.active(idle))
        pipeline_.refill(idle, h2d_iv_.current());
    return result;
}

Tick
PipeLlmRuntime::sendEntry(const PreencEntry &entry, Addr dst,
                          Stream &stream, Tick now)
{
    PIPELLM_ASSERT(entry.iv == h2d_iv_.current(),
                   "sending entry out of IV order: entry=", entry.iv,
                   " current=", h2d_iv_.current());
    h2d_iv_.next();

    // Validated: the ciphertext may now enter shared memory (§6).
    Tick start = std::max({now, entry.ready_at, stream.tail()});
    Tick done = ctx().h2dPath().transfer(start, entry.chunk.len);
    done = deliverH2d(entry.blob, dst, entry.chunk.addr,
                      entry.chunk.len, false, done);
    stream.push(done);
    trace(now, done, entry.chunk.len, true,
          runtime::TransferOutcome::Hit);
    return done;
}

Tick
PipeLlmRuntime::sendOnDemand(Addr dst, Addr src, std::uint64_t len,
                             Stream &stream, Tick now)
{
    std::uint64_t iv = h2d_iv_.next();
    pipeline_.invalidateIv(iv, now);

    std::uint64_t n = sampleLen(len);
    std::vector<std::uint8_t> sample(n);
    Tick src_ready = platform_.hostMem().read(src, sample.data(), n);

    // Demand encryption: an idle worker lane takes the job without
    // blocking the caller; when every lane is busy with speculative
    // work, the calling thread encrypts (exactly like stock NVIDIA
    // CC) rather than queue behind megabytes of speculation.
    Tick enc_start = std::max(now, src_ready);
    bool lane_idle = enc_lanes_.earliestFree() <= enc_start;
    Tick enc_done =
        lane_idle
            ? enc_lanes_.submitNotBefore(enc_start, len)
            : enc_start + transferTicks(
                  len, platform_.spec().cpu_crypto_bw_per_lane);
    stats_.cpu_encrypt_bytes += len;
    auto blob = channel().seal(crypto::Direction::HostToDevice, iv,
                               sample.data(), len);

    Tick start = std::max(enc_done, stream.tail());
    Tick done = ctx().h2dPath().transfer(start, len);
    done = deliverH2d(blob, dst, src, len, false, done);
    stream.push(done);
    trace(now, done, len, true, runtime::TransferOutcome::Miss);
    // Caller resumes immediately when a worker took the job.
    return lane_idle ? enc_start : enc_done;
}

void
PipeLlmRuntime::sendNop(Tick now)
{
    std::uint64_t iv = h2d_iv_.next();
    pipeline_.invalidateIv(iv, now);
    ++pipe_stats_.nops;

    // One byte is encrypted by the calling thread itself — routing it
    // through the worker lanes would make it queue behind megabytes
    // of speculative work.
    auto blob = channel().sealNop(
        crypto::Direction::HostToDevice, iv);
    Tick enc_done = now + nanoseconds(200);
    Tick done = ctx().h2dPath().transfer(enc_done, 1);
    done = deliverH2d(blob, nop_scratch_.base, 0, 1, true, done);
    trace(now, done, 1, true, runtime::TransferOutcome::Nop);
}

void
PipeLlmRuntime::noteTagRetry(unsigned &attempt, Tick now)
{
    ++fault_report_.tag_faults;
    ++attempt;
    const auto &plan = platform_.faultInjector().plan();
    if (attempt > plan.max_transfer_retries) {
        PANIC("PipeLLM: transfer still failing after ",
              plan.max_transfer_retries,
              " fresh-IV retries; giving up");
    }
    ++fault_report_.tag_retries;
    if (degraded_.noteFault(now)) {
        // Fault storm: every retry burns a fresh IV, which keeps
        // invalidating the speculative plan anyway. Drop the plan
        // wholesale and serve on demand until the storm passes.
        pipeline_.relinquish();
    }
}

Tick
PipeLlmRuntime::deliverH2d(const crypto::CipherBlob &sent, Addr dst,
                           Addr src, std::uint64_t len, bool nop,
                           Tick done)
{
    if (!platform_.faultInjector().armed()) {
        // Fault-free fast path: byte-identical to the unfaulted
        // runtime (no RNG draws, no timing deltas).
        gpu().commitEncrypted(sent, dst);
        return done;
    }

    crypto::CipherBlob blob = sent;
    channel().maybeCorrupt(blob, done);
    unsigned attempt = 0;
    while (!gpu().tryCommitEncrypted(blob, dst)) {
        noteTagRetry(attempt, done);
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            blob.audit_serial));
        // Both IV counters advanced past the corrupted value, so the
        // retry re-encrypts at the next (fresh) counter — never a
        // replay. That counter may have been promised to speculative
        // entries; the pipeline re-plans around it.
        std::uint64_t iv = h2d_iv_.next();
        pipeline_.invalidateIv(iv, done);
        Tick enc_done;
        if (nop) {
            blob = channel().sealNop(crypto::Direction::HostToDevice,
                                     iv);
            enc_done = done + nanoseconds(200);
        } else {
            std::uint64_t n = sampleLen(len);
            std::vector<std::uint8_t> sample(n);
            platform_.hostMem().read(src, sample.data(), n);
            // Recovery happens on the calling thread (stock CC
            // style); queueing behind speculative lane work would
            // stretch the outage.
            enc_done = done + transferTicks(
                len, platform_.spec().cpu_crypto_bw_per_lane);
            stats_.cpu_encrypt_bytes += len;
            blob = channel().seal(crypto::Direction::HostToDevice, iv,
                                  sample.data(), len);
        }
        Tick redo = ctx().h2dPath().transfer(enc_done, len);
        fault_report_.retry_latency += redo - done;
        trace(done, redo, len, true, runtime::TransferOutcome::Retry);
        done = redo;
        channel().maybeCorrupt(blob, done);
    }
    return done;
}

void
PipeLlmRuntime::drainPending(Tick now)
{
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->entry.iv == h2d_iv_.current()) {
                sendEntry(it->entry, it->dst, *it->stream, now);
                pending_.erase(it);
                progress = true;
                break;
            }
        }
    }
}

void
PipeLlmRuntime::flushPending(Tick now)
{
    std::sort(pending_.begin(), pending_.end(),
              [](const PendingSend &a, const PendingSend &b) {
                  return a.entry.iv < b.entry.iv;
              });
    for (auto &p : pending_) {
        // NOP padding (§5.3): advance the counter over IVs that were
        // assigned to mispredicted chunks.
        while (h2d_iv_.current() < p.entry.iv) {
            ++pipe_stats_.nops_flush;
            sendNop(now);
        }
        if (p.entry.iv < h2d_iv_.current()) {
            // The counter overtook this deferred send's IV — either
            // interleaved transfers exhausted the leeway while it
            // waited, or a padding NOP's tag-fault retry burned past
            // it. The pre-encryption is dead, but the copy is still
            // owed — re-encrypt on demand at the current counter.
            ++pipe_stats_.stale_drops;
            PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
                p.entry.blob.audit_serial));
            sendOnDemand(p.dst, p.entry.chunk.addr, p.entry.chunk.len,
                         *p.stream, now);
            continue;
        }
        sendEntry(p.entry, p.dst, *p.stream, now);
    }
    pending_.clear();
}

ApiResult
PipeLlmRuntime::copyH2d(Addr dst, Addr src, std::uint64_t len,
                        Stream &stream, Tick now)
{
    const auto &spec = platform_.spec();
    Tick control = now + spec.api_overhead + spec.cc_api_overhead;
    ChunkId chunk{src, len};

    if (!classifier_.isSwap(len)) {
        // Small transfers keep NVIDIA CC's on-the-fly behavior: the
        // encryption cost is negligible (§5.1).
        pipeline_.noteSmall();
        Tick api_return =
            std::max(control,
                     sendOnDemand(dst, src, len, stream, control));
        return ApiResult{api_return, stream.tail()};
    }

    ++pipe_stats_.swap_requests;
    pipeline_.noteSwapRequest();
    predictor_.noteSwapIn(chunk);

    if (degraded_.active(control)) {
        // Degraded mode: speculation is suspended after a fault
        // storm; serve the swap exactly like stock CC until the
        // cooldown expires. The predictor keeps learning so the
        // pipeline restarts warm.
        ++fault_report_.degraded_sends;
        ++pipe_stats_.misses;
        pipe_stats_.on_demand_bytes += len;
        Tick enc_done = sendOnDemand(dst, src, len, stream, control);
        drainPending(enc_done);
        return ApiResult{enc_done, stream.tail()};
    }

    auto entry = pipeline_.find(chunk);
    if (entry && entry->iv >= h2d_iv_.current()) {
        ++pipe_stats_.hits;
        pipeline_.consume(entry->iv);
        Tick complete;
        std::uint64_t cur = h2d_iv_.current();
        bool gap_fillable =
            entry->iv > cur &&
            (pipeline_.hasEntryInIvRange(cur, entry->iv) ||
             std::any_of(pending_.begin(), pending_.end(),
                         [&](const PendingSend &p) {
                             return p.entry.iv < entry->iv;
                         }));
        if (entry->iv == cur) {
            complete = sendEntry(*entry, dst, stream, control);
            drainPending(control);
        } else if (!gap_fillable) {
            // Nothing can fill the IV gap below this entry: pad NOPs
            // and send right away (Figure 6's sync step, done early).
            while (h2d_iv_.current() < entry->iv) {
                ++pipe_stats_.nops_eager;
                sendNop(control);
            }
            if (entry->iv == h2d_iv_.current()) {
                complete = sendEntry(*entry, dst, stream, control);
            } else {
                // A padding NOP's tag-fault retry burned past the
                // entry's IV: the pre-encryption is dead after all.
                --pipe_stats_.hits;
                ++pipe_stats_.misses;
                ++pipe_stats_.stale_drops;
                pipe_stats_.on_demand_bytes += len;
                PIPELLM_AUDIT_HOOK(
                    audit::Auditor::instance().noteDiscarded(
                        entry->blob.audit_serial));
                complete = sendOnDemand(dst, src, len, stream,
                                        control);
            }
            drainPending(control);
        } else {
            // Swap re-ordering (§5.3): a lower-IV sibling in this
            // batch should arrive first; defer this send.
            ++pipe_stats_.reordered;
            pending_.push_back(PendingSend{*entry, dst, &stream});
            trace(now, 0, len, true,
                  runtime::TransferOutcome::Deferred);
            complete = 0; // resolved at drain/flush
        }
        return ApiResult{control, complete};
    }

    if (entry) {
        // Irrecoverable: the pre-encrypted IV is already in the past.
        ++pipe_stats_.stale_drops;
        pipeline_.consume(entry->iv);
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            entry->blob.audit_serial));
    }
    ++pipe_stats_.misses;
    pipe_stats_.on_demand_bytes += len;
    // The caller blocks for the demand encryption, as in stock CC.
    // (Predicted-but-write-hot misses land on their reserved IV; the
    // leeway EMA covers only genuinely unplanned small transfers.)
    Tick enc_done = sendOnDemand(dst, src, len, stream, control);
    drainPending(enc_done);
    return ApiResult{enc_done, stream.tail()};
}

ApiResult
PipeLlmRuntime::copyD2h(Addr dst, Addr src, std::uint64_t len,
                        Stream &stream, Tick now)
{
    const auto &spec = platform_.spec();
    auto &host = platform_.hostMem();
    auto &dev = gpu();

    Tick control = now + spec.api_overhead + spec.cc_api_overhead;
    Tick start = std::max(control, stream.tail());

    crypto::CipherBlob blob = dev.sealD2h(src, len);
    Tick landed = ctx().d2hPath().transfer(start, len);
    channel().maybeCorrupt(blob, landed);

    std::vector<std::uint8_t> sample;
    unsigned attempt = 0;
    while (!channel().open(blob, d2h_iv_.next(), sample)) {
        if (!blob.injected_fault) {
            PANIC("PipeLLM: D2H tag failure (GPU IV ",
                  blob.iv_counter, ")");
        }
        noteTagRetry(attempt, landed);
        // Both sides consumed the failed counter; the device re-seals
        // at its next TX IV and the ciphertext re-crosses the bus.
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            blob.audit_serial));
        blob = dev.sealD2h(src, len);
        Tick redo = ctx().d2hPath().transfer(landed, len);
        channel().maybeCorrupt(blob, redo);
        fault_report_.retry_latency += redo - landed;
        trace(landed, redo, len, false,
              runtime::TransferOutcome::Retry);
        landed = redo;
    }

    bool swap = classifier_.isSwap(len);
    if (swap) {
        predictor_.noteSwapOut(ChunkId{dst, len});
        pipeline_.unpause();
    }

    if (swap && config_.async_decrypt) {
        // §5.4: the copy returns before decryption. The plaintext
        // becomes available when the decrypt lane gets to it; until
        // then the destination is an access-revoked placeholder.
        host.write(dst, sample.data(), sample.size());
        decryptor_.decryptAsync(dst, len, landed);
        stats_.cpu_decrypt_bytes += len;

        stream.push(landed);
        trace(now, landed, len, false,
              runtime::TransferOutcome::Direct);
        return ApiResult{control, landed};
    }

    // Small transfers (and the ablation) decrypt on the critical path.
    Tick dec_done = decryptor_.decryptSync(landed, len);
    stats_.cpu_decrypt_bytes += len;
    host.write(dst, sample.data(), sample.size());
    stream.push(dec_done);
    return ApiResult{dec_done, dec_done};
}

Tick
PipeLlmRuntime::synchronize(Tick now)
{
    flushPending(now);
    predictor_.noteBatchBoundary();
    pipeline_.noteBatch();
    Tick t = RuntimeApi::synchronize(now);
    if (!degraded_.active(t))
        pipeline_.refill(t, h2d_iv_.current());
    return t;
}

fault::FaultReport
PipeLlmRuntime::faultReport() const
{
    fault::FaultReport report = RuntimeApi::faultReport();
    report.lane_faults +=
        enc_lanes_.laneFaults() + decryptor_.lanes().laneFaults();
    report.retry_latency +=
        enc_lanes_.laneFaultTicks() +
        decryptor_.lanes().laneFaultTicks();
    report.degraded_entries += degraded_.entries();
    report.degraded_ticks += degraded_.degradedTicks();
    return report;
}

Tick
PipeLlmRuntime::restart(Tick now)
{
    Tick live = RuntimeApi::restart(now);
    h2d_iv_ = crypto::IvCounter(crypto::Direction::HostToDevice);
    d2h_iv_ = crypto::IvCounter(crypto::Direction::DeviceToHost);
    // Deferred sends and pipelined pre-encryptions were sealed under
    // the dead session's key; none can verify again, so all are
    // settled as discarded and the plan restarts from nothing.
    for (const auto &send : pending_) {
        (void)send; // only read by the audit hook below
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            send.entry.blob.audit_serial));
    }
    pending_.clear();
    pipeline_.relinquish();
    degraded_.reset(live);
    return live;
}

} // namespace core
} // namespace pipellm
