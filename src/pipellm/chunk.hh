/**
 * @file
 * Identity of a swappable memory chunk as PipeLLM sees it.
 *
 * PipeLLM is user-transparent: it never learns "this is layer 7" or
 * "this is request 42's KV block". All it observes is the (host
 * address, length) pair of each cudaMemcpyAsync (§4.2), which is
 * exactly what a chunk identity is.
 */

#ifndef PIPELLM_PIPELLM_CHUNK_HH
#define PIPELLM_PIPELLM_CHUNK_HH

#include <cstdint>
#include <functional>
#include <ostream>

#include "common/units.hh"

namespace pipellm {
namespace core {

/** (host address, length) identity of a swap chunk. */
struct ChunkId
{
    Addr addr = 0;
    std::uint64_t len = 0;

    bool
    operator==(const ChunkId &o) const
    {
        return addr == o.addr && len == o.len;
    }

    bool
    operator<(const ChunkId &o) const
    {
        return addr != o.addr ? addr < o.addr : len < o.len;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const ChunkId &c)
{
    return os << "chunk[0x" << std::hex << c.addr << std::dec << ",+"
              << c.len << ")";
}

struct ChunkIdHash
{
    std::size_t
    operator()(const ChunkId &c) const
    {
        std::uint64_t x = c.addr * 0x9e3779b97f4a7c15ull ^ c.len;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        return std::size_t(x ^ (x >> 31));
    }
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_CHUNK_HH
