/**
 * @file
 * The PipeLLM predictor (paper §5.1): maintains the swap history,
 * scores every pattern recognizer against ground truth as it streams
 * in, and serves multi-step predictions from the currently most
 * accurate recognizer.
 *
 * f([B_0..B_n], {outstanding}, IV_cur) -> (C_next, IV_next)
 *
 * The chunk half of f lives here; IV assignment (the leeway rule)
 * lives in the speculative pipeline, which owns the counters.
 */

#ifndef PIPELLM_PIPELLM_PREDICTOR_HH
#define PIPELLM_PIPELLM_PREDICTOR_HH

#include <memory>
#include <vector>

#include "pipellm/history.hh"
#include "pipellm/patterns.hh"

namespace pipellm {
namespace core {

/** Predictor configuration. */
struct PredictorConfig
{
    /** Exponential moving-average factor for accuracy scoring. */
    double accuracy_decay = 0.9;
    /** Flattened history capacity. */
    std::size_t history_cap = 1024;
    /**
     * Fig. 10 ablation ("PipeLLM-0"): rotate the predicted sequence
     * so the next-chunk prediction is always wrong while the
     * predicted *set* stays useful — success rate of the sequence
     * prediction is forced to zero.
     */
    bool sabotage_sequence = false;
};

/** Accuracy-scored multi-pattern predictor. */
class Predictor
{
  public:
    explicit Predictor(const PredictorConfig &config = PredictorConfig{});

    /**
     * Record a ground-truth swap-in. Each recognizer's one-step
     * shadow prediction is scored against it before the history is
     * updated.
     */
    void noteSwapIn(const ChunkId &chunk);

    void noteSwapOut(const ChunkId &chunk);
    void noteBatchBoundary();

    /** Predict the next @p n swap-ins from the best recognizer. */
    std::vector<PredictedSwap> predictNext(std::size_t n) const;

    /**
     * Register an additional pattern recognizer (§5.1: "PipeLLM's
     * predictor is general and can easily extend to other patterns").
     * It immediately joins the accuracy race on equal terms.
     */
    void registerRecognizer(std::unique_ptr<PatternRecognizer> rec);

    /** Name of the recognizer currently winning the accuracy race. */
    const char *activePattern() const;

    /** EMA accuracy of recognizer @p i (test introspection). */
    double accuracy(std::size_t i) const { return accuracy_[i]; }
    std::size_t recognizers() const { return recognizers_.size(); }

    const SwapHistory &history() const { return history_; }

    /** Shadow-prediction hit statistics (over all recognizers' best). */
    std::uint64_t shadowHits() const { return shadow_hits_; }
    std::uint64_t shadowTotal() const { return shadow_total_; }

  private:
    std::size_t bestRecognizer() const;

    PredictorConfig config_;
    SwapHistory history_;
    std::vector<std::unique_ptr<PatternRecognizer>> recognizers_;
    std::vector<double> accuracy_;
    std::uint64_t shadow_hits_ = 0;
    std::uint64_t shadow_total_ = 0;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_PREDICTOR_HH
