/**
 * @file
 * Swap-pattern recognizers (paper §5.1, Figure 5).
 *
 * Today's LLM systems exhibit three swap-in patterns:
 *
 *  - Repetitive: model offloading replays the same chunk cycle every
 *    iteration (FlexGen, PEFT/DeepSpeed). Recognized by longest
 *    suffix matching over the swap-in history.
 *  - FIFO: layer-wise KV swapping returns chunks in swap-out order.
 *  - LIFO: request-wise KV swapping returns the most recently
 *    preempted request first (vLLM).
 *
 * The recognizer interface is deliberately open: implementing a new
 * pattern means recognizing it from the history and producing the
 * next chunks (the paper's extension point).
 */

#ifndef PIPELLM_PIPELLM_PATTERNS_HH
#define PIPELLM_PIPELLM_PATTERNS_HH

#include <memory>
#include <string>
#include <vector>

#include "pipellm/history.hh"

namespace pipellm {
namespace core {

/** One predicted future swap-in. */
struct PredictedSwap
{
    ChunkId chunk;
    /**
     * True when a synchronization boundary is predicted immediately
     * before this swap-in — where interleaved small transfers (and
     * thus IV leeway gaps) belong.
     */
    bool batch_start = false;
};

/** A strategy that predicts the next swap-in chunks. */
class PatternRecognizer
{
  public:
    virtual ~PatternRecognizer() = default;

    virtual const char *name() const = 0;

    /**
     * Predict the next @p n swap-ins, most imminent first. May return
     * fewer (or none) when the history gives no signal.
     */
    virtual std::vector<PredictedSwap> predict(const SwapHistory &history,
                                               std::size_t n) const = 0;
};

/**
 * Longest-suffix-match predictor for repetitive sequences. Finds the
 * most recent earlier position whose preceding context best matches
 * the current suffix and replays what followed it. For a strict
 * layer cycle this predicts the cycle exactly.
 */
class RepetitiveRecognizer : public PatternRecognizer
{
  public:
    /**
     * @param max_context suffix length cap for matching
     * @param scan_limit how far back to search for a context match
     *        (bounds the per-prediction cost; cycles longer than this
     *        are not recognized)
     */
    explicit RepetitiveRecognizer(std::size_t max_context = 64,
                                  std::size_t scan_limit = 512);

    const char *name() const override { return "repetitive"; }

    std::vector<PredictedSwap> predict(const SwapHistory &history,
                                       std::size_t n) const override;

  private:
    std::size_t max_context_;
    std::size_t scan_limit_;
};

/** Oldest-swapped-out-first (layer-wise KV swapping). */
class FifoRecognizer : public PatternRecognizer
{
  public:
    const char *name() const override { return "fifo"; }

    std::vector<PredictedSwap> predict(const SwapHistory &history,
                                       std::size_t n) const override;
};

/** Newest-swapped-out-first (request-wise KV swapping, vLLM). */
class LifoRecognizer : public PatternRecognizer
{
  public:
    const char *name() const override { return "lifo"; }

    std::vector<PredictedSwap> predict(const SwapHistory &history,
                                       std::size_t n) const override;
};

/**
 * Group-LIFO, block-FIFO: preempted *groups* resume most-recent-first
 * (vLLM's request-wise policy), but a group's many block copies are
 * reissued in their original order. This is the pattern a real vLLM
 * preemption produces at the cudaMemcpy level.
 */
class LifoGroupRecognizer : public PatternRecognizer
{
  public:
    const char *name() const override { return "lifo-group"; }

    std::vector<PredictedSwap> predict(const SwapHistory &history,
                                       std::size_t n) const override;
};

/**
 * First-order Markov (frequency) predictor — a lightweight stand-in
 * for the paper's future-work direction of *learning* the predictor f
 * instead of hand-writing pattern rules (§5.1). It counts observed
 * successor frequencies per chunk and replays the most likely chain.
 * Unlike the suffix matcher it tolerates noisy cycles (occasional
 * skips or substitutions) at the cost of shorter reliable horizons.
 */
class MarkovRecognizer : public PatternRecognizer
{
  public:
    /** @param min_support successor count needed before predicting */
    explicit MarkovRecognizer(unsigned min_support = 2);

    const char *name() const override { return "markov"; }

    std::vector<PredictedSwap> predict(const SwapHistory &history,
                                       std::size_t n) const override;

  private:
    unsigned min_support_;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_PATTERNS_HH
