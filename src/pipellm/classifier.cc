#include "pipellm/classifier.hh"

#include <cmath>

namespace pipellm {
namespace core {

const char *
toString(TransferClass c)
{
    switch (c) {
      case TransferClass::Small:
        return "small";
      case TransferClass::ModelOffload:
        return "model-offload";
      case TransferClass::KvSwap:
        return "kv-swap";
      case TransferClass::OtherSwap:
        return "other-swap";
    }
    return "?";
}

SwapClassifier::SwapClassifier(const ClassifierConfig &config)
    : config_(config)
{
}

bool
SwapClassifier::matches(std::uint64_t len, std::uint64_t target) const
{
    if (target == 0)
        return false;
    double rel = std::abs(double(len) - double(target)) / double(target);
    return rel <= config_.tolerance;
}

TransferClass
SwapClassifier::classify(std::uint64_t len) const
{
    if (len < config_.swap_threshold)
        return TransferClass::Small;
    if (matches(len, config_.layer_param_bytes))
        return TransferClass::ModelOffload;
    if (matches(len, config_.kv_unit_bytes))
        return TransferClass::KvSwap;
    return TransferClass::OtherSwap;
}

bool
SwapClassifier::isSwap(std::uint64_t len) const
{
    return classify(len) != TransferClass::Small;
}

} // namespace core
} // namespace pipellm
