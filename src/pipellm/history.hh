/**
 * @file
 * The predictor's view of past swapping activity (paper §5.1).
 *
 * The predictor's inputs are (1) the swap-in batch history
 * [B_0..B_n] — a batch being the set of memcpys between two
 * synchronizations — (2) the set of currently swapped-out chunks, in
 * swap-out order, and (3) the current IV. This class maintains (1)
 * and (2); the IV lives with the pipeline.
 */

#ifndef PIPELLM_PIPELLM_HISTORY_HH
#define PIPELLM_PIPELLM_HISTORY_HH

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "pipellm/chunk.hh"

namespace pipellm {
namespace core {

/** Rolling record of swap-ins, batch boundaries, and swap-outs. */
class SwapHistory
{
  public:
    /** @param cap maximum flattened swap-ins retained */
    explicit SwapHistory(std::size_t cap = 1024);

    /** Record a swap-in (H2D of a swap-class chunk). */
    void noteSwapIn(const ChunkId &chunk);

    /** Record a swap-out (D2H of a swap-class chunk). */
    void noteSwapOut(const ChunkId &chunk);

    /** Record a synchronization (closes the current batch). */
    void noteBatchBoundary();

    /** Flattened swap-in sequence, oldest first. */
    const std::deque<ChunkId> &swapIns() const { return swap_ins_; }

    /** Batch index of each recorded swap-in (parallel to swapIns). */
    const std::deque<std::uint32_t> &batchIds() const {
        return batch_ids_;
    }

    /** One swapped-out chunk and the batch it was swapped out in. */
    struct OutEntry
    {
        ChunkId chunk;
        std::uint32_t batch = 0;
    };

    /**
     * Chunks currently resident on the host awaiting swap-in, in
     * swap-out order (oldest first), tagged with their swap-out
     * batch (a preemption event swaps a group out in one batch).
     */
    const std::deque<OutEntry> &outstanding() const {
        return outstanding_;
    }

    /** True if @p chunk is currently swapped out. */
    bool isOutstanding(const ChunkId &chunk) const;

    /** Swap-ins recorded in the still-open batch. */
    std::size_t openBatchSize() const { return open_batch_; }

    /** Monotone batch counter (tags swap-ins and swap-outs). */
    std::uint32_t currentBatch() const { return current_batch_; }

    std::uint64_t totalSwapIns() const { return total_swap_ins_; }
    std::uint64_t totalSwapOuts() const { return total_swap_outs_; }
    std::uint64_t batches() const { return batches_; }

  private:
    std::size_t cap_;
    std::deque<ChunkId> swap_ins_;
    std::deque<std::uint32_t> batch_ids_;
    std::uint32_t current_batch_ = 0;
    std::deque<OutEntry> outstanding_;
    std::unordered_set<ChunkId, ChunkIdHash> outstanding_set_;
    std::size_t open_batch_ = 0;
    bool out_open_ = false;
    std::uint64_t total_swap_ins_ = 0;
    std::uint64_t total_swap_outs_ = 0;
    std::uint64_t batches_ = 0;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_HISTORY_HH
