#include "pipellm/pipeline.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace pipellm {
namespace core {

SpeculativePipeline::SpeculativePipeline(
    mem::SparseMemory &host, const crypto::SecureChannel &channel,
    crypto::CryptoLanes &enc_lanes, Predictor &predictor,
    const PipeLlmConfig &config)
    : host_(host), channel_(channel), enc_lanes_(enc_lanes),
      predictor_(predictor), config_(config)
{
}

SpeculativePipeline::~SpeculativePipeline()
{
    relinquish();
}

void
SpeculativePipeline::protectSlot(SlotList::iterator it)
{
    // The handler invalidates every entry of this chunk: the same
    // plaintext may be queued more than once (pre-encrypted for two
    // future cycles under different IVs), and an update stales all of
    // them.
    ChunkId chunk = it->entry.chunk;
    host_.protection().protect(
        chunk.addr, chunk.len, mem::Protection::NoWrite,
        [this, chunk](Addr, bool) -> Tick {
            for (auto &slot : entries_) {
                if (slot.valid && slot.entry.chunk == chunk) {
                    slot.valid = false;
                    slot.protected_pages = false;
                    ++stats_.invalidated_by_fault;
                }
            }
            auto &fs = fault_history_[chunk];
            ++fs.streak;
            fs.last_batch = batch_counter_;
            host_.protection().unprotect(chunk.addr, chunk.len);
            return 0;
        });
    it->protected_pages = true;
}

void
SpeculativePipeline::unprotectSlot(SlotList::iterator it)
{
    if (!it->protected_pages)
        return;
    it->protected_pages = false;
    // Keep the pages protected while another live entry still relies
    // on this plaintext.
    for (const auto &slot : entries_) {
        if (&slot != &*it && slot.valid && slot.protected_pages &&
            slot.entry.chunk == it->entry.chunk) {
            return;
        }
    }
    host_.protection().unprotect(it->entry.chunk.addr,
                                 it->entry.chunk.len);
}

void
SpeculativePipeline::eraseSlot(SlotList::iterator it, bool discard)
{
    unprotectSlot(it);
    bytes_held_ -= it->entry.chunk.len;
    // Every drop routes through here; record it so the tag ledger
    // drains (a consumed entry lives on in the caller and is settled
    // when its blob is sent or goes stale).
    if (discard) {
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            it->entry.blob.audit_serial));
    }
    entries_.erase(it);
}

void
SpeculativePipeline::dropInvalid()
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        bool gone = !host_.covered(it->entry.chunk.addr,
                                   it->entry.chunk.len);
        if (!it->valid || gone) {
            auto dead = it++;
            eraseSlot(dead);
        } else {
            ++it;
        }
    }
}

SpeculativePipeline::AddResult
SpeculativePipeline::addEntry(const ChunkId &chunk, Tick now)
{
    // Write-hot chunks are not worth encrypting (the plaintext will
    // change before use), but their position in the predicted
    // sequence is real: the caller reserves the IV instead. This
    // outranks the capacity checks — a reservation costs no memory.
    auto fs = fault_history_.find(chunk);
    if (fs != fault_history_.end() && fs->second.streak >= 2 &&
        batch_counter_ - fs->second.last_batch < 32) {
        return AddResult::WriteHot;
    }

    if (entries_.size() >= config_.pipeline_depth)
        return AddResult::Full;
    if (bytes_held_ + chunk.len > config_.max_pipeline_bytes)
        return AddResult::Full;
    if (enc_lanes_.earliestFree() > now + config_.max_lane_lead)
        return AddResult::Full; // lanes saturated; booking helps nobody
    if (!host_.covered(chunk.addr, chunk.len))
        return AddResult::SkipChunk; // region freed since prediction

    // Read the plaintext sample; if the chunk is still being
    // asynchronously decrypted, the read resolves the fault and
    // reports when the plaintext is actually available.
    std::uint64_t n = channel_.sampledLen(chunk.len);
    std::vector<std::uint8_t> sample(n);
    Tick src_ready = host_.read(chunk.addr, sample.data(), n);

    Slot slot;
    slot.entry.chunk = chunk;
    slot.entry.iv = next_iv_++;
    slot.entry.ready_at = enc_lanes_.submitNotBefore(
        std::max(now, src_ready), chunk.len);
    slot.entry.blob = channel_.seal(crypto::Direction::HostToDevice,
                                    slot.entry.iv, sample.data(),
                                    chunk.len);
    bytes_held_ += chunk.len;
    ++stats_.pre_encrypted;
    stats_.pre_encrypted_bytes += chunk.len;

    entries_.push_back(std::move(slot));
    protectSlot(std::prev(entries_.end()));
    return AddResult::Added;
}

void
SpeculativePipeline::noteSmall()
{
    ++smalls_accum_;
}

void
SpeculativePipeline::noteSwapRequest()
{
    ++swaps_this_batch_;
    paused_ = false;
}

void
SpeculativePipeline::noteBatch()
{
    ++batch_counter_;

    if (rebuild_pending_) {
        // Rebuild the whole plan against the current predictions; the
        // dropped claims' IVs were never exposed and are reclaimed.
        std::uint64_t lowest = next_iv_;
        for (const auto &slot : entries_)
            lowest = std::min(lowest, slot.entry.iv);
        for (const auto &res : reservations_)
            lowest = std::min(lowest, res.iv);
        while (!entries_.empty()) {
            ++stats_.relinquished;
            eraseSlot(entries_.begin());
        }
        reservations_.clear();
        next_iv_ = lowest;
        rebuild_pending_ = false;
        ++stats_.rebuilds;
    }

    if (swaps_this_batch_ == 0)
        return; // smalls keep accumulating toward the next swap batch
    if (!have_batch_stats_) {
        swaps_ema_ = double(swaps_this_batch_);
        smalls_ema_ = double(smalls_accum_);
        have_batch_stats_ = true;
    } else {
        swaps_ema_ = 0.7 * swaps_ema_ + 0.3 * double(swaps_this_batch_);
        smalls_ema_ = 0.7 * smalls_ema_ + 0.3 * double(smalls_accum_);
    }
    swaps_this_batch_ = 0;
    smalls_accum_ = 0;
}

void
SpeculativePipeline::refill(Tick now, std::uint64_t cpu_iv_current)
{
    if (!config_.speculation || paused_)
        return;
    dropInvalid();

    // GC: claims whose IV has already been consumed are dead.
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->entry.iv < cpu_iv_current) {
            auto dead = it++;
            eraseSlot(dead);
        } else {
            ++it;
        }
    }
    reservations_.remove_if([cpu_iv_current](const Reservation &r) {
        return r.iv < cpu_iv_current;
    });

    // IVs already consumed by real transfers can never be used by a
    // speculative entry; when (re)starting, also reserve leeway IVs
    // for interleaved small transfers (§5.1).
    std::uint64_t floor = cpu_iv_current + config_.iv_leeway;
    if (entries_.empty() && reservations_.empty() && next_iv_ < floor)
        next_iv_ = floor;

    if (entries_.size() >= config_.pipeline_depth)
        return;

    // Wide window: the plan may contain holes (consumed-in-place
    // positions), so the predictions must reach well past the last
    // existing claim before we can append or judge staleness.
    auto predicted = predictor_.predictNext(
        2 * (config_.pipeline_depth + entries_.size() +
             reservations_.size()) + 4);

    // Positional matching: the plan (entries + reservations, in IV
    // order) must remain an ordered subsequence of the predicted
    // stream. New claims are appended only after every existing claim
    // has been located in the predictions — this is what keeps
    // cycle k+1's entries from ever being positioned before cycle k's
    // reservations.
    struct Claim
    {
        ChunkId chunk;
        std::uint64_t iv;
    };
    std::vector<Claim> claims;
    {
        auto e = entries_.begin();
        auto r = reservations_.begin();
        while (e != entries_.end() || r != reservations_.end()) {
            bool take_entry =
                e != entries_.end() &&
                (r == reservations_.end() || e->entry.iv < r->iv);
            if (take_entry) {
                claims.push_back(Claim{e->entry.chunk, e->entry.iv});
                ++e;
            } else {
                claims.push_back(Claim{r->chunk, r->iv});
                ++r;
            }
        }
    }

    // Head divergence: the imminent prediction is not the plan head.
    // Appending would only deepen the misorder; mark the plan for a
    // rebuild at the batch boundary and serve what we have meanwhile.
    if (!claims.empty() && !predicted.empty() &&
        !(claims[0].chunk == predicted[0].chunk)) {
        rebuild_pending_ = true;
        return;
    }

    std::size_t ci = 0;
    for (const auto &pred : predicted) {
        const ChunkId &chunk = pred.chunk;
        if (ci < claims.size()) {
            if (claims[ci].chunk == chunk)
                ++ci;
            // An unmatched prediction below existing claims is a
            // hole (its claim was consumed out of order or dropped);
            // the demand send will consume its IV in place.
            continue;
        }
        // Leeway gap at a predicted batch boundary (§5.1): the small
        // transfers interleaving at synchronization points consume
        // these IVs instead of colliding with pre-encrypted entries.
        // The bump is reverted if no claim follows it, so repeated
        // refills cannot widen the gap.
        std::uint64_t saved_iv = next_iv_;
        if (pred.batch_start && have_batch_stats_ &&
            smalls_ema_ > 0.05) {
            // Over-reserve: an exhausted gap costs a tail relinquish
            // (re-encrypting real data), while an unused gap IV costs
            // one 1-byte NOP (§5.3, Fig. 10: NOP overhead is small).
            next_iv_ += std::uint64_t(std::ceil(smalls_ema_)) + 8;
            ++stats_.gaps_inserted;
            stats_.gap_ivs += next_iv_ - saved_iv;
        }
        auto result = addEntry(chunk, now);
        if (result == AddResult::Full) {
            next_iv_ = saved_iv;
            break;
        }
        if (result == AddResult::SkipChunk) {
            next_iv_ = saved_iv;
            continue;
        }
        if (result == AddResult::WriteHot) {
            if (reservations_.size() < 2 * config_.pipeline_depth) {
                reservations_.push_back(Reservation{chunk, next_iv_++});
                ++stats_.reservations;
            } else {
                next_iv_ = saved_iv;
            }
        }
    }

    // Claims that no longer appear anywhere in the predicted stream
    // are stale mispredictions; left alone they would starve all
    // future appends. Relinquish from the first unmatched claim —
    // the freed IVs are reused (never exposed, §6).
    if (!predicted.empty() && ci < claims.size() &&
        entries_.size() < config_.pipeline_depth) {
        ++stats_.stale_cuts;
        std::uint64_t cut = claims[ci].iv;
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->entry.iv >= cut) {
                auto dead = it++;
                ++stats_.relinquished;
                eraseSlot(dead);
            } else {
                ++it;
            }
        }
        reservations_.remove_if(
            [cut](const Reservation &r) { return r.iv >= cut; });
        next_iv_ = cut;
    }
}

std::optional<PreencEntry>
SpeculativePipeline::find(const ChunkId &chunk) const
{
    for (const auto &slot : entries_) {
        if (slot.valid && slot.entry.chunk == chunk)
            return slot.entry;
    }
    return std::nullopt;
}

void
SpeculativePipeline::consume(std::uint64_t iv)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->entry.iv == iv) {
            ++stats_.consumed;
            // A successful use clears the chunk's write-hot record.
            fault_history_.erase(it->entry.chunk);
            eraseSlot(it, /*discard=*/false);
            return;
        }
    }
}

void
SpeculativePipeline::invalidateIv(std::uint64_t iv, Tick now)
{
    (void)now;
    // Reserved IVs are *meant* to be consumed by demand sends.
    for (auto it = reservations_.begin(); it != reservations_.end();
         ++it) {
        if (it->iv == iv) {
            ++stats_.reservations_hit;
            reservations_.erase(it);
            return;
        }
    }
    // Stale reservations below the consumed IV can never fire.
    reservations_.remove_if(
        [iv](const Reservation &r) { return r.iv < iv; });

    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->entry.iv != iv)
            continue;
        // A foreign transfer consumed an IV the plan had assigned to
        // real data: every later claim is now positionally shifted,
        // so the plan tail is relinquished (§5.3's error-handling
        // stage, from the divergence point). The freed IVs are safe
        // to reuse — unvalidated ciphertext never leaves CVM private
        // memory (§6), so no observer ever saw them.
        ++stats_.invalidated_by_iv;
        ++stats_.respeculated; // tail relinquish events
        paused_ = true;        // epoch outlived the plan
        while (it != entries_.end()) {
            auto dead = it++;
            ++stats_.relinquished;
            eraseSlot(dead);
        }
        reservations_.remove_if(
            [iv](const Reservation &r) { return r.iv > iv; });
        next_iv_ = iv + 1;
        return;
    }
}

bool
SpeculativePipeline::hasEntryInIvRange(std::uint64_t lo,
                                       std::uint64_t hi) const
{
    for (const auto &slot : entries_) {
        if (slot.valid && slot.entry.iv >= lo && slot.entry.iv < hi)
            return true;
    }
    // A reservation in the gap means a demand send is expected to
    // consume that IV; do not NOP over it.
    for (const auto &res : reservations_) {
        if (res.iv >= lo && res.iv < hi)
            return true;
    }
    return false;
}

std::string
SpeculativePipeline::debugString() const
{
    std::ostringstream os;
    os << "entries:";
    for (const auto &slot : entries_) {
        os << " [iv=" << slot.entry.iv << " 0x" << std::hex
           << slot.entry.chunk.addr << std::dec
           << (slot.valid ? "" : " DEAD") << "]";
    }
    os << " reservations:";
    for (const auto &res : reservations_) {
        os << " [iv=" << res.iv << " 0x" << std::hex << res.chunk.addr
           << std::dec << "]";
    }
    return os.str();
}

void
SpeculativePipeline::relinquish()
{
    while (!entries_.empty()) {
        ++stats_.relinquished;
        eraseSlot(entries_.begin());
    }
    reservations_.clear();
}

} // namespace core
} // namespace pipellm
