#include "pipellm/predictor.hh"

#include <algorithm>

namespace pipellm {
namespace core {

Predictor::Predictor(const PredictorConfig &config)
    : config_(config), history_(config.history_cap)
{
    recognizers_.push_back(std::make_unique<RepetitiveRecognizer>());
    recognizers_.push_back(std::make_unique<FifoRecognizer>());
    recognizers_.push_back(std::make_unique<LifoRecognizer>());
    recognizers_.push_back(std::make_unique<LifoGroupRecognizer>());
    recognizers_.push_back(std::make_unique<MarkovRecognizer>());
    accuracy_.assign(recognizers_.size(), 0.0);
}

void
Predictor::registerRecognizer(std::unique_ptr<PatternRecognizer> rec)
{
    recognizers_.push_back(std::move(rec));
    accuracy_.push_back(0.0);
}

void
Predictor::noteSwapIn(const ChunkId &chunk)
{
    // Score every recognizer's one-step shadow prediction against the
    // arriving ground truth before folding it into the history.
    bool any_hit = false;
    bool any_prediction = false;
    for (std::size_t i = 0; i < recognizers_.size(); ++i) {
        auto shadow = recognizers_[i]->predict(history_, 1);
        double hit = 0.0;
        if (!shadow.empty()) {
            any_prediction = true;
            if (shadow[0].chunk == chunk) {
                hit = 1.0;
                any_hit = true;
            }
        }
        accuracy_[i] = config_.accuracy_decay * accuracy_[i] +
                       (1.0 - config_.accuracy_decay) * hit;
    }
    if (any_prediction) {
        ++shadow_total_;
        shadow_hits_ += any_hit ? 1 : 0;
    }
    history_.noteSwapIn(chunk);
}

void
Predictor::noteSwapOut(const ChunkId &chunk)
{
    history_.noteSwapOut(chunk);
}

void
Predictor::noteBatchBoundary()
{
    history_.noteBatchBoundary();
}

std::size_t
Predictor::bestRecognizer() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < accuracy_.size(); ++i) {
        if (accuracy_[i] > accuracy_[best])
            best = i;
    }
    return best;
}

std::vector<PredictedSwap>
Predictor::predictNext(std::size_t n) const
{
    auto pred = recognizers_[bestRecognizer()]->predict(history_, n);
    if (pred.empty()) {
        // Fall back to any recognizer with a signal.
        for (const auto &r : recognizers_) {
            pred = r->predict(history_, n);
            if (!pred.empty())
                break;
        }
    }
    if (config_.sabotage_sequence && pred.size() > 1)
        std::rotate(pred.begin(), pred.begin() + 1, pred.end());
    return pred;
}

const char *
Predictor::activePattern() const
{
    return recognizers_[bestRecognizer()]->name();
}

} // namespace core
} // namespace pipellm
