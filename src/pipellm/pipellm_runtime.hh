/**
 * @file
 * The PipeLLM runtime (paper §5): a drop-in RuntimeApi that hides
 * CC encryption latency behind speculative pipelined encryption.
 *
 * H2D swaps hit the speculative pipeline; the API call never blocks
 * on encryption. IV mismatches are absorbed by swap re-ordering
 * (within a batch, deferred sends) and NOP padding (§5.3, Figure 6);
 * only an entry whose IV fell below the current counter is discarded.
 * D2H swaps return before decryption (§5.4), with read/write access
 * revoked on the placeholder until the decrypt lane finishes;
 * a touch faults into a synchronous decrypt.
 */

#ifndef PIPELLM_PIPELLM_PIPELLM_RUNTIME_HH
#define PIPELLM_PIPELLM_PIPELLM_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "crypto/engine.hh"
#include "crypto/iv.hh"
#include "fault/degraded.hh"
#include "pipellm/async_decryptor.hh"
#include "pipellm/classifier.hh"
#include "pipellm/config.hh"
#include "pipellm/pipeline.hh"
#include "pipellm/predictor.hh"
#include "runtime/api.hh"
#include "runtime/staged_path.hh"

namespace pipellm {
namespace core {

/** PipeLLM-specific statistics (beyond RuntimeStats). */
struct PipeLlmStats
{
    std::uint64_t swap_requests = 0;
    /** Requests served from a pre-encrypted entry. */
    std::uint64_t hits = 0;
    /** Requests encrypted on demand. */
    std::uint64_t misses = 0;
    /** Entries dropped because their IV fell below the counter. */
    std::uint64_t stale_drops = 0;
    /** Hits whose send had to wait for a lower-IV sibling (§5.3). */
    std::uint64_t reordered = 0;
    /** NOP transfers sent to advance the IV (§5.3). */
    std::uint64_t nops = 0;
    /** NOPs sent eagerly before an in-order hit (unfillable gap). */
    std::uint64_t nops_eager = 0;
    /** NOPs sent while flushing deferred sends at a sync. */
    std::uint64_t nops_flush = 0;
    /** D2H transfers decrypted off the critical path (§5.4). */
    std::uint64_t async_decrypts = 0;
    /** Usage-before-decryption faults resolved synchronously. */
    std::uint64_t decrypt_faults = 0;
    std::uint64_t on_demand_bytes = 0;
};

/** User-transparent speculative-pipelined-encryption runtime. */
class PipeLlmRuntime : public runtime::RuntimeApi
{
  public:
    /**
     * @param device the cluster device this runtime drives; all
     *        speculative state (pipeline, predictor, classifier, IV
     *        counters) is private to this instance, so speculation on
     *        one GPU can never consume another GPU's IVs
     */
    PipeLlmRuntime(runtime::Platform &platform,
                   const PipeLlmConfig &config = PipeLlmConfig{},
                   runtime::DeviceId device = 0);

    const char *name() const override { return "PipeLLM"; }

    runtime::ApiResult memcpyAsync(runtime::CopyKind kind, Addr dst,
                                   Addr src, std::uint64_t len,
                                   runtime::Stream &stream,
                                   Tick now) override;

    /** Flushes deferred sends (NOP padding) then waits for streams. */
    Tick synchronize(Tick now) override;

    const PipeLlmStats &pipeStats() const
    {
        // The async-decrypt counters live in the extracted decryptor
        // (its fault hook fires long after the copy call); mirror them
        // here so callers keep one stats struct.
        pipe_stats_.async_decrypts = decryptor_.asyncDecrypts();
        pipe_stats_.decrypt_faults = decryptor_.faults();
        return pipe_stats_;
    }
    const PipelineStats &pipelineStats() const {
        return pipeline_.stats();
    }
    Predictor &predictor() { return predictor_; }
    const PipeLlmConfig &config() const { return config_; }

    /** CPU-side next-IV counters, for tests. */
    std::uint64_t h2dCounter() const { return h2d_iv_.current(); }
    std::uint64_t d2hCounter() const { return d2h_iv_.current(); }

    /** Pipeline plan dump for debugging. */
    std::string pipelineDebug() const { return pipeline_.debugString(); }

    /** Deferred (re-ordered) sends currently waiting. */
    std::size_t pendingSends() const { return pending_.size(); }

    /** Fault-storm controller (exposed for tests). */
    fault::DegradedModeController &degraded() { return degraded_; }

    fault::FaultReport faultReport() const override;

    /**
     * Base re-key plus a teardown of every piece of speculative
     * state bound to the dead session: CPU IV counters reset, the
     * pre-encryption pipeline relinquished (its ciphertexts are
     * unverifiable under the new key), deferred sends discarded, and
     * the degraded-mode fault history cleared. The predictor's
     * learned access patterns live in the CVM and survive.
     */
    Tick restart(Tick now) override;

  private:
    struct PendingSend
    {
        PreencEntry entry;
        Addr dst = 0;
        runtime::Stream *stream = nullptr;
    };

    runtime::ApiResult copyH2d(Addr dst, Addr src, std::uint64_t len,
                               runtime::Stream &stream, Tick now);
    runtime::ApiResult copyD2h(Addr dst, Addr src, std::uint64_t len,
                               runtime::Stream &stream, Tick now);

    /** Send a validated entry; requires entry.iv == current IV. */
    Tick sendEntry(const PreencEntry &entry, Addr dst,
                   runtime::Stream &stream, Tick now);

    /**
     * Encrypt + send at the current IV. An idle worker lane takes the
     * encryption without blocking the caller; otherwise the calling
     * thread encrypts (stock CC behavior).
     * @return tick at which the caller resumes
     */
    Tick sendOnDemand(Addr dst, Addr src, std::uint64_t len,
                      runtime::Stream &stream, Tick now);

    /** 1-byte dummy transfer advancing both IV counters (§5.3). */
    void sendNop(Tick now);

    /**
     * Commit @p sent to the device, recovering from injected tag
     * faults by re-encrypting at a fresh IV (which invalidates any
     * speculative entry planned on that counter) and re-crossing the
     * staged path. With no fault plan armed this is exactly
     * commitEncrypted.
     * @param nop true when the blob is a 1-byte NOP (no host source)
     * @return completion tick including any retries
     */
    Tick deliverH2d(const crypto::CipherBlob &sent, Addr dst, Addr src,
                    std::uint64_t len, bool nop, Tick done);

    /**
     * Account one injected-tag-fault retry at @p now; trips the
     * degraded-mode controller (relinquishing the speculative plan)
     * on a fault storm, and panics past the plan's retry budget.
     */
    void noteTagRetry(unsigned &attempt, Tick now);

    /** Send every deferred entry whose IV equals the counter. */
    void drainPending(Tick now);

    /** NOP-pad and send all deferred entries (batch boundary). */
    void flushPending(Tick now);

    PipeLlmConfig config_;
    SwapClassifier classifier_;
    Predictor predictor_;
    crypto::CryptoLanes enc_lanes_;
    AsyncDecryptor decryptor_;
    SpeculativePipeline pipeline_;
    crypto::IvCounter h2d_iv_{crypto::Direction::HostToDevice};
    crypto::IvCounter d2h_iv_{crypto::Direction::DeviceToHost};
    std::vector<PendingSend> pending_;
    mem::Region nop_scratch_;
    fault::DegradedModeController degraded_;
    mutable PipeLlmStats pipe_stats_;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_PIPELLM_RUNTIME_HH
