#include "pipellm/patterns.hh"

#include <algorithm>
#include <unordered_map>

namespace pipellm {
namespace core {

RepetitiveRecognizer::RepetitiveRecognizer(std::size_t max_context,
                                           std::size_t scan_limit)
    : max_context_(max_context), scan_limit_(scan_limit)
{
}

namespace {

/**
 * Length of the common suffix between h[..i) and h[..j), capped.
 * Indices are positions one past the suffix end.
 */
std::size_t
commonSuffix(const std::vector<ChunkId> &h, std::size_t i,
             std::size_t j, std::size_t cap)
{
    std::size_t l = 0;
    while (l < cap && l < i && l < j && h[i - 1 - l] == h[j - 1 - l])
        ++l;
    return l;
}

} // namespace

std::vector<PredictedSwap>
RepetitiveRecognizer::predict(const SwapHistory &history,
                              std::size_t n) const
{
    // Work on mutable copies so multi-step prediction can extend the
    // sequence with its own guesses; batch ids extend in parallel so
    // boundary predictions replay the source cycle's boundaries.
    std::vector<ChunkId> h(history.swapIns().begin(),
                           history.swapIns().end());
    std::vector<std::uint32_t> b(history.batchIds().begin(),
                                 history.batchIds().end());
    if (h.size() < 2)
        return {};

    std::vector<PredictedSwap> out;
    std::uint32_t synthetic_batch = b.empty() ? 0 : b.back();
    for (std::size_t step = 0; step < n; ++step) {
        std::size_t m = h.size();
        std::size_t best_len = 0;
        std::size_t best_j = 0;
        // Find the earlier position with the longest matching context.
        // Scan backwards so ties prefer the most recent occurrence;
        // the scan is bounded so degenerate histories stay cheap.
        std::size_t j_min =
            m - 1 > scan_limit_ ? m - 1 - scan_limit_ : 1;
        for (std::size_t j = m - 1; j >= j_min; --j) {
            if (h[j - 1] == h[m - 1]) {
                std::size_t l = commonSuffix(h, j, m, max_context_);
                if (l > best_len) {
                    best_len = l;
                    best_j = j;
                    if (l >= max_context_)
                        break;
                }
            }
        }
        if (best_len == 0)
            break;

        // What followed the matched context, and whether a batch
        // boundary sat between the matched position and its successor.
        ChunkId next = h[best_j];
        bool boundary = b[best_j] != b[best_j - 1];
        if (boundary)
            ++synthetic_batch;
        out.push_back(PredictedSwap{next, boundary});
        h.push_back(next);
        b.push_back(synthetic_batch);
    }
    return out;
}

std::vector<PredictedSwap>
FifoRecognizer::predict(const SwapHistory &history, std::size_t n) const
{
    const auto &out = history.outstanding();
    std::vector<PredictedSwap> pred;
    for (auto it = out.begin(); it != out.end() && pred.size() < n; ++it)
        pred.push_back(PredictedSwap{it->chunk, false});
    return pred;
}

std::vector<PredictedSwap>
LifoRecognizer::predict(const SwapHistory &history, std::size_t n) const
{
    const auto &out = history.outstanding();
    std::vector<PredictedSwap> pred;
    for (auto it = out.rbegin(); it != out.rend() && pred.size() < n;
         ++it) {
        pred.push_back(PredictedSwap{it->chunk, false});
    }
    return pred;
}

std::vector<PredictedSwap>
LifoGroupRecognizer::predict(const SwapHistory &history,
                             std::size_t n) const
{
    const auto &out = history.outstanding();
    std::vector<PredictedSwap> pred;
    if (out.empty())
        return pred;
    // Only the newest group (the run of equal swap-out batch at the
    // tail) is predicted, in its original block order. Older groups
    // resume much later — under LIFO, usually after yet another
    // preemption has re-planned everything — so claims on them would
    // mostly be relinquished waste.
    auto group_begin = out.end();
    std::uint32_t tag = std::prev(out.end())->batch;
    while (group_begin != out.begin() &&
           std::prev(group_begin)->batch == tag) {
        --group_begin;
    }

    // A *freshly* preempted group is worth pre-encrypting in full (it
    // resumes first under LIFO, often soon). A stale group — one that
    // has merely become the tail after newer groups resumed — will
    // either resume slowly (light load; the window refills as blocks
    // are consumed) or be displaced by another preemption (heavy
    // load), so only a small prefix is speculated.
    bool fresh = tag + 4 >= history.currentBatch();
    std::size_t limit = fresh ? n : std::min<std::size_t>(n, 32);

    bool first = true;
    for (auto it = group_begin;
         it != out.end() && pred.size() < limit; ++it) {
        pred.push_back(PredictedSwap{it->chunk, first});
        first = false;
    }
    return pred;
}

MarkovRecognizer::MarkovRecognizer(unsigned min_support)
    : min_support_(min_support)
{
}

std::vector<PredictedSwap>
MarkovRecognizer::predict(const SwapHistory &history,
                          std::size_t n) const
{
    const auto &h = history.swapIns();
    const auto &b = history.batchIds();
    if (h.size() < 2)
        return {};

    // Successor frequency table, built per call from the rolling
    // history (capped, so this stays cheap); tracks whether the
    // transition most often crosses a batch boundary.
    struct Edge
    {
        unsigned count = 0;
        unsigned boundary = 0;
    };
    std::unordered_map<ChunkId,
                       std::unordered_map<ChunkId, Edge, ChunkIdHash>,
                       ChunkIdHash>
        successors;
    // Bound the rebuild to a recent window; the table is rebuilt on
    // every prediction, so the window caps per-call cost.
    std::size_t first = h.size() > 256 ? h.size() - 256 : 0;
    for (std::size_t i = first; i + 1 < h.size(); ++i) {
        auto &edge = successors[h[i]][h[i + 1]];
        ++edge.count;
        if (b[i + 1] != b[i])
            ++edge.boundary;
    }

    std::vector<PredictedSwap> out;
    ChunkId cur = h.back();
    std::unordered_map<ChunkId, unsigned, ChunkIdHash> visits;
    while (out.size() < n) {
        auto it = successors.find(cur);
        if (it == successors.end())
            break;
        const ChunkId *best = nullptr;
        const Edge *best_edge = nullptr;
        for (const auto &[next, edge] : it->second) {
            if (!best || edge.count > best_edge->count) {
                best = &next;
                best_edge = &edge;
            }
        }
        if (!best || best_edge->count < min_support_)
            break;
        // Avoid spinning forever on tight sub-loops the chain cannot
        // leave: stop after revisiting a chunk a few times.
        if (++visits[*best] > 4)
            break;
        bool boundary = best_edge->boundary * 2 > best_edge->count;
        out.push_back(PredictedSwap{*best, boundary});
        cur = *best;
    }
    return out;
}

} // namespace core
} // namespace pipellm
