/**
 * @file
 * PipeLLM runtime configuration knobs.
 */

#ifndef PIPELLM_PIPELLM_CONFIG_HH
#define PIPELLM_PIPELLM_CONFIG_HH

#include <cstdint>

#include "common/units.hh"
#include "fault/degraded.hh"
#include "pipellm/classifier.hh"
#include "pipellm/predictor.hh"

namespace pipellm {
namespace core {

/** Full configuration of a PipeLlmRuntime. */
struct PipeLlmConfig
{
    /**
     * CPU threads dedicated to speculative encryption. The paper uses
     * one for vLLM and several for FlexGen-style model offloading,
     * which must keep up with the 40 GB/s copy path (§7.2).
     */
    unsigned enc_lanes = 2;
    /** CPU threads for (asynchronous) decryption. */
    unsigned dec_lanes = 1;

    /** Maximum speculatively encrypted chunks held at once. */
    unsigned pipeline_depth = 8;
    /** Ciphertext budget in CVM private memory. */
    std::uint64_t max_pipeline_bytes = 4 * GiB;
    /**
     * Stop queueing speculative work once every encryption lane is
     * booked this far ahead. Deeper booking cannot make any entry
     * ready sooner (the lanes are the supply), but it multiplies the
     * work thrown away when a misprediction relinquishes the plan.
     */
    Tick max_lane_lead = milliseconds(100);

    /**
     * IV slack reserved for interleaved small transfers (§5.1): the
     * first speculative chunk is encrypted with IV_cur + leeway so
     * that small I/O can consume IVs without invalidating the
     * pipeline head.
     */
    std::uint64_t iv_leeway = 2;

    /** §5.4 asynchronous decryption (ablation switch). */
    bool async_decrypt = true;
    /** Speculative pre-encryption (ablation: off = on-demand only). */
    bool speculation = true;

    ClassifierConfig classifier;
    PredictorConfig predictor;

    /**
     * Fault-storm response: when injected transfer faults cluster,
     * speculation is suspended (on-demand CC fallback) until the
     * channel has been quiet for a cooldown. Irrelevant unless a
     * fault plan is armed on the platform.
     */
    fault::DegradedConfig degraded;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_CONFIG_HH
