/**
 * @file
 * The speculative encryption pipeline and its validator
 * (paper §4.3, §5.2).
 *
 * Prediction stage: chunks named by the predictor are encrypted ahead
 * of time on dedicated CPU lanes, each bound to a *future* IV
 * (IV_cur + leeway + position). Ciphertext stays in CVM private
 * memory until validated (§6).
 *
 * Validation stage: each entry's plaintext pages are write-protected
 * (MPK); a write by the application faults, invalidates the entry,
 * and restores access — so a stale ciphertext can never be sent. At
 * request time the entry is additionally matched by (address, length)
 * label and by IV viability.
 */

#ifndef PIPELLM_PIPELLM_PIPELINE_HH
#define PIPELLM_PIPELLM_PIPELINE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>

#include "crypto/channel.hh"
#include "crypto/engine.hh"
#include "crypto/iv.hh"
#include "mem/sparse_memory.hh"
#include "pipellm/chunk.hh"
#include "pipellm/config.hh"
#include "pipellm/predictor.hh"

namespace pipellm {
namespace core {

/** One speculatively encrypted transfer. */
struct PreencEntry
{
    ChunkId chunk;
    /** IV counter value this ciphertext was sealed under. */
    std::uint64_t iv = 0;
    crypto::CipherBlob blob;
    /** Tick at which the encryption lane finishes producing it. */
    Tick ready_at = 0;
};

/** Pipeline statistics. */
struct PipelineStats
{
    std::uint64_t pre_encrypted = 0;
    std::uint64_t pre_encrypted_bytes = 0;
    std::uint64_t invalidated_by_fault = 0;
    std::uint64_t invalidated_by_iv = 0;
    /** Entries re-encrypted at the tail after an IV collision. */
    std::uint64_t respeculated = 0;
    /** IVs reserved for predicted-but-write-hot chunks. */
    std::uint64_t reservations = 0;
    /** Reserved IVs consumed exactly in place by a demand send. */
    std::uint64_t reservations_hit = 0;
    std::uint64_t consumed = 0;
    std::uint64_t relinquished = 0;
    /** Full-plan rebuilds triggered by head divergence. */
    std::uint64_t rebuilds = 0;
    /** Tail cuts because claims vanished from the predictions. */
    std::uint64_t stale_cuts = 0;
    /** Leeway gaps inserted and total IVs they reserved. */
    std::uint64_t gaps_inserted = 0;
    std::uint64_t gap_ivs = 0;
};

/** Manager of pre-encrypted chunks with MPK-based validation. */
class SpeculativePipeline
{
  public:
    /**
     * @param host the CVM arena holding the plaintext chunks
     * @param channel session crypto
     * @param enc_lanes CPU lanes that produce the ciphertext
     */
    SpeculativePipeline(mem::SparseMemory &host,
                        const crypto::SecureChannel &channel,
                        crypto::CryptoLanes &enc_lanes,
                        Predictor &predictor,
                        const PipeLlmConfig &config);

    ~SpeculativePipeline();

    /**
     * Prediction stage: top the pipeline up to its depth with the
     * predictor's next chunks, assigning IVs from
     * max(speculation head, @p cpu_iv_current + leeway) upward.
     */
    void refill(Tick now, std::uint64_t cpu_iv_current);

    /**
     * Validation stage, label check: the valid entry for @p chunk, or
     * nullopt. The entry remains owned by the pipeline until
     * consume()/invalidate.
     */
    std::optional<PreencEntry> find(const ChunkId &chunk) const;

    /** Remove the entry sealed under @p iv (it was sent or is dead). */
    void consume(std::uint64_t iv);

    /**
     * Another transfer consumed IV @p iv; any entry sealed under it
     * can never be sent. The chunk is immediately *re-speculated* at
     * the pipeline tail with a fresh IV, so one interleaved small
     * transfer costs one re-encryption instead of cascading every
     * later entry into a miss.
     */
    void invalidateIv(std::uint64_t iv, Tick now);

    /** Error-handling stage: drop everything and restart (§5.3). */
    void relinquish();

    /**
     * Leeway bookkeeping (§5.1): the runtime reports small transfers
     * and swap requests; at each batch boundary the pipeline updates
     * its estimate of how many small transfers interleave between
     * swap batches and reserves that many IVs as a gap after each
     * predicted batch of entries.
     */
    void noteSmall();
    void noteSwapRequest();
    void noteBatch();

    /** Swap activity observed (either direction): resume speculation. */
    void unpause() { paused_ = false; }

    /** Current estimated small transfers per swap batch. */
    double smallsPerBatch() const { return smalls_ema_; }
    /** Current estimated swaps per batch. */
    double swapsPerBatch() const { return swaps_ema_; }

    /**
     * True if a valid entry exists with IV in [lo, hi). Used by the
     * error handler to decide between suspending a request (a
     * lower-IV sibling may still be requested, Figure 6) and padding
     * NOPs immediately (nothing can fill the gap).
     */
    bool hasEntryInIvRange(std::uint64_t lo, std::uint64_t hi) const;

    /** Entries currently held. */
    std::size_t depth() const { return entries_.size(); }

    /** Ciphertext bytes held in private memory. */
    std::uint64_t bytesHeld() const { return bytes_held_; }

    /** Highest IV assigned so far + 1 (the speculation head). */
    std::uint64_t speculationHead() const { return next_iv_; }

    const PipelineStats &stats() const { return stats_; }

    /** Human-readable dump of entries and reservations (debugging). */
    std::string debugString() const;

  private:
    struct Slot
    {
        PreencEntry entry;
        bool valid = true;
        bool protected_pages = false;
    };

    using SlotList = std::list<Slot>;

    /** Outcome of trying to queue one more speculative entry. */
    enum class AddResult
    {
        Added,     ///< entry queued and encryption charged
        SkipChunk, ///< chunk unusable (region freed); try the next
        WriteHot,  ///< chunk mutates every cycle; reserve its IV only
        Full,      ///< depth or byte budget reached; stop refilling
    };

    /** An IV held for a predicted chunk we decline to pre-encrypt. */
    struct Reservation
    {
        ChunkId chunk;
        std::uint64_t iv;
    };

    void protectSlot(SlotList::iterator it);
    void unprotectSlot(SlotList::iterator it);

    /**
     * Remove a slot. @p discard distinguishes a genuine drop (the
     * pre-encrypted blob dies unexposed) from a consume, where the
     * caller takes over the entry and sends its blob later.
     */
    void eraseSlot(SlotList::iterator it, bool discard = true);
    void dropInvalid();

    /** Encrypt @p chunk under the next speculative IV. */
    AddResult addEntry(const ChunkId &chunk, Tick now);

    mem::SparseMemory &host_;
    const crypto::SecureChannel &channel_;
    crypto::CryptoLanes &enc_lanes_;
    Predictor &predictor_;
    PipeLlmConfig config_;

    SlotList entries_;
    std::uint64_t next_iv_ = 0;
    std::uint64_t bytes_held_ = 0;
    PipelineStats stats_;

    // Leeway estimation state.
    double smalls_ema_ = 0.0;
    double swaps_ema_ = 0.0;
    bool have_batch_stats_ = false;
    unsigned smalls_accum_ = 0;
    unsigned swaps_this_batch_ = 0;

    // Write-hot chunk blacklist: chunks whose speculation keeps being
    // fault-invalidated (the application mutates them every cycle,
    // e.g. optimizer-updated adapters) are skipped for a while rather
    // than wasting encryption lanes and IVs on them.
    struct FaultStreak
    {
        unsigned streak = 0;
        std::uint64_t last_batch = 0;
    };
    std::unordered_map<ChunkId, FaultStreak, ChunkIdHash> fault_history_;
    std::uint64_t batch_counter_ = 0;

    /**
     * Set when the plan's head no longer matches the predicted next
     * swap-in (e.g. LIFO predictions prepend on every swap-out). The
     * plan is rebuilt once at the next batch boundary, reusing the
     * never-exposed IVs.
     */
    bool rebuild_pending_ = false;

    /**
     * Set when a small transfer ran the leeway gap dry and collided
     * with the plan: the current no-swap epoch has outlived the plan,
     * so speculating again into the same epoch would just repeat the
     * loss. Cleared by the next swap activity.
     */
    bool paused_ = false;

    /**
     * IVs reserved in sequence position for predicted write-hot
     * chunks: the application will demand-send them, and the demand
     * must land on the IV the surrounding speculation assumed.
     */
    std::list<Reservation> reservations_;
};

} // namespace core
} // namespace pipellm

#endif // PIPELLM_PIPELLM_PIPELINE_HH
