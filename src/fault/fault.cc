#include "fault/fault.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace fault {

std::string
toString(Kind kind)
{
    switch (kind) {
      case Kind::TagCorruption:
        return "TagCorruption";
      case Kind::CopyStall:
        return "CopyStall";
      case Kind::CryptoLaneFault:
        return "CryptoLaneFault";
      case Kind::ReplicaCrash:
        return "ReplicaCrash";
      case Kind::ReplicaRestart:
        return "ReplicaRestart";
      case Kind::MigrationTagFault:
        return "MigrationTagFault";
      case Kind::MigrationStall:
        return "MigrationStall";
      case Kind::DestCrashMidMigration:
        return "DestCrashMidMigration";
    }
    return "UnknownFault";
}

bool
FaultPlan::crashAllowed(std::uint32_t id) const
{
    return crash_devices.empty() ||
           std::find(crash_devices.begin(), crash_devices.end(),
                     id) != crash_devices.end();
}

bool
FaultPlan::armed() const
{
    return tag_corruption_rate > 0 || copy_stall_rate > 0 ||
           lane_fault_rate > 0 || replica_crash_rate > 0 ||
           replica_restart_rate > 0 || migration_tag_rate > 0 ||
           migration_stall_rate > 0 || dest_crash_rate > 0;
}

void
FaultReport::merge(const FaultReport &other)
{
    tag_faults += other.tag_faults;
    tag_retries += other.tag_retries;
    copy_stalls += other.copy_stalls;
    copy_retries += other.copy_retries;
    lane_faults += other.lane_faults;
    replica_crashes += other.replica_crashes;
    replica_restarts += other.replica_restarts;
    restart_rejoin_ticks += other.restart_rejoin_ticks;
    requeued_requests += other.requeued_requests;
    dropped_requests += other.dropped_requests;
    lost_tokens += other.lost_tokens;
    degraded_entries += other.degraded_entries;
    degraded_sends += other.degraded_sends;
    degraded_ticks += other.degraded_ticks;
    retry_latency += other.retry_latency;
    migrations += other.migrations;
    migrated_chunks += other.migrated_chunks;
    discarded_chunks += other.discarded_chunks;
    migration_tag_faults += other.migration_tag_faults;
    migration_retries += other.migration_retries;
    migration_stalls += other.migration_stalls;
    migration_fallbacks += other.migration_fallbacks;
    dest_mid_migration_crashes += other.dest_mid_migration_crashes;
    migrations_rerouted += other.migrations_rerouted;
    speculated_migration_ivs += other.speculated_migration_ivs;
}

std::uint64_t
FaultReport::injectedTotal() const
{
    return tag_faults + copy_stalls + lane_faults + replica_crashes +
           migration_tag_faults + migration_stalls +
           dest_mid_migration_crashes;
}

std::uint64_t
FaultReport::recoveredTotal() const
{
    return tag_retries + copy_retries + lane_faults +
           requeued_requests + replica_restarts + migration_retries +
           migration_fallbacks + migrations_rerouted;
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    PIPELLM_ASSERT(plan.max_transfer_retries > 0,
                   "a zero retry budget cannot recover anything");
    plan_ = plan;
    rng_ = Rng(plan.seed);
    armed_ = plan.armed();
    injected_.fill(0);
}

void
FaultInjector::disarm()
{
    armed_ = false;
}

double
FaultInjector::rateAt(double rate, Tick now) const
{
    // Multiplier 1 must reproduce the storm-free draw sequence
    // bit-for-bit, so the window test is skipped entirely then.
    if (plan_.storm_multiplier == 1)
        return rate;
    if (now < plan_.storm_start || now >= plan_.storm_end)
        return rate;
    return std::min(1.0, rate * plan_.storm_multiplier);
}

bool
FaultInjector::draw(Kind kind, double rate, Tick now)
{
    // The disarmed check comes first so an unarmed injector consumes
    // no Rng state and costs one predictable branch.
    if (!armed_ || rate <= 0)
        return false;
    if (!rng_.bernoulli(rateAt(rate, now)))
        return false;
    ++injected_[std::size_t(kind)];
    return true;
}

bool
FaultInjector::corruptTag(Tick now)
{
    return draw(Kind::TagCorruption, plan_.tag_corruption_rate, now);
}

bool
FaultInjector::stallCopy(Tick now)
{
    return draw(Kind::CopyStall, plan_.copy_stall_rate, now);
}

bool
FaultInjector::failLane(Tick now)
{
    return draw(Kind::CryptoLaneFault, plan_.lane_fault_rate, now);
}

bool
FaultInjector::corruptMigrationChunk(Tick now)
{
    return draw(Kind::MigrationTagFault, plan_.migration_tag_rate,
                now);
}

bool
FaultInjector::stallMigration(Tick now)
{
    return draw(Kind::MigrationStall, plan_.migration_stall_rate, now);
}

bool
FaultInjector::dropDestination(Tick now)
{
    return draw(Kind::DestCrashMidMigration, plan_.dest_crash_rate,
                now);
}

Tick
FaultInjector::drawCrashTime()
{
    if (!armed_ || plan_.replica_crash_rate <= 0)
        return maxTick;
    return rng_.exponentialTicks(plan_.replica_crash_rate);
}

Tick
FaultInjector::drawRestartDelay()
{
    if (!armed_ || plan_.replica_restart_rate <= 0)
        return maxTick;
    return rng_.exponentialTicks(plan_.replica_restart_rate);
}

Tick
FaultInjector::backoff(unsigned attempt)
{
    PIPELLM_ASSERT(attempt >= 1, "backoff attempts are 1-based");
    Tick wait = plan_.copy_backoff_base;
    for (unsigned i = 1; i < attempt && wait < plan_.copy_backoff_cap;
         ++i) {
        wait *= 2;
    }
    wait = std::min(wait, plan_.copy_backoff_cap);
    return wait + rng_.jitterTicks(wait / 2);
}

void
FaultInjector::noteInjected(Kind kind)
{
    ++injected_[std::size_t(kind)];
}

std::uint64_t
FaultInjector::injected(Kind kind) const
{
    return injected_[std::size_t(kind)];
}

} // namespace fault
} // namespace pipellm
