#include "fault/degraded.hh"

#include <algorithm>

namespace pipellm {
namespace fault {

bool
DegradedModeController::noteFault(Tick now)
{
    // Streams hand in slightly out-of-order cursors; clamp so the
    // window arithmetic stays monotone.
    if (!recent_.empty())
        now = std::max(now, recent_.back());
    recent_.push_back(now);
    Tick floor = now > config_.window ? now - config_.window : 0;
    while (!recent_.empty() && recent_.front() < floor)
        recent_.pop_front();

    // While degraded, every further fault pushes the quiet horizon
    // out; speculation only resumes after a full quiet cooldown.
    quiet_after_ = now + config_.cooldown;
    if (!active_ && recent_.size() >= config_.fault_threshold) {
        active_ = true;
        entered_at_ = now;
        ++entries_;
        return true;
    }
    return false;
}

void
DegradedModeController::reset(Tick now)
{
    if (active_) {
        Tick left = std::min(now, quiet_after_);
        degraded_ticks_ += std::max(left, entered_at_) - entered_at_;
    }
    active_ = false;
    quiet_after_ = 0;
    recent_.clear();
}

bool
DegradedModeController::active(Tick now)
{
    if (active_ && now >= quiet_after_) {
        active_ = false;
        degraded_ticks_ += quiet_after_ - entered_at_;
        recent_.clear();
    }
    return active_;
}

} // namespace fault
} // namespace pipellm
