/**
 * @file
 * Deterministic fault injection (FaultPlan -> FaultInjector).
 *
 * The paper's §8 security argument (tag verification, IV discipline,
 * mispredicted-ciphertext disposal) only matters if the system
 * survives the failures it detects. This layer injects those failures
 * on purpose — seeded, reproducible, and zero-cost when disarmed — so
 * the recovery paths can be exercised and measured:
 *
 *  - TagCorruption: a PCIe bit error flips ciphertext in flight; GCM
 *    tag verification rejects the blob and the sender re-encrypts at
 *    a fresh IV (never a replay).
 *  - CopyStall: a DMA copy engine hangs; a watchdog timeout plus
 *    capped exponential backoff retries the chunk through the staged
 *    path.
 *  - CryptoLaneFault: a host crypto lane dies mid-job; the job is
 *    redone on a re-initialized lane, wasting the partial work.
 *  - ReplicaCrash: a whole replica disappears mid-cluster-run; the
 *    router marks it dead at the co-simulation frontier and requeues
 *    its undelivered requests onto survivors.
 *  - ReplicaRestart: a crashed replica comes back after a seeded
 *    delay. The rejoin is the expensive part: the SPDM session is
 *    re-established (fresh key, new IV epoch), the weights re-cross
 *    the staged path, speculative state is rebuilt from nothing, and
 *    the router re-admits the replica only after a warm-up probe
 *    round-trips the fresh session.
 *  - MigrationTagFault: a chunk of a replica-to-replica KV migration
 *    stream arrives with a bad tag; the source discards the blob and
 *    re-seals the chunk at a fresh IV, resuming from the last
 *    verified chunk.
 *  - MigrationStall: the migration stream stalls on a congested
 *    inter-device path; a watchdog plus capped exponential backoff
 *    retries, and a stream that exhausts its attempts falls back to
 *    decoding locally on the prefill replica.
 *  - DestCrashMidMigration: the decode replica receiving a migration
 *    dies mid-stream; every sealed-but-unverified chunk is discarded
 *    (never verified) and the migration re-routes to another live
 *    decode replica from chunk zero.
 *
 * Rates can additionally be modulated by a "fault storm" window: a
 * [storm_start, storm_end) interval during which every Bernoulli
 * rate is multiplied by storm_multiplier. Injection sites pass the
 * simulated time of the operation so the oracle can tell whether it
 * falls inside the storm. With the default multiplier of 1 (or an
 * empty window) the draw sequence is unchanged.
 *
 * A single FaultInjector lives on the Platform (disarmed by default)
 * and is wired by pointer into every injection site. Disarmed, each
 * site pays one branch: no Rng draws, no timing change, so committed
 * bench CSVs stay byte-identical — the same bar as the audit layer.
 */

#ifndef PIPELLM_FAULT_FAULT_HH
#define PIPELLM_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"

namespace pipellm {
namespace fault {

/** What can break. One enumerator per injection site family. */
enum class Kind
{
    TagCorruption,   ///< GCM tag mismatch from in-flight bit corruption
    CopyStall,       ///< transient DMA copy-engine hang
    CryptoLaneFault, ///< host crypto lane dies mid-job
    ReplicaCrash,    ///< whole replica lost mid-run
    ReplicaRestart,  ///< crashed replica re-keys and rejoins
    MigrationTagFault,    ///< KV-migration chunk rejected by its tag
    MigrationStall,       ///< KV-migration stream stalls mid-chunk
    DestCrashMidMigration, ///< decode replica dies mid-migration
};

/** Number of Kind enumerators (for counter arrays). */
constexpr std::size_t numFaultKinds = 8;

/** Human-readable name of a fault kind (CSV columns, diagnostics). */
std::string toString(Kind kind);

/**
 * A seeded description of what to inject and how recovery is tuned.
 * Rates are per-opportunity Bernoulli probabilities except
 * replica_crash_rate, which is an exponential arrival rate in crashes
 * per simulated second per replica.
 */
struct FaultPlan
{
    /** Seed for the injector's private Rng. */
    std::uint64_t seed = 1;

    /** P(ciphertext corrupted) per bus crossing. */
    double tag_corruption_rate = 0;

    /** P(copy engine stalls) per staged chunk attempt. */
    double copy_stall_rate = 0;

    /** P(crypto lane dies) per lane job. */
    double lane_fault_rate = 0;

    /** Crash arrival rate per replica (events per simulated second). */
    double replica_crash_rate = 0;

    /**
     * Restart arrival rate after a crash (events per simulated
     * second): the mean repair delay is 1/rate. 0 keeps crashed
     * replicas dead forever (the pre-restart behavior).
     */
    double replica_restart_rate = 0;

    /**
     * Simulated cost of the SPDM re-attestation + key exchange a
     * rejoining replica performs before any data moves (the paper's
     * §2.2 session establishment, charged as a lump).
     */
    Tick spdm_rekey_ticks = milliseconds(10);

    /**
     * Bytes round-tripped (H2D then D2H) through the fresh session
     * before the router re-admits the replica. A failed probe would
     * be a session-setup bug; the audit layer checks the IVs it
     * spends belong to the new epoch.
     */
    std::uint64_t warmup_probe_bytes = 256 * KiB;

    /** Fault-storm window start (inclusive); empty when == end. */
    Tick storm_start = 0;

    /** Fault-storm window end (exclusive). */
    Tick storm_end = 0;

    /**
     * Multiplier applied to the Bernoulli rates for operations whose
     * timestamp falls inside [storm_start, storm_end). 1 disables
     * storm modulation even when the window is nonempty.
     */
    double storm_multiplier = 1;

    /** Watchdog timeout charged per detected copy stall. */
    Tick copy_stall_timeout = microseconds(50);

    /** First-retry backoff; doubles per attempt up to the cap. */
    Tick copy_backoff_base = microseconds(10);

    /** Backoff ceiling (exponential growth is capped here). */
    Tick copy_backoff_cap = milliseconds(1);

    /** Injector stops stalling a chunk after this many attempts. */
    unsigned max_copy_attempts = 6;

    /** Tag-mismatch retries before a transfer is declared dead. */
    unsigned max_transfer_retries = 8;

    /** P(KV-migration chunk corrupted) per chunk crossing. */
    double migration_tag_rate = 0;

    /** P(KV-migration stream stalls) per chunk attempt. */
    double migration_stall_rate = 0;

    /**
     * P(the destination replica dies) per migrated chunk crossing.
     * Per-chunk (not per-migration) so longer streams are naturally
     * more exposed, exactly like real crash windows.
     */
    double dest_crash_rate = 0;

    /** Watchdog timeout charged per detected migration stall. */
    Tick migration_stall_timeout = microseconds(80);

    /**
     * Stall retries per chunk before the migration gives up and the
     * request decodes locally on the prefill replica.
     */
    unsigned max_migration_attempts = 4;

    /**
     * Restrict injected replica crashes to these device ids (empty =
     * any replica may crash). The crash-time draw is consumed either
     * way, so filtering never perturbs the decision stream of the
     * other fault kinds.
     */
    std::vector<std::uint32_t> crash_devices;

    /** True when the crash schedule may kill device @p id. */
    bool crashAllowed(std::uint32_t id) const;

    /** True when any fault rate is nonzero. */
    bool armed() const;
};

/**
 * Per-site fault and recovery counters. Injection sites and runtimes
 * each keep one; reports merge upward (staged paths into runtimes,
 * runtimes into the cluster result).
 */
struct FaultReport
{
    /** Injected tag corruptions that were detected (GCM reject). */
    std::uint64_t tag_faults = 0;

    /** Fresh-IV re-encryptions performed to recover them. */
    std::uint64_t tag_retries = 0;

    /** Injected copy-engine stalls (watchdog timeouts). */
    std::uint64_t copy_stalls = 0;

    /** Backed-off chunk retries issued for those stalls. */
    std::uint64_t copy_retries = 0;

    /** Crypto-lane jobs redone after an injected lane death. */
    std::uint64_t lane_faults = 0;

    /** Replica crashes fired by the router. */
    std::uint64_t replica_crashes = 0;

    /** Crashed replicas that re-keyed and rejoined the router. */
    std::uint64_t replica_restarts = 0;

    /**
     * Summed crash-to-rejoin time across restarts (repair delay +
     * re-key + weight reload + warm-up probe).
     */
    Tick restart_rejoin_ticks = 0;

    /** Undelivered requests requeued onto surviving replicas. */
    std::uint64_t requeued_requests = 0;

    /** Requests dropped because no replica survived. */
    std::uint64_t dropped_requests = 0;

    /** Generated-and-lost tokens from crashed replicas' in-flight work. */
    std::uint64_t lost_tokens = 0;

    /** Times a runtime entered speculation-off degraded mode. */
    std::uint64_t degraded_entries = 0;

    /** Transfers served on-demand while degraded. */
    std::uint64_t degraded_sends = 0;

    /** Simulated time spent in degraded mode. */
    Tick degraded_ticks = 0;

    /** Simulated time added by recovery (retries + backoff). */
    Tick retry_latency = 0;

    /** KV migrations started (one per prefill->decode handoff try). */
    std::uint64_t migrations = 0;

    /** Migration chunks verified at a destination. */
    std::uint64_t migrated_chunks = 0;

    /** Migration chunks whose tag ledger entry ended Discarded. */
    std::uint64_t discarded_chunks = 0;

    /** Injected migration-chunk tag faults (GCM reject at the dest). */
    std::uint64_t migration_tag_faults = 0;

    /** Fresh-IV chunk re-seals performed to recover them. */
    std::uint64_t migration_retries = 0;

    /** Injected migration-stream stalls (watchdog timeouts). */
    std::uint64_t migration_stalls = 0;

    /** Streams that gave up and decoded locally on the prefill side. */
    std::uint64_t migration_fallbacks = 0;

    /** Destination replicas lost mid-migration. */
    std::uint64_t dest_mid_migration_crashes = 0;

    /** In-flight migrations re-routed to another decode replica. */
    std::uint64_t migrations_rerouted = 0;

    /** Migration-stream IVs pre-generated speculatively. */
    std::uint64_t speculated_migration_ivs = 0;

    /** Fold another site's counters into this report. */
    void merge(const FaultReport &other);

    /** Total faults injected across every kind. */
    std::uint64_t injectedTotal() const;

    /** Total recovery actions taken across every kind. */
    std::uint64_t recoveredTotal() const;
};

/**
 * The machine-wide injection oracle. Components hold a pointer and
 * ask it whether their next operation fails; every decision comes
 * from one private seeded Rng, so a (plan, workload) pair replays
 * bit-identically. Disarmed (the default), every query returns
 * "no fault" from a single branch without touching the Rng.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    /** Install @p plan and reseed the decision stream. */
    void arm(const FaultPlan &plan);

    /** Return to the zero-cost disarmed state. */
    void disarm();

    bool armed() const { return armed_; }

    const FaultPlan &plan() const { return plan_; }

    /**
     * Should the bus crossing at @p now corrupt the ciphertext?
     * @p now only matters inside a storm window.
     */
    bool corruptTag(Tick now);

    /** Should the staged chunk attempt at @p now stall the engine? */
    bool stallCopy(Tick now);

    /** Should the crypto-lane job at @p now die mid-flight? */
    bool failLane(Tick now);

    /** Should the migration chunk crossing at @p now be corrupted? */
    bool corruptMigrationChunk(Tick now);

    /** Should the migration chunk attempt at @p now stall? */
    bool stallMigration(Tick now);

    /** Should the destination die under the chunk landing at @p now? */
    bool dropDestination(Tick now);

    /**
     * Crash arrival time for one replica, drawn from the plan's
     * exponential rate; maxTick when crashes are not armed.
     */
    Tick drawCrashTime();

    /**
     * Repair delay between a crash and the start of the rejoin
     * sequence, drawn from the plan's restart rate; maxTick when
     * restarts are not armed (the replica stays dead).
     */
    Tick drawRestartDelay();

    /**
     * Jittered capped-exponential backoff before retry @p attempt
     * (1-based): base * 2^(attempt-1), capped, plus uniform jitter.
     */
    Tick backoff(unsigned attempt);

    /** Record an injection decided outside the injector (crashes). */
    void noteInjected(Kind kind);

    /** Faults of @p kind injected since the last arm(). */
    std::uint64_t injected(Kind kind) const;

  private:
    bool draw(Kind kind, double rate, Tick now);

    /** @p rate scaled by the storm multiplier when @p now is inside
     * the storm window. */
    double rateAt(double rate, Tick now) const;

    FaultPlan plan_;
    Rng rng_;
    bool armed_ = false;
    std::array<std::uint64_t, numFaultKinds> injected_{};
};

} // namespace fault
} // namespace pipellm

#endif // PIPELLM_FAULT_FAULT_HH
