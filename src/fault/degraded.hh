/**
 * @file
 * Speculation degraded mode for fault storms.
 *
 * A burst of transfer faults (tag corruption, copy stalls) makes
 * speculative pre-encryption a liability: every retry consumes a
 * fresh IV, which invalidates pipeline entries and forces
 * re-encryption of data that may be corrupted again. The controller
 * watches the runtime's own fault observations and, past a threshold
 * within a sliding window, suspends speculation — the runtime falls
 * back to on-demand CC-style encryption — until the storm has been
 * quiet for a cooldown, then re-enters speculation.
 */

#ifndef PIPELLM_FAULT_DEGRADED_HH
#define PIPELLM_FAULT_DEGRADED_HH

#include <deque>

#include "common/units.hh"

namespace pipellm {
namespace fault {

/** When to trip into degraded mode and when to leave it. */
struct DegradedConfig
{
    /** Faults within the window that trip degraded mode. */
    unsigned fault_threshold = 3;

    /** Sliding window over which faults are counted. */
    Tick window = milliseconds(50);

    /** Quiet time after the last fault before speculation resumes. */
    Tick cooldown = milliseconds(200);
};

/** Sliding-window fault-storm detector with cooldown re-entry. */
class DegradedModeController
{
  public:
    explicit DegradedModeController(const DegradedConfig &config = {})
        : config_(config)
    {
    }

    /**
     * Record a recovered fault observed at @p now.
     * @return true when this fault trips the controller into
     *         degraded mode (the transition edge, not the state)
     */
    bool noteFault(Tick now);

    /**
     * Whether speculation is suspended at @p now; leaving degraded
     * mode (cooldown expired) is detected here.
     */
    bool active(Tick now);

    /**
     * Forget the fault history across a replica restart at @p now:
     * the faults that tripped the controller belonged to the dead
     * session. An open degraded interval is closed (its ticks still
     * count); cumulative entry/tick totals survive for reporting.
     */
    void reset(Tick now);

    /** Times degraded mode was entered. */
    std::uint64_t entries() const { return entries_; }

    /** Total simulated time spent degraded (closed intervals only). */
    Tick degradedTicks() const { return degraded_ticks_; }

  private:
    DegradedConfig config_;
    std::deque<Tick> recent_;
    bool active_ = false;
    Tick entered_at_ = 0;
    Tick quiet_after_ = 0;
    std::uint64_t entries_ = 0;
    Tick degraded_ticks_ = 0;
};

} // namespace fault
} // namespace pipellm

#endif // PIPELLM_FAULT_DEGRADED_HH
