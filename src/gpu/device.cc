#include "gpu/device.hh"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace pipellm {
namespace gpu {

GpuDevice::GpuDevice(sim::EventQueue &eq, const SystemSpec &spec,
                     const std::string &label)
    : eq_(eq), spec_(spec),
      mem_(label + "gpu-hbm", spec.gpu_mem_bytes),
      pcie_h2d_(eq, label + "pcie-h2d", spec.pcie_h2d_bw,
                spec.pcie_latency),
      pcie_d2h_(eq, label + "pcie-d2h", spec.pcie_d2h_bw,
                spec.pcie_latency),
      copy_engine_crypto_(eq, label + "copy-engine-crypto",
                          spec.copy_engine_crypto_bw),
      compute_(eq, label + "sm-compute")
{
    spec_.validate();
}

mem::Region
GpuDevice::alloc(std::uint64_t len, std::string name)
{
    return mem_.alloc(len, std::move(name), mem::MemSpace::Device);
}

void
GpuDevice::free(const mem::Region &region)
{
    mem_.free(region);
}

void
GpuDevice::enableCc(const crypto::SecureChannel *channel)
{
    channel_ = channel;
    rx_iv_ = crypto::IvCounter(crypto::Direction::HostToDevice);
    tx_iv_ = crypto::IvCounter(crypto::Direction::DeviceToHost);
    // Session setup re-synchronizes both counters, modeling a fresh
    // key exchange: the audit registry starts a new exposure epoch.
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteSessionEpoch(
        channel_->auditId()));
}

Tick
GpuDevice::dmaH2dPlain(Addr dst, const std::uint8_t *sample,
                       std::uint64_t sample_len, std::uint64_t full_len,
                       Tick earliest)
{
    Tick done = pcie_h2d_.submitNotBefore(earliest, full_len);
    if (sample_len > 0)
        mem_.write(dst, sample, sample_len);
    return done;
}

Tick
GpuDevice::dmaD2hPlain(Addr src, std::uint8_t *out,
                       std::uint64_t sample_len, std::uint64_t full_len,
                       Tick earliest)
{
    Tick done = pcie_d2h_.submitNotBefore(earliest, full_len);
    if (sample_len > 0)
        mem_.read(src, out, sample_len);
    return done;
}

void
GpuDevice::commitEncrypted(const crypto::CipherBlob &blob, Addr dst)
{
    bool ok = tryCommitEncrypted(blob, dst);
    PIPELLM_ASSERT(ok, "injected tag fault reached a path with no "
                       "recovery; route it through tryCommitEncrypted");
}

bool
GpuDevice::tryCommitEncrypted(const crypto::CipherBlob &blob, Addr dst)
{
    PIPELLM_ASSERT(channel_, "CC transfer on a non-CC device");
    PIPELLM_ASSERT(blob.dir == crypto::Direction::HostToDevice,
                   "blob direction mismatch");

    std::uint64_t expected = rx_iv_.next();
    std::vector<std::uint8_t> sample;
    if (!channel_->open(blob, expected, sample)) {
        ++integrity_failures_;
        if (!blob.injected_fault) {
            PANIC("GPU copy engine: AES-GCM tag failure on H2D transfer "
                  "(sender IV counter ", blob.iv_counter,
                  ", device expected ", expected,
                  "); the CC session would be terminated");
        }
        // Injected PCIe corruption: discard the blob. The RX IV was
        // consumed, matching the host counter's advance at seal time,
        // so a fresh-IV retry stays in lockstep.
        return false;
    }
    // The ciphertext crossed the (simulated) bus: register the
    // exposure after verification so tag-failure paths keep their
    // original diagnostics.
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteExposure(
        channel_->auditId(), int(crypto::Direction::HostToDevice),
        expected));
    if (!sample.empty())
        mem_.write(dst, sample.data(), sample.size());
    return true;
}

crypto::CipherBlob
GpuDevice::sealD2h(Addr src, std::uint64_t full_len)
{
    PIPELLM_ASSERT(channel_, "CC transfer on a non-CC device");
    std::uint64_t n = channel_->sampledLen(full_len);
    std::vector<std::uint8_t> sample(n);
    mem_.read(src, sample.data(), n);
    std::uint64_t counter = tx_iv_.next();
    crypto::CipherBlob blob = channel_->seal(
        crypto::Direction::DeviceToHost, counter, sample.data(),
        full_len);
    // D2H production is exposure: the blob is sealed to be sent.
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteExposure(
        channel_->auditId(), int(crypto::Direction::DeviceToHost),
        counter));
    return blob;
}

void
GpuDevice::commitRetained(const crypto::CipherBlob &blob, Addr dst)
{
    PIPELLM_ASSERT(channel_, "CC transfer on a non-CC device");
    std::vector<std::uint8_t> sample;
    if (!channel_->open(blob, blob.iv_counter, sample)) {
        ++integrity_failures_;
        PANIC("GPU copy engine: tag failure on retained ciphertext "
              "(IV counter ", blob.iv_counter, ")");
    }
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteRetainedExposure(
        channel_->auditId(), int(blob.dir), blob.iv_counter,
        audit::digest(blob.tag.data(), blob.tag.size())));
    ++retained_commits_;
    if (!sample.empty())
        mem_.write(dst, sample.data(), sample.size());
}

crypto::CipherBlob
GpuDevice::sealRetainedD2h(Addr src, std::uint64_t full_len,
                           std::uint64_t iv_counter)
{
    PIPELLM_ASSERT(channel_, "CC transfer on a non-CC device");
    std::uint64_t n = channel_->sampledLen(full_len);
    std::vector<std::uint8_t> sample(n);
    mem_.read(src, sample.data(), n);
    crypto::CipherBlob blob = channel_->seal(
        crypto::Direction::DeviceToHost, iv_counter, sample.data(),
        full_len);
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteRetainedExposure(
        channel_->auditId(), int(crypto::Direction::DeviceToHost),
        iv_counter, audit::digest(blob.tag.data(), blob.tag.size())));
    return blob;
}

Tick
GpuDevice::deliverEncrypted(const crypto::CipherBlob &blob, Addr dst,
                            Tick dma_done)
{
    Tick done = copy_engine_crypto_.submitNotBefore(dma_done,
                                                    blob.full_len);
    commitEncrypted(blob, dst);
    return done;
}

Tick
GpuDevice::dmaH2dEncrypted(const crypto::CipherBlob &blob, Addr dst,
                           Tick earliest)
{
    PIPELLM_ASSERT(channel_, "CC transfer on a non-CC device");
    // DMA the ciphertext across PCIe, then the copy engine decrypts at
    // line rate into HBM.
    Tick dma_done = pcie_h2d_.submitNotBefore(earliest, blob.full_len);
    return deliverEncrypted(blob, dst, dma_done);
}

Tick
GpuDevice::produceEncrypted(Addr src, std::uint64_t full_len,
                            crypto::CipherBlob &blob, Tick earliest)
{
    Tick enc_done = copy_engine_crypto_.submitNotBefore(earliest,
                                                        full_len);
    blob = sealD2h(src, full_len);
    return enc_done;
}

Tick
GpuDevice::dmaD2hEncrypted(Addr src, std::uint64_t full_len,
                           crypto::CipherBlob &blob, Tick earliest)
{
    // The copy engine reads HBM and encrypts at line rate, then the
    // ciphertext crosses PCIe.
    Tick enc_done = produceEncrypted(src, full_len, blob, earliest);
    return pcie_d2h_.submitNotBefore(enc_done, full_len);
}

bool
GpuDevice::wouldAccept(const crypto::CipherBlob &blob) const
{
    PIPELLM_ASSERT(channel_, "CC probe on a non-CC device");
    std::vector<std::uint8_t> scratch;
    return channel_->open(blob, rx_iv_.current(), scratch);
}

Tick
GpuDevice::kernelDuration(const KernelDesc &kernel) const
{
    double compute_s = kernel.flops / spec_.gpu_flops;
    double memory_s = kernel.hbm_bytes / spec_.gpu_hbm_bw;
    double s = std::max(compute_s, memory_s);
    return spec_.kernel_launch_overhead + Tick(s * 1e9);
}

Tick
GpuDevice::launchKernel(const KernelDesc &kernel, Tick earliest)
{
    return compute_.submit(earliest, kernelDuration(kernel));
}

} // namespace gpu
} // namespace pipellm
