/**
 * @file
 * The simulated GPU: HBM arena, PCIe DMA engines, a copy engine that
 * decrypts/encrypts in CC mode with its own IV counters, and a
 * roofline compute engine.
 *
 * The device enforces the H100 CC contract: a received blob is only
 * accepted if its AES-GCM tag verifies under the *device's* next IV
 * for that direction. Any speculation bug on the CPU side therefore
 * manifests as a hard integrity failure here, exactly as it would on
 * real hardware.
 */

#ifndef PIPELLM_GPU_DEVICE_HH
#define PIPELLM_GPU_DEVICE_HH

#include <cstdint>
#include <string>

#include "common/units.hh"
#include "crypto/channel.hh"
#include "crypto/iv.hh"
#include "gpu/spec.hh"
#include "mem/sparse_memory.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

namespace pipellm {
namespace gpu {

/** Work submitted to the compute engine. */
struct KernelDesc
{
    std::string name;
    /** Floating point operations performed. */
    double flops = 0;
    /** HBM bytes moved (for the memory-bound side of the roofline). */
    double hbm_bytes = 0;
};

/** Simulated H100-class device. */
class GpuDevice
{
  public:
    /**
     * @param label prefix for resource names, disambiguating devices
     *        in a multi-GPU platform ("" keeps the legacy names)
     */
    GpuDevice(sim::EventQueue &eq, const SystemSpec &spec,
              const std::string &label = "");

    // --- memory ---
    mem::SparseMemory &memory() { return mem_; }
    const SystemSpec &spec() const { return spec_; }

    /** Allocate device memory; fatal() when HBM is exhausted. */
    mem::Region alloc(std::uint64_t len, std::string name);
    void free(const mem::Region &region);

    // --- confidential computing ---
    /**
     * Enter CC mode with the given session; resets both direction
     * counters to zero (session setup synchronizes them with the CPU).
     */
    void enableCc(const crypto::SecureChannel *channel);
    bool ccEnabled() const { return channel_ != nullptr; }

    /** Device-side next-IV counters (for tests and diagnostics). */
    std::uint64_t rxCounter() const { return rx_iv_.current(); }
    std::uint64_t txCounter() const { return tx_iv_.current(); }

    // --- data paths ---
    /**
     * Plaintext H2D DMA (CC disabled): occupies the H2D link, lands
     * @p sample at @p dst.
     * @return completion tick
     */
    Tick dmaH2dPlain(Addr dst, const std::uint8_t *sample,
                     std::uint64_t sample_len, std::uint64_t full_len,
                     Tick earliest);

    /** Plaintext D2H DMA (CC disabled); @p out receives the sample. */
    Tick dmaD2hPlain(Addr src, std::uint8_t *out,
                     std::uint64_t sample_len, std::uint64_t full_len,
                     Tick earliest);

    /**
     * CC H2D: DMA the blob from shared memory, then the copy engine
     * decrypts it against the device's next RX IV and writes the
     * sample to @p dst. Panics on tag failure (integrity violation:
     * on real hardware the session is torn down).
     * @return completion tick
     */
    Tick dmaH2dEncrypted(const crypto::CipherBlob &blob, Addr dst,
                         Tick earliest);

    /**
     * CC D2H: the copy engine encrypts @p full_len bytes starting at
     * @p src under the device's next TX IV and DMAs the blob out.
     * @param[out] blob the ciphertext handed to the host
     * @return completion tick
     */
    Tick dmaD2hEncrypted(Addr src, std::uint64_t full_len,
                         crypto::CipherBlob &blob, Tick earliest);

    /**
     * Copy-engine half of an encrypted H2D transfer: decrypt @p blob
     * (which finished DMAing at @p dma_done) against the device's
     * next RX IV and write the sample to @p dst. Used by runtimes
     * that model the PCIe stage themselves (chunked staging).
     * @return completion tick
     */
    Tick deliverEncrypted(const crypto::CipherBlob &blob, Addr dst,
                          Tick dma_done);

    /**
     * Copy-engine half of an encrypted D2H transfer: encrypt
     * @p full_len bytes at @p src under the device's next TX IV.
     * The caller models the PCIe stage.
     * @return tick at which the ciphertext is ready for DMA
     */
    Tick produceEncrypted(Addr src, std::uint64_t full_len,
                          crypto::CipherBlob &blob, Tick earliest);

    /**
     * Functional-only half of an encrypted H2D delivery: verify the
     * tag against the device's next RX IV and write the sample.
     * Timing is the caller's job (the copy-engine decrypt is a
     * pipelined stage of the staged data path).
     */
    void commitEncrypted(const crypto::CipherBlob &blob, Addr dst);

    /**
     * Like commitEncrypted(), but an *injected* tag failure (a
     * simulated PCIe bit error, CipherBlob::injected_fault) is
     * recoverable: the copy engine discards the blob and reports
     * false, the RX IV having been consumed on both sides, so the
     * host retries by re-sealing at its next counter. A genuine tag
     * failure still panics with the original diagnostics — fault
     * injection must never mask a real speculation bug.
     * @return true when the blob verified and landed
     */
    [[nodiscard]] bool tryCommitEncrypted(const crypto::CipherBlob &blob,
                                          Addr dst);

    /** Functional-only half of an encrypted D2H: read + seal. */
    crypto::CipherBlob sealD2h(Addr src, std::uint64_t full_len);

    /**
     * §8.2 hypothetical hardware: accept a *retained* ciphertext,
     * verified under the (direction, IV) it was originally sealed
     * with, without touching the lockstep counters. Today's H100
     * rejects this by design (replay protection); the paper discusses
     * it as a future ciphertext-reuse interface for read-only swap
     * data. Counted separately in stats.
     */
    void commitRetained(const crypto::CipherBlob &blob, Addr dst);

    /**
     * §8.2: seal @p full_len bytes at @p src under an explicit
     * caller-chosen IV counter (content generation), outside the
     * lockstep TX sequence.
     */
    crypto::CipherBlob sealRetainedD2h(Addr src, std::uint64_t full_len,
                                       std::uint64_t iv_counter);

    /** Retained (replayed) blobs accepted so far. */
    std::uint64_t retainedCommits() const { return retained_commits_; }

    /** H2D link for runtimes that schedule DMA chunks directly. */
    sim::BandwidthResource &h2dLinkMut() { return pcie_h2d_; }
    sim::BandwidthResource &d2hLinkMut() { return pcie_d2h_; }

    /**
     * Chain both PCIe links through a shared host-bridge stage so this
     * device's traffic contends with its siblings' for the aggregate
     * host bandwidth. Pass nullptr to detach. The bridge is not owned
     * (the Platform holds it) and must outlive the device.
     */
    void attachHostBridge(sim::BandwidthResource *bridge)
    {
        pcie_h2d_.setDownstream(bridge);
        pcie_d2h_.setDownstream(bridge);
    }
    /** Copy-engine crypto stage for staged-path pipelining. */
    sim::BandwidthResource &copyEngineCryptoMut() {
        return copy_engine_crypto_;
    }

    /**
     * Verify-only probe used by tests: would @p blob decrypt under
     * the device's current RX counter? Does not advance state.
     */
    bool wouldAccept(const crypto::CipherBlob &blob) const;

    // --- compute ---
    /**
     * Execute a kernel on the serialized compute engine.
     * Duration = launch overhead + max(flops/FLOPS, bytes/HBM-bw).
     * @return completion tick
     */
    Tick launchKernel(const KernelDesc &kernel, Tick earliest);

    /** Modeled execution time of @p kernel excluding queueing. */
    Tick kernelDuration(const KernelDesc &kernel) const;

    /** Compute engine idle time accumulated between kernels. */
    const sim::SerialTimeline &computeEngine() const { return compute_; }
    const sim::BandwidthResource &h2dLink() const { return pcie_h2d_; }
    const sim::BandwidthResource &d2hLink() const { return pcie_d2h_; }

    /**
     * Tag verification failures observed. Zero on fault-free runs;
     * with injected corruption armed, counts the discarded blobs.
     */
    std::uint64_t integrityFailures() const { return integrity_failures_; }

  private:
    sim::EventQueue &eq_;
    SystemSpec spec_;
    mem::SparseMemory mem_;
    sim::BandwidthResource pcie_h2d_;
    sim::BandwidthResource pcie_d2h_;
    sim::BandwidthResource copy_engine_crypto_;
    sim::SerialTimeline compute_;

    const crypto::SecureChannel *channel_ = nullptr;
    crypto::IvCounter rx_iv_{crypto::Direction::HostToDevice};
    crypto::IvCounter tx_iv_{crypto::Direction::DeviceToHost};
    std::uint64_t integrity_failures_ = 0;
    std::uint64_t retained_commits_ = 0;
};

} // namespace gpu
} // namespace pipellm

#endif // PIPELLM_GPU_DEVICE_HH
