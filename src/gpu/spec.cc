#include "gpu/spec.hh"

#include "common/logging.hh"

namespace pipellm {
namespace gpu {

SystemSpec
SystemSpec::h100()
{
    return SystemSpec{};
}

void
SystemSpec::validate() const
{
    PIPELLM_ASSERT(gpu_mem_bytes > 0, "GPU needs memory");
    PIPELLM_ASSERT(gpu_flops > 0 && gpu_hbm_bw > 0, "GPU needs compute");
    PIPELLM_ASSERT(pcie_h2d_bw > 0 && pcie_d2h_bw > 0, "bad PCIe rates");
    PIPELLM_ASSERT(cc_copy_bw > 0 && cpu_crypto_bw_per_lane > 0,
                   "bad CC path rates");
    PIPELLM_ASSERT(staging_buf_bytes > 0 && staging_buf_count > 0,
                   "bad staging config");
}

} // namespace gpu
} // namespace pipellm
