/**
 * @file
 * Platform calibration constants.
 *
 * Every rate and overhead here is taken from the paper's own
 * measurements on the H100-SXM testbed (Fig. 2, §3, §7.2), so the
 * simulator reproduces the same bottleneck structure: PCIe ≫ CC copy
 * path ≫ single-thread CPU AES-GCM.
 */

#ifndef PIPELLM_GPU_SPEC_HH
#define PIPELLM_GPU_SPEC_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace pipellm {
namespace gpu {

/** Calibrated hardware description of the simulated platform. */
struct SystemSpec
{
    std::string name = "H100-SXM+Xeon8462Y";

    // --- GPU ---
    /** GPU HBM capacity. */
    std::uint64_t gpu_mem_bytes = 80 * GiB;
    /** Effective dense FP16 throughput for LLM kernels (FLOP/s). */
    double gpu_flops = 400e12;
    /** HBM bandwidth (bytes/s). */
    double gpu_hbm_bw = 3.35e12;
    /** Per-kernel launch overhead. */
    Tick kernel_launch_overhead = microseconds(5);
    /** Copy-engine AES-GCM decrypt rate (hardware, line rate). */
    double copy_engine_crypto_bw = 100e9;

    // --- PCIe link (Gen5 x16, per direction) ---
    /** Effective H2D bandwidth without CC (paper Fig. 2: ~55 GB/s). */
    double pcie_h2d_bw = 55e9;
    /** Effective D2H bandwidth without CC. */
    double pcie_d2h_bw = 55e9;
    /** DMA setup latency per transfer. */
    Tick pcie_latency = nanoseconds(400);

    // --- CC data path ---
    /**
     * Private->shared bounce-buffer memcpy rate; the paper measures
     * the CC copy path topping out at ~40 GB/s even with encryption
     * off the critical path (§7.2).
     */
    double cc_copy_bw = 40e9;
    /** Single CPU thread AES-GCM rate (Fig. 2: ~5.8 GB/s). */
    double cpu_crypto_bw_per_lane = 5.8e9;
    /** Staging buffer size (chunk granularity of CC transfers). */
    std::uint64_t staging_buf_bytes = 4 * MiB;
    /** Number of staging buffers (pipeline depth, kept small, §6). */
    unsigned staging_buf_count = 8;

    // --- API control plane (Fig. 2, 32 B transfers) ---
    /** cudaMemcpyAsync call overhead without CC (~1.4 us). */
    Tick api_overhead = nanoseconds(1400);
    /** Extra control-plane overhead with CC enabled (~13.5 us). */
    Tick cc_api_overhead = nanoseconds(13500);

    // --- Host memory ---
    /** CVM DRAM capacity (the paper's VM has 250 GB). */
    std::uint64_t host_mem_bytes = 250 * GiB;

    /** The paper's evaluation platform. */
    static SystemSpec h100();

    /** Self-check of invariants (rates positive, etc.). */
    void validate() const;
};

} // namespace gpu
} // namespace pipellm

#endif // PIPELLM_GPU_SPEC_HH
