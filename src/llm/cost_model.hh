/**
 * @file
 * Analytic FLOP/byte cost model for transformer inference and
 * fine-tuning, used to size the simulated GPU kernels.
 *
 * Only relative magnitudes matter for reproducing the paper: the
 * model must place LLM decode where it really lives on the roofline
 * (weight-bandwidth-bound at small batch, compute-bound at large
 * batch) so that swap-induced GPU idle time has the right proportion
 * to useful work.
 */

#ifndef PIPELLM_LLM_COST_MODEL_HH
#define PIPELLM_LLM_COST_MODEL_HH

#include <cstdint>

#include "gpu/device.hh"
#include "llm/model.hh"

namespace pipellm {
namespace llm {

/** Kernel-cost estimator bound to one model. */
class CostModel
{
  public:
    explicit CostModel(const ModelConfig &model);

    const ModelConfig &model() const { return model_; }

    /** FLOPs for one layer processing one new token at context C. */
    double decodeFlopsPerTokenPerLayer(std::uint64_t context) const;

    /** FLOPs for one layer prefiling a prompt of @p len tokens. */
    double prefillFlopsPerLayer(std::uint64_t len) const;

    /**
     * Kernel for one decode step of one layer over a batch of
     * sequences with total/average context @p avg_context.
     */
    gpu::KernelDesc decodeLayerKernel(std::uint64_t batch,
                                      std::uint64_t avg_context) const;

    /** Kernel for one layer of prefill over @p batch prompts. */
    gpu::KernelDesc prefillLayerKernel(std::uint64_t batch,
                                       std::uint64_t prompt_len) const;

    /**
     * Kernel for one layer of a fine-tuning forward pass over a batch
     * of @p tokens total tokens.
     */
    gpu::KernelDesc forwardLayerKernel(std::uint64_t tokens) const;

    /** Backward is ~2x the forward cost (grad wrt input + weights). */
    gpu::KernelDesc backwardLayerKernel(std::uint64_t tokens) const;

    /** Embedding/head kernel for one step over @p batch sequences. */
    gpu::KernelDesc embeddingKernel(std::uint64_t batch) const;

    /**
     * Peak activation bytes per token per layer during training
     * (used for fine-tuning memory pressure).
     */
    std::uint64_t activationBytesPerTokenPerLayer() const;

  private:
    ModelConfig model_;
};

} // namespace llm
} // namespace pipellm

#endif // PIPELLM_LLM_COST_MODEL_HH
