/**
 * @file
 * Transformer model descriptions: the OPT family the paper evaluates,
 * with derived parameter/KV sizes that drive every swap in the
 * simulation.
 *
 * Swap sizes are what PipeLLM's classifier keys on (§4.2): layer
 * parameter blocks are megabytes to hundreds of megabytes, KV-cache
 * blocks are tens to hundreds of kilobytes, and everything else is
 * tiny. Getting these sizes right is what makes the prediction
 * problem realistic.
 */

#ifndef PIPELLM_LLM_MODEL_HH
#define PIPELLM_LLM_MODEL_HH

#include <cstdint>
#include <string>

namespace pipellm {
namespace llm {

/** Numeric storage format of weights or KV entries. */
enum class Dtype : std::uint8_t
{
    Fp16,
    Int8,
    Int4,
};

/** Bytes per element (Int4 packs two per byte). */
double dtypeBytes(Dtype d);

const char *toString(Dtype d);

/** Architecture hyper-parameters of a decoder-only transformer. */
struct ModelConfig
{
    std::string name;
    unsigned num_layers = 0;
    std::uint64_t hidden = 0;
    unsigned heads = 0;
    std::uint64_t vocab = 50272;
    std::uint64_t max_positions = 2048;
    Dtype weight_dtype = Dtype::Fp16;
    Dtype kv_dtype = Dtype::Fp16;

    // --- derived sizes ---

    /** Parameter count of one transformer layer (~12 h^2). */
    std::uint64_t layerParams() const;

    /** Bytes of one transformer layer's weights. */
    std::uint64_t layerParamBytes() const;

    /** Bytes of the (tied) token + position embeddings. */
    std::uint64_t embeddingBytes() const;

    /** Total parameter bytes across the model. */
    std::uint64_t totalParamBytes() const;

    /** Total parameter count. */
    std::uint64_t totalParams() const;

    /** KV-cache bytes one token adds in one layer (2 h elems). */
    std::uint64_t kvBytesPerTokenPerLayer() const;

    /** KV-cache bytes one token adds across all layers. */
    std::uint64_t kvBytesPerToken() const;

    /** Sanity checks on the configuration. */
    void validate() const;

    // --- the paper's model zoo ---
    static ModelConfig opt13b();
    static ModelConfig opt30b();
    static ModelConfig opt66b();
    static ModelConfig opt175b();
    /** 4-bit-quantized OPT-175B (FlexGen configuration, §7.2). */
    static ModelConfig opt175bInt4();

    // --- other open models the paper mentions (§1, §2.1) ---
    static ModelConfig llama7b();
    static ModelConfig llama13b();
    static ModelConfig llama70b();
};

} // namespace llm
} // namespace pipellm

#endif // PIPELLM_LLM_MODEL_HH
