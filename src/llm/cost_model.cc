#include "llm/cost_model.hh"

namespace pipellm {
namespace llm {

CostModel::CostModel(const ModelConfig &model) : model_(model)
{
    model_.validate();
}

double
CostModel::decodeFlopsPerTokenPerLayer(std::uint64_t context) const
{
    double h = double(model_.hidden);
    // Matmuls: 2 FLOPs per weight per token over 12 h^2 weights;
    // attention: QK^T and AV over the cached context, 4 h C.
    return 24.0 * h * h + 4.0 * h * double(context);
}

double
CostModel::prefillFlopsPerLayer(std::uint64_t len) const
{
    double h = double(model_.hidden);
    double l = double(len);
    // Matmul term per token plus quadratic attention over the prompt.
    return l * 24.0 * h * h + 4.0 * h * l * l;
}

gpu::KernelDesc
CostModel::decodeLayerKernel(std::uint64_t batch,
                             std::uint64_t avg_context) const
{
    gpu::KernelDesc k;
    k.name = model_.name + "/decode-layer";
    k.flops = double(batch) * decodeFlopsPerTokenPerLayer(avg_context);
    // Weights stream from HBM once per step; each sequence reads its
    // cached KV for this layer.
    k.hbm_bytes = double(model_.layerParamBytes()) +
                  double(batch) * double(avg_context) *
                      double(model_.kvBytesPerTokenPerLayer());
    return k;
}

gpu::KernelDesc
CostModel::prefillLayerKernel(std::uint64_t batch,
                              std::uint64_t prompt_len) const
{
    gpu::KernelDesc k;
    k.name = model_.name + "/prefill-layer";
    k.flops = double(batch) * prefillFlopsPerLayer(prompt_len);
    k.hbm_bytes = double(model_.layerParamBytes()) +
                  double(batch) * double(prompt_len) *
                      double(model_.kvBytesPerTokenPerLayer());
    return k;
}

gpu::KernelDesc
CostModel::forwardLayerKernel(std::uint64_t tokens) const
{
    gpu::KernelDesc k;
    k.name = model_.name + "/fwd-layer";
    double h = double(model_.hidden);
    k.flops = double(tokens) * 24.0 * h * h;
    k.hbm_bytes = double(model_.layerParamBytes()) +
                  double(tokens) *
                      double(activationBytesPerTokenPerLayer());
    return k;
}

gpu::KernelDesc
CostModel::backwardLayerKernel(std::uint64_t tokens) const
{
    gpu::KernelDesc k = forwardLayerKernel(tokens);
    k.name = model_.name + "/bwd-layer";
    k.flops *= 2.0;
    k.hbm_bytes *= 2.0;
    return k;
}

gpu::KernelDesc
CostModel::embeddingKernel(std::uint64_t batch) const
{
    gpu::KernelDesc k;
    k.name = model_.name + "/embed";
    double h = double(model_.hidden);
    // Output projection to the vocabulary dominates.
    k.flops = double(batch) * 2.0 * h * double(model_.vocab);
    k.hbm_bytes = double(model_.embeddingBytes());
    return k;
}

std::uint64_t
CostModel::activationBytesPerTokenPerLayer() const
{
    // Rough transformer activation footprint: ~16 h fp16 values per
    // token per layer with activation checkpointing.
    return 16 * model_.hidden * 2;
}

} // namespace llm
} // namespace pipellm
