#include "llm/model.hh"

#include <cmath>

#include "common/logging.hh"

namespace pipellm {
namespace llm {

double
dtypeBytes(Dtype d)
{
    switch (d) {
      case Dtype::Fp16:
        return 2.0;
      case Dtype::Int8:
        return 1.0;
      case Dtype::Int4:
        return 0.5;
    }
    return 2.0;
}

const char *
toString(Dtype d)
{
    switch (d) {
      case Dtype::Fp16:
        return "fp16";
      case Dtype::Int8:
        return "int8";
      case Dtype::Int4:
        return "int4";
    }
    return "?";
}

std::uint64_t
ModelConfig::layerParams() const
{
    // Attention (QKVO): 4 h^2; MLP (4x expansion, two matrices): 8 h^2;
    // plus biases and layer norms (~9 h), which we fold in.
    return 12 * hidden * hidden + 9 * hidden;
}

std::uint64_t
ModelConfig::layerParamBytes() const
{
    return std::uint64_t(std::ceil(double(layerParams()) *
                                   dtypeBytes(weight_dtype)));
}

std::uint64_t
ModelConfig::embeddingBytes() const
{
    // OPT ties input and output embeddings; positions are learned.
    std::uint64_t params = (vocab + max_positions) * hidden;
    return std::uint64_t(std::ceil(double(params) *
                                   dtypeBytes(weight_dtype)));
}

std::uint64_t
ModelConfig::totalParams() const
{
    return std::uint64_t(num_layers) * layerParams() +
           (vocab + max_positions) * hidden;
}

std::uint64_t
ModelConfig::totalParamBytes() const
{
    return std::uint64_t(num_layers) * layerParamBytes() +
           embeddingBytes();
}

std::uint64_t
ModelConfig::kvBytesPerTokenPerLayer() const
{
    return std::uint64_t(std::ceil(2.0 * double(hidden) *
                                   dtypeBytes(kv_dtype)));
}

std::uint64_t
ModelConfig::kvBytesPerToken() const
{
    return std::uint64_t(num_layers) * kvBytesPerTokenPerLayer();
}

void
ModelConfig::validate() const
{
    PIPELLM_ASSERT(num_layers > 0 && hidden > 0 && heads > 0,
                   "incomplete model config: ", name);
    PIPELLM_ASSERT(hidden % heads == 0,
                   "hidden not divisible by heads: ", name);
}

ModelConfig
ModelConfig::opt13b()
{
    ModelConfig m;
    m.name = "OPT-13B";
    m.num_layers = 40;
    m.hidden = 5120;
    m.heads = 40;
    return m;
}

ModelConfig
ModelConfig::opt30b()
{
    ModelConfig m;
    m.name = "OPT-30B";
    m.num_layers = 48;
    m.hidden = 7168;
    m.heads = 56;
    return m;
}

ModelConfig
ModelConfig::opt66b()
{
    ModelConfig m;
    m.name = "OPT-66B";
    m.num_layers = 64;
    m.hidden = 9216;
    m.heads = 72;
    return m;
}

ModelConfig
ModelConfig::opt175b()
{
    ModelConfig m;
    m.name = "OPT-175B";
    m.num_layers = 96;
    m.hidden = 12288;
    m.heads = 96;
    return m;
}

ModelConfig
ModelConfig::opt175bInt4()
{
    ModelConfig m = opt175b();
    m.name = "OPT-175B-int4";
    m.weight_dtype = Dtype::Int4;
    return m;
}

ModelConfig
ModelConfig::llama7b()
{
    ModelConfig m;
    m.name = "LLaMA-7B";
    m.num_layers = 32;
    m.hidden = 4096;
    m.heads = 32;
    m.vocab = 32000;
    m.max_positions = 4096;
    return m;
}

ModelConfig
ModelConfig::llama13b()
{
    ModelConfig m;
    m.name = "LLaMA-13B";
    m.num_layers = 40;
    m.hidden = 5120;
    m.heads = 40;
    m.vocab = 32000;
    m.max_positions = 4096;
    return m;
}

ModelConfig
ModelConfig::llama70b()
{
    ModelConfig m;
    m.name = "LLaMA-70B";
    m.num_layers = 80;
    m.hidden = 8192;
    m.heads = 64;
    m.vocab = 32000;
    m.max_positions = 4096;
    return m;
}

} // namespace llm
} // namespace pipellm
