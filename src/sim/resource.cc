#include "sim/resource.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace sim {

BandwidthResource::BandwidthResource(EventQueue &eq, std::string name,
                                     double bytes_per_sec,
                                     Tick per_op_latency)
    : eq_(eq), name_(std::move(name)), rate_(bytes_per_sec),
      latency_(per_op_latency)
{
    PIPELLM_ASSERT(rate_ > 0, "resource rate must be positive: ", name_);
    PIPELLM_AUDIT_HOOK(audit_id_ = audit::Auditor::instance().newId());
}

Tick
BandwidthResource::submit(std::uint64_t bytes)
{
    return submitNotBefore(eq_.now(), bytes);
}

Tick
BandwidthResource::submitNotBefore(Tick earliest, std::uint64_t bytes)
{
    Tick start = std::max({earliest, eq_.now(), free_at_});
    Tick service = latency_ + transferTicks(bytes, rate_);
    Tick done = start + service;
    free_at_ = done;
    bytes_served_ += bytes;
    ++requests_;
    busy_ticks_ += service;
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteService(
        audit_id_, name_, eq_.now(), start, done, bytes));
    if (downstream_) {
        // Cut-through into the shared stage: the downstream begins
        // draining the moment this stage starts, so an uncontended
        // request finishes at whichever stage is slower, while
        // concurrent upstreams queue against each other here.
        Tick chain_done =
            std::max(done, downstream_->submitNotBefore(start, bytes));
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteChainForward(
            downstream_->auditId(), downstream_->name(), bytes, done,
            chain_done));
        done = chain_done;
    }
    return done;
}

Tick
BandwidthResource::submit(std::uint64_t bytes, EventFn &&fn)
{
    Tick done = submit(bytes);
    eq_.schedule(done, std::move(fn));
    return done;
}

double
BandwidthResource::utilization() const
{
    Tick horizon = std::max(eq_.now(), free_at_);
    if (horizon == 0)
        return 0.0;
    return double(busy_ticks_) / double(horizon);
}

LaneGroup::LaneGroup(EventQueue &eq, std::string name, unsigned lanes,
                     double bytes_per_sec_per_lane, Tick per_op_latency)
    : eq_(eq)
{
    PIPELLM_ASSERT(lanes > 0, "lane group needs at least one lane");
    lanes_.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i) {
        lanes_.emplace_back(eq, name + "[" + std::to_string(i) + "]",
                            bytes_per_sec_per_lane, per_op_latency);
    }
}

BandwidthResource &
LaneGroup::pickLane()
{
    auto it = std::min_element(
        lanes_.begin(), lanes_.end(),
        [](const BandwidthResource &a, const BandwidthResource &b) {
            return a.freeAt() < b.freeAt();
        });
    return *it;
}

Tick
LaneGroup::submit(std::uint64_t bytes)
{
    return pickLane().submit(bytes);
}

Tick
LaneGroup::submitNotBefore(Tick earliest, std::uint64_t bytes)
{
    return pickLane().submitNotBefore(earliest, bytes);
}

Tick
LaneGroup::submitNotBeforeBestFit(Tick earliest, std::uint64_t bytes)
{
    Tick floor = std::max(earliest, eq_.now());
    BandwidthResource *best = nullptr;
    for (auto &lane : lanes_) {
        if (lane.freeAt() > floor)
            continue;
        // Latest-free among the lanes that can start on time: the
        // tightest fit wastes the least idle capacity.
        if (!best || lane.freeAt() > best->freeAt())
            best = &lane;
    }
    if (!best) {
        // Every lane is busy past the floor: queue on the one that
        // frees up first.
        best = &pickLane();
    }
    return best->submitNotBefore(floor, bytes);
}

Tick
LaneGroup::submit(std::uint64_t bytes, EventFn &&fn)
{
    Tick done = submit(bytes);
    eq_.schedule(done, std::move(fn));
    return done;
}

Tick
LaneGroup::earliestFree() const
{
    Tick best = maxTick;
    for (const auto &lane : lanes_)
        best = std::min(best, lane.freeAt());
    return best;
}

std::uint64_t
LaneGroup::bytesServed() const
{
    std::uint64_t total = 0;
    for (const auto &lane : lanes_)
        total += lane.bytesServed();
    return total;
}

SerialTimeline::SerialTimeline(EventQueue &eq, std::string name)
    : eq_(eq), name_(std::move(name))
{
    PIPELLM_AUDIT_HOOK(audit_id_ = audit::Auditor::instance().newId());
}

Tick
SerialTimeline::submit(Tick earliest, Tick duration)
{
    Tick start = std::max({earliest, eq_.now(), free_at_});
    free_at_ = start + duration;
    busy_ticks_ += duration;
    ++requests_;
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteService(
        audit_id_, name_, eq_.now(), start, free_at_, 0));
    return free_at_;
}

Tick
SerialTimeline::submitNow(Tick duration)
{
    return submit(eq_.now(), duration);
}

double
SerialTimeline::utilization() const
{
    Tick horizon = std::max(eq_.now(), free_at_);
    if (horizon == 0)
        return 0.0;
    return double(busy_ticks_) / double(horizon);
}

} // namespace sim
} // namespace pipellm
