#include "sim/worker_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace sim {

WorkerPool::WorkerPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareConcurrency();
    // The caller is stream 0; spawn the rest.
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        LockGuard lock(mu_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

unsigned
WorkerPool::hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
WorkerPool::runShare(const std::function<void(std::size_t)> &body,
                     std::size_t n)
{
    // Claim indices until the job is exhausted. The atomic counter is
    // the only cross-thread coordination on the hot path; everything
    // body(i) touches is owned by index i.
    for (;;) {
        std::size_t i = next_index_.fetch_add(1,
                                              std::memory_order_relaxed);
        if (i >= n)
            break;
        body(i);
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t n = 0;
        {
            LockGuard lock(mu_);
            // Explicit while loop (not a predicate lambda): the
            // capability analysis sees the guarded reads under the
            // held lock, and CondVar::wait requires it by contract.
            while (!stopping_ && generation_ == seen)
                wake_.wait(mu_);
            if (stopping_)
                return;
            seen = generation_;
            // Snapshot the job under the lock: a worker that slept
            // through an entire job sees job_body_ == nullptr here and
            // simply goes back to sleep.
            body = job_body_;
            n = job_n_;
            if (body)
                ++active_runners_;
        }
        if (!body)
            continue;
        runShare(*body, n);
        {
            LockGuard lock(mu_);
            if (--active_runners_ == 0)
                done_.notify_all();
        }
    }
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        // Inline fast path: identical schedule to the parallel one
        // restricted to a single stream.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    {
        LockGuard lock(mu_);
        PIPELLM_ASSERT(active_runners_ == 0 && job_body_ == nullptr,
                       "nested or concurrent parallelFor");
        job_body_ = &body;
        job_n_ = n;
        next_index_.store(0, std::memory_order_relaxed);
        ++generation_;
    }
    wake_.notify_all();
    runShare(body, n);
    // Every index has been claimed once the caller's share runs dry;
    // the barrier below guarantees every claimed index also finished
    // and no worker still holds a reference to this job.
    LockGuard lock(mu_);
    while (active_runners_ != 0)
        done_.wait(mu_);
    job_body_ = nullptr;
    job_n_ = 0;
}

} // namespace sim
} // namespace pipellm
