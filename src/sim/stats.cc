#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace pipellm {
namespace sim {

void
Accumulator::add(double value)
{
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

void
SampleSet::add(double value)
{
    samples_.push_back(value);
    sorted_valid_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / double(samples_.size());
}

void
SampleSet::ensureSorted() const
{
    if (sorted_valid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
}

double
SampleSet::percentile(double p) const
{
    PIPELLM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_[0];
    double rank = p / 100.0 * double(sorted_.size() - 1);
    std::size_t lo = std::size_t(std::floor(rank));
    std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - double(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void
SampleSet::reset()
{
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / double(buckets)),
      counts_(buckets, 0)
{
    PIPELLM_ASSERT(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::add(double value)
{
    ++total_;
    if (value < lo_) {
        ++underflow_;
    } else if (value >= hi_) {
        ++overflow_;
    } else {
        auto idx = unsigned((value - lo_) / width_);
        if (idx >= counts_.size()) // floating point edge
            idx = unsigned(counts_.size()) - 1;
        ++counts_[idx];
    }
}

double
Histogram::bucketLo(unsigned i) const
{
    return lo_ + width_ * double(i);
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "hist[" << lo_ << "," << hi_ << ") n=" << total_
       << " under=" << underflow_ << " over=" << overflow_;
    return os.str();
}

} // namespace sim
} // namespace pipellm
