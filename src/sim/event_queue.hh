/**
 * @file
 * Discrete-event simulation core.
 *
 * Each EventQueue is an ordered event list plus a simulated clock.
 * Historically the whole reproduction ran on a single queue; the
 * sharded scheduler (sharded_scheduler.hh) now runs one queue per
 * replica shard, so a queue must be cheap: events are pool-allocated
 * intrusive pairing-heap nodes carrying a small-buffer-optimized
 * callback — steady-state scheduling touches neither malloc nor
 * std::function. Events at the same tick fire in insertion order.
 */

#ifndef PIPELLM_SIM_EVENT_QUEUE_HH
#define PIPELLM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>

#include "audit/audit.hh"
#include "common/units.hh"
#include "sim/pool.hh"
#include "sim/small_fn.hh"

namespace pipellm {
namespace sim {

/** Callback fired when its scheduled tick is reached. */
using EventFn = InlineFn;

/**
 * An ordered event queue and simulated clock.
 *
 * Components schedule callbacks; run() (or runUntil()) dispatches them
 * in (tick, insertion) order while advancing now(). Not thread-safe:
 * concurrency comes from running disjoint queues on worker threads
 * (see ShardedScheduler), never from sharing one queue.
 */
class EventQueue
{
  public:
    EventQueue()
    {
        PIPELLM_AUDIT_HOOK(
            audit_id_ = audit::Auditor::instance().newId());
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Process-unique audit identity (0 in non-audit builds). */
    std::uint64_t auditId() const { return audit_id_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void schedule(Tick when, EventFn &&fn);

    /** Schedule @p fn @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn &&fn);

    /** Pre-size the node pool for @p n in-flight events. */
    void reserve(std::size_t n) { pool_.reserve(n); }

    /** True when no events remain. */
    bool empty() const { return root_ == nullptr; }

    /** Number of pending events. */
    std::size_t pending() const { return pending_; }

    /** Tick of the next pending event, or maxTick when empty. */
    Tick
    nextEventTick() const
    {
        return root_ ? root_->when : maxTick;
    }

    /** Dispatch the single next event; returns false if none remain. */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass
     * @p deadline; events at exactly @p deadline still fire.
     */
    void runUntil(Tick deadline);

    /**
     * Dispatch every event strictly before @p horizon without
     * advancing the clock beyond the last event fired. This is the
     * window primitive of the sharded scheduler: the horizon is a
     * conservative lookahead bound, not a point in time this queue
     * has reached, so an idle queue must not report now() == horizon.
     */
    void runBefore(Tick horizon);

    /** Total events dispatched over the queue's lifetime. */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    /** Intrusive pairing-heap node; lives in pool_, never the heap. */
    struct Event
    {
        Event(Tick w, std::uint64_t s, EventFn &&f)
            : when(w), seq(s), fn(std::move(f))
        {}

        Tick when;
        std::uint64_t seq;
        Event *child = nullptr;   ///< leftmost child
        Event *sibling = nullptr; ///< next sibling to the right
        EventFn fn;
    };

    static bool
    before(const Event *a, const Event *b)
    {
        return a->when != b->when ? a->when < b->when : a->seq < b->seq;
    }

    static Event *meld(Event *a, Event *b);
    static Event *mergePairs(Event *first);

    /** Unlink and return the minimum event; pending_ is updated. */
    Event *popMin();

    /** Fire @p ev (already unlinked) and recycle its node. */
    void dispatch(Event *ev);

    Pool<Event> pool_;
    Event *root_ = nullptr;
    std::size_t pending_ = 0;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t audit_id_ = 0;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_EVENT_QUEUE_HH
