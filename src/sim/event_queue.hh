/**
 * @file
 * Discrete-event simulation core.
 *
 * The whole reproduction is a single-threaded discrete-event
 * simulation: hardware concurrency (PCIe DMA, GPU kernels, CPU crypto
 * lanes) is expressed as events on one queue, which makes every
 * experiment deterministic. Events at the same tick fire in insertion
 * order.
 */

#ifndef PIPELLM_SIM_EVENT_QUEUE_HH
#define PIPELLM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "audit/audit.hh"
#include "common/units.hh"

namespace pipellm {
namespace sim {

/** Callback fired when its scheduled tick is reached. */
using EventFn = std::function<void()>;

/**
 * The global ordered event queue and simulated clock.
 *
 * Components schedule callbacks; run() (or runUntil()) dispatches them
 * in (tick, insertion) order while advancing now().
 */
class EventQueue
{
  public:
    EventQueue()
    {
        PIPELLM_AUDIT_HOOK(
            audit_id_ = audit::Auditor::instance().newId());
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Process-unique audit identity (0 in non-audit builds). */
    std::uint64_t auditId() const { return audit_id_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Dispatch the single next event; returns false if none remain. */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass
     * @p deadline; events at exactly @p deadline still fire.
     */
    void runUntil(Tick deadline);

    /** Total events dispatched over the queue's lifetime. */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t audit_id_ = 0;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_EVENT_QUEUE_HH
