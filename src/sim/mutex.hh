/**
 * @file
 * sim:: aliases for the capability-annotated mutex primitives.
 *
 * The wrappers are defined in common/mutex.hh so that layers below
 * sim/ (the auditor) can use them without inverting the include DAG;
 * the concurrent simulator core and everything above it names them as
 * sim::Mutex / sim::LockGuard / sim::CondVar.
 */

#ifndef PIPELLM_SIM_MUTEX_HH
#define PIPELLM_SIM_MUTEX_HH

#include "common/mutex.hh"

namespace pipellm {
namespace sim {

using common::CondVar;
using common::LockGuard;
using common::Mutex;

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_MUTEX_HH
