/**
 * @file
 * Lightweight statistics containers used by engines and benches:
 * running accumulators and sample sets with percentile queries.
 */

#ifndef PIPELLM_SIM_STATS_HH
#define PIPELLM_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pipellm {
namespace sim {

/** Running scalar accumulator: count, sum, mean, min, max. */
class Accumulator
{
  public:
    void add(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Full sample set with percentile queries. Stores every sample; the
 * workloads here produce at most a few hundred thousand.
 */
class SampleSet
{
  public:
    void add(double value);

    std::uint64_t count() const { return samples_.size(); }
    double mean() const;

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }
    double p99() const { return percentile(99.0); }

    const std::vector<double> &samples() const { return samples_; }

    void reset();

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

/** Fixed-bucket histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void add(double value);

    std::uint64_t bucketCount(unsigned i) const { return counts_[i]; }
    unsigned buckets() const { return unsigned(counts_.size()); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Inclusive lower edge of bucket @p i. */
    double bucketLo(unsigned i) const;

    std::string summary() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_STATS_HH
