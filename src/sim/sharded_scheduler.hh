/**
 * @file
 * Conservative parallel discrete-event scheduler.
 *
 * One EventQueue per shard (a replica, plus a host shard for the
 * driver), run in bulk-synchronous windows: within a window every
 * shard independently dispatches its local events strictly before the
 * window horizon, in parallel across a fixed worker pool; at the
 * window barrier, staged cross-shard messages are merged in
 * deterministic (tick, shard, seq) order and scheduled onto their
 * target shards. The horizon is the conservative lookahead bound —
 * callers pick it at the natural coupling points (request arrivals,
 * host-bridge transfers, crypto-lane-pool grants), and the scheduler
 * asserts that no message ever lands inside a window that has already
 * run. Same seeds therefore produce byte-identical results for any
 * worker count: the per-shard event order is the per-queue (tick, seq)
 * order, and the cross-shard merge order is a pure function of the
 * messages, never of thread timing.
 */

#ifndef PIPELLM_SIM_SHARDED_SCHEDULER_HH
#define PIPELLM_SIM_SHARDED_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"
#include "sim/worker_pool.hh"

namespace pipellm {
namespace sim {

/**
 * A fixed set of EventQueues advanced in parallel lookahead windows.
 *
 * Shards [0, numShards) are worker shards; hostShard() names the
 * driver's staging slot for messages posted between windows. All
 * methods except event callbacks running inside runWindow() must be
 * called from the driving thread.
 */
class ShardedScheduler
{
  public:
    struct Config
    {
        /** Execution streams for runWindow (0 = hw concurrency). */
        unsigned workers = 1;
        /**
         * Minimum cross-shard message latency in ticks. A message
         * posted from a shard callback at tick t must land no earlier
         * than t + lookahead; the coupling points (bridge latency,
         * lane-grant turnaround, arrival spacing) guarantee >= 1.
         */
        Tick lookahead = 1;
    };

    ShardedScheduler(unsigned shards, Config config);

    ShardedScheduler(const ShardedScheduler &) = delete;
    ShardedScheduler &operator=(const ShardedScheduler &) = delete;

    unsigned numShards() const { return unsigned(queues_.size()); }

    /** The driver's shard id for post(); one past the worker shards. */
    unsigned hostShard() const { return numShards(); }

    EventQueue &shard(unsigned s) { return *queues_[s]; }
    const EventQueue &shard(unsigned s) const { return *queues_[s]; }

    /**
     * Stage @p fn to run on shard @p to at tick @p when. Callable from
     * the driver (@p from == hostShard()) between windows, or from an
     * event callback on shard @p from during a window. Messages become
     * target-shard events at the next window barrier, merged across
     * sources in (when, from, seq) order; @p when must respect the
     * lookahead contract (never earlier than the horizon of the window
     * it was posted in).
     */
    void post(unsigned from, unsigned to, Tick when, EventFn &&fn);

    /** Earliest pending local event across shards (maxTick if none). */
    Tick nextEventTick() const;

    /** True when no shard has events and no message is staged. */
    bool idle() const;

    /**
     * Dispatch every shard's events strictly before @p horizon (in
     * parallel across shards), then merge staged messages. A horizon
     * of maxTick drains everything and requires that no messages be
     * posted during the window.
     */
    void runWindow(Tick horizon);

    /**
     * Windows to completion: repeatedly run a window at the next
     * event tick plus the lookahead until every shard drains and no
     * messages remain.
     */
    void run();

    /** Events dispatched across all shards. */
    std::uint64_t dispatched() const;

    /** Cross-shard messages merged across all barriers so far. */
    std::uint64_t messagesMerged() const { return messages_merged_; }

    /** Windows executed so far. */
    std::uint64_t windows() const { return windows_; }

  private:
    struct Message
    {
        Tick when;
        unsigned from;
        unsigned to;
        std::uint64_t seq; ///< per-outbox posting order
        EventFn fn;
    };

    void applyMessages(Tick horizon);

    Config config_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    /** One outbox per shard plus one for the host/driver slot. */
    std::vector<std::vector<Message>> outboxes_;
    std::vector<std::uint64_t> outbox_seq_;
    std::unique_ptr<WorkerPool> pool_;
    Tick completed_horizon_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t messages_merged_ = 0;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_SHARDED_SCHEDULER_HH
