#include "sim/sharded_scheduler.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace sim {

ShardedScheduler::ShardedScheduler(unsigned shards, Config config)
    : config_(config)
{
    PIPELLM_ASSERT(shards > 0, "scheduler needs at least one shard");
    PIPELLM_ASSERT(config_.lookahead >= 1,
                   "lookahead must be at least one tick");
    queues_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        queues_.push_back(std::make_unique<EventQueue>());
    outboxes_.resize(std::size_t(shards) + 1);
    outbox_seq_.resize(std::size_t(shards) + 1, 0);
    pool_ = std::make_unique<WorkerPool>(config_.workers);
}

void
ShardedScheduler::post(unsigned from, unsigned to, Tick when, EventFn &&fn)
{
    PIPELLM_ASSERT(to < numShards(), "posting to unknown shard ", to);
    PIPELLM_ASSERT(from <= numShards(), "posting from unknown shard ",
                   from);
    // Sender-side sanity check on the lookahead contract. The
    // authoritative check happens at merge time against the window
    // horizon; this one catches a shard trying to reach into its own
    // present.
    if (from < numShards()) {
        PIPELLM_ASSERT(when >= queues_[from]->now() + config_.lookahead,
                       "message from shard ", from, " at tick ",
                       queues_[from]->now(), " lands at ", when,
                       " inside the lookahead of ", config_.lookahead);
    }
    auto &outbox = outboxes_[from];
    outbox.push_back(
        Message{when, from, to, outbox_seq_[from]++, std::move(fn)});
}

Tick
ShardedScheduler::nextEventTick() const
{
    Tick next = maxTick;
    for (const auto &queue : queues_)
        next = std::min(next, queue->nextEventTick());
    return next;
}

bool
ShardedScheduler::idle() const
{
    for (const auto &queue : queues_) {
        if (!queue->empty())
            return false;
    }
    for (const auto &outbox : outboxes_) {
        if (!outbox.empty())
            return false;
    }
    return true;
}

void
ShardedScheduler::applyMessages(Tick horizon)
{
    std::vector<Message> merged;
    for (auto &outbox : outboxes_) {
        merged.insert(merged.end(),
                      std::make_move_iterator(outbox.begin()),
                      std::make_move_iterator(outbox.end()));
        outbox.clear();
    }
    if (merged.empty())
        return;
    // Deterministic merge order: a pure function of the messages
    // themselves, never of which worker staged them first.
    std::sort(merged.begin(), merged.end(),
              [](const Message &a, const Message &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.from != b.from)
                      return a.from < b.from;
                  return a.seq < b.seq;
              });
    for (auto &msg : merged) {
        PIPELLM_ASSERT(msg.when >= horizon,
                       "message from shard ", msg.from, " to ", msg.to,
                       " at tick ", msg.when,
                       " violates the window horizon ", horizon);
        queues_[msg.to]->schedule(msg.when, std::move(msg.fn));
    }
    messages_merged_ += merged.size();
}

void
ShardedScheduler::runWindow(Tick horizon)
{
    PIPELLM_ASSERT(horizon >= completed_horizon_,
                   "window horizon ", horizon,
                   " regresses behind ", completed_horizon_);
    ++windows_;
    // Messages staged by the driver since the last barrier become
    // events now, before the shards run: they may land anywhere at or
    // past the completed horizon.
    applyMessages(completed_horizon_);
    if (nextEventTick() < horizon) {
        pool_->parallelFor(queues_.size(), [&](std::size_t s) {
            queues_[s]->runBefore(horizon);
        });
    }
    applyMessages(horizon);
    completed_horizon_ = horizon;
}

void
ShardedScheduler::run()
{
    for (;;) {
        // Messages posted by the driver between windows become events
        // before the next horizon is chosen.
        applyMessages(completed_horizon_);
        Tick next = nextEventTick();
        if (next == maxTick)
            break;
        Tick lookahead = std::max<Tick>(config_.lookahead, 1);
        Tick horizon =
            next >= maxTick - lookahead ? maxTick : next + lookahead;
        runWindow(horizon);
    }
}

std::uint64_t
ShardedScheduler::dispatched() const
{
    std::uint64_t total = 0;
    for (const auto &queue : queues_)
        total += queue->dispatched();
    return total;
}

} // namespace sim
} // namespace pipellm
