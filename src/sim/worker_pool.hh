/**
 * @file
 * Fixed-size worker pool for the sharded scheduler.
 *
 * This is the only place in the tree allowed to touch std::thread
 * (enforced by tools/lint/check_banned_apis.py): every other component
 * stays single-threaded and deterministic, and parallelism exists only
 * as "run these disjoint shards somewhere" submitted through
 * parallelFor(). The pool is deliberately minimal — one job at a time,
 * the caller participates in the work, and a barrier at the end of
 * every parallelFor — because the sharded scheduler's determinism
 * argument leans on exactly that bulk-synchronous structure.
 */

#ifndef PIPELLM_SIM_WORKER_POOL_HH
#define PIPELLM_SIM_WORKER_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/mutex.hh"

namespace pipellm {
namespace sim {

/**
 * Persistent worker threads executing one indexed parallel loop at a
 * time. With `threads <= 1` no threads are spawned and parallelFor
 * degenerates to an inline loop, so a 1-worker configuration is
 * bit-for-bit the single-threaded simulator.
 */
class WorkerPool
{
  public:
    /** @p threads counts the caller too; 0 means hardwareConcurrency. */
    explicit WorkerPool(unsigned threads);

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    ~WorkerPool();

    /** Total execution streams, caller included (>= 1). */
    unsigned threads() const { return unsigned(workers_.size()) + 1; }

    /** Detected hardware concurrency, never less than 1. */
    static unsigned hardwareConcurrency();

    /**
     * Run body(i) for i in [0, n), work-stealing across the pool plus
     * the calling thread, and return only when every index finished
     * (full barrier). Indices are claimed dynamically, so @p body must
     * only touch state owned by index i.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();
    void runShare(const std::function<void(std::size_t)> &body,
                  std::size_t n);

    std::vector<std::thread> workers_;

    Mutex mu_;
    CondVar wake_;
    CondVar done_;
    std::uint64_t generation_ GUARDED_BY(mu_) = 0;
    bool stopping_ GUARDED_BY(mu_) = false;

    // Current job; published under mu_, cleared when the job retires.
    const std::function<void(std::size_t)> *job_body_ GUARDED_BY(mu_) =
        nullptr;
    std::size_t job_n_ GUARDED_BY(mu_) = 0;
    std::atomic<std::size_t> next_index_{0};
    unsigned active_runners_ GUARDED_BY(mu_) = 0;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_WORKER_POOL_HH
