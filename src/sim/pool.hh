/**
 * @file
 * Slab-backed object pool for hot-path simulator allocations.
 *
 * The event queue churns through nodes at simulator speed; going to
 * the global allocator per event costs a malloc/free round trip and
 * scatters nodes across the heap. Pool hands out fixed-size slots from
 * geometrically growing slabs and recycles them through a LIFO free
 * stack, so steady-state scheduling never touches the allocator and
 * recently freed slots (still cache-hot) are reused first.
 *
 * Under AddressSanitizer, free slots are poisoned so stale pointers to
 * recycled objects are caught as use-after-free instead of silently
 * reading the next occupant.
 */

#ifndef PIPELLM_SIM_POOL_HH
#define PIPELLM_SIM_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.hh"

#ifndef PIPELLM_ASAN
#  if defined(__SANITIZE_ADDRESS__)
#    define PIPELLM_ASAN 1
#  elif defined(__has_feature)
#    if __has_feature(address_sanitizer)
#      define PIPELLM_ASAN 1
#    endif
#  endif
#endif
#ifndef PIPELLM_ASAN
#define PIPELLM_ASAN 0
#endif

#if PIPELLM_ASAN
#include <sanitizer/asan_interface.h>
#define PIPELLM_POISON_SLOT(ptr, len) __asan_poison_memory_region(ptr, len)
#define PIPELLM_UNPOISON_SLOT(ptr, len) \
    __asan_unpoison_memory_region(ptr, len)
#else
#define PIPELLM_POISON_SLOT(ptr, len) ((void)0)
#define PIPELLM_UNPOISON_SLOT(ptr, len) ((void)0)
#endif

namespace pipellm {
namespace sim {

/**
 * Fixed-type object pool: O(1) create/destroy, no per-object heap
 * traffic after warmup. Not thread-safe by design — each shard owns
 * its pools outright.
 */
template <typename T>
class Pool
{
  public:
    Pool() = default;

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    ~Pool()
    {
        PIPELLM_ASSERT(live_ == 0, "destroying pool with ", live_,
                       " live objects");
        // Hand the pages back to the allocator unpoisoned; the heap
        // may recycle them for unrelated objects.
        for (std::size_t i = 0; i < slabs_.size(); ++i)
            PIPELLM_UNPOISON_SLOT(slabs_[i].get(),
                                  slab_sizes_[i] * sizeof(Slot));
    }

    /** Grow capacity so at least @p n objects fit without new slabs. */
    void
    reserve(std::size_t n)
    {
        if (n > capacity_)
            grow(n - capacity_);
    }

    /** Construct a T in a pooled slot. */
    template <typename... Args>
    T *
    create(Args &&...args)
    {
        if (free_.empty())
            grow(capacity_ == 0 ? firstSlabSlots : capacity_);
        Slot *slot = free_.back();
        free_.pop_back();
        PIPELLM_UNPOISON_SLOT(slot, sizeof(Slot));
        T *obj = ::new (slot->bytes) T(std::forward<Args>(args)...);
        ++live_;
        return obj;
    }

    /** Destroy a pool-created T and recycle its slot. */
    void
    destroy(T *obj)
    {
        PIPELLM_ASSERT(obj != nullptr, "destroying null pool object");
        PIPELLM_ASSERT(live_ > 0, "pool double-destroy");
        obj->~T();
        auto *slot = reinterpret_cast<Slot *>(
            reinterpret_cast<std::byte *>(obj) - offsetof(Slot, bytes));
        free_.push_back(slot);
        PIPELLM_POISON_SLOT(slot, sizeof(Slot));
        --live_;
    }

    std::size_t liveCount() const { return live_; }
    std::size_t capacity() const { return capacity_; }

  private:
    struct Slot
    {
        alignas(T) std::byte bytes[sizeof(T)];
    };

    static constexpr std::size_t firstSlabSlots = 64;

    void
    grow(std::size_t slots)
    {
        auto slab = std::make_unique<Slot[]>(slots);
        free_.reserve(free_.size() + slots);
        // Push in reverse so the lowest address pops first: warmup
        // allocations walk each slab front to back.
        for (std::size_t i = slots; i-- > 0;) {
            free_.push_back(&slab[i]);
            PIPELLM_POISON_SLOT(&slab[i], sizeof(Slot));
        }
        capacity_ += slots;
        slab_sizes_.push_back(slots);
        slabs_.push_back(std::move(slab));
    }

    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<std::size_t> slab_sizes_;
    std::vector<Slot *> free_;
    std::size_t live_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_POOL_HH
