/**
 * @file
 * Small-buffer-optimized move-only callback.
 *
 * The event queue dispatches millions of callbacks per run; wrapping
 * each one in a std::function costs a heap allocation whenever the
 * capture list outgrows the (implementation-defined, usually 16-byte)
 * inline buffer, plus the copy-constructibility tax on every capture.
 * InlineFn is the allocation-lean replacement: a 48-byte inline buffer
 * covers every callback the simulator schedules today, move-only
 * semantics admit captures that std::function rejects, and the heap
 * fallback keeps oversized captures correct rather than ill-formed.
 */

#ifndef PIPELLM_SIM_SMALL_FN_HH
#define PIPELLM_SIM_SMALL_FN_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace sim {

/**
 * A move-only `void()` callable with a 48-byte inline buffer.
 *
 * Callables that fit the buffer (size, alignment, nothrow-movable) are
 * stored in place; everything else lands on the heap exactly once.
 * Invoking an empty InlineFn is a programming error and asserts.
 */
class InlineFn
{
  public:
    /** Inline capture budget; larger callables fall back to the heap. */
    static constexpr std::size_t inlineBytes = 48;

    InlineFn() noexcept = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFn> &&
                  std::is_invocable_r_v<void, D &>>>
    InlineFn(F &&f) // NOLINT(google-explicit-constructor)
    {
        construct<D>(std::forward<F>(f));
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    void
    operator()()
    {
        PIPELLM_ASSERT(call_, "invoking an empty InlineFn");
        call_(&buf_);
    }

    explicit operator bool() const noexcept { return call_ != nullptr; }

    /** True when the callable lives in the inline buffer (test hook). */
    bool
    inlineStored() const noexcept
    {
        return call_ != nullptr && inline_;
    }

  private:
    enum class Op
    {
        /** Move the callable from @p src storage into @p dst storage. */
        Relocate,
        /** Destroy the callable held in @p src storage. */
        Destroy,
    };

    using CallFn = void (*)(void *storage);
    using ManageFn = void (*)(Op op, void *dst, void *src);

    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= inlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    struct InlineHandler
    {
        static void
        call(void *storage)
        {
            (*std::launder(reinterpret_cast<D *>(storage)))();
        }

        static void
        manage(Op op, void *dst, void *src)
        {
            D *obj = std::launder(reinterpret_cast<D *>(src));
            if (op == Op::Relocate)
                ::new (dst) D(std::move(*obj));
            obj->~D();
        }
    };

    template <typename D>
    struct HeapHandler
    {
        static D *&
        slot(void *storage)
        {
            return *std::launder(reinterpret_cast<D **>(storage));
        }

        static void call(void *storage) { (*slot(storage))(); }

        static void
        manage(Op op, void *dst, void *src)
        {
            if (op == Op::Relocate) {
                ::new (dst) (D *)(slot(src));
            } else {
                delete slot(src); // NOLINT(cppcoreguidelines-owning-memory)
            }
        }
    };

    template <typename D, typename F>
    void
    construct(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (&buf_) D(std::forward<F>(f));
            call_ = &InlineHandler<D>::call;
            manage_ = &InlineHandler<D>::manage;
            inline_ = true;
        } else {
            ::new (&buf_) (D *)(new D(std::forward<F>(f)));
            call_ = &HeapHandler<D>::call;
            manage_ = &HeapHandler<D>::manage;
            inline_ = false;
        }
    }

    void
    moveFrom(InlineFn &other) noexcept
    {
        if (!other.call_)
            return;
        other.manage_(Op::Relocate, &buf_, &other.buf_);
        call_ = other.call_;
        manage_ = other.manage_;
        inline_ = other.inline_;
        other.call_ = nullptr;
        other.manage_ = nullptr;
    }

    void
    reset() noexcept
    {
        if (call_) {
            manage_(Op::Destroy, nullptr, &buf_);
            call_ = nullptr;
            manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte buf_[inlineBytes];
    CallFn call_ = nullptr;
    ManageFn manage_ = nullptr;
    bool inline_ = false;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_SMALL_FN_HH
