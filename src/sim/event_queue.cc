#include "sim/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace sim {

void
EventQueue::schedule(Tick when, EventFn fn)
{
    PIPELLM_ASSERT(when >= now_, "scheduling into the past: when=", when,
                   " now=", now_);
    events_.push(Event{when, next_seq_++, std::move(fn)});
}

void
EventQueue::scheduleIn(Tick delay, EventFn fn)
{
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // Copy out before pop: the callback may schedule new events.
    Event ev = events_.top();
    events_.pop();
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteClockAdvance(
        audit_id_, now_, ev.when));
    now_ = ev.when;
    ++dispatched_;
    ev.fn();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick deadline)
{
    while (!events_.empty() && events_.top().when <= deadline)
        step();
    if (now_ < deadline) {
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteClockAdvance(
            audit_id_, now_, deadline));
        now_ = deadline;
    }
}

} // namespace sim
} // namespace pipellm
