#include "sim/event_queue.hh"

#include <utility>
#include <vector>

#include "common/logging.hh"

namespace pipellm {
namespace sim {

EventQueue::~EventQueue()
{
    // Destroy pending events iteratively; a recursive walk could
    // overflow the stack on a deep heap.
    std::vector<Event *> work;
    if (root_)
        work.push_back(root_);
    while (!work.empty()) {
        Event *ev = work.back();
        work.pop_back();
        if (ev->child)
            work.push_back(ev->child);
        if (ev->sibling)
            work.push_back(ev->sibling);
        pool_.destroy(ev);
    }
    root_ = nullptr;
}

EventQueue::Event *
EventQueue::meld(Event *a, Event *b)
{
    if (!a)
        return b;
    if (!b)
        return a;
    if (before(b, a))
        std::swap(a, b);
    // b becomes a's leftmost child.
    b->sibling = a->child;
    a->child = b;
    return a;
}

EventQueue::Event *
EventQueue::mergePairs(Event *first)
{
    if (!first)
        return nullptr;
    // Two-pass pairing merge, iterative in both passes. Pass one melds
    // adjacent pairs left to right, chaining the melded roots through
    // their (now spare) sibling links; pass two melds that chain right
    // to left, which is what gives the pairing heap its amortized
    // O(log n) pop.
    Event *stack = nullptr;
    while (first) {
        Event *a = first;
        Event *b = a->sibling;
        first = b ? b->sibling : nullptr;
        a->sibling = nullptr;
        if (b)
            b->sibling = nullptr;
        Event *melded = meld(a, b);
        melded->sibling = stack;
        stack = melded;
    }
    Event *root = stack;
    stack = stack->sibling;
    root->sibling = nullptr;
    while (stack) {
        Event *next = stack->sibling;
        stack->sibling = nullptr;
        root = meld(root, stack);
        stack = next;
    }
    return root;
}

void
EventQueue::schedule(Tick when, EventFn &&fn)
{
    PIPELLM_ASSERT(when >= now_, "scheduling into the past: when=", when,
                   " now=", now_);
    Event *ev = pool_.create(when, next_seq_++, std::move(fn));
    root_ = meld(root_, ev);
    ++pending_;
}

void
EventQueue::scheduleIn(Tick delay, EventFn &&fn)
{
    schedule(now_ + delay, std::move(fn));
}

EventQueue::Event *
EventQueue::popMin()
{
    Event *ev = root_;
    root_ = mergePairs(ev->child);
    ev->child = nullptr;
    --pending_;
    return ev;
}

void
EventQueue::dispatch(Event *ev)
{
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteClockAdvance(
        audit_id_, now_, ev->when));
    now_ = ev->when;
    ++dispatched_;
    // Move the callback out and recycle the node before invoking it:
    // the callback may schedule new events, and the freed slot is the
    // first one the pool hands back.
    EventFn fn = std::move(ev->fn);
    pool_.destroy(ev);
    fn();
}

bool
EventQueue::step()
{
    if (!root_)
        return false;
    dispatch(popMin());
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick deadline)
{
    while (root_ && root_->when <= deadline)
        dispatch(popMin());
    if (now_ < deadline) {
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteClockAdvance(
            audit_id_, now_, deadline));
        now_ = deadline;
    }
}

void
EventQueue::runBefore(Tick horizon)
{
    while (root_ && root_->when < horizon)
        dispatch(popMin());
}

} // namespace sim
} // namespace pipellm
