/**
 * @file
 * Timed hardware resources: serialized bandwidth servers and lane
 * groups.
 *
 * A BandwidthResource models a device that serves requests one at a
 * time at a fixed byte rate plus a fixed per-request latency: a PCIe
 * link, a copy engine, one CPU encryption thread. A LaneGroup models k
 * identical lanes with earliest-free dispatch, e.g. a pool of
 * encryption threads.
 *
 * Resources chain: a BandwidthResource may drain into a shared
 * downstream stage (setDownstream), modeling hierarchical bandwidth —
 * e.g. per-device PCIe links that all funnel through one host bridge.
 * Every byte submitted to the upstream stage is also charged to the
 * downstream stage cut-through style (the downstream begins draining
 * when the upstream starts), so the downstream only binds when the
 * *aggregate* demand across upstreams exceeds its rate.
 */

#ifndef PIPELLM_SIM_RESOURCE_HH
#define PIPELLM_SIM_RESOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"

namespace pipellm {
namespace sim {

/** Serialized FIFO server with a byte rate and per-request latency. */
class BandwidthResource
{
  public:
    /**
     * @param eq event queue providing the clock
     * @param name for diagnostics
     * @param bytes_per_sec service rate
     * @param per_op_latency fixed overhead added to every request
     */
    BandwidthResource(EventQueue &eq, std::string name,
                      double bytes_per_sec, Tick per_op_latency = 0);

    /**
     * Enqueue a request of @p bytes arriving now; returns its
     * completion tick. Requests are served strictly in submission
     * order.
     */
    Tick submit(std::uint64_t bytes);

    /** Enqueue a request that cannot start before @p earliest. */
    Tick submitNotBefore(Tick earliest, std::uint64_t bytes);

    /** submit() and fire @p fn at the completion tick. */
    Tick submit(std::uint64_t bytes, EventFn &&fn);

    /** Tick at which the resource next becomes idle. */
    Tick freeAt() const { return free_at_; }

    /** True if a request submitted now would start immediately. */
    bool idle() const { return free_at_ <= eq_.now(); }

    double rate() const { return rate_; }
    void setRate(double bytes_per_sec) { rate_ = bytes_per_sec; }

    Tick perOpLatency() const { return latency_; }
    void setPerOpLatency(Tick t) { latency_ = t; }

    /**
     * Chain this resource into a shared downstream stage: every
     * request served here is also charged to @p shared, and the
     * request completes only when both stages are done. Pass nullptr
     * to unchain. The downstream resource is not owned and must
     * outlive this one; chains may nest (the downstream can itself
     * drain into another stage).
     */
    void setDownstream(BandwidthResource *shared) { downstream_ = shared; }
    BandwidthResource *downstream() const { return downstream_; }

    const std::string &name() const { return name_; }

    /** Process-unique audit identity (0 in non-audit builds). */
    std::uint64_t auditId() const { return audit_id_; }

    /** Total bytes served. */
    std::uint64_t bytesServed() const { return bytes_served_; }

    /** Total requests served. */
    std::uint64_t requests() const { return requests_; }

    /** Accumulated busy time (service, not queueing). */
    Tick busyTicks() const { return busy_ticks_; }

    /** Mean utilization over [0, now]. */
    double utilization() const;

  private:
    EventQueue &eq_;
    std::string name_;
    double rate_;
    Tick latency_;
    Tick free_at_ = 0;
    std::uint64_t bytes_served_ = 0;
    std::uint64_t requests_ = 0;
    Tick busy_ticks_ = 0;
    BandwidthResource *downstream_ = nullptr;
    std::uint64_t audit_id_ = 0;
};

/**
 * k identical bandwidth lanes with earliest-free dispatch. Models a
 * pool of CPU encryption threads: aggregate throughput scales with the
 * lane count while each request is still served by a single lane.
 */
class LaneGroup
{
  public:
    LaneGroup(EventQueue &eq, std::string name, unsigned lanes,
              double bytes_per_sec_per_lane, Tick per_op_latency = 0);

    /** Dispatch @p bytes to the earliest-free lane; completion tick. */
    Tick submit(std::uint64_t bytes);

    /** Dispatch with a start-time floor. */
    Tick submitNotBefore(Tick earliest, std::uint64_t bytes);

    /**
     * Dispatch with a start-time floor, preferring the *latest-free*
     * lane that can still start at @p earliest (falling back to the
     * earliest-free lane when all are busy past the floor). Clients
     * that share one pool should use this: earliest-free dispatch
     * makes a serial chain of requests rotate across idle lanes and
     * mark every lane busy until the chain's tail (lanes never
     * backfill), which a best-fit pick avoids by keeping the chain on
     * a single lane.
     */
    Tick submitNotBeforeBestFit(Tick earliest, std::uint64_t bytes);

    /** Dispatch and fire @p fn at completion. */
    Tick submit(std::uint64_t bytes, EventFn &&fn);

    unsigned lanes() const { return unsigned(lanes_.size()); }

    /** Earliest tick at which any lane is free. */
    Tick earliestFree() const;

    /** Sum of bytes served across lanes. */
    std::uint64_t bytesServed() const;

    /** Per-lane access for stats. */
    const BandwidthResource &lane(unsigned i) const { return lanes_[i]; }

  private:
    BandwidthResource &pickLane();

    EventQueue &eq_;
    std::vector<BandwidthResource> lanes_;
};

/**
 * Serialized FIFO server for requests measured in *time* rather than
 * bytes — e.g. a GPU compute engine executing kernels of modeled
 * duration.
 */
class SerialTimeline
{
  public:
    SerialTimeline(EventQueue &eq, std::string name);

    /** Occupy the resource for @p duration, not before @p earliest. */
    Tick submit(Tick earliest, Tick duration);

    /** Occupy starting now. */
    Tick submitNow(Tick duration);

    Tick freeAt() const { return free_at_; }
    Tick busyTicks() const { return busy_ticks_; }
    std::uint64_t requests() const { return requests_; }

    /** Mean utilization over [0, max(now, freeAt)]. */
    double utilization() const;

    const std::string &name() const { return name_; }

    /** Process-unique audit identity (0 in non-audit builds). */
    std::uint64_t auditId() const { return audit_id_; }

  private:
    EventQueue &eq_;
    std::string name_;
    Tick free_at_ = 0;
    Tick busy_ticks_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t audit_id_ = 0;
};

} // namespace sim
} // namespace pipellm

#endif // PIPELLM_SIM_RESOURCE_HH
