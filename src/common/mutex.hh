/**
 * @file
 * Capability-annotated mutex primitives.
 *
 * Thin wrappers over std::mutex / std::condition_variable_any that
 * carry the Clang Thread Safety Analysis attributes from
 * common/thread_annotations.hh. The std types themselves carry no
 * capability, so a bare std::mutex member makes every GUARDED_BY
 * uncheckable; all lock discipline in the tree goes through these.
 *
 * They live in common/ (not sim/) because the auditor — which sits
 * *below* sim/ in the layering diagram enforced by
 * tools/lint/pipellm_lint.py — also guards its registries with one.
 * sim/mutex.hh re-exports them under the sim:: namespace for the
 * concurrent simulator core.
 */

#ifndef PIPELLM_COMMON_MUTEX_HH
#define PIPELLM_COMMON_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace pipellm {
namespace common {

/**
 * Exclusive capability wrapping std::mutex. Prefer LockGuard over
 * manual lock()/unlock() pairs; the manual interface exists for the
 * analysis-visible primitives LockGuard and CondVar build on.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/**
 * RAII guard acquiring a Mutex for the enclosing scope. The
 * SCOPED_CAPABILITY attribute teaches the analysis that the capability
 * is held from construction to destruction (early returns included).
 */
class SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~LockGuard() RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable waiting directly on a Mutex.
 *
 * wait() atomically releases and reacquires the mutex internally, but
 * is annotated REQUIRES(mu): from the analysis' point of view the
 * capability is held across the call, which is sound for callers — the
 * guarded state may change over the wait (hence the mandatory while
 * loop around every wait), but is never accessible unlocked.
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Block until notified; callers re-test their predicate in a
     *  while loop (spurious wakeups included by contract). */
    void wait(Mutex &mu) REQUIRES(mu) { cv_.wait(mu); }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace common
} // namespace pipellm

#endif // PIPELLM_COMMON_MUTEX_HH
