/**
 * @file
 * Status and error reporting, modeled after gem5's logging discipline.
 *
 * panic()  - an internal invariant was violated; this is a bug in the
 *            simulator itself. Aborts (core dump friendly).
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters). Exits with 1.
 * warn()   - something is suspicious but execution continues.
 * inform() - plain status output for the user.
 */

#ifndef PIPELLM_COMMON_LOGGING_HH
#define PIPELLM_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace pipellm {

namespace detail {

/** Append the tail arguments of a log call to a message stream. */
inline void
logAppend(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
logAppend(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    detail::logAppend(os, rest...);
}

/** Emit one formatted log record to stderr. */
void logEmit(const char *level, const std::string &message,
             const char *file, int line);

[[noreturn]] void logAbort();
[[noreturn]] void logExit();

} // namespace detail

/** Build a log message by streaming all arguments together. */
template <typename... Args>
std::string
logConcat(const Args &...args)
{
    std::ostringstream os;
    detail::logAppend(os, args...);
    return os.str();
}

} // namespace pipellm

/** Internal invariant violated: report and abort. */
#define PANIC(...)                                                         \
    do {                                                                   \
        ::pipellm::detail::logEmit("panic",                                \
            ::pipellm::logConcat(__VA_ARGS__), __FILE__, __LINE__);        \
        ::pipellm::detail::logAbort();                                     \
    } while (0)

/** Unrecoverable user/configuration error: report and exit(1). */
#define FATAL(...)                                                         \
    do {                                                                   \
        ::pipellm::detail::logEmit("fatal",                                \
            ::pipellm::logConcat(__VA_ARGS__), __FILE__, __LINE__);        \
        ::pipellm::detail::logExit();                                      \
    } while (0)

/** Suspicious condition; execution continues. */
#define WARN(...)                                                          \
    ::pipellm::detail::logEmit("warn",                                     \
        ::pipellm::logConcat(__VA_ARGS__), __FILE__, __LINE__)

/** Informational status message. */
#define INFORM(...)                                                        \
    ::pipellm::detail::logEmit("info",                                     \
        ::pipellm::logConcat(__VA_ARGS__), __FILE__, __LINE__)

/** Cheap always-on invariant check that panics with context. */
#define PIPELLM_ASSERT(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            PANIC("assertion failed: " #cond " ",                          \
                  ::pipellm::logConcat(__VA_ARGS__));                      \
        }                                                                  \
    } while (0)

#endif // PIPELLM_COMMON_LOGGING_HH
