/**
 * @file
 * Clang Thread Safety Analysis annotation macros (Abseil-style).
 *
 * The concurrent core (worker pool, shared host arena, auditor) proves
 * its lock discipline at compile time: mutexes are declared as
 * capabilities, protected fields carry GUARDED_BY, and helpers that
 * assume the lock carry REQUIRES. Clang's -Wthread-safety then rejects
 * any access path that cannot show the capability is held — including
 * paths no test happens to exercise, which is exactly where TSan stops
 * helping. CI builds the tree with -Wthread-safety -Wthread-safety-beta
 * promoted to errors (see .github/workflows/ci.yml, static-analysis).
 *
 * On compilers without the attributes (GCC) every macro expands to
 * nothing, so the annotations are free and the tree stays portable.
 *
 * Conventions (DESIGN.md §13):
 *  - lock members are `common::Mutex` (or the `sim::Mutex` alias),
 *    never bare std::mutex — the std types carry no capability;
 *  - every field touched by more than one thread is GUARDED_BY its
 *    mutex;
 *  - private helpers that run under the caller's lock are named
 *    `*Locked()` and annotated REQUIRES(mu_);
 *  - recursive mutexes are banned: the analysis cannot reason about
 *    re-entrant acquisition, so re-entrant paths are split into
 *    *Locked() helpers instead (see mem/page_protection.hh).
 */

#ifndef PIPELLM_COMMON_THREAD_ANNOTATIONS_HH
#define PIPELLM_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && (!defined(SWIG))
#define PIPELLM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PIPELLM_THREAD_ANNOTATION(x) // no-op
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define CAPABILITY(x) PIPELLM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires on construction, releases on
 *  destruction (lock guards). */
#define SCOPED_CAPABILITY PIPELLM_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define GUARDED_BY(x) PIPELLM_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define PT_GUARDED_BY(x) PIPELLM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function may only be called while holding the capabilities. */
#define REQUIRES(...) \
    PIPELLM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function may only be called while NOT holding the capabilities. */
#define EXCLUDES(...) \
    PIPELLM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function acquires the capability and does not release it. */
#define ACQUIRE(...) \
    PIPELLM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define RELEASE(...) \
    PIPELLM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning @p ret. */
#define TRY_ACQUIRE(...) \
    PIPELLM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Asserts (at runtime) that the capability is already held. */
#define ASSERT_CAPABILITY(x) \
    PIPELLM_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the given capability. */
#define RETURN_CAPABILITY(x) PIPELLM_THREAD_ANNOTATION(lock_returned(x))

/** Mutex acquisition order: this one before @p ... */
#define ACQUIRED_BEFORE(...) \
    PIPELLM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Mutex acquisition order: this one after @p ... */
#define ACQUIRED_AFTER(...) \
    PIPELLM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Escape hatch: the function intentionally evades the analysis.
 *  Every use must carry a justification comment; the lint's
 *  thread-annotation hygiene rules keep this out of src/sim, src/mem
 *  and src/audit entirely. */
#define NO_THREAD_SAFETY_ANALYSIS \
    PIPELLM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // PIPELLM_COMMON_THREAD_ANNOTATIONS_HH
