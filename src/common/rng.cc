#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace pipellm {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    PIPELLM_ASSERT(lo <= hi, "uniformInt bounds reversed");
    std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % span);
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit && limit != 0);
    return lo + draw % span;
}

double
Rng::uniformReal()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::exponential(double rate)
{
    PIPELLM_ASSERT(rate > 0, "exponential rate must be positive");
    double u;
    do {
        u = uniformReal();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::normal(double mean, double stddev)
{
    double u1;
    do {
        u1 = uniformReal();
    } while (u1 <= 0.0);
    double u2 = uniformReal();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniformReal() < p;
}

Tick
Rng::exponentialTicks(double events_per_sec)
{
    double ns = exponential(events_per_sec) * 1e9;
    if (ns >= double(maxTick))
        return maxTick;
    return Tick(ns);
}

Tick
Rng::jitterTicks(Tick span)
{
    if (span == 0)
        return 0;
    return uniformInt(0, span);
}

std::uint8_t
Rng::syntheticByte(std::uint64_t region_id, std::uint64_t offset)
{
    std::uint64_t x = region_id * 0x9e3779b97f4a7c15ull + offset;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return std::uint8_t(x);
}

} // namespace pipellm
