/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the simulator draws from an explicitly
 * seeded Rng so that whole experiments are bit-reproducible. The core
 * is splitmix64 feeding xoshiro256**, which is small, fast, and has no
 * global state.
 */

#ifndef PIPELLM_COMMON_RNG_HH
#define PIPELLM_COMMON_RNG_HH

#include <cstdint>

#include "common/units.hh"

namespace pipellm {

/** Seedable xoshiro256** generator with distribution helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Exponential variate with the given rate (events per unit). */
    double exponential(double rate);

    /** Normal variate via Box-Muller. */
    double normal(double mean, double stddev);

    /** Log-normal variate parameterized by the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /**
     * Exponential inter-arrival time in simulated ticks for a rate
     * given in events per simulated second (fault and crash arrivals
     * draw from this). Saturates at maxTick for vanishing rates.
     */
    Tick exponentialTicks(double events_per_sec);

    /** Uniform jitter in [0, span] ticks; 0 when span is 0. */
    Tick jitterTicks(Tick span);

    /**
     * Deterministic byte for synthetic memory content: a hash of the
     * (region identity, offset) pair, stable across runs.
     */
    static std::uint8_t syntheticByte(std::uint64_t region_id,
                                      std::uint64_t offset);

  private:
    std::uint64_t state_[4];
};

} // namespace pipellm

#endif // PIPELLM_COMMON_RNG_HH
