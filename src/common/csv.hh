/**
 * @file
 * Minimal CSV emitter used by benches to dump figure data series.
 */

#ifndef PIPELLM_COMMON_CSV_HH
#define PIPELLM_COMMON_CSV_HH

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pipellm {

/**
 * Row-oriented CSV writer. Values are streamed with operator<<; fields
 * containing commas or quotes are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write the header row. */
    void header(const std::vector<std::string> &columns);

    /** Append one field to the current row. */
    template <typename T>
    CsvWriter &
    field(const T &value)
    {
        std::ostringstream os;
        os << value;
        fields_.push_back(os.str());
        return *this;
    }

    /** Terminate the current row. */
    void endRow();

    /** Rows written so far (excluding the header). */
    std::size_t rows() const { return rows_; }

    const std::string &path() const { return path_; }

  private:
    void writeRow(const std::vector<std::string> &fields);
    static std::string escape(const std::string &raw);

    std::string path_;
    std::ofstream out_;
    std::vector<std::string> fields_;
    std::size_t rows_ = 0;
};

} // namespace pipellm

#endif // PIPELLM_COMMON_CSV_HH
