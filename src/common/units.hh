/**
 * @file
 * Unit helpers shared across the simulator.
 *
 * The simulated clock counts nanoseconds in a 64-bit Tick. Data sizes
 * are plain byte counts. Rates are bytes per second (double), because
 * bandwidths such as "5.8 GB/s" do not divide ticks evenly.
 */

#ifndef PIPELLM_COMMON_UNITS_HH
#define PIPELLM_COMMON_UNITS_HH

#include <cstdint>

namespace pipellm {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Simulated byte-granularity address (host or device). */
using Addr = std::uint64_t;

/** Maximum representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/** Decimal giga, used for bandwidths quoted in GB/s. */
constexpr double GB = 1e9;

constexpr Tick nanoseconds(double ns) { return Tick(ns); }
constexpr Tick microseconds(double us) { return Tick(us * 1e3); }
constexpr Tick milliseconds(double ms) { return Tick(ms * 1e6); }
constexpr Tick seconds(double s) { return Tick(s * 1e9); }

/** Convert a tick count to seconds. */
constexpr double toSeconds(Tick t) { return double(t) / 1e9; }

/** Convert a tick count to microseconds. */
constexpr double toMicroseconds(Tick t) { return double(t) / 1e3; }

/** Convert a tick count to milliseconds. */
constexpr double toMilliseconds(Tick t) { return double(t) / 1e6; }

/**
 * Time to move @p bytes at @p bytes_per_sec, in ticks (rounded up so a
 * non-empty transfer never takes zero time).
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0)
        return 0;
    double ns = double(bytes) / bytes_per_sec * 1e9;
    Tick t = Tick(ns);
    return t > 0 ? t : 1;
}

/** Achieved rate in bytes/s for @p bytes moved over @p ticks. */
constexpr double
achievedRate(std::uint64_t bytes, Tick ticks)
{
    return ticks == 0 ? 0.0 : double(bytes) / toSeconds(ticks);
}

} // namespace pipellm

#endif // PIPELLM_COMMON_UNITS_HH
