#include "common/logging.hh"

#include <cstdio>

namespace pipellm {
namespace detail {

void
logEmit(const char *level, const std::string &message,
        const char *file, int line)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", level, message.c_str(),
                 file, line);
    std::fflush(stderr);
}

void
logAbort()
{
    std::abort();
}

void
logExit()
{
    // NOLINT below: glibc marks exit() MT-Unsafe (race:exit), but this
    // is the terminal FATAL path — no recovery, no concurrent callers
    // that matter once we are tearing the process down.
    std::exit(1); // NOLINT(concurrency-mt-unsafe)
}

} // namespace detail
} // namespace pipellm
