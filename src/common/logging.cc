#include "common/logging.hh"

#include <cstdio>

namespace pipellm {
namespace detail {

void
logEmit(const char *level, const std::string &message,
        const char *file, int line)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", level, message.c_str(),
                 file, line);
    std::fflush(stderr);
}

void
logAbort()
{
    std::abort();
}

void
logExit()
{
    std::exit(1);
}

} // namespace detail
} // namespace pipellm
