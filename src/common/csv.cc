#include "common/csv.hh"

#include "common/logging.hh"

namespace pipellm {

CsvWriter::CsvWriter(const std::string &path)
    : path_(path), out_(path)
{
    if (!out_)
        FATAL("cannot open CSV output file: ", path);
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    writeRow(columns);
}

void
CsvWriter::endRow()
{
    writeRow(fields_);
    fields_.clear();
    ++rows_;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
    out_.flush();
}

std::string
CsvWriter::escape(const std::string &raw)
{
    bool needs_quote = raw.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return raw;
    std::string quoted = "\"";
    for (char c : raw) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace pipellm
