#include "runtime/transfer_trace.hh"

#include "common/csv.hh"
#include "common/units.hh"

namespace pipellm {
namespace runtime {

const char *
toString(TransferOutcome outcome)
{
    switch (outcome) {
      case TransferOutcome::Direct:
        return "direct";
      case TransferOutcome::Hit:
        return "hit";
      case TransferOutcome::Miss:
        return "miss";
      case TransferOutcome::Deferred:
        return "deferred";
      case TransferOutcome::Nop:
        return "nop";
      case TransferOutcome::Retry:
        return "retry";
    }
    return "?";
}

void
TransferTrace::record(const TransferRecord &r)
{
    if (cap_ != 0 && records_.size() >= cap_) {
        ++dropped_;
        return;
    }
    records_.push_back(r);
}

std::uint64_t
TransferTrace::count(TransferOutcome outcome) const
{
    std::uint64_t n = 0;
    for (const auto &r : records_)
        n += r.outcome == outcome;
    return n;
}

std::uint64_t
TransferTrace::totalBytes(bool to_device) const
{
    std::uint64_t n = 0;
    for (const auto &r : records_) {
        if (r.to_device == to_device)
            n += r.bytes;
    }
    return n;
}

TransferTrace::BusView
TransferTrace::busView() const
{
    BusView view;
    for (const auto &r : records_) {
        ++view.transfers;
        if (r.bytes == 1)
            ++view.nop_like;
        if (r.bytes >= 128 * KiB)
            ++view.swap_like;
    }
    if (view.transfers > 0)
        view.nop_fraction =
            double(view.nop_like) / double(view.transfers);
    return view;
}

std::size_t
TransferTrace::writeCsv(const std::string &path) const
{
    CsvWriter csv(path);
    csv.header({"submit_us", "complete_us", "bytes", "direction",
                "outcome"});
    for (const auto &r : records_) {
        csv.field(toMicroseconds(r.submit))
            .field(toMicroseconds(r.complete))
            .field(r.bytes)
            .field(r.to_device ? "H2D" : "D2H")
            .field(toString(r.outcome))
            .endRow();
    }
    return csv.rows();
}

void
TransferTrace::clear()
{
    records_.clear();
    dropped_ = 0;
}

} // namespace runtime
} // namespace pipellm
