#include "runtime/api.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace runtime {

const char *
toString(CopyKind kind)
{
    return kind == CopyKind::HostToDevice ? "H2D" : "D2H";
}

ApiResult
RuntimeApi::launchKernel(const gpu::KernelDesc &kernel, Stream &stream,
                         Tick now)
{
    ++stats_.kernels;
    Tick api_return = now + platform_.spec().api_overhead;
    Tick start = std::max(api_return, stream.tail());
    Tick done = gpu().launchKernel(kernel, start);
    stream.push(done);
    return ApiResult{api_return, done};
}

Tick
RuntimeApi::synchronize(Tick now)
{
    Tick t = now + platform_.spec().api_overhead;
    for (const auto &stream : streams_)
        t = std::max(t, stream->tail());
    return t;
}

Stream &
RuntimeApi::createStream(std::string name)
{
    streams_.push_back(std::make_unique<Stream>(std::move(name)));
    return *streams_.back();
}

Tick
RuntimeApi::memcpy(CopyKind kind, Addr dst, Addr src, std::uint64_t len,
                   Stream &stream, Tick now)
{
    auto result = memcpyAsync(kind, dst, src, len, stream, now);
    return std::max(result.api_return, result.complete);
}

std::uint64_t
RuntimeApi::sampleLen(std::uint64_t len) const
{
    // Use the channel's sampling rule even on the plain path so both
    // modes move identical functional payloads.
    return platform_.device(device_id_).channel().sampledLen(len);
}

Tick
RuntimeApi::restart(Tick now)
{
    // The handshake (GET_VERSION .. KEY_EXCHANGE, paper §2.2) happens
    // before any data can move; the fresh key and epoch make every
    // pre-crash ciphertext unverifiable in the new session.
    Tick live = now + platform_.faultInjector().plan().spdm_rekey_ticks;
    channel().rekey();
    if (gpu().ccEnabled()) {
        // Session setup zeroes the GPU's rx/tx counters; CPU-side
        // counters are reset by the overrides that own them.
        gpu().enableCc(&channel());
    }
    return live;
}

Tick
RuntimeApi::warmupProbe(Tick now)
{
    std::uint64_t len =
        platform_.faultInjector().plan().warmup_probe_bytes;
    if (len == 0)
        return now;
    if (probe_stream_ == nullptr) {
        probe_stream_ = &createStream("warmup-probe");
        probe_host_ = platform_.hostMem().alloc(len, "probe-host");
        probe_dev_ = gpu().alloc(len, "probe-dev");
    }
    Tick up = memcpy(CopyKind::HostToDevice, probe_dev_.base,
                     probe_host_.base, len, *probe_stream_, now);
    return memcpy(CopyKind::DeviceToHost, probe_host_.base,
                  probe_dev_.base, len, *probe_stream_, up);
}

fault::FaultReport
RuntimeApi::faultReport() const
{
    fault::FaultReport report = fault_report_;
    DeviceContext &ctx = platform_.device(device_id_);
    report.merge(ctx.h2dPath().faultReport());
    report.merge(ctx.d2hPath().faultReport());
    return report;
}

} // namespace runtime
} // namespace pipellm
