#include "runtime/api.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pipellm {
namespace runtime {

const char *
toString(CopyKind kind)
{
    return kind == CopyKind::HostToDevice ? "H2D" : "D2H";
}

ApiResult
RuntimeApi::launchKernel(const gpu::KernelDesc &kernel, Stream &stream,
                         Tick now)
{
    ++stats_.kernels;
    Tick api_return = now + platform_.spec().api_overhead;
    Tick start = std::max(api_return, stream.tail());
    Tick done = gpu().launchKernel(kernel, start);
    stream.push(done);
    return ApiResult{api_return, done};
}

Tick
RuntimeApi::synchronize(Tick now)
{
    Tick t = now + platform_.spec().api_overhead;
    for (const auto &stream : streams_)
        t = std::max(t, stream->tail());
    return t;
}

Stream &
RuntimeApi::createStream(std::string name)
{
    streams_.push_back(std::make_unique<Stream>(std::move(name)));
    return *streams_.back();
}

Tick
RuntimeApi::memcpy(CopyKind kind, Addr dst, Addr src, std::uint64_t len,
                   Stream &stream, Tick now)
{
    auto result = memcpyAsync(kind, dst, src, len, stream, now);
    return std::max(result.api_return, result.complete);
}

std::uint64_t
RuntimeApi::sampleLen(std::uint64_t len) const
{
    // Use the channel's sampling rule even on the plain path so both
    // modes move identical functional payloads.
    return platform_.device(device_id_).channel().sampledLen(len);
}

fault::FaultReport
RuntimeApi::faultReport() const
{
    fault::FaultReport report = fault_report_;
    DeviceContext &ctx = platform_.device(device_id_);
    report.merge(ctx.h2dPath().faultReport());
    report.merge(ctx.d2hPath().faultReport());
    return report;
}

} // namespace runtime
} // namespace pipellm
