/**
 * @file
 * Optional transfer tracing: a recorder any runtime can carry to log
 * every CPU<->GPU transfer with its timing and (for PipeLLM) its
 * speculation outcome. Useful for debugging prediction behavior, for
 * the side-channel analysis of §8.1 (an attacker on the bus sees
 * exactly this sequence of sizes and NOPs), and for generating
 * timeline CSVs.
 */

#ifndef PIPELLM_RUNTIME_TRANSFER_TRACE_HH
#define PIPELLM_RUNTIME_TRANSFER_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace pipellm {
namespace runtime {

/** How one transfer was served (PipeLLM outcomes; others use Direct). */
enum class TransferOutcome : std::uint8_t
{
    Direct,   ///< no speculation involved (plain/CC/small)
    Hit,      ///< served from a pre-encrypted entry
    Miss,     ///< encrypted on demand
    Deferred, ///< re-ordered behind a lower-IV sibling
    Nop,      ///< 1-byte IV-advancing dummy
    Retry,    ///< re-encrypted at a fresh IV after a tag fault
};

const char *toString(TransferOutcome outcome);

/** One recorded transfer event. */
struct TransferRecord
{
    Tick submit = 0;
    Tick complete = 0;
    std::uint64_t bytes = 0;
    bool to_device = true;
    TransferOutcome outcome = TransferOutcome::Direct;
};

/** Bounded in-memory trace with summary queries. */
class TransferTrace
{
  public:
    /** @param cap retain at most this many records (0 = unlimited) */
    explicit TransferTrace(std::size_t cap = 0) : cap_(cap) {}

    void record(const TransferRecord &r);

    const std::vector<TransferRecord> &records() const {
        return records_;
    }

    std::uint64_t count(TransferOutcome outcome) const;
    std::uint64_t totalBytes(bool to_device) const;

    /**
     * §8.1 side-channel view: what a bus observer learns. NOPs are
     * distinguishable by size, so their count (and thus the
     * misprediction pattern) leaks; this quantifies it.
     */
    struct BusView
    {
        std::uint64_t transfers = 0;
        std::uint64_t nop_like = 0;   ///< 1-byte transfers seen
        std::uint64_t swap_like = 0;  ///< >=128 KiB transfers seen
        double nop_fraction = 0.0;
    };
    BusView busView() const;

    /** Dump to CSV at @p path; returns rows written. */
    std::size_t writeCsv(const std::string &path) const;

    void clear();

  private:
    std::size_t cap_;
    std::vector<TransferRecord> records_;
    std::uint64_t dropped_ = 0;
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_TRANSFER_TRACE_HH
