/**
 * @file
 * The chunked ciphertext data path between CVM private memory and the
 * PCIe link (paper §6): fixed-size shared-memory staging buffers,
 * with the private<->shared memcpy stage pipelined against DMA.
 *
 * This is what caps the CC path at ~40 GB/s even when encryption is
 * fully hidden (§7.2) — the memcpy engine, not PCIe, is the slowest
 * stage.
 */

#ifndef PIPELLM_RUNTIME_STAGED_PATH_HH
#define PIPELLM_RUNTIME_STAGED_PATH_HH

#include "fault/fault.hh"
#include "gpu/spec.hh"
#include "mem/staging.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

namespace pipellm {
namespace runtime {

/** One direction's staged ciphertext pipeline. */
class StagedCopyPath
{
  public:
    /**
     * @param link the PCIe direction this path feeds/drains
     * @param toward_device true for H2D (memcpy, DMA, GPU decrypt),
     *        false for D2H (GPU encrypt, DMA, memcpy)
     * @param device_crypto the GPU copy engine's crypto stage;
     *        pipelined per chunk when non-null
     */
    StagedCopyPath(sim::EventQueue &eq, const gpu::SystemSpec &spec,
                   sim::BandwidthResource &link, bool toward_device,
                   sim::BandwidthResource *device_crypto = nullptr);

    /**
     * Move @p len ciphertext bytes through the staged pipeline
     * starting no earlier than @p earliest.
     * @return tick at which the final stage of the last chunk is done
     */
    Tick transfer(Tick earliest, std::uint64_t len);

    const mem::StagingPool &pool() const { return pool_; }
    const sim::BandwidthResource &copyEngine() const { return copy_; }

    /** Wire the machine-wide fault injector (nullptr to detach). */
    void setFaultInjector(fault::FaultInjector *injector);

    /** Stall/retry counters accumulated by this path. */
    const fault::FaultReport &faultReport() const { return faults_; }

  private:
    /**
     * Injected copy-engine stalls for one chunk: each stall costs the
     * watchdog timeout plus a jittered capped-exponential backoff,
     * then the chunk is retried; the injector stops stalling past the
     * plan's attempt cap, so the transfer always completes.
     * @return tick at which the chunk's copy may proceed
     */
    Tick stallDelay(Tick ready);

    sim::BandwidthResource copy_;
    sim::BandwidthResource &link_;
    sim::BandwidthResource *device_crypto_;
    mem::StagingPool pool_;
    bool toward_device_;
    fault::FaultInjector *injector_ = nullptr;
    fault::FaultReport faults_;
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_STAGED_PATH_HH
