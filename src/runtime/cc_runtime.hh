/**
 * @file
 * The "CC" baseline: NVIDIA Confidential Computing as shipped.
 *
 * On H2D, the CUDA library encrypts *inside* cudaMemcpyAsync with the
 * caller blocked (paper §2.2, Fig. 2: API latency grows linearly with
 * size); the ciphertext then flows through shared-memory staging and
 * DMA, and the GPU copy engine decrypts at line rate. On D2H the CPU
 * decrypts before the call completes (§5.4: "decryption is
 * unnecessarily synchronous").
 *
 * The optional thread count models the Fig. 9 "CC-4t" variant:
 * trivially splitting each transfer's encryption across k CPU threads
 * without any pipelining.
 */

#ifndef PIPELLM_RUNTIME_CC_RUNTIME_HH
#define PIPELLM_RUNTIME_CC_RUNTIME_HH

#include "crypto/engine.hh"
#include "crypto/iv.hh"
#include "runtime/api.hh"

namespace pipellm {
namespace runtime {

/** NVIDIA CC runtime with on-the-fly (critical path) encryption. */
class CcRuntime : public RuntimeApi
{
  public:
    /**
     * @param threads CPU threads used to encrypt/decrypt each
     *        individual transfer (1 = stock behavior; 4 = "CC-4t")
     * @param device the cluster device this runtime drives
     */
    explicit CcRuntime(Platform &platform, unsigned threads = 1,
                       DeviceId device = 0);

    const char *name() const override { return name_.c_str(); }

    ApiResult memcpyAsync(CopyKind kind, Addr dst, Addr src,
                          std::uint64_t len, Stream &stream,
                          Tick now) override;

    unsigned threads() const { return threads_; }

    /** CPU-side next-IV counters, for tests. */
    std::uint64_t h2dCounter() const { return h2d_iv_.current(); }
    std::uint64_t d2hCounter() const { return d2h_iv_.current(); }

    fault::FaultReport faultReport() const override;

    /** Base re-key plus a reset of the CPU-side IV counter pair. */
    Tick restart(Tick now) override;

  private:
    /**
     * Charge @p len bytes of CPU crypto split across the lanes.
     * @return completion tick of the slowest slice
     */
    Tick chargeCpuCrypto(crypto::CryptoLanes &lanes, Tick start,
                         std::uint64_t len);

    /**
     * Account one injected-tag-fault retry; panics when @p attempt
     * exceeds the plan's transfer retry budget.
     */
    void noteTagRetry(unsigned &attempt);

    ApiResult copyH2d(Addr dst, Addr src, std::uint64_t len,
                      Stream &stream, Tick now);
    ApiResult copyD2h(Addr dst, Addr src, std::uint64_t len,
                      Stream &stream, Tick now);

    std::string name_;
    unsigned threads_;
    crypto::CryptoLanes enc_lanes_;
    crypto::CryptoLanes dec_lanes_;
    crypto::IvCounter h2d_iv_{crypto::Direction::HostToDevice};
    crypto::IvCounter d2h_iv_{crypto::Direction::DeviceToHost};
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_CC_RUNTIME_HH
