/**
 * @file
 * The ciphertext-reuse design point (paper §8.2).
 *
 * Observation: swapped data is read-only on the CPU, so its
 * ciphertext could be retained and resent instead of re-encrypted
 * every swap-in. The paper rejects this for today's hardware — plain
 * reuse lets an attacker correlate identical transfers and opens a
 * replay window — but sketches it as what a future CC interface could
 * enable. This runtime implements that sketch as a performance upper
 * bound:
 *
 *  - H2D swaps of previously sealed chunks resend the retained blob
 *    (no CPU crypto at all); the simulated device accepts it under
 *    its original IV (commitRetained).
 *  - D2H swaps keep the ciphertext *encrypted at rest* on the host —
 *    the CPU never decrypts swap-outs; each swap-out seals under a
 *    fresh content-generation IV, so IVs are never reused across
 *    different plaintexts.
 *  - A write to a retained chunk's plaintext faults (MPK) and drops
 *    the retained ciphertext, so stale data is never replayed.
 *  - Small transfers keep stock lockstep-IV CC behavior.
 *
 * SECURITY: this mode weakens NVIDIA CC's replay protection by
 * construction (that is §8.2's point). It exists for the comparison
 * bench, not for adoption.
 */

#ifndef PIPELLM_RUNTIME_REUSE_RUNTIME_HH
#define PIPELLM_RUNTIME_REUSE_RUNTIME_HH

#include <cstdint>
#include <unordered_map>

#include "crypto/engine.hh"
#include "crypto/iv.hh"
#include "runtime/api.hh"

namespace pipellm {
namespace runtime {

/** Statistics specific to the reuse design. */
struct ReuseStats
{
    /** H2D swaps served from a retained ciphertext. */
    std::uint64_t reuse_hits = 0;
    /** H2D swaps that had to seal (first touch or invalidated). */
    std::uint64_t seals = 0;
    /** Retained ciphertexts dropped because the plaintext changed. */
    std::uint64_t invalidated = 0;
    /** D2H swaps kept encrypted at rest (never CPU-decrypted). */
    std::uint64_t encrypted_at_rest = 0;
};

/** Hypothetical ciphertext-reuse runtime (§8.2). */
class CiphertextReuseRuntime : public RuntimeApi
{
  public:
    explicit CiphertextReuseRuntime(Platform &platform,
                                    DeviceId device = 0);
    ~CiphertextReuseRuntime() override;

    const char *name() const override { return "CT-Reuse"; }

    ApiResult memcpyAsync(CopyKind kind, Addr dst, Addr src,
                          std::uint64_t len, Stream &stream,
                          Tick now) override;

    const ReuseStats &reuseStats() const { return reuse_stats_; }

    /**
     * Base re-key plus IV counter reset; every retained ciphertext
     * was sealed under the dead session and is discarded.
     */
    Tick restart(Tick now) override;

  private:
    struct Key
    {
        Addr addr;
        std::uint64_t len;
        bool
        operator==(const Key &o) const
        {
            return addr == o.addr && len == o.len;
        }
    };
    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::size_t((k.addr * 0x9e3779b97f4a7c15ull) ^ k.len);
        }
    };
    struct Retained
    {
        crypto::CipherBlob blob;
        bool protected_pages = false;
    };

    bool isSwap(std::uint64_t len) const;
    void retain(const Key &key, crypto::CipherBlob blob);
    void dropRetained(const Key &key);

    ApiResult copyH2d(Addr dst, Addr src, std::uint64_t len,
                      Stream &stream, Tick now);
    ApiResult copyD2h(Addr dst, Addr src, std::uint64_t len,
                      Stream &stream, Tick now);

    crypto::CryptoLanes seal_lane_;
    crypto::IvCounter h2d_iv_{crypto::Direction::HostToDevice};
    crypto::IvCounter d2h_iv_{crypto::Direction::DeviceToHost};
    /**
     * Content-generation counter for retained D2H seals. Starts far
     * above anything the lockstep counters can reach in a simulated
     * run (2^48 transfers), so the two IV namespaces never collide.
     */
    std::uint64_t generation_ = 1ull << 48;

    std::unordered_map<Key, Retained, KeyHash> retained_;
    ReuseStats reuse_stats_;
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_REUSE_RUNTIME_HH
