/**
 * @file
 * The TEE I/O design point (paper §8.3): next-generation CVMs add
 * dedicated line-rate encryption hardware on the CPU SoC, so CPU<->GPU
 * transfers are encrypted at link speed with no CPU-thread cost and
 * no caller blocking.
 *
 * The paper discusses this as the hardware alternative to PipeLLM and
 * notes its open questions (can one SoC engine sustain eight GPUs?).
 * This runtime models a single-GPU instance of it as an upper bound:
 * the CC control-plane overhead and the bounce-buffer copy path
 * remain, but AES-GCM costs nothing and stays off the critical path.
 * IV accounting and real (sampled) sealing are identical to CcRuntime
 * — only the timing of the crypto changes.
 */

#ifndef PIPELLM_RUNTIME_TEEIO_RUNTIME_HH
#define PIPELLM_RUNTIME_TEEIO_RUNTIME_HH

#include "crypto/iv.hh"
#include "runtime/api.hh"

namespace pipellm {
namespace runtime {

/** Hypothetical hardware-encrypted (TEE I/O) runtime. */
class TeeIoRuntime : public RuntimeApi
{
  public:
    explicit TeeIoRuntime(Platform &platform, DeviceId device = 0);

    const char *name() const override { return "TEE-I/O"; }

    ApiResult memcpyAsync(CopyKind kind, Addr dst, Addr src,
                          std::uint64_t len, Stream &stream,
                          Tick now) override;

    /** CPU-side next-IV counters, for tests. */
    std::uint64_t h2dCounter() const { return h2d_iv_.current(); }
    std::uint64_t d2hCounter() const { return d2h_iv_.current(); }

    /** Base re-key plus a reset of the CPU-side IV counter pair. */
    Tick restart(Tick now) override;

  private:
    crypto::IvCounter h2d_iv_{crypto::Direction::HostToDevice};
    crypto::IvCounter d2h_iv_{crypto::Direction::DeviceToHost};
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_TEEIO_RUNTIME_HH
