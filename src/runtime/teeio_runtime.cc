#include "runtime/teeio_runtime.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace pipellm {
namespace runtime {

TeeIoRuntime::TeeIoRuntime(Platform &platform, DeviceId device)
    : RuntimeApi(platform, device)
{
    gpu().enableCc(&channel());
}

ApiResult
TeeIoRuntime::memcpyAsync(CopyKind kind, Addr dst, Addr src,
                          std::uint64_t len, Stream &stream, Tick now)
{
    noteCopy(kind, len);
    const auto &spec = platform_.spec();
    auto &host = platform_.hostMem();
    auto &dev = gpu();

    // The SoC engine encrypts inline at line rate: the call costs only
    // the control plane, and no CPU crypto time is charged anywhere.
    Tick control = now + spec.api_overhead + spec.cc_api_overhead;
    Tick start = std::max(control, stream.tail());

    if (kind == CopyKind::HostToDevice) {
        std::uint64_t n = sampleLen(len);
        std::vector<std::uint8_t> sample(n);
        Tick src_ready = host.read(src, sample.data(), n);
        start = std::max(start, src_ready);

        auto blob = channel().seal(
            crypto::Direction::HostToDevice, h2d_iv_.next(),
            sample.data(), len);
        Tick done = ctx().h2dPath().transfer(start, len);
        dev.commitEncrypted(blob, dst);
        stream.push(done);
        return ApiResult{control, done};
    }

    crypto::CipherBlob blob = dev.sealD2h(src, len);
    Tick done = ctx().d2hPath().transfer(start, len);

    std::vector<std::uint8_t> sample;
    if (!channel().open(blob, d2h_iv_.next(), sample))
        PANIC("TEE-I/O: D2H tag failure (GPU IV ", blob.iv_counter, ")");
    host.write(dst, sample.data(), sample.size());
    stream.push(done);
    return ApiResult{control, done};
}

Tick
TeeIoRuntime::restart(Tick now)
{
    Tick live = RuntimeApi::restart(now);
    h2d_iv_ = crypto::IvCounter(crypto::Direction::HostToDevice);
    d2h_iv_ = crypto::IvCounter(crypto::Direction::DeviceToHost);
    return live;
}

} // namespace runtime
} // namespace pipellm
