/**
 * @file
 * The CUDA-like runtime interface that LLM engines program against.
 *
 * This is the paper's interposition point: NVIDIA CC performs
 * encryption *inside* cudaMemcpyAsync (blocking the caller), while
 * PipeLLM replaces the implementation without changing the interface
 * (user transparency, §4). Three implementations exist:
 *
 *   PlainRuntime   - CC disabled ("w/o CC" baseline)
 *   CcRuntime      - NVIDIA CC with on-the-fly encryption ("CC")
 *   PipeLlmRuntime - speculative pipelined encryption (the system)
 *
 * Engines are written in timestamp style: they carry their own clock
 * cursor and pass it as @p now; calls return both the tick at which
 * the API hands control back to the caller (api_return) and the tick
 * at which the operation completes on the device (complete).
 */

#ifndef PIPELLM_RUNTIME_API_HH
#define PIPELLM_RUNTIME_API_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "gpu/device.hh"
#include "runtime/platform.hh"
#include "runtime/transfer_trace.hh"

namespace pipellm {
namespace runtime {

/** Direction of a memcpy, mirroring cudaMemcpyKind. */
enum class CopyKind : std::uint8_t
{
    HostToDevice,
    DeviceToHost,
};

/** An in-order execution queue, mirroring cudaStream_t. */
class Stream
{
  public:
    explicit Stream(std::string name) : name_(std::move(name)) {}

    /** Completion tick of the last operation in the stream. */
    Tick tail() const { return tail_; }

    /** Append an operation completing at @p t. */
    void
    push(Tick t)
    {
        if (t > tail_)
            tail_ = t;
    }

    /** cudaStreamWaitEvent: order this stream after @p event_tick. */
    void waitEvent(Tick event_tick) { push(event_tick); }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    Tick tail_ = 0;
};

/** Outcome of an asynchronous API call. */
struct ApiResult
{
    /** Tick at which the call returns control to the caller. */
    Tick api_return = 0;
    /** Tick at which the operation completes. */
    Tick complete = 0;
};

/** Aggregate transfer statistics per runtime. */
struct RuntimeStats
{
    std::uint64_t h2d_calls = 0;
    std::uint64_t h2d_bytes = 0;
    std::uint64_t d2h_calls = 0;
    std::uint64_t d2h_bytes = 0;
    std::uint64_t kernels = 0;
    /** Bytes encrypted on CPU lanes (CC paths only). */
    std::uint64_t cpu_encrypt_bytes = 0;
    /** Bytes decrypted on CPU lanes (CC paths only). */
    std::uint64_t cpu_decrypt_bytes = 0;
};

/**
 * Abstract CUDA-like runtime, bound to one device of the platform's
 * cluster (cudaSetDevice, fixed at construction). All crypto state —
 * IV counters, the CC session, staged copy paths — is that device's
 * own, so runtimes driving different GPUs never consume each other's
 * IVs.
 */
class RuntimeApi
{
  public:
    explicit RuntimeApi(Platform &platform, DeviceId device = 0)
        : platform_(platform), device_id_(device)
    {
        // Fails fast on an out-of-range id.
        platform.device(device);
    }
    virtual ~RuntimeApi() = default;

    RuntimeApi(const RuntimeApi &) = delete;
    RuntimeApi &operator=(const RuntimeApi &) = delete;

    /** Human-readable implementation name ("w/o CC", "CC", ...). */
    virtual const char *name() const = 0;

    /**
     * cudaMemcpyAsync. Submitted at @p now on @p stream.
     * Functional effect: the sampled prefix of [src, src+len) appears
     * at dst (through whatever encryption path the implementation
     * models).
     */
    virtual ApiResult memcpyAsync(CopyKind kind, Addr dst, Addr src,
                                  std::uint64_t len, Stream &stream,
                                  Tick now) = 0;

    /**
     * Kernel launch on @p stream at @p now; launching is cheap for the
     * caller, execution is ordered behind the stream.
     */
    virtual ApiResult launchKernel(const gpu::KernelDesc &kernel,
                                   Stream &stream, Tick now);

    /**
     * cudaDeviceSynchronize: block until every stream created from
     * this runtime has drained.
     * @return the tick at which the caller resumes
     */
    virtual Tick synchronize(Tick now);

    /** Create a stream owned by this runtime. */
    Stream &createStream(std::string name);

    /** Convenience: synchronous memcpy (submit + wait). */
    Tick memcpy(CopyKind kind, Addr dst, Addr src, std::uint64_t len,
                Stream &stream, Tick now);

    const RuntimeStats &stats() const { return stats_; }
    Platform &platform() { return platform_; }

    /** The cluster device this runtime drives. */
    DeviceId deviceId() const { return device_id_; }
    DeviceContext &ctx() { return platform_.device(device_id_); }
    gpu::GpuDevice &gpu() { return ctx().gpu(); }
    crypto::SecureChannel &channel() { return ctx().channel(); }

    /** Attach an optional transfer recorder (not owned). */
    void attachTrace(TransferTrace *trace) { trace_ = trace; }

    /**
     * Faults this runtime observed and recovered from, merged with
     * the counters of its device's staged copy paths and CC session.
     * All zeros when no fault plan is armed.
     */
    virtual fault::FaultReport faultReport() const;

    /**
     * Re-establish this runtime's device session after a replica
     * restart beginning at @p now: the SPDM re-attestation + key
     * exchange is charged as a lump (FaultPlan::spdm_rekey_ticks),
     * the channel re-keys into a fresh IV epoch, and — when CC was
     * enabled — the GPU's counters re-synchronize to zero. Overrides
     * extend this to reset CPU-side IV counters and any speculative
     * or degraded-mode state; every override must call the base.
     * @return the tick at which the new session is live
     */
    virtual Tick restart(Tick now);

    /**
     * Warm-up probe: round-trip FaultPlan::warmup_probe_bytes H2D
     * then D2H on a dedicated stream, exercising the fresh session
     * end to end before the router re-admits the replica. Scratch
     * regions are allocated lazily and reused across restarts.
     * @return the probe completion tick
     */
    Tick warmupProbe(Tick now);

  protected:
    /** Sampled prefix length for functional data movement. */
    std::uint64_t sampleLen(std::uint64_t len) const;

    void
    noteCopy(CopyKind kind, std::uint64_t len)
    {
        if (kind == CopyKind::HostToDevice) {
            ++stats_.h2d_calls;
            stats_.h2d_bytes += len;
        } else {
            ++stats_.d2h_calls;
            stats_.d2h_bytes += len;
        }
    }

    /** Record one transfer if a trace is attached. */
    void
    trace(Tick submit, Tick complete, std::uint64_t bytes,
          bool to_device, TransferOutcome outcome)
    {
        if (trace_)
            trace_->record(TransferRecord{submit, complete, bytes,
                                          to_device, outcome});
    }

    Platform &platform_;
    DeviceId device_id_;
    RuntimeStats stats_;
    std::vector<std::unique_ptr<Stream>> streams_;
    TransferTrace *trace_ = nullptr;
    /** Recovery counters accumulated by this runtime's own paths. */
    fault::FaultReport fault_report_;

  private:
    /** Lazily allocated warm-up probe scratch (see warmupProbe). */
    Stream *probe_stream_ = nullptr;
    mem::Region probe_host_;
    mem::Region probe_dev_;
};

const char *toString(CopyKind kind);

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_API_HH
