#include "runtime/platform.hh"

#include <utility>

#include "common/logging.hh"

namespace pipellm {
namespace runtime {

namespace {

/**
 * Per-device session configuration: each GPU negotiates its own key
 * (real multi-GPU CC derives one SPDM session per device). Device 0
 * keeps the caller's seed so a 1-device cluster is bit-identical to
 * the original single-device machine.
 */
crypto::ChannelConfig
deviceChannelConfig(const crypto::ChannelConfig &base, DeviceId id)
{
    crypto::ChannelConfig cfg = base;
    cfg.key_seed = base.key_seed + id;
    return cfg;
}

/** Resource-name prefix; empty for device 0 (legacy names). */
std::string
deviceLabel(DeviceId id)
{
    return id == 0 ? std::string{} : "dev" + std::to_string(id) + "/";
}

} // namespace

DeviceContext::DeviceContext(sim::EventQueue &eq,
                             const gpu::SystemSpec &spec,
                             const crypto::ChannelConfig &channel_cfg,
                             DeviceId id)
    : id_(id), channel_(deviceChannelConfig(channel_cfg, id)),
      gpu_(eq, spec, deviceLabel(id)),
      h2d_path_(eq, spec, gpu_.h2dLinkMut(), /*toward_device=*/true,
                &gpu_.copyEngineCryptoMut()),
      d2h_path_(eq, spec, gpu_.d2hLinkMut(), /*toward_device=*/false,
                &gpu_.copyEngineCryptoMut())
{
}

void
DeviceContext::attachFaultInjector(fault::FaultInjector *injector)
{
    channel_.setFaultInjector(injector);
    h2d_path_.setFaultInjector(injector);
    d2h_path_.setFaultInjector(injector);
}

Platform::Platform(const gpu::SystemSpec &spec,
                   const crypto::ChannelConfig &channel_cfg,
                   unsigned num_devices, const HostResources &host)
    : spec_(spec), host_res_(host),
      crypto_engine_(eq_, spec.cpu_crypto_bw_per_lane,
                     host.shared_crypto_lanes),
      host_mem_("cvm-dram", spec.host_mem_bytes)
{
    PIPELLM_ASSERT(num_devices > 0, "a platform needs >= 1 device");
    if (host_res_.bridge_bw > 0) {
        host_bridge_ = std::make_unique<sim::BandwidthResource>(
            eq_, "host-bridge", host_res_.bridge_bw,
            host_res_.bridge_latency);
    }
    crypto_engine_.setFaultInjector(&fault_injector_);
    devices_.reserve(num_devices);
    for (unsigned i = 0; i < num_devices; ++i) {
        devices_.push_back(std::make_unique<DeviceContext>(
            eq_, spec_, channel_cfg, DeviceId(i)));
        devices_.back()->gpu().attachHostBridge(host_bridge_.get());
        devices_.back()->attachFaultInjector(&fault_injector_);
    }
}

DeviceContext &
Platform::device(DeviceId id)
{
    PIPELLM_ASSERT(id < devices_.size(), "device id ", id,
                   " out of range (cluster has ", devices_.size(),
                   " devices)");
    return *devices_[id];
}

const DeviceContext &
Platform::device(DeviceId id) const
{
    PIPELLM_ASSERT(id < devices_.size(), "device id ", id,
                   " out of range (cluster has ", devices_.size(),
                   " devices)");
    return *devices_[id];
}

mem::Region
Platform::allocHost(std::uint64_t len, std::string name)
{
    return host_mem_.alloc(len, std::move(name),
                           mem::MemSpace::CvmPrivate);
}

void
Platform::freeHost(const mem::Region &region)
{
    host_mem_.free(region);
}

} // namespace runtime
} // namespace pipellm
