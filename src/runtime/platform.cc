#include "runtime/platform.hh"

#include <utility>

namespace pipellm {
namespace runtime {

Platform::Platform(const gpu::SystemSpec &spec,
                   const crypto::ChannelConfig &channel_cfg)
    : spec_(spec), channel_(channel_cfg), device_(eq_, spec),
      host_mem_("cvm-dram", spec.host_mem_bytes)
{
}

mem::Region
Platform::allocHost(std::uint64_t len, std::string name)
{
    return host_mem_.alloc(len, std::move(name),
                           mem::MemSpace::CvmPrivate);
}

void
Platform::freeHost(const mem::Region &region)
{
    host_mem_.free(region);
}

} // namespace runtime
} // namespace pipellm
