/**
 * @file
 * The simulated machine: one CVM (host memory) attached to a cluster
 * of N GPUs over per-device PCIe links, each with its own
 * confidential-computing session.
 *
 * Every device is wrapped in a DeviceContext bundling the GPU, its
 * PCIe links (owned by the GpuDevice), an independent SecureChannel
 * (per-device, per-direction IV counters, as on real multi-GPU CC
 * systems where each GPU negotiates its own SPDM session key), and
 * the staged ciphertext copy paths feeding its links. Runtimes bind
 * to one device id; the legacy single-device accessors alias id 0.
 *
 * Host-side capacity is modeled by HostResources: optionally all
 * per-device PCIe links drain through one shared host bridge, and
 * the CPU crypto lanes every runtime draws from (CryptoEngine) can
 * be one machine-wide pool instead of dedicated per-client groups.
 * The defaults keep both private, preserving the historical
 * independent-replica timing bit for bit.
 */

#ifndef PIPELLM_RUNTIME_PLATFORM_HH
#define PIPELLM_RUNTIME_PLATFORM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/channel.hh"
#include "crypto/engine.hh"
#include "fault/fault.hh"
#include "gpu/device.hh"
#include "gpu/spec.hh"
#include "mem/sparse_memory.hh"
#include "runtime/staged_path.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

namespace pipellm {
namespace runtime {

/** Index of a device within the platform's cluster. */
using DeviceId = std::uint32_t;

/**
 * Host-side resources shared by every device on the machine. The
 * defaults select the legacy private-resource model: no bridge cap
 * (each PCIe link is independent) and a dedicated crypto pool per
 * runtime. Setting either knob turns the host into a contended stage,
 * which is where multi-GPU CC serving actually serializes.
 */
struct HostResources
{
    /**
     * Aggregate host-bridge bandwidth all per-device PCIe links drain
     * through (bytes/s). 0 = uncapped (no shared bridge).
     */
    double bridge_bw = 0;
    /** Per-request latency of the bridge stage. */
    Tick bridge_latency = 0;
    /**
     * Size of the machine-wide CPU crypto lane pool shared by every
     * runtime. 0 = dedicated mode (each runtime owns private lanes,
     * the pre-refactor behavior).
     */
    unsigned shared_crypto_lanes = 0;

    /**
     * True when any knob makes the host a contended stage coupling
     * the replicas' timelines. Coupled timelines leave zero lookahead
     * between replicas (a bridge or lane grant can bind two replicas
     * at the same tick), so the sharded scheduler falls back to the
     * sequential min-clock schedule; decoupled replicas interact only
     * at routing decisions and can run a whole arrival window in
     * parallel.
     */
    bool
    coupled() const
    {
        return bridge_bw > 0 || shared_crypto_lanes > 0;
    }
};

/**
 * One GPU and everything private to it: its CC session, its PCIe
 * links (inside the GpuDevice), and the staged copy paths that move
 * ciphertext between CVM memory and those links.
 */
class DeviceContext
{
  public:
    DeviceContext(sim::EventQueue &eq, const gpu::SystemSpec &spec,
                  const crypto::ChannelConfig &channel_cfg, DeviceId id);

    DeviceId id() const { return id_; }
    gpu::GpuDevice &gpu() { return gpu_; }
    const gpu::GpuDevice &gpu() const { return gpu_; }
    crypto::SecureChannel &channel() { return channel_; }
    const crypto::SecureChannel &channel() const { return channel_; }
    StagedCopyPath &h2dPath() { return h2d_path_; }
    StagedCopyPath &d2hPath() { return d2h_path_; }

    /** Wire the machine-wide injector into every injection site. */
    void attachFaultInjector(fault::FaultInjector *injector);

  private:
    DeviceId id_;
    crypto::SecureChannel channel_;
    gpu::GpuDevice gpu_;
    StagedCopyPath h2d_path_;
    StagedCopyPath d2h_path_;
};

/** Owns the clock, the host arena, and the device cluster. */
class Platform
{
  public:
    /**
     * @param num_devices GPUs attached to the CVM; each gets its own
     *        PCIe links and CC session (device 0 reproduces the
     *        original single-device machine exactly)
     * @param host shared host-side resources; the defaults keep every
     *        device's resources private
     */
    explicit Platform(const gpu::SystemSpec &spec = gpu::SystemSpec::h100(),
                      const crypto::ChannelConfig &channel_cfg =
                          crypto::ChannelConfig{},
                      unsigned num_devices = 1,
                      const HostResources &host = HostResources{});

    sim::EventQueue &eq() { return eq_; }
    const gpu::SystemSpec &spec() const { return spec_; }
    mem::SparseMemory &hostMem() { return host_mem_; }

    unsigned numDevices() const { return unsigned(devices_.size()); }

    /** Device-indexed access to the cluster. */
    DeviceContext &device(DeviceId id);
    const DeviceContext &device(DeviceId id) const;

    /** Shorthand for device(id).gpu(). */
    gpu::GpuDevice &gpu(DeviceId id) { return device(id).gpu(); }

    /** Deprecated single-device alias: device 0's GPU. */
    [[deprecated("use device(0).gpu() / gpu(0)")]] gpu::GpuDevice &
    device()
    {
        return device(0).gpu();
    }

    /** Deprecated single-device alias: device 0's CC session. */
    [[deprecated("use device(0).channel()")]] crypto::SecureChannel &
    channel()
    {
        return device(0).channel();
    }

    /** The machine-wide CPU crypto lane supply. */
    crypto::CryptoEngine &cryptoEngine() { return crypto_engine_; }

    /**
     * The machine-wide fault injector, wired into every channel,
     * staged path, and crypto-lane handle at construction. Disarmed
     * by default (zero cost); arm it with armFaults().
     */
    fault::FaultInjector &faultInjector() { return fault_injector_; }
    const fault::FaultInjector &faultInjector() const {
        return fault_injector_;
    }

    /** Arm deterministic fault injection machine-wide. */
    void armFaults(const fault::FaultPlan &plan) {
        fault_injector_.arm(plan);
    }

    /** The host-resource knobs this platform was built with. */
    const HostResources &hostResources() const { return host_res_; }

    /**
     * True when replica timelines may be advanced on parallel shards:
     * host resources are private (no zero-lookahead coupling) and the
     * fault injector is disarmed (its RNG draw order is a machine-wide
     * timeline the shards would otherwise race on).
     */
    bool
    shardable() const
    {
        return !host_res_.coupled() && !fault_injector_.armed();
    }

    /** Shared host bridge; null when bridge_bw is unset. */
    const sim::BandwidthResource *hostBridge() const {
        return host_bridge_.get();
    }

    /** Allocate CVM-private host memory (shared by all devices). */
    mem::Region allocHost(std::uint64_t len, std::string name);
    void freeHost(const mem::Region &region);

  private:
    sim::EventQueue eq_;
    gpu::SystemSpec spec_;
    HostResources host_res_;
    fault::FaultInjector fault_injector_;
    crypto::CryptoEngine crypto_engine_;
    std::unique_ptr<sim::BandwidthResource> host_bridge_;
    std::vector<std::unique_ptr<DeviceContext>> devices_;
    mem::SparseMemory host_mem_;
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_PLATFORM_HH
