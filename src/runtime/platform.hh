/**
 * @file
 * The simulated machine: one CVM (host memory) attached to one GPU
 * over PCIe, with an optional confidential-computing session.
 */

#ifndef PIPELLM_RUNTIME_PLATFORM_HH
#define PIPELLM_RUNTIME_PLATFORM_HH

#include <memory>

#include "crypto/channel.hh"
#include "gpu/device.hh"
#include "gpu/spec.hh"
#include "mem/sparse_memory.hh"
#include "sim/event_queue.hh"

namespace pipellm {
namespace runtime {

/** Owns the clock, the host arena, the device, and the CC session. */
class Platform
{
  public:
    explicit Platform(const gpu::SystemSpec &spec = gpu::SystemSpec::h100(),
                      const crypto::ChannelConfig &channel_cfg =
                          crypto::ChannelConfig{});

    sim::EventQueue &eq() { return eq_; }
    const gpu::SystemSpec &spec() const { return spec_; }
    gpu::GpuDevice &device() { return device_; }
    mem::SparseMemory &hostMem() { return host_mem_; }
    crypto::SecureChannel &channel() { return channel_; }

    /** Allocate CVM-private host memory. */
    mem::Region allocHost(std::uint64_t len, std::string name);
    void freeHost(const mem::Region &region);

  private:
    sim::EventQueue eq_;
    gpu::SystemSpec spec_;
    crypto::SecureChannel channel_;
    gpu::GpuDevice device_;
    mem::SparseMemory host_mem_;
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_PLATFORM_HH
