#include "runtime/cc_runtime.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace pipellm {
namespace runtime {

CcRuntime::CcRuntime(Platform &platform, unsigned threads,
                     DeviceId device)
    : RuntimeApi(platform, device),
      name_(threads == 1 ? "CC" : "CC-" + std::to_string(threads) + "t"),
      threads_(threads),
      enc_lanes_(platform.cryptoEngine().acquire("cc-enc", threads)),
      dec_lanes_(platform.cryptoEngine().acquire("cc-dec", threads))
{
    gpu().enableCc(&channel());
}

Tick
CcRuntime::chargeCpuCrypto(crypto::CryptoLanes &lanes, Tick start,
                           std::uint64_t len)
{
    // Trivial multi-threading: slice the buffer evenly across the
    // available threads; the transfer is done when the slowest slice
    // is done. With one thread this is plain serial encryption.
    unsigned k = lanes.width();
    std::uint64_t slice = len / k;
    std::uint64_t rem = len % k;
    Tick done = start;
    for (unsigned i = 0; i < k; ++i) {
        std::uint64_t n = slice + (i < rem ? 1 : 0);
        if (n == 0)
            continue;
        done = std::max(done, lanes.submitNotBefore(start, n));
    }
    return done;
}

void
CcRuntime::noteTagRetry(unsigned &attempt)
{
    ++fault_report_.tag_faults;
    ++attempt;
    const auto &plan = platform_.faultInjector().plan();
    if (attempt > plan.max_transfer_retries) {
        PANIC("CC runtime: transfer still failing after ",
              plan.max_transfer_retries,
              " fresh-IV retries; giving up");
    }
    ++fault_report_.tag_retries;
}

fault::FaultReport
CcRuntime::faultReport() const
{
    fault::FaultReport report = RuntimeApi::faultReport();
    report.lane_faults +=
        enc_lanes_.laneFaults() + dec_lanes_.laneFaults();
    report.retry_latency +=
        enc_lanes_.laneFaultTicks() + dec_lanes_.laneFaultTicks();
    return report;
}

ApiResult
CcRuntime::memcpyAsync(CopyKind kind, Addr dst, Addr src,
                       std::uint64_t len, Stream &stream, Tick now)
{
    noteCopy(kind, len);
    if (kind == CopyKind::HostToDevice)
        return copyH2d(dst, src, len, stream, now);
    return copyD2h(dst, src, len, stream, now);
}

ApiResult
CcRuntime::copyH2d(Addr dst, Addr src, std::uint64_t len,
                   Stream &stream, Tick now)
{
    const auto &spec = platform_.spec();
    auto &host = platform_.hostMem();
    auto &dev = gpu();

    Tick control = now + spec.api_overhead + spec.cc_api_overhead;

    // The CUDA library reads the plaintext and encrypts it while the
    // caller waits inside the call.
    std::uint64_t n = sampleLen(len);
    std::vector<std::uint8_t> sample(n);
    Tick src_ready = host.read(src, sample.data(), n);
    Tick enc_start = std::max(control, src_ready);
    Tick enc_done = chargeCpuCrypto(enc_lanes_, enc_start, len);
    stats_.cpu_encrypt_bytes += len;

    auto blob = channel().seal(crypto::Direction::HostToDevice,
                               h2d_iv_.next(), sample.data(), len);

    // Only after encryption does the call return; the staged copy,
    // DMA, and copy-engine decrypt proceed asynchronously, ordered
    // behind the stream.
    Tick api_return = enc_done;
    Tick xfer_start = std::max(enc_done, stream.tail());
    Tick done = ctx().h2dPath().transfer(xfer_start, len);
    channel().maybeCorrupt(blob, done);
    unsigned attempt = 0;
    while (!dev.tryCommitEncrypted(blob, dst)) {
        noteTagRetry(attempt);
        // The corrupted ciphertext is discarded; both IV counters
        // already advanced past the failed value, so the retry
        // re-encrypts at the next (fresh) counter and re-crosses the
        // whole staged path. The caller is unblocked — recovery rides
        // the stream.
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            blob.audit_serial));
        Tick redo_enc = chargeCpuCrypto(enc_lanes_, done, len);
        stats_.cpu_encrypt_bytes += len;
        blob = channel().seal(crypto::Direction::HostToDevice,
                              h2d_iv_.next(), sample.data(), len);
        Tick redo_done = ctx().h2dPath().transfer(redo_enc, len);
        fault_report_.retry_latency += redo_done - done;
        trace(done, redo_done, len, true, TransferOutcome::Retry);
        done = redo_done;
        channel().maybeCorrupt(blob, done);
    }
    stream.push(done);
    trace(now, done, len, true, TransferOutcome::Direct);
    return ApiResult{api_return, done};
}

Tick
CcRuntime::restart(Tick now)
{
    Tick live = RuntimeApi::restart(now);
    h2d_iv_ = crypto::IvCounter(crypto::Direction::HostToDevice);
    d2h_iv_ = crypto::IvCounter(crypto::Direction::DeviceToHost);
    return live;
}

ApiResult
CcRuntime::copyD2h(Addr dst, Addr src, std::uint64_t len,
                   Stream &stream, Tick now)
{
    const auto &spec = platform_.spec();
    auto &host = platform_.hostMem();
    auto &dev = gpu();

    Tick control = now + spec.api_overhead + spec.cc_api_overhead;
    Tick start = std::max(control, stream.tail());

    // GPU copy engine encrypts, ciphertext is DMAed into staging and
    // copied to private memory, then the CPU decrypts before the call
    // returns (stock NVIDIA CC behavior, §5.4).
    crypto::CipherBlob blob = dev.sealD2h(src, len);
    Tick landed = ctx().d2hPath().transfer(start, len);
    channel().maybeCorrupt(blob, landed);
    Tick dec_done = chargeCpuCrypto(dec_lanes_, landed, len);
    stats_.cpu_decrypt_bytes += len;

    std::vector<std::uint8_t> sample;
    unsigned attempt = 0;
    while (!channel().open(blob, d2h_iv_.next(), sample)) {
        if (!blob.injected_fault) {
            PANIC("CC runtime: D2H tag failure (GPU IV ",
                  blob.iv_counter, ")");
        }
        noteTagRetry(attempt);
        // Both sides consumed the failed counter; the device re-seals
        // at its next TX IV and the ciphertext re-crosses the bus.
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            blob.audit_serial));
        blob = dev.sealD2h(src, len);
        Tick redo_landed = ctx().d2hPath().transfer(dec_done, len);
        channel().maybeCorrupt(blob, redo_landed);
        Tick redo_dec = chargeCpuCrypto(dec_lanes_, redo_landed, len);
        stats_.cpu_decrypt_bytes += len;
        fault_report_.retry_latency += redo_dec - dec_done;
        trace(dec_done, redo_dec, len, false, TransferOutcome::Retry);
        dec_done = redo_dec;
    }
    host.write(dst, sample.data(), sample.size());

    stream.push(dec_done);
    trace(now, dec_done, len, false, TransferOutcome::Direct);
    return ApiResult{dec_done, dec_done};
}

} // namespace runtime
} // namespace pipellm
