#include "runtime/plain_runtime.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace pipellm {
namespace runtime {

PlainRuntime::PlainRuntime(Platform &platform, DeviceId device)
    : RuntimeApi(platform, device)
{
}

ApiResult
PlainRuntime::memcpyAsync(CopyKind kind, Addr dst, Addr src,
                          std::uint64_t len, Stream &stream, Tick now)
{
    noteCopy(kind, len);
    auto &dev = gpu();
    auto &host = platform_.hostMem();

    Tick api_return = now + platform_.spec().api_overhead;
    Tick start = std::max(api_return, stream.tail());
    std::uint64_t n = sampleLen(len);

    Tick done;
    if (kind == CopyKind::HostToDevice) {
        std::vector<std::uint8_t> sample(n);
        Tick src_ready = host.read(src, sample.data(), n);
        start = std::max(start, src_ready);
        done = dev.dmaH2dPlain(dst, sample.data(), n, len, start);
    } else {
        std::vector<std::uint8_t> sample(n);
        done = dev.dmaD2hPlain(src, sample.data(), n, len, start);
        host.write(dst, sample.data(), n);
    }
    stream.push(done);
    trace(now, done, len, kind == CopyKind::HostToDevice,
          TransferOutcome::Direct);
    return ApiResult{api_return, done};
}

} // namespace runtime
} // namespace pipellm
