#include "runtime/reuse_runtime.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace pipellm {
namespace runtime {

CiphertextReuseRuntime::CiphertextReuseRuntime(Platform &platform,
                                               DeviceId device)
    : RuntimeApi(platform, device),
      seal_lane_(platform.cryptoEngine().acquire("reuse-seal", 1))
{
    gpu().enableCc(&channel());
}

CiphertextReuseRuntime::~CiphertextReuseRuntime()
{
    auto &prot = platform_.hostMem().protection();
    for (auto &[key, retained] : retained_) {
        if (retained.protected_pages)
            prot.unprotect(key.addr, key.len);
        // Encrypted-at-rest blobs that were never swapped back in are
        // settled here so the tag ledger drains.
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            retained.blob.audit_serial));
    }
}

bool
CiphertextReuseRuntime::isSwap(std::uint64_t len) const
{
    return len >= 128 * KiB;
}

void
CiphertextReuseRuntime::dropRetained(const Key &key)
{
    auto it = retained_.find(key);
    if (it == retained_.end())
        return;
    if (it->second.protected_pages)
        platform_.hostMem().protection().unprotect(key.addr, key.len);
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
        it->second.blob.audit_serial));
    retained_.erase(it);
}

void
CiphertextReuseRuntime::retain(const Key &key, crypto::CipherBlob blob)
{
    dropRetained(key);
    Retained r;
    r.blob = std::move(blob);
    r.protected_pages = true;
    retained_.emplace(key, std::move(r));

    // A plaintext update must drop the retained ciphertext, or a
    // stale version would be replayed to the GPU.
    auto *self = this;
    platform_.hostMem().protection().protect(
        key.addr, key.len, mem::Protection::NoWrite,
        [self, key](Addr, bool) -> Tick {
            auto it = self->retained_.find(key);
            if (it != self->retained_.end()) {
                it->second.protected_pages = false;
                PIPELLM_AUDIT_HOOK(
                    audit::Auditor::instance().noteDiscarded(
                        it->second.blob.audit_serial));
                self->retained_.erase(it);
                ++self->reuse_stats_.invalidated;
            }
            self->platform_.hostMem().protection().unprotect(key.addr,
                                                             key.len);
            return 0;
        });
}

ApiResult
CiphertextReuseRuntime::memcpyAsync(CopyKind kind, Addr dst, Addr src,
                                    std::uint64_t len, Stream &stream,
                                    Tick now)
{
    noteCopy(kind, len);
    if (kind == CopyKind::HostToDevice)
        return copyH2d(dst, src, len, stream, now);
    return copyD2h(dst, src, len, stream, now);
}

ApiResult
CiphertextReuseRuntime::copyH2d(Addr dst, Addr src, std::uint64_t len,
                                Stream &stream, Tick now)
{
    const auto &spec = platform_.spec();
    auto &host = platform_.hostMem();
    auto &dev = gpu();
    Tick control = now + spec.api_overhead + spec.cc_api_overhead;

    if (isSwap(len)) {
        Key key{src, len};
        auto it = retained_.find(key);
        if (it != retained_.end()) {
            // Resend the retained ciphertext: zero crypto anywhere.
            ++reuse_stats_.reuse_hits;
            Tick start = std::max(control, stream.tail());
            Tick done = ctx().h2dPath().transfer(start, len);
            dev.commitRetained(it->second.blob, dst);
            stream.push(done);
            return ApiResult{control, done};
        }

        // First touch: seal once on the CPU, retain, then send.
        ++reuse_stats_.seals;
        std::uint64_t n = sampleLen(len);
        std::vector<std::uint8_t> sample(n);
        Tick src_ready = host.read(src, sample.data(), n);
        Tick enc_done = seal_lane_.submitNotBefore(
            std::max(control, src_ready), len);
        stats_.cpu_encrypt_bytes += len;
        auto blob = channel().seal(
            crypto::Direction::DeviceToHost /* retained namespace */,
            generation_++, sample.data(), len);
        Tick start = std::max(enc_done, stream.tail());
        Tick done = ctx().h2dPath().transfer(start, len);
        dev.commitRetained(blob, dst);
        retain(key, std::move(blob));
        stream.push(done);
        return ApiResult{enc_done, done};
    }

    // Small transfers keep stock lockstep CC behavior.
    std::uint64_t n = sampleLen(len);
    std::vector<std::uint8_t> sample(n);
    Tick src_ready = host.read(src, sample.data(), n);
    Tick enc_done =
        std::max(control, src_ready) +
        transferTicks(len, spec.cpu_crypto_bw_per_lane);
    stats_.cpu_encrypt_bytes += len;
    auto blob = channel().seal(crypto::Direction::HostToDevice,
                               h2d_iv_.next(), sample.data(), len);
    Tick start = std::max(enc_done, stream.tail());
    Tick done = ctx().h2dPath().transfer(start, len);
    dev.commitEncrypted(blob, dst);
    stream.push(done);
    return ApiResult{enc_done, done};
}

ApiResult
CiphertextReuseRuntime::copyD2h(Addr dst, Addr src, std::uint64_t len,
                                Stream &stream, Tick now)
{
    const auto &spec = platform_.spec();
    auto &host = platform_.hostMem();
    auto &dev = gpu();
    Tick control = now + spec.api_overhead + spec.cc_api_overhead;
    Tick start = std::max(control, stream.tail());

    if (isSwap(len)) {
        // Swap-outs stay encrypted at rest: the GPU seals under a
        // fresh content-generation IV, the host stores the ciphertext
        // and never decrypts it. Swap-in is a pure resend.
        ++reuse_stats_.encrypted_at_rest;
        auto blob = dev.sealRetainedD2h(src, len, generation_++);
        Tick done = ctx().d2hPath().transfer(start, len);
        retain(Key{dst, len}, std::move(blob));
        stream.push(done);
        return ApiResult{control, done};
    }

    crypto::CipherBlob blob = dev.sealD2h(src, len);
    Tick landed = ctx().d2hPath().transfer(start, len);
    Tick dec_done =
        landed + transferTicks(len, spec.cpu_crypto_bw_per_lane);
    stats_.cpu_decrypt_bytes += len;
    std::vector<std::uint8_t> sample;
    if (!channel().open(blob, d2h_iv_.next(), sample))
        PANIC("CT-Reuse: D2H tag failure");
    host.write(dst, sample.data(), sample.size());
    stream.push(dec_done);
    return ApiResult{dec_done, dec_done};
}

Tick
CiphertextReuseRuntime::restart(Tick now)
{
    Tick live = RuntimeApi::restart(now);
    h2d_iv_ = crypto::IvCounter(crypto::Direction::HostToDevice);
    d2h_iv_ = crypto::IvCounter(crypto::Direction::DeviceToHost);
    auto &prot = platform_.hostMem().protection();
    for (auto &[key, retained] : retained_) {
        if (retained.protected_pages)
            prot.unprotect(key.addr, key.len);
        PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteDiscarded(
            retained.blob.audit_serial));
    }
    retained_.clear();
    return live;
}

} // namespace runtime
} // namespace pipellm
