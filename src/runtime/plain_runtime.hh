/**
 * @file
 * The "w/o CC" baseline: no encryption anywhere; memcpyAsync costs
 * only the control plane for the caller, and transfers run at full
 * PCIe rate (paper Fig. 2, CC-disabled row).
 */

#ifndef PIPELLM_RUNTIME_PLAIN_RUNTIME_HH
#define PIPELLM_RUNTIME_PLAIN_RUNTIME_HH

#include "runtime/api.hh"

namespace pipellm {
namespace runtime {

/** Native (confidential computing disabled) runtime. */
class PlainRuntime : public RuntimeApi
{
  public:
    explicit PlainRuntime(Platform &platform, DeviceId device = 0);

    const char *name() const override { return "w/o CC"; }

    ApiResult memcpyAsync(CopyKind kind, Addr dst, Addr src,
                          std::uint64_t len, Stream &stream,
                          Tick now) override;
};

} // namespace runtime
} // namespace pipellm

#endif // PIPELLM_RUNTIME_PLAIN_RUNTIME_HH
