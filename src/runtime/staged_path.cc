#include "runtime/staged_path.hh"

#include <algorithm>

namespace pipellm {
namespace runtime {

StagedCopyPath::StagedCopyPath(sim::EventQueue &eq,
                               const gpu::SystemSpec &spec,
                               sim::BandwidthResource &link,
                               bool toward_device,
                               sim::BandwidthResource *device_crypto)
    : copy_(eq, toward_device ? "cc-copy-h2d" : "cc-copy-d2h",
            spec.cc_copy_bw),
      link_(link), device_crypto_(device_crypto),
      pool_(spec.staging_buf_count, spec.staging_buf_bytes),
      toward_device_(toward_device)
{
}

Tick
StagedCopyPath::transfer(Tick earliest, std::uint64_t len)
{
    Tick done = earliest;
    for (std::uint64_t chunk : pool_.chunk(len)) {
        auto lease = pool_.acquire(earliest);
        Tick start = lease.available;
        Tick finish;
        if (toward_device_) {
            // private -> shared memcpy, DMA out of the buffer, then
            // the copy engine decrypts the chunk into HBM.
            Tick copied = stallDelay(copy_.submitNotBefore(start, chunk));
            Tick landed = link_.submitNotBefore(copied, chunk);
            pool_.release(lease.buf, landed);
            finish = device_crypto_
                         ? device_crypto_->submitNotBefore(landed, chunk)
                         : landed;
        } else {
            // copy engine encrypts the chunk, DMA into the buffer,
            // then shared -> private memcpy.
            Tick sealed = device_crypto_
                              ? device_crypto_->submitNotBefore(start,
                                                                chunk)
                              : start;
            Tick landed = link_.submitNotBefore(sealed, chunk);
            finish = stallDelay(copy_.submitNotBefore(landed, chunk));
            pool_.release(lease.buf, finish);
        }
        done = std::max(done, finish);
    }
    return done;
}

Tick
StagedCopyPath::stallDelay(Tick ready)
{
    if (injector_ == nullptr || !injector_->armed())
        return ready;
    // Each stall hangs the engine until the watchdog timeout fires,
    // waits out a jittered capped-exponential backoff, and redoes the
    // chunk. The injector's attempt cap bounds the loop.
    const fault::FaultPlan &plan = injector_->plan();
    unsigned attempt = 0;
    while (attempt < plan.max_copy_attempts &&
           injector_->stallCopy(ready)) {
        ++attempt;
        Tick penalty =
            plan.copy_stall_timeout + injector_->backoff(attempt);
        ready += penalty;
        ++faults_.copy_stalls;
        faults_.retry_latency += penalty;
    }
    faults_.copy_retries += attempt;
    return ready;
}

void
StagedCopyPath::setFaultInjector(fault::FaultInjector *injector)
{
    injector_ = injector;
}

} // namespace runtime
} // namespace pipellm
